// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each BenchmarkFigXX runs the corresponding experiment (at smoke scale so
// `go test -bench=.` stays tractable; use cmd/pard-bench -scale full for
// paper-length traces) and reports the artifact's headline scalar as a
// custom metric. Run with -v to see the rendered tables.
package pard_test

import (
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pard"
	"pard/internal/core"
	"pard/internal/depq"
	"pard/internal/dist"
	"pard/internal/pipeline"
	"pard/internal/policy"
	"pard/internal/profile"
	"pard/internal/sched"
	"pard/internal/server"

	"math/rand"
)

var (
	benchHarness     *pard.ExperimentHarness
	benchHarnessOnce sync.Once
)

// harness returns a shared experiment harness so benches reuse cached
// simulation runs (Figs. 8-10 share all 48 workload×policy runs).
func harness() *pard.ExperimentHarness {
	benchHarnessOnce.Do(func() {
		benchHarness = pard.NewExperimentHarness(pard.ExperimentConfig{Scale: pard.ScaleSmoke, Seed: 1})
	})
	return benchHarness
}

// runExperiment executes one artifact through the shared harness and logs
// its tables.
func runExperiment(b *testing.B, id string) *pard.ExperimentOutput {
	b.Helper()
	var exp pard.Experiment
	found := false
	for _, e := range pard.Experiments() {
		if e.ID == id {
			exp, found = e, true
			break
		}
	}
	if !found {
		b.Fatalf("experiment %s not registered", id)
	}
	var out *pard.ExperimentOutput
	for i := 0; i < b.N; i++ {
		var err error
		out, err = exp.Run(harness())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, t := range out.Tables {
		b.Log("\n" + t.Render())
	}
	return out
}

// cell parses a table cell as a float, stripping % signs.
func cell(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		b.Fatalf("bad cell %q: %v", s, err)
	}
	return v
}

func BenchmarkFig2aMinGoodput(b *testing.B) {
	out := runExperiment(b, "fig2a")
	// columns: window, pard, nexus, clipper++, naive
	b.ReportMetric(cell(b, out.Tables[0].Rows[0][1]), "pard-min-goodput")
	b.ReportMetric(cell(b, out.Tables[0].Rows[0][4]), "naive-min-goodput")
}

func BenchmarkFig2bDropRate(b *testing.B) {
	out := runExperiment(b, "fig2b")
	b.ReportMetric(cell(b, out.Tables[0].Rows[0][1]), "pard-drop-pct")
}

func BenchmarkFig2cDropsPerModule(b *testing.B) {
	out := runExperiment(b, "fig2c")
	// last-module drop share of lv-tweet under the reactive policy
	rows := out.Tables[0].Rows
	b.ReportMetric(cell(b, rows[len(rows)-1][1]), "reactive-lastmod-pct")
}

func BenchmarkFig2dTransientDropRate(b *testing.B) {
	out := runExperiment(b, "fig2d")
	max := 0.0
	for _, row := range out.Tables[0].Rows {
		if v := cell(b, row[1]); v > max {
			max = v
		}
	}
	b.ReportMetric(max, "max-transient-drop-pct")
}

func BenchmarkFig6BatchWaitPDF(b *testing.B) {
	out := runExperiment(b, "fig6")
	// q10 of the full M1..M4 aggregation (paper: 0.31).
	b.ReportMetric(cell(b, out.Tables[0].Rows[0][1]), "q10-frac")
}

func BenchmarkFig8DropInvalid(b *testing.B) {
	out := runExperiment(b, "fig8")
	var pardSum, nexusSum float64
	for _, row := range out.Tables[0].Rows {
		pardSum += cell(b, row[1])
		nexusSum += cell(b, row[2])
	}
	n := float64(len(out.Tables[0].Rows))
	b.ReportMetric(pardSum/n, "pard-avg-drop-pct")
	b.ReportMetric(nexusSum/n, "nexus-avg-drop-pct")
}

func BenchmarkFig9MaxDropWindows(b *testing.B) {
	out := runExperiment(b, "fig9")
	b.ReportMetric(float64(len(out.Tables)), "panels")
}

func BenchmarkFig10GoodputTimeline(b *testing.B) {
	out := runExperiment(b, "fig10")
	b.ReportMetric(float64(len(out.Tables)), "panels")
}

func BenchmarkFig11Ablation(b *testing.B) {
	out := runExperiment(b, "fig11")
	for _, row := range out.Tables[0].Rows {
		if row[0] == "pard" {
			b.ReportMetric(cell(b, row[1]), "pard-drop-pct")
		}
	}
}

func BenchmarkFig12aConsumedBudget(b *testing.B) {
	out := runExperiment(b, "fig12a")
	b.ReportMetric(float64(len(out.Tables[0].Rows)), "time-buckets")
}

func BenchmarkFig12bLatencyCDF(b *testing.B) {
	out := runExperiment(b, "fig12b")
	// median ΣW (ms): the uncertain quantity PARD estimates.
	for _, row := range out.Tables[0].Rows {
		if row[0] == "p50" {
			b.ReportMetric(cell(b, row[2]), "median-sumW-ms")
		}
	}
}

func BenchmarkFig12cQueueingBurst(b *testing.B) {
	out := runExperiment(b, "fig12c")
	b.ReportMetric(float64(len(out.Tables)), "policies")
}

func BenchmarkFig12dRemainingBudget(b *testing.B) {
	out := runExperiment(b, "fig12d")
	b.ReportMetric(float64(len(out.Tables[0].Rows)), "requests")
}

func BenchmarkFig13LoadFactor(b *testing.B) {
	out := runExperiment(b, "fig13")
	for _, t := range out.Tables {
		if t.ID != "fig13-switches" {
			continue
		}
		for _, row := range t.Rows {
			if row[0] == "pard" {
				b.ReportMetric(cell(b, row[1]), "pard-switches")
			}
			if row[0] == "pard-instant" {
				b.ReportMetric(cell(b, row[1]), "instant-switches")
			}
		}
	}
}

func BenchmarkFig14aStress(b *testing.B) {
	out := runExperiment(b, "fig14a")
	last := out.Tables[0].Rows[len(out.Tables[0].Rows)-1]
	b.ReportMetric(cell(b, last[1]), "pard-goodput-at-max-rate")
	b.ReportMetric(cell(b, last[4]), "naive-goodput-at-max-rate")
}

func BenchmarkFig14bSLOSensitivity(b *testing.B) {
	out := runExperiment(b, "fig14b")
	b.ReportMetric(cell(b, out.Tables[0].Rows[0][1]), "pard-drop-at-200ms")
}

func BenchmarkFig14cLambdaSensitivity(b *testing.B) {
	out := runExperiment(b, "fig14c")
	for _, row := range out.Tables[0].Rows {
		if row[0] == "0.100" {
			b.ReportMetric(cell(b, row[1]), "lv-drop-at-lambda-0.1")
		}
	}
}

func BenchmarkFig14dWindowSensitivity(b *testing.B) {
	out := runExperiment(b, "fig14d")
	b.ReportMetric(float64(len(out.Tables[0].Rows)), "window-points")
}

func BenchmarkFig15aRAGGoodput(b *testing.B) {
	out := runExperiment(b, "fig15a")
	for _, row := range out.Tables[0].Rows {
		b.ReportMetric(cell(b, row[2]), row[0]+"-drop-pct")
	}
}

func BenchmarkFig15bRAGLatency(b *testing.B) {
	out := runExperiment(b, "fig15b")
	b.ReportMetric(float64(len(out.Tables[0].Rows)), "percentiles")
}

func BenchmarkDAGDynamicPaths(b *testing.B) {
	out := runExperiment(b, "dag-dynamic")
	b.ReportMetric(float64(len(out.Tables[0].Rows)), "traces")
}

// Sharded single-run execution (per-module event lanes).

// benchShardedDA runs the paper's 5-module DA DAG at a balanced high load
// (every module processes the full request stream, so all five lanes carry
// dense traffic) on the selected engine. NetDelay doubles as the lane
// engine's conservative lookahead window.
func benchShardedDA(b *testing.B, engine string, shards int) {
	tr := pard.GenerateTrace(pard.TraceConfig{
		Kind: pard.Steady, Duration: 20 * time.Second, PeakRate: 3500, Seed: 1,
	})
	cfg := pard.SimConfig{
		Spec:         pard.DA(),
		PolicyName:   "pard",
		Trace:        tr,
		Seed:         1,
		SyncPeriod:   time.Second,
		NetDelay:     5 * time.Millisecond,
		FixedWorkers: []int{40, 40, 40, 40, 40},
		Engine:       engine,
		Shards:       shards,
	}
	b.ResetTimer()
	var res *pard.SimResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pard.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.SimEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkShardedDAClassic is the deprecated pre-flip engine — one global
// totally-ordered event heap — kept as the trajectory baseline the lane
// benchmarks below are measured against. Since the default flip it must be
// requested explicitly (Shards: 0 now means "lane engine, sequential").
func BenchmarkShardedDAClassic(b *testing.B) { benchShardedDA(b, pard.EngineClassic, 0) }

// BenchmarkShardedDASequential is the default engine exactly as an unset
// config runs it: per-module lanes, one worker. The canonical event order of
// the sharded path with zero concurrency, and the baseline the differential
// harness compares against. Even single-threaded it beats the classic
// engine on this workload — five shallow per-module heaps replace one deep
// global heap, and typed lane events need no per-event allocation.
func BenchmarkShardedDASequential(b *testing.B) { benchShardedDA(b, "", 1) }

// BenchmarkShardedDASharded runs the same workload with one shard per
// module: lanes advance concurrently inside lookahead windows and the sync
// tick's per-module publication fans out across the shards. Comparing
// ns/op against the two baselines above measures the intra-run speedup of
// per-module event sharding (the win over Sequential requires
// GOMAXPROCS > 1; on a single CPU the two are within noise, i.e. the
// sharding machinery itself costs ~nothing). The differential harness in
// internal/sched proves the outputs are byte-identical to Sequential.
func BenchmarkShardedDASharded(b *testing.B) { benchShardedDA(b, "", 5) }

// benchLaneGroupCfg is the workload for the lane-group barrier benchmarks:
// a short DA run with a tight sync period, so the per-window barrier
// exchange (posts + intents + charges all-gather) dominates the topology
// overhead being measured.
func benchLaneGroupCfg(b *testing.B) pard.SimConfig {
	b.Helper()
	tr := pard.GenerateTrace(pard.TraceConfig{
		Kind: pard.Steady, Duration: 4 * time.Second, PeakRate: 300, Seed: 1,
	})
	return pard.SimConfig{
		Spec:         pard.DA(),
		PolicyName:   "pard",
		Trace:        tr,
		Seed:         1,
		SyncPeriod:   100 * time.Millisecond,
		FixedWorkers: []int{8, 8, 8, 8, 8},
	}
}

// BenchmarkLaneGroupBarrier measures the lane-group exchange machinery by
// running the identical 2-group simulation over both Transport
// implementations: the in-process memTransport (Config.Groups) and the
// framed gob transport over real loopback TCP (internal/dist, the -hosts
// path). The mem/gob gap is the wire cost of the lockstep protocol — gob
// encode/decode plus kernel round trips per exchange; the gob variant also
// spans two full cluster replicas, hub and spoke, per op. Both are gated in
// the BENCH_<n>.json trajectory so protocol regressions (chattier barriers,
// per-exchange allocation growth) surface in CI.
func BenchmarkLaneGroupBarrier(b *testing.B) {
	cfg := benchLaneGroupCfg(b)

	b.Run("mem", func(b *testing.B) {
		c := cfg
		c.Groups = 2
		for i := 0; i < b.N; i++ {
			if _, err := pard.Simulate(c); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("gob-loopback", func(b *testing.B) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		for i := 0; i < b.N; i++ {
			spokeDone := make(chan error, 1)
			go func() {
				conn, err := l.Accept()
				if err != nil {
					spokeDone <- err
					return
				}
				_, err = dist.ServeSim(conn, dist.SimOptions{})
				spokeDone <- err
			}()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dist.RunSimDistributed(cfg, []net.Conn{conn}, dist.SimOptions{}); err != nil {
				b.Fatal(err)
			}
			if err := <-spokeDone; err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweepGrid measures the end-to-end sweep hot loop — trace
// generation, simulation, metrics collection, and percentile finalization —
// on a small Fig. 13-style grid (lv × tweet × {pard, pard-instant} with
// load-factor probes). Each iteration builds a fresh engine with no disk
// cache, so nothing is served warm: allocs/op here is the allocation cost
// of one whole grid, which is what the scratch-buffer reuse across
// metrics/stats/trace/sweep is meant to hold down.
func BenchmarkSweepGrid(b *testing.B) {
	specs := []pard.SweepSpec{
		{App: "lv", Kind: pard.Tweet, Policy: "pard",
			Opts: pard.SweepRunOpts{Probes: pard.ProbeConfig{LoadFactor: true}}},
		{App: "lv", Kind: pard.Tweet, Policy: "pard-instant",
			Opts: pard.SweepRunOpts{Probes: pard.ProbeConfig{LoadFactor: true}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := pard.NewSweepEngine(pard.SweepConfig{
			Workers: 1, BaseSeed: 1, TraceDuration: 30 * time.Second,
		})
		results, err := eng.Sweep(specs)
		if err != nil {
			b.Fatal(err)
		}
		// Finalize the derived metrics every real sweep consumer reads.
		for _, res := range results {
			s := res.Collector.Summary()
			if s.Total == 0 {
				b.Fatal("empty run")
			}
			res.Collector.MinNormalizedGoodput(10 * time.Second)
			res.Collector.MaxDropRate(10 * time.Second)
			res.Collector.LatencyQuantiles(0.5, 0.9, 0.99)
		}
	}
	b.ReportMetric(float64(len(specs)), "grid-points")
}

// BenchmarkServerSubmit measures the live server's request lifecycle on the
// data-plane hot path: submit (atomic ID, slab-allocated request, pooled
// channel, outstanding-list registration), core traversal of a 3-module
// chain, and response delivery. The executor is a deterministic manual
// clock, so no wall-time sleeping pollutes ns/op: requests are submitted in
// batches and the virtual clock stepped until every response resolves.
// Gated in the BENCH_<n>.json trajectory alongside the engine benchmarks —
// this is the path pard-load hammers over HTTP.
func BenchmarkServerSubmit(b *testing.B) {
	lib := profile.NewLibrary()
	if err := lib.Add(profile.Model{
		Name:     "fast",
		Alpha:    200 * time.Microsecond,
		Beta:     100 * time.Microsecond,
		MaxBatch: 8,
	}); err != nil {
		b.Fatal(err)
	}
	const slo = 150 * time.Millisecond
	man := sched.NewManualExecutor()
	s, err := server.New(server.Config{
		Spec:       pipeline.Uniform("bench", 3, "fast", slo),
		Lib:        lib,
		PolicyName: "pard",
		SyncPeriod: 50 * time.Millisecond,
		Seed:       1,
		Exec:       man,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	const batch = 512
	chans := make([]<-chan server.Response, batch)
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if left := b.N - done; left < n {
			n = left
		}
		for j := 0; j < n; j++ {
			chans[j] = s.Submit()
		}
		// Step virtual time until the whole batch resolved (complete or
		// dropped); the core guarantees every injected request terminates.
		next := 0
		for guard := 0; next < n; guard++ {
			man.RunUntil(man.Now() + slo)
			for ; next < n; next++ {
				select {
				case <-chans[next]:
				default:
					goto stepped
				}
			}
		stepped:
			if guard > 1000 {
				b.Fatalf("batch stalled: %d/%d resolved", next, n)
			}
		}
		done += n
	}
	b.StopTimer()
	s.Stop()
}

// Micro-benchmarks for the §5.4 overhead analysis.

// BenchmarkDEPQOps measures put()/get() on the min-max heap at the queue
// depths the paper reports O(log n) costs for.
func BenchmarkDEPQOps(b *testing.B) {
	q := depq.New[int]()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1024; i++ {
		q.Push(i, int64(rng.Intn(1<<20)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i, int64(rng.Intn(1<<20)))
		if i%2 == 0 {
			q.PopMin()
		} else {
			q.PopMax()
		}
	}
}

// BenchmarkStateSync measures one full synchronization round: publishing
// five modules' state and refreshing PARD's estimator and priority
// controllers.
func BenchmarkStateSync(b *testing.B) {
	spec := pipeline.LV()
	durs := make([]time.Duration, spec.N())
	for i := range durs {
		durs[i] = 30 * time.Millisecond
	}
	pol, err := policy.New("pard", policy.Setup{
		Spec: spec,
		Durs: durs,
		Rng:  rand.New(rand.NewSource(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	board := core.NewBoard(spec.N())
	waits := make([]float64, 512)
	rng := rand.New(rand.NewSource(2))
	for i := range waits {
		waits[i] = rng.Float64() * 0.03
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < spec.N(); k++ {
			board.Publish(k, core.ModuleState{
				QueueDelay:  5 * time.Millisecond,
				ProfiledDur: 30 * time.Millisecond,
				BatchWait:   waits,
				InputRate:   300,
				Throughput:  400,
			})
		}
		pol.OnSync(time.Duration(i)*time.Second, board)
	}
}
