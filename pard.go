// Package pard is a Go reproduction of PARD ("PARD: Enhancing Goodput for
// Inference Pipeline via ProActive Request Dropping", EuroSys '26): a DNN
// inference-pipeline serving system that proactively drops requests using
// bi-directional runtime information and adaptive request priority, plus the
// full serving substrate and evaluation harness the paper builds on.
//
// The package is a facade over the implementation packages:
//
//   - Pipelines: the paper's four applications (TM, LV, GM, DA) or custom
//     chains/DAGs defined in code or JSON (§5.1 config format).
//   - Model profiles: offline-profiled latency curves d(b) = α + β·b.
//   - Traces: synthetic wiki/tweet/azure workloads or CSV replays.
//   - Policies: PARD, the paper's baselines (Nexus, Clipper++, Naive) and
//     every Table 1 ablation.
//   - Simulate: a deterministic discrete-event GPU-cluster simulation
//     returning goodput / drop-rate / invalid-rate metrics and probes.
//   - Experiments: regenerate every table and figure of the evaluation.
//
// Quickstart:
//
//	tr := pard.GenerateTrace(pard.TraceConfig{Kind: pard.Tweet, Duration: 5 * time.Minute, Seed: 1})
//	res, err := pard.Simulate(pard.SimConfig{Spec: pard.LV(), PolicyName: "pard", Trace: tr, Seed: 1})
//	fmt.Println(res.Summary.Goodput, res.Summary.DropRate)
package pard

import (
	"io"
	"time"

	"pard/internal/experiments"
	"pard/internal/load"
	"pard/internal/metrics"
	"pard/internal/pipeline"
	"pard/internal/policy"
	"pard/internal/profile"
	"pard/internal/rag"
	"pard/internal/server"
	"pard/internal/simgpu"
	"pard/internal/sweep"
	"pard/internal/trace"
)

// Pipeline definitions (§5.1).
type (
	// Pipeline is a validated module DAG with an end-to-end latency SLO.
	Pipeline = pipeline.Spec
	// Module is one pipeline stage (name, id, pres, subs).
	Module = pipeline.Module
)

// TM returns the 3-module traffic-monitoring pipeline (400 ms SLO).
func TM() *Pipeline { return pipeline.TM() }

// LV returns the 5-module live-video pipeline (500 ms SLO).
func LV() *Pipeline { return pipeline.LV() }

// GM returns the 5-module game-analysis pipeline (600 ms SLO).
func GM() *Pipeline { return pipeline.GM() }

// DA returns the DAG-style live-video pipeline (420 ms SLO).
func DA() *Pipeline { return pipeline.DA() }

// Apps returns the paper's four applications keyed by name (tm, lv, gm,
// da) — the single registry the commands and examples resolve names from.
func Apps() map[string]*Pipeline { return pipeline.Apps() }

// DADynamic returns DA with request-specific dynamic branch selection
// (§5.2): each request takes the pose branch with probability poseProb.
func DADynamic(poseProb float64) *Pipeline { return pipeline.DADynamic(poseProb) }

// Chain builds an n-module linear pipeline running one model per stage.
func Chain(app string, slo time.Duration, n int, model string) *Pipeline {
	return pipeline.Uniform(app, n, model, slo)
}

// ParsePipeline reads a JSON pipeline definition (the paper's
// name/id/pres/subs format plus the SLO) and validates it.
func ParsePipeline(r io.Reader) (*Pipeline, error) { return pipeline.Parse(r) }

// Model profiling (offline profiling pass, §5.1).
type (
	// ModelProfile is a profiled latency curve d(b) = α + β·b.
	ModelProfile = profile.Model
	// ModelLibrary is a named collection of model profiles.
	ModelLibrary = profile.Library
)

// DefaultLibrary returns profiles for all models the paper's applications
// use, calibrated for the simulator (see DESIGN.md substitutions).
func DefaultLibrary() *ModelLibrary { return profile.DefaultLibrary() }

// LoadLibrary parses a profile library from JSON.
func LoadLibrary(r io.Reader) (*ModelLibrary, error) { return profile.Load(r) }

// LoadLibraryScaled returns a copy of lib with every model's latency curve
// scaled by factor (useful for fast live demos).
func LoadLibraryScaled(lib *ModelLibrary, factor float64) (*ModelLibrary, error) {
	return lib.Scaled(factor)
}

// Workload traces.
type (
	// Trace is a concrete request-arrival sequence.
	Trace = trace.Trace
	// TraceConfig parameterizes synthetic trace generation.
	TraceConfig = trace.Config
	// TraceKind names a built-in workload shape.
	TraceKind = trace.Kind
)

// Built-in workload shapes matching the paper's three traces plus synthetic
// helpers.
const (
	Wiki   = trace.Wiki
	Tweet  = trace.Tweet
	Azure  = trace.Azure
	Steady = trace.Steady
	Step   = trace.Step
)

// GenerateTrace synthesizes an arrival trace; it panics on invalid configs
// (use trace.Generate via NewTrace for error returns).
func GenerateTrace(c TraceConfig) *Trace { return trace.MustGenerate(c) }

// NewTrace synthesizes an arrival trace, returning configuration errors.
func NewTrace(c TraceConfig) (*Trace, error) { return trace.Generate(c) }

// ReadTraceCSV replays a real trace from newline-separated arrival offsets
// in seconds.
func ReadTraceCSV(name string, r io.Reader) (*Trace, error) { return trace.ReadCSV(name, r) }

// FixedTrace returns a deterministic constant-rate trace: exactly
// rate·duration arrivals at uniform gaps (load testing and calibration).
func FixedTrace(rate float64, duration time.Duration) *Trace { return trace.Fixed(rate, duration) }

// Policies and simulation.
type (
	// SimConfig fully describes one simulation run.
	SimConfig = simgpu.Config
	// SimResult is everything a run produces (metrics plus probes).
	SimResult = simgpu.Result
	// ProbeConfig selects optional high-volume recordings.
	ProbeConfig = simgpu.ProbeConfig
	// ScalingConfig controls the autoscaling engine.
	ScalingConfig = simgpu.ScalingConfig
	// Summary is the run-level metric aggregate.
	Summary = metrics.Summary
	// MetricsCollector holds per-request outcomes and derives windowed
	// goodput/drop series and latency quantiles (SimResult.Collector).
	MetricsCollector = metrics.Collector
)

// Execution engines for SimConfig.Engine. The lane engine (per-module event
// lanes, deterministic for any shard count) is the default; the classic
// global event heap survives one deprecation cycle to reproduce pre-flip
// numbers. The two order equal-timestamp events differently, so their
// results are not interchangeable.
const (
	EngineLane    = simgpu.EngineLane
	EngineClassic = simgpu.EngineClassic
)

// Policies lists every registered dropping policy: "pard", the baselines
// ("nexus", "clipper++", "naive") and the Table 1 ablations.
func Policies() []string { return policy.Names() }

// ComparisonPolicies lists the headline four-system comparison.
func ComparisonPolicies() []string { return policy.Comparison() }

// AblationPolicies lists PARD plus the Table 1 ablation variants.
func AblationPolicies() []string { return policy.Ablations() }

// Simulate runs one configuration on the discrete-event cluster simulator.
func Simulate(cfg SimConfig) (*SimResult, error) { return simgpu.Run(cfg) }

// Experiments (the paper's tables and figures).
type (
	// Experiment is one registered paper artifact.
	Experiment = experiments.Experiment
	// ExperimentConfig selects scale and seed.
	ExperimentConfig = experiments.Config
	// ExperimentOutput is the rendered tables of one artifact.
	ExperimentOutput = experiments.Output
	// ExperimentTable is one rendered table/series.
	ExperimentTable = experiments.Table
	// ExperimentHarness caches simulation runs across experiments.
	ExperimentHarness = experiments.Harness
)

// Experiment scales.
const (
	ScaleSmoke = experiments.Smoke
	ScaleQuick = experiments.Quick
	ScaleFull  = experiments.Full
)

// Parallel sweeps (deterministic fan-out of independent simulations).
type (
	// SweepEngine executes grids of runs on a bounded worker pool with a
	// single-flight cache; results are identical for any worker count.
	SweepEngine = sweep.Engine
	// SweepConfig sets workers, base seed and trace duration.
	SweepConfig = sweep.Config
	// SweepSpec is one grid point (app, trace kind, policy, options).
	SweepSpec = sweep.Spec
	// SweepRunOpts tweaks one run beyond app/trace/policy.
	SweepRunOpts = sweep.RunOpts
	// SweepProgress reports one finished run to progress callbacks.
	SweepProgress = sweep.Progress
)

// NewSweepEngine builds a parallel sweep engine.
func NewSweepEngine(cfg SweepConfig) *SweepEngine { return sweep.New(cfg) }

// DeriveSeed maps a base seed and a stable key to a distinct per-artifact
// seed (pure; independent of execution order).
func DeriveSeed(base int64, key string) int64 { return sweep.DeriveSeed(base, key) }

// Experiments lists every registered paper artifact.
func Experiments() []Experiment { return experiments.All() }

// NewExperimentHarness builds a harness that caches runs across experiments.
func NewExperimentHarness(cfg ExperimentConfig) *ExperimentHarness {
	return experiments.NewHarness(cfg)
}

// RunExperiment regenerates one paper artifact by ID (e.g. "fig8").
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentOutput, error) {
	e, err := experiments.Get(id)
	if err != nil {
		return nil, err
	}
	return e.Run(experiments.NewHarness(cfg))
}

// Live serving (wall-clock runtime with an HTTP data plane). The server is
// a thin shell over the same scheduling core the simulator runs, so it
// serves chains and DAGs alike with identical drop/priority decisions.
type (
	// ServerConfig describes a live serving deployment.
	ServerConfig = server.Config
	// Server hosts one pipeline — chain or DAG — on wall-clock timers.
	Server = server.Server
	// ServerResponse is the JSON reply of POST /infer.
	ServerResponse = server.Response
	// AdmissionConfig parameterizes the estimator-driven admission gate:
	// requests predicted to miss the SLO are fast-rejected with HTTP 429 +
	// Retry-After before entering the pipeline (ServerConfig.Admission).
	AdmissionConfig = server.AdmissionConfig
)

// NewServer builds (but does not start) a live pipeline server for any
// validated pipeline spec.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Load generation (wall-clock HTTP load against a live server, with a
// matched-load simulator twin).
type (
	// LoadConfig describes one load-generation run against POST /infer.
	LoadConfig = load.Config
	// LoadReport is the aggregate outcome (goodput, outcome split, HDR-style
	// latency quantiles, optional sim comparison).
	LoadReport = load.Report
	// LoadThinkTime is the closed-loop pause between reply and next request.
	LoadThinkTime = load.ThinkTime
	// LoadSimSpec describes the simulator twin of the live deployment for
	// LoadReport.CompareSim.
	LoadSimSpec = load.SimSpec
)

// Load-generation modes.
const (
	// LoadModeOpen replays a trace's arrival schedule regardless of
	// completions (the paper's workload model).
	LoadModeOpen = load.ModeOpen
	// LoadModeClosed runs workers that wait for each reply plus a think time.
	LoadModeClosed = load.ModeClosed
)

// RunLoad executes one load-generation run, blocking until every request
// resolves.
func RunLoad(cfg LoadConfig) (*LoadReport, error) { return load.Run(cfg) }

// RAG case study (§7).
type (
	// RAGConfig parameterizes the retrieval-augmented-generation workflow.
	RAGConfig = rag.Config
	// RAGResult summarizes one RAG run.
	RAGResult = rag.Result
	// RAGPolicy selects the RAG dropping policy.
	RAGPolicy = rag.PolicyKind
)

// RAG dropping policies.
const (
	RAGReactive  = rag.Reactive
	RAGProactive = rag.Proactive
	RAGPredict   = rag.Predict
)

// DefaultRAGConfig returns the Table 2 setup scaled for simulation.
func DefaultRAGConfig(p RAGPolicy) RAGConfig { return rag.DefaultConfig(p) }

// RunRAG executes the RAG workflow simulation.
func RunRAG(cfg RAGConfig) (*RAGResult, error) { return rag.Run(cfg) }
