// Traffic monitoring (the paper's tm application): a 3-model pipeline —
// object detection → face recognition → text recognition — under the spiky
// Azure workload, with a 400 ms SLO. Prints a goodput timeline comparing
// every headline system through the burst windows.
package main

import (
	"fmt"
	"log"
	"time"

	"pard"
)

func main() {
	tr := pard.GenerateTrace(pard.TraceConfig{
		Kind:     pard.Azure,
		Duration: 3 * time.Minute,
		Seed:     7,
	})
	spec := pard.TM()
	fmt.Printf("tm pipeline (%d modules, SLO %v) under azure: %d requests, mean %.0f req/s\n\n",
		spec.N(), spec.SLO, tr.Len(), tr.MeanRate())

	type run struct {
		name   string
		series []float64
		sum    pard.Summary
	}
	var runs []run
	var ts []time.Duration
	for _, pol := range pard.ComparisonPolicies() {
		res, err := pard.Simulate(pard.SimConfig{
			Spec:       spec,
			PolicyName: pol,
			Trace:      tr,
			Seed:       7,
		})
		if err != nil {
			log.Fatal(err)
		}
		t, vs := res.Collector.GoodputSeries(10 * time.Second)
		ts = t
		runs = append(runs, run{name: pol, series: vs, sum: res.Summary})
	}

	fmt.Printf("%-8s", "time")
	for _, r := range runs {
		fmt.Printf("  %10s", r.name)
	}
	fmt.Println("   (normalized goodput per 10s window)")
	for i := range ts {
		fmt.Printf("%-8s", fmt.Sprintf("%.0fs", ts[i].Seconds()))
		for _, r := range runs {
			fmt.Printf("  %10.3f", r.series[i])
		}
		fmt.Println()
	}

	fmt.Printf("\n%-12s %8s %8s %8s\n", "policy", "drop", "invalid", "goodput")
	for _, r := range runs {
		fmt.Printf("%-12s %7.2f%% %7.2f%% %6.1f/s\n",
			r.name, 100*r.sum.DropRate, 100*r.sum.InvalidRate, r.sum.Goodput)
	}
}
