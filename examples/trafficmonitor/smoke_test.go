package main

import (
	"testing"
	"time"

	"pard"
)

// TestSmoke exercises the example's path — TM pipeline under the azure
// trace, comparison policies — at a tiny scale.
func TestSmoke(t *testing.T) {
	tr := pard.GenerateTrace(pard.TraceConfig{Kind: pard.Azure, Duration: 20 * time.Second, Seed: 7})
	for _, pol := range pard.ComparisonPolicies() {
		res, err := pard.Simulate(pard.SimConfig{Spec: pard.TM(), PolicyName: pol, Trace: tr, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Summary.Total == 0 {
			t.Fatalf("%s: no requests simulated", pol)
		}
	}
}
