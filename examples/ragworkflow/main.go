// RAG workflow (§7): a four-stage retrieval-augmented-generation pipeline —
// rewrite → {retrieve ∥ search} → generate — under a 5 s time-to-first-token
// SLO, comparing reactive, proactive and oracle-assisted (predict) dropping.
package main

import (
	"fmt"
	"log"

	"pard"
)

func main() {
	fmt.Println("RAG workflow: rewrite → {retrieve ∥ search} → generate, TTFT SLO 5s")
	fmt.Println()
	fmt.Printf("%-11s %18s %10s %30s\n", "policy", "normalized goodput", "drop rate", "drops per stage (rw/re/se/ge)")
	for _, p := range []pard.RAGPolicy{pard.RAGReactive, pard.RAGProactive, pard.RAGPredict} {
		cfg := pard.DefaultRAGConfig(p)
		res, err := pard.RunRAG(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %18.3f %9.1f%% %20d/%d/%d/%d\n",
			p, res.NormalizedGoodput, 100*res.DropRate,
			res.DropsPerStage[0], res.DropsPerStage[1], res.DropsPerStage[2], res.DropsPerStage[3])
	}
	fmt.Println()
	fmt.Println("paper reference: reactive 39% drops, proactive 17%, predict (oracle output lengths) 11%")
	fmt.Println("key asymmetry: proactive drops before the LLM runs; reactive discovers doomed requests")
	fmt.Println("only after they consumed rewrite decode time and generate prefill slots.")
}
