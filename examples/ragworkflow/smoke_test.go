package main

import (
	"testing"

	"pard"
)

// TestSmoke runs the three RAG dropping policies at a tiny query count.
func TestSmoke(t *testing.T) {
	for _, p := range []pard.RAGPolicy{pard.RAGReactive, pard.RAGProactive, pard.RAGPredict} {
		cfg := pard.DefaultRAGConfig(p)
		cfg.Queries = 200
		res, err := pard.RunRAG(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.NormalizedGoodput <= 0 {
			t.Fatalf("%s: goodput %v", p, res.NormalizedGoodput)
		}
	}
}
