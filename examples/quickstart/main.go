// Quickstart: simulate the live-video pipeline under the bursty tweet
// workload with PARD and print the headline metrics.
package main

import (
	"fmt"
	"log"
	"time"

	"pard"
)

func main() {
	// 1. A workload: the paper's Twitter-shaped trace, 2 minutes.
	tr := pard.GenerateTrace(pard.TraceConfig{
		Kind:     pard.Tweet,
		Duration: 2 * time.Minute,
		Seed:     1,
	})
	fmt.Printf("trace: %d requests, mean %.0f req/s\n", tr.Len(), tr.MeanRate())

	// 2. A pipeline: 5 cascaded models, 500 ms end-to-end SLO.
	spec := pard.LV()

	// 3. Simulate with PARD's proactive dropping.
	res, err := pard.Simulate(pard.SimConfig{
		Spec:       spec,
		PolicyName: "pard",
		Trace:      tr,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	s := res.Summary
	fmt.Printf("goodput:      %.1f req/s\n", s.Goodput)
	fmt.Printf("drop rate:    %.2f%%\n", 100*s.DropRate)
	fmt.Printf("invalid rate: %.2f%% of GPU time wasted\n", 100*s.InvalidRate)
	fmt.Printf("drops by module: ")
	for m, p := range s.PerModuleDropPct {
		fmt.Printf("M%d=%.0f%% ", m+1, p)
	}
	fmt.Println()

	// 4. Compare against reactive dropping (Nexus) on the same workload.
	nexus, err := pard.Simulate(pard.SimConfig{
		Spec:       spec,
		PolicyName: "nexus",
		Trace:      tr,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvs nexus: drop %.2f%% (PARD %.1fx lower), invalid %.2f%% (PARD %.1fx lower)\n",
		100*nexus.Summary.DropRate, nexus.Summary.DropRate/s.DropRate,
		100*nexus.Summary.InvalidRate, nexus.Summary.InvalidRate/s.InvalidRate)
}
