package main

import (
	"testing"
	"time"

	"pard"
)

// TestSmoke exercises the quickstart path (trace → LV pipeline → PARD
// simulation) at a tiny scale so the example's API surface stays valid.
func TestSmoke(t *testing.T) {
	tr := pard.GenerateTrace(pard.TraceConfig{Kind: pard.Tweet, Duration: 20 * time.Second, Seed: 1})
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	res, err := pard.Simulate(pard.SimConfig{Spec: pard.LV(), PolicyName: "pard", Trace: tr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Total == 0 {
		t.Fatal("no requests simulated")
	}
}
