package main

import (
	"testing"
	"time"

	"pard"
)

// TestSmoke exercises the example's path — the DA DAG (static and dynamic
// branches) under the tweet trace — at a tiny scale.
func TestSmoke(t *testing.T) {
	tr := pard.GenerateTrace(pard.TraceConfig{Kind: pard.Tweet, Duration: 20 * time.Second, Seed: 3})
	static := pard.DA()
	if len(static.AllPaths()) < 2 {
		t.Fatalf("da has %d paths, want a fan-out DAG", len(static.AllPaths()))
	}
	for _, spec := range []*pard.Pipeline{static, pard.DADynamic(0.5)} {
		res, err := pard.Simulate(pard.SimConfig{Spec: spec, PolicyName: "pard", Trace: tr, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", spec.App, err)
		}
		if res.Summary.Total == 0 {
			t.Fatalf("%s: no requests simulated", spec.App)
		}
	}
}
