// DAG-style live video analysis (the paper's da application): person
// detection fans out to pose and face recognition in parallel; their
// outputs merge at expression recognition (420 ms SLO). Also runs the §5.2
// variant where each request probabilistically takes only one branch, which
// degrades PARD's latency estimates.
package main

import (
	"fmt"
	"log"
	"time"

	"pard"
)

func main() {
	tr := pard.GenerateTrace(pard.TraceConfig{
		Kind:     pard.Tweet,
		Duration: 2 * time.Minute,
		Seed:     3,
	})

	static := pard.DA()
	fmt.Printf("da pipeline: %d modules, SLO %v, %d source→sink paths\n",
		static.N(), static.SLO, len(static.AllPaths()))
	for _, p := range static.AllPaths() {
		fmt.Printf("  path:")
		for _, id := range p {
			fmt.Printf(" %s", static.Modules[id].Name)
		}
		fmt.Println()
	}
	fmt.Println()

	for _, cfg := range []struct {
		label string
		spec  *pard.Pipeline
	}{
		{"static DAG (split to both branches)", pard.DA()},
		{"dynamic paths (one branch per request, §5.2)", pard.DADynamic(0.5)},
	} {
		res, err := pard.Simulate(pard.SimConfig{
			Spec:       cfg.spec,
			PolicyName: "pard",
			Trace:      tr,
			Seed:       3,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%s\n  drop %.2f%%  invalid %.2f%%  goodput %.1f/s\n\n",
			cfg.label, 100*s.DropRate, 100*s.InvalidRate, s.Goodput)
	}

	// Branch drops invalidate the sibling branch's work: compare invalid
	// rates against the chain version of the same models (lv).
	lv, err := pard.Simulate(pard.SimConfig{
		Spec:       pard.LV(),
		PolicyName: "pard",
		Trace:      tr,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: lv (chain) invalid rate %.2f%% — the paper reports da's invalid rate at 1.21-1.36x lv's\n",
		100*lv.Summary.InvalidRate)
}
