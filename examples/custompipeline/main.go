// Custom deployment walkthrough: define your own models (offline profiling
// results), describe a pipeline in the paper's JSON format, replay a real
// trace from CSV, and evaluate PARD against reactive dropping — everything a
// downstream user does to adopt the library on their own workload.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"pard"
)

// pipelineJSON is the §5.1 configuration format: modules with
// (name, id, pres, subs) plus the end-to-end SLO.
const pipelineJSON = `{
  "app": "docproc",
  "slo_ns": 450000000,
  "modules": [
    {"id": 0, "name": "layout",  "pres": [],  "subs": [1]},
    {"id": 1, "name": "ocr",     "pres": [0], "subs": [2]},
    {"id": 2, "name": "entity",  "pres": [1], "subs": []}
  ]
}`

func main() {
	// 1. Offline profiling results for your models: d(b) = α + β·b.
	lib := mustLib(map[string][3]any{
		"layout": {20 * time.Millisecond, 7 * time.Millisecond, 16},
		"ocr":    {24 * time.Millisecond, 8 * time.Millisecond, 16},
		"entity": {12 * time.Millisecond, 4 * time.Millisecond, 16},
	})

	// 2. The pipeline definition.
	spec, err := pard.ParsePipeline(strings.NewReader(pipelineJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline %s: %d modules, SLO %v\n", spec.App, spec.N(), spec.SLO)

	// 3. A workload: generate one, write it to CSV (as you would export a
	// production trace), then replay it through the CSV path.
	gen := pard.GenerateTrace(pard.TraceConfig{
		Kind: pard.Azure, Duration: 2 * time.Minute, PeakRate: 260, Seed: 11,
	})
	var csv strings.Builder
	if err := gen.WriteCSV(&csv); err != nil {
		log.Fatal(err)
	}
	tr, err := pard.ReadTraceCSV("production", strings.NewReader(csv.String()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d requests, mean %.0f req/s (replayed from CSV)\n\n", tr.Len(), tr.MeanRate())

	// 4. Evaluate.
	fmt.Printf("%-10s %9s %9s %9s\n", "policy", "goodput", "drop", "invalid")
	for _, pol := range []string{"pard", "nexus", "naive"} {
		res, err := pard.Simulate(pard.SimConfig{
			Spec:       spec,
			Lib:        lib,
			PolicyName: pol,
			Trace:      tr,
			Seed:       11,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-10s %8.1f/s %8.2f%% %8.2f%%\n",
			pol, s.Goodput, 100*s.DropRate, 100*s.InvalidRate)
	}
}

// mustLib builds a profile library from {alpha, beta, maxBatch} tuples.
func mustLib(models map[string][3]any) *pard.ModelLibrary {
	lib := pard.DefaultLibrary() // start from defaults, add custom models
	for name, p := range models {
		m := pard.ModelProfile{
			Name:     name,
			Alpha:    p[0].(time.Duration),
			Beta:     p[1].(time.Duration),
			MaxBatch: p[2].(int),
		}
		if err := lib.Add(m); err != nil {
			log.Fatal(err)
		}
	}
	return lib
}
