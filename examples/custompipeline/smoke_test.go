package main

import (
	"strings"
	"testing"

	"pard"
)

// TestSmoke parses the example's JSON pipeline definition and simulates it
// briefly with the example's profiled models.
func TestSmoke(t *testing.T) {
	spec, err := pard.ParsePipeline(strings.NewReader(pipelineJSON))
	if err != nil {
		t.Fatal(err)
	}
	if spec.N() != 3 || spec.App != "docproc" {
		t.Fatalf("parsed %s with %d modules, want docproc/3", spec.App, spec.N())
	}
}
