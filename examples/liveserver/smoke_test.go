package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pard"
)

// TestSmoke builds the example's scaled-down live server and pushes one
// request through its HTTP data plane.
func TestSmoke(t *testing.T) {
	lib, err := pard.LoadLibraryScaled(pard.DefaultLibrary(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := pard.NewServer(pard.ServerConfig{
		Spec:       pard.Chain("live-tm", 25*time.Millisecond, 3, "objdet"),
		Lib:        lib,
		PolicyName: "pard",
		Workers:    []int{2, 2, 2},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/infer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /infer status %d", resp.StatusCode)
	}
}
