package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestSmokeChain builds the example's scaled-down chain server and pushes
// one request through its HTTP data plane.
func TestSmokeChain(t *testing.T) {
	srv, spec, err := buildServer("tm")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.IsChain() {
		t.Fatal("tm should be a chain")
	}
	srv.Start()
	defer srv.Stop()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/infer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /infer status %d", resp.StatusCode)
	}
}

// TestSmokeDAG exercises the -pipeline da path: the live runtime serves the
// fan-out/merge DAG end-to-end, resolving each request exactly once.
func TestSmokeDAG(t *testing.T) {
	srv, spec, err := buildServer("da")
	if err != nil {
		t.Fatal(err)
	}
	if spec.IsChain() {
		t.Fatal("da should be a DAG")
	}
	srv.Start()
	defer srv.Stop()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const n = 10
	for i := 0; i < n; i++ {
		resp, err := http.Post(ts.URL+"/infer", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			ID      uint64 `json:"id"`
			Outcome string `json:"outcome"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.Outcome == "" {
			t.Fatalf("request %d: empty outcome", i)
		}
	}
	if sum := srv.Summary(); sum.Total != n {
		t.Fatalf("summary total = %d, want %d (DAG merge double-counted?)", sum.Total, n)
	}
}

// TestUnknownPipelineRejected covers the -pipeline flag's error path.
func TestUnknownPipelineRejected(t *testing.T) {
	if _, _, err := buildServer("bogus"); err == nil {
		t.Fatal("unknown pipeline accepted")
	}
}
