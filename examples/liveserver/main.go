// Live serving demo: hosts the tm pipeline in-process with real goroutine
// workers (model execution = sleeping profiled durations), fires a burst of
// HTTP requests at it, and prints the live metrics. This exercises the same
// scheduler code as the simulator under a wall clock.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"pard"
)

func main() {
	// Scale the models down ~20x so the demo finishes in seconds while
	// keeping the same shape (three stages, tight SLO).
	lib := pard.DefaultLibrary()
	fast, err := pard.LoadLibraryScaled(lib, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	spec := pard.Chain("live-tm", 25*time.Millisecond, 3, "objdet")

	srv, err := pard.NewServer(pard.ServerConfig{
		Spec:       spec,
		Lib:        fast,
		PolicyName: "pard",
		Workers:    []int{2, 2, 2},
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("live server on %s (pipeline %s, SLO %v)\n", ts.URL, spec.App, spec.SLO)

	// Fire 200 requests: a steady phase then a burst.
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[string]int{}
	fire := func(n int, gap time.Duration) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/infer", "application/json", nil)
				if err != nil {
					return
				}
				defer resp.Body.Close()
				var out pard.ServerResponse
				if json.NewDecoder(resp.Body).Decode(&out) == nil {
					mu.Lock()
					outcomes[string(out.Outcome)]++
					mu.Unlock()
				}
			}()
			time.Sleep(gap)
		}
	}
	fmt.Println("steady phase: 100 requests at 200/s")
	fire(100, 5*time.Millisecond)
	fmt.Println("burst phase:  100 requests as fast as possible")
	fire(100, 0)
	wg.Wait()

	fmt.Printf("outcomes: %v\n", outcomes)
	sum := srv.Summary()
	fmt.Printf("server metrics: total=%d good=%d late=%d dropped=%d (drop rate %.1f%%)\n",
		sum.Total, sum.Good, sum.Late, sum.Dropped, 100*sum.DropRate)
}
