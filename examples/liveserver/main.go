// Live serving demo: hosts one of the paper's pipelines in-process on the
// shared scheduling core under a wall clock (model execution = batch timers
// elapsing scaled profiled durations), fires a burst of HTTP requests at
// it, and prints the live metrics. Chains (tm, lv, gm) and the fan-out/
// merge DAG (da) all run through the same scheduler code as the simulator.
//
//	go run ./examples/liveserver -pipeline da
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"pard"
)

// buildServer assembles the demo server for one of the paper's pipelines,
// scaled ~20x down so the demo finishes in seconds while keeping the same
// shape (same modules and edges, proportionally tight SLO).
func buildServer(name string) (*pard.Server, *pard.Pipeline, error) {
	spec, ok := pard.Apps()[name]
	if !ok {
		var names []string
		for n := range pard.Apps() {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, nil, fmt.Errorf("unknown pipeline %q (want one of %s)", name, strings.Join(names, ", "))
	}
	const scale = 0.05
	fast, err := pard.LoadLibraryScaled(pard.DefaultLibrary(), scale)
	if err != nil {
		return nil, nil, err
	}
	spec.SLO = time.Duration(float64(spec.SLO) * scale)

	workers := make([]int, spec.N())
	for i := range workers {
		workers[i] = 2
	}
	srv, err := pard.NewServer(pard.ServerConfig{
		Spec:       spec,
		Lib:        fast,
		PolicyName: "pard",
		Workers:    workers,
		Seed:       1,
	})
	if err != nil {
		return nil, nil, err
	}
	return srv, spec, nil
}

func main() {
	pipeline := flag.String("pipeline", "tm", "pipeline to host: tm, lv, gm, or the DAG da")
	flag.Parse()

	srv, spec, err := buildServer(*pipeline)
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	shape := "chain"
	if !spec.IsChain() {
		shape = "DAG"
	}
	fmt.Printf("live server on %s (pipeline %s, %s of %d modules, SLO %v)\n",
		ts.URL, spec.App, shape, spec.N(), spec.SLO)

	// Fire 200 requests: a steady phase then a burst.
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[string]int{}
	fire := func(n int, gap time.Duration) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/infer", "application/json", nil)
				if err != nil {
					return
				}
				defer resp.Body.Close()
				var out pard.ServerResponse
				if json.NewDecoder(resp.Body).Decode(&out) == nil {
					mu.Lock()
					outcomes[string(out.Outcome)]++
					mu.Unlock()
				}
			}()
			time.Sleep(gap)
		}
	}
	fmt.Println("steady phase: 100 requests at 200/s")
	fire(100, 5*time.Millisecond)
	fmt.Println("burst phase:  100 requests as fast as possible")
	fire(100, 0)
	wg.Wait()

	fmt.Printf("outcomes: %v\n", outcomes)
	sum := srv.Summary()
	fmt.Printf("server metrics: total=%d good=%d late=%d dropped=%d (drop rate %.1f%%)\n",
		sum.Total, sum.Good, sum.Late, sum.Dropped, 100*sum.DropRate)
}
