package pard_test

import (
	"strings"
	"testing"
	"time"

	"pard"
)

func TestQuickstartFlow(t *testing.T) {
	tr := pard.GenerateTrace(pard.TraceConfig{
		Kind:     pard.Tweet,
		Duration: 60 * time.Second,
		Seed:     1,
	})
	res, err := pard.Simulate(pard.SimConfig{
		Spec:       pard.LV(),
		PolicyName: "pard",
		Trace:      tr,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Total != tr.Len() {
		t.Fatalf("total %d != arrivals %d", res.Summary.Total, tr.Len())
	}
	if res.Summary.Good == 0 {
		t.Fatal("no requests met the SLO")
	}
}

func TestPipelineBuilders(t *testing.T) {
	for name, p := range map[string]*pard.Pipeline{
		"tm": pard.TM(), "lv": pard.LV(), "gm": pard.GM(), "da": pard.DA(),
	} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if pard.DADynamic(0.3).Validate() != nil {
		t.Fatal("dynamic DA invalid")
	}
	c := pard.Chain("demo", 300*time.Millisecond, 3, "facerec")
	if c.N() != 3 {
		t.Fatal("chain builder broken")
	}
}

func TestParsePipelineRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := pard.LV().Write(&b); err != nil {
		t.Fatal(err)
	}
	p, err := pard.ParsePipeline(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if p.App != "lv" {
		t.Fatalf("app = %s", p.App)
	}
}

func TestPolicyLists(t *testing.T) {
	all := pard.Policies()
	if len(all) != 16 {
		t.Fatalf("policies = %d, want 16", len(all))
	}
	if len(pard.ComparisonPolicies()) != 4 {
		t.Fatal("comparison should list 4 systems")
	}
	if len(pard.AblationPolicies()) != 12 {
		t.Fatal("ablations should list 12 variants")
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(pard.Experiments()) < 20 {
		t.Fatalf("only %d experiments registered", len(pard.Experiments()))
	}
	if _, err := pard.RunExperiment("bogus", pard.ExperimentConfig{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	out, err := pard.RunExperiment("fig2a", pard.ExperimentConfig{Scale: pard.ScaleSmoke, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) == 0 || len(out.Tables[0].Rows) == 0 {
		t.Fatal("empty experiment output")
	}
}

func TestSweepEngineFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	eng := pard.NewSweepEngine(pard.SweepConfig{Workers: 4, BaseSeed: 2, TraceDuration: 30 * time.Second})
	specs := []pard.SweepSpec{
		{App: "tm", Kind: pard.Wiki, Policy: "pard"},
		{App: "tm", Kind: pard.Wiki, Policy: "nexus"},
		{App: "lv", Kind: pard.Tweet, Policy: "pard"},
	}
	results, err := eng.Sweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("%d results for %d specs", len(results), len(specs))
	}
	for i, res := range results {
		if res.Summary.Total == 0 {
			t.Fatalf("spec %d: no requests simulated", i)
		}
	}
	if pard.DeriveSeed(1, "a") == pard.DeriveSeed(1, "b") {
		t.Fatal("derived seeds collide")
	}
}

func TestRunRAG(t *testing.T) {
	cfg := pard.DefaultRAGConfig(pard.RAGProactive)
	cfg.Queries = 1000
	res, err := pard.RunRAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 1000 {
		t.Fatalf("total = %d", res.Total)
	}
}

func TestDefaultLibraryAccessible(t *testing.T) {
	lib := pard.DefaultLibrary()
	m, err := lib.Get("persondet")
	if err != nil {
		t.Fatal(err)
	}
	if m.Duration(1) <= 0 {
		t.Fatal("bad profile")
	}
}
