package core

import (
	"fmt"
	"time"

	"pard/internal/stats"
)

// Mode is the request prioritization mechanism in force at a module (§4.3).
type Mode int

// Priority modes.
const (
	// LBF (Low Budget First) serves requests with the smallest remaining
	// latency budget first; used under steady load (μ ≤ 1) to absorb latency
	// uncertainty.
	LBF Mode = iota
	// HBF (High Budget First) serves requests with the largest remaining
	// budget first; used under overload (μ > 1) to preserve budget for
	// downstream modules.
	HBF
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case LBF:
		return "LBF"
	case HBF:
		return "HBF"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// PriorityConfig parameterizes the adaptive controller.
type PriorityConfig struct {
	// Window is the horizon over which the workload is smoothed and the
	// hysteresis boundary ε is computed (the paper's 5 s default, §5.4).
	Window time.Duration
	// Instant disables delayed transition (ε = 0): the PARD-instant
	// ablation.
	Instant bool
	// Fixed pins the mode permanently (PARD-HBF / PARD-LBF ablations).
	Fixed *Mode
	// EpsMin floors ε so micro-noise cannot force a transition exactly at
	// μ = 1 even on perfectly steady workloads.
	EpsMin float64
	// EpsMax caps ε so extreme bursts cannot freeze the controller.
	EpsMax float64
}

// DefaultPriorityConfig returns PARD's configuration.
func DefaultPriorityConfig() PriorityConfig {
	return PriorityConfig{Window: 5 * time.Second, EpsMin: 0.02, EpsMax: 0.25}
}

// FixedMode returns a PriorityConfig pinning the controller to mode m.
func FixedMode(m Mode) PriorityConfig {
	c := DefaultPriorityConfig()
	c.Fixed = &m
	return c
}

// PriorityController implements the delayed adaptive priority transition:
// switch to HBF when μ > 1+ε, to LBF when μ < 1−ε, hold otherwise, with
// ε = Σ|T_in − T_s| / ΣT_in computed over the smoothing window so bursty
// workloads widen the hysteresis band (§4.3).
type PriorityController struct {
	cfg      PriorityConfig
	mode     Mode
	inWin    *stats.SlidingWindow // raw T_in samples
	diffWin  *stats.SlidingWindow // |T_in − T_s| samples
	lastMu   float64
	lastEps  float64
	switches int
}

// NewPriorityController returns a controller starting in LBF (steady-state
// assumption).
func NewPriorityController(cfg PriorityConfig) *PriorityController {
	if cfg.Window <= 0 {
		panic(fmt.Sprintf("core: priority window must be positive, got %v", cfg.Window))
	}
	if cfg.EpsMin < 0 || cfg.EpsMax < cfg.EpsMin {
		panic(fmt.Sprintf("core: bad eps bounds [%v, %v]", cfg.EpsMin, cfg.EpsMax))
	}
	return &PriorityController{
		cfg:     cfg,
		mode:    LBF,
		inWin:   stats.NewSlidingWindow(cfg.Window),
		diffWin: stats.NewSlidingWindow(cfg.Window),
	}
}

// Update feeds one observation of input workload tin (req/s) and module
// throughput tm (req/s) at time now, and returns the mode to use.
func (p *PriorityController) Update(now time.Duration, tin, tm float64) Mode {
	if p.cfg.Fixed != nil {
		p.mode = *p.cfg.Fixed
		return p.mode
	}
	// Smoothed workload T_s over the sliding window (before adding the new
	// sample so the deviation measures surprise).
	ts, ok := p.inWin.Mean(now)
	if !ok {
		ts = tin
	}
	p.inWin.Add(now, tin)
	diff := tin - ts
	if diff < 0 {
		diff = -diff
	}
	p.diffWin.Add(now, diff)

	eps := 0.0
	if !p.cfg.Instant {
		sumIn := p.inWin.Sum(now)
		if sumIn > 0 {
			eps = p.diffWin.Sum(now) / sumIn
		}
		if eps < p.cfg.EpsMin {
			eps = p.cfg.EpsMin
		}
		if eps > p.cfg.EpsMax {
			eps = p.cfg.EpsMax
		}
	}

	mu := 0.0
	if tm > 0 {
		mu = tin / tm
	}
	p.lastMu, p.lastEps = mu, eps

	switch {
	case mu > 1+eps:
		if p.mode != HBF {
			p.switches++
		}
		p.mode = HBF
	case mu < 1-eps:
		if p.mode != LBF {
			p.switches++
		}
		p.mode = LBF
	}
	return p.mode
}

// Mode returns the current mode without updating.
func (p *PriorityController) Mode() Mode { return p.mode }

// LoadFactor returns the last computed μ.
func (p *PriorityController) LoadFactor() float64 { return p.lastMu }

// Epsilon returns the last computed hysteresis boundary ε.
func (p *PriorityController) Epsilon() float64 { return p.lastEps }

// Switches returns how many HBF↔LBF transitions have occurred; Fig. 13
// contrasts PARD's few transitions with PARD-instant's thrashing.
func (p *PriorityController) Switches() int { return p.switches }
