package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pard/internal/pipeline"
)

func uniformWaits(d time.Duration, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * d.Seconds()
	}
	return out
}

func boardFor(spec *pipeline.Spec, q, d time.Duration, waits []float64) *Board {
	b := NewBoard(spec.N())
	for k := 0; k < spec.N(); k++ {
		b.Publish(k, ModuleState{QueueDelay: q, ProfiledDur: d, BatchWait: waits})
	}
	return b
}

func TestBoardPublishGet(t *testing.T) {
	b := NewBoard(3)
	if b.N() != 3 {
		t.Fatalf("N = %d", b.N())
	}
	b.Publish(1, ModuleState{QueueDelay: time.Millisecond})
	if got := b.Get(1).QueueDelay; got != time.Millisecond {
		t.Fatalf("get = %v", got)
	}
	if got := b.Get(0).QueueDelay; got != 0 {
		t.Fatalf("unpublished state = %v", got)
	}
}

func TestBoardPanicsOnZeroModules(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBoard(0)
}

func TestLsubZeroAtSink(t *testing.T) {
	spec := pipeline.LV()
	rng := rand.New(rand.NewSource(1))
	e := NewEstimator(spec, DefaultEstimatorConfig(), rng)
	b := boardFor(spec, 5*time.Millisecond, 20*time.Millisecond, uniformWaits(20*time.Millisecond, 500, rng))
	e.Refresh(b)
	if got := e.Lsub(spec.Sink()); got != 0 {
		t.Fatalf("sink Lsub = %v, want 0", got)
	}
}

func TestLsubDecreasesAlongChain(t *testing.T) {
	spec := pipeline.LV()
	rng := rand.New(rand.NewSource(2))
	e := NewEstimator(spec, DefaultEstimatorConfig(), rng)
	b := boardFor(spec, 5*time.Millisecond, 20*time.Millisecond, uniformWaits(20*time.Millisecond, 500, rng))
	e.Refresh(b)
	for k := 1; k < spec.N(); k++ {
		if e.Lsub(k) >= e.Lsub(k-1) {
			t.Fatalf("Lsub should shrink along the chain: Lsub(%d)=%v >= Lsub(%d)=%v",
				k, e.Lsub(k), k-1, e.Lsub(k-1))
		}
	}
}

func TestLsubComponents(t *testing.T) {
	// 2-module chain: at module 0, downstream is module 1 only.
	spec := pipeline.Uniform("u2", 2, "facerec", 300*time.Millisecond)
	rng := rand.New(rand.NewSource(3))
	q, d := 7*time.Millisecond, 25*time.Millisecond

	// PARD-back: no downstream at all.
	back := NewEstimator(spec, EstimatorConfig{Lambda: 0.1, Samples: 100, Wait: WaitZero}, rng)
	back.Refresh(boardFor(spec, q, d, nil))
	if back.Lsub(0) != 0 {
		t.Fatalf("back Lsub = %v", back.Lsub(0))
	}

	// PARD-sf: only ΣD.
	sf := NewEstimator(spec, EstimatorConfig{Lambda: 0.1, Samples: 100, IncludeDur: true, Wait: WaitZero}, rng)
	sf.Refresh(boardFor(spec, q, d, nil))
	if sf.Lsub(0) != d {
		t.Fatalf("sf Lsub = %v, want %v", sf.Lsub(0), d)
	}

	// PARD-lower: ΣQ + ΣD.
	lower := NewEstimator(spec, EstimatorConfig{Lambda: 0.1, Samples: 100, IncludeQueue: true, IncludeDur: true, Wait: WaitZero}, rng)
	lower.Refresh(boardFor(spec, q, d, nil))
	if lower.Lsub(0) != q+d {
		t.Fatalf("lower Lsub = %v, want %v", lower.Lsub(0), q+d)
	}

	// PARD-upper: ΣQ + 2ΣD.
	upper := NewEstimator(spec, EstimatorConfig{Lambda: 0.1, Samples: 100, IncludeQueue: true, IncludeDur: true, Wait: WaitUpper}, rng)
	upper.Refresh(boardFor(spec, q, d, nil))
	if upper.Lsub(0) != q+2*d {
		t.Fatalf("upper Lsub = %v, want %v", upper.Lsub(0), q+2*d)
	}
}

func TestLsubQuantileBetweenBounds(t *testing.T) {
	spec := pipeline.LV()
	rng := rand.New(rand.NewSource(4))
	q, d := 5*time.Millisecond, 20*time.Millisecond
	waits := uniformWaits(d, 1000, rng)

	mk := func(wait WaitMode, lambda float64) time.Duration {
		e := NewEstimator(spec, EstimatorConfig{Lambda: lambda, Samples: 2000, IncludeQueue: true, IncludeDur: true, Wait: wait}, rng)
		e.Refresh(boardFor(spec, q, d, waits))
		return e.Lsub(0)
	}
	lower, mid, upper := mk(WaitZero, 0.1), mk(WaitQuantile, 0.1), mk(WaitUpper, 0.1)
	if !(lower < mid && mid < upper) {
		t.Fatalf("ordering violated: %v %v %v", lower, mid, upper)
	}
	// Monotone in λ.
	lo, hi := mk(WaitQuantile, 0.05), mk(WaitQuantile, 0.9)
	if lo >= hi {
		t.Fatalf("quantile not monotone in λ: %v vs %v", lo, hi)
	}
}

func TestLsubIrwinHallQuantiles(t *testing.T) {
	// §4.2's worked example: equal-duration 4-module pipeline, λ=0.1 →
	// downstream wait quantiles ≈ 0.843d (3 uniforms at module 1) and
	// ≈ 0.10d (1 uniform at module 3).
	d := 100 * time.Millisecond
	spec := pipeline.Uniform("u4", 4, "facerec", 400*time.Millisecond)
	rng := rand.New(rand.NewSource(5))
	waits := uniformWaits(d, 5000, rng)
	e := NewEstimator(spec, EstimatorConfig{Lambda: 0.1, Samples: 20000, Wait: WaitQuantile}, rng)
	e.Refresh(boardFor(spec, 0, d, waits))
	// With IncludeQueue/IncludeDur off, Lsub is exactly the wait quantile.
	w0 := e.Lsub(0).Seconds() / d.Seconds() // 3 downstream uniforms
	w2 := e.Lsub(2).Seconds() / d.Seconds() // 1 downstream uniform
	if math.Abs(w0-0.843) > 0.08 {
		t.Fatalf("w at module 0 = %v·d, want ≈0.843d", w0)
	}
	if math.Abs(w2-0.10) > 0.05 {
		t.Fatalf("w at module 2 = %v·d, want ≈0.10d", w2)
	}
}

func TestLsubDAGTakesMaxPath(t *testing.T) {
	spec := pipeline.DA()
	rng := rand.New(rand.NewSource(6))
	b := NewBoard(spec.N())
	// Make the pose branch (module 1) slow and the face branch fast.
	durs := []time.Duration{10, 90, 10, 10, 10}
	for k := 0; k < spec.N(); k++ {
		b.Publish(k, ModuleState{ProfiledDur: durs[k] * time.Millisecond})
	}
	e := NewEstimator(spec, EstimatorConfig{Lambda: 0.1, Samples: 100, IncludeDur: true, Wait: WaitZero}, rng)
	e.Refresh(b)
	// From source: max(90+10+10, 10+10+10) = 110ms.
	if got := e.Lsub(0); got != 110*time.Millisecond {
		t.Fatalf("DAG Lsub = %v, want 110ms", got)
	}
}

func TestEstimateEndToEnd(t *testing.T) {
	spec := pipeline.Uniform("u2", 2, "facerec", 300*time.Millisecond)
	rng := rand.New(rand.NewSource(7))
	e := NewEstimator(spec, EstimatorConfig{Lambda: 0.1, Samples: 100, IncludeDur: true, Wait: WaitZero}, rng)
	b := boardFor(spec, 0, 30*time.Millisecond, nil)
	e.Refresh(b)
	// ts=10ms, te=100ms, dk=25ms, Lsub(0)=30ms → 145ms.
	got := e.EstimateEndToEnd(10*time.Millisecond, 100*time.Millisecond, 25*time.Millisecond, 0)
	if got != 145*time.Millisecond {
		t.Fatalf("L = %v, want 145ms", got)
	}
}

func TestExplainBreakdown(t *testing.T) {
	spec := pipeline.Uniform("u3", 3, "facerec", 300*time.Millisecond)
	rng := rand.New(rand.NewSource(11))
	cfg := EstimatorConfig{Lambda: 0.1, Samples: 500, IncludeQueue: true, IncludeDur: true, Wait: WaitQuantile}
	e := NewEstimator(spec, cfg, rng)
	q, d := 8*time.Millisecond, 25*time.Millisecond
	b := boardFor(spec, q, d, uniformWaits(d, 500, rng))
	e.Refresh(b)
	br := e.Explain(b, 0)
	if len(br.Path) != 2 {
		t.Fatalf("path = %v, want 2 downstream modules", br.Path)
	}
	if br.Queue != 2*q {
		t.Fatalf("ΣQ = %v, want %v", br.Queue, 2*q)
	}
	if br.Exec != 2*d {
		t.Fatalf("ΣD = %v, want %v", br.Exec, 2*d)
	}
	if br.Wait <= 0 || br.Wait > 2*d {
		t.Fatalf("ΣW estimate %v outside (0, %v]", br.Wait, 2*d)
	}
	// Total must equal the cached Lsub (modulo MC noise on the same seed:
	// Explain recomputes, so allow the sampling tolerance).
	if diff := br.Total(cfg) - e.Lsub(0); diff < -5*time.Millisecond || diff > 5*time.Millisecond {
		t.Fatalf("Explain total %v differs from Lsub %v", br.Total(cfg), e.Lsub(0))
	}
	// Sink explains to an empty breakdown.
	if br := e.Explain(b, 2); len(br.Path) != 0 || br.Total(cfg) != 0 {
		t.Fatalf("sink breakdown = %+v", br)
	}
}

func TestExplainDAGPicksDominantPath(t *testing.T) {
	spec := pipeline.DA()
	rng := rand.New(rand.NewSource(12))
	b := NewBoard(spec.N())
	durs := []time.Duration{10, 90, 10, 10, 10}
	for k := 0; k < spec.N(); k++ {
		b.Publish(k, ModuleState{ProfiledDur: durs[k] * time.Millisecond})
	}
	e := NewEstimator(spec, EstimatorConfig{Lambda: 0.1, Samples: 100, IncludeDur: true, Wait: WaitZero}, rng)
	e.Refresh(b)
	br := e.Explain(b, 0)
	if br.Path[0] != 1 { // the slow pose branch dominates
		t.Fatalf("dominant path = %v, want the pose branch", br.Path)
	}
	if br.Exec != 110*time.Millisecond {
		t.Fatalf("dominant ΣD = %v", br.Exec)
	}
}

func TestAnalyticWaitMode(t *testing.T) {
	spec := pipeline.Uniform("u4", 4, "facerec", 400*time.Millisecond)
	rng := rand.New(rand.NewSource(13))
	d := 100 * time.Millisecond
	e := NewEstimator(spec, EstimatorConfig{Lambda: 0.1, Samples: 1, Wait: WaitAnalytic}, rng)
	e.Refresh(boardFor(spec, 0, d, nil))
	// 3 downstream uniforms at λ=0.1 → ≈0.843d (no samples needed).
	got := e.Lsub(0).Seconds() / d.Seconds()
	if math.Abs(got-0.843) > 0.05 {
		t.Fatalf("analytic w = %v·d, want ≈0.843d", got)
	}
}

func TestEstimatorPanicsOnBadConfig(t *testing.T) {
	spec := pipeline.TM()
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []EstimatorConfig{
		{Lambda: -0.1, Samples: 10},
		{Lambda: 1.5, Samples: 10},
		{Lambda: 0.1, Samples: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v accepted", cfg)
				}
			}()
			NewEstimator(spec, cfg, rng)
		}()
	}
}

func TestSplitBudgets(t *testing.T) {
	durs := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	budgets := SplitBudgets(600*time.Millisecond, durs)
	if budgets[0] != 100*time.Millisecond || budgets[1] != 200*time.Millisecond || budgets[2] != 300*time.Millisecond {
		t.Fatalf("budgets = %v", budgets)
	}
	cum := CumulativeBudgets(budgets)
	if cum[0] != 100*time.Millisecond || cum[2] != 600*time.Millisecond {
		t.Fatalf("cumulative = %v", cum)
	}
	// Zero durations fall back to an even split.
	even := SplitBudgets(300*time.Millisecond, []time.Duration{0, 0, 0})
	if even[0] != 100*time.Millisecond {
		t.Fatalf("even split = %v", even)
	}
}

func TestPriorityControllerSteadyStaysLBF(t *testing.T) {
	p := NewPriorityController(DefaultPriorityConfig())
	for i := 0; i < 100; i++ {
		now := time.Duration(i) * time.Second
		if m := p.Update(now, 100, 200); m != LBF {
			t.Fatalf("t=%v: mode = %v, want LBF", now, m)
		}
	}
	if p.Switches() != 0 {
		t.Fatalf("switches = %d", p.Switches())
	}
}

func TestPriorityControllerOverloadSwitchesToHBF(t *testing.T) {
	p := NewPriorityController(DefaultPriorityConfig())
	var m Mode
	for i := 0; i < 20; i++ {
		m = p.Update(time.Duration(i)*time.Second, 300, 200)
	}
	if m != HBF {
		t.Fatalf("mode = %v under μ=1.5, want HBF", m)
	}
	if p.LoadFactor() != 1.5 {
		t.Fatalf("μ = %v", p.LoadFactor())
	}
}

func TestPriorityControllerHysteresisHolds(t *testing.T) {
	cfg := DefaultPriorityConfig()
	cfg.EpsMin = 0.1
	p := NewPriorityController(cfg)
	// Drive into HBF.
	for i := 0; i < 10; i++ {
		p.Update(time.Duration(i)*time.Second, 400, 200)
	}
	if p.Mode() != HBF {
		t.Fatal("not in HBF")
	}
	// μ = 1.05 is inside [1−ε, 1+ε] for ε ≥ 0.1 → hold HBF.
	if m := p.Update(11*time.Second, 210, 200); m != HBF {
		t.Fatalf("mode flipped inside hysteresis band: %v (ε=%v)", m, p.Epsilon())
	}
	// μ = 0.5 clearly below band → LBF.
	if m := p.Update(12*time.Second, 100, 200); m != LBF {
		t.Fatalf("mode = %v under μ=0.5, want LBF", m)
	}
}

func TestPriorityControllerInstantThrashes(t *testing.T) {
	mk := func(instant bool) int {
		cfg := DefaultPriorityConfig()
		cfg.Instant = instant
		cfg.EpsMin = 0.05
		p := NewPriorityController(cfg)
		// Oscillate μ between 0.97 and 1.03 (inside a 5% band).
		for i := 0; i < 200; i++ {
			tin := 97.0
			if i%2 == 1 {
				tin = 103.0
			}
			p.Update(time.Duration(i)*100*time.Millisecond, tin, 100)
		}
		return p.Switches()
	}
	instant, delayed := mk(true), mk(false)
	if instant <= delayed {
		t.Fatalf("instant switches (%d) should exceed delayed (%d)", instant, delayed)
	}
	if delayed != 0 {
		t.Fatalf("delayed transition should hold inside the band, switched %d times", delayed)
	}
}

func TestPriorityControllerEpsilonGrowsWithBurstiness(t *testing.T) {
	steady := NewPriorityController(DefaultPriorityConfig())
	bursty := NewPriorityController(DefaultPriorityConfig())
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		now := time.Duration(i) * 100 * time.Millisecond
		steady.Update(now, 100, 100)
		tin := 100.0
		if rng.Intn(4) == 0 {
			tin = 400
		}
		bursty.Update(now, tin, 100)
	}
	if bursty.Epsilon() <= steady.Epsilon() {
		t.Fatalf("ε should expand under bursts: bursty %v vs steady %v", bursty.Epsilon(), steady.Epsilon())
	}
}

func TestPriorityControllerFixedModes(t *testing.T) {
	h := NewPriorityController(FixedMode(HBF))
	l := NewPriorityController(FixedMode(LBF))
	for i := 0; i < 10; i++ {
		now := time.Duration(i) * time.Second
		if h.Update(now, 1, 1000) != HBF {
			t.Fatal("fixed HBF moved")
		}
		if l.Update(now, 1000, 1) != LBF {
			t.Fatal("fixed LBF moved")
		}
	}
}

func TestPriorityControllerPanics(t *testing.T) {
	for _, cfg := range []PriorityConfig{
		{Window: 0},
		{Window: time.Second, EpsMin: -1},
		{Window: time.Second, EpsMin: 0.5, EpsMax: 0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v accepted", cfg)
				}
			}()
			NewPriorityController(cfg)
		}()
	}
}

func TestModeString(t *testing.T) {
	if LBF.String() != "LBF" || HBF.String() != "HBF" {
		t.Fatal("mode strings wrong")
	}
	if Mode(7).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}

func BenchmarkEstimatorRefreshLV(b *testing.B) {
	spec := pipeline.LV()
	rng := rand.New(rand.NewSource(1))
	e := NewEstimator(spec, DefaultEstimatorConfig(), rng)
	board := boardFor(spec, 5*time.Millisecond, 20*time.Millisecond, uniformWaits(20*time.Millisecond, 1000, rng))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Refresh(board)
	}
}

// BenchmarkBatchWaitEstimation measures the §5.4 overhead of a single
// full-resolution (M=10,000) distribution update for a 5-module pipeline.
func BenchmarkBatchWaitEstimation(b *testing.B) {
	spec := pipeline.LV()
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultEstimatorConfig()
	cfg.Samples = 10000
	e := NewEstimator(spec, cfg, rng)
	board := boardFor(spec, 5*time.Millisecond, 20*time.Millisecond, uniformWaits(20*time.Millisecond, 10000, rng))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Refresh(board)
	}
}

func BenchmarkPriorityControllerUpdate(b *testing.B) {
	p := NewPriorityController(DefaultPriorityConfig())
	for i := 0; i < b.N; i++ {
		p.Update(time.Duration(i)*time.Millisecond, float64(90+i%20), 100)
	}
}
