package core

import (
	"sync"
	"testing"
	"time"
)

// TestBoardConcurrentPublishGet hammers the shared state board from many
// goroutines at once — the access pattern the live server creates now that
// worker timers, sync ticks and HTTP submits share one Board across real
// threads. Run under -race (CI does) this doubles as the data-race proof;
// the invariant checked here is that readers only ever observe complete
// snapshots, never a torn mix of two publishes.
func TestBoardConcurrentPublishGet(t *testing.T) {
	const (
		modules = 4
		writers = 8 // two writers per module: write-write and read-write races
		readers = 8
		rounds  = 2000
	)
	b := NewBoard(modules)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers publish self-consistent snapshots: every field of round i
	// derives from i, so a torn read is detectable.
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= rounds; i++ {
				st := ModuleState{
					QueueDelay:  time.Duration(i) * time.Millisecond,
					ProfiledDur: time.Duration(i) * time.Microsecond,
					InputRate:   float64(i),
					Throughput:  float64(2 * i),
					BatchWait:   []float64{float64(i), float64(i)},
					Overloaded:  i%2 == 0,
				}
				b.Publish(w%modules, st)
			}
		}()
	}

	errc := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := 0; k < modules; k++ {
					s := b.Get(k)
					i := int(s.InputRate)
					if i == 0 {
						continue // initial zero state
					}
					if s.QueueDelay != time.Duration(i)*time.Millisecond ||
						s.Throughput != float64(2*i) ||
						len(s.BatchWait) != 2 || s.BatchWait[0] != float64(i) {
						select {
						case errc <- "torn snapshot observed":
						default:
						}
						return
					}
				}
			}
		}()
	}

	// Let writers finish, then release readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(stop)
	}()
	<-done
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
}

// TestBoardHighReaderHammer is the admission-gate access pattern: a huge
// reader population (every HTTP submit consults the board-backed gate)
// against a single periodic publisher per module. With the old RWMutex this
// serialized all readers through one cache line; with per-module atomic
// snapshots it must stay race-clean AND torn-free at reader counts far above
// the writer count. Run under -race in CI.
func TestBoardHighReaderHammer(t *testing.T) {
	const (
		modules = 3
		readers = 64
		rounds  = 500
	)
	b := NewBoard(modules)
	var wg sync.WaitGroup

	// One publisher per module, self-consistent snapshots as above.
	for k := 0; k < modules; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= rounds; i++ {
				b.Publish(k, ModuleState{
					QueueDelay:  time.Duration(i) * time.Millisecond,
					ProfiledDur: time.Duration(i) * time.Microsecond,
					InputRate:   float64(i),
					Throughput:  float64(2 * i),
					BatchWait:   []float64{float64(i)},
				})
			}
		}()
	}

	errc := make(chan string, readers)
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := 0; k < modules; k++ {
					s := b.Get(k)
					i := int(s.InputRate)
					if i == 0 {
						continue
					}
					if s.QueueDelay != time.Duration(i)*time.Millisecond ||
						s.Throughput != float64(2*i) ||
						len(s.BatchWait) != 1 || s.BatchWait[0] != float64(i) {
						select {
						case errc <- "torn snapshot under high reader load":
						default:
						}
						return
					}
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
}

// BenchmarkBoardGetParallel measures the read side under contention: every
// proc hammers Get while one goroutine republishes — the shape the live
// server's admission gate and sync loop create at high -conns. The lock-free
// board should scale reads near-linearly where the RWMutex serialized them.
func BenchmarkBoardGetParallel(b *testing.B) {
	board := NewBoard(4)
	st := ModuleState{
		QueueDelay:  5 * time.Millisecond,
		ProfiledDur: 30 * time.Millisecond,
		InputRate:   300,
		Throughput:  400,
		BatchWait:   []float64{0.01, 0.02},
	}
	for k := 0; k < board.N(); k++ {
		board.Publish(k, st)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			board.Publish(i%board.N(), st)
			time.Sleep(time.Millisecond)
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		k := 0
		for pb.Next() {
			s := board.Get(k % 4)
			if s.Throughput == 0 {
				b.Error("zero snapshot")
			}
			k++
		}
	})
}

// BenchmarkBoardPublish measures copy-on-publish cost (one heap copy + one
// atomic store per call) — the price paid per module per sync tick for the
// lock-free read path.
func BenchmarkBoardPublish(b *testing.B) {
	board := NewBoard(1)
	st := ModuleState{QueueDelay: time.Millisecond, InputRate: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		board.Publish(0, st)
	}
}
