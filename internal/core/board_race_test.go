package core

import (
	"sync"
	"testing"
	"time"
)

// TestBoardConcurrentPublishGet hammers the shared state board from many
// goroutines at once — the access pattern the live server creates now that
// worker timers, sync ticks and HTTP submits share one Board across real
// threads. Run under -race (CI does) this doubles as the data-race proof;
// the invariant checked here is that readers only ever observe complete
// snapshots, never a torn mix of two publishes.
func TestBoardConcurrentPublishGet(t *testing.T) {
	const (
		modules = 4
		writers = 8 // two writers per module: write-write and read-write races
		readers = 8
		rounds  = 2000
	)
	b := NewBoard(modules)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers publish self-consistent snapshots: every field of round i
	// derives from i, so a torn read is detectable.
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= rounds; i++ {
				st := ModuleState{
					QueueDelay:  time.Duration(i) * time.Millisecond,
					ProfiledDur: time.Duration(i) * time.Microsecond,
					InputRate:   float64(i),
					Throughput:  float64(2 * i),
					BatchWait:   []float64{float64(i), float64(i)},
					Overloaded:  i%2 == 0,
				}
				b.Publish(w%modules, st)
			}
		}()
	}

	errc := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := 0; k < modules; k++ {
					s := b.Get(k)
					i := int(s.InputRate)
					if i == 0 {
						continue // initial zero state
					}
					if s.QueueDelay != time.Duration(i)*time.Millisecond ||
						s.Throughput != float64(2*i) ||
						len(s.BatchWait) != 2 || s.BatchWait[0] != float64(i) {
						select {
						case errc <- "torn snapshot observed":
						default:
						}
						return
					}
				}
			}
		}()
	}

	// Let writers finish, then release readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(stop)
	}()
	<-done
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
}
