// Package core implements PARD's two contributions (§4): the proactive
// latency estimator built from bi-directional runtime information (State
// Planner + Request Broker, §4.2) and the adaptive request priority
// controller with delayed HBF/LBF transition (§4.3).
//
// Everything here is pure scheduling logic over published module state; the
// discrete-event simulator (internal/simgpu) and the wall-clock server
// (internal/server) both drive it unchanged.
package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"pard/internal/pipeline"
	"pard/internal/stats"
)

// ModuleState is the compact state a module's controller publishes at each
// synchronization tick (§4.1 step ② / §5.4 "state synchronization"): recent
// average queueing delay, profiled execution duration at the current target
// batch size, a sample of recent batch waits, input rate and throughput.
type ModuleState struct {
	// QueueDelay is the recent linear-weighted average queueing delay q_i.
	QueueDelay time.Duration
	// ProfiledDur is d_i at the module's current target batch size.
	ProfiledDur time.Duration
	// BatchWait holds sampled recent batch-wait observations in seconds
	// (reservoir sampled; the estimator convolves these across modules).
	BatchWait []float64
	// InputRate is the module's recent input workload T_in (req/s).
	InputRate float64
	// Throughput is the module's capacity T_m (req/s) given batch size,
	// execution duration and worker count.
	Throughput float64
	// Overloaded marks DAGOR-style overload (average queueing delay above
	// threshold); used only by the PARD-oc ablation.
	Overloaded bool
	// WCL is the module's recent worst-case latency (queueing + batch wait +
	// execution); used only by the PARD-WCL ablation.
	WCL time.Duration
}

// Board is the cross-module state view maintained by controller
// synchronization. Readers see the most recently published snapshot per
// module, which is up to one sync period stale — exactly the information
// staleness the real system has.
//
// Publish and Get are safe for concurrent use and lock-free: each module
// slot holds an atomic pointer to an immutable snapshot, published
// copy-on-write. The simulator drives the board single-threaded; the live
// server shares it across real goroutines (sync ticks, the admission gate's
// per-request reads at arbitrary HTTP concurrency), and no reader ever
// blocks a publisher or another reader. A reader never observes a partially
// published state — it sees the whole previous snapshot or the whole new
// one (the BatchWait slice is built fresh by the publisher and treated as
// immutable thereafter).
type Board struct {
	states []atomic.Pointer[ModuleState]
}

// NewBoard returns a board for n modules with zeroed state.
func NewBoard(n int) *Board {
	if n < 1 {
		panic(fmt.Sprintf("core: board needs >=1 modules, got %d", n))
	}
	b := &Board{states: make([]atomic.Pointer[ModuleState], n)}
	zero := new(ModuleState) // immutable, safe to share across slots
	for i := range b.states {
		b.states[i].Store(zero)
	}
	return b
}

// N returns the module count.
func (b *Board) N() int { return len(b.states) }

// Publish stores module k's snapshot: the value is copied once onto the
// heap and installed with a single atomic pointer swap.
func (b *Board) Publish(k int, s ModuleState) {
	b.states[k].Store(&s)
}

// Get returns module k's last published snapshot by value. The returned
// BatchWait slice aliases the published snapshot and must be treated as
// read-only.
func (b *Board) Get(k int) ModuleState {
	return *b.states[k].Load()
}

// WaitMode selects how the estimator treats downstream batch wait ΣW.
type WaitMode int

// Downstream batch-wait estimation modes.
const (
	// WaitQuantile uses the λ-quantile of the Monte-Carlo-convolved
	// downstream batch-wait distribution (PARD's sweet spot w_k).
	WaitQuantile WaitMode = iota
	// WaitZero assumes ΣW = 0 (PARD-lower).
	WaitZero
	// WaitUpper assumes ΣW = Σd_i (PARD-upper).
	WaitUpper
	// WaitAnalytic evaluates the λ-quantile of the Irwin-Hall sum in closed
	// form (CLT with exact moments), assuming W_i ~ U[0, d_i]. It skips the
	// Monte-Carlo sampling and the empirical wait windows entirely — cheaper
	// per sync, but blind to non-uniform wait shapes (an extension beyond
	// the paper, ablatable as "pard-analytic").
	WaitAnalytic
)

// EstimatorConfig parameterizes the Lsub estimator; the zero value is not
// valid, use DefaultEstimatorConfig.
type EstimatorConfig struct {
	// Lambda is the quantile λ for WaitQuantile mode (default 0.1, §4.2).
	Lambda float64
	// Samples is the Monte-Carlo sample count M (paper default 10,000; the
	// simulator default trades a little estimator resolution for run time).
	Samples int
	// IncludeQueue includes downstream queueing ΣQ in Lsub.
	IncludeQueue bool
	// IncludeDur includes downstream execution ΣD in Lsub.
	IncludeDur bool
	// Wait selects the ΣW estimation mode.
	Wait WaitMode
}

// DefaultEstimatorConfig returns PARD's configuration: λ=0.1, full
// bi-directional information.
func DefaultEstimatorConfig() EstimatorConfig {
	return EstimatorConfig{
		Lambda:       0.1,
		Samples:      2000,
		IncludeQueue: true,
		IncludeDur:   true,
		Wait:         WaitQuantile,
	}
}

// Estimator computes each module's downstream latency budget estimate Lsub
// (Eq. 1/3). Estimates are recomputed from the board on Refresh — once per
// sync tick, not per request — and cached, mirroring the State Planner's
// asynchronous update thread (§5.4 overheads).
type Estimator struct {
	cfg   EstimatorConfig
	spec  *pipeline.Spec
	paths [][][]int // paths[k]: downstream paths (module id sequences) from k
	lsub  []time.Duration
	rng   *rand.Rand

	// computePath scratch, reused across paths and sync ticks: srcScratch
	// collects the per-module batch-wait sources, sumScratch holds the
	// Monte-Carlo sums, dsScratch the analytic per-module durations.
	srcScratch [][]float64
	sumScratch []float64
	dsScratch  []float64
}

// NewEstimator builds an estimator for the pipeline. The spec must be valid.
func NewEstimator(spec *pipeline.Spec, cfg EstimatorConfig, rng *rand.Rand) *Estimator {
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		panic(fmt.Sprintf("core: lambda %v outside [0,1]", cfg.Lambda))
	}
	if cfg.Samples < 1 {
		panic(fmt.Sprintf("core: samples %d < 1", cfg.Samples))
	}
	n := spec.N()
	e := &Estimator{
		cfg:   cfg,
		spec:  spec,
		paths: make([][][]int, n),
		lsub:  make([]time.Duration, n),
		rng:   rng,
	}
	for k := 0; k < n; k++ {
		e.paths[k] = spec.DownstreamPaths(k)
	}
	return e
}

// Refresh recomputes every module's cached Lsub from the board. For DAG
// pipelines the estimate for a module is the maximum over its downstream
// paths (§4.2, §5.1).
func (e *Estimator) Refresh(b *Board) {
	for k := range e.lsub {
		e.lsub[k] = e.computeLsub(b, k)
	}
}

// Lsub returns module k's cached downstream latency estimate.
func (e *Estimator) Lsub(k int) time.Duration { return e.lsub[k] }

// Breakdown decomposes one downstream path's Lsub estimate into the three
// components of Eq. 1 (ΣQ, ΣD, estimated ΣW), plus the path it covers.
type Breakdown struct {
	// Path is the module ID sequence the estimate covers.
	Path []int
	// Queue is the aggregated recent queueing delay ΣQ.
	Queue time.Duration
	// Exec is the aggregated profiled execution ΣD.
	Exec time.Duration
	// Wait is the estimated aggregated batch wait (w_k under the configured
	// mode).
	Wait time.Duration
}

// Total returns the path's contribution to Lsub under the estimator config.
func (br Breakdown) Total(cfg EstimatorConfig) time.Duration {
	var total time.Duration
	if cfg.IncludeQueue {
		total += br.Queue
	}
	if cfg.IncludeDur {
		total += br.Exec
	}
	total += br.Wait
	return total
}

// computePath evaluates one downstream path's breakdown from the board. It
// reuses the estimator's scratch buffers (this runs per path per sync tick),
// so an Estimator is not safe for concurrent use — it never was: the
// Monte-Carlo rng draw order is part of the deterministic output.
func (e *Estimator) computePath(b *Board, path []int) Breakdown {
	br := Breakdown{Path: path}
	waitSrc := e.srcScratch[:0]
	for _, id := range path {
		s := b.Get(id)
		br.Queue += s.QueueDelay
		br.Exec += s.ProfiledDur
		if len(s.BatchWait) > 0 {
			waitSrc = append(waitSrc, s.BatchWait)
		}
	}
	e.srcScratch = waitSrc
	switch e.cfg.Wait {
	case WaitZero:
		// nothing
	case WaitUpper:
		br.Wait = br.Exec
	case WaitAnalytic:
		ds := e.dsScratch[:0]
		for _, id := range path {
			ds = append(ds, b.Get(id).ProfiledDur.Seconds())
		}
		e.dsScratch = ds
		w := stats.UniformSumQuantile(ds, e.cfg.Lambda)
		br.Wait = time.Duration(w * float64(time.Second))
	case WaitQuantile:
		var w float64
		w, e.sumScratch = stats.ConvolveQuantileInto(e.sumScratch, waitSrc, e.cfg.Lambda, e.cfg.Samples, e.rng)
		wd := time.Duration(w * float64(time.Second))
		if wd > br.Exec {
			wd = br.Exec // W_i never exceeds d_i per module (Fig. 3b)
		}
		br.Wait = wd
	}
	return br
}

func (e *Estimator) computeLsub(b *Board, k int) time.Duration {
	paths := e.paths[k]
	if len(paths) == 0 {
		return 0
	}
	var max time.Duration
	for _, path := range paths {
		if total := e.computePath(b, path).Total(e.cfg); total > max {
			max = total
		}
	}
	return max
}

// Explain returns the breakdown of module k's dominant downstream path
// (the one whose total defines Lsub), recomputed from the board. Useful for
// understanding *why* the Request Broker dropped a request.
func (e *Estimator) Explain(b *Board, k int) Breakdown {
	paths := e.paths[k]
	if len(paths) == 0 {
		return Breakdown{}
	}
	best := e.computePath(b, paths[0])
	for _, path := range paths[1:] {
		if br := e.computePath(b, path); br.Total(e.cfg) > best.Total(e.cfg) {
			best = br
		}
	}
	return best
}

// EntryEstimate is the admission gate's read of Eq. 1 at the pipeline entry:
// the predicted end-to-end latency of a request arriving at module k right
// now — k's recent queueing delay plus its profiled execution plus the
// cached downstream estimate Lsub. Unlike Refresh this allocates nothing and
// costs one lock-free board read, so a host may evaluate it per sync tick
// (after Refresh) and compare the cached result against the SLO per request.
func (e *Estimator) EntryEstimate(b *Board, k int) time.Duration {
	s := b.Get(k)
	return s.QueueDelay + s.ProfiledDur + e.lsub[k]
}

// EstimateEndToEnd is the Request Broker's Eq. 3: the end-to-end latency of
// a request sent at ts, whose batch at module k is expected to start
// executing at te with profiled duration dk, plus the cached downstream
// estimate. te-ts covers Lpre + Q_k + W_k exactly (all determined at
// decision time t_b).
func (e *Estimator) EstimateEndToEnd(ts, te time.Duration, dk time.Duration, k int) time.Duration {
	return te - ts + dk + e.lsub[k]
}

// SplitBudgets allocates the end-to-end SLO into fixed per-module budgets
// proportional to profiled durations: SLO_k = SLO·d_k/Σd (the Clipper++ and
// PARD-split scheme). durs must hold each module's profiled duration.
func SplitBudgets(slo time.Duration, durs []time.Duration) []time.Duration {
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	out := make([]time.Duration, len(durs))
	if sum <= 0 {
		for i := range out {
			out[i] = slo / time.Duration(len(durs))
		}
		return out
	}
	for i, d := range durs {
		out[i] = time.Duration(float64(slo) * float64(d) / float64(sum))
	}
	return out
}

// CumulativeBudgets turns per-module budgets into prefix sums: the latency a
// request may have accumulated by the time it finishes module k.
func CumulativeBudgets(budgets []time.Duration) []time.Duration {
	out := make([]time.Duration, len(budgets))
	var acc time.Duration
	for i, b := range budgets {
		acc += b
		out[i] = acc
	}
	return out
}
