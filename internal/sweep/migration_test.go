package sweep

import (
	"testing"

	"pard/internal/simgpu"
)

// TestEngineCacheIsolation is the engine-flip migration test: a cache dir
// populated under one execution engine must never serve the other. The two
// engines order equal-timestamp events differently, so a silently shared
// entry would be a wrong result, not a fast one. Isolation comes from the
// mandatory |eng= key marker (and, transitively, from the distinct derived
// seeds those keys imply).
func TestEngineCacheIsolation(t *testing.T) {
	laneSpec := smokeSpec()    // engine default = lane
	classicSpec := smokeSpec() // explicit deprecation-cycle knob
	classicSpec.Opts.Engine = simgpu.EngineClassic
	laneKey, classicKey := "run|"+laneSpec.Key(), "run|"+classicSpec.Key()
	if laneKey == classicKey {
		t.Fatalf("lane and classic specs share a cache key: %q", laneKey)
	}

	// Both directions: populate with one engine, probe with a fresh process
	// (a fresh Engine over the same dir) for both keys.
	dirs := []struct {
		name         string
		warm, cold   Spec
		warmK, coldK string
	}{
		{"classic-then-lane", classicSpec, laneSpec, classicKey, laneKey},
		{"lane-then-classic", laneSpec, classicSpec, laneKey, classicKey},
	}
	for _, d := range dirs {
		t.Run(d.name, func(t *testing.T) {
			dir := t.TempDir()
			e1 := diskEngine(t, dir, 1)
			if _, err := e1.Run(d.warm); err != nil {
				t.Fatal(err)
			}

			e2 := diskEngine(t, dir, 1)
			if _, ok := e2.Lookup(d.warmK); !ok {
				t.Fatalf("%s: populated entry %q not served from disk", d.name, d.warmK)
			}
			if _, ok := e2.Lookup(d.coldK); ok {
				t.Fatalf("%s: entry for %q served to the other engine (%q)", d.name, d.warmK, d.coldK)
			}
			// And an actual run on the other engine recomputes rather than
			// reusing the warm entry: the results must differ (different
			// engine, different derived seed).
			r1, err := e1.Run(d.warm)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := e2.Run(d.cold)
			if err != nil {
				t.Fatal(err)
			}
			if r1.SimEvents == r2.SimEvents && r1.Summary.GPUTotal == r2.Summary.GPUTotal &&
				r1.Summary.Good == r2.Summary.Good {
				t.Fatalf("%s: cross-engine runs produced identical results — entry likely shared", d.name)
			}
		})
	}
}

// TestTopoCacheIsolation extends the migration contract to the |topo= key
// marker: a spec with a lane-group topology is a distinct grid point from
// the flat spec (mirroring |sh=), in both directions. Note the asymmetry
// with the engine marker: topo entries are bit-identical to flat entries AT
// THE SAME SEED (invariant #5), but the marker changes the derived seed, so
// a cross-served entry would still be a wrong result.
func TestTopoCacheIsolation(t *testing.T) {
	flat := smokeSpec()
	grouped := smokeSpec()
	grouped.Opts.Groups = 2
	flatKey, groupedKey := "run|"+flat.Key(), "run|"+grouped.Key()
	if flatKey == groupedKey {
		t.Fatalf("flat and lane-grouped specs share a cache key: %q", flatKey)
	}

	dirs := []struct {
		name         string
		warm, cold   Spec
		warmK, coldK string
	}{
		{"topo-then-flat", grouped, flat, groupedKey, flatKey},
		{"flat-then-topo", flat, grouped, flatKey, groupedKey},
	}
	for _, d := range dirs {
		t.Run(d.name, func(t *testing.T) {
			dir := t.TempDir()
			e1 := diskEngine(t, dir, 1)
			if _, err := e1.Run(d.warm); err != nil {
				t.Fatal(err)
			}

			e2 := diskEngine(t, dir, 1)
			if _, ok := e2.Lookup(d.warmK); !ok {
				t.Fatalf("%s: populated entry %q not served from disk", d.name, d.warmK)
			}
			if _, ok := e2.Lookup(d.coldK); ok {
				t.Fatalf("%s: entry for %q served across the topology marker (%q)", d.name, d.warmK, d.coldK)
			}
		})
	}
}
