package sweep

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
	"sync"

	"os"
	"pard/internal/simgpu"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pard/internal/trace"
)

func diskEngine(t *testing.T, dir string, seed int64) *Engine {
	t.Helper()
	e := New(Config{
		Workers:       2,
		BaseSeed:      seed,
		TraceDuration: 30 * time.Second,
		CacheDir:      dir,
	})
	if err := e.DiskError(); err != nil {
		t.Fatal(err)
	}
	return e
}

func smokeSpec() Spec {
	return Spec{App: "tm", Kind: trace.Steady, Policy: "pard"}
}

// TestDiskCacheRoundTrip runs one grid point cold, then re-runs it through a
// fresh engine sharing the cache directory: the second run must be a disk
// hit producing a deep-equal result without recomputing.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()

	e1 := diskEngine(t, dir, 1)
	r1, err := e1.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := e1.DiskStats(); hits != 0 || misses == 0 {
		t.Fatalf("cold run: hits=%d misses=%d", hits, misses)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.gob"))
	if len(files) == 0 {
		t.Fatal("cold run persisted nothing")
	}

	e2 := diskEngine(t, dir, 1)
	r2, err := e2.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := e2.DiskStats(); hits == 0 {
		t.Fatal("warm run had no disk hits")
	}
	if !reflect.DeepEqual(r1.Summary, r2.Summary) {
		t.Fatalf("summaries differ:\ncold %+v\nwarm %+v", r1.Summary, r2.Summary)
	}
	if !reflect.DeepEqual(r1.Collector.Records(), r2.Collector.Records()) {
		t.Fatal("per-request records differ after disk round trip")
	}
	if r1.Workload != r2.Workload || r1.PolicyName != r2.PolicyName ||
		!reflect.DeepEqual(r1.TargetBatches, r2.TargetBatches) ||
		!reflect.DeepEqual(r1.PeakWorkers, r2.PeakWorkers) {
		t.Fatal("run metadata differs after disk round trip")
	}
}

// TestDiskCacheScopedBySeed proves a different base seed never reuses
// another seed's entries (run seeds derive from the base).
func TestDiskCacheScopedBySeed(t *testing.T) {
	dir := t.TempDir()
	e1 := diskEngine(t, dir, 1)
	if _, err := e1.Run(smokeSpec()); err != nil {
		t.Fatal(err)
	}
	e2 := diskEngine(t, dir, 2)
	if _, err := e2.Run(smokeSpec()); err != nil {
		t.Fatal(err)
	}
	if hits, _ := e2.DiskStats(); hits != 0 {
		t.Fatalf("seed 2 hit seed 1's cache entries (%d hits)", hits)
	}
}

// TestDiskCacheIgnoresCorruptEntries overwrites a cache file with garbage:
// the engine must fall back to recomputing, not fail.
func TestDiskCacheIgnoresCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	e1 := diskEngine(t, dir, 1)
	r1, err := e1.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.gob"))
	for _, f := range files {
		if err := os.WriteFile(f, []byte("not a gob"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e2 := diskEngine(t, dir, 1)
	r2, err := e2.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := e2.DiskStats(); hits != 0 {
		t.Fatal("corrupt entry counted as hit")
	}
	if !reflect.DeepEqual(r1.Summary, r2.Summary) {
		t.Fatal("recomputed result differs")
	}
}

// TestDiskCacheTraceReuse covers the second artifact type: synthesized
// traces round-trip through the disk cache too.
func TestDiskCacheTraceReuse(t *testing.T) {
	dir := t.TempDir()
	e1 := diskEngine(t, dir, 1)
	tr1, err := e1.Trace(trace.Wiki)
	if err != nil {
		t.Fatal(err)
	}
	e2 := diskEngine(t, dir, 1)
	tr2, err := e2.Trace(trace.Wiki)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := e2.DiskStats(); hits != 1 {
		t.Fatalf("trace reload: %d hits, want 1", hits)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatal("trace differs after disk round trip")
	}
}

// TestDiskCacheQuarantinesCorruptEntries corrupts persisted entries — a
// flipped byte inside one, a crash-style truncation of another — and
// verifies the sweep still completes with byte-identical results while the
// damaged files are renamed aside (so they never serve, and never get
// re-read) and the quarantine is logged.
func TestDiskCacheQuarantinesCorruptEntries(t *testing.T) {
	encode := func(r *simgpu.Result) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	dir := t.TempDir()
	e1 := diskEngine(t, dir, 1)
	r1, err := e1.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := encode(r1)

	files, _ := filepath.Glob(filepath.Join(dir, "*.gob"))
	if len(files) < 2 {
		t.Fatalf("expected run + trace entries, found %v", files)
	}
	sort.Strings(files)
	// Entry one: flip a byte of the embedded scope string — the frame still
	// decodes, but verification must reject (and quarantine) it.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(data, []byte("v3|seed="))
	if idx < 0 {
		t.Fatal("scope string not found in entry bytes")
	}
	data[idx] ^= 0xFF
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Entry two: a crash-style truncation — the frame no longer decodes.
	if err := os.Truncate(files[1], 10); err != nil {
		t.Fatal(err)
	}

	var logMu sync.Mutex
	var logs []string
	e2 := New(Config{
		Workers: 2, BaseSeed: 1, TraceDuration: 30 * time.Second, CacheDir: dir,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err := e2.DiskError(); err != nil {
		t.Fatal(err)
	}
	rs, err := e2.Sweep([]Spec{smokeSpec()})
	if err != nil {
		t.Fatalf("sweep over a corrupt cache failed: %v", err)
	}
	if !bytes.Equal(encode(rs[0]), want) {
		t.Fatal("recomputed result not byte-identical to the original")
	}
	if hits, _ := e2.DiskStats(); hits != 0 {
		t.Fatalf("corrupt entries served as hits (%d)", hits)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(quarantined) != 2 {
		t.Fatalf("quarantined %d entries, want 2 (%v)", len(quarantined), quarantined)
	}
	logMu.Lock()
	joined := strings.Join(logs, "\n")
	logMu.Unlock()
	if !strings.Contains(joined, "quarantined corrupt cache entry") {
		t.Fatalf("quarantine not logged:\n%s", joined)
	}

	// The recompute re-persisted clean entries: a third engine hits again,
	// and the quarantined bytes are left alone for post-mortems.
	e3 := diskEngine(t, dir, 1)
	r3, err := e3.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := e3.DiskStats(); hits == 0 {
		t.Fatal("re-persisted entries not served as hits")
	}
	if !bytes.Equal(encode(r3), want) {
		t.Fatal("re-persisted result not byte-identical")
	}
}
