package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pard/internal/trace"
)

func diskEngine(t *testing.T, dir string, seed int64) *Engine {
	t.Helper()
	e := New(Config{
		Workers:       2,
		BaseSeed:      seed,
		TraceDuration: 30 * time.Second,
		CacheDir:      dir,
	})
	if err := e.DiskError(); err != nil {
		t.Fatal(err)
	}
	return e
}

func smokeSpec() Spec {
	return Spec{App: "tm", Kind: trace.Steady, Policy: "pard"}
}

// TestDiskCacheRoundTrip runs one grid point cold, then re-runs it through a
// fresh engine sharing the cache directory: the second run must be a disk
// hit producing a deep-equal result without recomputing.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()

	e1 := diskEngine(t, dir, 1)
	r1, err := e1.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := e1.DiskStats(); hits != 0 || misses == 0 {
		t.Fatalf("cold run: hits=%d misses=%d", hits, misses)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.gob"))
	if len(files) == 0 {
		t.Fatal("cold run persisted nothing")
	}

	e2 := diskEngine(t, dir, 1)
	r2, err := e2.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := e2.DiskStats(); hits == 0 {
		t.Fatal("warm run had no disk hits")
	}
	if !reflect.DeepEqual(r1.Summary, r2.Summary) {
		t.Fatalf("summaries differ:\ncold %+v\nwarm %+v", r1.Summary, r2.Summary)
	}
	if !reflect.DeepEqual(r1.Collector.Records(), r2.Collector.Records()) {
		t.Fatal("per-request records differ after disk round trip")
	}
	if r1.Workload != r2.Workload || r1.PolicyName != r2.PolicyName ||
		!reflect.DeepEqual(r1.TargetBatches, r2.TargetBatches) ||
		!reflect.DeepEqual(r1.PeakWorkers, r2.PeakWorkers) {
		t.Fatal("run metadata differs after disk round trip")
	}
}

// TestDiskCacheScopedBySeed proves a different base seed never reuses
// another seed's entries (run seeds derive from the base).
func TestDiskCacheScopedBySeed(t *testing.T) {
	dir := t.TempDir()
	e1 := diskEngine(t, dir, 1)
	if _, err := e1.Run(smokeSpec()); err != nil {
		t.Fatal(err)
	}
	e2 := diskEngine(t, dir, 2)
	if _, err := e2.Run(smokeSpec()); err != nil {
		t.Fatal(err)
	}
	if hits, _ := e2.DiskStats(); hits != 0 {
		t.Fatalf("seed 2 hit seed 1's cache entries (%d hits)", hits)
	}
}

// TestDiskCacheIgnoresCorruptEntries overwrites a cache file with garbage:
// the engine must fall back to recomputing, not fail.
func TestDiskCacheIgnoresCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	e1 := diskEngine(t, dir, 1)
	r1, err := e1.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.gob"))
	for _, f := range files {
		if err := os.WriteFile(f, []byte("not a gob"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e2 := diskEngine(t, dir, 1)
	r2, err := e2.Run(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := e2.DiskStats(); hits != 0 {
		t.Fatal("corrupt entry counted as hit")
	}
	if !reflect.DeepEqual(r1.Summary, r2.Summary) {
		t.Fatal("recomputed result differs")
	}
}

// TestDiskCacheTraceReuse covers the second artifact type: synthesized
// traces round-trip through the disk cache too.
func TestDiskCacheTraceReuse(t *testing.T) {
	dir := t.TempDir()
	e1 := diskEngine(t, dir, 1)
	tr1, err := e1.Trace(trace.Wiki)
	if err != nil {
		t.Fatal(err)
	}
	e2 := diskEngine(t, dir, 1)
	tr2, err := e2.Trace(trace.Wiki)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := e2.DiskStats(); hits != 1 {
		t.Fatalf("trace reload: %d hits, want 1", hits)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatal("trace differs after disk round trip")
	}
}
