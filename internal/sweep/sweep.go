// Package sweep executes independent simulation runs in parallel while
// preserving sequential semantics: a sweep over a grid of run specs at a
// fixed base seed produces byte-identical results no matter how many
// workers execute it (including one).
//
// The engine owns three responsibilities that together make parallel
// fan-out safe for the evaluation harness:
//
//   - Determinism: every run and every synthesized trace receives a seed
//     derived from the base seed plus the artifact's stable cache key
//     (DeriveSeed), never from scheduling order or shared RNG streams.
//   - Caching: results and traces are memoized under their cache key with
//     single-flight semantics, so grid points shared between figures (e.g.
//     Figs. 8-10 reuse the same 48 runs) compute exactly once even when
//     requested concurrently.
//   - Bounded concurrency: at most Workers runs execute at a time
//     (runtime.NumCPU() by default); results come back in input order with
//     serialized progress callbacks.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"pard/internal/profile"
)

// DeriveSeed maps a base seed and a stable key to a distinct per-artifact
// seed. The derivation is pure (FNV-1a over base and key), so the same
// (base, key) pair yields the same seed in every process and under any
// execution order, while different keys get independent RNG streams —
// grid points no longer share one stream through the base seed.
func DeriveSeed(base int64, key string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s", base, key)
	s := int64(h.Sum64() &^ (1 << 63))
	if s == 0 {
		s = 1
	}
	return s
}

// Progress reports one executed artifact — a simulation run ("run|…"
// keys) or a trace synthesis ("trace|…" keys). Callbacks are serialized;
// Done counts executed artifacts and Total counts unique artifacts
// discovered so far (both monotone). Cache hits are not work and are
// never reported.
type Progress struct {
	Done    int
	Total   int
	Key     string
	Err     error
	Elapsed time.Duration
}

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds concurrent runs. <= 0 selects runtime.NumCPU();
	// 1 gives fully sequential execution.
	Workers int
	// BaseSeed is the root of all derived seeds (default 1).
	BaseSeed int64
	// TraceDuration is the virtual length of synthesized traces.
	TraceDuration time.Duration
	// Library provides model profiles (default profile.DefaultLibrary()).
	Library *profile.Library
	// OnProgress, when set, is invoked (serially) after each job finishes.
	OnProgress func(Progress)
	// CacheDir, when set, persists finished artifacts to disk (gob entries
	// keyed by the stable cache keys, scoped by base seed and trace
	// duration) so repeated invocations reuse finished grid points across
	// processes. Disk hits fill the in-memory cache without counting as
	// executed work.
	CacheDir string
	// Logf, when set, receives cache-maintenance logging — notably corrupt
	// disk entries being quarantined. Nil discards.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.TraceDuration <= 0 {
		c.TraceDuration = 300 * time.Second
	}
	if c.Library == nil {
		c.Library = profile.DefaultLibrary()
	}
	return c
}

// flight is one in-progress or finished cache entry (single-flight).
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// finishedFlight wraps an already-computed value as a completed flight.
func finishedFlight(val any) *flight {
	f := &flight{done: make(chan struct{}), val: val}
	close(f.done)
	return f
}

// Engine runs jobs on a bounded worker pool with a single-flight cache.
// All methods are safe for concurrent use.
type Engine struct {
	cfg     Config
	sem     chan struct{}
	disk    *diskCache
	diskErr error

	mu          sync.Mutex
	cache       map[string]*flight
	distributor Distributor

	// pmu serializes progress callbacks and guards the counters, separate
	// from mu so a callback may call back into the engine.
	pmu       sync.Mutex
	submitted int
	finished  int
}

// New returns an engine for the config.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.Workers),
		cache: map[string]*flight{},
	}
	if cfg.CacheDir != "" {
		d, err := newDiskCache(cfg.CacheDir, cfg.BaseSeed, fmt.Sprintf("dur=%v", cfg.TraceDuration), cfg.Logf)
		if err != nil {
			e.diskErr = err
		} else {
			e.disk = d
		}
	}
	return e
}

// DiskError reports why the configured cache directory could not be opened
// (nil when unconfigured or healthy).
func (e *Engine) DiskError() error { return e.diskErr }

// DiskStats returns disk-cache lookup counters (zeros when unconfigured).
func (e *Engine) DiskStats() (hits, misses int) {
	if e.disk == nil {
		return 0, 0
	}
	return e.disk.stats()
}

// Config returns the effective engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// BaseSeed returns the engine's root seed.
func (e *Engine) BaseSeed() int64 { return e.cfg.BaseSeed }

// SeedFor derives the stable seed for an artifact key.
func (e *Engine) SeedFor(key string) int64 { return DeriveSeed(e.cfg.BaseSeed, key) }

// peek returns the existing flight for key, if any, without creating one.
func (e *Engine) peek(key string) (*flight, bool) {
	e.mu.Lock()
	f, ok := e.cache[key]
	e.mu.Unlock()
	return f, ok
}

// Lookup returns the finished cached value for key without computing
// anything: a completed in-memory entry, else a disk hit (which then fills
// the in-memory cache). In-flight computations and cached errors report a
// miss. Together with Install it forms the cache injection seam a
// distributed coordinator merges remote results through.
func (e *Engine) Lookup(key string) (any, bool) {
	e.mu.Lock()
	f, ok := e.cache[key]
	e.mu.Unlock()
	if ok {
		select {
		case <-f.done:
			if f.err != nil {
				return nil, false
			}
			return f.val, true
		default:
			return nil, false
		}
	}
	if e.disk == nil {
		return nil, false
	}
	v, ok := e.disk.load(key)
	if !ok {
		return nil, false
	}
	e.mu.Lock()
	if f, raced := e.cache[key]; raced {
		// A computation started while we read disk; its (identical, by
		// determinism) value wins if finished, else this stays a miss.
		e.mu.Unlock()
		select {
		case <-f.done:
			if f.err == nil {
				return f.val, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
	e.cache[key] = finishedFlight(v)
	e.mu.Unlock()
	return v, true
}

// Install records an externally computed value for key — the merge path for
// results produced by remote workers. The value enters the in-memory cache
// and, when configured, the disk cache, exactly as if the engine had
// computed it; installs are not work and never count as progress. An
// existing entry (finished or in flight) wins: per-key seed derivation makes
// both values byte-identical, so dropping the duplicate is safe.
func (e *Engine) Install(key string, val any) {
	e.mu.Lock()
	if _, ok := e.cache[key]; ok {
		e.mu.Unlock()
		return
	}
	e.cache[key] = finishedFlight(val)
	e.mu.Unlock()
	if e.disk != nil {
		e.disk.store(key, val)
	}
}

// Do returns the cached value for key, computing it with fn on first use.
// fn receives the seed derived from the key; concurrent callers with the
// same key share a single execution and its result (errors included).
func (e *Engine) Do(key string, fn func(seed int64) (any, error)) (any, error) {
	e.mu.Lock()
	if f, ok := e.cache[key]; ok {
		e.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight{done: make(chan struct{})}
	e.cache[key] = f
	e.mu.Unlock()
	if e.disk != nil {
		if v, ok := e.disk.load(key); ok {
			// A disk hit is not work: it fills the in-memory cache without
			// counting toward progress, like any other cache hit.
			f.val = v
			close(f.done)
			return f.val, nil
		}
	}
	e.pmu.Lock()
	e.submitted++
	e.pmu.Unlock()
	start := time.Now()
	f.val, f.err = fn(e.SeedFor(key))
	close(f.done)
	if f.err == nil && e.disk != nil {
		e.disk.store(key, f.val)
	}
	e.report(key, f.err, time.Since(start))
	return f.val, f.err
}

// Job is one unit of work in a generic sweep: a stable cache key plus the
// function computing its value from the key-derived seed.
type Job[T any] struct {
	Key string
	Run func(seed int64) (T, error)
}

// All executes jobs on the engine's bounded pool and returns their values
// in input order. Duplicate keys (within the batch or versus earlier runs)
// share one execution through the cache. The first failure cancels the
// batch: queued jobs that have not started are skipped instead of draining
// the whole grid, and the returned error is the first real (non-cancel)
// failure in input order.
func All[T any](e *Engine, jobs []Job[T]) ([]T, error) {
	return AllCtx(context.Background(), e, jobs)
}

// AllCtx is All with cancellation plumbed through the worker pool: when ctx
// is canceled — by the caller, or internally as soon as any job fails — jobs
// that have not yet claimed a worker slot return ctx's error without
// running. Jobs already executing finish (simulations are not preemptible)
// and still enter the cache, so a retried sweep resumes where this one
// stopped.
func AllCtx[T any](ctx context.Context, e *Engine, jobs []Job[T]) ([]T, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job[T]) {
			defer wg.Done()
			var v any
			var err error
			if f, ok := e.peek(j.Key); ok {
				// Already cached or in flight: wait without holding a
				// worker slot, so duplicate keys don't shrink the pool.
				select {
				case <-f.done:
					v, err = f.val, f.err
				case <-ctx.Done():
					// Both cases can be ready at once; prefer the flight's
					// real outcome so the recorded error (and hence which
					// failure a sweep reports) never depends on which select
					// case won the race.
					select {
					case <-f.done:
						v, err = f.val, f.err
					default:
						errs[i] = ctx.Err()
						return
					}
				}
			} else {
				select {
				case e.sem <- struct{}{}:
				case <-ctx.Done():
					errs[i] = ctx.Err()
					return
				}
				// Both select cases can be ready at once; re-check so a slot
				// freed by the failing job is never used to start new work.
				if cerr := ctx.Err(); cerr != nil {
					<-e.sem
					errs[i] = cerr
					return
				}
				v, err = e.Do(j.Key, func(seed int64) (any, error) { return j.Run(seed) })
				if err != nil {
					// Cancel before releasing the slot: waiters observe the
					// cancellation no later than the slot becoming free.
					cancel()
				}
				<-e.sem
			}
			if err == nil {
				out[i] = v.(T)
			} else {
				cancel()
			}
			errs[i] = err
		}(i, j)
	}
	wg.Wait()
	// Deterministic failure reporting: every job's outcome is collected
	// before any is judged, and the failure with the lowest input index is
	// the one reported — concurrent failures at several grid points always
	// surface the same error, no matter which job's pool worker finished
	// first. Cancellations are only a failure's echo (or the caller's, when
	// no job failed at all) and are reported only when nothing real failed.
	var firstCancel error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			if firstCancel == nil {
				firstCancel = err
			}
		default:
			return out, err
		}
	}
	return out, firstCancel
}

// report delivers one progress callback under the engine lock, keeping
// callbacks serialized and counters consistent.
func (e *Engine) report(key string, err error, elapsed time.Duration) {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	e.finished++
	if e.cfg.OnProgress != nil {
		e.cfg.OnProgress(Progress{
			Done: e.finished, Total: e.submitted,
			Key: key, Err: err, Elapsed: elapsed,
		})
	}
}
