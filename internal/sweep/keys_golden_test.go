package sweep

import (
	"testing"
	"time"

	"pard/internal/trace"
)

// Spec keys are no longer process-local: they travel between coordinator and
// workers as work-unit identifiers, name entries in shared disk caches, and
// seed per-run RNG derivation. Any change to the key grammar silently
// invalidates every cache and desynchronizes mixed-version clusters, so the
// exact strings for the paper's four applications (and a sharded variant)
// are pinned here. If a change is intentional, update these literals AND
// bump dist.ProtoVersion / sweep's diskFormat so old peers and caches are
// rejected instead of silently mismatched.
func TestSpecKeyGolden(t *testing.T) {
	const base = "|p={QueueDelay:false LoadFactor:false Budget:false Decomposition:false SampleEvery:0}" +
		"|l=0|slo=0s|w=0s|r=0|rd=0s|fw=[]|fail=[]"
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"tm", Spec{App: "tm", Kind: trace.Wiki, Policy: "pard"},
			"tm|wiki|pard" + base},
		{"lv", Spec{App: "lv", Kind: trace.Wiki, Policy: "pard"},
			"lv|wiki|pard" + base},
		{"gm", Spec{App: "gm", Kind: trace.Wiki, Policy: "pard"},
			"gm|wiki|pard" + base},
		{"da", Spec{App: "da", Kind: trace.Wiki, Policy: "pard"},
			"da|wiki|pard" + base},
		{"da-sharded", Spec{App: "da", Kind: trace.Tweet, Policy: "pard", Opts: RunOpts{Shards: 4}},
			"da|tweet|pard" + base + "|sh=4"},
		{"options", Spec{App: "tm", Kind: trace.Steady, Policy: "nexus", Opts: RunOpts{
			Lambda:      0.5,
			SLOOverride: 450 * time.Millisecond,
			SteadyRate:  120,
		}},
			"tm|steady|nexus|p={QueueDelay:false LoadFactor:false Budget:false Decomposition:false SampleEvery:0}" +
				"|l=0.5|slo=450ms|w=0s|r=120|rd=0s|fw=[]|fail=[]"},
	}
	for _, c := range cases {
		if got := c.spec.Key(); got != c.want {
			t.Errorf("%s: Spec.Key drifted\n got:  %q\n want: %q", c.name, got, c.want)
		}
	}

	// The derived seeds these keys imply are part of the same cross-process
	// contract (a worker reproduces the coordinator's seed from the key
	// alone); pin one to catch derivation drift too.
	if got := DeriveSeed(1, "run|"+cases[0].spec.Key()); got != 4873940493060587280 {
		t.Errorf("DeriveSeed drifted: got %d", got)
	}
}
