package sweep

import (
	"testing"
	"time"

	"pard/internal/simgpu"
	"pard/internal/trace"
)

// Spec keys are no longer process-local: they travel between coordinator and
// workers as work-unit identifiers, name entries in shared disk caches, and
// seed per-run RNG derivation. Any change to the key grammar silently
// invalidates every cache and desynchronizes mixed-version clusters, so the
// exact strings for the paper's four applications (and engine/shard
// variants) are pinned here. If a change is intentional, update these
// literals AND bump dist.ProtoVersion / sweep's diskFormat so old peers and
// caches are rejected instead of silently mismatched.
//
// The |eng= marker is mandatory since the lane engine became the default
// (dist.ProtoVersion 2): pre-flip caches wrote classic-default entries with
// no marker, so neither today's default nor an explicit classic run can
// ever be served a stale pre-flip entry.
func TestSpecKeyGolden(t *testing.T) {
	const base = "|p={QueueDelay:false LoadFactor:false Budget:false Decomposition:false SampleEvery:0}" +
		"|l=0|slo=0s|w=0s|r=0|rd=0s|fw=[]|fail=[]"
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"tm", Spec{App: "tm", Kind: trace.Wiki, Policy: "pard"},
			"tm|wiki|pard" + base + "|eng=lane"},
		{"lv", Spec{App: "lv", Kind: trace.Wiki, Policy: "pard"},
			"lv|wiki|pard" + base + "|eng=lane"},
		{"gm", Spec{App: "gm", Kind: trace.Wiki, Policy: "pard"},
			"gm|wiki|pard" + base + "|eng=lane"},
		{"da", Spec{App: "da", Kind: trace.Wiki, Policy: "pard"},
			"da|wiki|pard" + base + "|eng=lane"},
		// An explicit "lane" normalizes to the same key as the default: same
		// semantics, same cache entry.
		{"lane-explicit", Spec{App: "tm", Kind: trace.Wiki, Policy: "pard",
			Opts: RunOpts{Engine: simgpu.EngineLane}},
			"tm|wiki|pard" + base + "|eng=lane"},
		{"classic", Spec{App: "tm", Kind: trace.Wiki, Policy: "pard",
			Opts: RunOpts{Engine: simgpu.EngineClassic}},
			"tm|wiki|pard" + base + "|eng=classic"},
		{"da-sharded", Spec{App: "da", Kind: trace.Tweet, Policy: "pard", Opts: RunOpts{Shards: 4}},
			"da|tweet|pard" + base + "|eng=lane|sh=4"},
		{"options", Spec{App: "tm", Kind: trace.Steady, Policy: "nexus", Opts: RunOpts{
			Lambda:      0.5,
			SLOOverride: 450 * time.Millisecond,
			SteadyRate:  120,
		}},
			"tm|steady|nexus|p={QueueDelay:false LoadFactor:false Budget:false Decomposition:false SampleEvery:0}" +
				"|l=0.5|slo=450ms|w=0s|r=120|rd=0s|fw=[]|fail=[]|eng=lane"},
	}
	for _, c := range cases {
		if got := c.spec.Key(); got != c.want {
			t.Errorf("%s: Spec.Key drifted\n got:  %q\n want: %q", c.name, got, c.want)
		}
	}

	// The derived seeds these keys imply are part of the same cross-process
	// contract (a worker reproduces the coordinator's seed from the key
	// alone); pin one to catch derivation drift too.
	if got := DeriveSeed(1, "run|"+cases[0].spec.Key()); got != 4234219032747783725 {
		t.Errorf("DeriveSeed drifted: got %d", got)
	}
}
