package sweep

import (
	"context"
	"fmt"
	"strings"
	"time"

	"pard/internal/pipeline"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

// RunOpts tweaks a single simulation beyond app/trace/policy. Every field
// participates in the cache key, so two specs differing in any option are
// distinct grid points with distinct derived seeds.
type RunOpts struct {
	Probes      simgpu.ProbeConfig
	Lambda      float64
	SLOOverride time.Duration
	WindowSize  time.Duration
	// FixedWorkers pins per-module worker counts and disables scaling.
	FixedWorkers []int
	// SteadyRate, when > 0, replaces the Kind trace with a steady trace at
	// this rate (req/s).
	SteadyRate float64
	// SteadyDur overrides the steady trace length (default: half the
	// engine's trace duration, the stress-test regime).
	SteadyDur time.Duration
	// Failures injects worker crashes into the run.
	Failures []simgpu.Failure
	// Engine selects the simulator's execution engine (see
	// simgpu.Config.Engine): "" or simgpu.EngineLane = the per-module lane
	// engine (the default), simgpu.EngineClassic = the deprecated global
	// event heap. The normalized engine name always participates in the
	// cache key because the two engines' results are not interchangeable —
	// and because pre-flip disk caches carry unmarked classic-default
	// entries that must never be served to a lane-engine run.
	Engine string
	// Shards is the lane engine's worker count (see simgpu.Config.Shards):
	// 0 and 1 both run the lanes sequentially, N > 1 drains them with N
	// workers. Participates in the cache key when set, although lane
	// results are byte-identical for every shard count.
	Shards int
	// Groups splits the lane engine into N in-process lane-group replicas
	// in lockstep (see simgpu.Config.Groups). Participates in the cache key
	// when set — mirroring Shards — although lane results are bit-identical
	// for every group count (determinism invariant #5).
	Groups int
}

// Spec identifies one grid point of a sweep: which pipeline, workload and
// policy to simulate, plus per-run options.
type Spec struct {
	// App names a built-in pipeline (tm, lv, gm, da, da-dyn).
	App string
	// Pipeline, when set, overrides the App lookup with an explicit spec;
	// its App name still identifies it in the cache key.
	Pipeline *pipeline.Spec
	Kind     trace.Kind
	Policy   string
	Opts     RunOpts
}

// appName returns the name identifying the pipeline in cache keys.
func (s Spec) appName() string {
	if s.Pipeline != nil {
		return s.Pipeline.App
	}
	return s.App
}

// Key returns the spec's stable cache key. It is also the input to per-run
// seed derivation, so it must (and does) encode every field that affects
// the simulation.
func (s Spec) Key() string {
	o := s.Opts
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|p=%+v|l=%v|slo=%v|w=%v|r=%v|rd=%v|fw=%v|fail=%v",
		s.appName(), s.Kind, s.Policy, o.Probes, o.Lambda, o.SLOOverride,
		o.WindowSize, o.SteadyRate, o.SteadyDur, o.FixedWorkers, o.Failures)
	// The engine marker is always present (normalized, so "" and an
	// explicit "lane" share one entry). Pre-flip caches wrote classic runs
	// with no marker at all, so neither today's lane default nor an
	// explicit -engine classic can ever be served a stale pre-flip entry.
	eng := o.Engine
	if eng == "" {
		eng = simgpu.EngineLane
	}
	fmt.Fprintf(&b, "|eng=%s", eng)
	if o.Shards != 0 {
		fmt.Fprintf(&b, "|sh=%d", o.Shards)
	}
	if o.Groups != 0 {
		fmt.Fprintf(&b, "|topo=%d", o.Groups)
	}
	if s.Pipeline != nil {
		// An explicit pipeline is keyed by its full structure: two
		// overrides sharing an App name must not collide in the cache.
		fmt.Fprintf(&b, "|spec=slo=%v/m=%+v", s.Pipeline.SLO, s.Pipeline.Modules)
	}
	return b.String()
}

// pipelineSpec resolves the pipeline for the spec.
func (s Spec) pipelineSpec() (*pipeline.Spec, error) {
	if s.Pipeline != nil {
		return s.Pipeline, nil
	}
	if sp, ok := pipeline.Apps()[s.App]; ok {
		return sp, nil
	}
	switch s.App {
	case "da-dyn":
		return pipeline.DADynamic(0.5), nil
	}
	return nil, fmt.Errorf("sweep: unknown app %q", s.App)
}

// Trace returns (and caches) the synthesized trace for a workload kind at
// the engine's trace duration. The trace seed is derived from the base
// seed plus the trace's own key, so each workload kind gets an independent
// arrival process and regeneration is order-independent.
func (e *Engine) Trace(kind trace.Kind) (*trace.Trace, error) {
	key := fmt.Sprintf("trace|%s|%v", kind, e.cfg.TraceDuration)
	v, err := e.Do(key, func(seed int64) (any, error) {
		return trace.Generate(trace.Config{
			Kind:     kind,
			Duration: e.cfg.TraceDuration,
			Seed:     seed,
		})
	})
	if err != nil {
		return nil, err
	}
	return v.(*trace.Trace), nil
}

// steadyTrace returns (and caches) a steady trace at the given rate.
func (e *Engine) steadyTrace(rate float64, dur time.Duration) (*trace.Trace, error) {
	if dur <= 0 {
		dur = e.cfg.TraceDuration / 2
	}
	key := fmt.Sprintf("trace|steady|r=%v|%v", rate, dur)
	v, err := e.Do(key, func(seed int64) (any, error) {
		return trace.Generate(trace.Config{
			Kind:     trace.Steady,
			Duration: dur,
			PeakRate: rate,
			Seed:     seed,
		})
	})
	if err != nil {
		return nil, err
	}
	return v.(*trace.Trace), nil
}

// Run executes (or retrieves from cache) one simulation. Concurrent calls
// with equal specs share a single execution.
func (e *Engine) Run(s Spec) (*simgpu.Result, error) {
	v, err := e.Do("run|"+s.Key(), func(seed int64) (any, error) {
		return e.exec(s, seed)
	})
	if err != nil {
		return nil, err
	}
	return v.(*simgpu.Result), nil
}

// exec materializes and runs one spec with its derived seed.
func (e *Engine) exec(s Spec, seed int64) (*simgpu.Result, error) {
	spec, err := s.pipelineSpec()
	if err != nil {
		return nil, err
	}
	if s.Opts.SLOOverride > 0 {
		cp := *spec
		cp.SLO = s.Opts.SLOOverride
		spec = &cp
	}
	var tr *trace.Trace
	if s.Opts.SteadyRate > 0 {
		tr, err = e.steadyTrace(s.Opts.SteadyRate, s.Opts.SteadyDur)
	} else {
		tr, err = e.Trace(s.Kind)
	}
	if err != nil {
		return nil, err
	}
	return simgpu.Run(simgpu.Config{
		Spec:           spec,
		Lib:            e.cfg.Library,
		PolicyName:     s.Policy,
		Trace:          tr,
		Seed:           seed,
		Probes:         s.Opts.Probes,
		Lambda:         s.Opts.Lambda,
		PriorityWindow: s.Opts.WindowSize,
		FixedWorkers:   s.Opts.FixedWorkers,
		Failures:       s.Opts.Failures,
		Engine:         s.Opts.Engine,
		Shards:         s.Opts.Shards,
		Groups:         s.Opts.Groups,
	})
}

// Distributor executes a grid of specs somewhere other than the local
// worker pool — e.g. internal/dist's coordinator fanning units out to
// remote workers — returning results in input order under the same
// determinism contract as Engine.Sweep. Implementations are expected to
// merge results through the owning engine's cache (Lookup/Install) so warm
// entries are never recomputed anywhere.
type Distributor interface {
	Sweep(ctx context.Context, specs []Spec) ([]*simgpu.Result, error)
}

// SetDistributor routes subsequent Sweep calls through d (nil restores the
// in-process pool). Single Run/Trace calls always execute locally; because
// seeds derive from (base seed, key) alone, local and distributed
// executions of the same spec are byte-identical and share one cache.
func (e *Engine) SetDistributor(d Distributor) {
	e.mu.Lock()
	e.distributor = d
	e.mu.Unlock()
}

// Sweep executes a grid of specs concurrently (bounded by the engine's
// worker count, or routed through the configured Distributor) and returns
// the results in input order. Determinism: each run's seed comes from its
// spec key, so the grid's results are identical for any worker count and
// any placement. The first failure cancels jobs that have not started.
func (e *Engine) Sweep(specs []Spec) ([]*simgpu.Result, error) {
	return e.SweepCtx(context.Background(), specs)
}

// SweepCtx is Sweep with a caller-supplied context: canceling it stops
// dispatching new runs promptly (in-flight simulations still finish).
func (e *Engine) SweepCtx(ctx context.Context, specs []Spec) ([]*simgpu.Result, error) {
	e.mu.Lock()
	d := e.distributor
	e.mu.Unlock()
	if d != nil {
		return d.Sweep(ctx, specs)
	}
	jobs := make([]Job[*simgpu.Result], len(specs))
	for i, s := range specs {
		s := s
		jobs[i] = Job[*simgpu.Result]{
			Key: "run|" + s.Key(),
			Run: func(seed int64) (*simgpu.Result, error) { return e.exec(s, seed) },
		}
	}
	return AllCtx(ctx, e, jobs)
}
