package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/trace"
)

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	a := DeriveSeed(1, "run|lv|tweet|pard")
	if a != DeriveSeed(1, "run|lv|tweet|pard") {
		t.Fatal("seed derivation not stable")
	}
	seen := map[int64]string{}
	for _, key := range []string{"a", "b", "run|lv", "run|lv|tweet", "trace|wiki"} {
		for _, base := range []int64{1, 2, 7} {
			s := DeriveSeed(base, key)
			if s <= 0 {
				t.Fatalf("seed for (%d, %q) = %d, want positive", base, key, s)
			}
			id := fmt.Sprintf("%d|%s", base, key)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, id, s)
			}
			seen[s] = id
		}
	}
}

func TestAllPreservesInputOrder(t *testing.T) {
	e := New(Config{Workers: 8})
	jobs := make([]Job[int], 32)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%d", i),
			Run: func(int64) (int, error) {
				time.Sleep(time.Duration(32-i) * time.Millisecond / 8)
				return i * i, nil
			},
		}
	}
	out, err := All(e, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestAllBoundsConcurrency(t *testing.T) {
	const workers = 3
	e := New(Config{Workers: workers})
	var inflight, peak atomic.Int64
	jobs := make([]Job[int], 24)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%d", i),
			Run: func(int64) (int, error) {
				n := inflight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				inflight.Add(-1)
				return 0, nil
			},
		}
	}
	if _, err := All(e, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

func TestDoSingleFlight(t *testing.T) {
	e := New(Config{Workers: 8})
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := e.Do("shared", func(seed int64) (any, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond)
				return seed, nil
			})
			if err != nil || v.(int64) != DeriveSeed(1, "shared") {
				t.Errorf("Do returned (%v, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn executed %d times for one key, want 1", n)
	}
}

func TestProgressCallbacks(t *testing.T) {
	var mu sync.Mutex
	var seen []Progress
	e := New(Config{Workers: 4, OnProgress: func(p Progress) {
		mu.Lock()
		seen = append(seen, p)
		mu.Unlock()
	}})
	jobs := make([]Job[int], 10)
	for i := range jobs {
		jobs[i] = Job[int]{Key: fmt.Sprintf("j%d", i), Run: func(int64) (int, error) { return 0, nil }}
	}
	if _, err := All(e, jobs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("%d callbacks, want %d", len(seen), len(jobs))
	}
	for i, p := range seen {
		// Total counts unique artifacts discovered so far: it grows as
		// flights start, never below Done and never past the batch size.
		if p.Done != i+1 || p.Total < p.Done || p.Total > len(jobs) {
			t.Fatalf("callback %d: Done=%d Total=%d", i, p.Done, p.Total)
		}
	}
	if last := seen[len(seen)-1]; last.Done != len(jobs) || last.Total != len(jobs) {
		t.Fatalf("final callback Done=%d Total=%d, want %d/%d", last.Done, last.Total, len(jobs), len(jobs))
	}
	// Re-submitting the same batch hits the cache everywhere: no new work,
	// so no further callbacks (a cache hit is not progress).
	if _, err := All(e, jobs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("cache hits reported as progress: %d callbacks after resubmit, want %d", len(seen), len(jobs))
	}
}

func TestTraceCachedAndSeededPerKind(t *testing.T) {
	e := New(Config{TraceDuration: 30 * time.Second})
	a, err := e.Trace(trace.Wiki)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Trace(trace.Wiki)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("trace not cached")
	}
	c, err := e.Trace(trace.Tweet)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct kinds share a trace")
	}
}

func TestRunCachedAndSeedPerSpec(t *testing.T) {
	e := New(Config{TraceDuration: 30 * time.Second})
	a, err := e.Run(Spec{App: "tm", Kind: trace.Wiki, Policy: "pard"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(Spec{App: "tm", Kind: trace.Wiki, Policy: "pard"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("run not cached")
	}
	// Distinct grid points must not share one RNG stream through the base
	// seed (the pre-sweep harness bug): their derived seeds must differ.
	k1 := Spec{App: "tm", Kind: trace.Wiki, Policy: "pard"}.Key()
	k2 := Spec{App: "tm", Kind: trace.Wiki, Policy: "nexus"}.Key()
	k3 := Spec{App: "lv", Kind: trace.Wiki, Policy: "pard"}.Key()
	if e.SeedFor("run|"+k1) == e.SeedFor("run|"+k2) || e.SeedFor("run|"+k1) == e.SeedFor("run|"+k3) {
		t.Fatal("distinct specs derived the same seed")
	}
}

func TestExplicitPipelinesKeyedByStructure(t *testing.T) {
	// Two pipeline overrides sharing an App name must not collide in the
	// cache (they are different simulations).
	a := Spec{Pipeline: pipeline.Uniform("u", 4, "facerec", 400*time.Millisecond), Policy: "naive"}
	b := Spec{Pipeline: pipeline.Uniform("u", 8, "facerec", 400*time.Millisecond), Policy: "naive"}
	if a.Key() == b.Key() {
		t.Fatalf("distinct pipelines share key %q", a.Key())
	}
	c := Spec{Pipeline: pipeline.Uniform("u", 4, "facerec", 400*time.Millisecond), Policy: "naive"}
	if a.Key() != c.Key() {
		t.Fatalf("equal pipelines keyed differently:\n%q\n%q", a.Key(), c.Key())
	}
}

func TestAllDuplicateKeysShareOneExecution(t *testing.T) {
	e := New(Config{Workers: 2})
	var calls atomic.Int64
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{Key: "shared", Run: func(int64) (int, error) {
			calls.Add(1)
			time.Sleep(5 * time.Millisecond)
			return 42, nil
		}}
	}
	out, err := All(e, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("shared key executed %d times, want 1", n)
	}
	for i, v := range out {
		if v != 42 {
			t.Fatalf("out[%d] = %d, want 42", i, v)
		}
	}
}

func TestUnknownAppFailsDeterministically(t *testing.T) {
	e := New(Config{Workers: 4, TraceDuration: 30 * time.Second})
	_, err := e.Sweep([]Spec{
		{App: "tm", Kind: trace.Wiki, Policy: "pard"},
		{App: "bogus-1", Kind: trace.Wiki, Policy: "pard"},
		{App: "bogus-2", Kind: trace.Wiki, Policy: "pard"},
	})
	if err == nil {
		t.Fatal("unknown app accepted")
	}
	// The reported error is the first failure in input order, independent
	// of which worker finished first.
	if want := `unknown app "bogus-1"`; err.Error() != "sweep: "+want {
		t.Fatalf("err = %q, want first-in-order %q", err, "sweep: "+want)
	}
}

// summaries flattens a result list into a comparable string.
func summaries(t *testing.T, e *Engine, specs []Spec) string {
	t.Helper()
	results, err := e.Sweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	var out string
	for i, r := range results {
		out += fmt.Sprintf("%d: %+v\n", i, r.Summary)
	}
	return out
}

// TestParallelMatchesSequential is the determinism contract: the same grid
// at the same base seed produces byte-identical summaries whether it runs
// on one worker or many.
func TestParallelMatchesSequential(t *testing.T) {
	var specs []Spec
	for _, app := range []string{"tm", "lv"} {
		for _, kind := range []trace.Kind{trace.Wiki, trace.Tweet} {
			for _, pol := range []string{"pard", "nexus"} {
				specs = append(specs, Spec{App: app, Kind: kind, Policy: pol})
			}
		}
	}
	cfg := Config{BaseSeed: 7, TraceDuration: 30 * time.Second}
	cfg.Workers = 1
	seq := summaries(t, New(cfg), specs)
	cfg.Workers = 8
	par := summaries(t, New(cfg), specs)
	if seq != par {
		t.Fatalf("parallel sweep diverged from sequential:\n--- sequential\n%s--- parallel\n%s", seq, par)
	}
	// And a second parallel engine reproduces it again (no hidden
	// scheduling dependence).
	if again := summaries(t, New(cfg), specs); again != par {
		t.Fatal("parallel sweep not reproducible across engines")
	}
}
