package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	a := DeriveSeed(1, "run|lv|tweet|pard")
	if a != DeriveSeed(1, "run|lv|tweet|pard") {
		t.Fatal("seed derivation not stable")
	}
	seen := map[int64]string{}
	for _, key := range []string{"a", "b", "run|lv", "run|lv|tweet", "trace|wiki"} {
		for _, base := range []int64{1, 2, 7} {
			s := DeriveSeed(base, key)
			if s <= 0 {
				t.Fatalf("seed for (%d, %q) = %d, want positive", base, key, s)
			}
			id := fmt.Sprintf("%d|%s", base, key)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, id, s)
			}
			seen[s] = id
		}
	}
}

func TestAllPreservesInputOrder(t *testing.T) {
	e := New(Config{Workers: 8})
	jobs := make([]Job[int], 32)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%d", i),
			Run: func(int64) (int, error) {
				time.Sleep(time.Duration(32-i) * time.Millisecond / 8)
				return i * i, nil
			},
		}
	}
	out, err := All(e, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestAllBoundsConcurrency(t *testing.T) {
	const workers = 3
	e := New(Config{Workers: workers})
	var inflight, peak atomic.Int64
	jobs := make([]Job[int], 24)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%d", i),
			Run: func(int64) (int, error) {
				n := inflight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				inflight.Add(-1)
				return 0, nil
			},
		}
	}
	if _, err := All(e, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

func TestDoSingleFlight(t *testing.T) {
	e := New(Config{Workers: 8})
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := e.Do("shared", func(seed int64) (any, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond)
				return seed, nil
			})
			if err != nil || v.(int64) != DeriveSeed(1, "shared") {
				t.Errorf("Do returned (%v, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn executed %d times for one key, want 1", n)
	}
}

func TestProgressCallbacks(t *testing.T) {
	var mu sync.Mutex
	var seen []Progress
	e := New(Config{Workers: 4, OnProgress: func(p Progress) {
		mu.Lock()
		seen = append(seen, p)
		mu.Unlock()
	}})
	jobs := make([]Job[int], 10)
	for i := range jobs {
		jobs[i] = Job[int]{Key: fmt.Sprintf("j%d", i), Run: func(int64) (int, error) { return 0, nil }}
	}
	if _, err := All(e, jobs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("%d callbacks, want %d", len(seen), len(jobs))
	}
	for i, p := range seen {
		// Total counts unique artifacts discovered so far: it grows as
		// flights start, never below Done and never past the batch size.
		if p.Done != i+1 || p.Total < p.Done || p.Total > len(jobs) {
			t.Fatalf("callback %d: Done=%d Total=%d", i, p.Done, p.Total)
		}
	}
	if last := seen[len(seen)-1]; last.Done != len(jobs) || last.Total != len(jobs) {
		t.Fatalf("final callback Done=%d Total=%d, want %d/%d", last.Done, last.Total, len(jobs), len(jobs))
	}
	// Re-submitting the same batch hits the cache everywhere: no new work,
	// so no further callbacks (a cache hit is not progress).
	if _, err := All(e, jobs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("cache hits reported as progress: %d callbacks after resubmit, want %d", len(seen), len(jobs))
	}
}

func TestTraceCachedAndSeededPerKind(t *testing.T) {
	e := New(Config{TraceDuration: 30 * time.Second})
	a, err := e.Trace(trace.Wiki)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Trace(trace.Wiki)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("trace not cached")
	}
	c, err := e.Trace(trace.Tweet)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct kinds share a trace")
	}
}

func TestRunCachedAndSeedPerSpec(t *testing.T) {
	e := New(Config{TraceDuration: 30 * time.Second})
	a, err := e.Run(Spec{App: "tm", Kind: trace.Wiki, Policy: "pard"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(Spec{App: "tm", Kind: trace.Wiki, Policy: "pard"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("run not cached")
	}
	// Distinct grid points must not share one RNG stream through the base
	// seed (the pre-sweep harness bug): their derived seeds must differ.
	k1 := Spec{App: "tm", Kind: trace.Wiki, Policy: "pard"}.Key()
	k2 := Spec{App: "tm", Kind: trace.Wiki, Policy: "nexus"}.Key()
	k3 := Spec{App: "lv", Kind: trace.Wiki, Policy: "pard"}.Key()
	if e.SeedFor("run|"+k1) == e.SeedFor("run|"+k2) || e.SeedFor("run|"+k1) == e.SeedFor("run|"+k3) {
		t.Fatal("distinct specs derived the same seed")
	}
}

func TestExplicitPipelinesKeyedByStructure(t *testing.T) {
	// Two pipeline overrides sharing an App name must not collide in the
	// cache (they are different simulations).
	a := Spec{Pipeline: pipeline.Uniform("u", 4, "facerec", 400*time.Millisecond), Policy: "naive"}
	b := Spec{Pipeline: pipeline.Uniform("u", 8, "facerec", 400*time.Millisecond), Policy: "naive"}
	if a.Key() == b.Key() {
		t.Fatalf("distinct pipelines share key %q", a.Key())
	}
	c := Spec{Pipeline: pipeline.Uniform("u", 4, "facerec", 400*time.Millisecond), Policy: "naive"}
	if a.Key() != c.Key() {
		t.Fatalf("equal pipelines keyed differently:\n%q\n%q", a.Key(), c.Key())
	}
}

func TestAllDuplicateKeysShareOneExecution(t *testing.T) {
	e := New(Config{Workers: 2})
	var calls atomic.Int64
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{Key: "shared", Run: func(int64) (int, error) {
			calls.Add(1)
			time.Sleep(5 * time.Millisecond)
			return 42, nil
		}}
	}
	out, err := All(e, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("shared key executed %d times, want 1", n)
	}
	for i, v := range out {
		if v != 42 {
			t.Fatalf("out[%d] = %d, want 42", i, v)
		}
	}
}

func TestUnknownAppFailsDeterministically(t *testing.T) {
	e := New(Config{Workers: 4, TraceDuration: 30 * time.Second})
	_, err := e.Sweep([]Spec{
		{App: "tm", Kind: trace.Wiki, Policy: "pard"},
		{App: "bogus-1", Kind: trace.Wiki, Policy: "pard"},
		{App: "bogus-2", Kind: trace.Wiki, Policy: "pard"},
	})
	if err == nil {
		t.Fatal("unknown app accepted")
	}
	// Since the first failure cancels the batch, which poisoned spec ran
	// first is scheduling-dependent — but the reported error is always a
	// real failure, never the cancellation it triggered.
	if !strings.HasPrefix(err.Error(), `sweep: unknown app "bogus-`) {
		t.Fatalf("err = %q, want an unknown-app failure", err)
	}
}

// summaries flattens a result list into a comparable string.
func summaries(t *testing.T, e *Engine, specs []Spec) string {
	t.Helper()
	results, err := e.Sweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	var out string
	for i, r := range results {
		out += fmt.Sprintf("%d: %+v\n", i, r.Summary)
	}
	return out
}

// TestParallelMatchesSequential is the determinism contract: the same grid
// at the same base seed produces byte-identical summaries whether it runs
// on one worker or many.
func TestParallelMatchesSequential(t *testing.T) {
	var specs []Spec
	for _, app := range []string{"tm", "lv"} {
		for _, kind := range []trace.Kind{trace.Wiki, trace.Tweet} {
			for _, pol := range []string{"pard", "nexus"} {
				specs = append(specs, Spec{App: app, Kind: kind, Policy: pol})
			}
		}
	}
	cfg := Config{BaseSeed: 7, TraceDuration: 30 * time.Second}
	cfg.Workers = 1
	seq := summaries(t, New(cfg), specs)
	cfg.Workers = 8
	par := summaries(t, New(cfg), specs)
	if seq != par {
		t.Fatalf("parallel sweep diverged from sequential:\n--- sequential\n%s--- parallel\n%s", seq, par)
	}
	// And a second parallel engine reproduces it again (no hidden
	// scheduling dependence).
	if again := summaries(t, New(cfg), specs); again != par {
		t.Fatal("parallel sweep not reproducible across engines")
	}
}

// TestPoisonedSpecStopsSweepEarly is the early-cancel contract: once one
// grid point fails, queued runs are skipped instead of draining the grid.
func TestPoisonedSpecStopsSweepEarly(t *testing.T) {
	e := New(Config{Workers: 1})
	var ran atomic.Int64
	boom := errors.New("poisoned")
	jobs := make([]Job[int], 41)
	jobs[0] = Job[int]{Key: "poison", Run: func(int64) (int, error) { return 0, boom }}
	for i := 1; i < len(jobs); i++ {
		jobs[i] = Job[int]{Key: fmt.Sprintf("slow-%d", i), Run: func(int64) (int, error) {
			ran.Add(1)
			time.Sleep(2 * time.Millisecond)
			return 0, nil
		}}
	}
	if _, err := All(e, jobs); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the poisoned spec's failure", err)
	}
	// The failing job cancels before releasing its worker slot, so nothing
	// starts after it fails. Goroutine launch order may let a few queued
	// jobs run before the poisoned one claims the slot — but nowhere near
	// the whole grid (the pre-cancellation behavior).
	if n := ran.Load(); n > 10 {
		t.Fatalf("%d of %d queued jobs ran despite the early failure", n, len(jobs)-1)
	}
}

// TestAllCtxCallerCancel: a canceled caller context skips every unstarted
// job and reports the cancellation when no job actually failed.
func TestAllCtxCallerCancel(t *testing.T) {
	e := New(Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	jobs := make([]Job[int], 16)
	for i := range jobs {
		jobs[i] = Job[int]{Key: fmt.Sprintf("after-%d", i), Run: func(int64) (int, error) {
			ran.Add(1)
			return 0, nil
		}}
	}
	if _, err := AllCtx(ctx, e, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d jobs ran under a canceled context, want 0", n)
	}
}

// TestLookupInstall exercises the cache injection seam remote coordinators
// merge results through.
func TestLookupInstall(t *testing.T) {
	dir := t.TempDir()
	e := New(Config{Workers: 1, TraceDuration: 30 * time.Second, CacheDir: dir})
	if err := e.DiskError(); err != nil {
		t.Fatal(err)
	}
	key := "run|" + Spec{App: "tm", Kind: trace.Steady, Policy: "pard"}.Key()
	if _, ok := e.Lookup(key); ok {
		t.Fatal("Lookup hit on an empty cache")
	}
	res, err := e.Run(Spec{App: "tm", Kind: trace.Steady, Policy: "pard"})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := e.Lookup(key)
	if !ok || v.(*simgpu.Result) != res {
		t.Fatal("Lookup missed a finished run")
	}

	// Install into a fresh engine: the value must be visible to Lookup, to
	// Do (no recomputation), and — via the shared cache dir — to a third
	// engine straight from disk.
	e2 := New(Config{Workers: 1, TraceDuration: 30 * time.Second, CacheDir: t.TempDir()})
	e2.Install(key, res)
	if v, ok := e2.Lookup(key); !ok || v.(*simgpu.Result) != res {
		t.Fatal("Install not visible to Lookup")
	}
	var computed bool
	v2, err := e2.Do(key, func(int64) (any, error) { computed = true; return nil, nil })
	if err != nil || computed || v2.(*simgpu.Result) != res {
		t.Fatalf("Do recomputed an installed key (computed=%v, err=%v)", computed, err)
	}
	e3 := New(Config{Workers: 1, TraceDuration: 30 * time.Second, CacheDir: e2.Config().CacheDir})
	if _, ok := e3.Lookup(key); !ok {
		t.Fatal("installed value did not reach the shared disk cache")
	}

	// An existing entry wins over a later install.
	e2.Install(key, "bogus")
	if v, _ := e2.Lookup(key); v.(*simgpu.Result) != res {
		t.Fatal("Install overwrote an existing entry")
	}
}

// recordingDistributor captures the grid Sweep delegates.
type recordingDistributor struct {
	specs []Spec
}

func (d *recordingDistributor) Sweep(_ context.Context, specs []Spec) ([]*simgpu.Result, error) {
	d.specs = append([]Spec(nil), specs...)
	return make([]*simgpu.Result, len(specs)), nil
}

func TestSweepDelegatesToDistributor(t *testing.T) {
	e := New(Config{Workers: 1, TraceDuration: 30 * time.Second})
	d := &recordingDistributor{}
	e.SetDistributor(d)
	specs := []Spec{{App: "bogus-but-never-run", Kind: trace.Wiki, Policy: "pard"}}
	if _, err := e.Sweep(specs); err != nil {
		t.Fatal(err)
	}
	if len(d.specs) != 1 || d.specs[0].App != "bogus-but-never-run" {
		t.Fatalf("distributor saw %+v", d.specs)
	}
	// Clearing the distributor restores local execution.
	e.SetDistributor(nil)
	if _, err := e.Sweep(specs); err == nil {
		t.Fatal("local sweep of a bogus app succeeded")
	}
}

// TestConcurrentFailuresReportLowestIndex pins deterministic failure
// reporting: when several grid points fail in one sweep, the reported error
// is always the failure with the lowest input index — never whichever
// failing job's pool worker happened to finish first.
func TestConcurrentFailuresReportLowestIndex(t *testing.T) {
	errLow := errors.New("low-index failure")
	errHigh := errors.New("high-index failure")

	// Both failures in flight at once: a barrier holds each failing job
	// until the other has started, so neither is skipped by the other's
	// cancellation and completion order is pure scheduling noise.
	t.Run("simultaneous", func(t *testing.T) {
		for rep := 0; rep < 30; rep++ {
			e := New(Config{Workers: 3})
			var started sync.WaitGroup
			started.Add(2)
			fail := func(err error) func(int64) (int, error) {
				return func(int64) (int, error) {
					started.Done()
					started.Wait()
					return 0, err
				}
			}
			jobs := []Job[int]{
				{Key: fmt.Sprintf("sim-low-%d", rep), Run: fail(errLow)},
				{Key: fmt.Sprintf("sim-ok-%d", rep), Run: func(int64) (int, error) { return 1, nil }},
				{Key: fmt.Sprintf("sim-high-%d", rep), Run: fail(errHigh)},
			}
			if _, err := All(e, jobs); !errors.Is(err, errLow) {
				t.Fatalf("rep %d: err = %v, want the lowest-index failure", rep, err)
			}
		}
	})

	// The low-index job fails strictly AFTER the high-index failure has
	// already fired the batch cancellation: in-flight jobs are not
	// preemptible, so its real failure must still win the report.
	t.Run("low-index-fails-last", func(t *testing.T) {
		e := New(Config{Workers: 2})
		lowStarted := make(chan struct{})
		highFailed := make(chan struct{})
		jobs := []Job[int]{
			{Key: "late-low", Run: func(int64) (int, error) {
				close(lowStarted)
				<-highFailed
				time.Sleep(5 * time.Millisecond) // let the cancellation land first
				return 0, errLow
			}},
			{Key: "late-high", Run: func(int64) (int, error) {
				<-lowStarted // guarantee the low-index job is in flight
				defer close(highFailed)
				return 0, errHigh
			}},
		}
		if _, err := All(e, jobs); !errors.Is(err, errLow) {
			t.Fatalf("err = %v, want the lowest-index failure", err)
		}
	})
}
