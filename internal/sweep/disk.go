package sweep

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"pard/internal/simgpu"
	"pard/internal/trace"
)

// diskFormat versions the on-disk entry layout; bump it whenever the
// serialized types or the simulation semantics change incompatibly, and
// stale entries simply stop matching.
const diskFormat = 1

func init() {
	// The cache stores entry values as `any`; register the concrete types
	// the engine produces so gob can round-trip them.
	gob.Register(&simgpu.Result{})
	gob.Register(&trace.Trace{})
}

// diskEntry is one persisted cache artifact. Scope and Key are stored in
// full and verified on load, so a filename-hash collision can never serve
// the wrong result.
type diskEntry struct {
	Scope string
	Key   string
	Val   any
}

// diskCache persists finished artifacts (runs and traces) under their
// stable cache keys so repeated invocations — across processes — reuse
// finished grid points. Entries are written atomically (temp file + rename)
// and loads are best-effort: a corrupt or mismatched file is treated as a
// miss and recomputed.
type diskCache struct {
	dir   string
	scope string

	mu     sync.Mutex
	hits   int
	misses int
}

// newDiskCache opens (creating if needed) a cache directory. The scope
// string pins everything that changes results without appearing in the
// artifact keys themselves: the base seed (run seeds derive from it) and
// the engine trace duration (run keys do not encode it).
func newDiskCache(dir string, baseSeed int64, scope string) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	return &diskCache{
		dir:   dir,
		scope: fmt.Sprintf("v%d|seed=%d|%s", diskFormat, baseSeed, scope),
	}, nil
}

// path maps a key to its cache file: an FNV-64a content hash of scope+key.
func (d *diskCache) path(key string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s", d.scope, key)
	return filepath.Join(d.dir, fmt.Sprintf("%016x.gob", h.Sum64()))
}

// load returns the cached value for key, if a valid entry exists.
func (d *diskCache) load(key string) (any, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		d.count(false)
		return nil, false
	}
	var e diskEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil ||
		e.Scope != d.scope || e.Key != key || e.Val == nil {
		d.count(false)
		return nil, false
	}
	d.count(true)
	return e.Val, true
}

// store persists a computed value. Failures are silent: the disk cache is
// an accelerator, never a correctness dependency.
func (d *diskCache) store(key string, val any) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(diskEntry{Scope: d.scope, Key: key, Val: val}); err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.dir, "entry-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, d.path(key)); err != nil {
		os.Remove(name)
	}
}

// count tallies one lookup.
func (d *diskCache) count(hit bool) {
	d.mu.Lock()
	if hit {
		d.hits++
	} else {
		d.misses++
	}
	d.mu.Unlock()
}

// stats returns lookup counters.
func (d *diskCache) stats() (hits, misses int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hits, d.misses
}
