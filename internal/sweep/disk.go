package sweep

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"

	"pard/internal/simgpu"
	"pard/internal/trace"
)

// diskFormat versions the on-disk entry layout; bump it whenever the
// serialized types or the simulation semantics change incompatibly, and
// stale entries simply stop matching.
//
// v2: the lane engine became the default execution engine and run keys
// gained a mandatory |eng= marker. Pre-flip entries were computed on the
// classic heap under unmarked keys; the version bump retires them wholesale
// rather than leaving classic-era artifacts to age in shared cache volumes.
//
// v3: metrics.Summary gained the Rejected outcome (admission control), which
// changes the serialized gob type descriptors; pre-gate entries stop
// matching instead of mixing layouts in shared cache volumes.
const diskFormat = 3

func init() {
	// The cache stores entry values as `any`; register the concrete types
	// the engine produces so gob can round-trip them.
	gob.Register(&simgpu.Result{})
	gob.Register(&trace.Trace{})
}

// encBufs pools the gob staging buffers for store: a warm grid writes one
// multi-megabyte entry per point, and without pooling each write retires a
// full-entry []byte to the garbage collector.
var encBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// diskEntry is one persisted cache artifact. Scope and Key are stored in
// full and verified on load, so a filename-hash collision can never serve
// the wrong result.
type diskEntry struct {
	Scope string
	Key   string
	Val   any
}

// diskCache persists finished artifacts (runs and traces) under their
// stable cache keys so repeated invocations — across processes — reuse
// finished grid points. Entries are written atomically and durably (temp
// file + fsync + rename + directory fsync, so a crash mid-write can never
// publish a truncated entry) and loads are best-effort: a corrupt or
// mismatched file is quarantined — renamed aside and logged — and treated
// as a miss, never a failed run.
type diskCache struct {
	dir   string
	scope string
	logf  func(format string, args ...any)

	mu          sync.Mutex
	hits        int
	misses      int
	quarantined int
}

// newDiskCache opens (creating if needed) a cache directory. The scope
// string pins everything that changes results without appearing in the
// artifact keys themselves: the base seed (run seeds derive from it) and
// the engine trace duration (run keys do not encode it).
func newDiskCache(dir string, baseSeed int64, scope string, logf func(string, ...any)) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	return &diskCache{
		dir:   dir,
		scope: fmt.Sprintf("v%d|seed=%d|%s", diskFormat, baseSeed, scope),
		logf:  logf,
	}, nil
}

// path maps a key to its cache file: an FNV-64a content hash of scope+key.
func (d *diskCache) path(key string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s", d.scope, key)
	return filepath.Join(d.dir, fmt.Sprintf("%016x.gob", h.Sum64()))
}

// load returns the cached value for key, if a valid entry exists. An entry
// that exists but cannot be decoded or verified is quarantined so the next
// lookup (and every other process sharing the directory) stops paying to
// re-read it.
func (d *diskCache) load(key string) (any, bool) {
	path := d.path(key)
	f, err := os.Open(path)
	if err != nil {
		d.count(false)
		return nil, false
	}
	info, ierr := f.Stat()
	data, rerr := io.ReadAll(f)
	f.Close()
	if ierr != nil || rerr != nil {
		d.count(false)
		return nil, false
	}
	var e diskEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		d.quarantine(path, info, fmt.Sprintf("undecodable entry: %v", err))
		d.count(false)
		return nil, false
	}
	if e.Scope != d.scope || e.Key != key || e.Val == nil {
		// The filename hashes scope+key, so a well-formed entry that fails
		// verification is a corruption (or a hash collision) — either way
		// it can never serve this key again.
		d.quarantine(path, info, fmt.Sprintf("entry fails verification (scope %q, key %q)", e.Scope, e.Key))
		d.count(false)
		return nil, false
	}
	d.count(true)
	return e.Val, true
}

// quarantine renames a corrupt entry aside (best-effort) so it reads as a
// plain miss from now on, keeping the bytes around for a post-mortem. seen
// is the Stat of the bytes that were judged corrupt: if the file changed
// since — a concurrent store (this process or another sharing the dir) may
// have published a fresh valid entry under the same name — it is left
// alone rather than quarantining bytes nobody inspected.
func (d *diskCache) quarantine(path string, seen os.FileInfo, reason string) {
	if cur, err := os.Stat(path); err != nil ||
		cur.Size() != seen.Size() || !cur.ModTime().Equal(seen.ModTime()) {
		return
	}
	dst := path + ".corrupt"
	if err := os.Rename(path, dst); err != nil {
		// A concurrent engine may have quarantined it first.
		return
	}
	d.mu.Lock()
	d.quarantined++
	d.mu.Unlock()
	if d.logf != nil {
		d.logf("sweep: quarantined corrupt cache entry %s -> %s (%s)", path, dst, reason)
	}
}

// store persists a computed value. Failures are silent: the disk cache is
// an accelerator, never a correctness dependency. Durability is not: the
// temp file is fsynced before the rename and the directory after it, so a
// crash at any point leaves either the old entry, no entry, or the complete
// new entry — never truncated bytes under a valid name.
func (d *diskCache) store(key string, val any) {
	buf := encBufs.Get().(*bytes.Buffer)
	buf.Reset()
	defer encBufs.Put(buf)
	if err := gob.NewEncoder(buf).Encode(diskEntry{Scope: d.scope, Key: key, Val: val}); err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.dir, "entry-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(buf.Bytes())
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, d.path(key)); err != nil {
		os.Remove(name)
		return
	}
	// Publish the rename itself: without a directory fsync a crash can roll
	// the rename back, resurfacing the (possibly deleted) temp name.
	if dir, err := os.Open(d.dir); err == nil {
		dir.Sync()
		dir.Close()
	}
}

// count tallies one lookup.
func (d *diskCache) count(hit bool) {
	d.mu.Lock()
	if hit {
		d.hits++
	} else {
		d.misses++
	}
	d.mu.Unlock()
}

// stats returns lookup counters.
func (d *diskCache) stats() (hits, misses int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hits, d.misses
}
