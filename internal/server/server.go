// Package server is the wall-clock serving runtime: a thin shell over the
// shared scheduling core (internal/sched) — the same controller / worker /
// policy state machine the discrete-event simulator runs — instantiated
// with wall-clock timers and an HTTP data plane. Model execution is
// simulated by letting batch timers elapse for the profiled duration; the
// scheduler code paths (queueing, batching, dropping, priority, state sync)
// are literally the simulator's, byte for byte.
//
// The live runtime serves any validated pipeline, chains and DAGs alike:
// fan-out dispatches a request copy to every successor, fan-in merges when
// all expected branch copies arrive, with the same join semantics as the
// simulator (end-to-end latency is the maximum over paths).
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pard/internal/core"
	"pard/internal/metrics"
	"pard/internal/pipeline"
	"pard/internal/profile"
	"pard/internal/sched"
)

// Config describes a live serving deployment.
type Config struct {
	Spec *pipeline.Spec
	Lib  *profile.Library
	// PolicyName selects the dropping policy (default "pard").
	PolicyName string
	// Workers is the per-module worker count (default 2 each).
	Workers []int
	// SyncPeriod is the state-synchronization interval (default 250 ms; the
	// live demo favors responsiveness over the paper's 1 s).
	SyncPeriod time.Duration
	// BatchFrac as in the simulator (default 0.5).
	BatchFrac float64
	// NetDelay is the per-hop transfer delay between modules (default 0:
	// in-process hops are immediate).
	NetDelay time.Duration
	// JitterPct adds execution-duration jitter as in the simulator
	// (default 0: live batches take exactly the profiled duration).
	JitterPct float64
	// Seed drives the core's deterministic random streams.
	Seed int64
	// Scaling optionally enables the autoscaling engine (zero = fixed
	// worker counts).
	Scaling sched.ScalingConfig
	// Probes selects optional core recordings (diagnostics and tests).
	Probes sched.ProbeConfig
	// Exec overrides the executor driving the core. Nil selects wall-clock
	// timers; tests inject a deterministic executor (sched.ManualExecutor)
	// to replay workloads reproducibly. Concurrent Submit calls require a
	// concurrency-safe executor (the wall-clock default is; ManualExecutor
	// must be driven from one goroutine).
	Exec sched.Executor
	// Admission configures estimator-driven admission control. The zero
	// value disables the gate, leaving the submit path bit-identical to a
	// server without one.
	Admission AdmissionConfig
}

// AdmissionConfig parameterizes the admission gate guarding submit(). When
// enabled, the gate consults the paper's proactive latency estimator (§4.2):
// once per sync period it refreshes a private core.Estimator from the state
// board and caches the predicted entry-to-sink latency; each arrival then
// compares that cached prediction (one atomic load, no allocation) against
// the SLO and is fast-rejected with HTTP 429 + Retry-After when it is
// predicted to miss — before consuming a queue slot or any scheduler work.
type AdmissionConfig struct {
	// Enabled turns the gate on.
	Enabled bool
	// SLOFactor scales the admission threshold: reject when the predicted
	// entry latency exceeds SLOFactor × SLO (default 1.0). Below 1 the gate
	// rejects earlier (headroom for estimator error); above 1 it admits
	// requests the estimator already condemns.
	SLOFactor float64
	// MaxInFlight additionally bounds concurrently outstanding requests
	// (0 = no bound). A hard backstop for the estimator's blind window:
	// the prediction only moves once per sync period, while a burst can
	// arrive entirely inside one.
	MaxInFlight int
	// RetryAfter is the hint sent on 429 responses (default: the sync
	// period — the earliest moment the gate's view of the board changes).
	RetryAfter time.Duration
}

// Outcome is the terminal state of a live request.
type Outcome string

// Outcomes.
const (
	OutcomeGood    Outcome = "good"
	OutcomeLate    Outcome = "late"
	OutcomeDropped Outcome = "dropped"
	// OutcomeRejected: refused by admission control before entering the
	// pipeline (HTTP 429 + Retry-After on the wire).
	OutcomeRejected Outcome = "rejected"
)

// Response is the JSON reply of POST /infer.
type Response struct {
	ID        uint64  `json:"id"`
	Outcome   Outcome `json:"outcome"`
	LatencyMS float64 `json:"latency_ms"`
	// DropModule is set when Outcome is "dropped": the module whose policy
	// dropped the request, or -1 when the server resolved it at shutdown
	// rather than by a policy decision.
	DropModule int `json:"drop_module"`
}

// MarshalJSON emits drop_module exactly when the outcome is "dropped" — for
// every drop, including module 0. (A plain `omitempty` tag silently omitted
// drops at module 0, which clients then decoded as the zero value:
// indistinguishable from "no drop module".)
func (r Response) MarshalJSON() ([]byte, error) {
	type wire struct {
		ID         uint64  `json:"id"`
		Outcome    Outcome `json:"outcome"`
		LatencyMS  float64 `json:"latency_ms"`
		DropModule *int    `json:"drop_module,omitempty"`
	}
	w := wire{ID: r.ID, Outcome: r.Outcome, LatencyMS: r.LatencyMS}
	if r.Outcome == OutcomeDropped {
		w.DropModule = &r.DropModule
	}
	return json.Marshal(w)
}

// pendingReq is one in-flight request: the core's Request, the client's
// response channel, and the intrusive links of the outstanding list. The
// structs come from a chunked slab (one allocation per slabChunk submits,
// mirroring the simulator's inject slab) and are never reused: a dropped
// DAG request can be referenced by stale branch entries inside the core
// until their queues next drain, so recycling the struct would alias two
// generations of requests.
type pendingReq struct {
	req  sched.Request
	done chan Response
	// prev/next link the outstanding list (guarded by Server.pmu); linked
	// is the membership latch that makes resolution exactly-once.
	prev, next *pendingReq
	linked     bool
}

// slabChunk is the pendingReq slab allocation granularity.
const slabChunk = 256

// respChans recycles per-request response channels. Only the /infer handler
// returns channels to the pool — after consuming the single buffered
// response, when no further send can happen. Channels handed to external
// Submit callers, or abandoned on the client-disconnect path, are never
// reused (a late resolution may still land in their buffer).
var respChans = sync.Pool{New: func() any { return make(chan Response, 1) }}

// Server hosts one pipeline on the shared scheduling core.
type Server struct {
	cfg  Config
	exec sched.Executor
	wall *sched.TimerExecutor // owned executor, nil when injected
	cl   *sched.Cluster

	// nextID allocates request IDs off the submit lock: IDs are issued in
	// submit order without serializing submitters on a mutex.
	nextID atomic.Uint64

	// Admission-gate state. gateEst is a private estimator refreshed once
	// per sync period on the executor (never concurrently — its rng draw
	// order is deterministic); gatePredicted caches its entry-latency
	// prediction in nanoseconds so the per-request admit check is one
	// atomic load. inFlight counts admitted-but-unresolved requests for
	// the MaxInFlight bound. All nil/zero when the gate is disabled.
	gateEst       *core.Estimator
	gatePredicted atomic.Int64
	inFlight      atomic.Int64
	sloLimitNs    int64
	retryAfter    string // precomputed Retry-After header value (seconds)

	// pmu guards the request-lifecycle state below. It is held only for
	// pointer-sized work (slab bump, list link/unlink, stop latch) — never
	// across Inject, timer arming, or metrics recording — so concurrent
	// submitters queue behind nanoseconds, not the whole enqueue path.
	pmu      sync.Mutex
	started  bool
	stopped  bool
	pending  *pendingReq // head of the outstanding-request list
	slab     []pendingReq
	slabNext int

	// cmu guards the metrics collector (finish callbacks run on the
	// executor; Stop's shutdown drain runs on the caller's goroutine).
	cmu sync.Mutex
	col *metrics.Collector
}

// New validates the config and builds (but does not start) a server for any
// validated pipeline spec — chain or DAG.
func New(cfg Config) (*Server, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("server: config needs a pipeline spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Lib == nil {
		cfg.Lib = profile.DefaultLibrary()
	}
	if cfg.PolicyName == "" {
		cfg.PolicyName = "pard"
	}
	if cfg.SyncPeriod <= 0 {
		cfg.SyncPeriod = 250 * time.Millisecond
	}
	if cfg.BatchFrac <= 0 {
		cfg.BatchFrac = 0.5
	}
	n := cfg.Spec.N()
	if cfg.Workers == nil {
		cfg.Workers = make([]int, n)
		for i := range cfg.Workers {
			cfg.Workers[i] = 2
		}
	}
	if len(cfg.Workers) != n {
		return nil, fmt.Errorf("server: %d worker counts for %d modules", len(cfg.Workers), n)
	}
	if cfg.Admission.SLOFactor < 0 {
		return nil, fmt.Errorf("server: admission SLO factor %v < 0", cfg.Admission.SLOFactor)
	}
	if cfg.Admission.MaxInFlight < 0 {
		return nil, fmt.Errorf("server: admission max in-flight %d < 0", cfg.Admission.MaxInFlight)
	}
	if cfg.Admission.Enabled {
		if cfg.Admission.SLOFactor == 0 {
			cfg.Admission.SLOFactor = 1
		}
		if cfg.Admission.RetryAfter <= 0 {
			cfg.Admission.RetryAfter = cfg.SyncPeriod
		}
	}

	s := &Server{
		cfg: cfg,
		col: metrics.NewCollector(cfg.Spec.SLO, n),
	}
	if cfg.Admission.Enabled {
		// The gate's estimator draws from its own seed-derived stream so
		// its Monte-Carlo sampling never perturbs the policy's
		// deterministic streams (clock-parity invariant).
		rng := rand.New(rand.NewSource(cfg.Seed ^ admissionSeedSalt))
		s.gateEst = core.NewEstimator(cfg.Spec, core.DefaultEstimatorConfig(), rng)
		s.sloLimitNs = int64(float64(cfg.Spec.SLO) * cfg.Admission.SLOFactor)
		secs := int(cfg.Admission.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		s.retryAfter = strconv.Itoa(secs)
	}
	if cfg.Exec != nil {
		s.exec = cfg.Exec
	} else {
		s.wall = sched.NewTimerExecutor()
		s.exec = s.wall
	}
	cl, err := sched.New(sched.Config{
		Spec:       cfg.Spec,
		Lib:        cfg.Lib,
		PolicyName: cfg.PolicyName,
		Seed:       cfg.Seed,
		BatchFrac:  cfg.BatchFrac,
		Workers:    cfg.Workers,
		NetDelay:   cfg.NetDelay,
		JitterPct:  cfg.JitterPct,
		Scaling:    cfg.Scaling,
		Probes:     cfg.Probes,
		OnDone:     s.onDone,
		OnDrop:     s.onDrop,
	}, s.exec)
	if err != nil {
		if s.wall != nil {
			s.wall.Stop()
		}
		return nil, err
	}
	s.cl = cl
	return s, nil
}

// Start launches the periodic state-synchronization (and, when enabled,
// scaling) loops on the executor.
func (s *Server) Start() {
	s.pmu.Lock()
	if s.started || s.stopped {
		s.pmu.Unlock()
		return
	}
	s.started = true
	s.pmu.Unlock()

	s.every(s.cfg.SyncPeriod, "sync", s.cl.SyncTick)
	if s.cfg.Admission.Enabled {
		// Scheduled after "sync" so that at tied timestamps the modules
		// publish first and the gate reads the fresh board (executors fire
		// equal-time events in schedule order).
		s.every(s.cfg.SyncPeriod, "admission", s.refreshAdmission)
	}
	if s.cfg.Scaling.Enabled {
		s.every(s.cfg.Scaling.Period, "scale", s.cl.ScaleTick)
	}
}

// refreshAdmission recomputes the gate's cached entry-latency prediction
// from the board: Q_src + d_src + Lsub(source) — Eq. 1 evaluated at the
// pipeline entry. Runs on the executor once per sync period; submitters only
// ever read the cached atomic.
func (s *Server) refreshAdmission(now time.Duration) {
	b := s.cl.Board()
	s.gateEst.Refresh(b)
	s.gatePredicted.Store(int64(s.gateEst.EntryEstimate(b, s.cfg.Spec.Source())))
}

// admissionSeedSalt decorrelates the gate estimator's rng stream from the
// core's seed-derived streams.
const admissionSeedSalt int64 = 0x3e3779b97f4a7c15

// admitNow is the per-request admission decision: lock-free and
// allocation-free (an atomic counter load and an atomic prediction load).
func (s *Server) admitNow() bool {
	if !s.cfg.Admission.Enabled {
		return true
	}
	if m := s.cfg.Admission.MaxInFlight; m > 0 && s.inFlight.Load() >= int64(m) {
		return false
	}
	return s.gatePredicted.Load() <= s.sloLimitNs
}

// every runs fn on the executor each period until the server stops.
func (s *Server) every(period time.Duration, name string, fn func(now time.Duration)) {
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		if s.isStopped() {
			return
		}
		fn(now)
		s.exec.Schedule(now+period, name, tick)
	}
	s.exec.Schedule(s.exec.Now()+period, name, tick)
}

func (s *Server) isStopped() bool {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.stopped
}

// Stop cancels all pending timers, waits for in-flight callbacks, then
// resolves every request still outstanding inside the core as dropped
// (DropModule -1): no client is left hanging on a response channel the core
// will never fill. With an injected executor the drain happens immediately;
// callbacks the injected executor fires afterwards find their requests
// already resolved and do nothing.
func (s *Server) Stop() {
	s.pmu.Lock()
	if s.stopped {
		s.pmu.Unlock()
		return
	}
	s.stopped = true
	s.pmu.Unlock()
	if s.wall != nil {
		s.wall.Stop()
	}
	// After wall.Stop no finish callback can be running: detach the whole
	// outstanding list and resolve it. (unregister and this detach both
	// clear linked under pmu, so resolution stays exactly-once even when an
	// injected executor replays a late completion.)
	s.pmu.Lock()
	head := s.pending
	for pr := head; pr != nil; pr = pr.next {
		pr.linked = false
	}
	s.pending = nil
	s.pmu.Unlock()
	now := s.exec.Now()
	for pr := head; pr != nil; pr = pr.next {
		s.resolve(pr, Response{ID: pr.req.ID, Outcome: OutcomeDropped, DropModule: -1}, now, -1)
	}
}

// Submit enqueues one request and returns a channel delivering its outcome.
// After Stop the channel resolves immediately as dropped.
func (s *Server) Submit() <-chan Response {
	return s.submit().done
}

// submit is the data-plane hot path: allocate an ID (atomic), a pendingReq
// (slab bump) and a response channel (pool), register the request on the
// outstanding list, and inject the arrival. The lock covers only the slab
// and list pointers; a submit racing Stop either resolves here (stop latch
// observed), resolves in Stop's drain (registered before the latch), or
// resolves through the core — exactly once in every interleaving, because
// the arrival timer armed after the executor stopped never fires.
func (s *Server) submit() *pendingReq {
	now := s.exec.Now()
	id := s.nextID.Add(1) - 1
	done := respChans.Get().(chan Response)
	if !s.admitNow() {
		// Fast rejection: the request never touches the core — no queue
		// slot, no arrival timer, no scheduler work. Recorded so /stats
		// and Summary surface the rejection rate.
		pr := &pendingReq{done: done}
		pr.req.ID = id
		s.cmu.Lock()
		s.col.Add(metrics.Record{Send: now, Done: now, Outcome: metrics.Rejected, DropModule: -1})
		s.cmu.Unlock()
		done <- Response{ID: id, Outcome: OutcomeRejected}
		return pr
	}
	s.pmu.Lock()
	if s.stopped {
		s.pmu.Unlock()
		pr := &pendingReq{done: done}
		pr.req.ID = id
		done <- Response{ID: id, Outcome: OutcomeDropped, DropModule: -1}
		return pr
	}
	pr := s.allocLocked()
	pr.req = sched.Request{
		ID:         id,
		Send:       now,
		Deadline:   now + s.cfg.Spec.SLO,
		DropModule: -1,
		Payload:    pr,
	}
	pr.done = done
	pr.linked = true
	pr.prev = nil
	pr.next = s.pending
	if s.pending != nil {
		s.pending.prev = pr
	}
	s.pending = pr
	s.pmu.Unlock()
	s.inFlight.Add(1)
	s.cl.Inject(&pr.req, now)
	return pr
}

// allocLocked hands out the next pendingReq from the slab, growing it a
// chunk at a time — one allocation per slabChunk requests instead of one
// per request. Callers hold pmu.
func (s *Server) allocLocked() *pendingReq {
	if s.slabNext == len(s.slab) {
		s.slab = make([]pendingReq, slabChunk)
		s.slabNext = 0
	}
	pr := &s.slab[s.slabNext]
	s.slabNext++
	return pr
}

// unregister removes pr from the outstanding list, returning false when it
// was already resolved (by a finish callback or Stop's drain).
func (s *Server) unregister(pr *pendingReq) bool {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if !pr.linked {
		return false
	}
	pr.linked = false
	if pr.prev != nil {
		pr.prev.next = pr.next
	} else {
		s.pending = pr.next
	}
	if pr.next != nil {
		pr.next.prev = pr.prev
	}
	return true
}

// onDone resolves a request that completed the sink module.
func (s *Server) onDone(req *sched.Request, now time.Duration) {
	out := OutcomeGood
	if now > req.Deadline {
		out = OutcomeLate
	}
	s.finish(req, Response{ID: req.ID, Outcome: out}, now, -1)
}

// onDrop resolves a request the policy dropped at module k.
func (s *Server) onDrop(req *sched.Request, k int, now time.Duration) {
	s.finish(req, Response{ID: req.ID, Outcome: OutcomeDropped, DropModule: k}, now, k)
}

// finish records a terminal outcome decided by the core and delivers the
// client response, unless Stop's drain already resolved the request.
func (s *Server) finish(req *sched.Request, resp Response, now time.Duration, dropModule int) {
	pr := req.Payload.(*pendingReq)
	if !s.unregister(pr) {
		return
	}
	s.resolve(pr, resp, now, dropModule)
}

// resolve records a terminal outcome and delivers the client response. The
// caller must have unregistered pr (exactly-once contract); the buffered
// send therefore never blocks.
func (s *Server) resolve(pr *pendingReq, resp Response, now time.Duration, dropModule int) {
	s.inFlight.Add(-1)
	resp.LatencyMS = float64((now - pr.req.Send).Microseconds()) / 1000
	rec := metrics.Record{Send: pr.req.Send, Done: now, GPUTime: pr.req.GPU, DropModule: -1}
	switch resp.Outcome {
	case OutcomeGood:
		rec.Outcome = metrics.Good
	case OutcomeLate:
		rec.Outcome = metrics.Late
	case OutcomeDropped:
		rec.Outcome = metrics.DroppedOutcome
		rec.DropModule = dropModule
	}
	s.cmu.Lock()
	s.col.Add(rec)
	s.cmu.Unlock()
	pr.done <- resp
}

// Summary returns the live metrics snapshot.
func (s *Server) Summary() metrics.Summary {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.col.Summary()
}

// bufPool recycles the encode-before-write staging buffers.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSON encodes v into a staging buffer first, so an encoding failure
// produces a clean 500 instead of an error message appended to a partial
// body with a misleading 200 status.
func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus is writeJSON with a non-200 status code (encode-before-
// write still applies: an encoding failure yields a clean 500, never a
// partial body under the intended status).
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	w.Write(buf.Bytes())
}

// Handler returns the HTTP data plane:
//
//	POST /infer   — run one request through the pipeline
//	GET  /stats   — metrics summary JSON
//	GET  /healthz — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		pr := s.submit()
		// A stoppable timer, not time.After: the common (resolved) case
		// must not leak a live 10×SLO timer per request until it fires.
		stall := time.NewTimer(10 * s.cfg.Spec.SLO)
		defer stall.Stop()
		select {
		case resp := <-pr.done:
			respChans.Put(pr.done)
			if resp.Outcome == OutcomeRejected {
				w.Header().Set("Retry-After", s.retryAfter)
				writeJSONStatus(w, http.StatusTooManyRequests, resp)
				return
			}
			writeJSON(w, resp)
		case <-r.Context().Done():
			// Client disconnected: stop waiting. The request keeps
			// draining through the core (its outcome still lands in the
			// metrics), but the channel cannot be reused — a late
			// resolution may still land in its buffer.
			return
		case <-stall.C:
			http.Error(w, "pipeline stalled", http.StatusGatewayTimeout)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Summary())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}
