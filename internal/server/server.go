// Package server is the wall-clock serving runtime: the same controller /
// worker / policy architecture as the simulator (Fig. 4), but with real
// goroutine workers, mutex-guarded queues and an HTTP data plane. Model
// execution is simulated by sleeping the profiled duration — the scheduler
// code paths (queueing, batching, dropping, state sync) are the real thing.
//
// The live runtime serves chain pipelines; DAG pipelines are supported by
// the discrete-event simulator (internal/simgpu), which the experiments use.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pard/internal/core"
	"pard/internal/depq"
	"pard/internal/metrics"
	"pard/internal/pipeline"
	"pard/internal/policy"
	"pard/internal/profile"
	"pard/internal/sim"
	"pard/internal/simgpu"
	"pard/internal/stats"
)

// Config describes a live serving deployment.
type Config struct {
	Spec *pipeline.Spec
	Lib  *profile.Library
	// PolicyName selects the dropping policy (default "pard").
	PolicyName string
	// Workers is the per-module worker count (default 2 each).
	Workers []int
	// SyncPeriod is the state-synchronization interval (default 250 ms; the
	// live demo favors responsiveness over the paper's 1 s).
	SyncPeriod time.Duration
	// BatchFrac as in the simulator (default 0.5).
	BatchFrac float64
	// Seed drives the policy's random streams.
	Seed int64
}

// Outcome is the terminal state of a live request.
type Outcome string

// Outcomes.
const (
	OutcomeGood    Outcome = "good"
	OutcomeLate    Outcome = "late"
	OutcomeDropped Outcome = "dropped"
)

// Response is the JSON reply of POST /infer.
type Response struct {
	ID        uint64  `json:"id"`
	Outcome   Outcome `json:"outcome"`
	LatencyMS float64 `json:"latency_ms"`
	// DropModule is set when Outcome is "dropped".
	DropModule int `json:"drop_module,omitempty"`
}

type liveReq struct {
	id       uint64
	send     time.Duration
	deadline time.Duration
	arrive   time.Duration
	done     chan Response
}

type liveWorker struct {
	mod    *liveModule
	queue  depq.Queue[*liveReq]
	wake   chan struct{}
	closed bool
}

type liveModule struct {
	srv         *Server
	idx         int
	model       profile.Model
	targetBatch int
	targetDur   time.Duration
	workers     []*liveWorker
	next        int // round-robin dispatch cursor

	qWin    *stats.SlidingWindow
	waitRes *stats.Reservoir
	rateWin *stats.RateWindow
}

// Server hosts one pipeline.
type Server struct {
	cfg   Config
	clock sim.Clock

	mu      sync.Mutex
	pol     policy.Policy
	board   *core.Board
	modules []*liveModule
	col     *metrics.Collector
	nextID  uint64
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// New validates the config and builds (but does not start) a server.
func New(cfg Config) (*Server, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("server: config needs a pipeline spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Spec.IsChain() {
		return nil, fmt.Errorf("server: live runtime serves chain pipelines; use the simulator for DAGs")
	}
	if cfg.Lib == nil {
		cfg.Lib = profile.DefaultLibrary()
	}
	if cfg.PolicyName == "" {
		cfg.PolicyName = "pard"
	}
	if cfg.SyncPeriod <= 0 {
		cfg.SyncPeriod = 250 * time.Millisecond
	}
	if cfg.BatchFrac <= 0 {
		cfg.BatchFrac = 0.5
	}
	n := cfg.Spec.N()
	if cfg.Workers == nil {
		cfg.Workers = make([]int, n)
		for i := range cfg.Workers {
			cfg.Workers[i] = 2
		}
	}
	if len(cfg.Workers) != n {
		return nil, fmt.Errorf("server: %d worker counts for %d modules", len(cfg.Workers), n)
	}
	batches, durs, err := simgpu.TargetBatches(cfg.Spec, cfg.Lib, cfg.BatchFrac)
	if err != nil {
		return nil, err
	}
	pol, err := policy.New(cfg.PolicyName, policy.Setup{
		Spec: cfg.Spec,
		Durs: durs,
		Rng:  newRand(cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		clock:  sim.NewWallClock(),
		pol:    pol,
		board:  core.NewBoard(n),
		col:    metrics.NewCollector(cfg.Spec.SLO, n),
		stopCh: make(chan struct{}),
	}
	for k := 0; k < n; k++ {
		model, err := cfg.Lib.Get(cfg.Spec.Modules[k].Name)
		if err != nil {
			return nil, err
		}
		m := &liveModule{
			srv:         s,
			idx:         k,
			model:       model,
			targetBatch: batches[k],
			targetDur:   durs[k],
			qWin:        stats.NewSlidingWindow(5 * time.Second),
			waitRes:     stats.NewReservoir(256, newRand(cfg.Seed+int64(k)+10)),
			rateWin:     stats.NewRateWindow(5 * time.Second),
		}
		for w := 0; w < cfg.Workers[k]; w++ {
			lw := &liveWorker{mod: m, wake: make(chan struct{}, 1)}
			if pol.Queue() == policy.KindDEPQ {
				lw.queue = depq.New[*liveReq]()
			} else {
				lw.queue = depq.NewFIFO[*liveReq]()
			}
			m.workers = append(m.workers, lw)
		}
		s.modules = append(s.modules, m)
	}
	return s, nil
}

// Start launches worker and sync goroutines.
func (s *Server) Start() {
	for _, m := range s.modules {
		for _, w := range m.workers {
			s.wg.Add(1)
			go s.workerLoop(w)
		}
	}
	s.wg.Add(1)
	go s.syncLoop()
}

// Stop terminates all goroutines; queued requests are dropped.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stopCh)
	for _, m := range s.modules {
		for _, w := range m.workers {
			w.closed = true
			select {
			case w.wake <- struct{}{}:
			default:
			}
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Submit enqueues one request and returns a channel delivering its outcome.
func (s *Server) Submit() <-chan Response {
	now := s.clock.Now()
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	req := &liveReq{
		id:       id,
		send:     now,
		deadline: now + s.cfg.Spec.SLO,
		done:     make(chan Response, 1),
	}
	s.enqueueLocked(req, 0, now)
	s.mu.Unlock()
	return req.done
}

// enqueueLocked routes a request into module k. Caller holds s.mu.
func (s *Server) enqueueLocked(req *liveReq, k int, now time.Duration) {
	m := s.modules[k]
	m.rateWin.Observe(now)
	req.arrive = now
	ri := policy.RequestInfo{Send: req.send, Deadline: req.deadline, ArriveModule: now}
	if !s.pol.Admit(k, now, ri) {
		s.finishLocked(req, Response{ID: req.id, Outcome: OutcomeDropped, DropModule: k}, now, k)
		return
	}
	// Round-robin over workers with the shortest queue.
	best := m.workers[m.next%len(m.workers)]
	m.next++
	for _, w := range m.workers {
		if w.queue.Len() < best.queue.Len() {
			best = w
		}
	}
	best.queue.Push(req, int64(req.deadline))
	select {
	case best.wake <- struct{}{}:
	default:
	}
}

// finishLocked records a terminal outcome. Caller holds s.mu.
func (s *Server) finishLocked(req *liveReq, resp Response, now time.Duration, dropModule int) {
	resp.LatencyMS = float64((now - req.send).Microseconds()) / 1000
	rec := metrics.Record{Send: req.send, Done: now, DropModule: -1}
	switch resp.Outcome {
	case OutcomeGood:
		rec.Outcome = metrics.Good
	case OutcomeLate:
		rec.Outcome = metrics.Late
	case OutcomeDropped:
		rec.Outcome = metrics.DroppedOutcome
		rec.DropModule = dropModule
	}
	s.col.Add(rec)
	req.done <- resp
}

// workerLoop is one GPU worker: form a batch under the lock, sleep the
// profiled duration, forward downstream.
func (s *Server) workerLoop(w *liveWorker) {
	defer s.wg.Done()
	m := w.mod
	for {
		select {
		case <-s.stopCh:
			return
		case <-w.wake:
		}
		for {
			now := s.clock.Now()
			s.mu.Lock()
			if s.stopped {
				s.mu.Unlock()
				return
			}
			batch := s.formBatchLocked(w, now)
			s.mu.Unlock()
			if len(batch) == 0 {
				break // wait for the next wake-up
			}
			dur := m.model.Duration(len(batch))
			time.Sleep(dur)
			end := s.clock.Now()
			s.mu.Lock()
			for _, req := range batch {
				if m.idx == len(s.modules)-1 {
					out := OutcomeGood
					if end > req.deadline {
						out = OutcomeLate
					}
					s.finishLocked(req, Response{ID: req.id, Outcome: out}, end, -1)
					continue
				}
				s.enqueueLocked(req, m.idx+1, end)
			}
			s.mu.Unlock()
		}
	}
}

// formBatchLocked pops up to the target batch size, applying the drop
// policy per request. Caller holds s.mu.
func (s *Server) formBatchLocked(w *liveWorker, now time.Duration) []*liveReq {
	m := w.mod
	var batch []*liveReq
	for len(batch) < m.targetBatch && w.queue.Len() > 0 {
		var req *liveReq
		var ok bool
		if s.pol.PopEnd(m.idx) == policy.MaxEnd {
			req, _, ok = w.queue.PopMax()
		} else {
			req, _, ok = w.queue.PopMin()
		}
		if !ok {
			break
		}
		q := now - req.arrive
		ctx := policy.DecideCtx{
			Req:           policy.RequestInfo{Send: req.send, Deadline: req.deadline, ArriveModule: req.arrive},
			Module:        m.idx,
			Now:           now,
			ExpectedStart: now,
			ExecDur:       m.targetDur,
			SLO:           s.cfg.Spec.SLO,
		}
		if !s.pol.Decide(ctx) {
			s.finishLocked(req, Response{ID: req.id, Outcome: OutcomeDropped, DropModule: m.idx}, now, m.idx)
			continue
		}
		m.qWin.Add(now, q.Seconds())
		m.waitRes.Add(0) // live runtime executes formed batches immediately
		batch = append(batch, req)
	}
	return batch
}

// syncLoop publishes module state and refreshes the policy periodically.
func (s *Server) syncLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SyncPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
		}
		now := s.clock.Now()
		s.mu.Lock()
		for _, m := range s.modules {
			qMean, _ := m.qWin.Mean(now)
			st := core.ModuleState{
				QueueDelay:  time.Duration(qMean * float64(time.Second)),
				ProfiledDur: m.targetDur,
				BatchWait:   append([]float64(nil), m.waitRes.Values()...),
				InputRate:   m.rateWin.Rate(now),
				Throughput:  float64(len(m.workers)) * m.model.Throughput(m.targetBatch),
			}
			st.Overloaded = st.QueueDelay > 20*time.Millisecond
			s.board.Publish(m.idx, st)
		}
		s.pol.OnSync(now, s.board)
		s.mu.Unlock()
	}
}

// Summary returns the live metrics snapshot.
func (s *Server) Summary() metrics.Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.Summary()
}

// Handler returns the HTTP data plane:
//
//	POST /infer   — run one request through the pipeline
//	GET  /stats   — metrics summary JSON
//	GET  /healthz — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		select {
		case resp := <-s.Submit():
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(resp); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case <-time.After(10 * s.cfg.Spec.SLO):
			http.Error(w, "pipeline stalled", http.StatusGatewayTimeout)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.Summary()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}
