// Package server is the wall-clock serving runtime: a thin shell over the
// shared scheduling core (internal/sched) — the same controller / worker /
// policy state machine the discrete-event simulator runs — instantiated
// with wall-clock timers and an HTTP data plane. Model execution is
// simulated by letting batch timers elapse for the profiled duration; the
// scheduler code paths (queueing, batching, dropping, priority, state sync)
// are literally the simulator's, byte for byte.
//
// The live runtime serves any validated pipeline, chains and DAGs alike:
// fan-out dispatches a request copy to every successor, fan-in merges when
// all expected branch copies arrive, with the same join semantics as the
// simulator (end-to-end latency is the maximum over paths).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pard/internal/metrics"
	"pard/internal/pipeline"
	"pard/internal/profile"
	"pard/internal/sched"
)

// Config describes a live serving deployment.
type Config struct {
	Spec *pipeline.Spec
	Lib  *profile.Library
	// PolicyName selects the dropping policy (default "pard").
	PolicyName string
	// Workers is the per-module worker count (default 2 each).
	Workers []int
	// SyncPeriod is the state-synchronization interval (default 250 ms; the
	// live demo favors responsiveness over the paper's 1 s).
	SyncPeriod time.Duration
	// BatchFrac as in the simulator (default 0.5).
	BatchFrac float64
	// NetDelay is the per-hop transfer delay between modules (default 0:
	// in-process hops are immediate).
	NetDelay time.Duration
	// JitterPct adds execution-duration jitter as in the simulator
	// (default 0: live batches take exactly the profiled duration).
	JitterPct float64
	// Seed drives the core's deterministic random streams.
	Seed int64
	// Scaling optionally enables the autoscaling engine (zero = fixed
	// worker counts).
	Scaling sched.ScalingConfig
	// Probes selects optional core recordings (diagnostics and tests).
	Probes sched.ProbeConfig
	// Exec overrides the executor driving the core. Nil selects wall-clock
	// timers; tests inject a deterministic executor (sched.ManualExecutor)
	// to replay workloads reproducibly.
	Exec sched.Executor
}

// Outcome is the terminal state of a live request.
type Outcome string

// Outcomes.
const (
	OutcomeGood    Outcome = "good"
	OutcomeLate    Outcome = "late"
	OutcomeDropped Outcome = "dropped"
)

// Response is the JSON reply of POST /infer.
type Response struct {
	ID        uint64  `json:"id"`
	Outcome   Outcome `json:"outcome"`
	LatencyMS float64 `json:"latency_ms"`
	// DropModule is set when Outcome is "dropped".
	DropModule int `json:"drop_module,omitempty"`
}

// Server hosts one pipeline on the shared scheduling core.
type Server struct {
	cfg  Config
	exec sched.Executor
	wall *sched.TimerExecutor // owned executor, nil when injected
	cl   *sched.Cluster

	mu      sync.Mutex
	col     *metrics.Collector
	nextID  uint64
	started bool
	stopped bool
}

// New validates the config and builds (but does not start) a server for any
// validated pipeline spec — chain or DAG.
func New(cfg Config) (*Server, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("server: config needs a pipeline spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Lib == nil {
		cfg.Lib = profile.DefaultLibrary()
	}
	if cfg.PolicyName == "" {
		cfg.PolicyName = "pard"
	}
	if cfg.SyncPeriod <= 0 {
		cfg.SyncPeriod = 250 * time.Millisecond
	}
	if cfg.BatchFrac <= 0 {
		cfg.BatchFrac = 0.5
	}
	n := cfg.Spec.N()
	if cfg.Workers == nil {
		cfg.Workers = make([]int, n)
		for i := range cfg.Workers {
			cfg.Workers[i] = 2
		}
	}
	if len(cfg.Workers) != n {
		return nil, fmt.Errorf("server: %d worker counts for %d modules", len(cfg.Workers), n)
	}

	s := &Server{
		cfg: cfg,
		col: metrics.NewCollector(cfg.Spec.SLO, n),
	}
	if cfg.Exec != nil {
		s.exec = cfg.Exec
	} else {
		s.wall = sched.NewTimerExecutor()
		s.exec = s.wall
	}
	cl, err := sched.New(sched.Config{
		Spec:       cfg.Spec,
		Lib:        cfg.Lib,
		PolicyName: cfg.PolicyName,
		Seed:       cfg.Seed,
		BatchFrac:  cfg.BatchFrac,
		Workers:    cfg.Workers,
		NetDelay:   cfg.NetDelay,
		JitterPct:  cfg.JitterPct,
		Scaling:    cfg.Scaling,
		Probes:     cfg.Probes,
		OnDone:     s.onDone,
		OnDrop:     s.onDrop,
	}, s.exec)
	if err != nil {
		if s.wall != nil {
			s.wall.Stop()
		}
		return nil, err
	}
	s.cl = cl
	return s, nil
}

// Start launches the periodic state-synchronization (and, when enabled,
// scaling) loops on the executor.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started || s.stopped {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()

	s.every(s.cfg.SyncPeriod, "sync", s.cl.SyncTick)
	if s.cfg.Scaling.Enabled {
		s.every(s.cfg.Scaling.Period, "scale", s.cl.ScaleTick)
	}
}

// every runs fn on the executor each period until the server stops.
func (s *Server) every(period time.Duration, name string, fn func(now time.Duration)) {
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		if s.isStopped() {
			return
		}
		fn(now)
		s.exec.Schedule(now+period, name, tick)
	}
	s.exec.Schedule(s.exec.Now()+period, name, tick)
}

func (s *Server) isStopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// Stop cancels all pending timers and waits for in-flight callbacks.
// Requests still queued inside the core receive no response (the HTTP
// handler's stall timeout covers abandoned clients).
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	if s.wall != nil {
		s.wall.Stop()
	}
}

// Submit enqueues one request and returns a channel delivering its outcome.
// After Stop the channel resolves immediately as dropped.
func (s *Server) Submit() <-chan Response {
	done := make(chan Response, 1)
	now := s.exec.Now()
	// Hold the lock across Inject so Stop cannot interleave between the
	// stopped check and arming the arrival: a submit either resolves
	// immediately (stopped) or is injected before Stop begins. Inject only
	// arms a callback — core work happens on the executor, never here.
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		done <- Response{Outcome: OutcomeDropped}
		return done
	}
	id := s.nextID
	s.nextID++
	req := &sched.Request{
		ID:         id,
		Send:       now,
		Deadline:   now + s.cfg.Spec.SLO,
		DropModule: -1,
		Payload:    done,
	}
	s.cl.Inject(req, now)
	s.mu.Unlock()
	return done
}

// onDone resolves a request that completed the sink module.
func (s *Server) onDone(req *sched.Request, now time.Duration) {
	out := OutcomeGood
	if now > req.Deadline {
		out = OutcomeLate
	}
	s.finish(req, Response{ID: req.ID, Outcome: out}, now, -1)
}

// onDrop resolves a request the policy dropped at module k.
func (s *Server) onDrop(req *sched.Request, k int, now time.Duration) {
	s.finish(req, Response{ID: req.ID, Outcome: OutcomeDropped, DropModule: k}, now, k)
}

// finish records a terminal outcome and delivers the client response.
func (s *Server) finish(req *sched.Request, resp Response, now time.Duration, dropModule int) {
	resp.LatencyMS = float64((now - req.Send).Microseconds()) / 1000
	rec := metrics.Record{Send: req.Send, Done: now, GPUTime: req.GPU, DropModule: -1}
	switch resp.Outcome {
	case OutcomeGood:
		rec.Outcome = metrics.Good
	case OutcomeLate:
		rec.Outcome = metrics.Late
	case OutcomeDropped:
		rec.Outcome = metrics.DroppedOutcome
		rec.DropModule = dropModule
	}
	s.mu.Lock()
	s.col.Add(rec)
	s.mu.Unlock()
	req.Payload.(chan Response) <- resp
}

// Summary returns the live metrics snapshot.
func (s *Server) Summary() metrics.Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.Summary()
}

// Handler returns the HTTP data plane:
//
//	POST /infer   — run one request through the pipeline
//	GET  /stats   — metrics summary JSON
//	GET  /healthz — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		select {
		case resp := <-s.Submit():
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(resp); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case <-time.After(10 * s.cfg.Spec.SLO):
			http.Error(w, "pipeline stalled", http.StatusGatewayTimeout)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.Summary()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}
