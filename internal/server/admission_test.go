package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/sched"
)

// admissionServer is manualServer with an admission gate.
func admissionServer(t *testing.T, slo time.Duration, adm AdmissionConfig) (*Server, *sched.ManualExecutor) {
	t.Helper()
	spec := pipeline.Uniform("manual", 3, "fast", slo)
	man := sched.NewManualExecutor()
	s, err := New(Config{
		Spec:       spec,
		Lib:        fastLib(t),
		PolicyName: "pard",
		SyncPeriod: 50 * time.Millisecond,
		Seed:       1,
		Exec:       man,
		Admission:  adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, man
}

// TestAdmissionMaxInFlight pins the in-flight bound end to end: submissions
// beyond the cap reject immediately without touching the core, resolved
// requests free their slots, and /stats accounts for every rejection.
func TestAdmissionMaxInFlight(t *testing.T) {
	s, man := admissionServer(t, time.Second, AdmissionConfig{Enabled: true, MaxInFlight: 2})
	s.Start()
	defer s.Stop()

	a, b := s.Submit(), s.Submit()
	pendingBefore := man.Pending()

	// Third submission: over the bound — must resolve instantly as rejected
	// and must not schedule anything on the executor.
	select {
	case r := <-s.Submit():
		if r.Outcome != OutcomeRejected {
			t.Fatalf("over-bound submit resolved %q, want rejected", r.Outcome)
		}
		if r.ID != 2 {
			t.Fatalf("rejected submit got ID %d, want 2", r.ID)
		}
	default:
		t.Fatal("over-bound submit did not resolve immediately")
	}
	if got := man.Pending(); got != pendingBefore {
		t.Fatalf("rejection touched the executor: pending %d -> %d", pendingBefore, got)
	}

	// Drain the admitted pair; their slots must free up.
	man.RunUntil(man.Now() + 10*time.Second)
	for i, ch := range []<-chan Response{a, b} {
		select {
		case r := <-ch:
			if r.Outcome == OutcomeRejected {
				t.Fatalf("admitted request %d resolved as rejected", i)
			}
		default:
			t.Fatalf("admitted request %d never resolved", i)
		}
	}
	ch := s.Submit()
	select {
	case r := <-ch:
		if r.Outcome == OutcomeRejected {
			t.Fatal("post-drain submit rejected; in-flight slots not released")
		}
		t.Fatalf("post-drain submit resolved prematurely: %+v", r)
	default: // admitted: pending inside the core
	}

	sum := s.Summary()
	if sum.Rejected != 1 {
		t.Fatalf("summary rejected = %d, want 1", sum.Rejected)
	}
	if sum.Total != 3 {
		t.Fatalf("summary total = %d, want 3 (2 answered + 1 rejected; 1 still in flight)", sum.Total)
	}
}

// TestAdmissionEstimatorReject pins the estimator-driven path: before the
// first board refresh the gate admits (prediction zero); after one sync
// period the cached prediction is the entry module's Q+d+Lsub, which is
// strictly positive (ProfiledDur always is), so a vanishing SLOFactor flips
// the gate to rejecting.
func TestAdmissionEstimatorReject(t *testing.T) {
	s, man := admissionServer(t, time.Second, AdmissionConfig{Enabled: true, SLOFactor: 1e-12})
	s.Start()
	defer s.Stop()

	ch := s.Submit() // pre-refresh: admitted
	select {
	case r := <-ch:
		t.Fatalf("pre-refresh submit resolved immediately: %+v", r)
	default:
	}

	man.RunUntil(man.Now() + 60*time.Millisecond) // one sync + one gate refresh
	select {
	case r := <-s.Submit():
		if r.Outcome != OutcomeRejected {
			t.Fatalf("post-refresh submit resolved %q, want rejected", r.Outcome)
		}
	default:
		t.Fatal("post-refresh submit did not resolve immediately")
	}
	if sum := s.Summary(); sum.Rejected != 1 {
		t.Fatalf("summary rejected = %d, want 1", sum.Rejected)
	}
}

// TestAdmissionRejectedHTTP pins the wire shape of a rejection: 429 status,
// a Retry-After hint, and a JSON body with outcome "rejected" and no
// drop_module key.
func TestAdmissionRejectedHTTP(t *testing.T) {
	s, man := admissionServer(t, time.Second, AdmissionConfig{Enabled: true, SLOFactor: 1e-12})
	s.Start()
	defer s.Stop()
	man.RunUntil(man.Now() + 60*time.Millisecond)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/infer", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("rejected request answered %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		// RetryAfter defaults to the 50 ms sync period, clamped up to 1 s.
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("429 body not JSON: %v", err)
	}
	if body["outcome"] != "rejected" {
		t.Fatalf("429 body outcome = %v", body["outcome"])
	}
	if _, ok := body["drop_module"]; ok {
		t.Fatalf("429 body carries drop_module: %s", rec.Body.String())
	}
}

// TestAdmissionStopRace pins the lifecycle interleavings around Stop:
// requests admitted before Stop drain as dropped exactly once; a rejected
// request was never injected, so replaying the executor afterwards must not
// resolve it a second time; and submissions after Stop keep the immediate
// dropped fast path even with the gate enabled.
func TestAdmissionStopRace(t *testing.T) {
	s, man := admissionServer(t, time.Second, AdmissionConfig{Enabled: true, MaxInFlight: 1})
	s.Start()

	admitted := s.Submit()
	rejected := s.Submit() // over the bound
	if r := <-rejected; r.Outcome != OutcomeRejected {
		t.Fatalf("second submit resolved %q, want rejected", r.Outcome)
	}

	s.Stop()
	if r := <-admitted; r.Outcome != OutcomeDropped || r.DropModule != -1 {
		t.Fatalf("admitted request resolved %+v at shutdown", r)
	}

	// Replay everything the core had scheduled: neither channel may see a
	// second resolution.
	man.RunUntil(man.Now() + 10*time.Second)
	select {
	case r := <-admitted:
		t.Fatalf("admitted request resolved twice: %+v", r)
	case r := <-rejected:
		t.Fatalf("rejected request resolved twice: %+v", r)
	default:
	}

	// Post-stop submissions drop immediately (in-flight slot freed by the
	// drain, so the gate admits and the stop latch answers).
	select {
	case r := <-s.Submit():
		if r.Outcome != OutcomeDropped || r.DropModule != -1 {
			t.Fatalf("post-stop submit resolved %+v", r)
		}
	default:
		t.Fatal("post-stop submit did not resolve immediately")
	}

	sum := s.Summary()
	if sum.Total != 2 || sum.Dropped != 1 || sum.Rejected != 1 {
		t.Fatalf("summary total=%d dropped=%d rejected=%d, want 2/1/1",
			sum.Total, sum.Dropped, sum.Rejected)
	}
}

// TestAdmissionDisabledUntouched pins the off switch: with a zero
// AdmissionConfig no gate state exists and submissions follow the exact
// pre-gate path (nothing rejected, no admission timer scheduled).
func TestAdmissionDisabledUntouched(t *testing.T) {
	s, man := manualServer(t, time.Second)
	s.Start()
	defer s.Stop()
	if s.gateEst != nil {
		t.Fatal("disabled admission built an estimator")
	}
	before := man.Pending()
	ch := s.Submit()
	if man.Pending() <= before {
		t.Fatal("submission did not reach the executor")
	}
	man.RunUntil(man.Now() + 10*time.Second)
	r := <-ch
	if r.Outcome == OutcomeRejected {
		t.Fatalf("disabled gate rejected a request: %+v", r)
	}
	if sum := s.Summary(); sum.Rejected != 0 {
		t.Fatalf("disabled gate recorded %d rejections", sum.Rejected)
	}
}

// TestResponseDropModuleJSON pins the satellite fix: drop_module must be
// emitted for every dropped response — including drops at module 0, which
// the old `omitempty` tag silently swallowed — and omitted otherwise.
func TestResponseDropModuleJSON(t *testing.T) {
	cases := []struct {
		resp     Response
		wantKey  bool
		wantDrop float64
	}{
		{Response{ID: 1, Outcome: OutcomeDropped, DropModule: 0}, true, 0},
		{Response{ID: 2, Outcome: OutcomeDropped, DropModule: 3}, true, 3},
		{Response{ID: 3, Outcome: OutcomeDropped, DropModule: -1}, true, -1},
		{Response{ID: 4, Outcome: OutcomeGood}, false, 0},
		{Response{ID: 5, Outcome: OutcomeLate}, false, 0},
		{Response{ID: 6, Outcome: OutcomeRejected}, false, 0},
	}
	for _, tc := range cases {
		raw, err := json.Marshal(tc.resp)
		if err != nil {
			t.Fatalf("%+v: %v", tc.resp, err)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("%+v: %v", tc.resp, err)
		}
		v, ok := m["drop_module"]
		if ok != tc.wantKey {
			t.Fatalf("%+v marshaled %s: drop_module presence = %v, want %v", tc.resp, raw, ok, tc.wantKey)
		}
		if ok && v.(float64) != tc.wantDrop {
			t.Fatalf("%+v marshaled %s: drop_module = %v, want %v", tc.resp, raw, v, tc.wantDrop)
		}
		// Round trip: clients decode into the same struct.
		var back Response
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%+v: decode: %v", tc.resp, err)
		}
		if back.ID != tc.resp.ID || back.Outcome != tc.resp.Outcome {
			t.Fatalf("round trip %+v -> %+v", tc.resp, back)
		}
		if tc.wantKey && back.DropModule != tc.resp.DropModule {
			t.Fatalf("round trip lost drop module: %+v -> %+v", tc.resp, back)
		}
	}
}
