package server

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/sched"
)

// manualServer builds a server on an injected ManualExecutor: nothing
// resolves until the test steps the clock, so lifecycle edges (cancel,
// stall, stop-with-inflight) are deterministic.
func manualServer(t *testing.T, slo time.Duration) (*Server, *sched.ManualExecutor) {
	t.Helper()
	spec := pipeline.Uniform("manual", 3, "fast", slo)
	man := sched.NewManualExecutor()
	s, err := New(Config{
		Spec:       spec,
		Lib:        fastLib(t),
		PolicyName: "pard",
		SyncPeriod: 50 * time.Millisecond,
		Seed:       1,
		Exec:       man,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, man
}

// TestInferClientCancel pins the client-disconnect path: a canceled request
// context must release the handler immediately instead of leaving the
// goroutine parked on the response channel for up to 10×SLO. Pre-fix the
// handler ignored r.Context(), so with a 5 s SLO it blocked for 50 s; the
// 2 s deadline below fails that code.
func TestInferClientCancel(t *testing.T) {
	s, _ := manualServer(t, 5*time.Second) // clock never stepped: never resolves
	s.Start()
	defer s.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/infer", nil).WithContext(ctx)
	rec := httptest.NewRecorder()

	returned := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(returned)
	}()
	time.Sleep(20 * time.Millisecond) // let the handler block on the select
	cancel()
	select {
	case <-returned:
	case <-time.After(2 * time.Second):
		t.Fatal("handler still blocked 2s after client disconnect (r.Context ignored)")
	}
}

// TestInferStallTimeout pins the stall backstop: a pipeline that never
// resolves (manual clock, never stepped) must answer 504 after 10×SLO.
func TestInferStallTimeout(t *testing.T) {
	s, _ := manualServer(t, 5*time.Millisecond) // stall backstop at 50 ms
	s.Start()
	defer s.Stop()

	req := httptest.NewRequest(http.MethodPost, "/infer", nil)
	rec := httptest.NewRecorder()
	start := time.Now()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("stalled pipeline answered %d, want 504", rec.Code)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stall timeout took %v, want ~10×SLO", elapsed)
	}
	if !strings.Contains(rec.Body.String(), "stalled") {
		t.Fatalf("stall body = %q", rec.Body.String())
	}
}

// TestStopResolvesInFlight pins the shutdown drain: requests still queued
// inside the core when Stop runs must resolve as dropped (DropModule -1)
// instead of leaving their channels unresolved forever. Pre-fix this test
// times out on the unresolved channels.
func TestStopResolvesInFlight(t *testing.T) {
	s, man := manualServer(t, time.Second)
	s.Start()

	const n = 32
	chans := make([]<-chan Response, n)
	for i := range chans {
		chans[i] = s.Submit()
	}
	if pending := man.Pending(); pending == 0 {
		t.Fatal("no core events pending; submissions did not reach the executor")
	}
	s.Stop()

	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Outcome != OutcomeDropped {
				t.Fatalf("request %d resolved %q at shutdown, want dropped", i, r.Outcome)
			}
			if r.DropModule != -1 {
				t.Fatalf("request %d shutdown drop module = %d, want -1", i, r.DropModule)
			}
			if r.ID != uint64(i) {
				t.Fatalf("request %d resolved with ID %d", i, r.ID)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("request %d never resolved after Stop", i)
		}
	}
	sum := s.Summary()
	if sum.Total != n || sum.Dropped != n {
		t.Fatalf("summary after shutdown drain: total=%d dropped=%d, want %d/%d",
			sum.Total, sum.Dropped, n, n)
	}
	// Shutdown drops are lifecycle events, not policy decisions: no module
	// may be charged for them.
	for k, pct := range sum.PerModuleDropPct {
		if pct != 0 {
			t.Fatalf("module %d charged %.1f%% of shutdown drops", k, pct)
		}
	}
}

// TestLateCoreCallbackAfterStop pins exactly-once resolution: when an
// injected executor replays a completion after Stop already resolved the
// request, the late callback must be a no-op (no double send, no double
// count).
func TestLateCoreCallbackAfterStop(t *testing.T) {
	s, man := manualServer(t, time.Second)
	s.Start()
	ch := s.Submit()
	s.Stop()
	r := <-ch
	if r.Outcome != OutcomeDropped {
		t.Fatalf("shutdown outcome = %q", r.Outcome)
	}
	// Replay the core: the arrival (and everything after it) fires now.
	man.RunUntil(man.Now() + 10*time.Second)
	select {
	case r2 := <-ch:
		t.Fatalf("request resolved twice: %+v", r2)
	default:
	}
	if sum := s.Summary(); sum.Total != 1 {
		t.Fatalf("request counted %d times", sum.Total)
	}
}

// TestSubmitAfterStop pins the immediate-drop fast path.
func TestSubmitAfterStop(t *testing.T) {
	s, _ := manualServer(t, time.Second)
	s.Start()
	s.Stop()
	select {
	case r := <-s.Submit():
		if r.Outcome != OutcomeDropped || r.DropModule != -1 {
			t.Fatalf("post-stop submit resolved %+v", r)
		}
	default:
		t.Fatal("post-stop submit did not resolve immediately")
	}
}

// TestStatsAndHealthzRejectNonGET pins the data-plane method checks
// (pre-fix, POST /stats happily served the summary).
func TestStatsAndHealthzRejectNonGET(t *testing.T) {
	s, _ := manualServer(t, time.Second)
	s.Start()
	defer s.Stop()
	h := s.Handler()
	for _, path := range []string{"/stats", "/healthz"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s = %d, want 405", path, rec.Code)
		}
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}

// TestStatsSingleCleanDocument pins the buffer-first encoding: the /stats
// body must be exactly one well-formed JSON document with the JSON content
// type — no error text appended after a partial body.
func TestStatsSingleCleanDocument(t *testing.T) {
	s, _ := manualServer(t, time.Second)
	s.Start()
	defer s.Stop()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("stats content type = %q", ct)
	}
	dec := json.NewDecoder(rec.Body)
	var sum map[string]any
	if err := dec.Decode(&sum); err != nil {
		t.Fatalf("stats body not JSON: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		t.Fatalf("stats body has trailing content after the document: %v", err)
	}
}

// TestConcurrencyHammer drives the full HTTP data plane from many clients
// at once — some of which disconnect mid-request — then stops the server
// with traffic still arriving. Run under -race this exercises every
// lifecycle edge concurrently; the invariant is simply that every answered
// request carries a valid outcome and the server accounts for every
// submission exactly once.
func TestConcurrencyHammer(t *testing.T) {
	spec := pipeline.Uniform("hammer", 3, "fast", 100*time.Millisecond)
	s, err := New(Config{
		Spec:       spec,
		Lib:        fastLib(t),
		PolicyName: "pard",
		SyncPeriod: 10 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		clients  = 8
		perConn  = 40
		cancelTh = 4 // every 4th request disconnects early
	)
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[Outcome]int{}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perConn; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%cancelTh == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				}
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/infer", nil)
				resp, err := http.DefaultClient.Do(req)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					continue // canceled in flight
				}
				var out Response
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if derr != nil {
					t.Errorf("client %d: bad response body: %v", c, derr)
					return
				}
				switch out.Outcome {
				case OutcomeGood, OutcomeLate, OutcomeDropped:
				default:
					t.Errorf("client %d: invalid outcome %q", c, out.Outcome)
					return
				}
				mu.Lock()
				outcomes[out.Outcome]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if outcomes[OutcomeGood] == 0 {
		t.Fatalf("hammer produced no good responses: %v", outcomes)
	}

	// Stop with live traffic still arriving: submissions racing the stop
	// latch must all resolve (immediately or via the shutdown drain).
	var stopWG sync.WaitGroup
	for c := 0; c < clients; c++ {
		stopWG.Add(1)
		go func() {
			defer stopWG.Done()
			for i := 0; i < 20; i++ {
				select {
				case <-s.Submit():
				case <-time.After(5 * time.Second):
					t.Error("submission racing Stop never resolved")
					return
				}
			}
		}()
	}
	s.Stop()
	stopWG.Wait()

	// A client canceled before its handler ran never submitted, and
	// submissions landing after the stop latch resolve without entering
	// the collector — so the accounting floor is the answered HTTP count
	// (every answered request was submitted before Stop).
	answered := 0
	for _, n := range outcomes {
		answered += n
	}
	sum := s.Summary()
	if sum.Total < answered {
		t.Fatalf("summary total %d < %d answered over HTTP", sum.Total, answered)
	}
}
