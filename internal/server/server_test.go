package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/profile"
)

// fastLib returns a profile library with sub-millisecond models so live
// tests finish quickly.
func fastLib(t *testing.T) *profile.Library {
	t.Helper()
	lib := profile.NewLibrary()
	if err := lib.Add(profile.Model{
		Name:     "fast",
		Alpha:    200 * time.Microsecond,
		Beta:     100 * time.Microsecond,
		MaxBatch: 8,
	}); err != nil {
		t.Fatal(err)
	}
	return lib
}

func fastServer(t *testing.T, pol string) *Server {
	t.Helper()
	// Generous SLO relative to the sub-millisecond models so the test is
	// robust to scheduler noise on loaded machines.
	spec := pipeline.Uniform("live", 3, "fast", 150*time.Millisecond)
	s, err := New(Config{
		Spec:       spec,
		Lib:        fastLib(t),
		PolicyName: pol,
		SyncPeriod: 20 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil spec accepted")
	}
	if _, err := New(Config{Spec: pipeline.DA()}); err != nil {
		t.Fatalf("DAG rejected by live runtime: %v", err)
	}
	spec := pipeline.Uniform("x", 2, "fast", time.Second)
	if _, err := New(Config{Spec: spec, Lib: fastLib(t), Workers: []int{1}}); err == nil {
		t.Fatal("bad worker counts accepted")
	}
	if _, err := New(Config{Spec: spec, Lib: fastLib(t), PolicyName: "bogus"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestServeLightLoad(t *testing.T) {
	s := fastServer(t, "pard")
	s.Start()
	defer s.Stop()

	var wg sync.WaitGroup
	results := make([]Response, 50)
	for i := 0; i < 50; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = <-s.Submit()
			time.Sleep(time.Millisecond)
		}()
		time.Sleep(500 * time.Microsecond)
	}
	wg.Wait()

	good := 0
	for _, r := range results {
		if r.Outcome == OutcomeGood {
			good++
		}
	}
	if good < 45 {
		t.Fatalf("only %d/50 good under light load", good)
	}
	sum := s.Summary()
	if sum.Total != 50 {
		t.Fatalf("summary total = %d", sum.Total)
	}
}

func TestServeOverloadDrops(t *testing.T) {
	// One worker per module, 4-deep pipeline with a tight SLO, and a burst
	// far beyond capacity: the policy must drop rather than serve everything
	// late.
	spec := pipeline.Uniform("hot", 3, "fast", 20*time.Millisecond)
	s, err := New(Config{
		Spec:       spec,
		Lib:        fastLib(t),
		PolicyName: "pard",
		Workers:    []int{1, 1, 1},
		SyncPeriod: 10 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	const n = 400
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[Outcome]int{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := <-s.Submit()
			mu.Lock()
			counts[r.Outcome]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if counts[OutcomeDropped] == 0 {
		t.Fatalf("no drops under gross overload: %v", counts)
	}
	if counts[OutcomeGood] == 0 {
		t.Fatalf("total collapse: %v", counts)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := fastServer(t, "pard")
	s.Start()
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// healthz
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	// infer requires POST
	resp, err = http.Get(ts.URL + "/infer")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /infer = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// POST /infer round trip
	resp, err = http.Post(ts.URL+"/infer", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Outcome != OutcomeGood {
		t.Fatalf("infer outcome = %s (latency %.1fms)", out.Outcome, out.LatencyMS)
	}

	// stats
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sum map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum["Total"].(float64) < 1 {
		t.Fatalf("stats total = %v", sum["Total"])
	}
}

// dagSpec builds a DA-shaped diamond (fan-out at 0, merge at 3) over the
// fast test model.
func dagSpec(slo time.Duration) *pipeline.Spec {
	s := &pipeline.Spec{
		App: "dag-live",
		SLO: slo,
		Modules: []pipeline.Module{
			{ID: 0, Name: "fast", Subs: []int{1, 2}},
			{ID: 1, Name: "fast", Pres: []int{0}, Subs: []int{3}},
			{ID: 2, Name: "fast", Pres: []int{0}, Subs: []int{3}},
			{ID: 3, Name: "fast", Pres: []int{1, 2}, Subs: []int{4}},
			{ID: 4, Name: "fast", Pres: []int{3}},
		},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// TestServeDAG pushes live traffic through a fan-out/merge pipeline: every
// request must resolve exactly once (the merge collects both branch copies)
// and light load must mostly succeed end-to-end.
func TestServeDAG(t *testing.T) {
	s, err := New(Config{
		Spec:       dagSpec(200 * time.Millisecond),
		Lib:        fastLib(t),
		PolicyName: "pard",
		SyncPeriod: 20 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	var wg sync.WaitGroup
	results := make([]Response, 40)
	for i := 0; i < 40; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = <-s.Submit()
		}()
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	// The load is light, but this runs on real timers: a loaded CI machine
	// can legitimately push requests past the SLO, so assert the DAG
	// invariants (every request resolves exactly once, service happens)
	// rather than a timing-sensitive success rate. Decision-level behavior
	// is covered deterministically by the parity test.
	good := 0
	for _, r := range results {
		if r.Outcome == OutcomeGood {
			good++
		}
	}
	if good == 0 {
		t.Fatalf("no request survived the live DAG: %+v", results)
	}
	if sum := s.Summary(); sum.Total != 40 {
		t.Fatalf("summary total = %d, want 40 (merge double-counted?)", sum.Total)
	}
}

func TestStopIdempotent(t *testing.T) {
	s := fastServer(t, "nexus")
	s.Start()
	s.Stop()
	s.Stop() // second stop is a no-op
}

func TestAllPoliciesServe(t *testing.T) {
	for _, pol := range []string{"pard", "nexus", "clipper++", "naive", "pard-lbf"} {
		s := fastServer(t, pol)
		s.Start()
		r := <-s.Submit()
		if r.Outcome != OutcomeGood {
			t.Fatalf("%s: outcome %s", pol, r.Outcome)
		}
		s.Stop()
	}
}
