package server

import (
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/sched"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

// TestVirtualWallClockParity proves the tentpole claim of the shared
// scheduling core: driving the *same* DAG workload through the
// discrete-event simulator (virtual event-heap clock) and through the live
// server shell under an injected fake wall clock produces *identical*
// per-request outcomes — every drop at the same module, every completion at
// the same virtual instant — and identical per-sync priority decisions
// (load factor and HBF/LBF mode).
func TestVirtualWallClockParity(t *testing.T) {
	const (
		seed = 9
		sync = 250 * time.Millisecond
		net  = time.Millisecond
	)
	spec := pipeline.DA()
	workers := []int{2, 2, 2, 2, 2}
	tr := trace.MustGenerate(trace.Config{
		Kind:     trace.Tweet,
		Duration: 40 * time.Second,
		PeakRate: 500,
		Seed:     5,
	})

	// Side A: the simulator, pinned to the classic engine: the live shell
	// drives the core through a classic executor (immediate commits, global
	// event order), so clock parity is asserted engine-like-for-like. The
	// lane engine orders equal-timestamp events differently and is covered
	// by its own differential harness in internal/sched.
	res, err := simgpu.Run(simgpu.Config{
		Spec:         spec,
		Engine:       simgpu.EngineClassic,
		PolicyName:   "pard",
		Trace:        tr,
		Seed:         seed,
		SyncPeriod:   sync,
		FixedWorkers: workers,
		Probes:       simgpu.ProbeConfig{LoadFactor: true},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Side B: the live server shell on a fake wall clock, replaying the
	// same arrival sequence. Config mirrors the simulator's defaults
	// (1 ms net hop, 5% execution jitter) and the same seed, so the shared
	// core sees bit-identical inputs.
	man := sched.NewManualExecutor()
	srv, err := New(Config{
		Spec:       pipeline.DA(),
		PolicyName: "pard",
		Workers:    workers,
		SyncPeriod: sync,
		NetDelay:   net,
		JitterPct:  0.05,
		Seed:       seed,
		Probes:     sched.ProbeConfig{LoadFactor: true},
		Exec:       man,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	chans := make([]<-chan Response, 0, tr.Len())
	for _, at := range tr.Arrivals {
		man.RunUntil(at)
		chans = append(chans, srv.Submit())
	}
	// Step virtual time forward until every response resolved.
	resps := make([]Response, len(chans))
	next := 0
	for deadline := man.Now(); next < len(chans); deadline += sync {
		man.RunUntil(deadline)
		for ; next < len(chans); next++ {
			select {
			case r := <-chans[next]:
				resps[next] = r
			default:
				goto stepped
			}
		}
	stepped:
		if deadline > tr.Duration+time.Minute {
			t.Fatalf("live shell stalled: %d/%d responses after %v", next, len(chans), deadline)
		}
	}
	// Tick past the simulator's drain point so the live mode series covers
	// at least as many syncs as the simulator recorded.
	man.RunUntil(man.Now() + 4*sync)
	srv.Stop()

	// Per-request decisions: outcome, drop site and timing must all match.
	recs := res.Collector.Records()
	if len(recs) != len(resps) {
		t.Fatalf("request counts differ: sim %d, live %d", len(recs), len(resps))
	}
	drops := 0
	for i, rec := range recs {
		want := Response{ID: uint64(i), LatencyMS: float64((rec.Done - rec.Send).Microseconds()) / 1000}
		switch rec.Outcome.String() {
		case "good":
			want.Outcome = OutcomeGood
		case "late":
			want.Outcome = OutcomeLate
		case "dropped":
			want.Outcome = OutcomeDropped
			want.DropModule = rec.DropModule
			drops++
		}
		if resps[i] != want {
			t.Fatalf("request %d diverged: sim %+v, live %+v", i, want, resps[i])
		}
	}
	if drops == 0 {
		t.Fatal("workload produced no drops; parity test is vacuous")
	}

	// Per-sync priority decisions at the source module: the simulator's
	// series must be a prefix of the live one (the live shell keeps ticking
	// until Stop, the simulator stops at drain).
	live := srv.cl.Probes(spec.Source())
	if res.ModeSeries.Len() == 0 || live.Mode.Len() < res.ModeSeries.Len() {
		t.Fatalf("mode series too short: sim %d, live %d", res.ModeSeries.Len(), live.Mode.Len())
	}
	for i := range res.ModeSeries.V {
		if res.ModeSeries.V[i] != live.Mode.V[i] || res.ModeSeries.T[i] != live.Mode.T[i] {
			t.Fatalf("priority mode diverged at sync %d: sim (%v,%v), live (%v,%v)",
				i, res.ModeSeries.T[i], res.ModeSeries.V[i], live.Mode.T[i], live.Mode.V[i])
		}
		if res.LoadFactor.V[i] != live.Load.V[i] {
			t.Fatalf("load factor diverged at sync %d: sim %v, live %v",
				i, res.LoadFactor.V[i], live.Load.V[i])
		}
	}
}
