package server

import "math/rand"

// newRand returns a seeded random source for policy internals.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
