package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"pard/internal/profile"
	"pard/internal/simgpu"
	"pard/internal/sweep"
)

// WorkerConfig parameterizes the worker side of one coordinator connection.
type WorkerConfig struct {
	// Workers bounds concurrent unit executions and is advertised to the
	// coordinator as the connection's capacity (<= 0 selects
	// runtime.NumCPU()).
	Workers int
	// CacheDir, when set, persists finished artifacts locally (point it at
	// a shared volume to turn it into a cluster-wide artifact store).
	CacheDir string
	// Library provides the model profiles units run against (default
	// profile.DefaultLibrary()). Its fingerprint must match the
	// coordinator's: profiles don't travel in unit keys, so a mismatch is
	// refused at the handshake rather than silently diverging.
	Library *profile.Library
	// Logf, when set, receives per-unit logging.
	Logf func(format string, args ...any)
	// HandshakeTimeout bounds how long ServeConn waits for the
	// coordinator's Hello before giving up the connection (default 10s;
	// < 0 disables). Without it a port scanner — or any peer that
	// connects and sends nothing — would pin the worker forever.
	HandshakeTimeout time.Duration
	// CrashAfterUnits, when > 0, abruptly closes the connection after that
	// many results have been sent — the fault-injection hook the
	// differential harness uses to prove reassignment preserves
	// byte-identical sweeps. Zero disables.
	CrashAfterUnits int
	// UnitDelay, when > 0, stalls every unit execution by that long before
	// it runs — the straggler-injection hook the differential harness uses
	// to prove speculative re-dispatch preserves byte-identical sweeps.
	// Cache hits are not delayed (there is nothing to straggle on). Zero
	// disables.
	UnitDelay time.Duration
}

func (cfg WorkerConfig) withDefaults() WorkerConfig {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.Library == nil {
		cfg.Library = profile.DefaultLibrary()
	}
	return cfg
}

// ErrInjectedCrash is returned by ServeConn when the CrashAfterUnits fault
// hook fired.
var ErrInjectedCrash = errors.New("dist: injected worker crash")

// ServeConn serves one coordinator over conn: handshake, then a pull/run/
// push loop until the coordinator closes the connection (the shutdown
// signal, reported as nil). The sweep engine executing units is built from
// the coordinator's Hello — base seed and trace duration — so every seed
// and trace derives exactly as it would have locally on the coordinator.
func ServeConn(conn net.Conn, cfg WorkerConfig) error {
	defer conn.Close()
	cfg = cfg.withDefaults()
	f := newFramed(conn)

	if cfg.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Now().Add(cfg.HandshakeTimeout))
	}
	var h Hello
	if err := f.recv(&h, 0); err != nil {
		return fmt.Errorf("dist: worker handshake: %w", err)
	}
	libFP := cfg.Library.Fingerprint()
	if h.Proto != ProtoVersion {
		// Best-effort ack so the coordinator reports the mismatch too.
		_ = f.send(HelloAck{Proto: ProtoVersion, LibraryFP: libFP})
		return fmt.Errorf("dist: protocol version mismatch: worker %d, coordinator %d", ProtoVersion, h.Proto)
	}
	if h.LibraryFP != libFP {
		_ = f.send(HelloAck{Proto: ProtoVersion, LibraryFP: libFP})
		return fmt.Errorf("dist: model-profile library mismatch (worker %016x, coordinator %016x)", libFP, h.LibraryFP)
	}
	eng := sweep.New(sweep.Config{
		Workers:       cfg.Workers,
		BaseSeed:      h.BaseSeed,
		TraceDuration: h.TraceDuration,
		Library:       cfg.Library,
		CacheDir:      cfg.CacheDir,
		Logf:          cfg.Logf,
	})
	if err := eng.DiskError(); err != nil {
		// Refuse with the reason: the coordinator should see "cache dir
		// broke on the worker", not a dropped stream.
		_ = f.send(HelloAck{Proto: ProtoVersion, LibraryFP: libFP, Err: err.Error()})
		return err
	}
	if err := f.send(HelloAck{Proto: ProtoVersion, Capacity: eng.Config().Workers, LibraryFP: libFP}); err != nil {
		return fmt.Errorf("dist: worker handshake: %w", err)
	}
	if cfg.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	if cfg.Logf != nil {
		cfg.Logf("dist: serving coordinator (seed=%d dur=%v capacity=%d)",
			h.BaseSeed, h.TraceDuration, eng.Config().Workers)
	}

	var (
		sendMu  sync.Mutex
		sent    int
		crashed bool
		wg      sync.WaitGroup
	)
	// Enforce the advertised capacity locally too: a coordinator is
	// expected to keep at most Capacity units outstanding, but a buggy or
	// hostile one must not be able to oversubscribe this worker.
	sem := make(chan struct{}, cfg.Workers)
	sendResult := func(r UnitResult) {
		sendMu.Lock()
		defer sendMu.Unlock()
		if crashed {
			return
		}
		if err := f.send(r); err != nil {
			return // reader will see the broken stream too
		}
		sent++
		if cfg.CrashAfterUnits > 0 && sent >= cfg.CrashAfterUnits {
			crashed = true
			conn.Close() // abrupt: in-flight assignments die with the conn
		}
	}
	for {
		var u WorkUnit
		if err := f.recv(&u, 0); err != nil {
			wg.Wait()
			sendMu.Lock()
			wasCrash := crashed
			sendMu.Unlock()
			if wasCrash {
				return fmt.Errorf("%w (after %d units)", ErrInjectedCrash, sent)
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
				errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil // coordinator hung up: normal shutdown
			}
			return fmt.Errorf("dist: worker receive: %w", err)
		}
		wg.Add(1)
		go func(u WorkUnit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sendResult(runUnit(eng, u, cfg))
		}(u)
	}
}

// runUnit executes one assignment on the worker's engine. The key
// cross-check makes version skew between coordinator and worker — a changed
// key grammar would silently change the derived seed — a hard error instead
// of a wrong-but-plausible result. A unit already warm in the worker's own
// cache (a -cache-dir survives restarts and may be shared or pre-seeded) is
// served through the Lookup seam without executing anything and flagged as
// a hit, so a warm cluster provably recomputes nothing.
func runUnit(eng *sweep.Engine, u WorkUnit, cfg WorkerConfig) UnitResult {
	r := UnitResult{Epoch: u.Epoch, ID: u.ID, Key: u.Key}
	if want := "run|" + u.Spec.Key(); u.Key != want {
		r.Err = fmt.Sprintf("dist: unit %d key mismatch: coordinator sent %q, worker derives %q (version skew?)", u.ID, u.Key, want)
		return r
	}
	if v, ok := eng.Lookup(u.Key); ok {
		if res, isRun := v.(*simgpu.Result); isRun {
			if cfg.Logf != nil {
				cfg.Logf("dist: unit %d warm in worker cache: %s", u.ID, u.Key)
			}
			r.Result, r.CacheHit = res, true
			return r
		}
	}
	if cfg.UnitDelay > 0 {
		time.Sleep(cfg.UnitDelay)
	}
	if cfg.Logf != nil {
		cfg.Logf("dist: running unit %d: %s", u.ID, u.Key)
	}
	start := time.Now()
	res, err := eng.Run(u.Spec)
	if err != nil {
		r.Err = err.Error()
		return r
	}
	r.Result, r.Elapsed = res, time.Since(start)
	return r
}

// Serve accepts coordinator connections on l and serves each (concurrently)
// until the listener closes.
func Serve(l net.Listener, cfg WorkerConfig) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			if err := ServeConn(conn, cfg); err != nil && cfg.Logf != nil {
				cfg.Logf("dist: connection ended: %v", err)
			}
		}()
	}
}

// Join dials a coordinator at addr (bounded by the handshake timeout, so a
// firewalled host fails fast instead of hanging on the OS connect timeout)
// and serves it until it hangs up.
func Join(addr string, cfg WorkerConfig) error {
	timeout := cfg.withDefaults().HandshakeTimeout
	if timeout < 0 {
		timeout = 0 // net.DialTimeout: 0 means no timeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return fmt.Errorf("dist: join %s: %w", addr, err)
	}
	return ServeConn(conn, cfg)
}
