package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Framing layer: every message on a dist connection travels as one
// length-prefixed gob frame — a 4-byte big-endian payload length followed by
// the payload, encoded with a fresh gob encoder so each frame is
// self-delimiting and carries its own type wiring. The prefix buys two
// things a bare gob stream cannot offer:
//
//   - a max-frame guard: a corrupt or hostile header announcing a huge
//     payload is rejected from four bytes, before any allocation, instead
//     of letting gob's internal length run the process out of memory;
//   - deadline hygiene: a frame is read in two bounded steps (header, then
//     exactly-sized payload), so per-read deadlines compose cleanly with
//     lockstep exchanges that must detect a dead peer.
//
// The cost — re-sending gob type descriptors every frame — is noise next to
// the payloads (simulation results, barrier batches) and is what makes a
// frame decodable in isolation after a resync.

// MaxFrameLen bounds one frame's payload. Sweep results and barrier batches
// are megabytes at the extreme; 64 MiB is an order of magnitude of headroom,
// while still refusing the pathological 4 GiB header a scanner or corrupt
// peer could present.
const MaxFrameLen = 64 << 20

// frameHeaderLen is the length-prefix size.
const frameHeaderLen = 4

// framed wraps a net.Conn with the frame discipline. Sends are serialized
// by an internal lock (multiple goroutines may report results on one
// connection); receives must come from a single reader goroutine, as on a
// bare gob stream.
type framed struct {
	conn net.Conn
	wmu  sync.Mutex
}

func newFramed(conn net.Conn) *framed { return &framed{conn: conn} }

// send encodes v as one frame and writes it atomically with respect to
// other senders on this connection.
func (f *framed) send(v any) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHeaderLen))
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("dist: encoding frame: %w", err)
	}
	b := buf.Bytes()
	n := len(b) - frameHeaderLen
	if n > MaxFrameLen {
		return fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte limit", n, MaxFrameLen)
	}
	binary.BigEndian.PutUint32(b[:frameHeaderLen], uint32(n))
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if _, err := f.conn.Write(b); err != nil {
		return fmt.Errorf("dist: writing frame: %w", err)
	}
	return nil
}

// recv reads one frame into v. A positive timeout arms a read deadline
// covering the whole frame (header and payload) and clears it afterwards;
// zero blocks indefinitely (the idle sweep-worker posture, where "no work
// for hours" is normal and the connection closing is the wakeup).
func (f *framed) recv(v any, timeout time.Duration) error {
	if timeout > 0 {
		if err := f.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("dist: arming read deadline: %w", err)
		}
		defer f.conn.SetReadDeadline(time.Time{})
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(f.conn, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameLen {
		// Reject from the header alone: allocating first would let a
		// four-byte lie commit gigabytes before the payload read fails.
		return fmt.Errorf("dist: peer announced a %d-byte frame (limit %d): corrupt stream or hostile peer", n, MaxFrameLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(f.conn, payload); err != nil {
		return fmt.Errorf("dist: reading %d-byte frame payload: %w", n, err)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("dist: decoding frame: %w", err)
	}
	return nil
}

// Close closes the underlying connection (unblocking any pending recv).
func (f *framed) Close() error { return f.conn.Close() }
