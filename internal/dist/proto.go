// Package dist distributes sweep grids across processes: a coordinator
// partitions a []sweep.Spec grid into work units keyed by Spec.Key(), hands
// them to workers over a small gob protocol on any net.Conn (TCP in
// production, net.Pipe in the loopback test harness), reassigns units when a
// worker disconnects, and merges results back through the owning
// sweep.Engine's cache so warm entries are never recomputed anywhere in the
// cluster.
//
// Determinism is the package's fourth repo invariant: every run's seed
// derives from (base seed, spec key) alone, and base seed plus trace
// duration travel in the handshake, so a sweep distributed across N workers
// is byte-identical to Engine.Sweep on one machine — enforced by the
// loopback differential harness in this package's tests, including under
// injected worker crashes.
//
// Wire protocol (gob, one stream per direction, version-guarded):
//
//	coordinator → worker:  Hello, then WorkUnit*
//	worker → coordinator:  HelloAck, then UnitResult* (any order)
//
// Closing the connection is the shutdown signal; there is no goodbye frame.
// Every dispatch carries the coordinator's sweep epoch (the term/epoch guard
// of the raft/paxos lineage): results from a previous sweep, a reassigned
// unit, or a confused worker are identified and dropped instead of merged.
package dist

import (
	"time"

	"pard/internal/simgpu"
	"pard/internal/sweep"
)

// ProtoVersion guards the wire format. Bump it whenever message layouts,
// the spec key grammar, or simulation semantics change incompatibly; peers
// with a different version refuse the handshake instead of silently
// producing mismatched results.
//
// Version 2: the default execution engine flipped from the classic global
// event heap to the per-module lane engine, and the spec key grammar
// gained a mandatory |eng= marker (plus RunOpts.Engine on the wire). A v1
// peer would silently simulate the same keys on the old engine — the
// exact divergence the version gate exists to refuse.
//
// Version 3: every message now travels as a length-prefixed gob frame (see
// frame.go) instead of a bare gob stream, the spec key grammar gained a
// conditional |topo= marker for lane-group placement, and the protocol
// gained the distributed-simulation session (SimHello/SimAck plus the
// lockstep exchange envelopes). A v2 peer would misparse the length prefix
// as gob type wiring.
const ProtoVersion = 3

// Hello opens a coordinator→worker stream. It carries everything a worker
// needs to reproduce the coordinator's derivation of per-run seeds and
// traces — the sweep base seed and the trace duration — plus the
// fingerprint of the coordinator's model-profile library: profiles do not
// travel in unit keys, so a peer simulating different latency curves must
// be refused, not silently merged.
type Hello struct {
	Proto         int
	BaseSeed      int64
	TraceDuration time.Duration
	LibraryFP     uint64
}

// HelloAck completes the handshake. Capacity advertises how many units the
// worker runs concurrently; the coordinator keeps at most that many
// outstanding on the connection. LibraryFP echoes the worker's own library
// fingerprint so both sides can reject the mismatch with a clear error. A
// non-empty Err means the worker refuses to serve (e.g. its cache dir broke)
// and tells the coordinator why instead of just dropping the stream.
type HelloAck struct {
	Proto     int
	Capacity  int
	LibraryFP uint64
	Err       string
}

// WorkUnit assigns one grid point. Key is the coordinator's full cache key
// ("run|" + Spec.Key()); the worker re-derives it from Spec and refuses the
// unit on mismatch, turning silent key-grammar drift between versions into
// a loud error. Epoch identifies the sweep the assignment belongs to.
type WorkUnit struct {
	Epoch uint64
	ID    int
	Key   string
	Spec  sweep.Spec
}

// UnitResult reports one finished unit. Exactly one of Result and Err is
// set. Epoch and ID echo the assignment so the coordinator can drop stale
// or duplicate completions. CacheHit marks a result the worker served from
// its own warm cache (Lookup, no execution) — the coordinator surfaces the
// distinction through Stats so "zero recompute cluster-wide" is observable,
// and keeps warm results out of its straggler latency estimate. Elapsed is
// the worker-measured execution time (zero for cache hits); both fields are
// telemetry only and never participate in result bytes, so mixed warm/cold
// clusters stay byte-identical. (New fields decode as zero values from older
// peers: gob tolerates missing fields, so the flag is not a version break.)
type UnitResult struct {
	Epoch    uint64
	ID       int
	Key      string
	Err      string
	Result   *simgpu.Result
	CacheHit bool
	Elapsed  time.Duration
}
