package dist

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/sched"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

// The distributed-simulation differential harness is the cross-host half of
// determinism invariant #5: one simulation split across N lane-group
// PROCESSES — hub plus spokes over real loopback TCP, through the framed
// gob transport — must be gob byte-identical to the same config run in one
// process, on every replica. It also proves the failure contract: a lane
// group disconnecting mid-run aborts the whole session loudly on every
// group, never a hang and never a silently divergent result.

// simCase is one corpus entry; Groups in the matrix are skipped when they
// exceed the app's module count (a group per module is the finest split).
type simCase struct {
	name string
	cfg  simgpu.Config
}

func simTrace(kind trace.Kind, rate float64, seed int64) *trace.Trace {
	return trace.MustGenerate(trace.Config{Kind: kind, Duration: 6 * time.Second, PeakRate: rate, Seed: seed})
}

// simCorpus covers every app shape (three chains and both DAG variants —
// cross-group fan-out/merge traffic), bursty and smooth traces, two policy
// families, injected failures with the scaler on, probes, and a sharded
// (Shards > 1) replica configuration.
func simCorpus() []simCase {
	return []simCase{
		{"tm-wiki-pard", simgpu.Config{
			Spec: pipeline.TM(), PolicyName: "pard",
			Trace: simTrace(trace.Wiki, 150, 1), Seed: 42,
			SyncPeriod: 200 * time.Millisecond,
		}},
		{"lv-tweet-nexus-probes", simgpu.Config{
			Spec: pipeline.LV(), PolicyName: "nexus",
			Trace: simTrace(trace.Tweet, 120, 2), Seed: 7,
			SyncPeriod: 200 * time.Millisecond,
			Probes:     simgpu.ProbeConfig{QueueDelay: true, LoadFactor: true, Decomposition: true},
		}},
		{"gm-azure-sharded", simgpu.Config{
			Spec: pipeline.GM(), PolicyName: "pard",
			Trace: simTrace(trace.Azure, 140, 3), Seed: 13,
			SyncPeriod: 200 * time.Millisecond, Shards: 2,
		}},
		{"da-dag-pard", simgpu.Config{
			Spec: pipeline.DA(), PolicyName: "pard",
			Trace: simTrace(trace.Tweet, 100, 9), Seed: 5,
			SyncPeriod: 200 * time.Millisecond,
		}},
		{"da-dyn-clipper", simgpu.Config{
			Spec: pipeline.DADynamic(0.5), PolicyName: "clipper++",
			Trace: simTrace(trace.Steady, 110, 4), Seed: 21,
			SyncPeriod: 200 * time.Millisecond,
		}},
		{"lv-failures-scaling", simgpu.Config{
			Spec: pipeline.LV(), PolicyName: "pard",
			Trace: simTrace(trace.Steady, 150, 5), Seed: 11,
			SyncPeriod: 200 * time.Millisecond,
			Failures: []simgpu.Failure{
				{At: 2 * time.Second, Module: 1, Count: 1},
				{At: 4 * time.Second, Module: 0, Count: 2},
			},
		}},
	}
}

func encodeSimResult(t *testing.T, res *simgpu.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runOverLoopback executes cfg as `groups` processes-worth of lane groups
// over loopback TCP: the hub in this goroutine, each spoke in its own, as
// cross-host deployments run them minus the physical network. It returns
// the hub's result plus every spoke's.
func runOverLoopback(t *testing.T, cfg simgpu.Config, groups int, opts SimOptions) (*simgpu.Result, []*simgpu.Result, error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	spokes := groups - 1
	type spokeOut struct {
		res *simgpu.Result
		err error
	}
	outs := make(chan spokeOut, spokes)
	for i := 0; i < spokes; i++ {
		go func() {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				outs <- spokeOut{err: err}
				return
			}
			res, err := ServeSim(conn, opts)
			outs <- spokeOut{res: res, err: err}
		}()
	}
	conns := make([]net.Conn, spokes)
	for i := range conns {
		c, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	hubRes, hubErr := RunSimDistributed(cfg, conns, opts)
	var spokeRes []*simgpu.Result
	for i := 0; i < spokes; i++ {
		select {
		case o := <-outs:
			if o.err != nil && hubErr == nil {
				hubErr = fmt.Errorf("spoke failed while hub succeeded: %w", o.err)
			}
			spokeRes = append(spokeRes, o.res)
		case <-time.After(60 * time.Second):
			t.Fatal("spoke never exited: the abort contract is broken")
		}
	}
	return hubRes, spokeRes, hubErr
}

func TestSimDistributedDifferential(t *testing.T) {
	corpus := simCorpus()
	groupCounts := []int{2, 4}
	if testing.Short() {
		// The CI race-short pass keeps the demanding shapes: DAG traffic
		// and failures+scaling, at one split. The dedicated differential
		// step runs the full matrix.
		corpus = []simCase{corpus[3], corpus[5]}
		groupCounts = []int{2}
	}
	opts := SimOptions{ExchangeTimeout: 30 * time.Second}
	for _, c := range corpus {
		t.Run(c.name, func(t *testing.T) {
			baseline, err := simgpu.Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := encodeSimResult(t, baseline)
			for _, groups := range groupCounts {
				if groups > c.cfg.Spec.N() {
					continue
				}
				t.Run(fmt.Sprintf("groups=%d", groups), func(t *testing.T) {
					hubRes, spokeRes, err := runOverLoopback(t, c.cfg, groups, opts)
					if err != nil {
						t.Fatal(err)
					}
					if got := encodeSimResult(t, hubRes); !bytes.Equal(want, got) {
						t.Fatalf("hub result diverged from single-process run (%d vs %d encoded bytes)\n single: %+v\n dist:   %+v",
							len(got), len(want), baseline.Summary, hubRes.Summary)
					}
					for i, res := range spokeRes {
						if got := encodeSimResult(t, res); !bytes.Equal(want, got) {
							t.Fatalf("spoke %d result diverged from single-process run", i+1)
						}
					}
				})
			}
		})
	}
}

// dropConn injects a mid-run disconnect: after `limit` reads it abruptly
// closes the underlying connection, exactly as a crashed lane-group host
// would look to its peers.
type dropConn struct {
	net.Conn
	mu    sync.Mutex
	reads int
	limit int
}

var errInjectedSimDrop = errors.New("injected mid-run lane-group disconnect")

func (c *dropConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	c.reads++
	dead := c.reads > c.limit
	c.mu.Unlock()
	if dead {
		c.Conn.Close()
		return 0, errInjectedSimDrop
	}
	return c.Conn.Read(p)
}

// TestSimDistributedDisconnectAborts proves the failure half of invariant
// #5's cross-host contract: when one lane group vanishes mid-run, the hub
// and every surviving spoke abort with an error — bounded by the exchange
// deadline, never a hang, and never a partial result presented as complete.
func TestSimDistributedDisconnectAborts(t *testing.T) {
	cfg := simgpu.Config{
		Spec: pipeline.LV(), PolicyName: "pard",
		Trace: simTrace(trace.Tweet, 120, 6), Seed: 3,
		SyncPeriod: 200 * time.Millisecond,
	}
	opts := SimOptions{ExchangeTimeout: 20 * time.Second}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	spokeErrs := make(chan error, 2)
	// Spoke 1 is healthy; spoke 2 drops its connection a fixed number of
	// frames in — deterministically mid-run (a run is thousands of
	// exchanges).
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			spokeErrs <- err
			return
		}
		_, err = ServeSim(conn, opts)
		spokeErrs <- err
	}()
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			spokeErrs <- err
			return
		}
		_, err = ServeSim(&dropConn{Conn: conn, limit: 120}, opts)
		spokeErrs <- err
	}()
	conns := make([]net.Conn, 2)
	for i := range conns {
		c, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	res, err := RunSimDistributed(cfg, conns, opts)
	if err == nil {
		t.Fatalf("hub returned a result (%+v) despite a lane group disconnecting mid-run", res.Summary)
	}
	for i := 0; i < 2; i++ {
		select {
		case serr := <-spokeErrs:
			if serr == nil {
				t.Fatal("a spoke returned a result despite the aborted session")
			}
		case <-time.After(60 * time.Second):
			t.Fatal("a spoke hung instead of aborting after the disconnect")
		}
	}
}

// TestServeSimRefusals pins the spoke-side handshake gates: protocol
// version skew, profile-library skew, and an out-of-range group assignment
// are refused with an explanatory ack, mirroring the sweep handshake.
func TestServeSimRefusals(t *testing.T) {
	job := jobFromConfig(simgpu.Config{Spec: pipeline.LV(), Trace: simTrace(trace.Steady, 50, 1)})
	fp := SimOptions{}.withDefaults().Library.Fingerprint()
	cases := []struct {
		name  string
		hello SimHello
		want  string
	}{
		{"version-skew", SimHello{Proto: ProtoVersion + 1, LibraryFP: fp, Groups: 2, Group: 1, Job: job}, "version mismatch"},
		{"library-skew", SimHello{Proto: ProtoVersion, LibraryFP: fp ^ 1, Groups: 2, Group: 1, Job: job}, "library mismatch"},
		{"group-out-of-range", SimHello{Proto: ProtoVersion, LibraryFP: fp, Groups: 2, Group: 2, Job: job}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hubSide, spokeSide := net.Pipe()
			defer hubSide.Close()
			done := make(chan error, 1)
			go func() {
				_, err := ServeSim(spokeSide, SimOptions{})
				done <- err
			}()
			f := newFramed(hubSide)
			if err := f.send(tc.hello); err != nil {
				t.Fatal(err)
			}
			var ack SimAck
			if err := f.recv(&ack, 5*time.Second); err != nil {
				t.Fatal(err)
			}
			err := <-done
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("spoke error = %v, want mention of %q", err, tc.want)
			}
			if tc.name == "group-out-of-range" && !strings.Contains(ack.Err, "out of range") {
				t.Fatalf("refusal ack should carry the reason, got %+v", ack)
			}
		})
	}
}

// TestSimLockstepSkewAborts proves the hub refuses a diverged replica: a
// spoke whose first exchange arrives with a skewed sequence number kills
// the session with a lockstep error instead of merging its contribution.
func TestSimLockstepSkewAborts(t *testing.T) {
	cfg := simgpu.Config{
		Spec: pipeline.LV(), PolicyName: "pard",
		Trace: simTrace(trace.Steady, 60, 2), Seed: 1,
		SyncPeriod: 200 * time.Millisecond,
	}
	hubSide, spokeSide := net.Pipe()
	go func() {
		f := newFramed(spokeSide)
		var h SimHello
		if err := f.recv(&h, 0); err != nil {
			return
		}
		if err := f.send(SimAck{Proto: ProtoVersion, LibraryFP: h.LibraryFP}); err != nil {
			return
		}
		// A replica that lost count: wrong sequence number on round one.
		f.send(simEnvelope{Seq: 999, Kind: simKindStep, Step: &sched.StepMsg{Group: 1}})
	}()
	_, err := RunSimDistributed(cfg, []net.Conn{hubSide}, SimOptions{ExchangeTimeout: 20 * time.Second})
	if err == nil {
		t.Fatal("hub merged an out-of-lockstep contribution")
	}
	if !strings.Contains(err.Error(), "lockstep divergence") {
		t.Fatalf("want a lockstep divergence error, got: %v", err)
	}
}
