package dist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"pard/internal/pipeline"
	"pard/internal/profile"
	"pard/internal/sched"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

// Distributed-simulation session: the cross-host implementation of
// sched.Transport, carrying the lane-group lockstep exchanges over the same
// framed, version-guarded protocol the sweep coordinator uses.
//
// Topology is hub and spokes. The hub process runs lane group 0 locally and
// holds one framed connection per remote group; each spoke runs exactly one
// group. One exchange round is:
//
//	spoke g → hub:  simEnvelope{Seq, Kind, own contribution}
//	hub → spoke g:  simReply{Seq, Kind, merged contributions in group order}
//
// The hub gathers in connection-slot order — a spoke's group index is the
// slot it was handed in the handshake, never self-claimed — merges with its
// own contribution at index 0, and broadcasts the identical reply to every
// spoke. Sequence numbers advance in lockstep on both ends; any skew (a
// replayed frame, a diverged replica exchanging the wrong kind) poisons the
// session instead of merging wrong-but-plausible state. Every read is
// deadlined, so a dead peer surfaces as an abort on every group rather than
// a silent hang at the next rendezvous.

// SimJob ships one distributed simulation's configuration to a spoke. The
// fields are the RAW simgpu.Config knobs — withDefaults is deliberately not
// applied before encoding (its NetDelay/JitterPct sentinels are not
// idempotent), so every replica normalizes the identical raw input exactly
// once. The profile library does not travel: like sweep units, profiles are
// fingerprint-checked at the handshake instead.
type SimJob struct {
	Spec             *pipeline.Spec
	PolicyName       string
	Trace            *trace.Trace
	Seed             int64
	BatchFrac        float64
	SyncPeriod       time.Duration
	QueueWindow      time.Duration
	WaitReservoir    int
	NetDelay         time.Duration
	JitterPct        float64
	Scaling          sched.ScalingConfig
	FixedWorkers     []int
	Probes           sched.ProbeConfig
	Failures         []sched.Failure
	Lambda           float64
	EstimatorSamples int
	PriorityWindow   time.Duration
	Shards           int
}

func jobFromConfig(cfg simgpu.Config) SimJob {
	return SimJob{
		Spec:             cfg.Spec,
		PolicyName:       cfg.PolicyName,
		Trace:            cfg.Trace,
		Seed:             cfg.Seed,
		BatchFrac:        cfg.BatchFrac,
		SyncPeriod:       cfg.SyncPeriod,
		QueueWindow:      cfg.QueueWindow,
		WaitReservoir:    cfg.WaitReservoir,
		NetDelay:         cfg.NetDelay,
		JitterPct:        cfg.JitterPct,
		Scaling:          cfg.Scaling,
		FixedWorkers:     cfg.FixedWorkers,
		Probes:           cfg.Probes,
		Failures:         cfg.Failures,
		Lambda:           cfg.Lambda,
		EstimatorSamples: cfg.EstimatorSamples,
		PriorityWindow:   cfg.PriorityWindow,
		Shards:           cfg.Shards,
	}
}

func (j SimJob) config() simgpu.Config {
	return simgpu.Config{
		Spec:             j.Spec,
		PolicyName:       j.PolicyName,
		Trace:            j.Trace,
		Seed:             j.Seed,
		BatchFrac:        j.BatchFrac,
		SyncPeriod:       j.SyncPeriod,
		QueueWindow:      j.QueueWindow,
		WaitReservoir:    j.WaitReservoir,
		NetDelay:         j.NetDelay,
		JitterPct:        j.JitterPct,
		Scaling:          j.Scaling,
		FixedWorkers:     j.FixedWorkers,
		Probes:           j.Probes,
		Failures:         j.Failures,
		Lambda:           j.Lambda,
		EstimatorSamples: j.EstimatorSamples,
		PriorityWindow:   j.PriorityWindow,
		Shards:           j.Shards,
	}
}

// SimHello opens a hub→spoke simulation session: protocol version and
// profile-library fingerprint (both refused on mismatch, exactly like the
// sweep handshake), this spoke's assigned lane group, and the job itself.
type SimHello struct {
	Proto     int
	LibraryFP uint64
	Groups    int
	Group     int
	Job       SimJob
}

// SimAck completes the simulation handshake. A non-empty Err means the
// spoke refuses the session and says why.
type SimAck struct {
	Proto     int
	LibraryFP uint64
	Err       string
}

// Exchange kind tags on the wire; they mirror the sharded executor's
// rendezvous kinds so lockstep violations carry a readable name.
const (
	simKindStep uint8 = iota + 1
	simKindBarrier
	simKindBoard
	simKindScale
	simKindFinish
)

func simKindName(k uint8) string {
	switch k {
	case simKindStep:
		return "step"
	case simKindBarrier:
		return "barrier"
	case simKindBoard:
		return "board"
	case simKindScale:
		return "scale"
	case simKindFinish:
		return "finish"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// simEnvelope is one spoke's contribution to one exchange round. Exactly
// one payload pointer is set, matching Kind.
type simEnvelope struct {
	Seq     uint64
	Kind    uint8
	Step    *sched.StepMsg
	Barrier *sched.BarrierMsg
	Board   *sched.BoardMsg
	Scale   *sched.ScaleMsg
	Finish  *sched.FinishMsg
}

// simReply is the hub's broadcast: every group's contribution for the
// round, ordered by group index. Exactly one slice is non-nil, matching
// Kind.
type simReply struct {
	Seq      uint64
	Kind     uint8
	Steps    []sched.StepMsg
	Barriers []sched.BarrierMsg
	Boards   []sched.BoardMsg
	Scales   []sched.ScaleMsg
	Finishes []sched.FinishMsg
}

// SimOptions parameterizes both ends of a distributed simulation session.
type SimOptions struct {
	// Library provides the model profiles (default profile.DefaultLibrary());
	// its fingerprint must match the peer's.
	Library *profile.Library
	// HandshakeTimeout bounds the hello/ack round trip (default 10s).
	HandshakeTimeout time.Duration
	// ExchangeTimeout bounds each lockstep read: how long one group waits at
	// a rendezvous for its peers before declaring the session dead (default
	// 2m — generous, because a peer may legitimately spend a long stretch
	// simulating between exchanges).
	ExchangeTimeout time.Duration
	// Logf, when set, receives session logging.
	Logf func(format string, args ...any)
}

func (o SimOptions) withDefaults() SimOptions {
	if o.Library == nil {
		o.Library = profile.DefaultLibrary()
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	if o.ExchangeTimeout == 0 {
		o.ExchangeTimeout = 2 * time.Minute
	}
	return o
}

// simHub is lane group 0's Transport: it gathers peer envelopes over the
// spoke connections, merges, and broadcasts. Methods are called from the
// hub replica's executor only; the lock exists so Abort (called from error
// paths, possibly another goroutine) composes with an in-flight exchange.
type simHub struct {
	peers   []*framed // peers[i] serves lane group i+1
	timeout time.Duration
	seq     uint64
	err     error
	mu      sync.Mutex
}

func newSimHub(peers []*framed, timeout time.Duration) *simHub {
	return &simHub{peers: peers, timeout: timeout}
}

// fail poisons the session (first error wins) and closes every spoke
// connection so blocked peers unblock into an abort instead of timing out.
// Callers hold the lock.
func (h *simHub) fail(err error) error {
	if h.err == nil && err != nil {
		h.err = err
		for _, p := range h.peers {
			p.Close()
		}
	}
	return err
}

func (h *simHub) Abort(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fail(err)
}

// exchange runs one gather/broadcast round. The merged reply holds the
// hub's own contribution at index 0 and spoke i's at index i+1 — slot
// position is authoritative, and an envelope claiming a different group,
// the wrong kind, or a skewed sequence number kills the session.
func (h *simHub) exchange(kind uint8, own simEnvelope) (simReply, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return simReply{}, h.err
	}
	h.seq++
	reply := simReply{Seq: h.seq, Kind: kind}
	if err := appendContribution(&reply, 0, own); err != nil {
		return simReply{}, h.fail(err)
	}
	for i, p := range h.peers {
		g := i + 1
		var env simEnvelope
		if err := p.recv(&env, h.timeout); err != nil {
			return simReply{}, h.fail(fmt.Errorf("dist: sim %s exchange: lane group %d: %w", simKindName(kind), g, err))
		}
		if env.Seq != h.seq || env.Kind != kind {
			return simReply{}, h.fail(fmt.Errorf("dist: sim lockstep divergence: lane group %d sent %s seq %d while the session is at %s seq %d",
				g, simKindName(env.Kind), env.Seq, simKindName(kind), h.seq))
		}
		if err := appendContribution(&reply, g, env); err != nil {
			return simReply{}, h.fail(err)
		}
	}
	for i, p := range h.peers {
		if err := p.send(reply); err != nil {
			return simReply{}, h.fail(fmt.Errorf("dist: sim %s broadcast: lane group %d: %w", simKindName(kind), i+1, err))
		}
	}
	return reply, nil
}

// appendContribution merges group g's envelope into the reply, verifying
// the payload shape and that the message's self-reported group matches its
// connection slot.
func appendContribution(r *simReply, g int, env simEnvelope) error {
	claim := func(got int32) error {
		if int(got) != g {
			return fmt.Errorf("dist: sim %s exchange: connection slot %d claims to be lane group %d", simKindName(r.Kind), g, got)
		}
		return nil
	}
	switch r.Kind {
	case simKindStep:
		if env.Step == nil {
			break
		}
		if err := claim(env.Step.Group); err != nil {
			return err
		}
		r.Steps = append(r.Steps, *env.Step)
		return nil
	case simKindBarrier:
		if env.Barrier == nil {
			break
		}
		if err := claim(env.Barrier.Group); err != nil {
			return err
		}
		r.Barriers = append(r.Barriers, *env.Barrier)
		return nil
	case simKindBoard:
		if env.Board == nil {
			break
		}
		if err := claim(env.Board.Group); err != nil {
			return err
		}
		r.Boards = append(r.Boards, *env.Board)
		return nil
	case simKindScale:
		if env.Scale == nil {
			break
		}
		if err := claim(env.Scale.Group); err != nil {
			return err
		}
		r.Scales = append(r.Scales, *env.Scale)
		return nil
	case simKindFinish:
		if env.Finish == nil {
			break
		}
		if err := claim(env.Finish.Group); err != nil {
			return err
		}
		r.Finishes = append(r.Finishes, *env.Finish)
		return nil
	}
	return fmt.Errorf("dist: sim %s exchange: lane group %d envelope carries no %s payload", simKindName(r.Kind), g, simKindName(r.Kind))
}

func (h *simHub) Step(m sched.StepMsg) ([]sched.StepMsg, error) {
	r, err := h.exchange(simKindStep, simEnvelope{Step: &m})
	return r.Steps, err
}

func (h *simHub) Barrier(m sched.BarrierMsg) ([]sched.BarrierMsg, error) {
	r, err := h.exchange(simKindBarrier, simEnvelope{Barrier: &m})
	return r.Barriers, err
}

func (h *simHub) Board(m sched.BoardMsg) ([]sched.BoardMsg, error) {
	r, err := h.exchange(simKindBoard, simEnvelope{Board: &m})
	return r.Boards, err
}

func (h *simHub) Scale(m sched.ScaleMsg) ([]sched.ScaleMsg, error) {
	r, err := h.exchange(simKindScale, simEnvelope{Scale: &m})
	return r.Scales, err
}

func (h *simHub) Finish(m sched.FinishMsg) ([]sched.FinishMsg, error) {
	r, err := h.exchange(simKindFinish, simEnvelope{Finish: &m})
	return r.Finishes, err
}

// simSpoke is a remote lane group's Transport: send the contribution, read
// back the merged broadcast, verify lockstep.
type simSpoke struct {
	f       *framed
	group   int
	groups  int
	timeout time.Duration
	seq     uint64
	err     error
	mu      sync.Mutex
}

func newSimSpoke(f *framed, group, groups int, timeout time.Duration) *simSpoke {
	return &simSpoke{f: f, group: group, groups: groups, timeout: timeout}
}

func (s *simSpoke) fail(err error) error {
	if s.err == nil && err != nil {
		s.err = err
		s.f.Close()
	}
	return err
}

func (s *simSpoke) Abort(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fail(err)
}

func (s *simSpoke) exchange(kind uint8, env simEnvelope) (simReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return simReply{}, s.err
	}
	s.seq++
	env.Seq, env.Kind = s.seq, kind
	if err := s.f.send(env); err != nil {
		return simReply{}, s.fail(fmt.Errorf("dist: sim %s exchange: %w", simKindName(kind), err))
	}
	var r simReply
	if err := s.f.recv(&r, s.timeout); err != nil {
		return simReply{}, s.fail(fmt.Errorf("dist: sim %s exchange: %w", simKindName(kind), err))
	}
	if r.Seq != s.seq || r.Kind != kind {
		return simReply{}, s.fail(fmt.Errorf("dist: sim lockstep divergence: hub sent %s seq %d while this group is at %s seq %d",
			simKindName(r.Kind), r.Seq, simKindName(kind), s.seq))
	}
	return r, nil
}

// merged validates a broadcast's arity: every exchange must return exactly
// one contribution per lane group.
func merged[T any](s *simSpoke, kind uint8, got []T, err error) ([]T, error) {
	if err != nil {
		return nil, err
	}
	if len(got) != s.groups {
		s.mu.Lock()
		defer s.mu.Unlock()
		return nil, s.fail(fmt.Errorf("dist: sim %s exchange: hub merged %d contributions for %d lane groups", simKindName(kind), len(got), s.groups))
	}
	return got, nil
}

func (s *simSpoke) Step(m sched.StepMsg) ([]sched.StepMsg, error) {
	r, err := s.exchange(simKindStep, simEnvelope{Step: &m})
	return merged(s, simKindStep, r.Steps, err)
}

func (s *simSpoke) Barrier(m sched.BarrierMsg) ([]sched.BarrierMsg, error) {
	r, err := s.exchange(simKindBarrier, simEnvelope{Barrier: &m})
	return merged(s, simKindBarrier, r.Barriers, err)
}

func (s *simSpoke) Board(m sched.BoardMsg) ([]sched.BoardMsg, error) {
	r, err := s.exchange(simKindBoard, simEnvelope{Board: &m})
	return merged(s, simKindBoard, r.Boards, err)
}

func (s *simSpoke) Scale(m sched.ScaleMsg) ([]sched.ScaleMsg, error) {
	r, err := s.exchange(simKindScale, simEnvelope{Scale: &m})
	return merged(s, simKindScale, r.Scales, err)
}

func (s *simSpoke) Finish(m sched.FinishMsg) ([]sched.FinishMsg, error) {
	r, err := s.exchange(simKindFinish, simEnvelope{Finish: &m})
	return merged(s, simKindFinish, r.Finishes, err)
}

// RunSimDistributed runs cfg as a cross-host lockstep simulation: this
// process executes lane group 0 (the hub) and each conns[i] — a connection
// to a peer running ServeSim — executes lane group i+1. The result is
// bit-identical to the same config run in one process (determinism
// invariant #5); every replica independently assembles it, and the hub's
// copy is returned. Any failure — a dead peer, a refused handshake, a
// lockstep divergence — aborts the whole session loudly on every group.
//
// cfg is consumed RAW (each replica normalizes it exactly once); it must
// not set Groups (the in-process form) or Remote.
func RunSimDistributed(cfg simgpu.Config, conns []net.Conn, opts SimOptions) (*simgpu.Result, error) {
	opts = opts.withDefaults()
	if len(conns) == 0 {
		return nil, fmt.Errorf("dist: distributed simulation needs at least one remote lane group")
	}
	if cfg.Groups > 1 || cfg.Remote != nil {
		return nil, fmt.Errorf("dist: config already carries a lane-group topology; RunSimDistributed assigns its own")
	}
	if cfg.Engine == simgpu.EngineClassic {
		return nil, fmt.Errorf("dist: engine %q has no lanes to group; distributed simulation needs the lane engine", simgpu.EngineClassic)
	}
	groups := len(conns) + 1
	if cfg.Spec != nil && groups > cfg.Spec.N() {
		return nil, fmt.Errorf("dist: %d lane groups for %d modules; at most one group per module", groups, cfg.Spec.N())
	}
	if cfg.Lib == nil {
		cfg.Lib = opts.Library
	}
	fp := cfg.Lib.Fingerprint()
	job := jobFromConfig(cfg)

	peers := make([]*framed, len(conns))
	closeAll := func() {
		for _, p := range peers {
			if p != nil {
				p.Close()
			}
		}
	}
	for i, conn := range conns {
		g := i + 1
		f := newFramed(conn)
		conn.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
		if err := f.send(SimHello{Proto: ProtoVersion, LibraryFP: fp, Groups: groups, Group: g, Job: job}); err != nil {
			peers[i] = f
			closeAll()
			return nil, fmt.Errorf("dist: sim handshake: lane group %d: %w", g, err)
		}
		var ack SimAck
		if err := f.recv(&ack, 0); err != nil {
			peers[i] = f
			closeAll()
			return nil, fmt.Errorf("dist: sim handshake: lane group %d: %w", g, err)
		}
		peers[i] = f
		if ack.Err != "" {
			closeAll()
			return nil, fmt.Errorf("dist: lane group %d refused the session: %s", g, ack.Err)
		}
		if ack.Proto != ProtoVersion {
			closeAll()
			return nil, fmt.Errorf("dist: protocol version mismatch: hub %d, lane group %d runs %d", ProtoVersion, g, ack.Proto)
		}
		if ack.LibraryFP != fp {
			closeAll()
			return nil, fmt.Errorf("dist: model-profile library mismatch (hub %016x, lane group %d %016x)", fp, g, ack.LibraryFP)
		}
		conn.SetDeadline(time.Time{})
	}
	if opts.Logf != nil {
		opts.Logf("dist: sim session open: %d lane groups (hub + %d remote)", groups, len(conns))
	}

	hub := newSimHub(peers, opts.ExchangeTimeout)
	run := cfg
	run.Remote = &simgpu.RemoteTopology{Groups: groups, Group: 0, Transport: hub}
	res, err := simgpu.Run(run)
	if err != nil {
		hub.Abort(err)
		return nil, fmt.Errorf("dist: distributed simulation: %w", err)
	}
	closeAll() // session complete; the close is the goodbye, as in the sweep protocol
	return res, nil
}

// ServeSim serves one distributed simulation as the lane group assigned in
// the hub's SimHello, returning this replica's (bit-identical) result. The
// connection is closed when the function returns.
func ServeSim(conn net.Conn, opts SimOptions) (*simgpu.Result, error) {
	opts = opts.withDefaults()
	defer conn.Close()
	f := newFramed(conn)
	conn.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
	var h SimHello
	if err := f.recv(&h, 0); err != nil {
		return nil, fmt.Errorf("dist: sim handshake: %w", err)
	}
	fp := opts.Library.Fingerprint()
	if h.Proto != ProtoVersion {
		_ = f.send(SimAck{Proto: ProtoVersion, LibraryFP: fp})
		return nil, fmt.Errorf("dist: protocol version mismatch: this host %d, hub %d", ProtoVersion, h.Proto)
	}
	if h.LibraryFP != fp {
		_ = f.send(SimAck{Proto: ProtoVersion, LibraryFP: fp})
		return nil, fmt.Errorf("dist: model-profile library mismatch (this host %016x, hub %016x)", fp, h.LibraryFP)
	}
	if h.Groups < 2 || h.Group < 1 || h.Group >= h.Groups {
		reason := fmt.Sprintf("lane group %d/%d out of range", h.Group, h.Groups)
		_ = f.send(SimAck{Proto: ProtoVersion, LibraryFP: fp, Err: reason})
		return nil, fmt.Errorf("dist: sim handshake: %s", reason)
	}
	if err := f.send(SimAck{Proto: ProtoVersion, LibraryFP: fp}); err != nil {
		return nil, fmt.Errorf("dist: sim handshake: %w", err)
	}
	conn.SetDeadline(time.Time{})
	if opts.Logf != nil {
		opts.Logf("dist: serving sim lane group %d/%d", h.Group, h.Groups)
	}

	spoke := newSimSpoke(f, h.Group, h.Groups, opts.ExchangeTimeout)
	cfg := h.Job.config()
	cfg.Lib = opts.Library
	cfg.Remote = &simgpu.RemoteTopology{Groups: h.Groups, Group: h.Group, Transport: spoke}
	res, err := simgpu.Run(cfg)
	if err != nil {
		spoke.Abort(err)
		return nil, fmt.Errorf("dist: sim lane group %d: %w", h.Group, err)
	}
	return res, nil
}
