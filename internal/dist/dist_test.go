package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pard/internal/profile"
	"pard/internal/simgpu"
	"pard/internal/sweep"
	"pard/internal/trace"
)

// testEngine returns a small engine for protocol-level tests.
func testEngine() *sweep.Engine {
	return sweep.New(sweep.Config{Workers: 2, BaseSeed: 3, TraceDuration: 10 * time.Second})
}

// tinyGrid is a 2-unit grid cheap enough for protocol tests.
func tinyGrid() []sweep.Spec {
	return []sweep.Spec{
		{App: "tm", Kind: trace.Steady, Policy: "pard"},
		{App: "tm", Kind: trace.Steady, Policy: "naive"},
	}
}

func TestNoWorkersFailsFast(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
	defer c.Close()
	_, err := c.Sweep(context.Background(), tinyGrid())
	if err == nil || !strings.Contains(err.Error(), "no workers") {
		t.Fatalf("err = %v, want a no-workers failure", err)
	}
}

// TestLateJoinerCompletesSweep: in WaitForWorkers mode a sweep started
// against an empty cluster blocks, then completes once a worker registers —
// the listen-mode deployment shape.
func TestLateJoinerCompletesSweep(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine(), WaitForWorkers: true})
	defer c.Close()
	type outcome struct {
		n   int
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rs, err := c.Sweep(context.Background(), tinyGrid())
		done <- outcome{len(rs), err}
	}()
	time.Sleep(20 * time.Millisecond) // let the sweep block on the empty cluster
	startLoopbackWorker(t, c, WorkerConfig{Workers: 1})
	select {
	case o := <-done:
		if o.err != nil || o.n != 2 {
			t.Fatalf("sweep returned (%d results, %v)", o.n, o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep never completed after the worker joined")
	}
}

// TestSweepCtxCancelUnblocks: canceling the context releases a sweep stuck
// waiting for workers that never come.
func TestSweepCtxCancelUnblocks(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine(), WaitForWorkers: true})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Sweep(ctx, tinyGrid())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestPoisonedSpecAbortsDistributedSweep: a unit failing on a worker aborts
// the sweep with that unit's error, mirroring the engine's early-cancel.
func TestPoisonedSpecAbortsDistributedSweep(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
	defer c.Close()
	startLoopbackWorker(t, c, WorkerConfig{Workers: 1})
	specs := append(tinyGrid(), sweep.Spec{App: "bogus", Kind: trace.Steady, Policy: "pard"})
	_, err := c.Sweep(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), `unknown app "bogus"`) {
		t.Fatalf("err = %v, want the poisoned unit's failure", err)
	}
	// The cluster survives the failed sweep: a clean grid still resolves.
	if _, err := c.Sweep(context.Background(), tinyGrid()); err != nil {
		t.Fatalf("sweep after failure: %v", err)
	}
}

// TestKeyCrossCheckRejectsSkew speaks the protocol by hand and sends a unit
// whose key does not match its spec — the worker must refuse to run it
// (version-skew guard) rather than compute under the wrong key.
func TestKeyCrossCheckRejectsSkew(t *testing.T) {
	coordSide, workerSide := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeConn(workerSide, WorkerConfig{Workers: 1}) }()
	f := newFramed(coordSide)
	hello := Hello{Proto: ProtoVersion, BaseSeed: 3, TraceDuration: 10 * time.Second,
		LibraryFP: profile.DefaultLibrary().Fingerprint()}
	if err := f.send(hello); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	if err := f.recv(&ack, 0); err != nil {
		t.Fatal(err)
	}
	spec := sweep.Spec{App: "tm", Kind: trace.Steady, Policy: "pard"}
	if err := f.send(WorkUnit{Epoch: 1, ID: 0, Key: "run|tampered-key", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	var r UnitResult
	if err := f.recv(&r, 0); err != nil {
		t.Fatal(err)
	}
	if r.ID != 0 || r.Result != nil || !strings.Contains(r.Err, "key mismatch") {
		t.Fatalf("tampered unit produced %+v, want a key-mismatch refusal", r)
	}
	coordSide.Close()
	if err := <-done; err != nil {
		t.Fatalf("worker exited with %v after clean close", err)
	}
}

// TestVersionMismatchRefused: both sides refuse a peer speaking another
// protocol version.
func TestVersionMismatchRefused(t *testing.T) {
	t.Run("worker-side", func(t *testing.T) {
		coordSide, workerSide := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- ServeConn(workerSide, WorkerConfig{Workers: 1}) }()
		f := newFramed(coordSide)
		if err := f.send(Hello{Proto: ProtoVersion + 1}); err != nil {
			t.Fatal(err)
		}
		// The worker still acks (net.Pipe is synchronous, so the refusal
		// ack must be consumed) but then refuses to serve.
		var ack HelloAck
		if err := f.recv(&ack, 0); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err == nil || !strings.Contains(err.Error(), "version mismatch") {
			t.Fatalf("worker accepted a future protocol: %v", err)
		}
		coordSide.Close()
	})
	t.Run("coordinator-side", func(t *testing.T) {
		c := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
		defer c.Close()
		coordSide, fakeWorker := net.Pipe()
		go func() {
			f := newFramed(fakeWorker)
			var h Hello
			if f.recv(&h, 0) == nil {
				f.send(HelloAck{Proto: ProtoVersion + 1, Capacity: 1})
			}
		}()
		if err := c.AddConn(coordSide); err == nil || !strings.Contains(err.Error(), "version mismatch") {
			t.Fatalf("coordinator accepted a future protocol: %v", err)
		}
	})
}

// TestStaleEpochResultDropped: a result frame carrying a stale epoch (or an
// unassigned unit) must be ignored, not merged.
func TestStaleEpochResultDropped(t *testing.T) {
	eng := testEngine()
	c := NewCoordinator(CoordinatorConfig{Engine: eng})
	defer c.Close()
	coordSide, fakeWorker := net.Pipe()
	f := newFramed(fakeWorker)
	var handshake sync.WaitGroup
	handshake.Add(1)
	go func() {
		defer handshake.Done()
		var h Hello
		if f.recv(&h, 0) != nil {
			return
		}
		f.send(HelloAck{Proto: ProtoVersion, Capacity: 1, LibraryFP: h.LibraryFP})
	}()
	if err := c.AddConn(coordSide); err != nil {
		t.Fatal(err)
	}
	handshake.Wait()
	// Inject a garbage result before any sweep: no state may change.
	if err := f.send(UnitResult{Epoch: 99, ID: 0, Key: "run|bogus"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if st := c.Stats(); st.Completed != 0 {
		t.Fatalf("stale result was merged: %+v", st)
	}
	key := "run|" + tinyGrid()[0].Key()
	if _, ok := eng.Lookup(key); ok {
		t.Fatal("stale result reached the cache")
	}
}

// TestLibraryMismatchRefused: a worker simulating different latency curves
// would pass the key cross-check (profiles don't travel in keys) yet
// produce divergent results — both sides must refuse at the handshake.
func TestLibraryMismatchRefused(t *testing.T) {
	scaled, err := profile.DefaultLibrary().Scaled(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Fingerprint() == profile.DefaultLibrary().Fingerprint() {
		t.Fatal("scaled library fingerprints like the default")
	}
	c := NewCoordinator(CoordinatorConfig{Engine: sweep.New(sweep.Config{
		Workers: 1, BaseSeed: 3, TraceDuration: 10 * time.Second, Library: scaled,
	})})
	defer c.Close()
	coordSide, workerSide := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeConn(workerSide, WorkerConfig{Workers: 1}) }()
	if err := c.AddConn(coordSide); err == nil || !strings.Contains(err.Error(), "library mismatch") {
		t.Fatalf("coordinator accepted a worker with different profiles: %v", err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "library mismatch") {
		t.Fatalf("worker served a coordinator with different profiles: %v", err)
	}
	// Matching custom libraries on both sides are accepted.
	c2 := NewCoordinator(CoordinatorConfig{Engine: sweep.New(sweep.Config{
		Workers: 1, BaseSeed: 3, TraceDuration: 10 * time.Second, Library: scaled,
	})})
	defer c2.Close()
	cs2, ws2 := net.Pipe()
	go ServeConn(ws2, WorkerConfig{Workers: 1, Library: scaled})
	if err := c2.AddConn(cs2); err != nil {
		t.Fatalf("matching custom libraries refused: %v", err)
	}
}

// TestEchoedKeyMismatchFailsUnit: a worker echoing a different key than the
// assignment computed under a different seed; the coordinator must fail the
// unit instead of merging the result.
func TestEchoedKeyMismatchFailsUnit(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
	defer c.Close()
	coordSide, fakeWorker := net.Pipe()
	go func() {
		f := newFramed(fakeWorker)
		var h Hello
		if f.recv(&h, 0) != nil {
			return
		}
		if f.send(HelloAck{Proto: ProtoVersion, Capacity: 1, LibraryFP: h.LibraryFP}) != nil {
			return
		}
		var u WorkUnit
		if f.recv(&u, 0) != nil {
			return
		}
		f.send(UnitResult{Epoch: u.Epoch, ID: u.ID, Key: "run|tampered", Result: &simgpu.Result{}})
	}()
	if err := c.AddConn(coordSide); err != nil {
		t.Fatal(err)
	}
	_, err := c.Sweep(context.Background(), tinyGrid()[:1])
	if err == nil || !strings.Contains(err.Error(), "echoed key") {
		t.Fatalf("err = %v, want an echoed-key integrity failure", err)
	}
	if _, ok := c.cfg.Engine.Lookup("run|" + tinyGrid()[0].Key()); ok {
		t.Fatal("tampered result reached the cache")
	}
}

// TestAddConnAfterClose: a closed coordinator refuses new workers.
func TestAddConnAfterClose(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
	c.Close()
	coordSide, _ := net.Pipe()
	if err := c.AddConn(coordSide); err == nil {
		t.Fatal("closed coordinator accepted a worker")
	}
}

// TestDistributedSweepOverTCP runs coordinator and worker over real
// sockets — the exact production transport — for one small grid.
func TestDistributedSweepOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, WorkerConfig{Workers: 2})

	eng := testEngine()
	c := NewCoordinator(CoordinatorConfig{Engine: eng})
	defer c.Close()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConn(conn); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Sweep(context.Background(), tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	local, err := sweep.New(sweep.Config{Workers: 2, BaseSeed: 3, TraceDuration: 10 * time.Second}).Sweep(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		a := fmt.Sprintf("%+v", rs[i].Summary)
		b := fmt.Sprintf("%+v", local[i].Summary)
		if a != b {
			t.Fatalf("TCP sweep diverged at %d:\n dist:  %s\n local: %s", i, a, b)
		}
	}
}

// TestEngineSweepRoutesThroughCoordinator: the sweep.Distributor seam —
// Engine.Sweep with a coordinator installed distributes, and its results
// land in the engine's own cache.
func TestEngineSweepRoutesThroughCoordinator(t *testing.T) {
	eng := testEngine()
	c := NewCoordinator(CoordinatorConfig{Engine: eng})
	defer c.Close()
	startLoopbackWorker(t, c, WorkerConfig{Workers: 1})
	eng.SetDistributor(c)
	rs, err := eng.Sweep(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0] == nil || rs[1] == nil {
		t.Fatalf("distributed engine sweep returned %v", rs)
	}
	if c.Stats().Dispatched == 0 {
		t.Fatal("Engine.Sweep did not route through the coordinator")
	}
	// The remote results are merged into the engine cache: a direct Run of
	// the same spec is a pure cache hit (pointer-equal result).
	r, err := eng.Run(tinyGrid()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r != rs[0] {
		t.Fatal("remote result not merged into the engine cache")
	}
}

// TestStatsAccounting pins the coordinator's counters across the three ways
// a unit resolves: remote execution, a coordinator-cache hit (no dispatch),
// and a warm worker-cache hit (dispatched, not executed).
func TestStatsAccounting(t *testing.T) {
	dir := t.TempDir()
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
	defer c.Close()
	startLoopbackWorker(t, c, WorkerConfig{Workers: 1, CacheDir: dir})
	grid := tinyGrid()
	if _, err := c.Sweep(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Dispatched != 2 || st.Completed != 2 || st.LocalHits != 0 ||
		st.RemoteHits != 0 || st.Speculated != 0 || st.Requeued != 0 {
		t.Fatalf("cold sweep stats: %+v", st)
	}
	if ws := st.PerWorker[1]; ws.Completed != 2 || ws.CacheHits != 0 || ws.Speculative != 0 {
		t.Fatalf("cold sweep per-worker stats: %+v", st.PerWorker)
	}

	// Same grid again: the coordinator's own cache short-circuits dispatch.
	if _, err := c.Sweep(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	if st = c.Stats(); st.Dispatched != 2 || st.LocalHits != 2 {
		t.Fatalf("warm-coordinator sweep stats: %+v", st)
	}

	// A fresh coordinator with a cold engine but the same worker cache dir:
	// every unit is dispatched again, and every one reports a worker hit.
	c2 := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
	defer c2.Close()
	startLoopbackWorker(t, c2, WorkerConfig{Workers: 1, CacheDir: dir})
	if _, err := c2.Sweep(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	st2 := c2.Stats()
	if st2.Dispatched != 2 || st2.Completed != 2 || st2.RemoteHits != 2 || st2.LocalHits != 0 {
		t.Fatalf("warm-worker sweep stats: %+v", st2)
	}
	if ws := st2.PerWorker[1]; ws.Completed != 2 || ws.CacheHits != 2 {
		t.Fatalf("warm-worker per-worker stats: %+v", st2.PerWorker)
	}
}

// TestStatsAccountingUnderSpeculation: a wedged worker forces a speculative
// duplicate of its unit; the winning copy is counted once, the loser is
// dropped — Completed never exceeds the number of units.
func TestStatsAccountingUnderSpeculation(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine(), SpeculateAfter: 50 * time.Millisecond})
	defer c.Close()
	startLoopbackWorker(t, c, WorkerConfig{Workers: 1, UnitDelay: 20 * time.Second})
	startLoopbackWorker(t, c, WorkerConfig{Workers: 1})
	rs, err := c.Sweep(context.Background(), tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0] == nil || rs[1] == nil {
		t.Fatalf("sweep returned %v", rs)
	}
	st := c.Stats()
	if st.Speculated == 0 {
		t.Fatalf("wedged worker never triggered speculation: %+v", st)
	}
	if st.Completed != 2 {
		t.Fatalf("Completed = %d, want 2 (duplicates must not be counted): %+v", st.Completed, st)
	}
	if st.Dispatched < 3 || st.Dispatched > 2+st.Speculated {
		t.Fatalf("Dispatched = %d, want 2 originals + 1..%d speculative: %+v", st.Dispatched, st.Speculated, st)
	}
	if st.Requeued != 0 || st.WorkersLost != 0 {
		t.Fatalf("speculation accounted as loss: %+v", st)
	}
	// Per-worker Speculative counts copies actually DISPATCHED — exactly
	// the dispatches beyond the two originals (queued copies whose original
	// resolved first never dispatch and are only in Speculated).
	spec := 0
	for _, ws := range st.PerWorker {
		spec += ws.Speculative
	}
	if spec != st.Dispatched-2 {
		t.Fatalf("per-worker speculative dispatches (%d) disagree with Dispatched-2 (%d): %+v", spec, st.Dispatched-2, st)
	}
}

// TestLateDuplicateAfterFailureDropped: under speculation a unit can resolve
// as a failure while its other copy is still running. The copy's later
// success must be dropped — not merged into the cache, not double-counted,
// and OnUnitDone's Done must never exceed Total.
func TestLateDuplicateAfterFailureDropped(t *testing.T) {
	type call struct{ done, total int }
	var mu sync.Mutex
	var calls []call
	c := NewCoordinator(CoordinatorConfig{
		Engine:         testEngine(),
		SpeculateAfter: 30 * time.Millisecond,
		OnUnitDone: func(u UnitDone) {
			mu.Lock()
			calls = append(calls, call{u.Done, u.Total})
			mu.Unlock()
		},
	})
	defer c.Close()

	// A hand-driven worker that performs the handshake and hands back its
	// encoder plus the single unit it gets assigned.
	fakeWorker := func() (*framed, chan WorkUnit) {
		coordSide, workerSide := net.Pipe()
		f := newFramed(workerSide)
		units := make(chan WorkUnit, 1)
		go func() {
			var h Hello
			if f.recv(&h, 0) != nil {
				return
			}
			if f.send(HelloAck{Proto: ProtoVersion, Capacity: 1, LibraryFP: h.LibraryFP}) != nil {
				return
			}
			var u WorkUnit
			if f.recv(&u, 0) != nil {
				return
			}
			units <- u
		}()
		if err := c.AddConn(coordSide); err != nil {
			t.Fatal(err)
		}
		return f, units
	}

	grid := tinyGrid()[:1]
	straggler, stragglerUnits := fakeWorker()
	done := make(chan error, 1)
	go func() {
		_, err := c.Sweep(context.Background(), grid)
		done <- err
	}()
	// The straggler takes the only unit and sits on it; the second worker
	// joins afterwards, receives the speculative copy, and fails it.
	uA := <-stragglerUnits
	failer, failerUnits := fakeWorker()
	uB := <-failerUnits
	if uB.ID != uA.ID {
		t.Fatalf("speculative copy is unit %d, want %d", uB.ID, uA.ID)
	}
	if err := failer.send(UnitResult{Epoch: uB.Epoch, ID: uB.ID, Key: uB.Key, Err: "boom"}); err != nil {
		t.Fatal(err)
	}
	// Once the failure is merged, the straggler wakes up with a SUCCESS for
	// the same unit — which must be dropped, not merged.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Completed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("failure never merged")
		}
		time.Sleep(time.Millisecond)
	}
	if err := straggler.send(UnitResult{Epoch: uA.Epoch, ID: uA.ID, Key: uA.Key, Result: &simgpu.Result{}}); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("sweep err = %v, want the copy's failure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep never returned")
	}
	if st := c.Stats(); st.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 (late duplicate must not count): %+v", st.Completed, st)
	}
	if _, ok := c.cfg.Engine.Lookup("run|" + grid[0].Key()); ok {
		t.Fatal("late duplicate success reached the cache")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || calls[0] != (call{1, 1}) {
		t.Fatalf("OnUnitDone calls = %+v, want exactly [{1 1}]", calls)
	}
}
