package dist

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pard/internal/profile"
	"pard/internal/simgpu"
	"pard/internal/sweep"
	"pard/internal/trace"
)

// testEngine returns a small engine for protocol-level tests.
func testEngine() *sweep.Engine {
	return sweep.New(sweep.Config{Workers: 2, BaseSeed: 3, TraceDuration: 10 * time.Second})
}

// tinyGrid is a 2-unit grid cheap enough for protocol tests.
func tinyGrid() []sweep.Spec {
	return []sweep.Spec{
		{App: "tm", Kind: trace.Steady, Policy: "pard"},
		{App: "tm", Kind: trace.Steady, Policy: "naive"},
	}
}

func TestNoWorkersFailsFast(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
	defer c.Close()
	_, err := c.Sweep(context.Background(), tinyGrid())
	if err == nil || !strings.Contains(err.Error(), "no workers") {
		t.Fatalf("err = %v, want a no-workers failure", err)
	}
}

// TestLateJoinerCompletesSweep: in WaitForWorkers mode a sweep started
// against an empty cluster blocks, then completes once a worker registers —
// the listen-mode deployment shape.
func TestLateJoinerCompletesSweep(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine(), WaitForWorkers: true})
	defer c.Close()
	type outcome struct {
		n   int
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rs, err := c.Sweep(context.Background(), tinyGrid())
		done <- outcome{len(rs), err}
	}()
	time.Sleep(20 * time.Millisecond) // let the sweep block on the empty cluster
	startLoopbackWorker(t, c, WorkerConfig{Workers: 1})
	select {
	case o := <-done:
		if o.err != nil || o.n != 2 {
			t.Fatalf("sweep returned (%d results, %v)", o.n, o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep never completed after the worker joined")
	}
}

// TestSweepCtxCancelUnblocks: canceling the context releases a sweep stuck
// waiting for workers that never come.
func TestSweepCtxCancelUnblocks(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine(), WaitForWorkers: true})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Sweep(ctx, tinyGrid())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestPoisonedSpecAbortsDistributedSweep: a unit failing on a worker aborts
// the sweep with that unit's error, mirroring the engine's early-cancel.
func TestPoisonedSpecAbortsDistributedSweep(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
	defer c.Close()
	startLoopbackWorker(t, c, WorkerConfig{Workers: 1})
	specs := append(tinyGrid(), sweep.Spec{App: "bogus", Kind: trace.Steady, Policy: "pard"})
	_, err := c.Sweep(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), `unknown app "bogus"`) {
		t.Fatalf("err = %v, want the poisoned unit's failure", err)
	}
	// The cluster survives the failed sweep: a clean grid still resolves.
	if _, err := c.Sweep(context.Background(), tinyGrid()); err != nil {
		t.Fatalf("sweep after failure: %v", err)
	}
}

// TestKeyCrossCheckRejectsSkew speaks the protocol by hand and sends a unit
// whose key does not match its spec — the worker must refuse to run it
// (version-skew guard) rather than compute under the wrong key.
func TestKeyCrossCheckRejectsSkew(t *testing.T) {
	coordSide, workerSide := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeConn(workerSide, WorkerConfig{Workers: 1}) }()
	enc := gob.NewEncoder(coordSide)
	dec := gob.NewDecoder(coordSide)
	hello := Hello{Proto: ProtoVersion, BaseSeed: 3, TraceDuration: 10 * time.Second,
		LibraryFP: profile.DefaultLibrary().Fingerprint()}
	if err := enc.Encode(hello); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	spec := sweep.Spec{App: "tm", Kind: trace.Steady, Policy: "pard"}
	if err := enc.Encode(WorkUnit{Epoch: 1, ID: 0, Key: "run|tampered-key", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	var r UnitResult
	if err := dec.Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.ID != 0 || r.Result != nil || !strings.Contains(r.Err, "key mismatch") {
		t.Fatalf("tampered unit produced %+v, want a key-mismatch refusal", r)
	}
	coordSide.Close()
	if err := <-done; err != nil {
		t.Fatalf("worker exited with %v after clean close", err)
	}
}

// TestVersionMismatchRefused: both sides refuse a peer speaking another
// protocol version.
func TestVersionMismatchRefused(t *testing.T) {
	t.Run("worker-side", func(t *testing.T) {
		coordSide, workerSide := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- ServeConn(workerSide, WorkerConfig{Workers: 1}) }()
		enc := gob.NewEncoder(coordSide)
		dec := gob.NewDecoder(coordSide)
		if err := enc.Encode(Hello{Proto: ProtoVersion + 1}); err != nil {
			t.Fatal(err)
		}
		// The worker still acks (net.Pipe is synchronous, so the refusal
		// ack must be consumed) but then refuses to serve.
		var ack HelloAck
		if err := dec.Decode(&ack); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err == nil || !strings.Contains(err.Error(), "version mismatch") {
			t.Fatalf("worker accepted a future protocol: %v", err)
		}
		coordSide.Close()
	})
	t.Run("coordinator-side", func(t *testing.T) {
		c := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
		defer c.Close()
		coordSide, fakeWorker := net.Pipe()
		go func() {
			dec := gob.NewDecoder(fakeWorker)
			enc := gob.NewEncoder(fakeWorker)
			var h Hello
			if dec.Decode(&h) == nil {
				enc.Encode(HelloAck{Proto: ProtoVersion + 1, Capacity: 1})
			}
		}()
		if err := c.AddConn(coordSide); err == nil || !strings.Contains(err.Error(), "version mismatch") {
			t.Fatalf("coordinator accepted a future protocol: %v", err)
		}
	})
}

// TestStaleEpochResultDropped: a result frame carrying a stale epoch (or an
// unassigned unit) must be ignored, not merged.
func TestStaleEpochResultDropped(t *testing.T) {
	eng := testEngine()
	c := NewCoordinator(CoordinatorConfig{Engine: eng})
	defer c.Close()
	coordSide, fakeWorker := net.Pipe()
	enc := gob.NewEncoder(fakeWorker)
	dec := gob.NewDecoder(fakeWorker)
	var handshake sync.WaitGroup
	handshake.Add(1)
	go func() {
		defer handshake.Done()
		var h Hello
		if dec.Decode(&h) != nil {
			return
		}
		enc.Encode(HelloAck{Proto: ProtoVersion, Capacity: 1, LibraryFP: h.LibraryFP})
	}()
	if err := c.AddConn(coordSide); err != nil {
		t.Fatal(err)
	}
	handshake.Wait()
	// Inject a garbage result before any sweep: no state may change.
	if err := enc.Encode(UnitResult{Epoch: 99, ID: 0, Key: "run|bogus"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if st := c.Stats(); st.Completed != 0 {
		t.Fatalf("stale result was merged: %+v", st)
	}
	key := "run|" + tinyGrid()[0].Key()
	if _, ok := eng.Lookup(key); ok {
		t.Fatal("stale result reached the cache")
	}
}

// TestLibraryMismatchRefused: a worker simulating different latency curves
// would pass the key cross-check (profiles don't travel in keys) yet
// produce divergent results — both sides must refuse at the handshake.
func TestLibraryMismatchRefused(t *testing.T) {
	scaled, err := profile.DefaultLibrary().Scaled(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Fingerprint() == profile.DefaultLibrary().Fingerprint() {
		t.Fatal("scaled library fingerprints like the default")
	}
	c := NewCoordinator(CoordinatorConfig{Engine: sweep.New(sweep.Config{
		Workers: 1, BaseSeed: 3, TraceDuration: 10 * time.Second, Library: scaled,
	})})
	defer c.Close()
	coordSide, workerSide := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeConn(workerSide, WorkerConfig{Workers: 1}) }()
	if err := c.AddConn(coordSide); err == nil || !strings.Contains(err.Error(), "library mismatch") {
		t.Fatalf("coordinator accepted a worker with different profiles: %v", err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "library mismatch") {
		t.Fatalf("worker served a coordinator with different profiles: %v", err)
	}
	// Matching custom libraries on both sides are accepted.
	c2 := NewCoordinator(CoordinatorConfig{Engine: sweep.New(sweep.Config{
		Workers: 1, BaseSeed: 3, TraceDuration: 10 * time.Second, Library: scaled,
	})})
	defer c2.Close()
	cs2, ws2 := net.Pipe()
	go ServeConn(ws2, WorkerConfig{Workers: 1, Library: scaled})
	if err := c2.AddConn(cs2); err != nil {
		t.Fatalf("matching custom libraries refused: %v", err)
	}
}

// TestEchoedKeyMismatchFailsUnit: a worker echoing a different key than the
// assignment computed under a different seed; the coordinator must fail the
// unit instead of merging the result.
func TestEchoedKeyMismatchFailsUnit(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
	defer c.Close()
	coordSide, fakeWorker := net.Pipe()
	go func() {
		dec := gob.NewDecoder(fakeWorker)
		enc := gob.NewEncoder(fakeWorker)
		var h Hello
		if dec.Decode(&h) != nil {
			return
		}
		if enc.Encode(HelloAck{Proto: ProtoVersion, Capacity: 1, LibraryFP: h.LibraryFP}) != nil {
			return
		}
		var u WorkUnit
		if dec.Decode(&u) != nil {
			return
		}
		enc.Encode(UnitResult{Epoch: u.Epoch, ID: u.ID, Key: "run|tampered", Result: &simgpu.Result{}})
	}()
	if err := c.AddConn(coordSide); err != nil {
		t.Fatal(err)
	}
	_, err := c.Sweep(context.Background(), tinyGrid()[:1])
	if err == nil || !strings.Contains(err.Error(), "echoed key") {
		t.Fatalf("err = %v, want an echoed-key integrity failure", err)
	}
	if _, ok := c.cfg.Engine.Lookup("run|" + tinyGrid()[0].Key()); ok {
		t.Fatal("tampered result reached the cache")
	}
}

// TestAddConnAfterClose: a closed coordinator refuses new workers.
func TestAddConnAfterClose(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Engine: testEngine()})
	c.Close()
	coordSide, _ := net.Pipe()
	if err := c.AddConn(coordSide); err == nil {
		t.Fatal("closed coordinator accepted a worker")
	}
}

// TestDistributedSweepOverTCP runs coordinator and worker over real
// sockets — the exact production transport — for one small grid.
func TestDistributedSweepOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, WorkerConfig{Workers: 2})

	eng := testEngine()
	c := NewCoordinator(CoordinatorConfig{Engine: eng})
	defer c.Close()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConn(conn); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Sweep(context.Background(), tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	local, err := sweep.New(sweep.Config{Workers: 2, BaseSeed: 3, TraceDuration: 10 * time.Second}).Sweep(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		a := fmt.Sprintf("%+v", rs[i].Summary)
		b := fmt.Sprintf("%+v", local[i].Summary)
		if a != b {
			t.Fatalf("TCP sweep diverged at %d:\n dist:  %s\n local: %s", i, a, b)
		}
	}
}

// TestEngineSweepRoutesThroughCoordinator: the sweep.Distributor seam —
// Engine.Sweep with a coordinator installed distributes, and its results
// land in the engine's own cache.
func TestEngineSweepRoutesThroughCoordinator(t *testing.T) {
	eng := testEngine()
	c := NewCoordinator(CoordinatorConfig{Engine: eng})
	defer c.Close()
	startLoopbackWorker(t, c, WorkerConfig{Workers: 1})
	eng.SetDistributor(c)
	rs, err := eng.Sweep(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0] == nil || rs[1] == nil {
		t.Fatalf("distributed engine sweep returned %v", rs)
	}
	if c.Stats().Dispatched == 0 {
		t.Fatal("Engine.Sweep did not route through the coordinator")
	}
	// The remote results are merged into the engine cache: a direct Run of
	// the same spec is a pure cache hit (pointer-equal result).
	r, err := eng.Run(tinyGrid()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r != rs[0] {
		t.Fatal("remote result not merged into the engine cache")
	}
}
