package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"pard/internal/simgpu"
	"pard/internal/sweep"
	"pard/internal/trace"
)

// The distributed differential harness enforces the repo's fourth
// determinism invariant (after parallel≡sequential sweeps, virtual≡wall
// clock parity, and shard-count invariance): a sweep run through the
// coordinator/worker protocol is GOB BYTE-IDENTICAL to sweep.Engine.Sweep
// on the same grid — for 1, 2 and 4 loopback workers, and with a worker
// crash injected mid-sweep that forces unit reassignment. Workers run over
// net.Pipe in-process, exactly the code path TCP deployments run minus the
// socket.

// diffGrid is the corpus: every app shape in the comparison set, bursty and
// smooth traces, two policy families, plus option transport (sharded
// engine, steady-rate override) and a duplicate spec (dedupe must hand both
// inputs one unit).
func diffGrid() []sweep.Spec {
	var specs []sweep.Spec
	for _, app := range []string{"tm", "lv"} {
		for _, kind := range []trace.Kind{trace.Wiki, trace.Tweet} {
			for _, pol := range []string{"pard", "nexus"} {
				specs = append(specs, sweep.Spec{App: app, Kind: kind, Policy: pol})
			}
		}
	}
	specs = append(specs,
		sweep.Spec{App: "da", Kind: trace.Tweet, Policy: "pard", Opts: sweep.RunOpts{Shards: 2}},
		sweep.Spec{App: "gm", Kind: trace.Steady, Policy: "pard", Opts: sweep.RunOpts{SteadyRate: 60}},
		specs[0],
	)
	return specs
}

// diffEngineConfig is the shared engine parameterization; every engine in
// the harness (local baseline, coordinator, each worker via handshake) must
// agree on BaseSeed and TraceDuration for byte-identity to hold.
func diffEngineConfig() sweep.Config {
	return sweep.Config{Workers: 4, BaseSeed: 7, TraceDuration: 20 * time.Second}
}

// encodeResults flattens results to comparison bytes.
func encodeResults(t *testing.T, rs []*simgpu.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startLoopbackWorker wires a worker to c over net.Pipe and returns a
// channel carrying ServeConn's exit error.
func startLoopbackWorker(t *testing.T, c *Coordinator, cfg WorkerConfig) <-chan error {
	t.Helper()
	coordSide, workerSide := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeConn(workerSide, cfg) }()
	if err := c.AddConn(coordSide); err != nil {
		t.Fatal(err)
	}
	return done
}

// diffFailure renders a per-index summary diff for debuggability.
func diffFailure(t *testing.T, name string, local, distributed []*simgpu.Result) {
	t.Helper()
	for i := range local {
		l := fmt.Sprintf("%+v", local[i].Summary)
		d := fmt.Sprintf("%+v", distributed[i].Summary)
		if l != d {
			t.Errorf("%s: spec %d summaries differ\n local: %s\n dist:  %s", name, i, l, d)
		}
	}
	t.Fatalf("%s: distributed sweep not byte-identical to local run", name)
}

func TestDistributedDifferential(t *testing.T) {
	grid := diffGrid()
	local := sweep.New(diffEngineConfig())
	baseline, err := local.Sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeResults(t, baseline)

	// -short trims to one worker count plus the crash case (the CI race-
	// short passes run this test through ./...); the dedicated CI
	// differential step runs the full 1/2/4 matrix without -short.
	workerCounts := []int{1, 2, 4}
	if testing.Short() {
		workerCounts = []int{2}
	}
	for _, workers := range workerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := NewCoordinator(CoordinatorConfig{Engine: sweep.New(diffEngineConfig())})
			defer c.Close()
			for i := 0; i < workers; i++ {
				startLoopbackWorker(t, c, WorkerConfig{Workers: 2})
			}
			got, err := c.Sweep(context.Background(), grid)
			if err != nil {
				t.Fatal(err)
			}
			if st := c.Stats(); st.Dispatched == 0 || st.Requeued != 0 || st.WorkersLost != 0 {
				t.Fatalf("unexpected dispatch stats: %+v", st)
			}
			if !bytes.Equal(encodeResults(t, got), want) {
				diffFailure(t, fmt.Sprintf("workers=%d", workers), baseline, got)
			}
		})
	}

	// Fault injection: one of three workers dies abruptly after its first
	// result, with more units outstanding (its capacity exceeds one). The
	// coordinator must reassign those units to the survivors and the merged
	// grid must still be byte-identical to the local run.
	t.Run("crash-mid-sweep", func(t *testing.T) {
		c := NewCoordinator(CoordinatorConfig{Engine: sweep.New(diffEngineConfig())})
		defer c.Close()
		crashed := startLoopbackWorker(t, c, WorkerConfig{Workers: 4, CrashAfterUnits: 1})
		startLoopbackWorker(t, c, WorkerConfig{Workers: 2})
		startLoopbackWorker(t, c, WorkerConfig{Workers: 2})
		got, err := c.Sweep(context.Background(), grid)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case werr := <-crashed:
			if !errors.Is(werr, ErrInjectedCrash) {
				t.Fatalf("crashing worker exited with %v, want injected crash", werr)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("crashing worker never exited")
		}
		st := c.Stats()
		if st.WorkersLost != 1 {
			t.Fatalf("WorkersLost = %d, want 1 (stats %+v)", st.WorkersLost, st)
		}
		if st.Requeued == 0 {
			t.Fatalf("crash reassigned no units (stats %+v); the fault was not injected mid-sweep", st)
		}
		if !bytes.Equal(encodeResults(t, got), want) {
			diffFailure(t, "crash-mid-sweep", baseline, got)
		}
	})

	// Worker-side warm cache: after one sweep through a caching worker, a
	// COLD coordinator re-resolves the whole grid by dispatching every unit
	// to workers that all serve from the shared cache dir — zero executed
	// units cluster-wide, proven by the hit counters, at every cluster size.
	t.Run("worker-warm-cache", func(t *testing.T) {
		if testing.Short() {
			t.Skip("skipped in -short (full CI differential step covers it)")
		}
		cacheDir := t.TempDir()
		warm := NewCoordinator(CoordinatorConfig{Engine: sweep.New(diffEngineConfig())})
		startLoopbackWorker(t, warm, WorkerConfig{Workers: 4, CacheDir: cacheDir})
		if _, err := warm.Sweep(context.Background(), grid); err != nil {
			t.Fatal(err)
		}
		warm.Close()
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
				c := NewCoordinator(CoordinatorConfig{Engine: sweep.New(diffEngineConfig())})
				defer c.Close()
				for i := 0; i < workers; i++ {
					startLoopbackWorker(t, c, WorkerConfig{Workers: 2, CacheDir: cacheDir})
				}
				got, err := c.Sweep(context.Background(), grid)
				if err != nil {
					t.Fatal(err)
				}
				st := c.Stats()
				if st.Dispatched == 0 || st.Completed != st.Dispatched || st.RemoteHits != st.Completed {
					t.Fatalf("warm workers executed units (want every dispatch a remote hit): %+v", st)
				}
				if st.LocalHits != 0 {
					t.Fatalf("cold coordinator reported local hits: %+v", st)
				}
				perWorkerHits := 0
				for _, ws := range st.PerWorker {
					perWorkerHits += ws.CacheHits
				}
				if perWorkerHits != st.RemoteHits {
					t.Fatalf("per-worker hit counters (%d) disagree with RemoteHits (%d)", perWorkerHits, st.RemoteHits)
				}
				if !bytes.Equal(encodeResults(t, got), want) {
					diffFailure(t, fmt.Sprintf("worker-warm-cache/workers=%d", workers), baseline, got)
				}
			})
		}
	})

	// Warm restart: a second coordinator sharing the first engine's cache
	// resolves the whole grid without dispatching a single unit — the
	// "never recomputed anywhere in the cluster" half of the contract.
	t.Run("warm-cache-no-dispatch", func(t *testing.T) {
		if testing.Short() {
			t.Skip("skipped in -short (full CI differential step covers it)")
		}
		eng := sweep.New(diffEngineConfig())
		c := NewCoordinator(CoordinatorConfig{Engine: eng})
		defer c.Close()
		startLoopbackWorker(t, c, WorkerConfig{Workers: 2})
		if _, err := c.Sweep(context.Background(), grid); err != nil {
			t.Fatal(err)
		}
		first := c.Stats().Dispatched
		got, err := c.Sweep(context.Background(), grid)
		if err != nil {
			t.Fatal(err)
		}
		if again := c.Stats().Dispatched; again != first {
			t.Fatalf("warm sweep dispatched %d new units, want 0", again-first)
		}
		if hits := c.Stats().LocalHits; hits == 0 {
			t.Fatalf("warm sweep reported no local hits: %+v", c.Stats())
		}
		if !bytes.Equal(encodeResults(t, got), want) {
			diffFailure(t, "warm-cache-no-dispatch", baseline, got)
		}
	})
}

// TestSpeculationDifferential injects a straggler — a worker that stalls
// every execution far beyond the speculation threshold — and proves the
// coordinator re-dispatches the stuck units to idle workers with the merged
// grid still gob byte-identical to the local run: first valid result wins,
// the straggler's late duplicates are dropped by the outstanding/duplicate
// guards. Runs in -short too (the CI speculation step), at 2 and 4 workers.
func TestSpeculationDifferential(t *testing.T) {
	grid := diffGrid()
	local := sweep.New(diffEngineConfig())
	baseline, err := local.Sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeResults(t, baseline)

	for _, workers := range []int{2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := NewCoordinator(CoordinatorConfig{
				Engine:         sweep.New(diffEngineConfig()),
				SpeculateAfter: 100 * time.Millisecond,
				Logf:           t.Logf,
			})
			defer c.Close()
			// The straggler joins first so its dispatch loop is running
			// before the sweep starts; capacity 1 wedges exactly one unit.
			startLoopbackWorker(t, c, WorkerConfig{Workers: 1, UnitDelay: 20 * time.Second})
			for i := 1; i < workers; i++ {
				startLoopbackWorker(t, c, WorkerConfig{Workers: 2})
			}
			got, err := c.Sweep(context.Background(), grid)
			if err != nil {
				t.Fatal(err)
			}
			st := c.Stats()
			if st.Speculated == 0 {
				t.Fatalf("straggler never triggered speculation: %+v", st)
			}
			if st.WorkersLost != 0 || st.Requeued != 0 {
				t.Fatalf("speculation must not be accounted as worker loss: %+v", st)
			}
			specDispatches := 0
			for _, ws := range st.PerWorker {
				specDispatches += ws.Speculative
			}
			if specDispatches == 0 {
				t.Fatalf("no speculative copy was ever dispatched: %+v", st)
			}
			if !bytes.Equal(encodeResults(t, got), want) {
				diffFailure(t, fmt.Sprintf("speculation/workers=%d", workers), baseline, got)
			}
		})
	}
}
