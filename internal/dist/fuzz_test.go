package dist

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/sweep"
	"pard/internal/trace"
)

// FuzzWorkUnit fuzzes the dist protocol's decode surface, mirroring
// FuzzPipelineSpec for the JSON spec surface: arbitrary bytes fed to the
// work-unit and result decoders (gob — what the wire carries — plus JSON,
// the debugging representation) must never panic, and any frame that does
// decode must re-encode and derive its key without panicking. A worker is
// one Accept away from arbitrary network input, so this is the package's
// robustness floor. Seeds cover all four apps, the sharded/steady option
// variants, a result frame, and malformed shapes.
func FuzzWorkUnit(f *testing.F) {
	seedUnits := []WorkUnit{
		{Epoch: 1, ID: 0, Key: "run|k", Spec: sweep.Spec{App: "tm", Kind: trace.Wiki, Policy: "pard"}},
		{Epoch: 2, ID: 7, Key: "run|k2", Spec: sweep.Spec{App: "lv", Kind: trace.Tweet, Policy: "nexus"}},
		{Epoch: 3, ID: 1, Key: "run|k3", Spec: sweep.Spec{App: "gm", Kind: trace.Azure, Policy: "clipper++"}},
		{Epoch: 4, ID: 2, Key: "run|k4", Spec: sweep.Spec{App: "da", Kind: trace.Steady, Policy: "pard",
			Opts: sweep.RunOpts{Shards: 4, SteadyRate: 80, SLOOverride: 450 * time.Millisecond}}},
		{Epoch: 5, ID: 3, Key: "run|k5", Spec: sweep.Spec{Pipeline: pipeline.DADynamic(0.5), Policy: "naive"}},
	}
	for _, u := range seedUnits {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(u); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		js, err := json.Marshal(u)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(js)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(UnitResult{Epoch: 1, ID: 0, Key: "run|k", Err: "boom"}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("\x00\x01\x02gob"))
	f.Add([]byte(`{"Epoch":1,"ID":-9,"Key":"run|","Spec":{"App":"tm"}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 8<<10 {
			return // keep adversarial inputs cheap
		}
		var u WorkUnit
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&u); err == nil {
			// A decodable frame must survive the operations the worker
			// performs on it: key derivation and re-encoding (the result
			// echo carries the same fields back).
			_ = u.Spec.Key()
			var out bytes.Buffer
			if err := gob.NewEncoder(&out).Encode(u); err != nil {
				t.Fatalf("decoded unit failed to re-encode: %v", err)
			}
		}
		var r UnitResult
		_ = gob.NewDecoder(bytes.NewReader(data)).Decode(&r)
		var ju WorkUnit
		if err := json.Unmarshal(data, &ju); err == nil {
			_ = ju.Spec.Key()
		}
	})
}
