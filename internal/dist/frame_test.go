package dist

import (
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"
)

// TestFrameRoundTrip pins the framing layer in isolation: a message sent as
// one frame decodes identically on the far end, and consecutive frames on
// one stream stay self-delimiting (each carries its own gob type wiring).
func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fa, fb := newFramed(a), newFramed(b)
	want := Hello{Proto: ProtoVersion, BaseSeed: 42, TraceDuration: 9 * time.Second, LibraryFP: 0xfeed}
	errc := make(chan error, 1)
	go func() {
		if err := fa.send(want); err != nil {
			errc <- err
			return
		}
		errc <- fa.send(HelloAck{Proto: ProtoVersion, Capacity: 3})
	}()
	var got Hello
	if err := fb.recv(&got, time.Second); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("frame round trip: got %+v, want %+v", got, want)
	}
	var ack HelloAck
	if err := fb.recv(&ack, time.Second); err != nil {
		t.Fatal(err)
	}
	if ack.Capacity != 3 {
		t.Fatalf("second frame: got %+v", ack)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestOversizedFrameHeaderRejected is the max-frame guard's unit proof: a
// header announcing a payload beyond MaxFrameLen is refused from the four
// header bytes alone — before any payload allocation — with an error naming
// the limit.
func TestOversizedFrameHeaderRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() {
		var h Hello
		errc <- newFramed(b).recv(&h, 2*time.Second)
	}()
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(0xFFFFFFFF)) // a 4 GiB lie
	if _, err := a.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	err := <-errc
	if err == nil {
		t.Fatal("oversized frame header was accepted")
	}
	if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("rejection should name the frame limit, got: %v", err)
	}
}

// TestOversizedFrameRefusedByWorker proves the guard holds on the real
// protocol surface, not just the framed helper: a peer opening a worker
// connection with a hostile length prefix is dropped with a loud handshake
// error instead of an allocation.
func TestOversizedFrameRefusedByWorker(t *testing.T) {
	coordSide, workerSide := net.Pipe()
	defer coordSide.Close()
	done := make(chan error, 1)
	go func() { done <- ServeConn(workerSide, WorkerConfig{Workers: 1}) }()
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameLen+1)
	if _, err := coordSide.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	err := <-done
	if err == nil {
		t.Fatal("worker served a connection that opened with an oversized frame")
	}
	if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("worker rejection should name the frame limit, got: %v", err)
	}
}

// TestSendRefusesOversizedFrame pins the symmetric send-side guard: a
// payload that would overflow the length prefix is refused locally before a
// single byte reaches the connection.
func TestSendRefusesOversizedFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a > MaxFrameLen payload")
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	f := newFramed(a)
	// net.Pipe writes block until read; send returning at all proves the
	// refusal happened before the write.
	err := f.send(UnitResult{Err: strings.Repeat("x", MaxFrameLen+1)})
	if err == nil {
		t.Fatal("oversized frame was sent")
	}
	if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("send rejection should name the frame limit, got: %v", err)
	}
}
