package dist

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"pard/internal/simgpu"
	"pard/internal/sweep"
)

// CoordinatorConfig parameterizes a Coordinator.
type CoordinatorConfig struct {
	// Engine is the local sweep engine results merge through: units warm in
	// its cache (memory or disk) are never dispatched, and every remote
	// result is installed back into it. Its base seed and trace duration
	// are the handshake parameters workers configure themselves from.
	Engine *sweep.Engine
	// WaitForWorkers makes a sweep with an empty cluster block for workers
	// to join (listen-mode deployments) instead of failing fast (the
	// dial-mode default, where losing every worker is an error).
	WaitForWorkers bool
	// HandshakeTimeout bounds the Hello/HelloAck exchange on a new
	// connection (default 10s; < 0 disables).
	HandshakeTimeout time.Duration
	// Logf, when set, receives dispatch/requeue/worker-lifecycle logging.
	Logf func(format string, args ...any)
	// OnUnitDone, when set, is invoked after each remotely executed unit is
	// merged (outside the coordinator lock): done/total count the current
	// sweep's units, errMsg is empty on success. This is the distributed
	// counterpart of sweep.Config.OnProgress, which remote execution
	// bypasses (cache installs are not local work).
	OnUnitDone func(done, total int, key, errMsg string)
}

// Stats counts coordinator activity; Requeued > 0 means at least one unit
// was reassigned after a worker loss.
type Stats struct {
	Dispatched    int // units sent to workers (reassignments included)
	Completed     int // unit results accepted
	Requeued      int // units reassigned after a worker was lost
	WorkersJoined int
	WorkersLost   int // workers dropped on connection failure (Close excluded)
}

// workerConn is one registered worker. The dispatch loop is the connection's
// only writer and the read loop its only reader, so neither needs a lock on
// the stream; outstanding/dead are guarded by the coordinator mutex.
type workerConn struct {
	id          int
	conn        net.Conn
	enc         *gob.Encoder
	dec         *gob.Decoder
	capacity    int
	outstanding map[int]bool
	dead        bool
}

// sweepState is the dispatch state of the active sweep.
type sweepState struct {
	epoch    uint64
	units    []WorkUnit
	pending  []int // unit IDs awaiting assignment
	results  map[int]*simgpu.Result
	failures map[int]string
	aborted  bool // stop dispatching: a unit failed or the context fired
	ctxErr   error
	// installs tracks cache merges running off the coordinator lock (disk
	// I/O must not serialize dispatch); Sweep drains it before returning
	// so a finished sweep is fully visible to the next one's Lookup.
	installs sync.WaitGroup
}

// remaining reports how many units are still unresolved.
func (st *sweepState) remaining() int { return len(st.units) - len(st.results) - len(st.failures) }

// Coordinator partitions sweep grids into work units and drives a dynamic
// set of workers: workers may join at any time (even mid-sweep, stealing
// pending units) and leave at any time (their outstanding units are
// reassigned). It implements sweep.Distributor. All methods are safe for
// concurrent use; sweeps themselves are serialized.
type Coordinator struct {
	cfg CoordinatorConfig

	sweepMu sync.Mutex // one sweep at a time

	mu        sync.Mutex
	cond      *sync.Cond
	workers   map[int]*workerConn
	listeners []net.Listener
	nextID    int
	epoch     uint64
	st        *sweepState
	closed    bool
	stats     Stats
}

// NewCoordinator returns a coordinator merging through cfg.Engine.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Engine == nil {
		panic("dist: CoordinatorConfig.Engine is required")
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	c := &Coordinator{cfg: cfg, workers: map[int]*workerConn{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// logf forwards to the configured logger.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// AddConn performs the handshake on conn and registers it as a worker. The
// conn may come from dialing a listening worker, from accepting a worker
// that dialed in, or from net.Pipe in tests — the protocol is the same.
func (c *Coordinator) AddConn(conn net.Conn) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		conn.Close()
		return errors.New("dist: coordinator is closed")
	}
	if c.cfg.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Now().Add(c.cfg.HandshakeTimeout))
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	ecfg := c.cfg.Engine.Config()
	libFP := ecfg.Library.Fingerprint()
	if err := enc.Encode(Hello{Proto: ProtoVersion, BaseSeed: ecfg.BaseSeed, TraceDuration: ecfg.TraceDuration, LibraryFP: libFP}); err != nil {
		conn.Close()
		return fmt.Errorf("dist: hello: %w", err)
	}
	var ack HelloAck
	if err := dec.Decode(&ack); err != nil {
		conn.Close()
		return fmt.Errorf("dist: hello ack: %w", err)
	}
	if ack.Proto != ProtoVersion {
		conn.Close()
		return fmt.Errorf("dist: protocol version mismatch: coordinator %d, worker %d", ProtoVersion, ack.Proto)
	}
	if ack.Err != "" {
		conn.Close()
		return fmt.Errorf("dist: worker refused: %s", ack.Err)
	}
	if ack.LibraryFP != libFP {
		conn.Close()
		return fmt.Errorf("dist: model-profile library mismatch (coordinator %016x, worker %016x): results would silently diverge", libFP, ack.LibraryFP)
	}
	if c.cfg.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	w := &workerConn{conn: conn, enc: enc, dec: dec, capacity: max(ack.Capacity, 1), outstanding: map[int]bool{}}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return errors.New("dist: coordinator is closed")
	}
	c.nextID++
	w.id = c.nextID
	c.workers[w.id] = w
	c.stats.WorkersJoined++
	c.cond.Broadcast()
	c.mu.Unlock()
	c.logf("dist: worker %d joined (capacity %d)", w.id, w.capacity)

	go c.readLoop(w)
	go c.dispatchLoop(w)
	return nil
}

// Listen accepts worker connections until the listener closes (Close closes
// it). It blocks, like http.Serve; run it in a goroutine.
func (c *Coordinator) Listen(l net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		l.Close()
		return errors.New("dist: coordinator is closed")
	}
	c.listeners = append(c.listeners, l)
	c.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		// Handshake concurrently: one slow or half-open peer must not
		// stall every other worker trying to join behind it.
		go func() {
			if err := c.AddConn(conn); err != nil {
				c.logf("dist: rejected worker connection: %v", err)
			}
		}()
	}
}

// WaitWorkers blocks until at least n workers are registered (or ctx fires,
// or the coordinator closes).
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.workers) < n {
		if c.closed {
			return errors.New("dist: coordinator is closed")
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("dist: waiting for %d workers (%d joined): %w", n, len(c.workers), err)
		}
		c.cond.Wait()
	}
	return nil
}

// Workers reports the current cluster size.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Stats returns a snapshot of the activity counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close shuts the coordinator down: listeners stop accepting, worker
// connections close (workers exit cleanly on EOF), and any blocked Sweep or
// WaitWorkers returns.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	ws := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		w.dead = true // not a loss: suppress dropWorker accounting
		ws = append(ws, w)
	}
	c.workers = map[int]*workerConn{}
	ls := c.listeners
	c.listeners = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, w := range ws {
		w.conn.Close()
	}
}

// Sweep implements sweep.Distributor: it resolves the grid across the
// cluster and returns results in input order, byte-identical to
// Engine.Sweep on the same grid. Units warm in the engine's cache are never
// dispatched; remote results are installed back into it. The first unit
// failure aborts dispatch (mirroring the engine's early-cancel) and is
// returned for the lowest-numbered failed unit.
func (c *Coordinator) Sweep(ctx context.Context, specs []sweep.Spec) ([]*simgpu.Result, error) {
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()

	// Partition: one unit per distinct key, first-appearance order.
	unitOf := map[string]int{}
	indexFor := make([]int, len(specs))
	var units []WorkUnit
	for i, s := range specs {
		key := "run|" + s.Key()
		id, ok := unitOf[key]
		if !ok {
			id = len(units)
			unitOf[key] = id
			units = append(units, WorkUnit{ID: id, Key: key, Spec: s})
		}
		indexFor[i] = id
	}

	// Merge-in phase one: warm units resolve from the local cache.
	results := make(map[int]*simgpu.Result, len(units))
	var pending []int
	for id := range units {
		if v, ok := c.cfg.Engine.Lookup(units[id].Key); ok {
			if r, isRun := v.(*simgpu.Result); isRun {
				results[id] = r
				continue
			}
		}
		pending = append(pending, id)
	}
	c.logf("dist: sweep of %d specs: %d units (%d cached, %d to run)",
		len(specs), len(units), len(results), len(pending))

	if len(pending) > 0 {
		if err := c.runUnits(ctx, units, pending, results); err != nil {
			return nil, err
		}
	}

	out := make([]*simgpu.Result, len(specs))
	for i, id := range indexFor {
		out[i] = results[id]
	}
	return out, nil
}

// runUnits drives the cluster until every pending unit is resolved into
// results, a unit fails, the context fires, or the cluster empties.
func (c *Coordinator) runUnits(ctx context.Context, units []WorkUnit, pending []int, results map[int]*simgpu.Result) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("dist: coordinator is closed")
	}
	c.epoch++
	st := &sweepState{
		epoch:    c.epoch,
		units:    units,
		pending:  pending,
		results:  results,
		failures: map[int]string{},
	}
	for i := range st.units {
		st.units[i].Epoch = st.epoch
	}
	c.st = st
	c.cond.Broadcast()
	c.mu.Unlock()

	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		if c.st == st {
			st.aborted = true
			st.ctxErr = ctx.Err()
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	// Drain off-lock cache merges before returning: a caller observing the
	// sweep as done must find every result via Lookup (warm restarts
	// dispatch nothing).
	defer st.installs.Wait()

	c.mu.Lock()
	defer func() {
		c.st = nil
		c.cond.Broadcast()
		c.mu.Unlock()
	}()
	emptyLogged := false
	for {
		if st.remaining() == 0 {
			break
		}
		outstanding := 0
		for _, w := range c.workers {
			outstanding += len(w.outstanding)
		}
		if st.aborted && outstanding == 0 {
			break
		}
		// Closed-coordinator wins over empty-cluster: Close clears the
		// worker set, and "no workers remain" would misdiagnose a shutdown.
		if c.closed {
			return errors.New("dist: coordinator closed mid-sweep")
		}
		if !st.aborted && outstanding == 0 && len(c.workers) == 0 {
			if !c.cfg.WaitForWorkers {
				return fmt.Errorf("dist: no workers remain (%d of %d units incomplete)", st.remaining(), len(st.units))
			}
			if !emptyLogged {
				c.logf("dist: cluster empty, waiting for workers to rejoin (%d of %d units incomplete)",
					st.remaining(), len(st.units))
				emptyLogged = true
			}
		} else {
			emptyLogged = false
		}
		c.cond.Wait()
	}
	if st.ctxErr != nil {
		return st.ctxErr
	}
	if len(st.failures) > 0 {
		ids := make([]int, 0, len(st.failures))
		for id := range st.failures {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		return fmt.Errorf("dist: unit %d (%s) failed: %s", ids[0], st.units[ids[0]].Key, st.failures[ids[0]])
	}
	return nil
}

// nextUnit blocks until a unit is assignable to w (or w is gone / the
// coordinator closes, reporting false).
func (c *Coordinator) nextUnit(w *workerConn) (WorkUnit, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed || w.dead {
			return WorkUnit{}, false
		}
		if st := c.st; st != nil && !st.aborted && len(st.pending) > 0 && len(w.outstanding) < w.capacity {
			id := st.pending[0]
			st.pending = st.pending[1:]
			w.outstanding[id] = true
			c.stats.Dispatched++
			return st.units[id], true
		}
		c.cond.Wait()
	}
}

// dispatchLoop is w's connection writer: it feeds assignable units to the
// worker until the worker leaves or the coordinator closes.
func (c *Coordinator) dispatchLoop(w *workerConn) {
	for {
		u, ok := c.nextUnit(w)
		if !ok {
			return
		}
		if err := w.enc.Encode(u); err != nil {
			c.dropWorker(w, fmt.Errorf("send unit %d: %w", u.ID, err))
			return
		}
	}
}

// readLoop is w's connection reader: it merges unit results until the
// stream breaks.
func (c *Coordinator) readLoop(w *workerConn) {
	for {
		var r UnitResult
		if err := w.dec.Decode(&r); err != nil {
			c.dropWorker(w, err)
			return
		}
		c.complete(w, r)
	}
}

// complete merges one result. The epoch/outstanding guards drop anything
// stale: results for a previous sweep, for a unit already reassigned after
// this worker was (wrongly) presumed lost, or for units never assigned.
func (c *Coordinator) complete(w *workerConn, r UnitResult) {
	c.mu.Lock()
	st := c.st
	if st == nil || r.Epoch != st.epoch || !w.outstanding[r.ID] {
		c.mu.Unlock()
		c.logf("dist: dropping stale result (worker %d, unit %d, epoch %d)", w.id, r.ID, r.Epoch)
		return
	}
	delete(w.outstanding, r.ID)
	c.stats.Completed++
	switch {
	case r.Err != "":
		st.failures[r.ID] = r.Err
		st.aborted = true
	case r.Result == nil:
		st.failures[r.ID] = "worker sent neither result nor error"
		st.aborted = true
	case r.Key != st.units[r.ID].Key:
		// The echoed key is an integrity check: a worker computing under a
		// different key computed under a different seed.
		st.failures[r.ID] = fmt.Sprintf("worker %d echoed key %q for a unit assigned as %q", w.id, r.Key, st.units[r.ID].Key)
		st.aborted = true
	default:
		if _, dup := st.results[r.ID]; !dup {
			st.results[r.ID] = r.Result
			// Merge into the shared cache off the coordinator lock (Install
			// gob-encodes to disk when a cache dir is configured; dispatch
			// must not serialize on that): later sweeps (local or
			// distributed, this process or — via a shared cache dir — any
			// other) never recompute this unit.
			key, res := st.units[r.ID].Key, r.Result
			st.installs.Add(1)
			go func() {
				defer st.installs.Done()
				c.cfg.Engine.Install(key, res)
			}()
		}
	}
	done, total := len(st.results)+len(st.failures), len(st.units)
	errMsg := st.failures[r.ID]
	key := st.units[r.ID].Key
	c.cond.Broadcast()
	c.mu.Unlock()
	if c.cfg.OnUnitDone != nil {
		c.cfg.OnUnitDone(done, total, key, errMsg)
	}
}

// dropWorker removes w after a connection failure, reassigning its
// outstanding units (lowest unit ID first, for reproducible logs).
func (c *Coordinator) dropWorker(w *workerConn, cause error) {
	c.mu.Lock()
	if w.dead {
		c.mu.Unlock()
		return
	}
	w.dead = true
	delete(c.workers, w.id)
	c.stats.WorkersLost++
	var requeued []int
	if st := c.st; st != nil && !st.aborted {
		for id := range w.outstanding {
			if _, done := st.results[id]; !done {
				requeued = append(requeued, id)
			}
		}
		sort.Ints(requeued)
		st.pending = append(st.pending, requeued...)
		c.stats.Requeued += len(requeued)
	}
	w.outstanding = map[int]bool{}
	c.cond.Broadcast()
	c.mu.Unlock()
	w.conn.Close()
	c.logf("dist: lost worker %d (%v), requeued %d units", w.id, cause, len(requeued))
}
