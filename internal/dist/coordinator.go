package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"slices"
	"sort"
	"sync"
	"time"

	"pard/internal/simgpu"
	"pard/internal/sweep"
)

// CoordinatorConfig parameterizes a Coordinator.
type CoordinatorConfig struct {
	// Engine is the local sweep engine results merge through: units warm in
	// its cache (memory or disk) are never dispatched, and every remote
	// result is installed back into it. Its base seed and trace duration
	// are the handshake parameters workers configure themselves from.
	Engine *sweep.Engine
	// WaitForWorkers makes a sweep with an empty cluster block for workers
	// to join (listen-mode deployments) instead of failing fast (the
	// dial-mode default, where losing every worker is an error).
	WaitForWorkers bool
	// HandshakeTimeout bounds the Hello/HelloAck exchange on a new
	// connection (default 10s; < 0 disables).
	HandshakeTimeout time.Duration
	// Logf, when set, receives dispatch/requeue/worker-lifecycle logging.
	Logf func(format string, args ...any)
	// SpeculateAfter tunes straggler speculation: once a dispatched unit's
	// age exceeds this duration it is queued for one speculative copy on
	// another worker, first valid result wins (per-key seed derivation makes
	// the copies byte-identical, so dropping the loser is safe — the same
	// guard that already absorbs requeue races). Zero (the default) adapts
	// the threshold from observed unit latency (3× the running mean, with a
	// floor, once enough units completed); a negative value disables
	// speculation entirely.
	SpeculateAfter time.Duration
	// OnUnitDone, when set, is invoked after each remotely executed unit is
	// merged (outside the coordinator lock). This is the distributed
	// counterpart of sweep.Config.OnProgress, which remote execution
	// bypasses (cache installs are not local work). Dropped duplicates of
	// speculated units are not merges and are never reported.
	OnUnitDone func(UnitDone)
}

// UnitDone describes one merged remote unit for CoordinatorConfig.OnUnitDone:
// Done/Total count the current sweep's units, Err is empty on success,
// Elapsed is the worker-measured execution time (zero for cache hits), and
// Worker identifies which worker served it.
type UnitDone struct {
	Done     int
	Total    int
	Key      string
	Err      string
	Elapsed  time.Duration
	CacheHit bool
	Worker   int
}

// Stats counts coordinator activity; Requeued > 0 means at least one unit
// was reassigned after a worker loss, Speculated > 0 that at least one
// straggling unit was re-dispatched.
type Stats struct {
	Dispatched int // units sent to workers (reassignments + speculation included)
	Completed  int // unit results accepted (dropped duplicates excluded)
	Requeued   int // units reassigned after a worker was lost
	// Speculated counts speculative copies QUEUED for straggling units; a
	// copy whose original resolves first (or that finds no eligible worker)
	// never dispatches, so the per-worker Speculative dispatch counts can
	// sum below this.
	Speculated    int
	LocalHits     int // units resolved from the coordinator's own cache, never dispatched
	RemoteHits    int // accepted results a worker served from its warm cache
	WorkersJoined int
	WorkersLost   int // workers dropped on connection failure (Close excluded)
	// PerWorker breaks activity down by worker ID (entries survive the
	// worker's departure).
	PerWorker map[int]WorkerStats
}

// WorkerStats counts one worker's activity.
type WorkerStats struct {
	Completed   int // results accepted from this worker
	CacheHits   int // of those, served from the worker's warm cache
	Speculative int // speculative duplicate assignments sent to this worker
}

// workerConn is one registered worker. The dispatch loop is the connection's
// only writer and the read loop its only reader, so neither needs a lock on
// the stream; outstanding/dead are guarded by the coordinator mutex.
type workerConn struct {
	id          int
	conn        net.Conn
	f           *framed
	capacity    int
	outstanding map[int]bool
	dead        bool
}

// sweepState is the dispatch state of the active sweep.
type sweepState struct {
	epoch    uint64
	units    []WorkUnit
	pending  []int // unit IDs awaiting assignment
	results  map[int]*simgpu.Result
	failures map[int]string
	aborted  bool // stop dispatching: a unit failed or the context fired
	ctxErr   error
	// dispatchedAt is the last dispatch time of each unresolved unit — the
	// age the speculation scan compares against the straggler threshold.
	dispatchedAt map[int]time.Time
	// speculated marks units already granted their one speculative copy.
	speculated map[int]bool
	// latencySum/latencyN estimate the mean dispatch→result latency of
	// executed (non-cache-hit) units, feeding the adaptive threshold.
	latencySum time.Duration
	latencyN   int
	// installs tracks cache merges running off the coordinator lock (disk
	// I/O must not serialize dispatch); Sweep drains it before returning
	// so a finished sweep is fully visible to the next one's Lookup.
	installs sync.WaitGroup
}

// remaining reports how many units are still unresolved.
func (st *sweepState) remaining() int { return len(st.units) - len(st.results) - len(st.failures) }

// Coordinator partitions sweep grids into work units and drives a dynamic
// set of workers: workers may join at any time (even mid-sweep, stealing
// pending units) and leave at any time (their outstanding units are
// reassigned). It implements sweep.Distributor. All methods are safe for
// concurrent use; sweeps themselves are serialized.
type Coordinator struct {
	cfg CoordinatorConfig

	sweepMu sync.Mutex // one sweep at a time

	mu        sync.Mutex
	cond      *sync.Cond
	workers   map[int]*workerConn
	listeners []net.Listener
	nextID    int
	epoch     uint64
	st        *sweepState
	closed    bool
	stats     Stats
}

// NewCoordinator returns a coordinator merging through cfg.Engine.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Engine == nil {
		panic("dist: CoordinatorConfig.Engine is required")
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	c := &Coordinator{cfg: cfg, workers: map[int]*workerConn{}}
	c.stats.PerWorker = map[int]WorkerStats{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Speculation scan cadence and adaptive-threshold guards. The floor keeps a
// noisy estimate over very short units from re-dispatching everything, and
// the warmup keeps the mean from being read before it means anything.
// Spurious speculation is never a correctness risk — duplicate results are
// byte-identical and dropped — only wasted work.
const (
	speculateTick         = 25 * time.Millisecond
	speculateAdaptiveMin  = 250 * time.Millisecond
	speculateWarmupUnits  = 3
	speculateAdaptiveMult = 3
)

// logf forwards to the configured logger.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// AddConn performs the handshake on conn and registers it as a worker. The
// conn may come from dialing a listening worker, from accepting a worker
// that dialed in, or from net.Pipe in tests — the protocol is the same.
func (c *Coordinator) AddConn(conn net.Conn) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		conn.Close()
		return errors.New("dist: coordinator is closed")
	}
	if c.cfg.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Now().Add(c.cfg.HandshakeTimeout))
	}
	f := newFramed(conn)
	ecfg := c.cfg.Engine.Config()
	libFP := ecfg.Library.Fingerprint()
	if err := f.send(Hello{Proto: ProtoVersion, BaseSeed: ecfg.BaseSeed, TraceDuration: ecfg.TraceDuration, LibraryFP: libFP}); err != nil {
		conn.Close()
		return fmt.Errorf("dist: hello: %w", err)
	}
	var ack HelloAck
	if err := f.recv(&ack, 0); err != nil {
		conn.Close()
		return fmt.Errorf("dist: hello ack: %w", err)
	}
	if ack.Proto != ProtoVersion {
		conn.Close()
		return fmt.Errorf("dist: protocol version mismatch: coordinator %d, worker %d", ProtoVersion, ack.Proto)
	}
	if ack.Err != "" {
		conn.Close()
		return fmt.Errorf("dist: worker refused: %s", ack.Err)
	}
	if ack.LibraryFP != libFP {
		conn.Close()
		return fmt.Errorf("dist: model-profile library mismatch (coordinator %016x, worker %016x): results would silently diverge", libFP, ack.LibraryFP)
	}
	if c.cfg.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	w := &workerConn{conn: conn, f: f, capacity: max(ack.Capacity, 1), outstanding: map[int]bool{}}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return errors.New("dist: coordinator is closed")
	}
	c.nextID++
	w.id = c.nextID
	c.workers[w.id] = w
	c.stats.WorkersJoined++
	c.cond.Broadcast()
	c.mu.Unlock()
	c.logf("dist: worker %d joined (capacity %d)", w.id, w.capacity)

	go c.readLoop(w)
	go c.dispatchLoop(w)
	return nil
}

// Listen accepts worker connections until the listener closes (Close closes
// it). It blocks, like http.Serve; run it in a goroutine.
func (c *Coordinator) Listen(l net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		l.Close()
		return errors.New("dist: coordinator is closed")
	}
	c.listeners = append(c.listeners, l)
	c.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		// Handshake concurrently: one slow or half-open peer must not
		// stall every other worker trying to join behind it.
		go func() {
			if err := c.AddConn(conn); err != nil {
				c.logf("dist: rejected worker connection: %v", err)
			}
		}()
	}
}

// WaitWorkers blocks until at least n workers are registered (or ctx fires,
// or the coordinator closes).
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.workers) < n {
		if c.closed {
			return errors.New("dist: coordinator is closed")
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("dist: waiting for %d workers (%d joined): %w", n, len(c.workers), err)
		}
		c.cond.Wait()
	}
	return nil
}

// Workers reports the current cluster size.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Stats returns a snapshot of the activity counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.PerWorker = make(map[int]WorkerStats, len(c.stats.PerWorker))
	for id, ws := range c.stats.PerWorker {
		out.PerWorker[id] = ws
	}
	return out
}

// Close shuts the coordinator down: listeners stop accepting, worker
// connections close (workers exit cleanly on EOF), and any blocked Sweep or
// WaitWorkers returns.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	ws := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		w.dead = true // not a loss: suppress dropWorker accounting
		ws = append(ws, w)
	}
	c.workers = map[int]*workerConn{}
	ls := c.listeners
	c.listeners = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, w := range ws {
		w.conn.Close()
	}
}

// Sweep implements sweep.Distributor: it resolves the grid across the
// cluster and returns results in input order, byte-identical to
// Engine.Sweep on the same grid. Units warm in the engine's cache are never
// dispatched; remote results are installed back into it. The first unit
// failure aborts dispatch (mirroring the engine's early-cancel) and is
// returned for the lowest-numbered failed unit.
func (c *Coordinator) Sweep(ctx context.Context, specs []sweep.Spec) ([]*simgpu.Result, error) {
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()

	// Partition: one unit per distinct key, first-appearance order.
	unitOf := map[string]int{}
	indexFor := make([]int, len(specs))
	var units []WorkUnit
	for i, s := range specs {
		key := "run|" + s.Key()
		id, ok := unitOf[key]
		if !ok {
			id = len(units)
			unitOf[key] = id
			units = append(units, WorkUnit{ID: id, Key: key, Spec: s})
		}
		indexFor[i] = id
	}

	// Merge-in phase one: warm units resolve from the local cache.
	results := make(map[int]*simgpu.Result, len(units))
	var pending []int
	for id := range units {
		if v, ok := c.cfg.Engine.Lookup(units[id].Key); ok {
			if r, isRun := v.(*simgpu.Result); isRun {
				results[id] = r
				continue
			}
		}
		pending = append(pending, id)
	}
	c.mu.Lock()
	c.stats.LocalHits += len(results)
	c.mu.Unlock()
	c.logf("dist: sweep of %d specs: %d units (%d cached, %d to run)",
		len(specs), len(units), len(results), len(pending))

	if len(pending) > 0 {
		if err := c.runUnits(ctx, units, pending, results); err != nil {
			return nil, err
		}
	}

	out := make([]*simgpu.Result, len(specs))
	for i, id := range indexFor {
		out[i] = results[id]
	}
	return out, nil
}

// runUnits drives the cluster until every pending unit is resolved into
// results, a unit fails, the context fires, or the cluster empties.
func (c *Coordinator) runUnits(ctx context.Context, units []WorkUnit, pending []int, results map[int]*simgpu.Result) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("dist: coordinator is closed")
	}
	c.epoch++
	st := &sweepState{
		epoch:        c.epoch,
		units:        units,
		pending:      pending,
		results:      results,
		failures:     map[int]string{},
		dispatchedAt: map[int]time.Time{},
		speculated:   map[int]bool{},
	}
	for i := range st.units {
		st.units[i].Epoch = st.epoch
	}
	c.st = st
	c.cond.Broadcast()
	c.mu.Unlock()

	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		if c.st == st {
			st.aborted = true
			st.ctxErr = ctx.Err()
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	if c.cfg.SpeculateAfter >= 0 {
		stopSpec := make(chan struct{})
		defer close(stopSpec)
		go c.speculationLoop(st, stopSpec)
	}
	// Drain off-lock cache merges before returning: a caller observing the
	// sweep as done must find every result via Lookup (warm restarts
	// dispatch nothing).
	defer st.installs.Wait()

	c.mu.Lock()
	defer func() {
		c.st = nil
		c.cond.Broadcast()
		c.mu.Unlock()
	}()
	emptyLogged := false
	for {
		if st.remaining() == 0 {
			break
		}
		outstanding := 0
		for _, w := range c.workers {
			outstanding += len(w.outstanding)
		}
		if st.aborted && outstanding == 0 {
			break
		}
		// Closed-coordinator wins over empty-cluster: Close clears the
		// worker set, and "no workers remain" would misdiagnose a shutdown.
		if c.closed {
			return errors.New("dist: coordinator closed mid-sweep")
		}
		if !st.aborted && outstanding == 0 && len(c.workers) == 0 {
			if !c.cfg.WaitForWorkers {
				return fmt.Errorf("dist: no workers remain (%d of %d units incomplete)", st.remaining(), len(st.units))
			}
			if !emptyLogged {
				c.logf("dist: cluster empty, waiting for workers to rejoin (%d of %d units incomplete)",
					st.remaining(), len(st.units))
				emptyLogged = true
			}
		} else {
			emptyLogged = false
		}
		c.cond.Wait()
	}
	if st.ctxErr != nil {
		return st.ctxErr
	}
	if len(st.failures) > 0 {
		ids := make([]int, 0, len(st.failures))
		for id := range st.failures {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		return fmt.Errorf("dist: unit %d (%s) failed: %s", ids[0], st.units[ids[0]].Key, st.failures[ids[0]])
	}
	return nil
}

// speculationLoop periodically scans the active sweep for straggling units
// until the sweep finishes or stop closes.
func (c *Coordinator) speculationLoop(st *sweepState, stop <-chan struct{}) {
	t := time.NewTicker(speculateTick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		if c.closed || c.st != st {
			c.mu.Unlock()
			return
		}
		c.speculateLocked(st)
		c.mu.Unlock()
	}
}

// speculateLocked (c.mu held) queues one speculative copy of every
// dispatched unit older than the straggler threshold. The copy goes to the
// back of pending, so first dispatches are never delayed, and nextUnit
// refuses to hand it to a worker already running the unit. First valid
// result wins; the loser is dropped by the outstanding/duplicate guards.
func (c *Coordinator) speculateLocked(st *sweepState) {
	if st.aborted {
		return
	}
	threshold := c.cfg.SpeculateAfter
	if threshold == 0 {
		if st.latencyN < speculateWarmupUnits {
			return
		}
		threshold = speculateAdaptiveMult * st.latencySum / time.Duration(st.latencyN)
		threshold = max(threshold, speculateAdaptiveMin)
	}
	now := time.Now()
	queued := false
	for id, at := range st.dispatchedAt {
		if st.speculated[id] || now.Sub(at) < threshold {
			continue
		}
		if _, done := st.results[id]; done {
			continue
		}
		if _, failed := st.failures[id]; failed {
			continue
		}
		if slices.Contains(st.pending, id) {
			// A copy is already queued (e.g. speculation re-armed after a
			// worker loss before the first copy dispatched).
			continue
		}
		st.speculated[id] = true
		st.pending = append(st.pending, id)
		c.stats.Speculated++
		queued = true
		c.logf("dist: unit %d straggling (%v > %v), queueing speculative copy",
			id, now.Sub(at).Round(time.Millisecond), threshold.Round(time.Millisecond))
	}
	if queued {
		// Only wake the dispatch loops when there is new work; an
		// unconditional broadcast would storm every blocked worker each tick
		// for the whole sweep.
		c.cond.Broadcast()
	}
}

// nextUnit blocks until a unit is assignable to w (or w is gone / the
// coordinator closes, reporting false). Units the worker is already running
// are skipped: a speculative copy must land on a different worker to help.
func (c *Coordinator) nextUnit(w *workerConn) (WorkUnit, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed || w.dead {
			return WorkUnit{}, false
		}
		if st := c.st; st != nil && !st.aborted && len(w.outstanding) < w.capacity {
			for i := 0; i < len(st.pending); {
				id := st.pending[i]
				if _, done := st.results[id]; done {
					// Resolved while queued (a speculative copy whose
					// original came through): drop it for everyone.
					st.pending = append(st.pending[:i], st.pending[i+1:]...)
					continue
				}
				if w.outstanding[id] {
					i++
					continue
				}
				st.pending = append(st.pending[:i], st.pending[i+1:]...)
				duplicate := c.outstandingElsewhere(w, id)
				w.outstanding[id] = true
				if _, ok := st.dispatchedAt[id]; !ok {
					// A speculative copy keeps the original dispatch time:
					// the unit really has been pending that long, and a
					// reset would feed near-zero samples into the adaptive
					// latency estimate when the original completes.
					st.dispatchedAt[id] = time.Now()
				}
				c.stats.Dispatched++
				if duplicate {
					ws := c.stats.PerWorker[w.id]
					ws.Speculative++
					c.stats.PerWorker[w.id] = ws
				}
				return st.units[id], true
			}
		}
		c.cond.Wait()
	}
}

// dispatchLoop is w's connection writer: it feeds assignable units to the
// worker until the worker leaves or the coordinator closes.
func (c *Coordinator) dispatchLoop(w *workerConn) {
	for {
		u, ok := c.nextUnit(w)
		if !ok {
			return
		}
		if err := w.f.send(u); err != nil {
			c.dropWorker(w, fmt.Errorf("send unit %d: %w", u.ID, err))
			return
		}
	}
}

// readLoop is w's connection reader: it merges unit results until the
// stream breaks.
func (c *Coordinator) readLoop(w *workerConn) {
	for {
		var r UnitResult
		if err := w.f.recv(&r, 0); err != nil {
			c.dropWorker(w, err)
			return
		}
		c.complete(w, r)
	}
}

// complete merges one result. The epoch/outstanding guards drop anything
// stale: results for a previous sweep, for a unit already reassigned after
// this worker was (wrongly) presumed lost, or for units never assigned.
// With speculation the same unit can be legitimately outstanding on two
// workers at once; the first valid result wins and the loser — by per-key
// seed derivation a byte-identical copy — is dropped here.
func (c *Coordinator) complete(w *workerConn, r UnitResult) {
	c.mu.Lock()
	st := c.st
	if st == nil || r.Epoch != st.epoch || !w.outstanding[r.ID] {
		c.mu.Unlock()
		c.logf("dist: dropping stale result (worker %d, unit %d, epoch %d)", w.id, r.ID, r.Epoch)
		return
	}
	delete(w.outstanding, r.ID)
	_, succeeded := st.results[r.ID]
	_, failed := st.failures[r.ID]
	if succeeded || failed {
		// The speculative race was lost (or won — either way a copy of this
		// unit was merged first, as a result or as the recorded failure):
		// not a completion, just freed capacity. Checking failures too keeps
		// a unit from landing in both maps and double-counting Done.
		c.cond.Broadcast()
		c.mu.Unlock()
		c.logf("dist: dropping duplicate result for unit %d from worker %d (speculation race resolved)", r.ID, w.id)
		return
	}
	c.stats.Completed++
	ws := c.stats.PerWorker[w.id]
	ws.Completed++
	if at, ok := st.dispatchedAt[r.ID]; ok && r.Err == "" && !r.CacheHit {
		// Executed units feed the adaptive straggler estimate; cache hits
		// return in microseconds and would drag it toward zero.
		st.latencySum += time.Since(at)
		st.latencyN++
	}
	switch {
	case r.Err != "":
		st.failures[r.ID] = r.Err
		st.aborted = true
	case r.Result == nil:
		st.failures[r.ID] = "worker sent neither result nor error"
		st.aborted = true
	case r.Key != st.units[r.ID].Key:
		// The echoed key is an integrity check: a worker computing under a
		// different key computed under a different seed.
		st.failures[r.ID] = fmt.Sprintf("worker %d echoed key %q for a unit assigned as %q", w.id, r.Key, st.units[r.ID].Key)
		st.aborted = true
	default:
		if r.CacheHit {
			c.stats.RemoteHits++
			ws.CacheHits++
		}
		st.results[r.ID] = r.Result
		delete(st.dispatchedAt, r.ID)
		// Merge into the shared cache off the coordinator lock (Install
		// gob-encodes to disk when a cache dir is configured; dispatch
		// must not serialize on that): later sweeps (local or
		// distributed, this process or — via a shared cache dir — any
		// other) never recompute this unit.
		key, res := st.units[r.ID].Key, r.Result
		st.installs.Add(1)
		go func() {
			defer st.installs.Done()
			c.cfg.Engine.Install(key, res)
		}()
	}
	c.stats.PerWorker[w.id] = ws
	done, total := len(st.results)+len(st.failures), len(st.units)
	ud := UnitDone{
		Done: done, Total: total,
		Key: st.units[r.ID].Key, Err: st.failures[r.ID],
		Elapsed: r.Elapsed, CacheHit: r.CacheHit, Worker: w.id,
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if c.cfg.OnUnitDone != nil {
		c.cfg.OnUnitDone(ud)
	}
}

// outstandingElsewhere reports whether id is outstanding on a live worker
// other than w (c.mu held).
func (c *Coordinator) outstandingElsewhere(w *workerConn, id int) bool {
	for _, other := range c.workers {
		if other != w && other.outstanding[id] {
			return true
		}
	}
	return false
}

// dropWorker removes w after a connection failure, reassigning its
// outstanding units (lowest unit ID first, for reproducible logs).
func (c *Coordinator) dropWorker(w *workerConn, cause error) {
	c.mu.Lock()
	if w.dead {
		c.mu.Unlock()
		return
	}
	w.dead = true
	delete(c.workers, w.id)
	c.stats.WorkersLost++
	var requeued []int
	if st := c.st; st != nil && !st.aborted {
		for id := range w.outstanding {
			if _, done := st.results[id]; done {
				continue
			}
			if c.outstandingElsewhere(w, id) {
				// A copy is still running on a live worker; it covers this
				// unit, no requeue needed. Re-arm speculation so that copy
				// gets a backup of its own if it too turns out to straggle.
				delete(st.speculated, id)
				continue
			}
			if slices.Contains(st.pending, id) {
				// Already queued (a speculative copy not yet dispatched):
				// requeueing would double-queue the unit.
				delete(st.dispatchedAt, id)
				delete(st.speculated, id)
				continue
			}
			requeued = append(requeued, id)
		}
		sort.Ints(requeued)
		st.pending = append(st.pending, requeued...)
		for _, id := range requeued {
			// The unit is no longer running anywhere: its age is meaningless
			// until redispatch, so keep it out of the speculation scan — and
			// re-arm its speculative copy, since the dispatch it covered died
			// with the worker.
			delete(st.dispatchedAt, id)
			delete(st.speculated, id)
		}
		c.stats.Requeued += len(requeued)
	}
	w.outstanding = map[int]bool{}
	c.cond.Broadcast()
	c.mu.Unlock()
	w.conn.Close()
	c.logf("dist: lost worker %d (%v), requeued %d units", w.id, cause, len(requeued))
}
