package rag

import (
	"testing"
	"time"

	"pard/internal/stats"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Queries: 10, Rate: 1, SLO: 0, Policy: Reactive},
		{Queries: 10, Rate: 1, SLO: time.Second, Policy: "bogus", RewriteSlots: 1, GenerateSlots: 1},
		{Queries: 10, Rate: 1, SLO: time.Second, Policy: Reactive, RewriteSlots: 0, GenerateSlots: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestConservation(t *testing.T) {
	for _, p := range append(Policies(), NoDrop) {
		cfg := DefaultConfig(p)
		cfg.Queries = 2000
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Total != cfg.Queries {
			t.Fatalf("%s: total %d, want %d", p, res.Total, cfg.Queries)
		}
		if res.Good+res.Late+res.Dropped != res.Total {
			t.Fatalf("%s: %d+%d+%d != %d", p, res.Good, res.Late, res.Dropped, res.Total)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig(Proactive)
	cfg.Queries = 1500
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Good != b.Good || a.Dropped != b.Dropped || a.Late != b.Late {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
}

func TestPolicyOrdering(t *testing.T) {
	// Fig. 15a: drop rate predict < proactive < reactive, goodput the
	// reverse order.
	results := map[PolicyKind]*Result{}
	for _, p := range Policies() {
		cfg := DefaultConfig(p)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[p] = res
	}
	re, pro, pred := results[Reactive], results[Proactive], results[Predict]
	if !(pred.DropRate < pro.DropRate && pro.DropRate < re.DropRate) {
		t.Fatalf("drop ordering violated: predict %.3f, proactive %.3f, reactive %.3f",
			pred.DropRate, pro.DropRate, re.DropRate)
	}
	if !(pred.NormalizedGoodput > pro.NormalizedGoodput && pro.NormalizedGoodput > re.NormalizedGoodput) {
		t.Fatalf("goodput ordering violated: predict %.3f, proactive %.3f, reactive %.3f",
			pred.NormalizedGoodput, pro.NormalizedGoodput, re.NormalizedGoodput)
	}
	// All three policies leave a nonzero residual drop rate (§7: even
	// proactive leaves ~17%, predict ~11%).
	if pred.DropRate <= 0 {
		t.Fatal("predict policy dropped nothing; workload not stressed")
	}
}

func TestReactiveDropsLate(t *testing.T) {
	// Reactive can only drop after the SLO has been consumed, so its drops
	// land in later stages than proactive's.
	re, err := Run(DefaultConfig(Reactive))
	if err != nil {
		t.Fatal(err)
	}
	pro, err := Run(DefaultConfig(Proactive))
	if err != nil {
		t.Fatal(err)
	}
	// "Late" here means after the rewrite LLM already ran, i.e. the drop
	// wasted LLM work.
	lateShare := func(r *Result) float64 {
		total := 0
		for _, n := range r.DropsPerStage {
			total += n
		}
		if total == 0 {
			return 0
		}
		return float64(total-r.DropsPerStage[StageRewrite]) / float64(total)
	}
	if lateShare(re) < lateShare(pro) {
		t.Fatalf("reactive late-stage drop share %.3f < proactive %.3f",
			lateShare(re), lateShare(pro))
	}
}

func TestLatencyDistributions(t *testing.T) {
	res, err := Run(DefaultConfig(Proactive))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Latencies {
		if len(s.Samples) == 0 {
			t.Fatalf("stage %s has no latency samples", StageNames[i])
		}
	}
	// Fig. 15b: retrieve is the fastest stage; search has the heaviest tail.
	med := func(stage int) float64 {
		return stats.Percentiles(res.Latencies[stage].Samples, 0.5)[0]
	}
	p99 := func(stage int) float64 {
		return stats.Percentiles(res.Latencies[stage].Samples, 0.99)[0]
	}
	if med(StageRetrieve) >= med(StageRewrite) || med(StageRetrieve) >= med(StageSearch) {
		t.Fatalf("retrieve should be fastest: med retrieve %.3f rewrite %.3f search %.3f",
			med(StageRetrieve), med(StageRewrite), med(StageSearch))
	}
	if p99(StageSearch) < 4*med(StageSearch) {
		t.Fatalf("search should be long-tailed: p99 %.3f vs median %.3f",
			p99(StageSearch), med(StageSearch))
	}
}

func TestNoDropBaseline(t *testing.T) {
	cfg := DefaultConfig(NoDrop)
	cfg.Queries = 3000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("nodrop dropped %d requests", res.Dropped)
	}
	if res.Good+res.Late != res.Total {
		t.Fatal("nodrop lost requests")
	}
}

func BenchmarkRAGProactive(b *testing.B) {
	cfg := DefaultConfig(Proactive)
	cfg.Queries = 2000
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
