// Package rag reproduces the paper's §7 case study: proactive request
// dropping applied to a Retrieval-Augmented-Generation workflow.
//
// The paper's stack (vLLM + Llama-3-8B, FAISS, Tavily web search; Table 2)
// is substituted by latency-faithful simulations of each stage family:
//
//   - rewrite:  continuous batching (a slot pool, no batch wait); latency
//     scales with the *output* length the model generates, which
//     is unknown until the rewrite completes.
//   - retrieve: batched vector-database lookup with near-constant latency.
//   - search:   external web API with unlimited concurrency and heavy
//     log-normal tail latency.
//   - generate: continuous batching; time-to-first-token is the prefill
//     time, which scales with the known input context length.
//
// retrieve and search run in parallel (a DAG), and generate waits for both.
// Three dropping policies are compared (Fig. 15a): reactive (drop only after
// the TTFT SLO is already violated), proactive (PARD-style estimates from
// recent averages and offline profiles), and predict (proactive plus oracle
// knowledge of rewrite output lengths).
package rag

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pard/internal/sim"
	"pard/internal/stats"
)

// PolicyKind selects the dropping policy.
type PolicyKind string

// RAG dropping policies (Fig. 15a).
const (
	Reactive  PolicyKind = "reactive"
	Proactive PolicyKind = "proactive"
	Predict   PolicyKind = "predict"
	NoDrop    PolicyKind = "nodrop"
)

// Policies lists the §7 comparison.
func Policies() []PolicyKind { return []PolicyKind{Predict, Reactive, Proactive} }

// Stage indices.
const (
	StageRewrite = iota
	StageRetrieve
	StageSearch
	StageGenerate
	numStages
)

// StageNames maps stage indices to Table 2 names.
var StageNames = [numStages]string{"rewrite", "retrieve", "search", "generate"}

// Config parameterizes a RAG run.
type Config struct {
	// Queries is the number of requests (paper: 10k from HotpotQA).
	Queries int
	// Rate is the mean arrival rate in req/s (Azure-trace-shaped arrivals).
	Rate float64
	// SLO is the time-to-first-token objective (paper: 5 s).
	SLO time.Duration
	// Policy selects the dropping policy.
	Policy PolicyKind
	Seed   int64

	// RewriteSlots / GenerateSlots bound LLM concurrency (continuous
	// batching capacity).
	RewriteSlots  int
	GenerateSlots int
	// SearchMedian / SearchSigma shape the log-normal web-search latency.
	SearchMedian time.Duration
	SearchSigma  float64
	// RetrieveDur is the profiled vector-DB lookup duration.
	RetrieveDur time.Duration
	// TokenTime is the per-token decode/prefill cost.
	TokenTime time.Duration
}

// DefaultConfig returns the Table 2 setup scaled for simulation.
func DefaultConfig(p PolicyKind) Config {
	return Config{
		Queries:       10000,
		Rate:          46,
		SLO:           5 * time.Second,
		Policy:        p,
		Seed:          1,
		RewriteSlots:  36,
		GenerateSlots: 96,
		SearchMedian:  800 * time.Millisecond,
		SearchSigma:   0.9,
		RetrieveDur:   35 * time.Millisecond,
		TokenTime:     9 * time.Millisecond,
	}
}

// request is one RAG query.
type request struct {
	id   int
	send time.Duration

	inputTokens   int
	rewriteTokens int // output length of the rewrite (oracle-known to predict)
	contextTokens int // generate prefill context

	rewriteDur time.Duration
	searchDur  time.Duration
	prefillDur time.Duration

	branchDone int // retrieve/search completions collected
	dropped    bool
	dropStage  int
	finished   bool
	ttft       time.Duration
}

// StageLatency records observed per-stage latencies for Fig. 15b.
type StageLatency struct {
	Name    string
	Samples []float64 // seconds
}

// Result summarizes one run.
type Result struct {
	Policy            PolicyKind
	Total             int
	Good              int
	Late              int
	Dropped           int
	DropRate          float64 // (dropped + late) / total
	NormalizedGoodput float64 // good / total
	DropsPerStage     [numStages]int
	Latencies         [numStages]StageLatency
}

// slotPool models continuous batching: up to cap requests run concurrently;
// excess waits FIFO. There is no batch wait — a releasing slot immediately
// admits the next request (§7: "continuous batching, eliminating batch
// wait").
type slotPool struct {
	cap     int
	busy    int
	waiting []func(now time.Duration)
}

func (s *slotPool) acquire(now time.Duration, fn func(now time.Duration)) {
	if s.busy < s.cap {
		s.busy++
		fn(now)
		return
	}
	s.waiting = append(s.waiting, fn)
}

func (s *slotPool) release(now time.Duration) {
	if len(s.waiting) > 0 {
		next := s.waiting[0]
		s.waiting = s.waiting[0:copy(s.waiting, s.waiting[1:])]
		next(now)
		return
	}
	s.busy--
}

type runner struct {
	cfg Config
	eng *sim.Engine
	rng *rand.Rand

	rewrite  *slotPool
	generate *slotPool

	// Recent-average estimators for the proactive policy.
	rewriteWin   *stats.SlidingWindow // total rewrite-stage latency (Fig. 15b probe)
	rewriteQWin  *stats.SlidingWindow // rewrite slot-queue wait
	rewriteDWin  *stats.SlidingWindow // rewrite decode durations (output-length proxy)
	searchWin    *stats.SlidingWindow
	generateQWin *stats.SlidingWindow // generate slot-queue wait (probe)
	generateDWin *stats.SlidingWindow // generate prefill durations

	reqs []*request
	res  *Result
}

// Run executes one RAG simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Queries <= 0 || cfg.Rate <= 0 || cfg.SLO <= 0 {
		return nil, fmt.Errorf("rag: queries, rate and SLO must be positive")
	}
	if cfg.RewriteSlots <= 0 || cfg.GenerateSlots <= 0 {
		return nil, fmt.Errorf("rag: slot pools must be positive")
	}
	switch cfg.Policy {
	case Reactive, Proactive, Predict, NoDrop:
	default:
		return nil, fmt.Errorf("rag: unknown policy %q", cfg.Policy)
	}
	r := &runner{
		cfg:          cfg,
		eng:          sim.New(cfg.Seed),
		rng:          rand.New(rand.NewSource(cfg.Seed + 1)),
		rewrite:      &slotPool{cap: cfg.RewriteSlots},
		generate:     &slotPool{cap: cfg.GenerateSlots},
		rewriteWin:   stats.NewSlidingWindow(10 * time.Second),
		rewriteQWin:  stats.NewSlidingWindow(10 * time.Second),
		rewriteDWin:  stats.NewSlidingWindow(10 * time.Second),
		searchWin:    stats.NewSlidingWindow(10 * time.Second),
		generateQWin: stats.NewSlidingWindow(10 * time.Second),
		generateDWin: stats.NewSlidingWindow(10 * time.Second),
	}
	r.res = &Result{Policy: cfg.Policy}
	for i := range r.res.Latencies {
		r.res.Latencies[i] = StageLatency{Name: StageNames[i]}
	}
	r.inject()
	r.eng.Run(0)
	r.finalize()
	return r.res, nil
}

// sampleRequest draws workload parameters: HotpotQA-like question lengths,
// rewrite output lengths correlated with input, and long-tail search.
func (r *runner) sampleRequest(id int, at time.Duration) *request {
	in := 16 + r.rng.Intn(48) // question tokens
	out := 10 + int(r.rng.ExpFloat64()*70)
	if out > 600 {
		out = 600
	}
	ctx := in + out + 300 + r.rng.Intn(900) // retrieved + searched context
	req := &request{
		id:            id,
		send:          at,
		inputTokens:   in,
		rewriteTokens: out,
		contextTokens: ctx,
		dropStage:     -1,
	}
	req.rewriteDur = 60*time.Millisecond + time.Duration(out)*r.cfg.TokenTime
	req.prefillDur = 40*time.Millisecond + time.Duration(ctx)*r.cfg.TokenTime/4
	// Log-normal search latency with occasional multi-second tail.
	ln := math.Exp(r.rng.NormFloat64() * r.cfg.SearchSigma)
	req.searchDur = time.Duration(float64(r.cfg.SearchMedian) * ln)
	return req
}

func (r *runner) inject() {
	// Azure-shaped burstiness: a non-homogeneous Poisson process whose rate
	// swings between ≈0.4× and ≈1.8× the mean on a ~2 min period, pushing
	// the LLM pools into sustained transient overload (the regime where the
	// three policies differ). Lewis-Shedler thinning over wall time.
	rate := func(t float64) float64 {
		s := math.Sin(2 * math.Pi * t / 120)
		return r.cfg.Rate * (0.5 + 0.9*s*s)
	}
	maxRate := r.cfg.Rate * 1.4
	t := 0.0
	for i := 0; i < r.cfg.Queries; i++ {
		for {
			t += r.rng.ExpFloat64() / maxRate
			if r.rng.Float64()*maxRate <= rate(t) {
				break
			}
		}
		at := time.Duration(t * float64(time.Second))
		req := r.sampleRequest(i, at)
		r.reqs = append(r.reqs, req)
		r.eng.Schedule(at, "rag-arrive", func(e *sim.Engine) { r.enterRewrite(req, e.Now()) })
	}
}

// estimate returns the policy's TTFT estimate for the remaining stages when
// the request is about to enter the given stage.
func (r *runner) estimate(req *request, stage int, now time.Duration) time.Duration {
	elapsed := now - req.send
	if r.cfg.Policy == Reactive {
		return elapsed // reactive: only what has already happened
	}
	var rest time.Duration
	switch stage {
	case StageRewrite:
		// Both estimators share the observed slot-queue wait; they differ in
		// the decode term: proactive can only use the recent average decode
		// duration (output length is unknown before the rewrite runs), while
		// predict has oracle knowledge of this request's output length —
		// exactly the gap §7 quantifies.
		rest += r.queueEstimate(r.rewrite, r.meanDur(r.rewriteDWin, now, 500*time.Millisecond))
		if r.cfg.Policy == Predict {
			rest += req.rewriteDur
		} else if d, ok := r.rewriteDWin.Mean(now); ok {
			rest += time.Duration(d * float64(time.Second))
		} else {
			rest += 150 * time.Millisecond
		}
		fallthrough
	case StageRetrieve, StageSearch:
		// Parallel branch: bounded by the slower of retrieve and estimated
		// search.
		search := 1200 * time.Millisecond
		if m, ok := r.searchWin.Mean(now); ok {
			search = time.Duration(m * float64(time.Second))
		}
		if r.cfg.RetrieveDur > search {
			search = r.cfg.RetrieveDur
		}
		rest += search
		fallthrough
	case StageGenerate:
		rest += req.prefillDur // profiled from known context length
		rest += r.queueEstimate(r.generate, r.meanDur(r.generateDWin, now, 2*time.Second))
	}
	return elapsed + rest
}

// meanDur returns the window's mean in duration form, or the fallback when
// no samples exist yet.
func (r *runner) meanDur(w *stats.SlidingWindow, now time.Duration, fallback time.Duration) time.Duration {
	if m, ok := w.Mean(now); ok {
		return time.Duration(m * float64(time.Second))
	}
	return fallback
}

// queueEstimate predicts a slot pool's queue wait from its *instantaneous*
// state via Little's law: waiting × mean-service / slots. PARD's bi-
// directional runtime information is exactly this kind of live queue state;
// estimators built from completed-request windows lag the queue and
// mis-drop during transitions (the death-spiral failure mode of naive
// admission control).
func (r *runner) queueEstimate(pool *slotPool, meanService time.Duration) time.Duration {
	if pool.cap == 0 {
		return 0
	}
	return time.Duration(len(pool.waiting)) * meanService / time.Duration(pool.cap)
}

// admit applies the dropping policy before a stage; false means dropped.
func (r *runner) admit(req *request, stage int, now time.Duration) bool {
	if req.dropped {
		return false
	}
	if r.cfg.Policy == NoDrop {
		return true
	}
	if r.estimate(req, stage, now) <= r.cfg.SLO {
		return true
	}
	req.dropped = true
	req.dropStage = stage
	r.res.DropsPerStage[stage]++
	return false
}

func (r *runner) enterRewrite(req *request, now time.Duration) {
	if !r.admit(req, StageRewrite, now) {
		return
	}
	enter := now
	r.rewrite.acquire(now, func(start time.Duration) {
		end := start + req.rewriteDur
		r.eng.Schedule(end, "rewrite-done", func(e *sim.Engine) {
			total := e.Now() - enter // slot queueing + decoding
			r.rewriteWin.Add(e.Now(), total.Seconds())
			r.rewriteQWin.Add(e.Now(), (start - enter).Seconds())
			r.rewriteDWin.Add(e.Now(), req.rewriteDur.Seconds())
			r.record(StageRewrite, total)
			r.rewrite.release(e.Now())
			r.enterBranches(req, e.Now())
		})
	})
}

func (r *runner) enterBranches(req *request, now time.Duration) {
	okRetrieve := r.admit(req, StageRetrieve, now)
	if !okRetrieve {
		return
	}
	// Retrieve branch (batched vector DB; modeled as near-constant).
	retEnd := now + r.cfg.RetrieveDur + time.Duration(r.rng.Intn(10))*time.Millisecond
	r.eng.Schedule(retEnd, "retrieve-done", func(e *sim.Engine) {
		r.record(StageRetrieve, e.Now()-now)
		r.branchDone(req, e.Now())
	})
	// Search branch (web API, unbounded concurrency, heavy tail).
	searchEnd := now + req.searchDur
	r.eng.Schedule(searchEnd, "search-done", func(e *sim.Engine) {
		r.searchWin.Add(e.Now(), req.searchDur.Seconds())
		r.record(StageSearch, req.searchDur)
		r.branchDone(req, e.Now())
	})
}

func (r *runner) branchDone(req *request, now time.Duration) {
	req.branchDone++
	if req.branchDone < 2 || req.dropped {
		return
	}
	r.enterGenerate(req, now)
}

func (r *runner) enterGenerate(req *request, now time.Duration) {
	if !r.admit(req, StageGenerate, now) {
		return
	}
	enter := now
	r.generate.acquire(now, func(start time.Duration) {
		end := start + req.prefillDur
		r.eng.Schedule(end, "prefill-done", func(e *sim.Engine) {
			r.generateQWin.Add(e.Now(), (start - enter).Seconds())
			r.generateDWin.Add(e.Now(), req.prefillDur.Seconds())
			r.record(StageGenerate, e.Now()-enter)
			r.generate.release(e.Now())
			req.finished = true
			req.ttft = e.Now() - req.send
		})
	})
}

func (r *runner) record(stage int, lat time.Duration) {
	s := &r.res.Latencies[stage]
	if len(s.Samples) < 20000 {
		s.Samples = append(s.Samples, lat.Seconds())
	}
}

func (r *runner) finalize() {
	res := r.res
	res.Total = len(r.reqs)
	for _, req := range r.reqs {
		switch {
		case req.finished && req.ttft <= r.cfg.SLO:
			res.Good++
		case req.finished:
			res.Late++
		default:
			res.Dropped++
		}
	}
	if res.Total > 0 {
		res.DropRate = float64(res.Dropped+res.Late) / float64(res.Total)
		res.NormalizedGoodput = float64(res.Good) / float64(res.Total)
	}
}
