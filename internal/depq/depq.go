// Package depq implements the double-ended priority queue PARD uses to
// reorder requests by remaining latency budget (§4.3), plus a FIFO queue
// behind the same interface for arrival-order (reactive) policies.
//
// The DEPQ is a min-max heap (Atkinson et al., 1986): even tree levels obey
// the min-heap property, odd levels the max-heap property, so both the
// smallest and largest key are accessible in O(1) and removable in O(log n).
// PARD pops from the min end under Low-Budget-First and the max end under
// High-Budget-First.
package depq

import "math/bits"

// Queue is the common interface over the DEPQ and the FIFO queue. Keys are
// int64 priorities (PARD uses deadline timestamps in nanoseconds: a smaller
// key means an earlier deadline, i.e. a smaller remaining budget).
type Queue[T any] interface {
	// Push inserts value with the given priority key.
	Push(value T, key int64)
	// PopMin removes and returns the entry with the smallest key.
	PopMin() (T, int64, bool)
	// PopMax removes and returns the entry with the largest key.
	PopMax() (T, int64, bool)
	// PeekMin returns the smallest-key entry without removing it.
	PeekMin() (T, int64, bool)
	// PeekMax returns the largest-key entry without removing it.
	PeekMax() (T, int64, bool)
	// Len returns the number of queued entries.
	Len() int
	// Drain removes and returns all entries in unspecified order.
	Drain() []T
}

type entry[T any] struct {
	value T
	key   int64
	seq   uint64 // insertion sequence; breaks key ties FIFO for determinism
}

// DEPQ is a double-ended priority queue implemented as a min-max heap.
// The zero value is ready to use. Not safe for concurrent use.
type DEPQ[T any] struct {
	h   []entry[T]
	seq uint64
}

// New returns an empty DEPQ.
func New[T any]() *DEPQ[T] { return &DEPQ[T]{} }

// Len returns the number of queued entries.
func (q *DEPQ[T]) Len() int { return len(q.h) }

// less orders entries by key, then insertion order. It defines the "min"
// direction of the heap.
func (q *DEPQ[T]) less(i, j int) bool {
	if q.h[i].key != q.h[j].key {
		return q.h[i].key < q.h[j].key
	}
	return q.h[i].seq < q.h[j].seq
}

func isMinLevel(i int) bool {
	// Level of node i in a binary heap is floor(log2(i+1)); even levels are
	// min levels.
	return bits.Len(uint(i)+1)%2 == 1
}

func parent(i int) int      { return (i - 1) / 2 }
func grandparent(i int) int { return (i - 3) / 4 }
func hasGrandparent(i int) bool {
	return i >= 3
}

// Push inserts value with the given key.
func (q *DEPQ[T]) Push(value T, key int64) {
	q.h = append(q.h, entry[T]{value: value, key: key, seq: q.seq})
	q.seq++
	q.bubbleUp(len(q.h) - 1)
}

func (q *DEPQ[T]) swap(i, j int) { q.h[i], q.h[j] = q.h[j], q.h[i] }

func (q *DEPQ[T]) bubbleUp(i int) {
	if i == 0 {
		return
	}
	p := parent(i)
	if isMinLevel(i) {
		if q.less(p, i) {
			q.swap(i, p)
			q.bubbleUpMax(p)
		} else {
			q.bubbleUpMin(i)
		}
	} else {
		if q.less(i, p) {
			q.swap(i, p)
			q.bubbleUpMin(p)
		} else {
			q.bubbleUpMax(i)
		}
	}
}

func (q *DEPQ[T]) bubbleUpMin(i int) {
	for hasGrandparent(i) {
		g := grandparent(i)
		if !q.less(i, g) {
			return
		}
		q.swap(i, g)
		i = g
	}
}

func (q *DEPQ[T]) bubbleUpMax(i int) {
	for hasGrandparent(i) {
		g := grandparent(i)
		if !q.less(g, i) {
			return
		}
		q.swap(i, g)
		i = g
	}
}

// minIndex returns the index holding the smallest key (always the root).
func (q *DEPQ[T]) minIndex() int { return 0 }

// maxIndex returns the index holding the largest key.
func (q *DEPQ[T]) maxIndex() int {
	switch len(q.h) {
	case 0:
		return -1
	case 1:
		return 0
	case 2:
		return 1
	default:
		if q.less(1, 2) {
			return 2
		}
		return 1
	}
}

// PeekMin returns the entry with the smallest key without removing it.
func (q *DEPQ[T]) PeekMin() (T, int64, bool) {
	var zero T
	if len(q.h) == 0 {
		return zero, 0, false
	}
	e := q.h[q.minIndex()]
	return e.value, e.key, true
}

// PeekMax returns the entry with the largest key without removing it.
func (q *DEPQ[T]) PeekMax() (T, int64, bool) {
	var zero T
	if len(q.h) == 0 {
		return zero, 0, false
	}
	e := q.h[q.maxIndex()]
	return e.value, e.key, true
}

// PopMin removes and returns the entry with the smallest key.
func (q *DEPQ[T]) PopMin() (T, int64, bool) {
	var zero T
	if len(q.h) == 0 {
		return zero, 0, false
	}
	return q.removeAt(q.minIndex())
}

// PopMax removes and returns the entry with the largest key.
func (q *DEPQ[T]) PopMax() (T, int64, bool) {
	var zero T
	if len(q.h) == 0 {
		return zero, 0, false
	}
	return q.removeAt(q.maxIndex())
}

func (q *DEPQ[T]) removeAt(i int) (T, int64, bool) {
	e := q.h[i]
	last := len(q.h) - 1
	q.h[i] = q.h[last]
	var zero entry[T]
	q.h[last] = zero
	q.h = q.h[:last]
	if i < len(q.h) {
		q.trickleDown(i)
		q.bubbleUp(i)
	}
	return e.value, e.key, true
}

func (q *DEPQ[T]) trickleDown(i int) {
	if isMinLevel(i) {
		q.trickleDownMin(i)
	} else {
		q.trickleDownMax(i)
	}
}

// descendants returns indices of the children and grandchildren of i that
// exist, appended to buf.
func (q *DEPQ[T]) descendants(i int, buf []int) []int {
	n := len(q.h)
	for c := 2*i + 1; c <= 2*i+2 && c < n; c++ {
		buf = append(buf, c)
		for g := 2*c + 1; g <= 2*c+2 && g < n; g++ {
			buf = append(buf, g)
		}
	}
	return buf
}

func (q *DEPQ[T]) trickleDownMin(i int) {
	var buf [6]int
	for {
		ds := q.descendants(i, buf[:0])
		if len(ds) == 0 {
			return
		}
		m := ds[0]
		for _, d := range ds[1:] {
			if q.less(d, m) {
				m = d
			}
		}
		if m > 2*i+2 { // grandchild
			if !q.less(m, i) {
				return
			}
			q.swap(m, i)
			if q.less(parent(m), m) {
				q.swap(m, parent(m))
			}
			i = m
			continue
		}
		// child
		if q.less(m, i) {
			q.swap(m, i)
		}
		return
	}
}

func (q *DEPQ[T]) trickleDownMax(i int) {
	var buf [6]int
	for {
		ds := q.descendants(i, buf[:0])
		if len(ds) == 0 {
			return
		}
		m := ds[0]
		for _, d := range ds[1:] {
			if q.less(m, d) {
				m = d
			}
		}
		if m > 2*i+2 { // grandchild
			if !q.less(i, m) {
				return
			}
			q.swap(m, i)
			if q.less(m, parent(m)) {
				q.swap(m, parent(m))
			}
			i = m
			continue
		}
		if q.less(i, m) {
			q.swap(m, i)
		}
		return
	}
}

// Drain removes and returns all values in unspecified order.
func (q *DEPQ[T]) Drain() []T {
	out := make([]T, 0, len(q.h))
	for _, e := range q.h {
		out = append(out, e.value)
	}
	q.h = q.h[:0]
	return out
}

// FIFO is an arrival-order queue implementing Queue. PopMin and PopMax both
// return the oldest entry, so reactive policies that scan "in arrival order"
// behave identically regardless of which end the caller pops.
type FIFO[T any] struct {
	buf  []entry[T]
	head int
}

// NewFIFO returns an empty FIFO queue.
func NewFIFO[T any]() *FIFO[T] { return &FIFO[T]{} }

// Len returns the number of queued entries.
func (q *FIFO[T]) Len() int { return len(q.buf) - q.head }

// Push appends value; key is stored but does not affect order.
func (q *FIFO[T]) Push(value T, key int64) {
	q.buf = append(q.buf, entry[T]{value: value, key: key})
}

func (q *FIFO[T]) pop() (T, int64, bool) {
	var zero T
	if q.Len() == 0 {
		return zero, 0, false
	}
	e := q.buf[q.head]
	var zentry entry[T]
	q.buf[q.head] = zentry
	q.head++
	if q.head > 1024 && q.head*2 > len(q.buf) {
		q.buf = append([]entry[T](nil), q.buf[q.head:]...)
		q.head = 0
	}
	return e.value, e.key, true
}

// PopMin removes and returns the oldest entry.
func (q *FIFO[T]) PopMin() (T, int64, bool) { return q.pop() }

// PopMax removes and returns the oldest entry (arrival order).
func (q *FIFO[T]) PopMax() (T, int64, bool) { return q.pop() }

// PeekMin returns the oldest entry without removing it.
func (q *FIFO[T]) PeekMin() (T, int64, bool) {
	var zero T
	if q.Len() == 0 {
		return zero, 0, false
	}
	e := q.buf[q.head]
	return e.value, e.key, true
}

// PeekMax returns the oldest entry without removing it.
func (q *FIFO[T]) PeekMax() (T, int64, bool) { return q.PeekMin() }

// Drain removes and returns all values in arrival order.
func (q *FIFO[T]) Drain() []T {
	out := make([]T, 0, q.Len())
	for i := q.head; i < len(q.buf); i++ {
		out = append(out, q.buf[i].value)
	}
	q.buf = q.buf[:0]
	q.head = 0
	return out
}
