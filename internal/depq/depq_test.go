package depq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	q := New[string]()
	if q.Len() != 0 {
		t.Fatal("new queue not empty")
	}
	if _, _, ok := q.PopMin(); ok {
		t.Fatal("PopMin on empty returned ok")
	}
	if _, _, ok := q.PopMax(); ok {
		t.Fatal("PopMax on empty returned ok")
	}
	if _, _, ok := q.PeekMin(); ok {
		t.Fatal("PeekMin on empty returned ok")
	}
	if _, _, ok := q.PeekMax(); ok {
		t.Fatal("PeekMax on empty returned ok")
	}
}

func TestSingleElement(t *testing.T) {
	q := New[string]()
	q.Push("a", 5)
	if v, k, ok := q.PeekMin(); !ok || v != "a" || k != 5 {
		t.Fatalf("PeekMin = %v %v %v", v, k, ok)
	}
	if v, k, ok := q.PeekMax(); !ok || v != "a" || k != 5 {
		t.Fatalf("PeekMax = %v %v %v", v, k, ok)
	}
	if v, _, ok := q.PopMax(); !ok || v != "a" {
		t.Fatalf("PopMax = %v %v", v, ok)
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty after pop")
	}
}

func TestTwoElements(t *testing.T) {
	q := New[int]()
	q.Push(1, 10)
	q.Push(2, 3)
	if v, _, _ := q.PeekMin(); v != 2 {
		t.Fatalf("PeekMin = %d, want 2", v)
	}
	if v, _, _ := q.PeekMax(); v != 1 {
		t.Fatalf("PeekMax = %d, want 1", v)
	}
}

func TestPopMinAscending(t *testing.T) {
	q := New[int]()
	keys := []int64{5, 3, 9, 1, 7, 2, 8, 6, 4, 0}
	for i, k := range keys {
		q.Push(i, k)
	}
	var got []int64
	for {
		_, k, ok := q.PopMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("PopMin sequence not ascending: %v", got)
		}
	}
	if len(got) != len(keys) {
		t.Fatalf("popped %d, want %d", len(got), len(keys))
	}
}

func TestPopMaxDescending(t *testing.T) {
	q := New[int]()
	keys := []int64{5, 3, 9, 1, 7, 2, 8, 6, 4, 0}
	for i, k := range keys {
		q.Push(i, k)
	}
	var got []int64
	for {
		_, k, ok := q.PopMax()
		if !ok {
			break
		}
		got = append(got, k)
	}
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1] {
			t.Fatalf("PopMax sequence not descending: %v", got)
		}
	}
}

func TestTiesPopFIFO(t *testing.T) {
	q := New[int]()
	for i := 0; i < 5; i++ {
		q.Push(i, 42)
	}
	for i := 0; i < 5; i++ {
		v, _, ok := q.PopMin()
		if !ok || v != i {
			t.Fatalf("tie pop %d = %d, want insertion order", i, v)
		}
	}
}

func TestDrain(t *testing.T) {
	q := New[int]()
	for i := 0; i < 10; i++ {
		q.Push(i, int64(i))
	}
	out := q.Drain()
	if len(out) != 10 || q.Len() != 0 {
		t.Fatalf("drain len = %d, q len = %d", len(out), q.Len())
	}
	sort.Ints(out)
	for i, v := range out {
		if v != i {
			t.Fatalf("drain lost values: %v", out)
		}
	}
}

// model-based test: interleaved random ops vs a sorted-slice reference.
func TestModelBasedRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	q := New[int64]()
	var model []int64 // kept sorted
	insert := func(k int64) {
		i := sort.Search(len(model), func(i int) bool { return model[i] > k })
		model = append(model, 0)
		copy(model[i+1:], model[i:])
		model[i] = k
	}
	for op := 0; op < 50000; op++ {
		switch r := rng.Intn(4); {
		case r == 0 || len(model) == 0:
			k := int64(rng.Intn(1000))
			q.Push(k, k)
			insert(k)
		case r == 1:
			_, k, ok := q.PopMin()
			if !ok || k != model[0] {
				t.Fatalf("op %d: PopMin = %d ok=%v, want %d", op, k, ok, model[0])
			}
			model = model[1:]
		case r == 2:
			_, k, ok := q.PopMax()
			if !ok || k != model[len(model)-1] {
				t.Fatalf("op %d: PopMax = %d ok=%v, want %d", op, k, ok, model[len(model)-1])
			}
			model = model[:len(model)-1]
		default:
			_, kmin, _ := q.PeekMin()
			_, kmax, _ := q.PeekMax()
			if kmin != model[0] || kmax != model[len(model)-1] {
				t.Fatalf("op %d: peeks (%d,%d) want (%d,%d)", op, kmin, kmax, model[0], model[len(model)-1])
			}
		}
		if q.Len() != len(model) {
			t.Fatalf("op %d: len %d vs model %d", op, q.Len(), len(model))
		}
	}
}

// Property: pushing arbitrary keys then alternately popping min and max
// consumes keys from both ends of the sorted order.
func TestPropertyAlternatingPops(t *testing.T) {
	f := func(keys []int64) bool {
		q := New[int]()
		sorted := append([]int64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, k := range keys {
			q.Push(i, k)
		}
		lo, hi := 0, len(sorted)-1
		for i := 0; lo <= hi; i++ {
			if i%2 == 0 {
				_, k, ok := q.PopMin()
				if !ok || k != sorted[lo] {
					return false
				}
				lo++
			} else {
				_, k, ok := q.PopMax()
				if !ok || k != sorted[hi] {
					return false
				}
				hi--
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: min-max heap level invariant holds after every push.
func TestPropertyHeapInvariant(t *testing.T) {
	f := func(keys []int64) bool {
		q := New[int]()
		for i, k := range keys {
			q.Push(i, k)
			if !checkInvariant(q) {
				return false
			}
		}
		// and after interleaved pops
		for q.Len() > 0 {
			if q.Len()%2 == 0 {
				q.PopMin()
			} else {
				q.PopMax()
			}
			if !checkInvariant(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// checkInvariant verifies every node on a min level is <= all descendants and
// every node on a max level is >= all descendants.
func checkInvariant(q *DEPQ[int]) bool {
	n := len(q.h)
	var walk func(root, i int, min bool) bool
	walk = func(root, i int, min bool) bool {
		if i >= n {
			return true
		}
		if i != root {
			if min && q.h[i].key < q.h[root].key {
				return false
			}
			if !min && q.h[i].key > q.h[root].key {
				return false
			}
		}
		return walk(root, 2*i+1, min) && walk(root, 2*i+2, min)
	}
	for i := 0; i < n; i++ {
		if !walk(i, i, isMinLevel(i)) {
			return false
		}
	}
	return true
}

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO[int]()
	for i := 0; i < 10; i++ {
		q.Push(i, int64(100-i)) // keys deliberately reversed: must not matter
	}
	for i := 0; i < 5; i++ {
		v, _, ok := q.PopMin()
		if !ok || v != i {
			t.Fatalf("FIFO PopMin = %d, want %d", v, i)
		}
	}
	for i := 5; i < 10; i++ {
		v, _, ok := q.PopMax()
		if !ok || v != i {
			t.Fatalf("FIFO PopMax = %d, want %d (arrival order)", v, i)
		}
	}
	if _, _, ok := q.PopMin(); ok {
		t.Fatal("empty FIFO popped")
	}
}

func TestFIFOPeekAndDrain(t *testing.T) {
	q := NewFIFO[string]()
	q.Push("a", 1)
	q.Push("b", 2)
	if v, _, _ := q.PeekMin(); v != "a" {
		t.Fatalf("PeekMin = %v", v)
	}
	if v, _, _ := q.PeekMax(); v != "a" {
		t.Fatalf("PeekMax = %v, want arrival head", v)
	}
	out := q.Drain()
	if len(out) != 2 || out[0] != "a" || out[1] != "b" {
		t.Fatalf("drain = %v", out)
	}
}

func TestFIFOCompaction(t *testing.T) {
	q := NewFIFO[int]()
	for i := 0; i < 100000; i++ {
		q.Push(i, 0)
		if i%2 == 1 {
			q.PopMin()
		}
	}
	if len(q.buf)-q.head != q.Len() {
		t.Fatal("length accounting broken")
	}
	if len(q.buf) > 3*q.Len()+2048 {
		t.Fatalf("FIFO failed to compact: backing %d for %d live", len(q.buf), q.Len())
	}
}

// Both implementations satisfy the Queue interface.
var (
	_ Queue[int] = (*DEPQ[int])(nil)
	_ Queue[int] = (*FIFO[int])(nil)
)

func BenchmarkDEPQPushPopMin(b *testing.B) {
	q := New[int]()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		q.Push(i, int64(rng.Intn(1<<20)))
		if q.Len() > 1024 {
			q.PopMin()
		}
	}
}

func BenchmarkDEPQPushPopBothEnds(b *testing.B) {
	q := New[int]()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		q.Push(i, int64(rng.Intn(1<<20)))
		if q.Len() > 1024 {
			if i%2 == 0 {
				q.PopMin()
			} else {
				q.PopMax()
			}
		}
	}
}

func BenchmarkFIFOPushPop(b *testing.B) {
	q := NewFIFO[int]()
	for i := 0; i < b.N; i++ {
		q.Push(i, 0)
		if q.Len() > 1024 {
			q.PopMin()
		}
	}
}
