package sched

import (
	"cmp"
	"fmt"
	"slices"
	"time"
)

// This file implements the deterministic ordered mailboxes of the sharded
// execution path. Two kinds of cross-module traffic flow through them:
//
//   - posts: events one lane schedules on another (batch hand-off, DAG
//     fan-out and merge hops). They are buffered in the sending lane's
//     outbox and delivered at the window barrier sorted by
//     (virtual time, source module, send sequence).
//   - intents: request terminations (drops and completions) decided inside a
//     window. They are buffered per lane and committed at the barrier sorted
//     by (virtual time, module, decision sequence), so the globally visible
//     Request state — and the order of host OnDrop/OnDone callbacks — is a
//     pure function of the workload, independent of shard count.
//
// The sequential executor path (a ShardedExecutor with one shard) runs the
// exact same machinery single-threaded, which is what makes "sharded ≡
// sequential" hold by construction and lets the differential harness verify
// it empirically.

// post is one cross-lane event in flight.
type post struct {
	src, dst int
	at       time.Duration
	ev       laneEvent
}

// sortPosts orders a merged mailbox by (virtual time, source module). Posts
// are gathered in (source module, send order) sequence, so the stable sort
// yields the full deterministic key (time, module, sequence). The sort is
// slices.SortStableFunc — in-place and reflection-free — so a barrier's
// mailbox merge allocates nothing in steady state.
func sortPosts(posts []post) {
	slices.SortStableFunc(posts, func(a, b post) int {
		if a.at != b.at {
			return cmp.Compare(a.at, b.at)
		}
		return cmp.Compare(a.src, b.src)
	})
}

// laneScheduler is the contract a lane-aware executor offers the cluster:
// per-lane event scheduling from an identified source context plus a
// barrier hook for intent commits. *ShardedExecutor implements it; classic
// executors (SimExecutor, TimerExecutor, ManualExecutor) do not, and the
// cluster falls back to plain Schedule with immediate terminations.
type laneScheduler interface {
	Executor
	// scheduleLaneEvent schedules ev on lane dst; src is the executing lane
	// or -1 for host/control/barrier context. The event travels by value
	// (typed hot-path ops carry no closure; see laneEvent).
	scheduleLaneEvent(src, dst int, at time.Duration, ev laneEvent)
	// setBarrierHook registers the cluster's barrier commit; a non-nil
	// error aborts the run (multi-group transport failures).
	setBarrierHook(func() error)
	// parallelLanes fans a lane-local function out over all lanes from
	// control context.
	parallelLanes(fn func(lane int))
	// Lanes returns the executor's lane count (must equal the module count).
	Lanes() int
}

// intent is one deferred request termination.
type intent struct {
	at  time.Duration
	req *Request
	// drop is true for a drop at the module, false for a sink completion.
	drop bool
}

// laneBridge carries the cluster's per-lane deferred state while running on
// a lane-aware executor.
type laneBridge struct {
	cl *Cluster
	// intents[k] holds module k's terminations of the current window, in
	// decision order.
	intents [][]intent
	// retired[k] is module k's lane-local view of requests it terminated in
	// the current window: the deciding lane must see its own drops
	// immediately, while other lanes learn of them at the next barrier (via
	// the committed Request flags). Cleared at every barrier.
	retired []map[*Request]struct{}
	// scratch reuses the merged commit buffer across barriers.
	scratch []mergedIntent
}

// mergedIntent tags an intent with its sort key (module, then per-lane
// decision order preserved by the stable sort).
type mergedIntent struct {
	intent
	mod int
}

func newLaneBridge(cl *Cluster, n int) *laneBridge {
	b := &laneBridge{cl: cl, intents: make([][]intent, n), retired: make([]map[*Request]struct{}, n)}
	for k := range b.retired {
		b.retired[k] = make(map[*Request]struct{})
	}
	return b
}

// add defers one termination decided by module k.
func (b *laneBridge) add(k int, req *Request, at time.Duration, drop bool) {
	b.intents[k] = append(b.intents[k], intent{at: at, req: req, drop: drop})
	b.retired[k][req] = struct{}{}
}

// sees reports whether module k already considers req terminated: globally
// committed, or terminated by k itself inside the current window.
func (b *laneBridge) sees(k int, req *Request) bool {
	_, ok := b.retired[k][req]
	return ok
}

// seesAny reports whether ANY module holds a pending termination for req.
// Multi-group control context uses it: under a single group, control-context
// terminations commit immediately and are visible across modules within the
// same control event; deferred multi-group terminations must reproduce that
// visibility, so the whole pending set counts.
func (b *laneBridge) seesAny(req *Request) bool {
	for k := range b.retired {
		if _, ok := b.retired[k][req]; ok {
			return true
		}
	}
	return false
}

// encodeIntents drains the pending intents into their wire shape, gathered
// in (module, decision order) — the same order commit's merge would have
// gathered them. The retired maps stay populated until commitWire applies
// the merged set (the deciding module must keep seeing its own intents
// until the commit makes them globally visible).
func (b *laneBridge) encodeIntents() []WireIntent {
	var out []WireIntent
	for k, list := range b.intents {
		for _, it := range list {
			out = append(out, WireIntent{At: it.at, Mod: int32(k), Req: it.req.ID, Drop: it.drop})
		}
		b.intents[k] = list[:0]
	}
	return out
}

// commitWire applies the all-gathered intents of every lane group in
// (virtual time, module, decision order) order — the identical total order
// a single group's commit produces, because equal (time, module) runs come
// from exactly one group and the concatenation preserves their decision
// order. resolve maps wire request IDs onto this group's replica slab.
func (b *laneBridge) commitWire(all []BarrierMsg, resolve func(uint64) *Request) error {
	merged := b.scratch[:0]
	for i := range all {
		for _, wi := range all[i].Intents {
			req := resolve(wi.Req)
			if req == nil {
				b.scratch = merged[:0]
				return fmt.Errorf("sched: intent for unknown request %d from group %d", wi.Req, all[i].Group)
			}
			merged = append(merged, mergedIntent{intent: intent{at: wi.At, req: req, drop: wi.Drop}, mod: int(wi.Mod)})
		}
	}
	slices.SortStableFunc(merged, func(a, b mergedIntent) int {
		if a.at != b.at {
			return cmp.Compare(a.at, b.at)
		}
		return cmp.Compare(a.mod, b.mod)
	})
	for _, m := range merged {
		if m.drop {
			b.cl.commitDrop(m.req, m.mod, m.at)
		} else {
			b.cl.commitComplete(m.req, m.at)
		}
	}
	b.scratch = merged[:0]
	for k := range b.retired {
		clear(b.retired[k])
	}
	return nil
}

// commit applies every deferred termination in (virtual time, module,
// decision order) order. Committing sets the shared Request flags (making
// the termination visible to every lane from the next window on), counts the
// drop against the deciding module, and fires the host callback. The first
// intent for a request in commit order wins; later ones — a second branch of
// a DAG deciding to drop the same request inside one window — are no-ops,
// exactly as under sequential execution.
func (b *laneBridge) commit() {
	merged := b.scratch[:0]
	for k, list := range b.intents {
		for _, it := range list {
			merged = append(merged, mergedIntent{intent: it, mod: k})
		}
		b.intents[k] = list[:0]
	}
	if len(merged) == 0 {
		b.scratch = merged
		return
	}
	slices.SortStableFunc(merged, func(a, b mergedIntent) int {
		if a.at != b.at {
			return cmp.Compare(a.at, b.at)
		}
		return cmp.Compare(a.mod, b.mod)
	})
	for _, m := range merged {
		if m.drop {
			b.cl.commitDrop(m.req, m.mod, m.at)
		} else {
			b.cl.commitComplete(m.req, m.at)
		}
	}
	b.scratch = merged[:0]
	for k := range b.retired {
		// clear keeps the map's storage, so a steady-state barrier reuses it
		// instead of re-allocating a map per module per window.
		clear(b.retired[k])
	}
}
