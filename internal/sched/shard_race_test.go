package sched_test

import (
	"fmt"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

// TestShardedExecutorRaceHammer hammers the sharded execution path with the
// nastiest concurrency mix the core supports — parallel DAG branches sharing
// Request state across concurrently running lanes, the scaling engine
// growing/shrinking worker pools between windows, injected machine crashes,
// every probe recording, and shard counts that tile the lanes unevenly — so
// that `go test -race` (CI runs it on every push) proves the lane isolation
// contract: within a window, lanes touch disjoint mutable state, and
// everything cross-lane is mailbox- or barrier-mediated. Modeled on
// internal/core's board race test, which plays the same role for the live
// server's shared state board.
func TestShardedExecutorRaceHammer(t *testing.T) {
	specs := map[string]*pipeline.Spec{
		"da":     pipeline.DA(),
		"wide":   wideDAG(),
		"da-dyn": pipeline.DADynamic(0.5),
	}
	shardCounts := []int{2, 3, 5, 8}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		shardCounts = []int{3, 8}
		seeds = seeds[:1]
	}
	for name, spec := range specs {
		for _, shards := range shardCounts {
			for _, seed := range seeds {
				spec, shards, seed := spec, shards, seed
				t.Run(fmt.Sprintf("%s/sh%d/seed%d", name, shards, seed), func(t *testing.T) {
					t.Parallel() // stack executors on top of each other too
					tr := trace.MustGenerate(trace.Config{
						Kind:     trace.Azure,
						Duration: 6 * time.Second,
						PeakRate: 900, // overload: continuous drop pressure
						Seed:     seed,
					})
					_, err := simgpu.Run(simgpu.Config{
						Spec:       spec,
						PolicyName: "pard",
						Trace:      tr,
						Seed:       seed,
						SyncPeriod: 150 * time.Millisecond,
						Shards:     shards,
						Probes: simgpu.ProbeConfig{
							QueueDelay: true, LoadFactor: true,
							Budget: true, Decomposition: true, SampleEvery: 1,
						},
						Failures: []simgpu.Failure{
							{At: 1 * time.Second, Module: 1, Count: 1},
							{At: 3 * time.Second, Module: 0, Count: 1},
						},
					})
					if err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}
