// Package sched is the shared scheduling core of the Fig. 4 architecture:
// per-module controllers (state windows, batch dispatcher, priority/drop
// decisions), worker pools with batch assembly, state-board synchronization,
// budget accounting, the scaling engine and DAG fan-out/merge routing.
//
// The core is parameterized over a small Executor interface (time plus
// scheduled callbacks), so the same state machine runs in two places:
//
//   - the discrete-event simulator (internal/simgpu) instantiates it with
//     the virtual event-heap clock (SimExecutor over internal/sim), and
//   - the live server (internal/server) instantiates it with wall-clock
//     timers and real goroutines (TimerExecutor).
//
// Both instantiations exercise the exact same dropping, batching and
// priority code paths; a parity test in internal/server proves the
// decisions are identical under virtual and injected wall clocks.
package sched

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"pard/internal/core"
	"pard/internal/metrics"
	"pard/internal/pipeline"
	"pard/internal/policy"
	"pard/internal/profile"
)

// Config describes one cluster instantiation of the scheduling core.
type Config struct {
	// Spec is the validated pipeline (chain or DAG).
	Spec *pipeline.Spec
	// Lib provides model profiles; hosts pass their library explicitly
	// (no default is applied here).
	Lib *profile.Library
	// PolicyName selects the drop policy (see policy.Names()).
	PolicyName string
	// Seed derives the core's independent random streams. Execution jitter,
	// reservoir sampling and DAG branch choice use per-module streams hashed
	// from (seed, module, purpose) — module-local randomness is what lets
	// the sharded executor advance modules concurrently without consuming a
	// shared stream in racy order. Policy internals keep the shared seed+4
	// stream (drawn only in serial contexts: sync ticks and source-module
	// admission).
	Seed int64
	// BatchFrac sets the SLO share available for one pass of pure execution
	// when choosing target batch sizes (default 0.5).
	BatchFrac float64
	// Workers is the initial per-module worker count (required).
	Workers []int
	// QueueWindow is the sliding window for recent queueing delay
	// (default 5 s, §4.2 footnote 4).
	QueueWindow time.Duration
	// WaitReservoir is the per-module batch-wait sample reservoir size
	// (default 512).
	WaitReservoir int
	// NetDelay is the per-hop transfer delay between modules (>= 0).
	NetDelay time.Duration
	// JitterPct multiplies execution durations by 1 ± U[0,JitterPct]
	// (0 disables jitter unless the model profile carries its own).
	JitterPct float64
	// Scaling configures the resource scaling engine; ScaleTick is a no-op
	// unless Scaling.Enabled.
	Scaling ScalingConfig
	// Probes selects optional recordings.
	Probes ProbeConfig
	// Lambda overrides the PARD estimator quantile when > 0.
	Lambda float64
	// EstimatorSamples overrides the Monte-Carlo sample count when > 0.
	EstimatorSamples int
	// PriorityWindow overrides the priority smoothing window when > 0.
	PriorityWindow time.Duration

	// OnDone, when set, observes each request completing the sink module.
	OnDone func(req *Request, now time.Duration)
	// OnDrop, when set, observes each request dropped at a module.
	OnDrop func(req *Request, module int, now time.Duration)

	// Resolve maps a wire request ID onto this process's replica of the
	// Request. Required when the executor runs a multi-group topology
	// (every group holds the full request slab; requests cross the group
	// boundary by ID); unused otherwise.
	Resolve func(id uint64) *Request
}

// Cluster is one instantiated scheduling core: the controller + worker pool
// per module of Fig. 4, driven by an Executor. All methods must be called
// from the executor's serial context (or before it starts running).
type Cluster struct {
	cfg  Config
	exec Executor
	pol  policy.Policy

	modules []*module
	board   *core.Board

	// pathRngs holds per-module deterministic streams for exclusive DAG
	// branch choice (execution jitter and reservoir streams live on the
	// modules themselves).
	pathRngs []*rand.Rand
	jitter   float64

	batches []int
	durs    []time.Duration

	// Sharded execution path (nil on classic executors): lanes defer
	// request terminations to barrier commits and exchange cross-module
	// events through the executor's ordered mailbox.
	ls     laneScheduler
	bridge *laneBridge
	// inControl marks serial control context (sync/scale/failure callbacks
	// and barrier commits), where terminations apply immediately even in
	// lane mode. Only ever flipped while every lane is parked.
	inControl bool

	// Multi-group topology (nil/zero on single-group and classic paths):
	// this cluster is one lane-group replica, exchanging board rows,
	// scaling demands, mailbox posts, charges and termination intents with
	// its peers through tr. See transport.go for the distribution model.
	shx     *ShardedExecutor
	topo    Topology
	tr      Transport
	resolve func(uint64) *Request

	// classicEvents recycles event carriers on the classic-executor path
	// (see classicEvent). Per-cluster so pooled carriers never cross runs;
	// safe for the live server's concurrent injectors.
	classicEvents sync.Pool
}

// streamSeed derives module k's independent seed for one random stream from
// the cluster seed via FNV-64a, the same derivation style the sweep engine
// uses for per-run seeds.
func streamSeed(seed int64, k int, purpose string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s", seed, k, purpose)
	return int64(h.Sum64())
}

// New validates the configuration and assembles the cluster on the executor.
func New(cfg Config, exec Executor) (*Cluster, error) {
	if exec == nil {
		return nil, fmt.Errorf("sched: nil executor")
	}
	if cfg.Spec == nil {
		return nil, fmt.Errorf("sched: config needs a pipeline spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Lib == nil {
		return nil, fmt.Errorf("sched: config needs a profile library")
	}
	if cfg.PolicyName == "" {
		cfg.PolicyName = "pard"
	}
	if cfg.BatchFrac <= 0 {
		cfg.BatchFrac = 0.5
	}
	if cfg.QueueWindow <= 0 {
		cfg.QueueWindow = 5 * time.Second
	}
	if cfg.WaitReservoir <= 0 {
		cfg.WaitReservoir = 512
	}
	if cfg.NetDelay < 0 {
		return nil, fmt.Errorf("sched: negative net delay %v", cfg.NetDelay)
	}
	if cfg.Probes.SampleEvery <= 0 {
		cfg.Probes.SampleEvery = 1
	}
	n := cfg.Spec.N()
	if len(cfg.Workers) != n {
		return nil, fmt.Errorf("sched: %d worker counts for %d modules", len(cfg.Workers), n)
	}

	batches, durs, err := TargetBatches(cfg.Spec, cfg.Lib, cfg.BatchFrac)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg:     cfg,
		exec:    exec,
		board:   core.NewBoard(n),
		jitter:  cfg.JitterPct,
		batches: batches,
		durs:    durs,
	}
	c.classicEvents.New = func() any {
		ce := &classicEvent{}
		ce.fire = func(now time.Duration) {
			ce.ev.fire(now)
			ce.ev = laneEvent{} // don't pin requests/workers while pooled
			c.classicEvents.Put(ce)
		}
		return ce
	}
	for k := 0; k < n; k++ {
		c.pathRngs = append(c.pathRngs, rand.New(rand.NewSource(streamSeed(cfg.Seed, k, "path"))))
	}
	if ls, ok := exec.(laneScheduler); ok {
		if ls.Lanes() != n {
			return nil, fmt.Errorf("sched: executor has %d lanes for %d modules", ls.Lanes(), n)
		}
		c.ls = ls
		c.bridge = newLaneBridge(c, n)
		ls.setBarrierHook(c.barrier)
		if sx, ok := exec.(*ShardedExecutor); ok && sx.multi() {
			if cfg.Resolve == nil {
				return nil, fmt.Errorf("sched: a %d-group topology needs a Resolve hook (wire requests travel by ID)", sx.topo.Groups)
			}
			c.shx, c.topo, c.tr, c.resolve = sx, sx.Topology(), sx.tr, cfg.Resolve
			sx.setControlHook(c.controlFlush)
		}
	}

	estCfg := core.DefaultEstimatorConfig()
	if cfg.Lambda > 0 {
		estCfg.Lambda = cfg.Lambda
	}
	if cfg.EstimatorSamples > 0 {
		estCfg.Samples = cfg.EstimatorSamples
	}
	priCfg := core.DefaultPriorityConfig()
	if cfg.PriorityWindow > 0 {
		priCfg.Window = cfg.PriorityWindow
	}
	pol, err := policy.New(cfg.PolicyName, policy.Setup{
		Spec:   cfg.Spec,
		Durs:   durs,
		Rng:    rand.New(rand.NewSource(cfg.Seed + 4)),
		EstCfg: &estCfg,
		PriCfg: &priCfg,
	})
	if err != nil {
		return nil, err
	}
	c.pol = pol

	for k := 0; k < n; k++ {
		model, err := cfg.Lib.Get(cfg.Spec.Modules[k].Name)
		if err != nil {
			return nil, err
		}
		m := newModule(c, k, cfg.Spec.Modules[k], model, batches[k], durs[k], cfg.Workers[k])
		c.modules = append(c.modules, m)
	}
	return c, nil
}

// N returns the module count.
func (c *Cluster) N() int { return len(c.modules) }

// Policy returns the cluster's drop policy.
func (c *Cluster) Policy() policy.Policy { return c.pol }

// Board returns the shared cross-module state board.
func (c *Cluster) Board() *core.Board { return c.board }

// TargetBatch returns module k's target batch size.
func (c *Cluster) TargetBatch(k int) int { return c.batches[k] }

// ProfiledDur returns module k's profiled duration at its target batch.
func (c *Cluster) ProfiledDur(k int) time.Duration { return c.durs[k] }

// PeakWorkers returns the maximum concurrently active workers seen at
// module k.
func (c *Cluster) PeakWorkers(k int) int { return c.modules[k].peakWorkers }

// ActiveWorkers returns module k's current dispatcher-eligible worker count.
func (c *Cluster) ActiveWorkers(k int) int { return c.modules[k].activeWorkers() }

// Drops returns how many requests module k has dropped.
func (c *Cluster) Drops(k int) int { return c.modules[k].drops }

// ModuleProbes bundles module k's optional probe outputs (nil / empty unless
// the corresponding probe was enabled in the config).
type ModuleProbes struct {
	QueueDelay  *metrics.Series
	Load        *metrics.Series
	Mode        *metrics.Series
	Budget      *metrics.Series
	Remain      *metrics.Series
	WaitSamples []float64
}

// Probes returns module k's probe outputs.
func (c *Cluster) Probes(k int) ModuleProbes {
	m := c.modules[k]
	p := ModuleProbes{
		QueueDelay: m.queueDelayProbe,
		Load:       m.loadProbe,
		Mode:       m.modeProbe,
		Budget:     m.budgetProbe,
		Remain:     m.remainProbe,
	}
	if m.waitProbe != nil {
		p.WaitSamples = append([]float64(nil), m.waitProbe.Values()...)
	}
	return p
}

// Inject schedules the request's arrival at the source module, one network
// hop after sendAt. The caller owns the Request's identity fields (ID, Send,
// Deadline, DropModule).
func (c *Cluster) Inject(req *Request, sendAt time.Duration) {
	src := c.modules[c.cfg.Spec.Source()]
	c.scheduleEvent(-1, src.idx, sendAt+c.cfg.NetDelay,
		laneEvent{name: "arrive", op: opReceive, m: src, req: req})
}

// scheduleEvent registers ev on module dst's event lane. src is the module
// whose event is executing (-1 for host or control context); lane-aware
// executors route cross-lane schedules through the ordered mailbox — the
// event travels by value, so the typed hot-path ops allocate nothing —
// while classic executors wrap it in a closure on the plain global queue.
func (c *Cluster) scheduleEvent(src, dst int, at time.Duration, ev laneEvent) {
	if c.ls != nil {
		c.ls.scheduleLaneEvent(src, dst, at, ev)
		return
	}
	c.scheduleClassic(at, ev)
}

// classicEvent carries one scheduled event across a plain global-queue
// executor (the classic simulator engine and the live server's wall clock).
// Carriers are pooled and their callback func bound once at construction,
// so steady-state classic scheduling allocates nothing per event —
// previously every schedule heap-escaped a fresh copy of the event through
// an ev.fire method value, which was the live data plane's dominant
// allocation under load.
type classicEvent struct {
	ev   laneEvent
	fire func(now time.Duration)
}

// scheduleClassic hands the event to a plain global-queue executor inside a
// pooled carrier. Kept out of scheduleEvent — and out of its inliner's
// reach — so the carrier machinery only exists on the classic path; on the
// lane path ev stays stack-allocated through scheduleEvent.
//
//go:noinline
func (c *Cluster) scheduleClassic(at time.Duration, ev laneEvent) {
	ce := c.classicEvents.Get().(*classicEvent)
	ce.ev = ev
	c.exec.Schedule(at, ev.name, ce.fire)
}

// control brackets a serial control-context callback (sync, scaling,
// injected failures): in single-group lane mode, terminations decided here
// commit immediately rather than deferring to a barrier. In a multi-group
// topology they defer and commit at the post-event control flush instead —
// the deciding group alone knows them, so immediate commits would diverge
// the replicas.
func (c *Cluster) control(fn func()) {
	c.inControl = true
	fn()
	c.inControl = false
}

// owns reports whether this cluster replica executes module k (always true
// outside a multi-group topology).
func (c *Cluster) owns(k int) bool { return c.topo.owns(k) }

// fail aborts a multi-group run from control context, poisoning the
// transport so peer groups unblock.
func (c *Cluster) fail(err error) {
	if c.shx != nil {
		c.shx.fail(err)
	}
}

// controlFlush exchanges and commits the terminations (and any charges)
// decided by the control event that just fired, so every replica observes
// them — in the identical order — before the next control event or lane
// window runs. It is the executor's per-control-event hook; hosts whose
// control callbacks read replicated state after mutating it (e.g. a ticker
// predicate checking for drained requests right after a sync tick) call
// ControlFlush explicitly first. No-op outside a multi-group topology; an
// all-empty exchange (the common case) is a valid empty-drain round.
func (c *Cluster) controlFlush() error {
	if c.shx == nil {
		return nil
	}
	return c.exchangeBarrier(nil)
}

// ControlFlush is the host-facing controlFlush: call it inside a control
// callback after any state mutation whose effects (dropped or completed
// requests) the same callback subsequently reads. Errors abort the run via
// the executor.
func (c *Cluster) ControlFlush() {
	if c.shx == nil {
		return
	}
	if err := c.controlFlush(); err != nil {
		c.fail(err)
	}
}

// exchangeBarrier is the multi-group window barrier: all-gather this
// group's cross-group posts, pending termination intents and buffered
// charges; deliver the incoming posts in mailbox order; apply the merged
// charges (integer sums — order-free) and commit the merged intents in the
// global deterministic order. Control flushes reuse it with nil posts.
func (c *Cluster) exchangeBarrier(posts []WirePost) error {
	msg := BarrierMsg{
		Group:   int32(c.topo.Group),
		Posts:   posts,
		Intents: c.bridge.encodeIntents(),
		Charges: c.encodeCharges(),
		Merges:  c.encodeMergeResets(),
	}
	all, err := c.tr.Barrier(msg)
	if err != nil {
		return err
	}
	for i := range all {
		bm := &all[i]
		if int(bm.Group) == c.topo.Group {
			continue
		}
		for _, wp := range bm.Posts {
			if !c.owns(int(wp.Dst)) {
				continue
			}
			req := c.resolve(wp.Req)
			if req == nil {
				return fmt.Errorf("sched: post for unknown request %d from group %d", wp.Req, bm.Group)
			}
			dst := c.modules[wp.Dst]
			c.shx.stagePost(post{src: int(wp.Src), dst: int(wp.Dst), at: wp.At,
				ev: laneEvent{name: "hop", op: opReceive, m: dst, req: req}})
		}
	}
	c.shx.deliverStaged()
	for i := range all {
		for _, wc := range all[i].Charges {
			req := c.resolve(wc.Req)
			if req == nil {
				return fmt.Errorf("sched: charge for unknown request %d from group %d", wc.Req, all[i].Group)
			}
			req.charge(wc.GPU, wc.Q, wc.W, wc.D)
		}
		if int(all[i].Group) == c.topo.Group {
			continue // this replica armed its own resets inline in forward
		}
		for _, wm := range all[i].Merges {
			req := c.resolve(wm.Req)
			if req == nil {
				return fmt.Errorf("sched: merge reset for unknown request %d from group %d", wm.Req, all[i].Group)
			}
			req.resetMerge(int(wm.Expected))
		}
	}
	return c.bridge.commitWire(all, c.resolve)
}

// encodeCharges drains every owned module's charge buffer into wire shape,
// in (module, decision order).
func (c *Cluster) encodeCharges() []WireCharge {
	var out []WireCharge
	for k, m := range c.modules {
		for i := range m.charges {
			ch := &m.charges[i]
			out = append(out, WireCharge{Mod: int32(k), Req: ch.req.ID, GPU: ch.gpu, Q: ch.q, W: ch.w, D: ch.d})
		}
		m.charges = m.charges[:0]
	}
	return out
}

// SyncTick runs one state-synchronization round (§4.1 steps ①-③): every
// module publishes its snapshot, the policy refreshes from the board, and
// priority probes record the outcome. On a lane-aware executor it must run
// in control context (all lanes parked): it reads and writes cross-module
// state freely.
func (c *Cluster) SyncTick(now time.Duration) {
	c.control(func() {
		if c.ls != nil {
			// Publication is module-local (each module sorts its own state
			// windows and writes its own board slot), so it fans out across
			// the shards; the policy refresh below stays serial — it reads
			// the whole board and draws from the shared policy stream. In a
			// multi-group topology only owned modules have state to publish;
			// the board exchange below fills in the peers' rows before the
			// (replicated) policy refresh reads the full board.
			c.ls.parallelLanes(func(k int) {
				if c.owns(k) {
					c.modules[k].publish(now, c.board)
				}
			})
		} else {
			for _, m := range c.modules {
				m.publish(now, c.board)
			}
		}
		if err := c.exchangeBoard(); err != nil {
			c.fail(err)
			return
		}
		c.pol.OnSync(now, c.board)
		for _, m := range c.modules {
			if c.owns(m.idx) {
				m.probePriority(now, c.board)
			}
		}
	})
}

// exchangeBoard all-gathers the owned board rows so every replica's board —
// and therefore every replica's policy refresh — sees the identical
// cluster-wide state. No-op outside a multi-group topology.
func (c *Cluster) exchangeBoard() error {
	if c.shx == nil {
		return nil
	}
	rows := make([]WireBoardRow, 0, (len(c.modules)+c.topo.Groups-1)/c.topo.Groups)
	for k := range c.modules {
		if c.owns(k) {
			rows = append(rows, WireBoardRow{Mod: int32(k), State: c.board.Get(k)})
		}
	}
	all, err := c.tr.Board(BoardMsg{Group: int32(c.topo.Group), Rows: rows})
	if err != nil {
		return err
	}
	for i := range all {
		if int(all[i].Group) == c.topo.Group {
			continue
		}
		for _, r := range all[i].Rows {
			c.board.Publish(int(r.Mod), r.State)
		}
	}
	return nil
}

// ScaleTick runs one scaling-engine round: per-module demand from recent
// input rates, granted proportionally under a TotalGPUs budget. No-op when
// scaling is disabled.
func (c *Cluster) ScaleTick(now time.Duration) {
	if !c.cfg.Scaling.Enabled {
		return
	}
	c.control(func() {
		desired := make([]int, len(c.modules))
		for k, m := range c.modules {
			if c.owns(k) {
				desired[k] = m.desiredWorkers(now)
			}
		}
		if err := c.exchangeScale(desired); err != nil {
			c.fail(err)
			return
		}
		ApplyGPUBudget(desired, c.cfg.Scaling.TotalGPUs, c.cfg.Scaling.MinWorkers)
		for k, m := range c.modules {
			if c.owns(k) {
				m.applyScale(now, desired[k])
			}
		}
	})
}

// exchangeScale all-gathers the owned modules' scaling demands so every
// replica applies the identical GPU-budget split. No-op outside a
// multi-group topology.
func (c *Cluster) exchangeScale(desired []int) error {
	if c.shx == nil {
		return nil
	}
	rows := make([]WireScaleRow, 0, (len(c.modules)+c.topo.Groups-1)/c.topo.Groups)
	for k := range c.modules {
		if c.owns(k) {
			rows = append(rows, WireScaleRow{Mod: int32(k), Desired: int32(desired[k])})
		}
	}
	all, err := c.tr.Scale(ScaleMsg{Group: int32(c.topo.Group), Rows: rows})
	if err != nil {
		return err
	}
	for i := range all {
		if int(all[i].Group) == c.topo.Group {
			continue
		}
		for _, r := range all[i].Rows {
			desired[r.Mod] = int(r.Desired)
		}
	}
	return nil
}

// Crash kills up to count active workers of module k (§2 machine failure),
// returning how many actually died. In a multi-group topology the failure
// event is replicated on every control lane but only the owner's workers
// hold state: non-owners no-op (returning 0) and learn the resulting drops
// at the post-event control flush.
func (c *Cluster) Crash(k int, now time.Duration, count int) int {
	if !c.owns(k) {
		return 0
	}
	killed := 0
	c.control(func() { killed = c.modules[k].crash(now, count) })
	return killed
}

// scheduleBatchEnd registers the batch-completion event on the worker's own
// lane.
func (c *Cluster) scheduleBatchEnd(w *worker, at time.Duration) {
	c.scheduleEvent(w.mod.idx, w.mod.idx, at, laneEvent{name: "batch-end", op: opBatchEnd, w: w})
}

// scheduleWarmup wakes a cold-started worker.
func (c *Cluster) scheduleWarmup(w *worker, at time.Duration) {
	c.scheduleEvent(w.mod.idx, w.mod.idx, at, laneEvent{name: "warmup", op: opWarmup, w: w})
}

// barrier runs at every lane-window barrier (all lanes parked): first the
// lanes' batched per-request accounting merges into the shared Requests,
// then deferred terminations commit — in that order, so host OnDone/OnDrop
// callbacks observe complete sums. In a multi-group topology the same
// sequencing runs over the all-gathered payloads of every group.
func (c *Cluster) barrier() error {
	if c.shx != nil {
		return c.exchangeBarrier(c.shx.takeWirePosts())
	}
	c.flushCharges()
	c.bridge.commit()
	return nil
}

// flushCharges applies every module's buffered charge records in (module,
// decision order) — a deterministic order, and the charges are commutative
// sums anyway. Buffers keep their slabs across windows.
func (c *Cluster) flushCharges() {
	for _, m := range c.modules {
		for i := range m.charges {
			ch := &m.charges[i]
			ch.req.charge(ch.gpu, ch.q, ch.w, ch.d)
		}
		m.charges = m.charges[:0]
	}
}

// retired reports whether module k should treat the request as terminated:
// globally committed, or — in lane mode — terminated by module k itself in
// the current window. A termination decided by *another* module inside the
// current window becomes visible at the next barrier; that bounded, fully
// deterministic visibility delay is the ordering contract that lets lanes
// run concurrently.
func (c *Cluster) retired(req *Request, k int) bool {
	if req.Dropped || req.Finished {
		return true
	}
	if c.bridge == nil {
		return false
	}
	if c.inControl && c.shx != nil {
		// Multi-group control context defers terminations that a single
		// group would commit immediately — and immediately-visible to every
		// module within the same control event (e.g. a scale-induced drop at
		// one module seen by a parallel DAG branch at another). The whole
		// pending set reproduces that visibility.
		return c.bridge.seesAny(req)
	}
	return c.bridge.sees(k, req)
}

// drop marks a request dropped at module k and notifies the host. In lane
// mode the decision is deferred to the next barrier commit, keeping the
// shared Request untouched while other lanes run. Multi-group control
// context also defers (committed at the post-event control flush): the
// decision is owner-local knowledge until exchanged.
func (c *Cluster) drop(req *Request, k int, now time.Duration) {
	if c.bridge != nil && (!c.inControl || c.shx != nil) {
		if c.retired(req, k) {
			return
		}
		c.bridge.add(k, req, now, true)
		return
	}
	c.commitDrop(req, k, now)
}

// commitDrop applies a drop decision. The first commit for a request wins;
// later ones are no-ops.
func (c *Cluster) commitDrop(req *Request, k int, now time.Duration) {
	if req.Dropped || req.Finished {
		return
	}
	req.Dropped = true
	req.DropModule = k
	req.DropAt = now
	c.modules[k].drops++
	if c.cfg.OnDrop != nil {
		c.cfg.OnDrop(req, k, now)
	}
}

// forward routes a request leaving module k: split to successors, merge at
// fan-in, or complete at the sink.
func (c *Cluster) forward(req *Request, k int, now time.Duration) {
	mod := c.cfg.Spec.Modules[k]
	if len(mod.Subs) == 0 {
		c.complete(req, k, now)
		return
	}
	arrive := now + c.cfg.NetDelay
	if mod.Exclusive {
		sub := mod.Subs[c.pickBranch(mod)]
		c.resetMerge(req, k, now, 1)
		c.scheduleEvent(k, sub, arrive, laneEvent{name: "hop", op: opReceive, m: c.modules[sub], req: req})
		return
	}
	subs := mod.Subs
	if len(subs) > 1 {
		c.resetMerge(req, k, now, len(subs))
	}
	for _, sub := range subs {
		c.scheduleEvent(k, sub, arrive, laneEvent{name: "hop", op: opReceive, m: c.modules[sub], req: req})
	}
}

// resetMerge arms the request's merge bookkeeping for the next fan-out
// region. In a multi-group topology the arm also rides the next barrier to
// the peer replicas (see WireMergeReset): the merge module's owner reads
// ExpectedMerge, and only the fan-out owner runs this code.
func (c *Cluster) resetMerge(req *Request, k int, now time.Duration, n int) {
	req.resetMerge(n)
	if c.shx != nil {
		m := c.modules[k]
		m.mergeResets = append(m.mergeResets, WireMergeReset{At: now, Mod: int32(k), Req: req.ID, Expected: int32(n)})
	}
}

// encodeMergeResets drains every module's buffered merge-arms in (module,
// decision order).
func (c *Cluster) encodeMergeResets() []WireMergeReset {
	var out []WireMergeReset
	for _, m := range c.modules {
		out = append(out, m.mergeResets...)
		m.mergeResets = m.mergeResets[:0]
	}
	return out
}

// pickBranch selects one successor index for an exclusive fan-out, drawn
// from the fan-out module's own path stream.
func (c *Cluster) pickBranch(mod pipeline.Module) int {
	rng := c.pathRngs[mod.ID]
	if len(mod.BranchProb) == 0 {
		return rng.Intn(len(mod.Subs))
	}
	x := rng.Float64()
	acc := 0.0
	for i, p := range mod.BranchProb {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(mod.Subs) - 1
}

// complete finalizes a request that finished the sink module k. Like drop,
// it defers to the barrier commit in lane mode.
func (c *Cluster) complete(req *Request, k int, now time.Duration) {
	if c.bridge != nil && (!c.inControl || c.shx != nil) {
		if c.retired(req, k) {
			return
		}
		c.bridge.add(k, req, now, false)
		return
	}
	c.commitComplete(req, now)
}

// commitComplete applies a sink completion (no-op if the request already
// terminated).
func (c *Cluster) commitComplete(req *Request, now time.Duration) {
	if req.Dropped || req.Finished {
		return
	}
	req.Finished = true
	req.DoneAt = now
	if c.cfg.OnDone != nil {
		c.cfg.OnDone(req, now)
	}
}
