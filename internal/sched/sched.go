// Package sched is the shared scheduling core of the Fig. 4 architecture:
// per-module controllers (state windows, batch dispatcher, priority/drop
// decisions), worker pools with batch assembly, state-board synchronization,
// budget accounting, the scaling engine and DAG fan-out/merge routing.
//
// The core is parameterized over a small Executor interface (time plus
// scheduled callbacks), so the same state machine runs in two places:
//
//   - the discrete-event simulator (internal/simgpu) instantiates it with
//     the virtual event-heap clock (SimExecutor over internal/sim), and
//   - the live server (internal/server) instantiates it with wall-clock
//     timers and real goroutines (TimerExecutor).
//
// Both instantiations exercise the exact same dropping, batching and
// priority code paths; a parity test in internal/server proves the
// decisions are identical under virtual and injected wall clocks.
package sched

import (
	"fmt"
	"math/rand"
	"time"

	"pard/internal/core"
	"pard/internal/metrics"
	"pard/internal/pipeline"
	"pard/internal/policy"
	"pard/internal/profile"
)

// Config describes one cluster instantiation of the scheduling core.
type Config struct {
	// Spec is the validated pipeline (chain or DAG).
	Spec *pipeline.Spec
	// Lib provides model profiles; hosts pass their library explicitly
	// (no default is applied here).
	Lib *profile.Library
	// PolicyName selects the drop policy (see policy.Names()).
	PolicyName string
	// Seed derives the core's independent random streams (execution jitter,
	// reservoirs, DAG branch choice, policy internals) exactly as the
	// simulator always has: seed+1..seed+4.
	Seed int64
	// BatchFrac sets the SLO share available for one pass of pure execution
	// when choosing target batch sizes (default 0.5).
	BatchFrac float64
	// Workers is the initial per-module worker count (required).
	Workers []int
	// QueueWindow is the sliding window for recent queueing delay
	// (default 5 s, §4.2 footnote 4).
	QueueWindow time.Duration
	// WaitReservoir is the per-module batch-wait sample reservoir size
	// (default 512).
	WaitReservoir int
	// NetDelay is the per-hop transfer delay between modules (>= 0).
	NetDelay time.Duration
	// JitterPct multiplies execution durations by 1 ± U[0,JitterPct]
	// (0 disables jitter unless the model profile carries its own).
	JitterPct float64
	// Scaling configures the resource scaling engine; ScaleTick is a no-op
	// unless Scaling.Enabled.
	Scaling ScalingConfig
	// Probes selects optional recordings.
	Probes ProbeConfig
	// Lambda overrides the PARD estimator quantile when > 0.
	Lambda float64
	// EstimatorSamples overrides the Monte-Carlo sample count when > 0.
	EstimatorSamples int
	// PriorityWindow overrides the priority smoothing window when > 0.
	PriorityWindow time.Duration

	// OnDone, when set, observes each request completing the sink module.
	OnDone func(req *Request, now time.Duration)
	// OnDrop, when set, observes each request dropped at a module.
	OnDrop func(req *Request, module int, now time.Duration)
}

// Cluster is one instantiated scheduling core: the controller + worker pool
// per module of Fig. 4, driven by an Executor. All methods must be called
// from the executor's serial context (or before it starts running).
type Cluster struct {
	cfg  Config
	exec Executor
	pol  policy.Policy

	modules []*module
	board   *core.Board

	// Independent deterministic random streams.
	execRng *rand.Rand // execution jitter
	statRng *rand.Rand // reservoirs
	pathRng *rand.Rand // exclusive DAG branch choice
	jitter  float64

	batches []int
	durs    []time.Duration
}

// New validates the configuration and assembles the cluster on the executor.
func New(cfg Config, exec Executor) (*Cluster, error) {
	if exec == nil {
		return nil, fmt.Errorf("sched: nil executor")
	}
	if cfg.Spec == nil {
		return nil, fmt.Errorf("sched: config needs a pipeline spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Lib == nil {
		return nil, fmt.Errorf("sched: config needs a profile library")
	}
	if cfg.PolicyName == "" {
		cfg.PolicyName = "pard"
	}
	if cfg.BatchFrac <= 0 {
		cfg.BatchFrac = 0.5
	}
	if cfg.QueueWindow <= 0 {
		cfg.QueueWindow = 5 * time.Second
	}
	if cfg.WaitReservoir <= 0 {
		cfg.WaitReservoir = 512
	}
	if cfg.NetDelay < 0 {
		return nil, fmt.Errorf("sched: negative net delay %v", cfg.NetDelay)
	}
	if cfg.Probes.SampleEvery <= 0 {
		cfg.Probes.SampleEvery = 1
	}
	n := cfg.Spec.N()
	if len(cfg.Workers) != n {
		return nil, fmt.Errorf("sched: %d worker counts for %d modules", len(cfg.Workers), n)
	}

	batches, durs, err := TargetBatches(cfg.Spec, cfg.Lib, cfg.BatchFrac)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg:     cfg,
		exec:    exec,
		board:   core.NewBoard(n),
		execRng: rand.New(rand.NewSource(cfg.Seed + 1)),
		statRng: rand.New(rand.NewSource(cfg.Seed + 2)),
		pathRng: rand.New(rand.NewSource(cfg.Seed + 3)),
		jitter:  cfg.JitterPct,
		batches: batches,
		durs:    durs,
	}

	estCfg := core.DefaultEstimatorConfig()
	if cfg.Lambda > 0 {
		estCfg.Lambda = cfg.Lambda
	}
	if cfg.EstimatorSamples > 0 {
		estCfg.Samples = cfg.EstimatorSamples
	}
	priCfg := core.DefaultPriorityConfig()
	if cfg.PriorityWindow > 0 {
		priCfg.Window = cfg.PriorityWindow
	}
	pol, err := policy.New(cfg.PolicyName, policy.Setup{
		Spec:   cfg.Spec,
		Durs:   durs,
		Rng:    rand.New(rand.NewSource(cfg.Seed + 4)),
		EstCfg: &estCfg,
		PriCfg: &priCfg,
	})
	if err != nil {
		return nil, err
	}
	c.pol = pol

	for k := 0; k < n; k++ {
		model, err := cfg.Lib.Get(cfg.Spec.Modules[k].Name)
		if err != nil {
			return nil, err
		}
		m := newModule(c, k, cfg.Spec.Modules[k], model, batches[k], durs[k], cfg.Workers[k])
		c.modules = append(c.modules, m)
	}
	return c, nil
}

// N returns the module count.
func (c *Cluster) N() int { return len(c.modules) }

// Policy returns the cluster's drop policy.
func (c *Cluster) Policy() policy.Policy { return c.pol }

// Board returns the shared cross-module state board.
func (c *Cluster) Board() *core.Board { return c.board }

// TargetBatch returns module k's target batch size.
func (c *Cluster) TargetBatch(k int) int { return c.batches[k] }

// ProfiledDur returns module k's profiled duration at its target batch.
func (c *Cluster) ProfiledDur(k int) time.Duration { return c.durs[k] }

// PeakWorkers returns the maximum concurrently active workers seen at
// module k.
func (c *Cluster) PeakWorkers(k int) int { return c.modules[k].peakWorkers }

// ActiveWorkers returns module k's current dispatcher-eligible worker count.
func (c *Cluster) ActiveWorkers(k int) int { return c.modules[k].activeWorkers() }

// Drops returns how many requests module k has dropped.
func (c *Cluster) Drops(k int) int { return c.modules[k].drops }

// ModuleProbes bundles module k's optional probe outputs (nil / empty unless
// the corresponding probe was enabled in the config).
type ModuleProbes struct {
	QueueDelay  *metrics.Series
	Load        *metrics.Series
	Mode        *metrics.Series
	Budget      *metrics.Series
	Remain      *metrics.Series
	WaitSamples []float64
}

// Probes returns module k's probe outputs.
func (c *Cluster) Probes(k int) ModuleProbes {
	m := c.modules[k]
	p := ModuleProbes{
		QueueDelay: m.queueDelayProbe,
		Load:       m.loadProbe,
		Mode:       m.modeProbe,
		Budget:     m.budgetProbe,
		Remain:     m.remainProbe,
	}
	if m.waitProbe != nil {
		p.WaitSamples = append([]float64(nil), m.waitProbe.Values()...)
	}
	return p
}

// Inject schedules the request's arrival at the source module, one network
// hop after sendAt. The caller owns the Request's identity fields (ID, Send,
// Deadline, DropModule).
func (c *Cluster) Inject(req *Request, sendAt time.Duration) {
	src := c.modules[c.cfg.Spec.Source()]
	c.exec.Schedule(sendAt+c.cfg.NetDelay, "arrive", func(now time.Duration) {
		src.receive(req, now)
	})
}

// SyncTick runs one state-synchronization round (§4.1 steps ①-③): every
// module publishes its snapshot, the policy refreshes from the board, and
// priority probes record the outcome.
func (c *Cluster) SyncTick(now time.Duration) {
	for _, m := range c.modules {
		m.publish(now, c.board)
	}
	c.pol.OnSync(now, c.board)
	for _, m := range c.modules {
		m.probePriority(now, c.board)
	}
}

// ScaleTick runs one scaling-engine round: per-module demand from recent
// input rates, granted proportionally under a TotalGPUs budget. No-op when
// scaling is disabled.
func (c *Cluster) ScaleTick(now time.Duration) {
	if !c.cfg.Scaling.Enabled {
		return
	}
	desired := make([]int, len(c.modules))
	for k, m := range c.modules {
		desired[k] = m.desiredWorkers(now)
	}
	ApplyGPUBudget(desired, c.cfg.Scaling.TotalGPUs, c.cfg.Scaling.MinWorkers)
	for k, m := range c.modules {
		m.applyScale(now, desired[k])
	}
}

// Crash kills up to count active workers of module k (§2 machine failure),
// returning how many actually died.
func (c *Cluster) Crash(k int, now time.Duration, count int) int {
	return c.modules[k].crash(now, count)
}

// scheduleBatchEnd registers the batch-completion event.
func (c *Cluster) scheduleBatchEnd(w *worker, at time.Duration) {
	c.exec.Schedule(at, "batch-end", func(now time.Duration) { w.batchEnd(now) })
}

// scheduleWarmup wakes a cold-started worker.
func (c *Cluster) scheduleWarmup(w *worker, at time.Duration) {
	c.exec.Schedule(at, "warmup", func(now time.Duration) { w.pump(now) })
}

// drop marks a request dropped at module k and notifies the host.
func (c *Cluster) drop(req *Request, k int, now time.Duration) {
	if req.Dropped || req.Finished {
		return
	}
	req.Dropped = true
	req.DropModule = k
	req.DropAt = now
	c.modules[k].drops++
	if c.cfg.OnDrop != nil {
		c.cfg.OnDrop(req, k, now)
	}
}

// forward routes a request leaving module k: split to successors, merge at
// fan-in, or complete at the sink.
func (c *Cluster) forward(req *Request, k int, now time.Duration) {
	mod := c.cfg.Spec.Modules[k]
	if len(mod.Subs) == 0 {
		c.complete(req, now)
		return
	}
	subs := mod.Subs
	if mod.Exclusive {
		subs = []int{mod.Subs[c.pickBranch(mod)]}
		req.ExpectedMerge = 1
	} else if len(subs) > 1 {
		req.ExpectedMerge = len(subs)
	}
	arrive := now + c.cfg.NetDelay
	for _, sub := range subs {
		target := c.modules[sub]
		c.exec.Schedule(arrive, "hop", func(now time.Duration) { target.receive(req, now) })
	}
}

// pickBranch selects one successor index for an exclusive fan-out.
func (c *Cluster) pickBranch(mod pipeline.Module) int {
	if len(mod.BranchProb) == 0 {
		return c.pathRng.Intn(len(mod.Subs))
	}
	x := c.pathRng.Float64()
	acc := 0.0
	for i, p := range mod.BranchProb {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(mod.Subs) - 1
}

// complete finalizes a request that finished the sink module.
func (c *Cluster) complete(req *Request, now time.Duration) {
	if req.Dropped || req.Finished {
		return
	}
	req.Finished = true
	req.DoneAt = now
	if c.cfg.OnDone != nil {
		c.cfg.OnDone(req, now)
	}
}
