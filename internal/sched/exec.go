package sched

import (
	"sync"
	"time"

	"pard/internal/sim"
)

// Executor is the small time-and-callback interface the scheduling core is
// parameterized over. The discrete-event simulator satisfies it with the
// virtual event-heap clock (SimExecutor); the live server with wall-clock
// timers (TimerExecutor); deterministic tests with an injected fake clock
// (ManualExecutor).
//
// The core is single-threaded by contract: an Executor must never run two
// callbacks concurrently. SimExecutor and ManualExecutor are inherently
// serial; TimerExecutor serializes callbacks through an internal run lock.
type Executor interface {
	// Now returns the elapsed time since the start of the run.
	Now() time.Duration
	// Schedule registers fn to run at absolute time at (immediately when at
	// is in the past). fn receives the executor's time at fire.
	Schedule(at time.Duration, name string, fn func(now time.Duration))
}

// SimExecutor adapts the discrete-event engine to the Executor interface:
// callbacks fire in virtual timestamp order, ties broken by schedule order.
type SimExecutor struct {
	eng *sim.Engine
}

// NewSimExecutor wraps a simulation engine.
func NewSimExecutor(eng *sim.Engine) SimExecutor { return SimExecutor{eng: eng} }

// Now returns the current virtual time.
func (x SimExecutor) Now() time.Duration { return x.eng.Now() }

// Schedule registers fn on the engine's event heap.
func (x SimExecutor) Schedule(at time.Duration, name string, fn func(time.Duration)) {
	x.eng.Schedule(at, name, func(e *sim.Engine) { fn(e.Now()) })
}

// TimerExecutor runs callbacks on real wall-clock timers. All callbacks are
// serialized through a run lock, so the single-threaded core sees the same
// execution model as under the simulator, while timer goroutines provide the
// real concurrency (batch executions overlap in real time across workers).
type TimerExecutor struct {
	clock sim.Clock

	run sync.Mutex // serializes callback execution

	mu      sync.Mutex // guards timers + stopped
	stopped bool
	timers  map[*time.Timer]struct{}
	wg      sync.WaitGroup
}

// NewTimerExecutor returns an executor anchored at the current instant.
func NewTimerExecutor() *TimerExecutor {
	return &TimerExecutor{
		clock:  sim.NewWallClock(),
		timers: map[*time.Timer]struct{}{},
	}
}

// Now returns the wall-clock time elapsed since construction.
func (x *TimerExecutor) Now() time.Duration { return x.clock.Now() }

// Schedule arms a timer firing at time at (immediately when in the past).
// Safe for concurrent use, including from inside callbacks.
func (x *TimerExecutor) Schedule(at time.Duration, name string, fn func(time.Duration)) {
	d := at - x.clock.Now()
	if d < 0 {
		d = 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.stopped {
		return
	}
	x.wg.Add(1)
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		defer x.wg.Done()
		x.mu.Lock()
		delete(x.timers, t)
		stopped := x.stopped
		x.mu.Unlock()
		if stopped {
			return
		}
		x.run.Lock()
		defer x.run.Unlock()
		fn(x.clock.Now())
	})
	x.timers[t] = struct{}{}
}

// Stop cancels all pending timers and waits for in-flight callbacks to
// finish. After Stop, Schedule is a no-op.
func (x *TimerExecutor) Stop() {
	x.mu.Lock()
	if x.stopped {
		x.mu.Unlock()
		return
	}
	x.stopped = true
	for t := range x.timers {
		if t.Stop() {
			// The callback will never run; release its wait slot.
			x.wg.Done()
		}
		delete(x.timers, t)
	}
	x.mu.Unlock()
	x.wg.Wait()
}

// manualEvent is one pending ManualExecutor callback.
type manualEvent struct {
	at   time.Duration
	seq  int
	name string
	fn   func(time.Duration)
}

// ManualExecutor is a deterministic executor with an injected clock: time
// advances only when the caller steps it, and due callbacks fire in
// (timestamp, schedule-order) order — the same contract as the simulator,
// implemented independently. It stands in for wall-clock time in parity and
// server tests.
type ManualExecutor struct {
	now    time.Duration
	seq    int
	events []manualEvent
}

// NewManualExecutor returns an executor at t = 0 with no pending events.
func NewManualExecutor() *ManualExecutor { return &ManualExecutor{} }

// Now returns the injected current time.
func (x *ManualExecutor) Now() time.Duration { return x.now }

// Schedule registers fn at time at (clamped to Now for past times).
func (x *ManualExecutor) Schedule(at time.Duration, name string, fn func(time.Duration)) {
	if at < x.now {
		at = x.now
	}
	x.events = append(x.events, manualEvent{at: at, seq: x.seq, name: name, fn: fn})
	x.seq++
}

// pop removes and returns the earliest pending event, or false when none.
func (x *ManualExecutor) pop(limit time.Duration) (manualEvent, bool) {
	best := -1
	for i, e := range x.events {
		if e.at > limit {
			continue
		}
		if best < 0 || e.at < x.events[best].at ||
			(e.at == x.events[best].at && e.seq < x.events[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return manualEvent{}, false
	}
	e := x.events[best]
	x.events = append(x.events[:best], x.events[best+1:]...)
	return e, true
}

// RunUntil fires every event due at or before t in order, then advances the
// clock to t. Callbacks may schedule further events, which fire in the same
// pass when due.
func (x *ManualExecutor) RunUntil(t time.Duration) {
	for {
		e, ok := x.pop(t)
		if !ok {
			break
		}
		x.now = e.at
		e.fn(e.at)
	}
	if t > x.now {
		x.now = t
	}
}

// Drain fires all pending events (including ones scheduled while draining)
// and returns the final time.
func (x *ManualExecutor) Drain() time.Duration {
	for len(x.events) > 0 {
		// Find the max pending timestamp and run up to it; new events may
		// extend the horizon, hence the loop.
		max := x.events[0].at
		for _, e := range x.events {
			if e.at > max {
				max = e.at
			}
		}
		x.RunUntil(max)
	}
	return x.now
}

// Pending returns the number of queued events.
func (x *ManualExecutor) Pending() int { return len(x.events) }
