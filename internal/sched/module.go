package sched

import (
	"math/rand"
	"time"

	"pard/internal/core"
	"pard/internal/metrics"
	"pard/internal/pipeline"
	"pard/internal/policy"
	"pard/internal/profile"
	"pard/internal/stats"
)

// module is one pipeline stage: a controller (state windows, dispatcher) and
// a worker pool.
type module struct {
	cl    *Cluster
	idx   int
	spec  pipeline.Module
	model profile.Model

	targetBatch int
	targetDur   time.Duration
	jitter      float64

	// Per-module deterministic random streams: sharded execution advances
	// modules concurrently, so each module consumes its own streams rather
	// than racing over shared ones.
	execRng *rand.Rand // execution jitter
	statRng *rand.Rand // reservoir sampling

	workers []*worker
	nextWID int

	// Controller state (State Planner inputs, §4.1 step ①).
	qWin    *stats.SlidingWindow // queueing delay samples (seconds)
	wclWin  *stats.SlidingWindow // per-request Q+W+D samples (seconds)
	waitRes *stats.Reservoir     // batch-wait samples (seconds)
	rateWin *stats.RateWindow    // input workload for the scaling engine (smooth)
	inWin   *stats.RateWindow    // input workload T_in for priority control (fast)

	drops       int
	peakWorkers int

	// charges buffers this module's per-request batch accounting in lane
	// mode; the cluster merges it into the shared Requests at each window
	// barrier (see Cluster.flushCharges). The slab is reused across windows.
	charges []chargeRec

	// mergeResets buffers this module's DAG merge-arms in a multi-group
	// topology (empty otherwise): forward executes on the owner only, so
	// the reset must ride the next barrier to the peer replicas. Lane-local
	// like charges — forward runs on this module's lane.
	mergeResets []WireMergeReset

	// publish scratch, reused across sync ticks: wclScratch holds the WCL
	// window values (module-owned, safe to sort in place), pctScratch the
	// percentile outputs.
	wclScratch []float64
	pctScratch []float64

	// Probes.
	queueDelayProbe *metrics.Series
	loadProbe       *metrics.Series
	modeProbe       *metrics.Series
	budgetProbe     *metrics.Series // consumed budget per completed module visit (ms)
	remainProbe     *metrics.Series // remaining budget at module arrival (ms)
	waitProbe       *stats.Reservoir
	probeCount      int
}

func newModule(c *Cluster, idx int, spec pipeline.Module, model profile.Model, batch int, dur time.Duration, workers int) *module {
	statRng := rand.New(rand.NewSource(streamSeed(c.cfg.Seed, idx, "stat")))
	m := &module{
		cl:          c,
		idx:         idx,
		spec:        spec,
		model:       model,
		targetBatch: batch,
		targetDur:   dur,
		jitter:      c.jitter,
		execRng:     rand.New(rand.NewSource(streamSeed(c.cfg.Seed, idx, "exec"))),
		statRng:     statRng,
		qWin:        stats.NewSlidingWindow(c.cfg.QueueWindow),
		wclWin:      stats.NewSlidingWindow(c.cfg.QueueWindow),
		waitRes:     stats.NewReservoir(c.cfg.WaitReservoir, statRng),
		rateWin:     stats.NewRateWindow(c.cfg.QueueWindow),
		inWin:       stats.NewRateWindow(2 * time.Second),
	}
	if c.cfg.Probes.QueueDelay {
		m.queueDelayProbe = &metrics.Series{Name: "queue-delay"}
	}
	if c.cfg.Probes.LoadFactor {
		m.loadProbe = &metrics.Series{Name: "load-factor"}
		m.modeProbe = &metrics.Series{Name: "priority-mode"}
	}
	if c.cfg.Probes.Budget {
		m.budgetProbe = &metrics.Series{Name: "consumed-budget"}
		m.remainProbe = &metrics.Series{Name: "remaining-budget"}
	}
	if c.cfg.Probes.Decomposition {
		m.waitProbe = stats.NewReservoir(10000, statRng)
	}
	for i := 0; i < workers; i++ {
		m.addWorker(0, false)
	}
	m.peakWorkers = workers
	return m
}

// addWorker spawns a worker; cold workers serve only after the cold-start
// delay.
func (m *module) addWorker(now time.Duration, cold bool) *worker {
	w := newWorker(m, m.nextWID)
	m.nextWID++
	if cold {
		w.coldUntil = now + m.cl.cfg.Scaling.ColdStart
		m.cl.scheduleWarmup(w, w.coldUntil)
	}
	m.workers = append(m.workers, w)
	return w
}

// activeWorkers counts dispatcher-eligible workers.
func (m *module) activeWorkers() int {
	n := 0
	for _, w := range m.workers {
		if w.active {
			n++
		}
	}
	return n
}

// warmWorkers counts workers currently able to serve.
func (m *module) warmWorkers(now time.Duration) int {
	n := 0
	for _, w := range m.workers {
		if w.active && w.warm(now) {
			n++
		}
	}
	return n
}

// throughput is the module capacity T_m in req/s at time now.
func (m *module) throughput(now time.Duration) float64 {
	warm := m.warmWorkers(now)
	if warm == 0 {
		warm = 1 // capacity about to exist; avoids μ=∞ flapping during cold start
	}
	return float64(warm) * m.model.Throughput(m.targetBatch)
}

// execDuration draws a jittered execution duration for a batch of size n.
func (m *module) execDuration(n int) time.Duration {
	d := m.model.Duration(n)
	j := m.jitter
	if m.model.JitterPct > 0 {
		j = m.model.JitterPct
	}
	if j <= 0 {
		return d
	}
	f := 1 + (m.execRng.Float64()*2-1)*j
	return time.Duration(float64(d) * f)
}

// retired reports whether the request needs no further processing at this
// module (terminated globally, or by this module in the current window).
func (m *module) retired(r *Request) bool { return m.cl.retired(r, m.idx) }

// receive handles a request copy arriving at this module (dispatcher step ④,
// plus DAG merge semantics).
func (m *module) receive(r *Request, now time.Duration) {
	if m.retired(r) {
		return
	}
	if len(m.spec.Pres) > 1 {
		// Merge point: wait for all expected branch copies; the merged
		// request's arrival is the latest branch arrival (§4.2: latency along
		// a DAG is the maximum over paths).
		r.mergeArrived++
		if now > r.mergeMaxArrive {
			r.mergeMaxArrive = now
		}
		if r.mergeArrived < r.ExpectedMerge {
			return
		}
		now = r.mergeMaxArrive
	}
	m.rateWin.Observe(now)
	m.inWin.Observe(now)
	e := entry{req: r, arrive: now}
	if m.remainProbe != nil {
		m.probeCount++
		if m.probeCount%m.cl.cfg.Probes.SampleEvery == 0 {
			m.remainProbe.Add(now, float64((r.Deadline - now).Milliseconds()))
		}
	}
	ri := policy.RequestInfo{Send: r.Send, Deadline: r.Deadline, ArriveModule: now}
	if !m.cl.pol.Admit(m.idx, now, ri) {
		m.cl.drop(r, m.idx, now)
		return
	}
	m.dispatch(e, now)
}

// dispatch routes the entry to the least-loaded active worker.
func (m *module) dispatch(e entry, now time.Duration) {
	var best *worker
	for _, w := range m.workers {
		if !w.active {
			continue
		}
		if best == nil || w.load() < best.load() {
			best = w
		}
	}
	if best == nil {
		// All workers deactivated (should not happen with MinWorkers >= 1);
		// drop defensively rather than stranding the request.
		m.cl.drop(e.req, m.idx, now)
		return
	}
	best.enqueue(e, now)
}

// chargeRequest records a batch execution's per-request accounting. Lane
// mode appends to the module-local buffer (merged at the next barrier);
// classic and wall-clock executors apply it immediately — they run the
// core serially by contract, so the plain adds in Request.charge are safe.
func (m *module) chargeRequest(r *Request, gpu, q, w, d time.Duration) {
	if m.cl.bridge != nil {
		m.charges = append(m.charges, chargeRec{req: r, gpu: gpu, q: q, w: w, d: d})
		return
	}
	r.charge(gpu, q, w, d)
}

// observe records decision-time measurements for a batched request
// (controller monitoring, §4.1 step ①).
func (m *module) observe(q, wait, dur time.Duration, now time.Duration) {
	m.qWin.Add(now, q.Seconds())
	m.waitRes.Add(wait.Seconds())
	m.wclWin.Add(now, (q + wait + dur).Seconds())
	if m.waitProbe != nil {
		m.waitProbe.Add(wait.Seconds())
	}
}

// probeBudget records the latency consumed at this module by a completed
// batch member (Fig. 12a).
func (m *module) probeBudget(arrive, done time.Duration) {
	if m.budgetProbe == nil {
		return
	}
	m.budgetProbe.Add(done, float64((done - arrive).Milliseconds()))
}

// publish pushes this module's snapshot to the shared board (sync step ②).
func (m *module) publish(now time.Duration, board *core.Board) {
	qMean, _ := m.qWin.Mean(now)
	wcl := 0.0
	m.wclScratch = m.wclWin.ValuesInto(now, m.wclScratch)
	if len(m.wclScratch) > 0 {
		m.pctScratch = stats.PercentilesInto(m.pctScratch[:0], m.wclScratch, 0.95)
		wcl = m.pctScratch[0]
	}
	st := core.ModuleState{
		QueueDelay:  time.Duration(qMean * float64(time.Second)),
		ProfiledDur: m.targetDur,
		BatchWait:   append([]float64(nil), m.waitRes.Values()...),
		InputRate:   m.inWin.Rate(now),
		Throughput:  m.throughput(now),
		WCL:         time.Duration(wcl * float64(time.Second)),
	}
	st.Overloaded = st.QueueDelay > 20*time.Millisecond
	board.Publish(m.idx, st)

	if m.queueDelayProbe != nil {
		m.queueDelayProbe.Add(now, qMean*1000) // ms
	}
}

// probePriority records load factor and priority mode after a sync
// (Fig. 13).
func (m *module) probePriority(now time.Duration, board *core.Board) {
	if m.loadProbe == nil {
		return
	}
	s := board.Get(m.idx)
	mu := 0.0
	if s.Throughput > 0 {
		mu = s.InputRate / s.Throughput
	}
	m.loadProbe.Add(now, mu)
	mode := 0.0
	if pr, ok := m.cl.pol.(interface {
		Priority(int) *core.PriorityController
	}); ok {
		if pc := pr.Priority(m.idx); pc != nil && pc.Mode() == core.HBF {
			mode = 1
		}
	}
	m.modeProbe.Add(now, mode)
}

// desiredWorkers computes the scaling engine's per-module demand from the
// recent input rate.
func (m *module) desiredWorkers(now time.Duration) int {
	sc := m.cl.cfg.Scaling
	rate := m.rateWin.Rate(now)
	tp := m.model.Throughput(m.targetBatch)
	desired := int(rate*sc.Headroom/tp) + 1
	if desired < sc.MinWorkers {
		desired = sc.MinWorkers
	}
	if desired > sc.MaxWorkers {
		desired = sc.MaxWorkers
	}
	return desired
}

// applyScale adjusts the worker pool toward the desired count (scaling
// engine, Fig. 4).
func (m *module) applyScale(now time.Duration, desired int) {
	active := m.activeWorkers()
	if active > m.peakWorkers {
		m.peakWorkers = active
	}
	if desired > m.peakWorkers {
		m.peakWorkers = desired
	}
	switch {
	case desired > active:
		// Reactivate drained workers first (still warm), then cold-start new
		// ones. Failed workers never come back; replacements are new
		// machines with full cold starts.
		need := desired - active
		for _, w := range m.workers {
			if need == 0 {
				break
			}
			if !w.active && !w.dead {
				w.active = true
				w.pump(now)
				need--
			}
		}
		for ; need > 0; need-- {
			m.addWorker(now, true)
		}
	case desired < active:
		// Deactivate highest-id active workers; they drain naturally.
		for i := len(m.workers) - 1; i >= 0 && active > desired; i-- {
			if m.workers[i].active {
				m.workers[i].active = false
				active--
			}
		}
	}
}

// crash kills up to count active workers (§2 machine failure): their queued,
// forming, and executing requests are lost, and their capacity disappears
// until the scaling engine cold-starts replacements.
func (m *module) crash(now time.Duration, count int) int {
	killed := 0
	for i := len(m.workers) - 1; i >= 0 && killed < count; i-- {
		w := m.workers[i]
		if !w.active || w.dead {
			continue
		}
		w.dead = true
		w.active = false
		w.busy = false
		for _, e := range w.queue.Drain() {
			m.cl.drop(e.req, m.idx, now)
		}
		for _, mem := range w.forming {
			m.cl.drop(mem.e.req, m.idx, now)
		}
		for _, mem := range w.executing {
			m.cl.drop(mem.e.req, m.idx, now)
		}
		w.forming, w.executing = nil, nil
		killed++
	}
	return killed
}
