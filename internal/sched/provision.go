package sched

import (
	"fmt"
	"math"
	"time"

	"pard/internal/pipeline"
	"pard/internal/profile"
)

// ScalingConfig controls the per-module resource scaling engine.
type ScalingConfig struct {
	// Enabled turns autoscaling on. When off, worker counts stay at their
	// initial provisioning (the Fig. 14a stress-test setup).
	Enabled bool
	// Period is how often desired worker counts are re-evaluated.
	Period time.Duration
	// ColdStart is the model cold-start delay before a new worker serves
	// (§2: "resources cannot scale up instantly due to model cold starts").
	ColdStart time.Duration
	// Headroom multiplies the measured rate when computing desired workers.
	Headroom float64
	// MaxWorkers caps workers per module (cluster capacity).
	MaxWorkers int
	// MinWorkers floors workers per module.
	MinWorkers int
	// TotalGPUs, when positive, bounds the sum of workers across all
	// modules (the paper's 64-GPU cluster constraint). When the aggregate
	// demand exceeds it, capacity is granted proportionally to demand.
	TotalGPUs int
}

// DefaultScaling returns the scaling configuration used by the experiments.
func DefaultScaling() ScalingConfig {
	return ScalingConfig{
		Enabled:    true,
		Period:     3 * time.Second,
		ColdStart:  10 * time.Second,
		Headroom:   1.2,
		MaxWorkers: 4,
		MinWorkers: 1,
	}
}

// ProbeConfig enables optional high-volume recordings.
type ProbeConfig struct {
	// QueueDelay records each module's average queueing delay per sync tick
	// (Fig. 12c).
	QueueDelay bool
	// LoadFactor records module 0's load factor μ and priority mode per sync
	// tick (Fig. 13).
	LoadFactor bool
	// Budget records per-module consumed latency budget of completed
	// requests over time (Fig. 12a) and remaining budgets at module arrival
	// (Fig. 12d).
	Budget bool
	// Decomposition records per-request ΣQ/ΣW/ΣD samples (Fig. 12b) and
	// per-module batch-wait samples (Fig. 6).
	Decomposition bool
	// SampleEvery subsamples per-request probes (1 = every request).
	SampleEvery int
}

// Failure describes one injected machine failure: at time At, Count workers
// of module Module crash. Requests queued or executing on a crashed worker
// at that moment are lost (recorded as drops at that module); replacement
// capacity arrives only through the scaling engine's cold-start path.
type Failure struct {
	At     time.Duration
	Module int
	Count  int
}

// TargetBatches picks each module's target batch size: the largest batch
// whose profiled duration fits the module's share of the execution budget
// SLO·frac, distributed proportionally to single-request durations. It
// returns the batch sizes and their profiled durations.
func TargetBatches(spec *pipeline.Spec, lib *profile.Library, frac float64) ([]int, []time.Duration, error) {
	if frac <= 0 || frac > 1 {
		return nil, nil, fmt.Errorf("sched: batch fraction %v outside (0,1]", frac)
	}
	n := spec.N()
	models := make([]profile.Model, n)
	var d1Sum time.Duration
	for k := 0; k < n; k++ {
		m, err := lib.Get(spec.Modules[k].Name)
		if err != nil {
			return nil, nil, err
		}
		models[k] = m
		d1Sum += m.Duration(1)
	}
	batches := make([]int, n)
	durs := make([]time.Duration, n)
	budget := time.Duration(float64(spec.SLO) * frac)
	for k := 0; k < n; k++ {
		share := time.Duration(float64(budget) * float64(models[k].Duration(1)) / float64(d1Sum))
		b := models[k].BestBatch(share)
		if b < 1 {
			b = 1
		}
		batches[k] = b
		durs[k] = models[k].Duration(b)
	}
	return batches, durs, nil
}

// ApplyGPUBudget scales per-module worker demands down proportionally when
// their sum exceeds the cluster budget, flooring each module at min. A
// budget <= 0 means unlimited.
func ApplyGPUBudget(desired []int, budget, min int) {
	if budget <= 0 {
		return
	}
	total := 0
	for _, d := range desired {
		total += d
	}
	if total <= budget {
		return
	}
	for k := range desired {
		grant := desired[k] * budget / total
		if grant < min {
			grant = min
		}
		desired[k] = grant
	}
}

// ProvisionWorkers computes per-module worker counts able to sustain the
// given request rate with the target batch sizes, clamped to [min, max].
func ProvisionWorkers(spec *pipeline.Spec, lib *profile.Library, batches []int, rate, headroom float64, min, max int) ([]int, error) {
	n := spec.N()
	out := make([]int, n)
	for k := 0; k < n; k++ {
		m, err := lib.Get(spec.Modules[k].Name)
		if err != nil {
			return nil, err
		}
		tp := m.Throughput(batches[k])
		w := int(math.Ceil(rate * headroom / tp))
		if w < min {
			w = min
		}
		if w > max {
			w = max
		}
		out[k] = w
	}
	return out, nil
}
