package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pard/internal/sim"
)

func TestSimExecutorOrdersByTimestamp(t *testing.T) {
	eng := sim.New(1)
	x := NewSimExecutor(eng)
	var order []int
	x.Schedule(2*time.Second, "b", func(now time.Duration) {
		if now != 2*time.Second {
			t.Fatalf("b fired at %v", now)
		}
		order = append(order, 2)
	})
	x.Schedule(time.Second, "a", func(now time.Duration) { order = append(order, 1) })
	eng.Run(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestManualExecutorDeterministicOrder(t *testing.T) {
	x := NewManualExecutor()
	var order []string
	x.Schedule(time.Second, "a", func(time.Duration) { order = append(order, "a") })
	x.Schedule(time.Second, "b", func(time.Duration) {
		order = append(order, "b")
		// Follow-up due in the same pass.
		x.Schedule(time.Second, "c", func(time.Duration) { order = append(order, "c") })
	})
	x.Schedule(500*time.Millisecond, "first", func(time.Duration) { order = append(order, "first") })
	x.RunUntil(750 * time.Millisecond)
	if len(order) != 1 || order[0] != "first" {
		t.Fatalf("after partial run: %v", order)
	}
	if x.Now() != 750*time.Millisecond {
		t.Fatalf("clock = %v", x.Now())
	}
	x.RunUntil(time.Second)
	want := []string{"first", "a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if x.Pending() != 0 {
		t.Fatalf("%d events left", x.Pending())
	}
}

func TestManualExecutorDrain(t *testing.T) {
	x := NewManualExecutor()
	n := 0
	var chainFn func(time.Duration)
	chainFn = func(now time.Duration) {
		n++
		if n < 5 {
			x.Schedule(now+time.Second, "chain", chainFn)
		}
	}
	x.Schedule(time.Second, "chain", chainFn)
	if end := x.Drain(); end != 5*time.Second {
		t.Fatalf("drain ended at %v", end)
	}
	if n != 5 {
		t.Fatalf("fired %d", n)
	}
}

func TestTimerExecutorRunsAndSerializes(t *testing.T) {
	x := NewTimerExecutor()
	defer x.Stop()
	var mu sync.Mutex
	inside := 0
	maxInside := 0
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		x.Schedule(x.Now()+time.Duration(i%4)*time.Millisecond, "cb", func(time.Duration) {
			mu.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
			mu.Lock()
			inside--
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	if maxInside != 1 {
		t.Fatalf("callbacks overlapped: max concurrency %d", maxInside)
	}
}

func TestTimerExecutorStopCancelsPending(t *testing.T) {
	x := NewTimerExecutor()
	var fired atomic.Int32
	x.Schedule(x.Now()+time.Hour, "never", func(time.Duration) { fired.Add(1) })
	x.Stop()
	if fired.Load() != 0 {
		t.Fatal("cancelled timer fired")
	}
	// Schedule after Stop is a no-op, and Stop is idempotent.
	x.Schedule(x.Now(), "late", func(time.Duration) { fired.Add(1) })
	x.Stop()
	time.Sleep(5 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("post-stop schedule fired")
	}
}

// TestTimerExecutorReentrantSchedule exercises Schedule called from inside a
// callback (the core's forward/batch-end path under the live server).
func TestTimerExecutorReentrantSchedule(t *testing.T) {
	x := NewTimerExecutor()
	defer x.Stop()
	done := make(chan struct{})
	x.Schedule(x.Now(), "outer", func(now time.Duration) {
		x.Schedule(now, "inner", func(time.Duration) { close(done) })
	})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("reentrant schedule never fired")
	}
}
