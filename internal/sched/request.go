package sched

import (
	"time"
)

// Request is one client request traversing the pipeline. For DAG pipelines a
// single Request is shared by all branch copies; per-branch state lives in
// the queue entries.
type Request struct {
	ID       uint64
	Send     time.Duration // t_s
	Deadline time.Duration // Send + SLO

	// Accumulated GPU time charged to this request (d(b)/b per batch).
	GPU time.Duration

	// Aggregate latency decomposition across all modules the request
	// executed in (Fig. 12b).
	SumQ, SumW, SumD time.Duration

	// Drop state. A request dropped in any branch is globally dropped.
	Dropped    bool
	DropModule int
	DropAt     time.Duration

	// Completion state.
	Finished bool
	DoneAt   time.Duration

	// Payload is opaque host state carried alongside the request (the live
	// server stores the client's response channel here). The core never
	// touches it.
	Payload any

	// ExpectedMerge is how many branch copies the merge module must collect
	// (1 for exclusive fan-out, fan-out degree otherwise). Zero for chains.
	ExpectedMerge int
	// mergeArrived counts branch copies that reached the merge module.
	mergeArrived int
	// mergeMaxArrive tracks the latest branch arrival (merge semantics:
	// end-to-end latency is the max across branches, §4.2).
	mergeMaxArrive time.Duration
}

// entry is a request instance queued at a specific module (a branch copy in
// DAG pipelines).
type entry struct {
	req *Request
	// arrive is t_r at this module.
	arrive time.Duration
}

// retired reports whether the request needs no further processing on this
// path (already dropped elsewhere).
func (e entry) retired() bool { return e.req.Dropped || e.req.Finished }
