package sched

import (
	"time"
)

// Request is one client request traversing the pipeline. For DAG pipelines a
// single Request is shared by all branch copies; per-branch state lives in
// the queue entries.
type Request struct {
	ID       uint64
	Send     time.Duration // t_s
	Deadline time.Duration // Send + SLO

	// Accumulated GPU time charged to this request (d(b)/b per batch).
	GPU time.Duration

	// Aggregate latency decomposition across all modules the request
	// executed in (Fig. 12b).
	SumQ, SumW, SumD time.Duration

	// Drop state. A request dropped in any branch is globally dropped.
	Dropped    bool
	DropModule int
	DropAt     time.Duration

	// Completion state.
	Finished bool
	DoneAt   time.Duration

	// Payload is opaque host state carried alongside the request (the live
	// server stores the client's response channel here). The core never
	// touches it.
	Payload any

	// ExpectedMerge is how many branch copies the merge module must collect
	// (1 for exclusive fan-out, fan-out degree otherwise). Zero for chains.
	ExpectedMerge int
	// mergeArrived counts branch copies that reached the merge module.
	mergeArrived int
	// mergeMaxArrive tracks the latest branch arrival (merge semantics:
	// end-to-end latency is the max across branches, §4.2).
	mergeMaxArrive time.Duration
}

// charge accumulates a batch execution's per-request accounting. Callers
// guarantee serial context: classic and wall-clock executors run the core
// single-threaded by contract, and lane mode routes charges through
// per-module buffers merged at the window barrier with every lane parked
// (see module.chargeRequest) — which is why these are plain adds, not the
// per-event atomics they once were. The totals are order-independent sums,
// so the result stays deterministic.
func (r *Request) charge(gpu, q, w, d time.Duration) {
	r.GPU += gpu
	r.SumQ += q
	r.SumW += w
	r.SumD += d
}

// chargeRec is one buffered charge awaiting the barrier merge (lane mode).
type chargeRec struct {
	req          *Request
	gpu, q, w, d time.Duration
}

// resetMerge arms the merge bookkeeping for the next fan-out region: n
// branch copies must arrive before the merge module proceeds.
func (r *Request) resetMerge(n int) {
	r.ExpectedMerge = n
	r.mergeArrived = 0
	r.mergeMaxArrive = 0
}

// entry is a request instance queued at a specific module (a branch copy in
// DAG pipelines).
type entry struct {
	req *Request
	// arrive is t_r at this module.
	arrive time.Duration
}
