package sched

import (
	"time"

	"pard/internal/depq"
	"pard/internal/policy"
)

// batchMember is a request inside a forming or executing batch, with its
// decision-time measurements.
type batchMember struct {
	e  entry
	tb time.Duration // when placed into the batch (decision time t_b)
	q  time.Duration // queueing delay Q_k = t_b − t_r
}

// worker is one GPU container serving a module. Under the simulator it is a
// simulated machine; under the live server its batch executions occupy real
// wall-clock timers.
type worker struct {
	mod *module
	id  int

	queue depq.Queue[entry]

	forming   []batchMember
	executing []batchMember
	// spare recycles the last finished batch's slab: startBatch hands it to
	// the next forming batch, so a worker in steady state cycles two slabs
	// indefinitely instead of allocating one per batch.
	spare     []batchMember
	busy      bool
	execStart time.Duration
	execDur   time.Duration
	execEnd   time.Duration

	active    bool // dispatcher eligibility
	dead      bool // crashed (never serves again)
	coldUntil time.Duration
}

func newWorker(m *module, id int) *worker {
	w := &worker{mod: m, id: id, active: true}
	if m.cl.pol.Queue() == policy.KindDEPQ {
		w.queue = depq.New[entry]()
	} else {
		w.queue = depq.NewFIFO[entry]()
	}
	return w
}

// load is the dispatcher's balancing metric.
func (w *worker) load() int { return w.queue.Len() + len(w.forming) }

// warm reports whether the worker can serve at time now.
func (w *worker) warm(now time.Duration) bool { return now >= w.coldUntil }

// enqueue adds a request copy and advances the pipeline.
func (w *worker) enqueue(e entry, now time.Duration) {
	w.queue.Push(e, int64(e.req.Deadline))
	w.pump(now)
}

// pump advances the worker: fills the forming batch and starts execution
// when the GPU is idle.
func (w *worker) pump(now time.Duration) {
	if w.dead || !w.warm(now) {
		return
	}
	if w.busy {
		w.fill(now, w.execEnd)
		return
	}
	w.fill(now, now)
	if len(w.forming) > 0 {
		w.startBatch(now)
	}
}

// fill pops queued requests into the forming batch up to the target size,
// applying the drop policy to each popped request (decision time t_b = now,
// expected batch start t_e = te). This is the Request Broker step ⑥ of
// Fig. 4.
func (w *worker) fill(now, te time.Duration) {
	m := w.mod
	for len(w.forming) < m.targetBatch && w.queue.Len() > 0 {
		var e entry
		var ok bool
		if m.cl.pol.PopEnd(m.idx) == policy.MaxEnd {
			e, _, ok = w.queue.PopMax()
		} else {
			e, _, ok = w.queue.PopMin()
		}
		if !ok {
			return
		}
		if m.retired(e.req) {
			continue // dropped in a parallel branch; discard silently
		}
		ctx := policy.DecideCtx{
			Req: policy.RequestInfo{
				Send:         e.req.Send,
				Deadline:     e.req.Deadline,
				ArriveModule: e.arrive,
			},
			Module:        m.idx,
			Now:           now,
			ExpectedStart: te,
			ExecDur:       m.targetDur,
			SLO:           m.cl.cfg.Spec.SLO,
		}
		if !m.cl.pol.Decide(ctx) {
			m.cl.drop(e.req, m.idx, now)
			continue
		}
		w.forming = append(w.forming, batchMember{e: e, tb: now, q: now - e.arrive})
	}
}

// startBatch promotes the forming batch to the GPU and immediately begins
// collecting the next batch (Fig. 3b: the scheduler "collects the next batch
// right after the previous one begins execution").
func (w *worker) startBatch(now time.Duration) {
	m := w.mod
	w.executing = w.forming
	w.forming = w.spare[:0]
	w.spare = nil
	w.busy = true
	w.execStart = now
	w.execDur = m.execDuration(len(w.executing))
	w.execEnd = now + w.execDur

	// Decision-time stats per member, now that the actual start is known:
	// W_k = start − t_b.
	for i := range w.executing {
		mem := &w.executing[i]
		m.observe(mem.q, now-mem.tb, w.execDur, now)
	}
	m.cl.scheduleBatchEnd(w, w.execEnd)

	// Collect the next batch while this one executes.
	w.fill(now, w.execEnd)
}

// batchEnd finalizes the executing batch: charges GPU time, forwards
// survivors downstream, and starts the next batch.
func (w *worker) batchEnd(now time.Duration) {
	if w.dead {
		return // GPU crashed mid-execution; members were dropped at crash time
	}
	m := w.mod
	batch := w.executing
	w.executing = nil
	w.busy = false

	n := len(batch)
	if n > 0 {
		perReqGPU := w.execDur / time.Duration(n)
		for i := range batch {
			mem := &batch[i]
			r := mem.e.req
			// Lane mode buffers the charge module-locally and merges it at
			// the next barrier: parallel DAG branches may finish batches
			// holding copies of the same request in concurrently running
			// lanes, and batching keeps the hot path free of shared writes.
			m.chargeRequest(r, perReqGPU, mem.q, w.execStart-mem.tb, w.execDur)
			m.probeBudget(mem.e.arrive, now)
			if m.retired(r) {
				continue // executed alongside, but the request is already dead
			}
			m.cl.forward(r, m.idx, now)
		}
	}
	w.spare = batch[:0] // recycle the drained slab for the next forming batch

	// Promote the batch that formed during execution, or refill from queue.
	if len(w.forming) > 0 {
		w.startBatch(now)
		return
	}
	w.pump(now)
}
