package sched

import (
	"fmt"
	"sync"
	"time"

	"pard/internal/depq"
)

// ShardedExecutor executes the scheduling core with the global event heap
// partitioned into per-module lanes (one depq-backed queue per module) plus a
// serial control lane for cluster-wide events (state sync, scaling, injected
// failures). Independent modules of a pipeline advance concurrently inside
// lookahead windows; a low-watermark barrier on virtual time keeps the
// execution deterministic for ANY shard count:
//
//   - Within a lane, events fire in (timestamp, insertion-order) order, the
//     same contract as the global heap.
//   - Lanes advance together through windows [low, high): low is the minimum
//     pending lane timestamp across all lanes (the low watermark), high is
//     low + lookahead, clamped to the next control event. Cross-lane
//     messages travel at least one network hop (lookahead = the per-hop
//     delay), so nothing produced inside a window can be consumed inside it:
//     the lanes of a window are independent and their relative execution
//     order — and therefore the shard count and thread schedule — is
//     unobservable.
//   - Cross-lane events (batch hand-off, DAG fan-out/merge hops) are posted
//     to per-lane outboxes and exchanged at the window barrier through a
//     deterministic ordered mailbox keyed by (virtual time, source module,
//     sequence).
//   - Control events run serially at the barrier with every lane parked, and
//     take precedence over lane events at equal timestamps.
//
// With a zero lookahead the window degenerates to a single timestamp and
// same-time cross-lane messages are exchanged through fixpoint sub-rounds;
// execution stays correct and deterministic, merely without parallelism.
//
// A ShardedExecutor is single-use: build, schedule initial events, Run.
//
// With a multi-group Topology (NewShardedExecutorTopo), the executor is one
// lane group of a replicated cluster: it executes only the lanes it owns,
// exchanges its low watermark and cross-group mailbox posts through the
// Transport each iteration, and verifies control-lane lockstep against its
// peers — see transport.go for the distribution model. The single-group
// path never touches the Transport and is bit- and allocation-identical to
// the pre-topology executor.
type ShardedExecutor struct {
	lookahead time.Duration
	shards    int

	lanes []*laneState
	ctrl  *laneState

	frontier time.Duration
	running  bool
	fired    uint64

	barrierFn func() error
	mailbox   []post // barrier-scope scratch for merged outboxes

	pool *shardPool

	// Lane-group state (zero/nil on the single-group path).
	topo      Topology
	tr        Transport
	ctrlHook  func() error // runs after every control event (multi-group)
	err       error        // first transport/lockstep error; aborts the run
	wireOut   []WirePost   // this window's cross-group posts (handed off per barrier)
	staged    []post       // this barrier's local + decoded remote posts
	laneFired uint64
}

// laneEvent is one scheduled event inside a lane. The hot-path kinds —
// request arrivals and hops, batch completions, worker warmups — are
// encoded as typed ops dispatched by fire, so scheduling one moves a plain
// value through the lane queues and mailboxes with no per-event closure
// allocation; host and control events (sync ticks, failures) keep the
// closure form.
type laneEvent struct {
	name string
	fn   func(now time.Duration) // opFn only
	op   laneOp
	m    *module  // opReceive destination
	w    *worker  // opBatchEnd / opWarmup worker
	req  *Request // opReceive payload
}

// laneOp tags a laneEvent's dispatch kind.
type laneOp uint8

const (
	opFn       laneOp = iota // fire the fn closure
	opReceive                // m.receive(req, now): arrivals and cross-module hops
	opBatchEnd               // w.batchEnd(now)
	opWarmup                 // w.pump(now): cold-start wakeup
)

// fire dispatches the event at virtual time now.
func (ev *laneEvent) fire(now time.Duration) {
	switch ev.op {
	case opReceive:
		ev.m.receive(ev.req, now)
	case opBatchEnd:
		ev.w.batchEnd(now)
	case opWarmup:
		ev.w.pump(now)
	default:
		ev.fn(now)
	}
}

// laneState is one event lane: a min-ordered queue (keyed by timestamp,
// FIFO-tied by insertion) plus the lane-local clock and this window's outbox.
type laneState struct {
	id    int
	q     *depq.DEPQ[laneEvent]
	now   time.Duration
	fired uint64

	// outbox collects cross-lane sends made while this lane executes; it is
	// flushed into the mailbox at the window barrier.
	outbox []post
}

func newLaneState(id int) *laneState {
	return &laneState{id: id, q: depq.New[laneEvent]()}
}

// push inserts an event; insertion order breaks timestamp ties (depq keeps
// FIFO order among equal keys).
func (l *laneState) push(at time.Duration, ev laneEvent) {
	l.q.Push(ev, int64(at))
}

// peek returns the next pending timestamp.
func (l *laneState) peek() (time.Duration, bool) {
	_, key, ok := l.q.PeekMin()
	return time.Duration(key), ok
}

// run fires every pending event with timestamp < hi — or == lo, which
// guarantees progress when the lookahead is zero — including events the
// callbacks push onto this same lane.
func (l *laneState) run(lo, hi time.Duration) {
	for {
		ev, key, ok := l.q.PeekMin()
		if !ok {
			return
		}
		at := time.Duration(key)
		if at >= hi && at != lo {
			return
		}
		l.q.PopMin()
		if at > l.now {
			l.now = at
		}
		l.fired++
		ev.fire(l.now)
	}
}

// NewShardedExecutor builds an executor with one lane per module and up to
// shards concurrent workers (clamped to [1, lanes]). lookahead is the
// minimum cross-lane event delay — the cluster's per-hop network delay — and
// bounds how far lanes may run ahead of the low watermark.
func NewShardedExecutor(lanes, shards int, lookahead time.Duration) *ShardedExecutor {
	if lanes < 1 {
		panic(fmt.Sprintf("sched: sharded executor needs >= 1 lanes, got %d", lanes))
	}
	if shards < 1 {
		shards = 1
	}
	if shards > lanes {
		shards = lanes
	}
	if lookahead < 0 {
		lookahead = 0
	}
	x := &ShardedExecutor{
		lookahead: lookahead,
		shards:    shards,
		ctrl:      newLaneState(-1),
	}
	for i := 0; i < lanes; i++ {
		x.lanes = append(x.lanes, newLaneState(i))
	}
	return x
}

// NewShardedExecutorTopo builds an executor running one lane group of a
// multi-group topology over the given transport. With a single-group
// topology the transport may be nil and the executor is identical to
// NewShardedExecutor's.
func NewShardedExecutorTopo(lanes, shards int, lookahead time.Duration, topo Topology, tr Transport) (*ShardedExecutor, error) {
	if err := topo.validate(); err != nil {
		return nil, err
	}
	if !topo.single() && tr == nil {
		return nil, fmt.Errorf("sched: %d lane groups need a transport", topo.Groups)
	}
	x := NewShardedExecutor(lanes, shards, lookahead)
	x.topo = topo
	if !topo.single() {
		x.tr = tr
	}
	return x, nil
}

// multi reports whether this executor is one group of a multi-group run.
func (x *ShardedExecutor) multi() bool { return x.tr != nil }

// Topology returns the executor's lane-group placement (zero value on the
// single-group path).
func (x *ShardedExecutor) Topology() Topology { return x.topo }

// Err returns the error that aborted the run, if any: a transport failure,
// a control-lane lockstep divergence, or a non-wire event reaching the
// group boundary. Multi-group hosts must check it after Run.
func (x *ShardedExecutor) Err() error { return x.err }

// fail records the first fatal error and poisons the transport so peer
// groups abort instead of hanging at their next rendezvous.
func (x *ShardedExecutor) fail(err error) {
	if err == nil || x.err != nil {
		return
	}
	x.err = err
	if x.tr != nil {
		x.tr.Abort(err)
	}
}

// Lanes returns the lane count (the cluster's module count).
func (x *ShardedExecutor) Lanes() int { return len(x.lanes) }

// Shards returns the effective worker count.
func (x *ShardedExecutor) Shards() int { return x.shards }

// Lookahead returns the conservative window size.
func (x *ShardedExecutor) Lookahead() time.Duration { return x.lookahead }

// Now returns the executor's committed virtual time (the barrier frontier).
// Lane callbacks should use the time passed to them, which may run ahead of
// the frontier inside a window.
func (x *ShardedExecutor) Now() time.Duration { return x.frontier }

// Fired returns the number of events dispatched. The count is deterministic:
// it is identical for every shard count.
func (x *ShardedExecutor) Fired() uint64 { return x.fired }

// Schedule registers a control event: it runs serially at the barrier with
// all lanes parked, so the callback may touch cross-module state (boards,
// policy, worker pools) freely. Hosts use it for sync ticks, scaling ticks
// and injected failures. Must not be called from lane callbacks.
func (x *ShardedExecutor) Schedule(at time.Duration, name string, fn func(now time.Duration)) {
	if at < x.frontier {
		at = x.frontier
	}
	x.ctrl.push(at, laneEvent{name: name, fn: fn})
}

// Ticker repeatedly schedules fn on the control lane every period until the
// predicate returns false. The first tick fires at Now()+period, mirroring
// sim.Engine.Ticker.
func (x *ShardedExecutor) Ticker(period time.Duration, name string, fn func(now time.Duration) bool) {
	if period <= 0 {
		panic(fmt.Sprintf("sched: Ticker period must be positive, got %v", period))
	}
	var tick func(time.Duration)
	tick = func(now time.Duration) {
		if !fn(now) {
			return
		}
		x.Schedule(now+period, name, tick)
	}
	x.Schedule(x.frontier+period, name, tick)
}

// scheduleLane registers fn on lane dst at absolute time at; it is the
// closure-form convenience over scheduleLaneEvent.
func (x *ShardedExecutor) scheduleLane(src, dst int, at time.Duration, name string, fn func(time.Duration)) {
	x.scheduleLaneEvent(src, dst, at, laneEvent{name: name, fn: fn})
}

// scheduleLaneEvent registers ev on lane dst at absolute time at. src
// identifies the calling context: the executing lane, or -1 for
// host/control/barrier context (every lane parked). Same-lane and
// control-context schedules insert directly; cross-lane schedules from a
// running lane are posted to the source lane's outbox and delivered at the
// window barrier in mailbox order. This implements the cluster-facing
// laneScheduler interface; the event travels by value the whole way, so
// the steady-state hot path allocates nothing.
func (x *ShardedExecutor) scheduleLaneEvent(src, dst int, at time.Duration, ev laneEvent) {
	l := x.lanes[dst]
	if src < 0 || !x.running {
		// Host/control context is replicated across lane groups: every group
		// executes this schedule, so a group only enqueues events for lanes
		// it owns — the owner's identical copy is the one that runs.
		if x.tr != nil && !x.topo.owns(dst) {
			return
		}
		if at < x.frontier {
			at = x.frontier
		}
		l.push(at, ev)
		return
	}
	from := x.lanes[src]
	if at < from.now {
		at = from.now
	}
	if src == dst {
		l.push(at, ev)
		return
	}
	from.outbox = append(from.outbox, post{src: src, dst: dst, at: at, ev: ev})
}

// setBarrierHook registers fn to run at every window barrier (after mailbox
// delivery, with all lanes parked). The cluster uses it to commit deferred
// drop/completion intents in deterministic order; in a multi-group topology
// the hook also performs the barrier exchange, and its error aborts the run.
func (x *ShardedExecutor) setBarrierHook(fn func() error) { x.barrierFn = fn }

// setControlHook registers fn to run after every control event. The cluster
// uses it in multi-group mode to exchange and commit control-context
// terminations, keeping the replicas lockstep-identical between events.
func (x *ShardedExecutor) setControlHook(fn func() error) { x.ctrlHook = fn }

// takeWirePosts hands off this window's cross-group posts. Ownership moves
// to the caller (the slice goes on the wire or into a peer's hands), so the
// buffer is not recycled.
func (x *ShardedExecutor) takeWirePosts() []WirePost {
	out := x.wireOut
	x.wireOut = nil
	return out
}

// stagePost adds one post (local, or decoded from a peer group) to the
// barrier's pending delivery set.
func (x *ShardedExecutor) stagePost(p post) { x.staged = append(x.staged, p) }

// deliverStaged pushes the staged posts into their destination lanes in
// mailbox order. Equal (time, source) runs never span groups — a source
// lane lives in exactly one group — so the stable sort reproduces the exact
// single-process delivery order regardless of group count.
func (x *ShardedExecutor) deliverStaged() {
	if len(x.staged) == 0 {
		return
	}
	sortPosts(x.staged)
	for i := range x.staged {
		p := &x.staged[i]
		x.lanes[p.dst].push(p.at, p.ev)
	}
	x.staged = x.staged[:0]
}

// encodeWirePost converts one cross-group post to its wire shape. Only the
// typed receive op may cross the boundary; a closure reaching the wire is a
// programming error and aborts the run loudly.
func encodeWirePost(p *post) (WirePost, error) {
	if p.ev.op != opReceive || p.ev.fn != nil || p.ev.req == nil {
		return WirePost{}, fmt.Errorf("sched: event %q (op %d) cannot cross lane groups: only typed receive events are wire-shaped", p.ev.name, p.ev.op)
	}
	return WirePost{At: p.at, Src: int32(p.src), Dst: int32(p.dst), Req: p.ev.req.ID}, nil
}

// minLane returns the low watermark: the earliest pending lane timestamp.
func (x *ShardedExecutor) minLane() (time.Duration, bool) {
	var min time.Duration
	ok := false
	for _, l := range x.lanes {
		if at, has := l.peek(); has && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}

// runControl fires every control event at exactly time t, including ones the
// callbacks schedule at t. In multi-group mode the control hook runs after
// each event so replicated state commits in lockstep before the next event
// (or any predicate evaluated by the event's own closure sequencing) reads
// it.
func (x *ShardedExecutor) runControl(t time.Duration) {
	for {
		_, key, ok := x.ctrl.q.PeekMin()
		if !ok || time.Duration(key) != t {
			return
		}
		ev, _, _ := x.ctrl.q.PopMin()
		if t > x.ctrl.now {
			x.ctrl.now = t
		}
		x.ctrl.fired++
		ev.fire(t)
		if x.ctrlHook != nil {
			if err := x.ctrlHook(); err != nil {
				x.fail(err)
			}
		}
		if x.err != nil {
			return
		}
	}
}

// runWindow executes every lane over [lo, hi), fanned out across the shard
// pool. Lanes touch disjoint state inside a window (cross-lane effects are
// mailbox- or barrier-mediated), so the assignment of lanes to shards and
// the thread schedule cannot change the outcome. Windows with work in a
// single lane — the common case in sparse phases — run inline on the
// coordinator, skipping the pool wakeup entirely.
func (x *ShardedExecutor) runWindow(lo, hi time.Duration) {
	if x.shards <= 1 {
		for _, l := range x.lanes {
			l.run(lo, hi)
		}
		return
	}
	var only *laneState
	active := 0
	for _, l := range x.lanes {
		if at, ok := l.peek(); ok && (at < hi || at == lo) {
			if active++; active > 1 {
				break
			}
			only = l
		}
	}
	switch active {
	case 0:
		return
	case 1:
		only.run(lo, hi)
	default:
		x.pool.run(lo, hi)
	}
}

// flushOutboxes merges every lane's outbox and delivers the posts into their
// destination lanes in mailbox order: (virtual time, source module, send
// sequence). Insertion order assigns the destination-lane FIFO tiebreak, so
// delivery — and everything downstream of it — is deterministic.
func (x *ShardedExecutor) flushOutboxes() {
	all := x.mailbox[:0]
	for _, l := range x.lanes {
		if len(l.outbox) > 0 {
			all = append(all, l.outbox...)
			l.outbox = l.outbox[:0]
		}
	}
	x.mailbox = all[:0]
	if len(all) == 0 {
		return
	}
	if x.tr != nil {
		// Multi-group: split the merged outbox into locally-owned posts
		// (staged for delivery after the barrier exchange, merged with the
		// peers' incoming posts) and cross-group posts (encoded for the
		// wire; the barrier hook hands them to the transport).
		for i := range all {
			p := &all[i]
			if x.topo.owns(p.dst) {
				x.staged = append(x.staged, *p)
				continue
			}
			wp, err := encodeWirePost(p)
			if err != nil {
				x.fail(err)
				return
			}
			x.wireOut = append(x.wireOut, wp)
		}
		return
	}
	sortPosts(all)
	for i := range all {
		p := &all[i]
		x.lanes[p.dst].push(p.at, p.ev)
	}
}

// stepExchange all-reduces the per-iteration step state across lane groups:
// it verifies the replicated control lane is in lockstep (aborting on
// divergence — never drifting silently) and returns the global low
// watermark over every group's owned lanes.
func (x *ShardedExecutor) stepExchange(tCtrl time.Duration, okC bool, tLane time.Duration, okL bool) (time.Duration, bool) {
	all, err := x.tr.Step(StepMsg{
		Group:  int32(x.topo.Group),
		CtrlAt: tCtrl, CtrlOK: okC,
		LaneAt: tLane, LaneOK: okL,
	})
	if err != nil {
		x.fail(err)
		return 0, false
	}
	gLane, gOK := time.Duration(0), false
	for _, m := range all {
		if m.CtrlOK != okC || (okC && m.CtrlAt != tCtrl) {
			x.fail(fmt.Errorf("sched: control-lane divergence: group %d next control (%v,%t), group %d (%v,%t)",
				x.topo.Group, tCtrl, okC, m.Group, m.CtrlAt, m.CtrlOK))
			return 0, false
		}
		if m.LaneOK && (!gOK || m.LaneAt < gLane) {
			gLane, gOK = m.LaneAt, true
		}
	}
	return gLane, gOK
}

// Run drives the event loop to completion: alternating control rounds and
// barrier-synchronized lane windows until every queue drains. It returns the
// final virtual time. Multi-group hosts must check Err afterwards: a
// transport failure or lockstep divergence aborts the loop cleanly.
func (x *ShardedExecutor) Run() time.Duration {
	if x.running {
		panic("sched: ShardedExecutor.Run called twice")
	}
	x.running = true
	if x.shards > 1 {
		x.pool = newShardPool(x.lanes, x.shards)
		defer x.pool.stop()
	}
	defer func() {
		x.running = false
		lane := uint64(0)
		for _, l := range x.lanes {
			lane += l.fired
		}
		x.laneFired = lane
		x.fired = x.ctrl.fired + lane
	}()
	for x.err == nil {
		tCtrl, okC := x.ctrl.peek()
		tLane, okL := x.minLane()
		if x.tr != nil {
			// The watermark is a global minimum over every group's owned
			// lanes; the control queues must agree exactly (they are
			// replicated), which stepExchange verifies.
			tLane, okL = x.stepExchange(tCtrl, okC, tLane, okL)
			if x.err != nil {
				break
			}
		}
		switch {
		case !okC && !okL:
			return x.frontier
		case okC && (!okL || tCtrl <= tLane):
			// Control precedes lane events at equal timestamps.
			x.frontier = tCtrl
			x.runControl(tCtrl)
		default:
			hi := tLane + x.lookahead
			if okC && tCtrl < hi {
				hi = tCtrl
			}
			if hi < tLane {
				hi = tLane // zero lookahead: the window is the watermark itself
			}
			x.runWindow(tLane, hi)
			x.flushOutboxes()
			if x.barrierFn != nil && x.err == nil {
				if err := x.barrierFn(); err != nil {
					x.fail(err)
				}
			}
			if hi > x.frontier {
				x.frontier = hi
			}
		}
	}
	return x.frontier
}

// FiredControl returns the replicated control-lane event count.
func (x *ShardedExecutor) FiredControl() uint64 { return x.ctrl.fired }

// FiredLanes returns the event count of this executor's (owned) lanes.
func (x *ShardedExecutor) FiredLanes() uint64 { return x.laneFired }

// parallelLanes runs fn(lane) for every lane, fanned out across the shard
// pool when one is live (control/barrier context between windows), inline
// otherwise. fn must touch only lane-local state — the cluster uses this to
// fan out the sync tick's per-module state publication, whose percentile
// sorts are the dominant serial cost of a sync round.
func (x *ShardedExecutor) parallelLanes(fn func(lane int)) {
	if x.pool == nil {
		for i := range x.lanes {
			fn(i)
		}
		return
	}
	x.pool.each(fn)
}

// shardPool is a set of persistent worker goroutines, one per shard, each
// owning a static stripe of lanes (lane i belongs to shard i mod S). Workers
// park between windows; the coordinator wakes them with a job — a lane
// window to execute or a per-lane function — and waits for all stripes to
// finish.
type shardPool struct {
	lanes  []*laneState
	shards int
	start  []chan shardJob
	wg     sync.WaitGroup
}

type shardJob struct {
	lo, hi time.Duration
	each   func(lane int) // when set, run this instead of the window
}

func newShardPool(lanes []*laneState, shards int) *shardPool {
	p := &shardPool{lanes: lanes, shards: shards}
	for s := 0; s < shards; s++ {
		ch := make(chan shardJob)
		p.start = append(p.start, ch)
		go func(s int, ch chan shardJob) {
			for j := range ch {
				for i := s; i < len(p.lanes); i += p.shards {
					if j.each != nil {
						j.each(i)
					} else {
						p.lanes[i].run(j.lo, j.hi)
					}
				}
				p.wg.Done()
			}
		}(s, ch)
	}
	return p
}

// run executes one window across all shards and blocks until the barrier.
func (p *shardPool) run(lo, hi time.Duration) {
	p.dispatch(shardJob{lo: lo, hi: hi})
}

// each runs fn over every lane across the shards and blocks until done.
func (p *shardPool) each(fn func(lane int)) {
	p.dispatch(shardJob{each: fn})
}

func (p *shardPool) dispatch(j shardJob) {
	p.wg.Add(p.shards)
	for _, ch := range p.start {
		ch <- j
	}
	p.wg.Wait()
}

// stop terminates the worker goroutines.
func (p *shardPool) stop() {
	for _, ch := range p.start {
		close(ch)
	}
}
