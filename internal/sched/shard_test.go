package sched

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// logOf runs a scripted cascade on a fresh executor and returns the per-lane
// firing logs plus the control log. The script seeds initial events; each
// lane callback appends "name@time" to its lane's log (lane callbacks only
// touch their own lane's log, so logging is safe at any shard count).
func logOf(t *testing.T, lanes, shards int, lookahead time.Duration, script func(x *ShardedExecutor, logs [][]string) [][]string) ([][]string, uint64) {
	t.Helper()
	x := NewShardedExecutor(lanes, shards, lookahead)
	logs := make([][]string, lanes+1) // logs[lanes] is the control log
	logs = script(x, logs)
	x.Run()
	return logs, x.Fired()
}

// TestShardedExecutorLaneOrder verifies the per-lane contract: events fire
// in (timestamp, insertion order) order, including events scheduled from
// callbacks, and lane-past schedules clamp to the lane's present.
func TestShardedExecutorLaneOrder(t *testing.T) {
	script := func(x *ShardedExecutor, logs [][]string) [][]string {
		note := func(lane int, name string) func(time.Duration) {
			return func(now time.Duration) {
				logs[lane] = append(logs[lane], fmt.Sprintf("%s@%v", name, now))
			}
		}
		x.scheduleLane(-1, 0, 30, "c", note(0, "c"))
		x.scheduleLane(-1, 0, 10, "a", note(0, "a"))
		x.scheduleLane(-1, 0, 10, "b", func(now time.Duration) {
			note(0, "b")(now)
			// Same-lane child in the past: clamps to the lane's present and
			// fires after already-queued same-time events.
			x.scheduleLane(0, 0, 5, "clamped", note(0, "clamped"))
			x.scheduleLane(0, 0, 20, "mid", note(0, "mid"))
		})
		return logs
	}
	logs, fired := logOf(t, 1, 1, 5, script)
	want := []string{"a@10ns", "b@10ns", "clamped@10ns", "mid@20ns", "c@30ns"}
	if !reflect.DeepEqual(logs[0], want) {
		t.Fatalf("lane order = %v, want %v", logs[0], want)
	}
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
}

// TestShardedExecutorMailboxOrder verifies cross-lane delivery order: posts
// merge at the barrier keyed by (time, source module, send sequence),
// independent of which lane executed first.
func TestShardedExecutorMailboxOrder(t *testing.T) {
	const lookahead = 10
	for _, shards := range []int{1, 2, 3} {
		script := func(x *ShardedExecutor, logs [][]string) [][]string {
			recv := func(tag string) func(time.Duration) {
				return func(now time.Duration) {
					logs[2] = append(logs[2], fmt.Sprintf("%s@%v", tag, now))
				}
			}
			// Lanes 0 and 1 both run an event at t=0 posting to lane 2 at
			// t=10. Lane 1 is seeded FIRST, so naive insertion order would
			// deliver src1 first; mailbox order must put src0 first.
			x.scheduleLane(-1, 1, 0, "s1", func(now time.Duration) {
				x.scheduleLane(1, 2, now+lookahead, "from1", recv("from1"))
				x.scheduleLane(1, 2, now+lookahead, "from1b", recv("from1b"))
			})
			x.scheduleLane(-1, 0, 0, "s0", func(now time.Duration) {
				x.scheduleLane(0, 2, now+lookahead, "from0", recv("from0"))
			})
			return logs
		}
		logs, _ := logOf(t, 3, shards, lookahead, script)
		want := []string{"from0@10ns", "from1@10ns", "from1b@10ns"}
		if !reflect.DeepEqual(logs[2], want) {
			t.Fatalf("shards=%d: delivery order = %v, want %v", shards, logs[2], want)
		}
	}
}

// TestShardedExecutorZeroLookahead verifies the degenerate window: with zero
// lookahead a same-time cross-lane chain still makes progress through
// fixpoint sub-rounds and fires every hop at the same virtual instant.
func TestShardedExecutorZeroLookahead(t *testing.T) {
	script := func(x *ShardedExecutor, logs [][]string) [][]string {
		x.scheduleLane(-1, 0, 7, "start", func(now time.Duration) {
			logs[0] = append(logs[0], fmt.Sprintf("start@%v", now))
			x.scheduleLane(0, 1, now, "hop1", func(now time.Duration) {
				logs[1] = append(logs[1], fmt.Sprintf("hop1@%v", now))
				x.scheduleLane(1, 2, now, "hop2", func(now time.Duration) {
					logs[2] = append(logs[2], fmt.Sprintf("hop2@%v", now))
				})
			})
		})
		return logs
	}
	logs, fired := logOf(t, 3, 2, 0, script)
	for lane, want := range map[int]string{0: "start@7ns", 1: "hop1@7ns", 2: "hop2@7ns"} {
		if len(logs[lane]) != 1 || logs[lane][0] != want {
			t.Fatalf("lane %d log = %v, want [%s]", lane, logs[lane], want)
		}
	}
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

// TestShardedExecutorControlFirst verifies that control events precede lane
// events at equal timestamps, and that the barrier hook runs after every
// lane window.
func TestShardedExecutorControlFirst(t *testing.T) {
	x := NewShardedExecutor(2, 2, 5)
	var order []string
	barriers := 0
	x.setBarrierHook(func() error { barriers++; return nil })
	x.Schedule(10, "ctrl", func(now time.Duration) { order = append(order, "ctrl") })
	x.scheduleLane(-1, 0, 10, "lane", func(now time.Duration) { order = append(order, "lane") })
	x.Run()
	if want := []string{"ctrl", "lane"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if barriers != 1 {
		t.Fatalf("barrier ran %d times, want 1", barriers)
	}
}

// TestShardedExecutorTicker verifies Ticker cadence and termination, and
// that Now() tracks the committed frontier.
func TestShardedExecutorTicker(t *testing.T) {
	x := NewShardedExecutor(1, 1, 0)
	var at []time.Duration
	x.Ticker(100, "tick", func(now time.Duration) bool {
		at = append(at, now)
		return len(at) < 3
	})
	end := x.Run()
	if want := []time.Duration{100, 200, 300}; !reflect.DeepEqual(at, want) {
		t.Fatalf("ticks at %v, want %v", at, want)
	}
	if end != 300 || x.Now() != 300 {
		t.Fatalf("final time = %v / Now = %v, want 300", end, x.Now())
	}
}

// TestShardedExecutorWindowIsolation verifies the conservative window bound:
// a cross-lane post is never consumed in the window that produced it. Lane
// 0's event at t=4 posts to lane 1 at t=14 = 4+lookahead; lane 1's own
// event at t=12 shares the window [4,14) with the sender, but the delivery
// fires strictly after it, at the post's timestamp, in the next window.
func TestShardedExecutorWindowIsolation(t *testing.T) {
	x := NewShardedExecutor(2, 2, 10)
	var got []string // appended only by lane 1 callbacks (serial per lane)
	x.scheduleLane(-1, 0, 4, "a", func(now time.Duration) {
		x.scheduleLane(0, 1, now+10, "b", func(now time.Duration) {
			got = append(got, fmt.Sprintf("b@%v", now))
		})
	})
	x.scheduleLane(-1, 1, 12, "c", func(now time.Duration) {
		got = append(got, fmt.Sprintf("c@%v", now))
	})
	x.Run()
	if want := []string{"c@12ns", "b@14ns"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("lane 1 log = %v, want %v", got, want)
	}
}

// TestShardedExecutorShardCountInvariance runs a deterministic cascading
// workload at several shard counts and requires identical per-lane logs and
// event counts — the executor-level statement of the differential harness.
func TestShardedExecutorShardCountInvariance(t *testing.T) {
	const lanes = 6
	build := func(shards int) ([][]string, uint64) {
		return logOf(t, lanes, shards, 3, func(x *ShardedExecutor, logs [][]string) [][]string {
			// Each seed event cascades: lane L at time T sends to lanes
			// (L+1)%lanes and (L+2)%lanes at T+3 and T+5, for 4 generations.
			var cascade func(lane, gen int) func(time.Duration)
			cascade = func(lane, gen int) func(time.Duration) {
				return func(now time.Duration) {
					logs[lane] = append(logs[lane], fmt.Sprintf("g%d@%v", gen, now))
					if gen >= 4 {
						return
					}
					x.scheduleLane(lane, (lane+1)%lanes, now+3, "n1", cascade((lane+1)%lanes, gen+1))
					x.scheduleLane(lane, (lane+2)%lanes, now+5, "n2", cascade((lane+2)%lanes, gen+1))
					x.scheduleLane(lane, lane, now+2, "self", func(now time.Duration) {
						logs[lane] = append(logs[lane], fmt.Sprintf("self%d@%v", gen, now))
					})
				}
			}
			for l := 0; l < lanes; l++ {
				x.scheduleLane(-1, l, time.Duration(l), "seed", cascade(l, 0))
			}
			return logs
		})
	}
	baseLogs, baseFired := build(1)
	if baseFired == 0 {
		t.Fatal("cascade fired no events")
	}
	for _, shards := range []int{2, 3, 6} {
		logs, fired := build(shards)
		if fired != baseFired {
			t.Errorf("shards=%d fired %d events, sequential fired %d", shards, fired, baseFired)
		}
		if !reflect.DeepEqual(logs, baseLogs) {
			t.Errorf("shards=%d produced different per-lane logs", shards)
		}
	}
}
