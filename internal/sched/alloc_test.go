package sched

import (
	"testing"
	"time"
)

// These tests pin the allocation floors the engine-flip refactor bought:
// typed laneEvents travel by value through lane queues, outboxes, and the
// barrier mailbox, and the intent bridge recycles its merge scratch and
// retired maps — so the steady-state hot path allocates nothing per event.
// A regression that reintroduces a per-event closure, a per-barrier sort
// copy, or a per-window map shows up here as a nonzero floor.

// TestAllocsEventDispatch: pushing a laneEvent into a warmed lane and firing
// it allocates nothing.
func TestAllocsEventDispatch(t *testing.T) {
	l := newLaneState(0)
	fired := 0
	ev := laneEvent{name: "tick", fn: func(now time.Duration) { fired++ }}

	// Warm the queue's backing array past the test's working set.
	for i := 0; i < 64; i++ {
		l.push(time.Duration(i), ev)
	}
	l.run(0, 1<<62)

	at := time.Duration(64)
	avg := testing.AllocsPerRun(200, func() {
		l.push(at, ev)
		l.run(at, at+1)
		at++
	})
	if avg != 0 {
		t.Fatalf("lane event dispatch allocates %.1f per event, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("events never fired")
	}
}

// TestAllocsScheduleEventLanePath: Cluster.scheduleEvent with the lane
// scheduler wired allocates nothing per event. The classic-heap fallback is
// quarantined behind a noinline wrapper precisely so the by-value event
// parameter cannot be forced to escape at scheduleEvent entry; this floor
// catches anyone re-merging the two branches.
func TestAllocsScheduleEventLanePath(t *testing.T) {
	x := NewShardedExecutor(2, 1, time.Millisecond)
	x.running = true
	cl := &Cluster{ls: x}
	fired := 0
	ev := laneEvent{name: "hop", fn: func(now time.Duration) { fired++ }}

	for i := 0; i < 64; i++ {
		cl.scheduleEvent(0, 1, time.Duration(i), ev)
	}
	x.flushOutboxes()
	x.lanes[1].run(0, 1<<62)

	at := time.Duration(1 << 20)
	avg := testing.AllocsPerRun(200, func() {
		cl.scheduleEvent(0, 1, at, ev)
		x.flushOutboxes()
		x.lanes[1].run(at, at+1)
		at++
	})
	if avg != 0 {
		t.Fatalf("lane-path scheduleEvent allocates %.1f per event, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("events never fired")
	}
}

// TestAllocsMailboxCommit: a full cross-lane round trip — outbox post,
// barrier mailbox merge, destination dispatch — plus a laneBridge intent
// commit, all at zero allocations per event in steady state.
func TestAllocsMailboxCommit(t *testing.T) {
	x := NewShardedExecutor(2, 1, time.Millisecond)
	x.running = true // cross-lane sends take the outbox path only while running
	fired := 0
	ev := laneEvent{name: "hop", fn: func(now time.Duration) { fired++ }}

	// Warm outbox, mailbox, and destination queue storage.
	for i := 0; i < 64; i++ {
		x.scheduleLaneEvent(0, 1, time.Duration(i), ev)
	}
	x.flushOutboxes()
	x.lanes[1].run(0, 1<<62)

	at := time.Duration(1 << 20)
	avg := testing.AllocsPerRun(200, func() {
		x.scheduleLaneEvent(0, 1, at, ev)
		x.flushOutboxes()
		x.lanes[1].run(at, at+1)
		at++
	})
	if avg != 0 {
		t.Fatalf("cross-lane mailbox round trip allocates %.1f per event, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("posted events never fired")
	}

	// Intent commit: the bridge's merge scratch and retired maps must be
	// reused across barriers. The cluster here is a shell — commit only
	// touches module drop counters and the (nil) host callbacks.
	cl := &Cluster{modules: []*module{{}, {}}}
	b := newLaneBridge(cl, 2)
	req := &Request{ID: 1}
	b.add(0, req, 1, true)
	b.add(1, req, 1, false)
	b.commit()

	now := time.Duration(1)
	avg = testing.AllocsPerRun(200, func() {
		req.Dropped, req.Finished = false, false
		b.add(0, req, now, true)
		b.add(1, req, now+1, false)
		b.commit()
		now++
	})
	if avg != 0 {
		t.Fatalf("intent commit allocates %.1f per barrier, want 0", avg)
	}
}
