package sched_test

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

// The differential harness is the third determinism invariant of this repo
// (after parallel≡sequential sweeps and virtual≡wall clock parity): a
// simulation on the sharded per-module lane engine must be BIT-IDENTICAL for
// every shard count. The corpus below replays every pipeline shape (chains
// tm/lv/gm, the da DAG, the exclusive-branch da-dyn, a wide synthetic
// fan-out) under drop and priority pressure — bursty/spiky/overload traces,
// every policy family (estimator DEPQ, reactive FIFO, admission-control RNG,
// dynamic budget realloc), scaling with cold starts, and injected machine
// failures — and asserts that shard counts 1, 2 and 8 agree on every
// per-request drop decision, every per-sync priority decision, and the final
// metrics, byte for byte.

// diffCase is one corpus workload.
type diffCase struct {
	name   string
	spec   *pipeline.Spec
	kind   trace.Kind
	rate   float64 // peak req/s (0 = trace nominal)
	policy string
	seed   int64
	probes simgpu.ProbeConfig
	fixed  []int            // pinned workers (nil = provision + scaling)
	fails  []simgpu.Failure // injected crashes
	short  bool             // include in -short runs
}

// wideDAG is a 5-module DAG with a 3-way parallel fan-out: the widest lane
// concurrency the default model library supports.
func wideDAG() *pipeline.Spec {
	s := &pipeline.Spec{
		App: "wide",
		SLO: 450 * time.Millisecond,
		Modules: []pipeline.Module{
			{ID: 0, Name: "persondet", Subs: []int{1, 2, 3}},
			{ID: 1, Name: "poserec", Pres: []int{0}, Subs: []int{4}},
			{ID: 2, Name: "facerec", Pres: []int{0}, Subs: []int{4}},
			{ID: 3, Name: "eyetrack", Pres: []int{0}, Subs: []int{4}},
			{ID: 4, Name: "exprrec", Pres: []int{1, 2, 3}},
		},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func diffCorpus() []diffCase {
	allProbes := simgpu.ProbeConfig{
		QueueDelay: true, LoadFactor: true, Budget: true, Decomposition: true, SampleEvery: 2,
	}
	return []diffCase{
		{name: "tm-tweet-pard", spec: pipeline.TM(), kind: trace.Tweet, rate: 700, policy: "pard", seed: 1, short: true},
		{name: "tm-steady-nexus-overload", spec: pipeline.TM(), kind: trace.Steady, rate: 1200, policy: "nexus", seed: 2},
		{name: "lv-tweet-pard-probes", spec: pipeline.LV(), kind: trace.Tweet, rate: 650, policy: "pard", seed: 1, probes: allProbes},
		{name: "lv-azure-wcl", spec: pipeline.LV(), kind: trace.Azure, rate: 700, policy: "pard-wcl", seed: 2},
		{name: "gm-azure-oc", spec: pipeline.GM(), kind: trace.Azure, rate: 700, policy: "pard-oc", seed: 1},
		{name: "gm-tweet-clipper", spec: pipeline.GM(), kind: trace.Tweet, rate: 650, policy: "clipper++", seed: 2},
		{name: "da-tweet-pard-probes", spec: pipeline.DA(), kind: trace.Tweet, rate: 700, policy: "pard", seed: 1, probes: allProbes, short: true},
		{name: "da-steady-pard-failures", spec: pipeline.DA(), kind: trace.Steady, rate: 900, policy: "pard", seed: 2,
			fails: []simgpu.Failure{{At: 2 * time.Second, Module: 1, Count: 1}, {At: 4 * time.Second, Module: 0, Count: 2}}},
		{name: "da-azure-nexus-fixed", spec: pipeline.DA(), kind: trace.Azure, rate: 800, policy: "nexus", seed: 1, fixed: []int{2, 2, 2, 2, 2}},
		{name: "dadyn-tweet-pard", spec: pipeline.DADynamic(0.5), kind: trace.Tweet, rate: 700, policy: "pard", seed: 1, short: true},
		{name: "dadyn-azure-lbf", spec: pipeline.DADynamic(0.3), kind: trace.Azure, rate: 700, policy: "pard-lbf", seed: 2},
		{name: "wide-tweet-pard", spec: wideDAG(), kind: trace.Tweet, rate: 700, policy: "pard", seed: 3, probes: allProbes},
	}
}

// runShards executes one corpus case at the given shard count and returns
// the result plus its gob serialization (the byte-identity witness — the
// same encoding the sweep disk cache persists).
func runShards(t *testing.T, c diffCase, tr *trace.Trace, shards int) (*simgpu.Result, []byte) {
	t.Helper()
	res, err := simgpu.Run(simgpu.Config{
		Spec:         c.spec,
		PolicyName:   c.policy,
		Trace:        tr,
		Seed:         c.seed,
		SyncPeriod:   200 * time.Millisecond,
		Probes:       c.probes,
		FixedWorkers: c.fixed,
		Failures:     c.fails,
		Shards:       shards,
	})
	if err != nil {
		t.Fatalf("%s shards=%d: %v", c.name, shards, err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		t.Fatalf("%s shards=%d: encode: %v", c.name, shards, err)
	}
	return res, buf.Bytes()
}

// explainDivergence pinpoints the first differing per-request decision for a
// readable failure message.
func explainDivergence(t *testing.T, name string, shards int, base, got *simgpu.Result) {
	t.Helper()
	a, b := base.Collector.Records(), got.Collector.Records()
	if len(a) != len(b) {
		t.Errorf("%s: shards=1 has %d records, shards=%d has %d", name, len(a), shards, len(b))
		return
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s: request %d diverged: shards=1 %+v, shards=%d %+v", name, i, a[i], shards, b[i])
			return
		}
	}
	t.Errorf("%s: shards=%d output differs beyond per-request records (probes/metrics)", name, shards)
}

// TestShardedDifferential replays the corpus through the sequential executor
// (sharded engine, one worker) and the sharded executor at 2 and 8 shards,
// asserting byte-identical results. -short replays a representative subset.
func TestShardedDifferential(t *testing.T) {
	totalDrops, modeSamples := 0, 0
	for _, c := range diffCorpus() {
		if testing.Short() && !c.short {
			continue
		}
		c := c
		t.Run(c.name, func(t *testing.T) {
			tr := trace.MustGenerate(trace.Config{
				Kind: c.kind, Duration: 8 * time.Second, PeakRate: c.rate, Seed: c.seed + 100,
			})
			seqRes, seqBytes := runShards(t, c, tr, 1)
			for _, shards := range []int{2, 8} {
				res, b := runShards(t, c, tr, shards)
				if !bytes.Equal(seqBytes, b) {
					explainDivergence(t, c.name, shards, seqRes, res)
				}
				if res.SimEvents != seqRes.SimEvents {
					t.Errorf("%s: event counts diverged: shards=1 fired %d, shards=%d fired %d",
						c.name, seqRes.SimEvents, shards, res.SimEvents)
				}
			}
			totalDrops += seqRes.Summary.Dropped
			if seqRes.ModeSeries != nil {
				modeSamples += seqRes.ModeSeries.Len()
			}
		})
	}
	// Pressure guards: a corpus without drops or priority decisions would
	// make the equivalence vacuous.
	if totalDrops == 0 {
		t.Error("corpus produced no drops; differential harness is vacuous")
	}
	if modeSamples == 0 {
		t.Error("corpus recorded no priority-mode decisions; enable LoadFactor probes on at least one case")
	}
}

// runGroups executes one corpus case split into lane-group replicas over
// the in-process transport and returns the byte-identity witness.
func runGroups(t *testing.T, c diffCase, tr *trace.Trace, groups int) (*simgpu.Result, []byte) {
	t.Helper()
	res, err := simgpu.Run(simgpu.Config{
		Spec:         c.spec,
		PolicyName:   c.policy,
		Trace:        tr,
		Seed:         c.seed,
		SyncPeriod:   200 * time.Millisecond,
		Probes:       c.probes,
		FixedWorkers: c.fixed,
		Failures:     c.fails,
		Groups:       groups,
	})
	if err != nil {
		t.Fatalf("%s groups=%d: %v", c.name, groups, err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		t.Fatalf("%s groups=%d: encode: %v", c.name, groups, err)
	}
	return res, buf.Bytes()
}

// TestLaneGroupDifferential replays the corpus split into 2 and 3 lockstep
// lane-group replicas over the in-process transport and asserts byte
// identity with the ungrouped run — the in-process half of determinism
// invariant #5 on the same adversarial corpus the shard invariant uses
// (DAG fan-out/merge across group boundaries, failures, scaling, every
// policy family). The cross-host half — the gob transport over loopback
// TCP — lives in internal/dist's TestSimDistributedDifferential.
func TestLaneGroupDifferential(t *testing.T) {
	for _, c := range diffCorpus() {
		if testing.Short() && !c.short {
			continue
		}
		c := c
		t.Run(c.name, func(t *testing.T) {
			tr := trace.MustGenerate(trace.Config{
				Kind: c.kind, Duration: 8 * time.Second, PeakRate: c.rate, Seed: c.seed + 100,
			})
			flatRes, flatBytes := runShards(t, c, tr, 1)
			for _, groups := range []int{2, 3} {
				res, b := runGroups(t, c, tr, groups)
				if !bytes.Equal(flatBytes, b) {
					explainDivergence(t, c.name, groups, flatRes, res)
				}
			}
		})
	}
}

// TestShardedOversharded pins the edge where the shard count exceeds both
// module count and any sane worker count: results must still match the
// sequential baseline exactly.
func TestShardedOversharded(t *testing.T) {
	tr := trace.MustGenerate(trace.Config{Kind: trace.Tweet, Duration: 5 * time.Second, PeakRate: 600, Seed: 11})
	c := diffCase{name: "tm-oversharded", spec: pipeline.TM(), policy: "pard", seed: 4}
	_, seq := runShards(t, c, tr, 1)
	_, over := runShards(t, c, tr, 64)
	if !bytes.Equal(seq, over) {
		t.Fatal("shards=64 (more shards than modules) diverged from sequential")
	}
}
