package sched

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// These tests pin the mailbox-ordering edge cases the lane-group merge
// proof rests on: equal virtual-time posts across groups, send-sequence
// stability through an encode/decode round trip, empty-drain barrier
// rounds, and the lockstep-divergence guard.

// wirePostAt builds a minimal wire-shaped post (typed receive, no closure).
func wirePostAt(at time.Duration, src, dst int, id uint64) post {
	return post{
		src: src,
		dst: dst,
		at:  at,
		ev:  laneEvent{name: "hop", op: opReceive, req: &Request{ID: id}},
	}
}

// TestSortPostsEqualTimeAcrossGroups replays the merge proof on a worst
// case: many posts sharing one virtual timestamp, sourced from modules
// owned by different lane groups, several per module so the sequence
// tiebreak matters. The single-process mailbox gathers posts in (source
// module order, send order) before the stable sort; a multi-group run
// gathers each group's owned modules the same way and concatenates the
// groups' contributions in group order. Because every (time, src) run
// lives in exactly one group, both gather orders must sort to the same
// delivery sequence.
func TestSortPostsEqualTimeAcrossGroups(t *testing.T) {
	const modules, groups = 5, 3
	at := 40 * time.Millisecond
	var id uint64

	// perModule[m] holds module m's posts in send order. Module 2 is
	// silent that window — gaps must not disturb the merge.
	perModule := make([][]post, modules)
	for m := 0; m < modules; m++ {
		if m == 2 {
			continue
		}
		for k := 0; k < 2+m%2; k++ {
			id++
			// Equal timestamps everywhere except one straggler, so the
			// primary key is exercised alongside the tiebreaks.
			postAt := at
			if m == 4 && k == 0 {
				postAt = at - time.Millisecond
			}
			perModule[m] = append(perModule[m], wirePostAt(postAt, m, (m+1)%modules, id))
		}
	}

	single := make([]post, 0)
	for m := 0; m < modules; m++ {
		single = append(single, perModule[m]...)
	}
	sortPosts(single)

	merged := make([]post, 0)
	for g := 0; g < groups; g++ {
		for m := 0; m < modules; m++ {
			if m%groups == g { // Topology ownership: module m belongs to group m % groups
				merged = append(merged, perModule[m]...)
			}
		}
	}
	sortPosts(merged)

	if len(single) != len(merged) {
		t.Fatalf("merged %d posts, single-process had %d", len(merged), len(single))
	}
	for i := range single {
		if single[i].ev.req.ID != merged[i].ev.req.ID {
			t.Fatalf("delivery order diverged at %d: single req %d, merged req %d",
				i, single[i].ev.req.ID, merged[i].ev.req.ID)
		}
	}
}

// TestWirePostRoundTripKeepsSendOrder pins the wire leg of the sequence
// tiebreak: posts sharing (At, Src) carry no explicit sequence number —
// their send order IS the order of the Posts slice — so the gob round trip
// internal/dist performs must preserve slice order exactly, and a stable
// sort after decoding must leave equal-key runs untouched.
func TestWirePostRoundTripKeepsSendOrder(t *testing.T) {
	msg := BarrierMsg{
		Group: 1,
		Posts: []WirePost{
			{At: 10 * time.Millisecond, Src: 1, Dst: 2, Req: 7},
			{At: 10 * time.Millisecond, Src: 1, Dst: 4, Req: 3}, // same (At, Src): order is the tiebreak
			{At: 10 * time.Millisecond, Src: 1, Dst: 2, Req: 9},
			{At: 12 * time.Millisecond, Src: 1, Dst: 2, Req: 1},
		},
		Intents: []WireIntent{
			{At: 10 * time.Millisecond, Mod: 3, Req: 7, Drop: true},
			{At: 10 * time.Millisecond, Mod: 3, Req: 9},
		},
		Charges: []WireCharge{{Mod: 3, Req: 7, GPU: time.Millisecond, Q: 2 * time.Millisecond}},
		Merges:  []WireMergeReset{{At: 10 * time.Millisecond, Mod: 0, Req: 7, Expected: 2}},
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
		t.Fatal(err)
	}
	var got BarrierMsg
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(msg, got) {
		t.Fatalf("gob round trip altered the payload:\n sent %+v\n got  %+v", msg, got)
	}

	// Decode to posts the way exchangeBarrier stages them and re-sort: the
	// equal-(At, Src) run must come out in wire order.
	staged := make([]post, 0, len(got.Posts))
	for _, wp := range got.Posts {
		staged = append(staged, wirePostAt(wp.At, int(wp.Src), int(wp.Dst), wp.Req))
	}
	sortPosts(staged)
	wantIDs := []uint64{7, 3, 9, 1}
	for i, want := range wantIDs {
		if staged[i].ev.req.ID != want {
			t.Fatalf("post %d: req %d after sort, want %d", i, staged[i].ev.req.ID, want)
		}
	}
}

// TestEncodeWirePostRejectsClosures pins the boundary contract: only the
// typed receive op is wire-shaped; a closure event reaching the group
// boundary must fail loudly, never be silently dropped or half-encoded.
func TestEncodeWirePostRejectsClosures(t *testing.T) {
	good := wirePostAt(time.Millisecond, 0, 1, 42)
	wp, err := encodeWirePost(&good)
	if err != nil {
		t.Fatal(err)
	}
	if wp.Req != 42 || wp.Src != 0 || wp.Dst != 1 || wp.At != time.Millisecond {
		t.Fatalf("encoded post mangled: %+v", wp)
	}

	bad := post{src: 0, dst: 1, at: time.Millisecond,
		ev: laneEvent{name: "closure", op: opFn, fn: func(time.Duration) {}}}
	if _, err := encodeWirePost(&bad); err == nil {
		t.Fatal("closure event crossed the lane-group boundary")
	} else if !strings.Contains(err.Error(), "cannot cross lane groups") {
		t.Fatalf("closure rejection error %q does not name the contract", err)
	}
}

// runGroupsConcurrently drives one exchange round per group on its own
// goroutine and returns each group's (merged, err) results.
func runGroupsConcurrently[T any](n int, call func(g int) ([]T, error)) ([][]T, []error) {
	outs := make([][]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g], errs[g] = call(g)
		}(g)
	}
	wg.Wait()
	return outs, errs
}

// TestMemTransportEmptyDrainRounds pins that an all-empty barrier exchange
// (a control flush that drained nothing) is a valid round: every group gets
// the full merged slice in group order, and the fabric is reusable for
// further rounds of a different kind.
func TestMemTransportEmptyDrainRounds(t *testing.T) {
	const groups = 3
	trs := NewMemTransports(groups)

	for round := 0; round < 4; round++ {
		outs, errs := runGroupsConcurrently(groups, func(g int) ([]BarrierMsg, error) {
			return trs[g].Barrier(BarrierMsg{Group: int32(g)})
		})
		for g := 0; g < groups; g++ {
			if errs[g] != nil {
				t.Fatalf("round %d group %d: %v", round, g, errs[g])
			}
			if len(outs[g]) != groups {
				t.Fatalf("round %d group %d: merged %d messages, want %d", round, g, len(outs[g]), groups)
			}
			for i, m := range outs[g] {
				if int(m.Group) != i {
					t.Fatalf("round %d group %d: slot %d holds group %d (not group order)", round, g, i, m.Group)
				}
				if len(m.Posts) != 0 || len(m.Intents) != 0 || len(m.Charges) != 0 || len(m.Merges) != 0 {
					t.Fatalf("round %d: empty-drain round grew a payload: %+v", round, m)
				}
			}
		}
	}

	// The hub resets between rounds: a different exchange kind is fine next.
	outs, errs := runGroupsConcurrently(groups, func(g int) ([]StepMsg, error) {
		return trs[g].Step(StepMsg{Group: int32(g), LaneAt: time.Duration(g) * time.Millisecond, LaneOK: true})
	})
	for g := 0; g < groups; g++ {
		if errs[g] != nil {
			t.Fatalf("step after empty drains failed on group %d: %v", g, errs[g])
		}
		if len(outs[g]) != groups {
			t.Fatalf("step merged %d messages, want %d", len(outs[g]), groups)
		}
	}
}

// TestMemTransportLockstepDivergence pins the guard against replica drift:
// one group arriving at a Step while the round is a Barrier must abort both
// sides with a diagnosable error, not deadlock.
func TestMemTransportLockstepDivergence(t *testing.T) {
	trs := NewMemTransports(2)

	errCh := make(chan error, 1)
	go func() {
		_, err := trs[1].Barrier(BarrierMsg{Group: 1})
		errCh <- err
	}()

	// Wait for group 1 to open the round as a barrier, then diverge.
	hub := trs[0].(*memTransport).hub
	deadline := time.Now().Add(5 * time.Second)
	for {
		hub.mu.Lock()
		arrived := hub.arrived
		hub.mu.Unlock()
		if arrived == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group 1 never opened the round")
		}
		time.Sleep(time.Millisecond)
	}

	_, err0 := trs[0].Step(StepMsg{Group: 0})
	err1 := <-errCh
	for g, err := range []error{err0, err1} {
		if err == nil {
			t.Fatalf("group %d did not observe the divergence", g)
		}
		if !strings.Contains(err.Error(), "lockstep divergence") {
			t.Fatalf("group %d error %q does not name the divergence", g, err)
		}
	}

	// The fabric stays poisoned: later exchanges fail instead of hanging.
	if _, err := trs[1].Step(StepMsg{Group: 1}); err == nil {
		t.Fatal("poisoned transport accepted a new exchange")
	}
}

// TestMemTransportAbortUnblocksPeers pins Abort's contract: a group failing
// locally must release peers already blocked at the rendezvous.
func TestMemTransportAbortUnblocksPeers(t *testing.T) {
	trs := NewMemTransports(2)
	boom := errors.New("boom")

	errCh := make(chan error, 1)
	go func() {
		_, err := trs[1].Board(BoardMsg{Group: 1})
		errCh <- err
	}()

	hub := trs[0].(*memTransport).hub
	deadline := time.Now().Add(5 * time.Second)
	for {
		hub.mu.Lock()
		arrived := hub.arrived
		hub.mu.Unlock()
		if arrived == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group 1 never blocked at the rendezvous")
		}
		time.Sleep(time.Millisecond)
	}

	trs[0].Abort(boom)
	select {
	case err := <-errCh:
		if !errors.Is(err, boom) {
			t.Fatalf("blocked peer got %v, want the aborting error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Abort left a peer blocked at the rendezvous")
	}
	if _, err := trs[0].Finish(FinishMsg{}); !errors.Is(err, boom) {
		t.Fatalf("post-abort exchange got %v, want the aborting error", err)
	}
}

// TestExchangeKindNames keeps the divergence diagnostics readable: every
// kind prints a name, not a number.
func TestExchangeKindNames(t *testing.T) {
	for _, k := range []exchangeKind{kindStep, kindBarrier, kindBoard, kindScale, kindFinish} {
		if s := k.String(); strings.Contains(s, "kind(") {
			t.Fatalf("exchange kind %d has no name", k)
		}
	}
	if s := exchangeKind(99).String(); s != fmt.Sprintf("kind(%d)", 99) {
		t.Fatalf("unknown kind printed %q", s)
	}
}
