package sched

import (
	"fmt"
	"sync"
	"time"

	"pard/internal/core"
	"pard/internal/metrics"
)

// This file defines the lane-group boundary of the sharded engine: the
// Topology that places per-module event lanes into lane groups, the
// wire-shaped payloads that cross the boundary, and the Transport interface
// the exchanges flow through.
//
// The distribution model is a replicated cluster in lockstep. Every lane
// group process builds the FULL cluster — all modules, workers, probes and
// the complete request slab — but only executes the lanes it owns
// (module k belongs to group k % Groups). Control-lane events (sync ticks,
// scaling ticks, injected failures) are replicated: every group schedules
// and fires them identically, with owner-only guards inside. Four exchange
// kinds keep the replicas bit-identical:
//
//   - Step: per-iteration low-watermark all-reduce (global minimum lane
//     time) plus a control-lane lockstep check — diverging control queues
//     abort the run, never silently drift.
//   - Barrier: the window barrier's combined payload — cross-group mailbox
//     posts, deferred termination intents, and batched per-request charges —
//     all-gathered so every group applies the identical merged commit.
//   - Board / Scale: sync-tick board rows and scaling-demand rows
//     all-gathered between the owner-local measure phase and the replicated
//     decide phase.
//   - Finish: end-of-run per-module reports (probes, peak workers, lane
//     event counts) so any group can assemble the full result.
//
// Merges are deterministic by construction: per-group contributions are
// gathered in (local module order, decision/send order) and concatenated in
// group order; items with equal sort keys always originate from a single
// module — hence a single group — so the stable sorts reproduce the exact
// single-process order.
//
// memTransport (below) is the in-process implementation backing
// Config.Groups > 1 and the unit harness. The cross-host gob implementation
// lives in internal/dist, built on its framing/handshake discipline.

// Topology places the per-module event lanes into lane groups. Ownership is
// derived, not configured: lane k belongs to group k % Groups (round-robin,
// so contiguous pipeline stages land in different groups — the adversarial
// placement for the determinism harness). The zero value is the
// single-group topology.
type Topology struct {
	// Groups is the lane-group count; 0 and 1 both mean single-group.
	Groups int
	// Group is this process's group index in [0, Groups).
	Group int
}

// single reports whether the topology degenerates to one group.
func (t Topology) single() bool { return t.Groups <= 1 }

// owns reports whether this group executes lane k.
func (t Topology) owns(lane int) bool { return t.Groups <= 1 || lane%t.Groups == t.Group }

// Owns is the exported owns: hosts assembling per-module results ask it
// which modules this group holds authoritative state for.
func (t Topology) Owns(lane int) bool { return t.owns(lane) }

// OwnerOf returns the group index owning lane k.
func (t Topology) OwnerOf(lane int) int {
	if t.Groups <= 1 {
		return 0
	}
	return lane % t.Groups
}

func (t Topology) validate() error {
	if t.Groups < 0 {
		return fmt.Errorf("sched: negative lane-group count %d", t.Groups)
	}
	if t.Groups > 1 && (t.Group < 0 || t.Group >= t.Groups) {
		return fmt.Errorf("sched: lane group %d out of range [0,%d)", t.Group, t.Groups)
	}
	return nil
}

// WirePost is one cross-group mailbox post. Only the typed by-value receive
// op crosses the boundary — request arrivals and DAG hops; closures must
// not (the executor aborts loudly if one reaches the wire). Requests travel
// by ID and are resolved against the receiving group's replica slab.
type WirePost struct {
	At  time.Duration
	Src int32
	Dst int32
	Req uint64
}

// WireIntent is one deferred request termination (drop or sink completion)
// decided inside the current window or control event.
type WireIntent struct {
	At   time.Duration
	Mod  int32
	Req  uint64
	Drop bool
}

// WireCharge is one batched per-request accounting record. Charges are
// integer-duration sums, so the merged apply order is immaterial; they are
// exchanged so every replica holds complete Request sums before intents
// commit (host OnDone callbacks observe complete decompositions).
type WireCharge struct {
	Mod    int32
	Req    uint64
	GPU, Q time.Duration
	W, D   time.Duration
}

// WireMergeReset arms the DAG merge bookkeeping on every replica. Only the
// fan-out module's owner executes forward (and thus resetMerge), but the
// region's merge module — possibly owned by another group — reads the
// expected branch count. Exchanged at the barrier following the fan-out,
// which is always strictly before any branch copy reaches the merge module
// (arrivals land at least one window later), so replicas arm in time.
type WireMergeReset struct {
	At       time.Duration
	Mod      int32 // the fan-out module
	Req      uint64
	Expected int32
}

// StepMsg is one group's contribution to the per-iteration low-watermark
// exchange. CtrlAt/CtrlOK must be identical across groups (the control lane
// is replicated); the executor verifies this and aborts on divergence.
type StepMsg struct {
	Group  int32
	CtrlAt time.Duration
	CtrlOK bool
	LaneAt time.Duration
	LaneOK bool
}

// BarrierMsg is one group's window-barrier payload: cross-group posts,
// termination intents, and charge records, each in deterministic local
// order. Control-event flushes reuse the same shape with only Intents set;
// an all-empty exchange (an empty-drain round) is valid and common.
type BarrierMsg struct {
	Group   int32
	Posts   []WirePost
	Intents []WireIntent
	Charges []WireCharge
	Merges  []WireMergeReset
}

// WireBoardRow carries one owned module's published state to the replicas.
type WireBoardRow struct {
	Mod   int32
	State core.ModuleState
}

// BoardMsg is one group's sync-tick board contribution.
type BoardMsg struct {
	Group int32
	Rows  []WireBoardRow
}

// WireScaleRow carries one owned module's scaling demand.
type WireScaleRow struct {
	Mod     int32
	Desired int32
}

// ScaleMsg is one group's scaling-tick contribution.
type ScaleMsg struct {
	Group int32
	Rows  []WireScaleRow
}

// ModuleReport is one owned module's end-of-run report: everything the
// result assembly needs that lives only on the owner (probes, peak
// workers). Replicated state — request outcomes, drop counters, policy
// internals — needs no wire: it is bit-identical in every group.
type ModuleReport struct {
	Mod         int32
	Peak        int
	QueueDelay  *metrics.Series
	Load        *metrics.Series
	Mode        *metrics.Series
	Budget      *metrics.Series
	Remain      *metrics.Series
	WaitSamples []float64
}

// FinishMsg is one group's end-of-run contribution. LaneFired sums the
// group's owned-lane event counts; the global event total is the replicated
// control-lane count plus the sum of LaneFired over groups.
type FinishMsg struct {
	Group     int32
	LaneFired uint64
	Reports   []ModuleReport
}

// Transport carries the lane-group exchanges. Every method is a collective:
// all groups call it with their own contribution in lockstep, and every
// group receives the same merged slice ordered by group index. An error
// from any method must abort the whole run on every group — the
// implementations propagate failure rather than let replicas diverge
// silently.
//
// The in-process implementation is memTransport; internal/dist provides the
// cross-host gob implementation over its framed, handshake-checked TCP
// protocol.
type Transport interface {
	Step(StepMsg) ([]StepMsg, error)
	Barrier(BarrierMsg) ([]BarrierMsg, error)
	Board(BoardMsg) ([]BoardMsg, error)
	Scale(ScaleMsg) ([]ScaleMsg, error)
	Finish(FinishMsg) ([]FinishMsg, error)
	// Abort poisons the transport: every blocked or future exchange on any
	// group returns the error. Called when a group fails locally so its
	// peers stop instead of hanging at the next rendezvous.
	Abort(error)
}

// exchangeKind tags a rendezvous so lockstep violations (one group at a
// Step while another is at a Barrier) are detected, not deadlocked on.
type exchangeKind uint8

const (
	kindStep exchangeKind = iota + 1
	kindBarrier
	kindBoard
	kindScale
	kindFinish
)

func (k exchangeKind) String() string {
	switch k {
	case kindStep:
		return "step"
	case kindBarrier:
		return "barrier"
	case kindBoard:
		return "board"
	case kindScale:
		return "scale"
	case kindFinish:
		return "finish"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// memHub is the in-process rendezvous backing memTransport: a reusable
// all-gather barrier over a mutex and condition variable. Each round, every
// group deposits its message; the last arrival publishes the merged slice
// (ordered by group index) and wakes the others.
type memHub struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	round   uint64
	kind    exchangeKind
	inbox   []any
	out     []any
	err     error
}

func newMemHub(n int) *memHub {
	h := &memHub{n: n, inbox: make([]any, n)}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// exchange deposits group g's message for one round and blocks until every
// group has arrived, returning the merged contributions in group order.
func (h *memHub) exchange(g int, kind exchangeKind, msg any) ([]any, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return nil, h.err
	}
	if h.arrived == 0 {
		h.kind = kind
	} else if h.kind != kind {
		err := fmt.Errorf("sched: lane-group lockstep divergence: group %d exchanging %v while round is %v", g, kind, h.kind)
		h.failLocked(err)
		return nil, err
	}
	h.inbox[g] = msg
	myRound := h.round
	h.arrived++
	if h.arrived == h.n {
		out := make([]any, h.n)
		copy(out, h.inbox)
		h.out = out
		h.arrived = 0
		h.round++
		h.cond.Broadcast()
		return out, nil
	}
	for h.round == myRound && h.err == nil {
		h.cond.Wait()
	}
	if h.err != nil {
		return nil, h.err
	}
	return h.out, nil
}

func (h *memHub) abort(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failLocked(err)
}

func (h *memHub) failLocked(err error) {
	if h.err == nil && err != nil {
		h.err = err
		h.cond.Broadcast()
	}
}

// memTransport is one group's endpoint on an in-process hub: today's
// shared-memory behavior expressed through the Transport seam. The
// single-group fast path never reaches a Transport at all (exchanges are
// skipped entirely when Topology.single()), which is what keeps the
// in-process hot loop allocation-free under the TestAllocs* floors.
type memTransport struct {
	hub   *memHub
	group int
}

// NewMemTransports builds an in-process lane-group fabric: one connected
// Transport endpoint per group.
func NewMemTransports(groups int) []Transport {
	if groups < 1 {
		panic(fmt.Sprintf("sched: NewMemTransports needs >= 1 groups, got %d", groups))
	}
	hub := newMemHub(groups)
	ts := make([]Transport, groups)
	for g := range ts {
		ts[g] = &memTransport{hub: hub, group: g}
	}
	return ts
}

func (t *memTransport) Step(m StepMsg) ([]StepMsg, error) {
	return gatherAs[StepMsg](t, kindStep, m)
}

func (t *memTransport) Barrier(m BarrierMsg) ([]BarrierMsg, error) {
	return gatherAs[BarrierMsg](t, kindBarrier, m)
}

func (t *memTransport) Board(m BoardMsg) ([]BoardMsg, error) {
	return gatherAs[BoardMsg](t, kindBoard, m)
}

func (t *memTransport) Scale(m ScaleMsg) ([]ScaleMsg, error) {
	return gatherAs[ScaleMsg](t, kindScale, m)
}

func (t *memTransport) Finish(m FinishMsg) ([]FinishMsg, error) {
	return gatherAs[FinishMsg](t, kindFinish, m)
}

func (t *memTransport) Abort(err error) { t.hub.abort(err) }

func gatherAs[T any](t *memTransport, kind exchangeKind, msg T) ([]T, error) {
	raw, err := t.hub.exchange(t.group, kind, msg)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(raw))
	for i, v := range raw {
		out[i] = v.(T)
	}
	return out, nil
}
