package pipeline

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pard/internal/profile"
)

func TestBuildersValid(t *testing.T) {
	for name, s := range Apps() {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.App != name {
			t.Fatalf("app name mismatch: %s vs %s", s.App, name)
		}
	}
	if err := DADynamic(0.5).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Uniform("u4", 4, "facerec", 300*time.Millisecond).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperSLOs(t *testing.T) {
	want := map[string]time.Duration{
		"tm": 400 * time.Millisecond,
		"lv": 500 * time.Millisecond,
		"gm": 600 * time.Millisecond,
		"da": 420 * time.Millisecond,
	}
	for name, slo := range want {
		if got := Apps()[name].SLO; got != slo {
			t.Fatalf("%s SLO = %v, want %v", name, got, slo)
		}
	}
}

func TestModuleCounts(t *testing.T) {
	counts := map[string]int{"tm": 3, "lv": 5, "gm": 5, "da": 5}
	for name, n := range counts {
		if got := Apps()[name].N(); got != n {
			t.Fatalf("%s has %d modules, want %d", name, got, n)
		}
	}
}

func TestAllModelsInDefaultLibrary(t *testing.T) {
	lib := profile.DefaultLibrary()
	for name, s := range Apps() {
		for _, m := range s.Modules {
			if _, err := lib.Get(m.Name); err != nil {
				t.Fatalf("%s module %s not profiled: %v", name, m.Name, err)
			}
		}
	}
}

func TestChainProperties(t *testing.T) {
	lv := LV()
	if !lv.IsChain() {
		t.Fatal("lv should be a chain")
	}
	if lv.Source() != 0 || lv.Sink() != 4 {
		t.Fatalf("source/sink = %d/%d", lv.Source(), lv.Sink())
	}
	order := lv.TopoOrder()
	for i, id := range order {
		if id != i {
			t.Fatalf("chain topo order = %v", order)
		}
	}
}

func TestDAStructure(t *testing.T) {
	da := DA()
	if da.IsChain() {
		t.Fatal("da should not be a chain")
	}
	paths := da.AllPaths()
	if len(paths) != 2 {
		t.Fatalf("da has %d source-sink paths, want 2", len(paths))
	}
	// Both paths: 0 → {1|2} → 3 → 4.
	for _, p := range paths {
		if len(p) != 4 || p[0] != 0 || p[2] != 3 || p[3] != 4 {
			t.Fatalf("unexpected path %v", p)
		}
	}
}

func TestDownstreamPaths(t *testing.T) {
	da := DA()
	// From the source both branches appear.
	ps := da.DownstreamPaths(0)
	if len(ps) != 2 {
		t.Fatalf("downstream of 0: %v", ps)
	}
	// From a branch module there is a single path to the sink.
	ps = da.DownstreamPaths(1)
	if len(ps) != 1 || len(ps[0]) != 2 || ps[0][0] != 3 || ps[0][1] != 4 {
		t.Fatalf("downstream of 1: %v", ps)
	}
	// Sink has no downstream paths.
	if ps := da.DownstreamPaths(4); ps != nil {
		t.Fatalf("downstream of sink: %v", ps)
	}
	// Chain: single path per module.
	lv := LV()
	ps = lv.DownstreamPaths(2)
	if len(ps) != 1 || len(ps[0]) != 2 {
		t.Fatalf("lv downstream of 2: %v", ps)
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func(mutate func(*Spec)) *Spec {
		s := &Spec{
			App: "x",
			SLO: time.Second,
			Modules: []Module{
				{ID: 0, Name: "a", Subs: []int{1}},
				{ID: 1, Name: "b", Pres: []int{0}},
			},
		}
		mutate(s)
		return s
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty", func(s *Spec) { s.Modules = nil }},
		{"zero slo", func(s *Spec) { s.SLO = 0 }},
		{"sparse ids", func(s *Spec) { s.Modules[1].ID = 5 }},
		{"empty name", func(s *Spec) { s.Modules[0].Name = "" }},
		{"pre out of range", func(s *Spec) { s.Modules[1].Pres = []int{9} }},
		{"sub out of range", func(s *Spec) { s.Modules[0].Subs = []int{9} }},
		{"asymmetric edge", func(s *Spec) { s.Modules[1].Pres = nil }},
		{"two sources", func(s *Spec) {
			s.Modules = append(s.Modules, Module{ID: 2, Name: "c", Subs: []int{1}})
			s.Modules[1].Pres = []int{0, 2}
		}},
		{"exclusive single sub", func(s *Spec) { s.Modules[0].Exclusive = true }},
		{"branch probs non-exclusive", func(s *Spec) { s.Modules[0].BranchProb = []float64{1} }},
	}
	for _, c := range cases {
		if err := mk(c.mutate).Validate(); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	s := &Spec{
		App: "cyc",
		SLO: time.Second,
		Modules: []Module{
			{ID: 0, Name: "a", Subs: []int{1}},
			{ID: 1, Name: "b", Pres: []int{0, 2}, Subs: []int{2}},
			{ID: 2, Name: "c", Pres: []int{1}, Subs: []int{1}},
		},
	}
	if err := s.Validate(); err == nil {
		t.Fatal("cyclic spec accepted")
	}
}

func TestValidateBranchProbs(t *testing.T) {
	if err := DADynamic(0.3).Validate(); err != nil {
		t.Fatal(err)
	}
	s := DADynamic(0.3)
	s.Modules[0].BranchProb = []float64{0.3, 0.3}
	if err := s.Validate(); err == nil {
		t.Fatal("probs not summing to 1 accepted")
	}
	s.Modules[0].BranchProb = []float64{1.3, -0.3}
	if err := s.Validate(); err == nil {
		t.Fatal("negative prob accepted")
	}
	s.Modules[0].BranchProb = []float64{1}
	if err := s.Validate(); err == nil {
		t.Fatal("wrong-length probs accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for name, s := range Apps() {
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.App != s.App || back.SLO != s.SLO || back.N() != s.N() {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse(strings.NewReader("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Parse(strings.NewReader(`{"app":"x","slo_ns":1000,"modules":[]}`)); err == nil {
		t.Fatal("empty module list accepted")
	}
}

func TestTopoOrderDAG(t *testing.T) {
	da := DA()
	order := da.TopoOrder()
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, m := range da.Modules {
		for _, sub := range m.Subs {
			if pos[m.ID] >= pos[sub] {
				t.Fatalf("topo order %v violates edge %d→%d", order, m.ID, sub)
			}
		}
	}
}

func TestUniform(t *testing.T) {
	s := Uniform("u", 4, "facerec", 300*time.Millisecond)
	if s.N() != 4 || !s.IsChain() {
		t.Fatalf("uniform spec wrong: %+v", s)
	}
	for _, m := range s.Modules {
		if m.Name != "facerec" {
			t.Fatalf("module %d model %s", m.ID, m.Name)
		}
	}
}
