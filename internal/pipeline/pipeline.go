// Package pipeline defines inference pipelines as DAGs of modules, mirroring
// PARD's JSON configuration (§5.1): each module carries (name, id, pres,
// subs) where pres/subs list preceding and subsequent module IDs. A chain is
// the special case where every module has at most one predecessor and
// successor. The package validates specs, computes topological order and the
// downstream path sets that the State Planner's per-path latency estimation
// (§4.2, DAG case) consumes, and provides builders for the paper's four
// applications.
package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Module is one stage of the pipeline, serving a single DNN model.
type Module struct {
	// ID is the module's index; IDs must be 0..len(modules)-1.
	ID int `json:"id"`
	// Name is the model registered in the application library.
	Name string `json:"name"`
	// Pres and Subs list preceding / subsequent module IDs.
	Pres []int `json:"pres"`
	Subs []int `json:"subs"`
	// Exclusive marks a fan-out where each request takes exactly one
	// successor branch (the §5.2 request-specific dynamic path variant)
	// instead of being split to all successors.
	Exclusive bool `json:"exclusive,omitempty"`
	// BranchProb gives the per-successor selection probability for an
	// Exclusive fan-out, aligned with Subs; empty means uniform.
	BranchProb []float64 `json:"branch_prob,omitempty"`
}

// Spec is a full pipeline definition.
type Spec struct {
	App     string        `json:"app"`
	SLO     time.Duration `json:"slo_ns"`
	Modules []Module      `json:"modules"`
}

// N returns the module count.
func (s *Spec) N() int { return len(s.Modules) }

// Validate checks structural integrity: dense IDs, consistent pres/subs
// edges, exactly one source and one sink, acyclicity, full reachability, and
// well-formed branch probabilities.
func (s *Spec) Validate() error {
	n := len(s.Modules)
	if n == 0 {
		return fmt.Errorf("pipeline %s: no modules", s.App)
	}
	if s.SLO <= 0 {
		return fmt.Errorf("pipeline %s: SLO must be positive, got %v", s.App, s.SLO)
	}
	for i, m := range s.Modules {
		if m.ID != i {
			return fmt.Errorf("pipeline %s: module at index %d has id %d (ids must be dense)", s.App, i, m.ID)
		}
		if m.Name == "" {
			return fmt.Errorf("pipeline %s: module %d has empty name", s.App, i)
		}
		for _, p := range m.Pres {
			if p < 0 || p >= n {
				return fmt.Errorf("pipeline %s: module %d pre %d out of range", s.App, i, p)
			}
			if !contains(s.Modules[p].Subs, i) {
				return fmt.Errorf("pipeline %s: edge %d→%d in pres but not subs", s.App, p, i)
			}
		}
		for _, sub := range m.Subs {
			if sub < 0 || sub >= n {
				return fmt.Errorf("pipeline %s: module %d sub %d out of range", s.App, i, sub)
			}
			if !contains(s.Modules[sub].Pres, i) {
				return fmt.Errorf("pipeline %s: edge %d→%d in subs but not pres", s.App, i, sub)
			}
		}
		if m.Exclusive && len(m.Subs) < 2 {
			return fmt.Errorf("pipeline %s: module %d exclusive with %d successors", s.App, i, len(m.Subs))
		}
		if len(m.BranchProb) > 0 {
			if !m.Exclusive {
				return fmt.Errorf("pipeline %s: module %d has branch probabilities but is not exclusive", s.App, i)
			}
			if len(m.BranchProb) != len(m.Subs) {
				return fmt.Errorf("pipeline %s: module %d has %d branch probs for %d subs", s.App, i, len(m.BranchProb), len(m.Subs))
			}
			var sum float64
			for _, p := range m.BranchProb {
				if p < 0 {
					return fmt.Errorf("pipeline %s: module %d negative branch prob", s.App, i)
				}
				sum += p
			}
			if sum < 0.999 || sum > 1.001 {
				return fmt.Errorf("pipeline %s: module %d branch probs sum to %v", s.App, i, sum)
			}
		}
	}
	sources, sinks := 0, 0
	for _, m := range s.Modules {
		if len(m.Pres) == 0 {
			sources++
		}
		if len(m.Subs) == 0 {
			sinks++
		}
	}
	if sources != 1 {
		return fmt.Errorf("pipeline %s: %d sources, want exactly 1", s.App, sources)
	}
	if sinks != 1 {
		return fmt.Errorf("pipeline %s: %d sinks, want exactly 1", s.App, sinks)
	}
	order, err := s.topoOrder()
	if err != nil {
		return err
	}
	if len(order) != n {
		return fmt.Errorf("pipeline %s: cycle detected", s.App)
	}
	reach := make([]bool, n)
	var walk func(int)
	walk = func(i int) {
		if reach[i] {
			return
		}
		reach[i] = true
		for _, sub := range s.Modules[i].Subs {
			walk(sub)
		}
	}
	walk(s.Source())
	for i, r := range reach {
		if !r {
			return fmt.Errorf("pipeline %s: module %d unreachable from source", s.App, i)
		}
	}
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Source returns the ID of the entry module (no predecessors), or -1.
func (s *Spec) Source() int {
	for _, m := range s.Modules {
		if len(m.Pres) == 0 {
			return m.ID
		}
	}
	return -1
}

// Sink returns the ID of the exit module (no successors), or -1.
func (s *Spec) Sink() int {
	for _, m := range s.Modules {
		if len(m.Subs) == 0 {
			return m.ID
		}
	}
	return -1
}

// IsChain reports whether the pipeline is a simple linear chain.
func (s *Spec) IsChain() bool {
	for _, m := range s.Modules {
		if len(m.Pres) > 1 || len(m.Subs) > 1 {
			return false
		}
	}
	return true
}

func (s *Spec) topoOrder() ([]int, error) {
	n := len(s.Modules)
	indeg := make([]int, n)
	for _, m := range s.Modules {
		indeg[m.ID] = len(m.Pres)
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, sub := range s.Modules[i].Subs {
			indeg[sub]--
			if indeg[sub] == 0 {
				queue = append(queue, sub)
			}
		}
	}
	if len(order) != n {
		return order, fmt.Errorf("pipeline %s: cycle detected", s.App)
	}
	return order, nil
}

// TopoOrder returns module IDs in a topological order. The spec must be
// valid.
func (s *Spec) TopoOrder() []int {
	order, err := s.topoOrder()
	if err != nil {
		panic(err)
	}
	return order
}

// DownstreamPaths returns every path of module IDs from each successor of
// `from` to the sink. The current module is excluded: these are the paths
// whose queueing, execution and batch-wait the State Planner aggregates into
// Lsub. A sink module returns nil (no downstream latency).
func (s *Spec) DownstreamPaths(from int) [][]int {
	m := s.Modules[from]
	if len(m.Subs) == 0 {
		return nil
	}
	var out [][]int
	var walk func(path []int, at int)
	walk = func(path []int, at int) {
		path = append(path, at)
		if len(s.Modules[at].Subs) == 0 {
			out = append(out, append([]int(nil), path...))
			return
		}
		for _, sub := range s.Modules[at].Subs {
			walk(path, sub)
		}
	}
	for _, sub := range m.Subs {
		walk(nil, sub)
	}
	return out
}

// AllPaths returns every source-to-sink path.
func (s *Spec) AllPaths() [][]int {
	src := s.Source()
	paths := s.DownstreamPaths(src)
	if paths == nil {
		return [][]int{{src}}
	}
	out := make([][]int, len(paths))
	for i, p := range paths {
		out[i] = append([]int{src}, p...)
	}
	return out
}

// Write serializes the spec as JSON (the paper's configuration format plus
// the SLO).
func (s *Spec) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Parse reads and validates a JSON spec.
func Parse(r io.Reader) (*Spec, error) {
	var s Spec
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("pipeline: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// chain builds a linear pipeline over the given model names.
func chain(app string, slo time.Duration, names ...string) *Spec {
	s := &Spec{App: app, SLO: slo}
	for i, name := range names {
		m := Module{ID: i, Name: name}
		if i > 0 {
			m.Pres = []int{i - 1}
		}
		if i < len(names)-1 {
			m.Subs = []int{i + 1}
		}
		s.Modules = append(s.Modules, m)
	}
	if err := s.Validate(); err != nil {
		panic(err) // builders construct valid specs by construction
	}
	return s
}

// TM is the traffic-monitoring pipeline: 3 modules, 400 ms SLO (§5.1).
func TM() *Spec { return chain("tm", 400*time.Millisecond, "objdet", "facerec", "textrec") }

// LV is the live-video-analysis pipeline: 5 modules, 500 ms SLO (§5.1).
func LV() *Spec {
	return chain("lv", 500*time.Millisecond, "persondet", "facerec", "exprrec", "eyetrack", "poserec")
}

// GM is the game-analysis pipeline: 5 modules, 600 ms SLO (§5.1; the paper
// also calls it "ga").
func GM() *Spec {
	return chain("gm", 600*time.Millisecond, "gameobj", "killdet", "alivecount", "healthval", "iconrec")
}

// DA is the DAG-style live-video pipeline, 420 ms SLO: person detection fans
// out to pose and face recognition in parallel; their outputs merge at
// expression recognition, followed by eye tracking (§5.1).
func DA() *Spec {
	s := &Spec{
		App: "da",
		SLO: 420 * time.Millisecond,
		Modules: []Module{
			{ID: 0, Name: "persondet", Subs: []int{1, 2}},
			{ID: 1, Name: "poserec", Pres: []int{0}, Subs: []int{3}},
			{ID: 2, Name: "facerec", Pres: []int{0}, Subs: []int{3}},
			{ID: 3, Name: "exprrec", Pres: []int{1, 2}, Subs: []int{4}},
			{ID: 4, Name: "eyetrack", Pres: []int{3}},
		},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// DADynamic is the §5.2 variant of DA where each request probabilistically
// takes either the pose or the face branch instead of both.
func DADynamic(poseProb float64) *Spec {
	s := DA()
	s.App = "da-dyn"
	s.Modules[0].Exclusive = true
	s.Modules[0].BranchProb = []float64{poseProb, 1 - poseProb}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// Uniform builds an n-module chain where every module runs the same model;
// Fig. 6's four-module equal-duration pipeline uses it.
func Uniform(app string, n int, model string, slo time.Duration) *Spec {
	names := make([]string, n)
	for i := range names {
		names[i] = model
	}
	return chain(app, slo, names...)
}

// Apps returns the paper's four applications keyed by name.
func Apps() map[string]*Spec {
	return map[string]*Spec{
		"tm": TM(),
		"lv": LV(),
		"gm": GM(),
		"da": DA(),
	}
}
