package pipeline_test

import (
	"bytes"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/sched"
	"pard/internal/server"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

// FuzzPipelineSpec fuzzes the JSON pipeline-spec surface: any input that
// survives Parse (and therefore Validate) must be servable — server.New and
// the simulator must never panic, must agree on accepting or rejecting the
// spec, and a validated spec's graph helpers and JSON round-trip must hold.
// The corpus seeds are the paper's four applications plus the dynamic-branch
// variant and a few malformed shapes.
func FuzzPipelineSpec(f *testing.F) {
	for _, s := range []*pipeline.Spec{
		pipeline.TM(), pipeline.LV(), pipeline.GM(), pipeline.DA(), pipeline.DADynamic(0.5),
	} {
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Malformed shapes steer the fuzzer toward validation edges: dangling
	// edge, cycle, unknown model, zero SLO.
	f.Add([]byte(`{"app":"x","slo_ns":1000,"modules":[{"id":0,"name":"objdet","subs":[3]}]}`))
	f.Add([]byte(`{"app":"x","slo_ns":400000000,"modules":[{"id":0,"name":"objdet","pres":[1],"subs":[1]},{"id":1,"name":"facerec","pres":[0],"subs":[0]}]}`))
	f.Add([]byte(`{"app":"x","slo_ns":400000000,"modules":[{"id":0,"name":"no-such-model"}]}`))
	f.Add([]byte(`{"app":"x","slo_ns":0,"modules":[{"id":0,"name":"objdet"}]}`))

	tinyTrace := trace.MustGenerate(trace.Config{
		Kind: trace.Steady, Duration: 200 * time.Millisecond, PeakRate: 50, Seed: 1,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 8<<10 {
			return // keep adversarial inputs cheap
		}
		spec, err := pipeline.Parse(bytes.NewReader(data))
		if err != nil {
			return // rejected at validation; nothing more to agree on
		}
		if spec.N() > 12 {
			// DownstreamPaths enumerates all source→sink paths; dense
			// fuzzer-built DAGs can make that combinatorial. The serving
			// stack is exercised on realistically sized pipelines.
			return
		}
		// Graph helpers of a validated spec must not panic and must be
		// coherent.
		order := spec.TopoOrder()
		if len(order) != spec.N() {
			t.Fatalf("topo order covers %d of %d modules", len(order), spec.N())
		}
		if paths := spec.AllPaths(); len(paths) == 0 {
			t.Fatal("validated spec has no source→sink path")
		}
		// JSON round-trip: a validated spec serializes to a spec that
		// validates back.
		var buf bytes.Buffer
		if err := spec.Write(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := pipeline.Parse(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}

		// The two hosts must agree on accept/reject and never panic.
		srv, srvErr := server.New(server.Config{
			Spec: spec,
			Exec: sched.NewManualExecutor(),
		})
		_, simErr := simgpu.New(simgpu.Config{
			Spec:  spec,
			Trace: tinyTrace,
		})
		if (srvErr == nil) != (simErr == nil) {
			t.Fatalf("hosts disagree: server.New err=%v, simgpu.New err=%v", srvErr, simErr)
		}
		if srvErr == nil {
			// Drive one request through the live shell on the fake clock so
			// the accept path actually executes the pipeline.
			man := sched.NewManualExecutor()
			srv, srvErr = server.New(server.Config{Spec: spec, Exec: man, Seed: 7})
			if srvErr != nil {
				t.Fatalf("server.New succeeded then failed on identical config: %v", srvErr)
			}
			ch := srv.Submit()
			man.RunUntil(3 * spec.SLO)
			select {
			case <-ch:
			default: // stuck in queue is legal (no sync ticks); panics are not
			}
			srv.Stop()
		} else {
			_ = srv
		}
	})
}
