package stats

import (
	"math/rand"
	"slices"
	"testing"
	"time"
)

// The tests in this file pin the package's aliasing contracts: which APIs
// return live internal buffers, which sort their inputs in place, and which
// are guaranteed read-only. Call sites across sched/metrics/experiments rely
// on these distinctions to share cached slices safely.

func TestReservoirValuesIsLiveBuffer(t *testing.T) {
	r := NewReservoir(4, rand.New(rand.NewSource(1)))
	for i := 0; i < 4; i++ {
		r.Add(float64(i))
	}
	vs := r.Values()
	if len(vs) != 4 {
		t.Fatalf("len = %d", len(vs))
	}
	// The contract is "live buffer, read-only": the same backing array keeps
	// receiving replacements on subsequent Adds, so a caller that held on to
	// the slice observes them. This is intentional — publication paths must
	// copy (and do: module.publish copies into ModuleState.BatchWait).
	before := append([]float64(nil), vs...)
	for i := 0; i < 100; i++ {
		r.Add(float64(100 + i))
	}
	if slices.Equal(before, vs) {
		t.Fatal("100 adds to a full reservoir replaced nothing; Values no longer aliases the live buffer?")
	}
}

func TestPercentilesDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	orig := append([]float64(nil), xs...)
	got := Percentiles(xs, 0, 0.5, 1)
	if !slices.Equal(xs, orig) {
		t.Fatalf("Percentiles reordered its input: %v", xs)
	}
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("quantiles = %v", got)
	}
}

func TestPercentilesIntoSortsInPlace(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	got := PercentilesInto(nil, xs, 0, 0.5, 1)
	if !slices.IsSorted(xs) {
		t.Fatalf("PercentilesInto left input unsorted: %v (the documented contract is an in-place sort)", xs)
	}
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("quantiles = %v", got)
	}
	// Append semantics: results are appended to dst.
	got2 := PercentilesInto([]float64{-1}, xs, 0.5)
	if len(got2) != 2 || got2[0] != -1 || got2[1] != 3 {
		t.Fatalf("append semantics broken: %v", got2)
	}
}

func TestPercentilesIntoMatchesPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, 1+rng.Intn(200))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		want := Percentiles(xs, qs...)
		got := PercentilesInto(nil, append([]float64(nil), xs...), qs...)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: PercentilesInto %v != Percentiles %v", trial, got, want)
		}
	}
	if got := PercentilesInto(nil, nil, 0.5); got[0] != 0 {
		t.Fatalf("empty input quantile = %v, want 0", got[0])
	}
}

func TestConvolveDoesNotMutateSources(t *testing.T) {
	src := [][]float64{{3, 1, 2}, {9, 7, 8}}
	orig := [][]float64{append([]float64(nil), src[0]...), append([]float64(nil), src[1]...)}
	rng := rand.New(rand.NewSource(3))
	ConvolveQuantile(src, 0.5, 100, rng)
	ConvolveSamples(src, 100, rng)
	var scratch []float64
	_, scratch = ConvolveQuantileInto(scratch, src, 0.5, 100, rng)
	ConvolveSamplesInto(scratch, src, 100, rng)
	for i := range src {
		if !slices.Equal(src[i], orig[i]) {
			t.Fatalf("source %d mutated: %v", i, src[i])
		}
	}
}

func TestConvolveIntoMatchesConvolve(t *testing.T) {
	src := [][]float64{{0.1, 0.2, 0.3}, nil, {0.5}, {0.05, 0.15}}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		a := rand.New(rand.NewSource(11))
		b := rand.New(rand.NewSource(11))
		want := ConvolveQuantile(src, q, 500, a)
		var scratch []float64
		// Warm the scratch with garbage first to prove it is fully reset.
		scratch = append(scratch, 1e9, -1e9)
		got, _ := ConvolveQuantileInto(scratch, src, q, 500, b)
		if got != want {
			t.Fatalf("q=%v: Into %v != plain %v (RNG draw order must be identical)", q, got, want)
		}
	}
	a := rand.New(rand.NewSource(13))
	b := rand.New(rand.NewSource(13))
	want := ConvolveSamples(src, 300, a)
	got := ConvolveSamplesInto(make([]float64, 5, 400), src, 300, b)
	if !slices.Equal(got, want) {
		t.Fatal("ConvolveSamplesInto diverged from ConvolveSamples")
	}
}

func TestEmpiricalCopiesItsInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	d := NewEmpirical(xs)
	xs[0] = -100
	if q := d.Quantile(0); q != 1 {
		t.Fatalf("NewEmpirical aliased its input: min = %v", q)
	}
	ys := []float64{3, 1, 2}
	var e Empirical
	e.Reset(ys)
	ys[0] = 1e9
	if q := e.Quantile(1); q != 3 {
		t.Fatalf("Reset aliased its input: max = %v", q)
	}
	// Reset reuses the internal buffer across calls.
	e.Reset([]float64{9})
	if e.Len() != 1 || e.Quantile(0.5) != 9 {
		t.Fatalf("Reset did not reload: len=%d", e.Len())
	}
}

func TestSlidingWindowValuesIntoMatchesValues(t *testing.T) {
	w := NewSlidingWindow(5 * time.Second)
	for i := 0; i < 20; i++ {
		w.Add(time.Duration(i)*time.Second, float64(i))
	}
	now := 19 * time.Second
	want := w.Values(now)
	buf := make([]float64, 3, 64)
	got := w.ValuesInto(now, buf)
	if !slices.Equal(got, want) {
		t.Fatalf("ValuesInto %v != Values %v", got, want)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("ValuesInto did not reuse the provided buffer capacity")
	}
}
