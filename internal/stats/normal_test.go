package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},   // Φ(1)
		{0.15865525393145705, -1}, // Φ(-1)
		{0.9772498680518208, 2},   // Φ(2)
		{0.1, -1.2815515655446004},
		{0.9, 1.2815515655446004},
		{0.025, -1.959963984540054},
		{0.975, 1.959963984540054},
		{0.001, -3.090232306167813},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-7 {
			t.Fatalf("Φ⁻¹(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Fatal("p=0 should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("p=1 should be +Inf")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(NormalQuantile(p)) {
			t.Fatalf("p=%v should be NaN", p)
		}
	}
}

// Property: Φ⁻¹ is antisymmetric and strictly increasing.
func TestPropertyNormalQuantileShape(t *testing.T) {
	f := func(raw uint16) bool {
		p := (float64(raw) + 1) / 65538 // strictly inside (0, 1)
		z := NormalQuantile(p)
		zc := NormalQuantile(1 - p)
		if math.Abs(z+zc) > 1e-7 {
			return false
		}
		return NormalQuantile(p+1e-4) >= z || p+1e-4 >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformSumQuantileSingleTermExact(t *testing.T) {
	if got := UniformSumQuantile([]float64{10}, 0.3); math.Abs(got-3) > 1e-12 {
		t.Fatalf("single-term quantile = %v, want 3", got)
	}
	if got := UniformSumQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestUniformSumQuantileMatchesIrwinHall(t *testing.T) {
	// Fig. 6's worked numbers for equal d=1 at λ=0.1:
	// j=2 → 0.447, j=3 → 0.843, j=4 → 1.245.
	cases := []struct {
		j    int
		want float64
	}{
		{2, 0.447}, {3, 0.843}, {4, 1.245},
	}
	for _, c := range cases {
		ds := make([]float64, c.j)
		for i := range ds {
			ds[i] = 1
		}
		got := UniformSumQuantile(ds, 0.1)
		if math.Abs(got-c.want) > 0.05 {
			t.Fatalf("j=%d: analytic %v, want ≈%v", c.j, got, c.want)
		}
	}
}

func TestUniformSumQuantileMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := []float64{0.03, 0.05, 0.02, 0.04}
	sources := make([][]float64, len(ds))
	for i, d := range ds {
		s := make([]float64, 4000)
		for j := range s {
			s[j] = rng.Float64() * d
		}
		sources[i] = s
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		mc := ConvolveQuantile(sources, q, 20000, rng)
		an := UniformSumQuantile(ds, q)
		if math.Abs(mc-an) > 0.01 {
			t.Fatalf("q=%v: MC %v vs analytic %v", q, mc, an)
		}
	}
}

// Property: the quantile is monotone in q and stays inside [0, Σd].
func TestPropertyUniformSumBounds(t *testing.T) {
	f := func(raw []uint8, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]float64, 0, len(raw))
		var sum float64
		for _, r := range raw {
			d := float64(r%100) + 1
			ds = append(ds, d)
			sum += d
		}
		q1 := math.Abs(math.Mod(qa, 1))
		q2 := math.Abs(math.Mod(qb, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		w1, w2 := UniformSumQuantile(ds, q1), UniformSumQuantile(ds, q2)
		return w1 >= 0 && w2 <= sum && w1 <= w2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNormalQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NormalQuantile(float64(i%999+1) / 1000)
	}
}

// BenchmarkAnalyticVsMonteCarlo contrasts the closed-form estimator with the
// sampling estimator it replaces.
func BenchmarkAnalyticQuantile(b *testing.B) {
	ds := []float64{0.03, 0.05, 0.02, 0.04}
	for i := 0; i < b.N; i++ {
		UniformSumQuantile(ds, 0.1)
	}
}
