package stats

import (
	"math/rand"
	"testing"
	"time"
)

// These tests pin the in-place percentile/convolution variants: with reused
// scratch, the estimator and metrics hot paths allocate nothing per call.

// TestAllocsPercentilesInto: window extraction plus percentile computation
// through reused buffers is allocation-free.
func TestAllocsPercentilesInto(t *testing.T) {
	w := NewSlidingWindow(5 * time.Second)
	for i := 0; i < 256; i++ {
		w.Add(time.Duration(i)*20*time.Millisecond, float64(i%37))
	}
	now := 255 * 20 * time.Millisecond
	qs := []float64{0.5, 0.95}
	var vals, pcts []float64
	vals = w.ValuesInto(now, vals)
	pcts = PercentilesInto(pcts[:0], vals, qs...)

	avg := testing.AllocsPerRun(100, func() {
		vals = w.ValuesInto(now, vals)
		pcts = PercentilesInto(pcts[:0], vals, qs...)
	})
	if avg != 0 {
		t.Fatalf("window percentile path allocates %.1f per call, want 0", avg)
	}
	if len(pcts) != 2 {
		t.Fatalf("lost results: %v", pcts)
	}
}

// TestAllocsConvolveInto: Monte-Carlo convolution through a reused sum
// scratch is allocation-free.
func TestAllocsConvolveInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := [][]float64{{0.01, 0.02, 0.03}, {0.05, 0.04}, {0.002}}
	var scratch []float64
	_, scratch = ConvolveQuantileInto(scratch, src, 0.9, 2000, rng)

	avg := testing.AllocsPerRun(20, func() {
		_, scratch = ConvolveQuantileInto(scratch, src, 0.9, 2000, rng)
	})
	if avg != 0 {
		t.Fatalf("ConvolveQuantileInto allocates %.1f per call, want 0", avg)
	}
}
