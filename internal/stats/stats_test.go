package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSlidingWindowEviction(t *testing.T) {
	w := NewSlidingWindow(5 * time.Second)
	for i := 0; i < 10; i++ {
		w.Add(time.Duration(i)*time.Second, float64(i))
	}
	// At t=9s the window covers (4s, 9s]: samples 5..9 plus the boundary
	// sample at 4s (cut is strictly-less eviction).
	if got := w.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
	m, ok := w.UnweightedMean(9 * time.Second)
	if !ok || m != 6.5 {
		t.Fatalf("UnweightedMean = %v ok=%v, want 6.5", m, ok)
	}
}

func TestSlidingWindowExactSpanBoundary(t *testing.T) {
	w := NewSlidingWindow(5 * time.Second)
	w.Add(0, 1)             // exactly now-span at t=5s: survives (eviction is at < cut)
	w.Add(time.Second, 2)   // inside
	w.Add(5*time.Second, 3) // now
	if got := w.Len(); got != 3 {
		t.Fatalf("Len at exact boundary = %d, want 3", got)
	}
	if vs := w.Values(5 * time.Second); len(vs) != 3 || vs[0] != 1 {
		t.Fatalf("boundary sample missing from Values: %v", vs)
	}
	// The boundary sample carries zero linear weight, so it survives eviction
	// but contributes nothing to the weighted mean.
	m, ok := w.Mean(5 * time.Second)
	want := ((1-4.0/5.0)*2 + 1*3) / ((1 - 4.0/5.0) + 1)
	if !ok || math.Abs(m-want) > 1e-9 {
		t.Fatalf("weighted mean = %v, want %v", m, want)
	}
	// One nanosecond past the span, the boundary sample is evicted.
	w.Advance(5*time.Second + time.Nanosecond)
	if got := w.Len(); got != 2 {
		t.Fatalf("Len one tick past boundary = %d, want 2", got)
	}
}

func TestSlidingWindowLinearWeighting(t *testing.T) {
	w := NewSlidingWindow(10 * time.Second)
	w.Add(0, 100)             // age 10s at t=10 → weight 0
	w.Add(5*time.Second, 50)  // age 5 → weight 0.5
	w.Add(10*time.Second, 10) // age 0 → weight 1
	m, ok := w.Mean(10 * time.Second)
	if !ok {
		t.Fatal("mean not available")
	}
	want := (0.5*50 + 1*10) / 1.5
	if math.Abs(m-want) > 1e-9 {
		t.Fatalf("weighted mean = %v, want %v", m, want)
	}
}

func TestSlidingWindowEmpty(t *testing.T) {
	w := NewSlidingWindow(time.Second)
	if _, ok := w.Mean(0); ok {
		t.Fatal("empty window reported a mean")
	}
	if _, ok := w.UnweightedMean(0); ok {
		t.Fatal("empty window reported an unweighted mean")
	}
	if w.Sum(0) != 0 {
		t.Fatal("empty window sum != 0")
	}
}

func TestSlidingWindowOutOfOrderClamped(t *testing.T) {
	w := NewSlidingWindow(time.Second)
	w.Add(5*time.Second, 1)
	w.Add(4*time.Second, 2) // clamped forward to 5s
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
}

func TestSlidingWindowCompaction(t *testing.T) {
	w := NewSlidingWindow(time.Millisecond)
	for i := 0; i < 10000; i++ {
		w.Add(time.Duration(i)*time.Millisecond, 1)
	}
	if w.Len() != 2 { // boundary sample + current
		t.Fatalf("Len = %d, want 2", w.Len())
	}
	if len(w.samples) > 4096 {
		t.Fatalf("window did not compact: %d backing samples", len(w.samples))
	}
}

func TestSlidingWindowPanicsOnBadSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSlidingWindow(0)
}

func TestRateWindow(t *testing.T) {
	r := NewRateWindow(time.Second)
	for i := 0; i < 100; i++ {
		r.Observe(time.Duration(i) * 10 * time.Millisecond)
	}
	// At t=0.99s all 100 observations are within 1s.
	if got := r.Rate(990 * time.Millisecond); math.Abs(got-100) > 1e-9 {
		t.Fatalf("rate = %v, want 100", got)
	}
	// 2 seconds later everything expired.
	if got := r.Count(3 * time.Second); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if _, ok := e.Value(); ok {
		t.Fatal("uninitialized EWMA reported a value")
	}
	e.Add(10)
	e.Add(20)
	v, ok := e.Value()
	if !ok || v != 15 {
		t.Fatalf("EWMA = %v, want 15", v)
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEWMA(0)
}

func TestEmpiricalQuantileCDF(t *testing.T) {
	d := NewEmpirical([]float64{4, 1, 3, 2, 5})
	if got := d.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := d.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := d.Quantile(0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := d.CDF(3); got != 0.6 {
		t.Fatalf("CDF(3) = %v, want 0.6", got)
	}
	if got := d.CDF(0.5); got != 0 {
		t.Fatalf("CDF(0.5) = %v, want 0", got)
	}
	if got := d.CDF(10); got != 1 {
		t.Fatalf("CDF(10) = %v, want 1", got)
	}
}

func TestEmpiricalEmpty(t *testing.T) {
	d := NewEmpirical(nil)
	if d.Quantile(0.5) != 0 || d.CDF(1) != 0 || d.Mean() != 0 || d.Std() != 0 || d.CV() != 0 {
		t.Fatal("empty distribution should return zeros")
	}
}

func TestEmpiricalMoments(t *testing.T) {
	d := NewEmpirical([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if d.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", d.Mean())
	}
	if d.Std() != 2 {
		t.Fatalf("std = %v, want 2", d.Std())
	}
	if math.Abs(d.CV()-0.4) > 1e-12 {
		t.Fatalf("cv = %v, want 0.4", d.CV())
	}
}

func TestEmpiricalHistogramIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewEmpirical(nil)
	for i := 0; i < 1000; i++ {
		d.Add(rng.Float64() * 10)
	}
	edges, dens := d.Histogram(20)
	if len(edges) != 20 || len(dens) != 20 {
		t.Fatalf("got %d edges, %d densities", len(edges), len(dens))
	}
	width := edges[1] - edges[0]
	var integral float64
	for _, v := range dens {
		integral += v * width
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("histogram integral = %v, want 1", integral)
	}
}

func TestReservoirUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := NewReservoir(100, rng)
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 100 || r.Seen() != 10000 {
		t.Fatalf("len=%d seen=%d", r.Len(), r.Seen())
	}
	m, _ := MeanStd(r.Values())
	// Mean of a uniform sample of 0..9999 should be near 5000.
	if m < 4000 || m > 6000 {
		t.Fatalf("reservoir mean = %v, not near 5000", m)
	}
}

func TestConvolveQuantileIrwinHall(t *testing.T) {
	// The analytically known check from Fig. 6: the 0.1-quantile of a sum of
	// j iid U[0,1] is 0.10, 0.447, 0.843, 1.245 for j = 1..4.
	rng := rand.New(rand.NewSource(7))
	uniform := make([]float64, 20000)
	for i := range uniform {
		uniform[i] = rng.Float64()
	}
	want := []float64{0.10, 0.447, 0.843, 1.245}
	for j := 1; j <= 4; j++ {
		sources := make([][]float64, j)
		for i := range sources {
			sources[i] = uniform
		}
		got := ConvolveQuantile(sources, 0.1, 20000, rng)
		if math.Abs(got-want[j-1]) > 0.05 {
			t.Fatalf("j=%d quantile = %v, want ≈%v", j, got, want[j-1])
		}
	}
}

func TestConvolveQuantileEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := [][]float64{{1, 2, 3}}
	if got := ConvolveQuantile(src, 0, 100, rng); got != 1 {
		t.Fatalf("q=0 → %v, want 1", got)
	}
	if got := ConvolveQuantile(src, 1, 100, rng); got != 3 {
		t.Fatalf("q=1 → %v, want 3", got)
	}
	if got := ConvolveQuantile(nil, 0.5, 100, rng); got != 0 {
		t.Fatalf("no sources → %v, want 0", got)
	}
	if got := ConvolveQuantile([][]float64{{}, {5}}, 0.5, 100, rng); got != 5 {
		t.Fatalf("empty source skipped → %v, want 5", got)
	}
}

func TestPercentiles(t *testing.T) {
	got := Percentiles([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.5, 0.9)
	if got[0] != 5 || got[1] != 9 {
		t.Fatalf("percentiles = %v", got)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := CoefficientOfVariation([]float64{5, 5, 5}); cv != 0 {
		t.Fatalf("constant cv = %v", cv)
	}
	if cv := CoefficientOfVariation(nil); cv != 0 {
		t.Fatalf("nil cv = %v", cv)
	}
}

// Property: Quantile is monotone in q and inverts CDF within sample
// resolution.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		d := NewEmpirical(raw)
		return d.Quantile(qa) <= d.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF(Quantile(q)) >= q for all q in (0,1].
func TestPropertyCDFQuantileGalois(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		qq := math.Abs(math.Mod(q, 1))
		if qq == 0 {
			qq = 0.5
		}
		d := NewEmpirical(raw)
		return d.CDF(d.Quantile(qq))+1e-12 >= qq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sliding-window unweighted mean equals the mean of Values().
func TestPropertyWindowMeanConsistent(t *testing.T) {
	f := func(vals []uint16) bool {
		w := NewSlidingWindow(time.Hour)
		var now time.Duration
		for _, v := range vals {
			now += time.Millisecond
			w.Add(now, float64(v))
		}
		got, ok := w.UnweightedMean(now)
		vs := w.Values(now)
		if len(vals) == 0 {
			return !ok
		}
		m, _ := MeanStd(vs)
		return ok && math.Abs(got-m) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reservoir never exceeds capacity and holds min(seen, cap).
func TestPropertyReservoirSize(t *testing.T) {
	f := func(n uint16) bool {
		rng := rand.New(rand.NewSource(3))
		r := NewReservoir(50, rng)
		for i := 0; i < int(n); i++ {
			r.Add(float64(i))
		}
		want := int(n)
		if want > 50 {
			want = 50
		}
		return r.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveSamplesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := [][]float64{{1, 2}, {10, 20}}
	out := ConvolveSamples(src, 1000, rng)
	if len(out) != 1000 {
		t.Fatalf("len = %d", len(out))
	}
	sort.Float64s(out)
	if out[0] < 11 || out[len(out)-1] > 22 {
		t.Fatalf("range [%v, %v] outside [11, 22]", out[0], out[len(out)-1])
	}
}

func BenchmarkSlidingWindowAddMean(b *testing.B) {
	w := NewSlidingWindow(5 * time.Second)
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * time.Millisecond
		w.Add(now, float64(i%100))
		if i%64 == 0 {
			w.Mean(now)
		}
	}
}

func BenchmarkConvolveQuantile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([][]float64, 4)
	for i := range src {
		s := make([]float64, 1000)
		for j := range s {
			s[j] = rng.Float64()
		}
		src[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvolveQuantile(src, 0.1, 10000, rng)
	}
}
