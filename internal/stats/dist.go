package stats

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
)

// Empirical is an empirical distribution over float64 samples supporting
// CDF evaluation and quantile inversion. Samples are sorted lazily.
type Empirical struct {
	samples []float64
	sorted  bool
}

// NewEmpirical builds a distribution from a copy of samples.
func NewEmpirical(samples []float64) *Empirical {
	cp := append([]float64(nil), samples...)
	return &Empirical{samples: cp}
}

// Reset reloads the distribution with a copy of samples, reusing the
// internal buffer when it has capacity. The zero value of Empirical is
// usable with Reset, so one long-lived Empirical can serve a loop of
// percentile queries without per-iteration allocation.
func (d *Empirical) Reset(samples []float64) {
	d.samples = append(d.samples[:0], samples...)
	d.sorted = false
}

// Add appends one sample.
func (d *Empirical) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Len returns the sample count.
func (d *Empirical) Len() int { return len(d.samples) }

func (d *Empirical) ensureSorted() {
	if !d.sorted {
		slices.Sort(d.samples)
		d.sorted = true
	}
}

// CDF returns P(X <= x), or 0 for an empty distribution.
func (d *Empirical) CDF(x float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	i := sort.SearchFloat64s(d.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(d.samples))
}

// Quantile returns the q-quantile (q in [0,1]) using the nearest-rank
// definition; q outside [0,1] is clamped. Returns 0 for an empty
// distribution.
func (d *Empirical) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[len(d.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(d.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.samples[idx]
}

// Mean returns the sample mean, or 0 when empty.
func (d *Empirical) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.samples {
		sum += v
	}
	return sum / float64(len(d.samples))
}

// Std returns the population standard deviation, or 0 when empty.
func (d *Empirical) Std() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	m := d.Mean()
	var ss float64
	for _, v := range d.samples {
		dv := v - m
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(len(d.samples)))
}

// CV returns the coefficient of variation (std/mean), or 0 when the mean
// is 0.
func (d *Empirical) CV() float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	return d.Std() / m
}

// Sample draws one value uniformly from the samples.
func (d *Empirical) Sample(rng *rand.Rand) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[rng.Intn(len(d.samples))]
}

// Histogram bins the samples into n equal-width buckets over [min, max] and
// returns bucket left edges and normalized densities. Used to render the
// Fig. 6 PDFs.
func (d *Empirical) Histogram(n int) (edges, density []float64) {
	if n <= 0 || len(d.samples) == 0 {
		return nil, nil
	}
	d.ensureSorted()
	lo, hi := d.samples[0], d.samples[len(d.samples)-1]
	if hi == lo {
		return []float64{lo}, []float64{1}
	}
	width := (hi - lo) / float64(n)
	edges = make([]float64, n)
	density = make([]float64, n)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, v := range d.samples {
		i := int((v - lo) / width)
		if i >= n {
			i = n - 1
		}
		density[i]++
	}
	total := float64(len(d.samples)) * width
	for i := range density {
		density[i] /= total
	}
	return edges, density
}

// Reservoir maintains a fixed-size uniform random sample of a stream
// (Vitter's algorithm R). PARD's modules use it to keep batch-wait samples
// bounded while staying representative.
type Reservoir struct {
	cap  int
	seen int
	buf  []float64
	rng  *rand.Rand
}

// NewReservoir returns a reservoir holding at most capacity samples.
func NewReservoir(capacity int, rng *rand.Rand) *Reservoir {
	if capacity <= 0 {
		panic(fmt.Sprintf("stats: reservoir capacity must be positive, got %d", capacity))
	}
	return &Reservoir{cap: capacity, rng: rng}
}

// Add offers one stream value to the reservoir.
func (r *Reservoir) Add(v float64) {
	r.seen++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, v)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.cap {
		r.buf[j] = v
	}
}

// Len returns the number of held samples.
func (r *Reservoir) Len() int { return len(r.buf) }

// Seen returns how many values were offered in total.
func (r *Reservoir) Seen() int { return r.seen }

// Values returns the live internal buffer, NOT a copy. The contract is
// strictly read-only: callers must not sort, append to, or otherwise mutate
// the returned slice (in particular, never pass it to PercentilesInto),
// and must copy it before handing it to anything that outlives the next
// Add. Percentiles and ConvolveQuantile/ConvolveSamples are safe consumers:
// they copy or only read.
func (r *Reservoir) Values() []float64 { return r.buf }

// ConvolveQuantile estimates the q-quantile of the sum of independent draws,
// one from each source distribution, by Monte-Carlo with m samples. This is
// PARD's F^{-1}_{k+1→N}(λ) estimator for aggregated batch wait: each source
// is a module's observed batch-wait sample set. Empty sources contribute 0.
// The source slices are read-only; they are never reordered or written.
func ConvolveQuantile(sources [][]float64, q float64, m int, rng *rand.Rand) float64 {
	v, _ := ConvolveQuantileInto(nil, sources, q, m, rng)
	return v
}

// ConvolveQuantileInto is ConvolveQuantile with a caller-supplied scratch
// buffer for the Monte-Carlo sums: scratch is resized (reallocating only when
// capacity is short), filled, and sorted in place. It returns the quantile
// and the (possibly grown) scratch for reuse on the next call. The sequence
// of RNG draws is identical to ConvolveQuantile's, so results are
// byte-for-byte the same for the same rng state.
func ConvolveQuantileInto(scratch []float64, sources [][]float64, q float64, m int, rng *rand.Rand) (float64, []float64) {
	if m <= 0 || len(sources) == 0 {
		return 0, scratch
	}
	sums := convolveInto(scratch, sources, m, rng)
	slices.Sort(sums)
	if q <= 0 {
		return sums[0], sums
	}
	if q >= 1 {
		return sums[m-1], sums
	}
	idx := int(math.Ceil(q*float64(m))) - 1
	if idx < 0 {
		idx = 0
	}
	return sums[idx], sums
}

// ConvolveSamples draws m Monte-Carlo samples of the sum of one draw per
// source; used to build full aggregated distributions (Fig. 6). The source
// slices are read-only.
func ConvolveSamples(sources [][]float64, m int, rng *rand.Rand) []float64 {
	return convolveInto(nil, sources, m, rng)
}

// ConvolveSamplesInto is ConvolveSamples writing into a caller-supplied
// scratch buffer (grown only when capacity is short). The returned slice
// aliases scratch and is valid until the next call that reuses it.
func ConvolveSamplesInto(scratch []float64, sources [][]float64, m int, rng *rand.Rand) []float64 {
	return convolveInto(scratch, sources, m, rng)
}

func convolveInto(scratch []float64, sources [][]float64, m int, rng *rand.Rand) []float64 {
	if m < 0 {
		m = 0
	}
	var sums []float64
	if cap(scratch) >= m {
		sums = scratch[:m]
	} else {
		sums = make([]float64, m)
	}
	for i := range sums {
		sums[i] = 0
	}
	for _, src := range sources {
		if len(src) == 0 {
			continue
		}
		for i := range sums {
			sums[i] += src[rng.Intn(len(src))]
		}
	}
	return sums
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// CoefficientOfVariation returns std/mean of xs, or 0 for mean 0.
func CoefficientOfVariation(xs []float64) float64 {
	m, s := MeanStd(xs)
	if m == 0 {
		return 0
	}
	return s / m
}

// Percentiles evaluates the given quantiles (each in [0,1]) over xs.
// xs is read-only: this copies before sorting, so callers may pass live or
// shared buffers (e.g. Reservoir.Values results, cached slices).
func Percentiles(xs []float64, qs ...float64) []float64 {
	d := NewEmpirical(xs)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = d.Quantile(q)
	}
	return out
}

// PercentilesInto evaluates the given quantiles over xs, SORTING xs IN
// PLACE, and appends the results to dst (which may be nil). Use it on
// buffers the caller owns outright — never on live Reservoir.Values slices
// or cached result slices shared with other readers. Quantile semantics
// match Percentiles (nearest rank, clamped, 0 when xs is empty).
func PercentilesInto(dst []float64, xs []float64, qs ...float64) []float64 {
	slices.Sort(xs)
	for _, q := range qs {
		dst = append(dst, QuantileSorted(xs, q))
	}
	return dst
}

// QuantileSorted returns the nearest-rank q-quantile of an ascending-sorted
// slice, clamping q to [0,1]; it returns 0 when xs is empty.
func QuantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	idx := int(math.Ceil(q*float64(len(xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return xs[idx]
}
