// Package stats provides the statistical substrate PARD's State Planner is
// built on: time-based sliding windows with linear weighting (§4.2 footnote
// 4), exponential moving averages, empirical distributions with quantile
// inversion, reservoir sampling, and Monte-Carlo convolution of per-module
// batch-wait distributions (the F_{k+1→N} estimator behind w_k).
package stats

import (
	"fmt"
	"time"
)

type sample struct {
	at time.Duration
	v  float64
}

// SlidingWindow keeps timestamped samples inside a fixed horizon and answers
// average queries. Mean applies linear weighting: a sample's weight decays
// linearly from 1 (now) to 0 (window edge), matching the paper's "5s linear
// weighted window" used for recent queueing delay.
type SlidingWindow struct {
	span    time.Duration
	samples []sample // ring-ish: evicted from the front lazily
	head    int
}

// NewSlidingWindow returns a window covering the last span of virtual time.
func NewSlidingWindow(span time.Duration) *SlidingWindow {
	if span <= 0 {
		panic(fmt.Sprintf("stats: window span must be positive, got %v", span))
	}
	return &SlidingWindow{span: span}
}

// Span returns the configured window horizon.
func (w *SlidingWindow) Span() time.Duration { return w.span }

// SetSpan changes the horizon; existing samples are re-evaluated lazily.
func (w *SlidingWindow) SetSpan(span time.Duration) {
	if span <= 0 {
		panic(fmt.Sprintf("stats: window span must be positive, got %v", span))
	}
	w.span = span
}

// Add records value v observed at time now. Timestamps must be nondecreasing;
// out-of-order samples are clamped forward to preserve the eviction
// invariant.
func (w *SlidingWindow) Add(now time.Duration, v float64) {
	if n := len(w.samples); n > w.head && now < w.samples[n-1].at {
		now = w.samples[n-1].at
	}
	w.samples = append(w.samples, sample{at: now, v: v})
	w.evict(now)
}

func (w *SlidingWindow) evict(now time.Duration) {
	cut := now - w.span
	for w.head < len(w.samples) && w.samples[w.head].at < cut {
		w.head++
	}
	// Compact when the dead prefix dominates to bound memory.
	if w.head > 1024 && w.head*2 > len(w.samples) {
		w.samples = append([]sample(nil), w.samples[w.head:]...)
		w.head = 0
	}
}

// Len returns the number of live samples as of the last Add/advance.
func (w *SlidingWindow) Len() int { return len(w.samples) - w.head }

// Advance evicts samples older than now-span without adding a sample.
func (w *SlidingWindow) Advance(now time.Duration) { w.evict(now) }

// Mean returns the linear-weighted mean of samples within the window as of
// time now, and false when the window is empty.
func (w *SlidingWindow) Mean(now time.Duration) (float64, bool) {
	w.evict(now)
	var sum, wsum float64
	for i := w.head; i < len(w.samples); i++ {
		s := w.samples[i]
		age := now - s.at
		if age < 0 {
			age = 0
		}
		weight := 1 - float64(age)/float64(w.span)
		if weight <= 0 {
			continue
		}
		sum += weight * s.v
		wsum += weight
	}
	if wsum == 0 {
		return 0, false
	}
	return sum / wsum, true
}

// UnweightedMean returns the plain average of live samples.
func (w *SlidingWindow) UnweightedMean(now time.Duration) (float64, bool) {
	w.evict(now)
	if w.Len() == 0 {
		return 0, false
	}
	var sum float64
	for i := w.head; i < len(w.samples); i++ {
		sum += w.samples[i].v
	}
	return sum / float64(w.Len()), true
}

// Sum returns the sum of live sample values.
func (w *SlidingWindow) Sum(now time.Duration) float64 {
	w.evict(now)
	var sum float64
	for i := w.head; i < len(w.samples); i++ {
		sum += w.samples[i].v
	}
	return sum
}

// Values copies the live sample values, oldest first.
func (w *SlidingWindow) Values(now time.Duration) []float64 {
	w.evict(now)
	out := make([]float64, 0, w.Len())
	for i := w.head; i < len(w.samples); i++ {
		out = append(out, w.samples[i].v)
	}
	return out
}

// ValuesInto appends the live sample values (oldest first) to buf[:0] and
// returns it, reusing buf's capacity when sufficient. The returned slice is
// owned by the caller; the window keeps no reference to it.
func (w *SlidingWindow) ValuesInto(now time.Duration, buf []float64) []float64 {
	w.evict(now)
	buf = buf[:0]
	for i := w.head; i < len(w.samples); i++ {
		buf = append(buf, w.samples[i].v)
	}
	return buf
}

// RateWindow counts events inside a horizon and reports their arrival rate.
// PARD uses it for the module input workload T_in.
type RateWindow struct {
	span  time.Duration
	times []time.Duration
	head  int
}

// NewRateWindow returns a rate estimator over the last span.
func NewRateWindow(span time.Duration) *RateWindow {
	if span <= 0 {
		panic(fmt.Sprintf("stats: rate window span must be positive, got %v", span))
	}
	return &RateWindow{span: span}
}

// Observe records one event at time now.
func (r *RateWindow) Observe(now time.Duration) {
	if n := len(r.times); n > r.head && now < r.times[n-1] {
		now = r.times[n-1]
	}
	r.times = append(r.times, now)
	r.evict(now)
}

func (r *RateWindow) evict(now time.Duration) {
	cut := now - r.span
	for r.head < len(r.times) && r.times[r.head] < cut {
		r.head++
	}
	if r.head > 4096 && r.head*2 > len(r.times) {
		r.times = append([]time.Duration(nil), r.times[r.head:]...)
		r.head = 0
	}
}

// Count returns the number of events within the window at time now.
func (r *RateWindow) Count(now time.Duration) int {
	r.evict(now)
	return len(r.times) - r.head
}

// Rate returns events per second within the window at time now.
func (r *RateWindow) Rate(now time.Duration) float64 {
	n := r.Count(now)
	return float64(n) / r.span.Seconds()
}

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha must be in (0,1], got %v", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Add folds v into the average.
func (e *EWMA) Add(v float64) {
	if !e.init {
		e.v, e.init = v, true
		return
	}
	e.v = e.alpha*v + (1-e.alpha)*e.v
}

// Value returns the current average and whether any sample was added.
func (e *EWMA) Value() (float64, bool) { return e.v, e.init }
