package experiments

import (
	"fmt"
	"time"

	"pard/internal/policy"
	"pard/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig14a",
		Title: "Stress test: goodput vs input request rate with fixed instances",
		Run:   fig14a,
	})
	register(Experiment{
		ID:    "fig14b",
		Title: "Drop rate sensitivity to the latency SLO (lv-tweet)",
		Run:   fig14b,
	})
	register(Experiment{
		ID:    "fig14c",
		Title: "Drop rate sensitivity to quantile λ",
		Run:   fig14c,
	})
	register(Experiment{
		ID:    "fig14d",
		Title: "Drop rate sensitivity to the sliding window size (lv)",
		Run:   fig14d,
	})
}

func fig14a(h *Harness) (*Output, error) {
	// Fixed instances (4 workers per module ≈ the per-app share of the
	// paper's 64-GPU cluster); sweep the offered rate past capacity.
	fixed := []int{4, 4, 4, 4, 4}
	rates := []float64{200, 350, 500, 650, 800}
	t := Table{
		ID:      "fig14a",
		Title:   "goodput (req/s) vs input request rate, lv, fixed instances",
		Columns: append(append([]string{"input rate"}, policy.Comparison()...), "optimal"),
	}
	var specs []Spec
	for _, rate := range rates {
		for _, pol := range policy.Comparison() {
			specs = append(specs, Spec{App: "lv", Policy: pol,
				Opts: RunOpts{SteadyRate: rate, FixedWorkers: fixed}})
		}
	}
	results, err := h.Sweep(specs)
	if err != nil {
		return nil, err
	}
	var capacity float64
	i := 0
	for _, rate := range rates {
		row := []string{f1(rate)}
		for _, pol := range policy.Comparison() {
			res := results[i]
			i++
			good := float64(res.Summary.Good) / res.Collector.End().Seconds()
			row = append(row, f1(good))
			if pol == "pard" && good > capacity {
				capacity = good
			}
		}
		optimal := rate
		if capacity > 0 && capacity < rate {
			optimal = capacity
		}
		row = append(row, f1(optimal))
		t.Rows = append(t.Rows, row)
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"Paper: beyond testbed capacity PARD stays 11.9-132.9% above baselines and 3.4-23.4x closer to the optimal min(rate, capacity).",
	}}, nil
}

func fig14b(h *Harness) (*Output, error) {
	slos := []time.Duration{200 * time.Millisecond, 300 * time.Millisecond,
		400 * time.Millisecond, 500 * time.Millisecond, 600 * time.Millisecond}
	t := Table{
		ID:      "fig14b",
		Title:   "average drop rate vs SLO, lv-tweet",
		Columns: append([]string{"SLO"}, policy.Comparison()...),
	}
	var specs []Spec
	for _, slo := range slos {
		for _, pol := range policy.Comparison() {
			specs = append(specs, Spec{App: "lv", Kind: trace.Tweet, Policy: pol,
				Opts: RunOpts{SLOOverride: slo}})
		}
	}
	results, err := h.Sweep(specs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, slo := range slos {
		row := []string{fmt.Sprintf("%dms", slo.Milliseconds())}
		for range policy.Comparison() {
			row = append(row, pct(results[i].Summary.DropRate))
			i++
		}
		t.Rows = append(t.Rows, row)
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"Paper: PARD sustains 0.85%-3.04% drop rates across SLOs, 1.9-5.3x lower than baselines.",
	}}, nil
}

func fig14c(h *Harness) (*Output, error) {
	lambdas := []float64{0.01, 0.05, 0.075, 0.1, 0.15, 0.25, 0.5, 0.75, 1.0}
	apps := []string{"lv", "tm", "gm", "da"}
	t := Table{
		ID:      "fig14c",
		Title:   "PARD drop rate vs quantile λ (tweet trace)",
		Columns: append([]string{"lambda"}, apps...),
	}
	var specs []Spec
	for _, l := range lambdas {
		for _, app := range apps {
			specs = append(specs, Spec{App: app, Kind: trace.Tweet, Policy: "pard",
				Opts: RunOpts{Lambda: l}})
		}
	}
	results, err := h.Sweep(specs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, l := range lambdas {
		row := []string{f3(l)}
		for range apps {
			row = append(row, pct(results[i].Summary.DropRate))
			i++
		}
		t.Rows = append(t.Rows, row)
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"Paper: the optimum lies in [0.075, 0.15] with little variation inside the range; λ=0.1 is the default.",
	}}, nil
}

func fig14d(h *Harness) (*Output, error) {
	windows := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second,
		4 * time.Second, 5 * time.Second, 7500 * time.Millisecond, 10 * time.Second, 15 * time.Second}
	kinds := []trace.Kind{trace.Wiki, trace.Tweet, trace.Azure}
	t := Table{
		ID:      "fig14d",
		Title:   "PARD drop rate vs sliding window size, lv",
		Columns: []string{"window", "wiki", "tweet", "azure"},
	}
	var specs []Spec
	for _, w := range windows {
		for _, kind := range kinds {
			specs = append(specs, Spec{App: "lv", Kind: kind, Policy: "pard",
				Opts: RunOpts{WindowSize: w}})
		}
	}
	results, err := h.Sweep(specs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, w := range windows {
		row := []string{fmt.Sprintf("%.1fs", w.Seconds())}
		for range kinds {
			row = append(row, pct(results[i].Summary.DropRate))
			i++
		}
		t.Rows = append(t.Rows, row)
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"Paper guideline: 5-7s windows for stable traces (CV<0.5), 3-5s for moderate (0.5-1.0), 1-3s for highly bursty (CV>=1.0).",
	}}, nil
}
