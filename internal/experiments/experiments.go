// Package experiments regenerates every table and figure in the paper's
// evaluation (§5, §7). Each experiment is a named entry in a registry; the
// harness runs the underlying simulations (caching runs shared between
// figures), and renders the same rows/series the paper reports as text
// tables and CSV files.
//
// Absolute numbers differ from the paper — the substrate is a simulator,
// not a 64-GPU testbed — but the shapes (who wins, by what factor, where
// crossovers fall) are the reproduction targets; EXPERIMENTS.md records
// paper-vs-measured for each artifact.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pard/internal/simgpu"
	"pard/internal/sweep"
	"pard/internal/trace"
)

// Scale selects how much virtual time each workload covers.
type Scale string

// Scales.
const (
	// Smoke is for unit tests: minutes of virtual time.
	Smoke Scale = "smoke"
	// Quick is the default benchmarking scale.
	Quick Scale = "quick"
	// Full replays paper-length traces.
	Full Scale = "full"
)

// traceDuration maps scale to virtual trace length.
func traceDuration(s Scale) time.Duration {
	switch s {
	case Smoke:
		return 120 * time.Second
	case Full:
		return 1400 * time.Second
	default:
		return 300 * time.Second
	}
}

// Table is one rendered artifact (a paper table, or a figure's data series).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Output is everything one experiment produces.
type Output struct {
	Tables []Table
	Notes  []string
}

// Config parameterizes an experiment run.
type Config struct {
	Scale Scale
	Seed  int64
	// Parallel bounds concurrent simulation runs when a generator submits
	// a grid (0 = runtime.NumCPU(), 1 = sequential). Any value produces
	// identical outputs at a fixed seed; it only changes wall-clock time.
	Parallel int
	// OnProgress, when set, receives one callback per finished grid run.
	OnProgress func(sweep.Progress)
	// CacheDir, when set, persists finished simulation runs to disk so
	// repeated invocations reuse finished grid points (see sweep.Config).
	CacheDir string
	// Engine, when set, selects the execution engine for every simulation
	// (see simgpu.Config.Engine): simgpu.EngineClassic reproduces pre-flip
	// numbers on the deprecated global event heap; "" and simgpu.EngineLane
	// are the lane-engine default.
	Engine string
	// Shards, when >= 1, sets the lane engine's worker count for every
	// simulation (see simgpu.Config.Shards). Zero is the sequential lane
	// default.
	Shards int
	// Logf, when set, receives cache-maintenance logging (see sweep.Config).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Scale == "" {
		c.Scale = Quick
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Experiment is a registered paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(h *Harness) (*Output, error)
}

// Harness executes experiments on a parallel sweep engine whose cache of
// simulation runs lets figures sharing workloads (e.g. Figs. 8-10) avoid
// recomputing them.
type Harness struct {
	cfg Config
	eng *sweep.Engine
}

// NewHarness returns a harness for the config.
func NewHarness(cfg Config) *Harness {
	cfg = cfg.withDefaults()
	return &Harness{
		cfg: cfg,
		eng: sweep.New(sweep.Config{
			Workers:       cfg.Parallel,
			BaseSeed:      cfg.Seed,
			TraceDuration: traceDuration(cfg.Scale),
			OnProgress:    cfg.OnProgress,
			CacheDir:      cfg.CacheDir,
			Logf:          cfg.Logf,
		}),
	}
}

// Config returns the effective configuration.
func (h *Harness) Config() Config { return h.cfg }

// Engine exposes the underlying sweep engine (for generic, non-simgpu
// jobs such as the RAG case study).
func (h *Harness) Engine() *sweep.Engine { return h.eng }

// Distribute routes the harness's grid sweeps through d — e.g. a
// dist.Coordinator fanning units out to remote worker processes — instead
// of the in-process pool. Results are unchanged by construction (per-unit
// seed derivation), so every figure regenerates byte-identically however
// the cluster is shaped; single Run calls still execute locally and share
// the same cache. Pass nil to restore in-process execution.
func (h *Harness) Distribute(d sweep.Distributor) { h.eng.SetDistributor(d) }

// Trace returns (and caches) the synthetic trace for a workload kind at the
// harness scale.
func (h *Harness) Trace(kind trace.Kind) *trace.Trace {
	tr, err := h.eng.Trace(kind)
	if err != nil {
		panic(err) // built-in kinds always generate
	}
	return tr
}

// RunOpts tweaks a single simulation beyond app/trace/policy.
type RunOpts = sweep.RunOpts

// Spec identifies one grid point of a sweep.
type Spec = sweep.Spec

// applyEngine fills a spec's engine options from the harness defaults.
func (h *Harness) applyEngine(opts *RunOpts) {
	if opts.Engine == "" {
		opts.Engine = h.cfg.Engine
	}
	if opts.Shards == 0 {
		opts.Shards = h.cfg.Shards
	}
}

// Run executes (or retrieves from cache) one simulation.
func (h *Harness) Run(app string, kind trace.Kind, policy string, opts RunOpts) (*simgpu.Result, error) {
	h.applyEngine(&opts)
	return h.eng.Run(Spec{App: app, Kind: kind, Policy: policy, Opts: opts})
}

// Sweep executes a grid of specs concurrently and returns results in input
// order; see sweep.Engine.Sweep for the determinism contract.
func (h *Harness) Sweep(specs []Spec) ([]*simgpu.Result, error) {
	if h.cfg.Shards != 0 || h.cfg.Engine != "" {
		specs = append([]Spec(nil), specs...)
		for i := range specs {
			h.applyEngine(&specs[i].Opts)
		}
	}
	return h.eng.Sweep(specs)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
}

// IDs lists registered experiment IDs.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// formatting helpers

func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func secs(d time.Duration) string {
	if d%time.Second == 0 {
		return fmt.Sprintf("%.0fs", d.Seconds())
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}

// Render formats a table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
