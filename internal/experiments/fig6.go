package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"pard/internal/pipeline"
	"pard/internal/simgpu"
	"pard/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Probability density of total batch wait in a 4-module pipeline",
		Run:   fig6,
	})
}

// fig6 reproduces the Irwin-Hall shape of aggregated batch wait: each
// module's batch wait is ~U[0, d], so the sum over the last j modules
// concentrates around j·d/2, with the λ=0.1 quantiles at 0.31/0.28/0.22/0.10
// of the aggregated Σd (the worked example in §4.2).
func fig6(h *Harness) (*Output, error) {
	spec := pipeline.Uniform("u4", 4, "facerec", 400*time.Millisecond)
	results, err := h.Sweep([]Spec{{
		Pipeline: spec,
		Policy:   "naive", // no dropping: observe the undisturbed distribution
		Opts: RunOpts{
			SteadyRate: 200,
			SteadyDur:  traceDuration(h.cfg.Scale),
			Probes:     simgpu.ProbeConfig{Decomposition: true, SampleEvery: 1},
		},
	}})
	if err != nil {
		return nil, err
	}
	res := results[0]

	rng := rand.New(rand.NewSource(h.eng.SeedFor("fig6|convolve")))
	quant := Table{
		ID:      "fig6",
		Title:   "aggregated batch wait from module k to 4: quantiles (fraction of aggregated Σd)",
		Columns: []string{"aggregation", "q10", "q50", "q90", "paper q10"},
	}
	paperQ10 := []float64{0.31, 0.28, 0.22, 0.10}
	d := res.ProfiledDurs[0].Seconds()
	// One Monte-Carlo scratch serves all 12 convolutions; the RNG draw
	// sequence is identical to per-call ConvolveQuantile, so the table bytes
	// don't move. The cached WaitSamples sources are read-only throughout.
	var conv []float64
	sources := make([][]float64, 0, 4)
	for k := 0; k < 4; k++ {
		sources = sources[:0]
		for i := k; i < 4; i++ {
			sources = append(sources, res.WaitSamples[i])
		}
		sumD := float64(4-k) * d
		var q10, q50, q90 float64
		q10, conv = stats.ConvolveQuantileInto(conv, sources, 0.1, 10000, rng)
		q50, conv = stats.ConvolveQuantileInto(conv, sources, 0.5, 10000, rng)
		q90, conv = stats.ConvolveQuantileInto(conv, sources, 0.9, 10000, rng)
		quant.Rows = append(quant.Rows, []string{
			fmt.Sprintf("M%d..M4", k+1), f3(q10 / sumD), f3(q50 / sumD), f3(q90 / sumD), f3(paperQ10[k]),
		})
	}

	// Histogram of the full aggregation (M1..M4) for the density plot.
	hist := Table{
		ID:      "fig6-pdf",
		Title:   "PDF of total batch wait M1..M4 (x in units of Σd)",
		Columns: []string{"x/Σd", "density"},
	}
	all := stats.ConvolveSamples([][]float64{
		res.WaitSamples[0], res.WaitSamples[1], res.WaitSamples[2], res.WaitSamples[3],
	}, 20000, rng)
	dist := stats.NewEmpirical(all)
	edges, dens := dist.Histogram(24)
	sumD := 4 * d
	for i := range edges {
		hist.Rows = append(hist.Rows, []string{f3(edges[i] / sumD), f3(dens[i] * sumD)})
	}
	return &Output{
		Tables: []Table{quant, hist},
		Notes: []string{
			"Batch waits are near-uniform on [0, d]; sums follow Irwin-Hall, concentrating near (N-k+1)·d/2.",
		},
	}, nil
}
