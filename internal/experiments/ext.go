package experiments

import (
	"fmt"
	"time"

	"pard/internal/policy"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "ext-failure",
		Title: "Extension: goodput under injected machine failure (§2 motivation)",
		Run:   extFailure,
	})
	register(Experiment{
		ID:    "ext-analytic",
		Title: "Extension: Monte-Carlo vs closed-form (Irwin-Hall/CLT) batch-wait estimation",
		Run:   extAnalytic,
	})
}

// extFailure kills half of one module's workers mid-run and compares how the
// dropping policies ride through the capacity loss. The paper motivates
// dropping with machine failures (§2) but does not evaluate them; this
// extension does.
func extFailure(h *Harness) (*Output, error) {
	dur := traceDuration(h.cfg.Scale)
	failAt := dur / 3
	t := Table{
		ID:      "ext-failure",
		Title:   fmt.Sprintf("metrics with 2 of module-2's workers failing at t=%s (lv, steady 350 req/s)", secs(failAt)),
		Columns: []string{"policy", "drop rate", "invalid rate", "min goodput (10s)", "goodput"},
	}
	specs := make([]Spec, 0, len(policy.Comparison()))
	for _, pol := range policy.Comparison() {
		specs = append(specs, Spec{App: "lv", Policy: pol, Opts: RunOpts{
			SteadyRate: 350,
			SteadyDur:  dur,
			Failures:   []simgpu.Failure{{At: failAt, Module: 2, Count: 2}},
		}})
	}
	results, err := h.Sweep(specs)
	if err != nil {
		return nil, err
	}
	for i, pol := range policy.Comparison() {
		s := results[i].Summary
		t.Rows = append(t.Rows, []string{
			pol, pct(s.DropRate), pct(s.InvalidRate),
			f3(results[i].Collector.MinNormalizedGoodput(10 * time.Second)),
			f1(s.Goodput),
		})
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"Failure costs capacity until the scaling engine cold-starts replacements; proactive dropping limits the backlog damage.",
	}}, nil
}

// extAnalytic compares PARD's Monte-Carlo batch-wait quantile against the
// closed-form Irwin-Hall/CLT estimator across the three traces.
func extAnalytic(h *Harness) (*Output, error) {
	t := Table{
		ID:      "ext-analytic",
		Title:   "drop rate: Monte-Carlo (pard) vs closed-form (pard-analytic) wait estimation, lv",
		Columns: []string{"trace", "pard (MC)", "pard-analytic (CLT)"},
	}
	kinds := []trace.Kind{trace.Wiki, trace.Tweet, trace.Azure}
	var specs []Spec
	for _, kind := range kinds {
		for _, pol := range []string{"pard", "pard-analytic"} {
			specs = append(specs, Spec{App: "lv", Kind: kind, Policy: pol})
		}
	}
	results, err := h.Sweep(specs)
	if err != nil {
		return nil, err
	}
	for i, kind := range kinds {
		mc, an := results[2*i], results[2*i+1]
		t.Rows = append(t.Rows, []string{
			string(kind), pct(mc.Summary.DropRate), pct(an.Summary.DropRate),
		})
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"The closed form needs no per-sync sampling (see BenchmarkAnalyticQuantile vs BenchmarkConvolveQuantile)",
		"but assumes W_i ~ U[0, d_i]; under partially-filled batches the empirical distribution deviates.",
	}}, nil
}
