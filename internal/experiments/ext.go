package experiments

import (
	"fmt"
	"time"

	"pard/internal/pipeline"
	"pard/internal/policy"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "ext-failure",
		Title: "Extension: goodput under injected machine failure (§2 motivation)",
		Run:   extFailure,
	})
	register(Experiment{
		ID:    "ext-analytic",
		Title: "Extension: Monte-Carlo vs closed-form (Irwin-Hall/CLT) batch-wait estimation",
		Run:   extAnalytic,
	})
}

// extFailure kills half of one module's workers mid-run and compares how the
// dropping policies ride through the capacity loss. The paper motivates
// dropping with machine failures (§2) but does not evaluate them; this
// extension does.
func extFailure(h *Harness) (*Output, error) {
	dur := traceDuration(h.cfg.Scale)
	tr := trace.MustGenerate(trace.Config{
		Kind:     trace.Steady,
		Duration: dur,
		PeakRate: 350,
		Seed:     h.cfg.Seed,
	})
	failAt := dur / 3
	t := Table{
		ID:      "ext-failure",
		Title:   fmt.Sprintf("metrics with 2 of module-2's workers failing at t=%s (lv, steady 350 req/s)", secs(failAt)),
		Columns: []string{"policy", "drop rate", "invalid rate", "min goodput (10s)", "goodput"},
	}
	for _, pol := range policy.Comparison() {
		res, err := simgpu.Run(simgpu.Config{
			Spec:       h.mustSpec("lv"),
			PolicyName: pol,
			Trace:      tr,
			Seed:       h.cfg.Seed,
			Failures:   []simgpu.Failure{{At: failAt, Module: 2, Count: 2}},
		})
		if err != nil {
			return nil, err
		}
		s := res.Summary
		t.Rows = append(t.Rows, []string{
			pol, pct(s.DropRate), pct(s.InvalidRate),
			f3(res.Collector.MinNormalizedGoodput(10 * time.Second)),
			f1(s.Goodput),
		})
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"Failure costs capacity until the scaling engine cold-starts replacements; proactive dropping limits the backlog damage.",
	}}, nil
}

// extAnalytic compares PARD's Monte-Carlo batch-wait quantile against the
// closed-form Irwin-Hall/CLT estimator across the three traces.
func extAnalytic(h *Harness) (*Output, error) {
	t := Table{
		ID:      "ext-analytic",
		Title:   "drop rate: Monte-Carlo (pard) vs closed-form (pard-analytic) wait estimation, lv",
		Columns: []string{"trace", "pard (MC)", "pard-analytic (CLT)"},
	}
	for _, kind := range []trace.Kind{trace.Wiki, trace.Tweet, trace.Azure} {
		mc, err := h.Run("lv", kind, "pard", RunOpts{})
		if err != nil {
			return nil, err
		}
		an, err := h.Run("lv", kind, "pard-analytic", RunOpts{})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			string(kind), pct(mc.Summary.DropRate), pct(an.Summary.DropRate),
		})
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"The closed form needs no per-sync sampling (see BenchmarkAnalyticQuantile vs BenchmarkConvolveQuantile)",
		"but assumes W_i ~ U[0, d_i]; under partially-filled batches the empirical distribution deviates.",
	}}, nil
}

// mustSpec resolves an app name, panicking on registry bugs (callers pass
// literals).
func (h *Harness) mustSpec(app string) *pipeline.Spec {
	s, err := appSpec(app)
	if err != nil {
		panic(err)
	}
	return s
}
