package experiments

import (
	"fmt"

	"pard/internal/policy"
	"pard/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Ablation study: drop/invalid rates and per-module drops (lv-tweet)",
		Run:   fig11,
	})
}

// fig11 runs the Table 1 ablation variants on lv-tweet (§5.3 uses this
// workload for all ablations).
func fig11(h *Harness) (*Output, error) {
	rates := Table{
		ID:      "fig11a",
		Title:   "drop rate and invalid rate per ablation",
		Columns: []string{"policy", "drop rate", "invalid rate", "goodput (norm)"},
	}
	perMod := Table{
		ID:      "fig11b",
		Title:   "percent of drops at each module per ablation",
		Columns: []string{"policy", "M1", "M2", "M3", "M4", "M5"},
	}
	specs := make([]Spec, 0, len(policy.Ablations()))
	for _, pol := range policy.Ablations() {
		specs = append(specs, Spec{App: "lv", Kind: trace.Tweet, Policy: pol})
	}
	results, err := h.Sweep(specs)
	if err != nil {
		return nil, err
	}
	for i, pol := range policy.Ablations() {
		res := results[i]
		s := res.Summary
		norm := 0.0
		if s.Total > 0 {
			norm = float64(s.Good) / float64(s.Total)
		}
		rates.Rows = append(rates.Rows, []string{pol, pct(s.DropRate), pct(s.InvalidRate), f3(norm)})
		row := []string{pol}
		for m := 0; m < 5; m++ {
			row = append(row, f1(s.PerModuleDropPct[m]))
		}
		perMod.Rows = append(perMod.Rows, row)
	}
	return &Output{
		Tables: []Table{rates, perMod},
		Notes: []string{
			"Paper: PARD-back/sf/oc drop 1.1-3.6x more with 2.1-24x higher invalid rates;",
			fmt.Sprintf("split variants lack budget flexibility; upper/lower mis-drop/mis-keep; FCFS/LBF/HBF lose 6-29%% goodput; instant thrashes (cf. %s).", "Fig. 13"),
		},
	}, nil
}
