package experiments

import (
	"fmt"
	"time"

	"pard/internal/simgpu"
	"pard/internal/stats"
	"pard/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig12a",
		Title: "Consumed latency budget per module over time (PARD, lv-tweet)",
		Run:   fig12a,
	})
	register(Experiment{
		ID:    "fig12b",
		Title: "CDF of end-to-end queueing delay, batch wait and inference duration",
		Run:   fig12b,
	})
	register(Experiment{
		ID:    "fig12c",
		Title: "Per-module queueing delay during workload burst (PARD vs FCFS vs LBF)",
		Run:   fig12c,
	})
	register(Experiment{
		ID:    "fig12d",
		Title: "Remaining latency budget of consecutive requests at M2/M3",
		Run:   fig12d,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Load factor and HBF/LBF transitions: PARD vs PARD-instant",
		Run:   fig13,
	})
}

var budgetProbes = simgpu.ProbeConfig{Budget: true, SampleEvery: 4}

func fig12a(h *Harness) (*Output, error) {
	res, err := h.Run("lv", trace.Tweet, "pard", RunOpts{Probes: budgetProbes})
	if err != nil {
		return nil, err
	}
	bucket := 20 * time.Second
	if h.cfg.Scale != Full {
		bucket = 10 * time.Second
	}
	t := Table{
		ID:      "fig12a",
		Title:   "per-module consumed latency budget (ms) over time",
		Columns: []string{"time", "M1", "M2", "M3", "M4", "M5"},
	}
	var ts []time.Duration
	cols := make([][]float64, len(res.Consumed))
	for k, s := range res.Consumed {
		t2, vs := s.Bucketed(bucket)
		if len(t2) > len(ts) {
			ts = t2
		}
		cols[k] = vs
	}
	for i := range ts {
		row := []string{secs(ts[i])}
		for _, vs := range cols {
			if i < len(vs) {
				row = append(row, f1(vs[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"Paper: budget demand fluctuates rapidly across modules (cold starts around 200s/600s), defeating static splits.",
	}}, nil
}

func fig12b(h *Harness) (*Output, error) {
	res, err := h.Run("lv", trace.Tweet, "pard", RunOpts{
		Probes: simgpu.ProbeConfig{Decomposition: true, SampleEvery: 4},
	})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "fig12b",
		Title:   "CDF quantiles of ΣQ, ΣW, ΣD (ms)",
		Columns: []string{"quantile", "ΣQ", "ΣW", "ΣD"},
	}
	qs := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99}
	// One reusable Empirical per column: res.SumQ/SumW/SumD are cached
	// result slices (shared across figures and gob-serialized), so they must
	// never be sorted in place — Reset copies, and each column sorts once
	// instead of once per quantile.
	cols := [][]float64{res.SumQ, res.SumW, res.SumD}
	vals := make([][]float64, len(cols))
	var emp stats.Empirical
	for i, samples := range cols {
		emp.Reset(samples)
		vals[i] = make([]float64, len(qs))
		for j, q := range qs {
			vals[i][j] = emp.Quantile(q)
		}
	}
	for j, q := range qs {
		row := []string{fmt.Sprintf("p%.0f", q*100)}
		for i := range cols {
			row = append(row, f1(vals[i][j]*1000))
		}
		t.Rows = append(t.Rows, row)
	}
	_, stdQ := stats.MeanStd(res.SumQ)
	_, stdW := stats.MeanStd(res.SumW)
	_, stdD := stats.MeanStd(res.SumD)
	return &Output{Tables: []Table{t}, Notes: []string{
		fmt.Sprintf("std(ΣQ)=%.1fms std(ΣW)=%.1fms std(ΣD)=%.1fms — paper: ΣW has far greater variance than ΣD and is the estimation challenge.",
			stdQ*1000, stdW*1000, stdD*1000),
	}}, nil
}

func fig12c(h *Harness) (*Output, error) {
	bucket := 10 * time.Second
	if h.cfg.Scale != Full {
		bucket = 5 * time.Second
	}
	var tables []Table
	pols := []string{"pard", "pard-fcfs", "pard-lbf"}
	specs := make([]Spec, len(pols))
	for i, pol := range pols {
		specs[i] = Spec{App: "lv", Kind: trace.Tweet, Policy: pol,
			Opts: RunOpts{Probes: simgpu.ProbeConfig{QueueDelay: true}}}
	}
	results, err := h.Sweep(specs)
	if err != nil {
		return nil, err
	}
	for i, pol := range pols {
		res := results[i]
		t := Table{
			ID:      "fig12c-" + pol,
			Title:   fmt.Sprintf("queueing delay (ms) per module over time, %s", pol),
			Columns: []string{"time", "M1", "M2", "M3", "M4", "M5"},
		}
		var ts []time.Duration
		cols := make([][]float64, len(res.QueueDelay))
		for k, s := range res.QueueDelay {
			t2, vs := s.Bucketed(bucket)
			if len(t2) > len(ts) {
				ts = t2
			}
			cols[k] = vs
		}
		for i := range ts {
			row := []string{secs(ts[i])}
			for _, vs := range cols {
				if i < len(vs) {
					row = append(row, f1(vs[i]))
				} else {
					row = append(row, "-")
				}
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return &Output{Tables: tables, Notes: []string{
		"Paper: FCFS/LBF accumulate queueing during the burst (+34% delay); PARD's HBF phase drains it.",
	}}, nil
}

func fig12d(h *Harness) (*Output, error) {
	res, err := h.Run("lv", trace.Tweet, "pard", RunOpts{Probes: budgetProbes})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "fig12d",
		Title:   "remaining latency budget (ms) of 100 consecutive requests at M2 and M3",
		Columns: []string{"request", "M2", "M3"},
	}
	m2, m3 := res.Remaining[1], res.Remaining[2]
	n := 100
	// Pick a window in the middle of the run.
	off2, off3 := m2.Len()/2, m3.Len()/2
	for i := 0; i < n && off2+i < m2.Len() && off3+i < m3.Len(); i++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i), f1(m2.V[off2+i]), f1(m3.V[off3+i]),
		})
	}
	// Variability summary: the paper's point is that remaining budgets are
	// highly variable and time-independent, defeating arrival-order policies.
	cv2 := stats.CoefficientOfVariation(m2.V)
	cv3 := stats.CoefficientOfVariation(m3.V)
	return &Output{Tables: []Table{t}, Notes: []string{
		fmt.Sprintf("remaining-budget CV: M2 %.3f, M3 %.3f (high variability ⇒ arrival order ≠ budget order)", cv2, cv3),
	}}, nil
}

func fig13(h *Harness) (*Output, error) {
	var tables []Table
	switches := Table{
		ID:      "fig13-switches",
		Title:   "total HBF/LBF transitions over the run",
		Columns: []string{"policy", "switches"},
	}
	pols := []string{"pard", "pard-instant"}
	specs := make([]Spec, len(pols))
	for i, pol := range pols {
		specs[i] = Spec{App: "lv", Kind: trace.Tweet, Policy: pol,
			Opts: RunOpts{Probes: simgpu.ProbeConfig{LoadFactor: true}}}
	}
	results, err := h.Sweep(specs)
	if err != nil {
		return nil, err
	}
	for i, pol := range pols {
		res := results[i]
		t := Table{
			ID:      "fig13-" + pol,
			Title:   fmt.Sprintf("load factor μ and priority mode (0=LBF,1=HBF) over time, %s", pol),
			Columns: []string{"time", "load factor", "mode"},
		}
		for i := 0; i < res.LoadFactor.Len(); i++ {
			t.Rows = append(t.Rows, []string{
				secs(res.LoadFactor.T[i]), f3(res.LoadFactor.V[i]), f1(res.ModeSeries.V[i]),
			})
		}
		tables = append(tables, t)
		switches.Rows = append(switches.Rows, []string{pol, fmt.Sprintf("%d", res.PrioritySwitches)})
	}
	tables = append(tables, switches)
	return &Output{Tables: tables, Notes: []string{
		"Paper: PARD-instant flips between HBF/LBF on every fluctuation around μ=1; delayed transition holds steady.",
	}}, nil
}
