package experiments

import (
	"strconv"
	"strings"
	"testing"

	"pard/internal/sweep"
	"pard/internal/trace"
)

func smokeHarness() *Harness { return NewHarness(Config{Scale: Smoke, Seed: 1}) }

func TestRegistryCoversPaperArtifacts(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "fig2c", "fig2d", "fig6",
		"fig8", "fig9", "fig10", "fig11",
		"fig12a", "fig12b", "fig12c", "fig12d", "fig13",
		"fig14a", "fig14b", "fig14c", "fig14d",
		"fig15a", "fig15b", "dag-dynamic",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("missing experiment %s (have %v)", id, ids)
		}
	}
	if _, err := Get("fig8"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("bogus"); err == nil {
		t.Fatal("unknown experiment found")
	}
}

// TestAllExperimentsProduceOutput runs every registered experiment at smoke
// scale and checks the artifacts are structurally sound. This doubles as the
// integration test of the whole stack (trace → simgpu → policy → metrics).
func TestAllExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke experiment sweep skipped in -short")
	}
	h := smokeHarness()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(h)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(out.Tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tab := range out.Tables {
				if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
					t.Fatalf("%s: table %s empty", e.ID, tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("%s: table %s row width %d != %d cols",
							e.ID, tab.ID, len(row), len(tab.Columns))
					}
				}
				if !strings.Contains(tab.Render(), tab.ID) {
					t.Fatalf("%s: render missing ID", e.ID)
				}
				if !strings.Contains(tab.CSV(), tab.Columns[0]) {
					t.Fatalf("%s: CSV missing header", e.ID)
				}
			}
		})
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad pct %q: %v", s, err)
	}
	return v
}

// TestFig8Shape checks the headline claim on the lv-tweet row: PARD's drop
// and invalid rates are the lowest of the four systems.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	h := smokeHarness()
	out, err := fig8(h)
	if err != nil {
		t.Fatal(err)
	}
	drop := out.Tables[0]
	// Columns: workload, pard, nexus, clipper++, naive.
	for _, row := range drop.Rows {
		if row[0] != "lv-tweet" {
			continue
		}
		pard := parsePct(t, row[1])
		nexus := parsePct(t, row[2])
		naive := parsePct(t, row[4])
		if pard > nexus {
			t.Fatalf("pard drop %.2f%% > nexus %.2f%% on lv-tweet", pard, nexus)
		}
		if pard > naive {
			t.Fatalf("pard drop %.2f%% > naive %.2f%% on lv-tweet", pard, naive)
		}
		return
	}
	t.Fatal("lv-tweet row missing")
}

// TestFig13Shape checks PARD-instant switches priorities more than PARD.
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	h := smokeHarness()
	out, err := fig13(h)
	if err != nil {
		t.Fatal(err)
	}
	var switches Table
	for _, tab := range out.Tables {
		if tab.ID == "fig13-switches" {
			switches = tab
		}
	}
	if len(switches.Rows) != 2 {
		t.Fatalf("switch table rows: %v", switches.Rows)
	}
	pard, _ := strconv.Atoi(switches.Rows[0][1])
	instant, _ := strconv.Atoi(switches.Rows[1][1])
	if instant < pard {
		t.Fatalf("pard-instant switched %d times, pard %d — expected instant >= pard", instant, pard)
	}
}

// renderAll flattens an experiment output for byte comparison.
func renderAll(out *Output) string {
	var b strings.Builder
	for _, tab := range out.Tables {
		b.WriteString(tab.Render())
		b.WriteString(tab.CSV())
	}
	for _, n := range out.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelHarnessMatchesSequential checks the harness-level determinism
// contract: a parallel harness renders byte-identical artifacts to a
// sequential one at the same seed.
func TestParallelHarnessMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	for _, id := range []string{"fig2c", "fig13", "ext-failure"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		seqOut, err := e.Run(NewHarness(Config{Scale: Smoke, Seed: 3, Parallel: 1}))
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		parOut, err := e.Run(NewHarness(Config{Scale: Smoke, Seed: 3, Parallel: 8}))
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		seq, par := renderAll(seqOut), renderAll(parOut)
		if seq != par {
			t.Fatalf("%s: parallel output diverged from sequential\n--- sequential\n%s\n--- parallel\n%s", id, seq, par)
		}
	}
}

func TestProgressReported(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	var done int
	h := NewHarness(Config{Scale: Smoke, Seed: 1, Parallel: 4,
		OnProgress: func(p sweep.Progress) { done = p.Done }})
	if _, err := fig13(h); err != nil {
		t.Fatal(err)
	}
	// fig13 executes 2 simulation runs plus 1 trace synthesis (lv-tweet).
	if done != 3 {
		t.Fatalf("progress reported %d done artifacts, want 3", done)
	}
	// Re-running the experiment is all cache hits: no further callbacks.
	if _, err := fig13(h); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("cache hits reported as progress: %d done artifacts, want 3", done)
	}
}

func TestTraceCaching(t *testing.T) {
	h := smokeHarness()
	a := h.Trace(trace.Tweet)
	b := h.Trace(trace.Tweet)
	if a != b {
		t.Fatal("trace not cached")
	}
}

func TestRunCaching(t *testing.T) {
	h := smokeHarness()
	a, err := h.Run("tm", trace.Wiki, "pard", RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run("tm", trace.Wiki, "pard", RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("run not cached")
	}
	c, err := h.Run("tm", trace.Wiki, "nexus", RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different policy hit the same cache entry")
	}
}

func TestUnknownApp(t *testing.T) {
	h := smokeHarness()
	if _, err := h.Run("bogus", trace.Wiki, "pard", RunOpts{}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestTableRenderAndCSVEscaping(t *testing.T) {
	tab := Table{
		ID:      "x",
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1,2", `say "hi"`}},
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"1,2"`) || !strings.Contains(csv, `"say ""hi"""`) {
		t.Fatalf("CSV escaping broken: %s", csv)
	}
	if !strings.Contains(tab.Render(), "a") {
		t.Fatal("render missing column")
	}
}
