package experiments

import (
	"fmt"

	"pard/internal/rag"
	"pard/internal/stats"
	"pard/internal/sweep"
	"pard/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig15a",
		Title: "RAG workflow: normalized goodput and drop rate per policy",
		Run:   fig15a,
	})
	register(Experiment{
		ID:    "fig15b",
		Title: "RAG workflow: module latency distributions",
		Run:   fig15b,
	})
	register(Experiment{
		ID:    "dag-dynamic",
		Title: "DAG with request-specific dynamic paths (§5.2): drop-rate increase",
		Run:   dagDynamic,
	})
}

func ragQueries(h *Harness) int {
	switch h.cfg.Scale {
	case Smoke:
		return 2000
	case Full:
		return 10000
	default:
		return 5000
	}
}

// ragJob wraps one RAG workflow run as a sweep job: the cache key encodes
// policy and scale, and the run's RNG stream is the key-derived seed.
func ragJob(h *Harness, p rag.PolicyKind) sweep.Job[*rag.Result] {
	queries := ragQueries(h)
	return sweep.Job[*rag.Result]{
		Key: fmt.Sprintf("rag|%s|q=%d", p, queries),
		Run: func(seed int64) (*rag.Result, error) {
			cfg := rag.DefaultConfig(p)
			cfg.Queries = queries
			cfg.Seed = seed
			return rag.Run(cfg)
		},
	}
}

func fig15a(h *Harness) (*Output, error) {
	t := Table{
		ID:      "fig15a",
		Title:   "RAG TTFT goodput per dropping policy (SLO 5s)",
		Columns: []string{"policy", "normalized goodput", "drop rate", "drops: rewrite/retrieve/search/generate"},
	}
	jobs := make([]sweep.Job[*rag.Result], len(rag.Policies()))
	for i, p := range rag.Policies() {
		jobs[i] = ragJob(h, p)
	}
	results, err := sweep.All(h.Engine(), jobs)
	if err != nil {
		return nil, err
	}
	for i, p := range rag.Policies() {
		res := results[i]
		t.Rows = append(t.Rows, []string{
			string(p), f3(res.NormalizedGoodput), pct(res.DropRate),
			fmt.Sprintf("%d/%d/%d/%d", res.DropsPerStage[0], res.DropsPerStage[1],
				res.DropsPerStage[2], res.DropsPerStage[3]),
		})
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"Paper: reactive drops 39%, proactive 17%, predict (oracle output lengths) 11%.",
	}}, nil
}

func fig15b(h *Harness) (*Output, error) {
	results, err := sweep.All(h.Engine(), []sweep.Job[*rag.Result]{ragJob(h, rag.Proactive)})
	if err != nil {
		return nil, err
	}
	res := results[0]
	t := Table{
		ID:      "fig15b",
		Title:   "RAG per-module latency percentiles (ms)",
		Columns: []string{"percentile", "rewrite", "retrieve", "search", "generate"},
	}
	// Reusable Empirical per module column: the cached sample slices stay
	// untouched (Reset copies) and each column sorts once for all quantiles.
	qs := []float64{0.1, 0.5, 0.9, 0.99}
	vals := make([][]float64, len(res.Latencies))
	var emp stats.Empirical
	for i, s := range res.Latencies {
		emp.Reset(s.Samples)
		vals[i] = make([]float64, len(qs))
		for j, q := range qs {
			vals[i][j] = emp.Quantile(q)
		}
	}
	for j, q := range qs {
		row := []string{fmt.Sprintf("p%.0f", q*100)}
		for i := range res.Latencies {
			row = append(row, f1(vals[i][j]*1000))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"Paper: rewrite latency varies with output length; search is long-tailed (network); retrieve is fast and stable.",
	}}, nil
}

// dagDynamic reproduces the §5.2 experiment: da with probabilistic branch
// selection raises PARD's drop rate by a small factor due to path
// mis-estimation.
func dagDynamic(h *Harness) (*Output, error) {
	t := Table{
		ID:      "dag-dynamic",
		Title:   "PARD drop rate: static DA vs dynamic-path DA",
		Columns: []string{"trace", "da (static)", "da-dyn (dynamic)", "increase"},
	}
	kinds := []trace.Kind{trace.Wiki, trace.Tweet, trace.Azure}
	var specs []Spec
	for _, kind := range kinds {
		for _, app := range []string{"da", "da-dyn"} {
			specs = append(specs, Spec{App: app, Kind: kind, Policy: "pard"})
		}
	}
	results, err := h.Sweep(specs)
	if err != nil {
		return nil, err
	}
	for i, kind := range kinds {
		static, dyn := results[2*i], results[2*i+1]
		inc := "-"
		if static.Summary.DropRate > 0 {
			inc = fmt.Sprintf("%+.2fx", dyn.Summary.DropRate/static.Summary.DropRate-1)
		}
		t.Rows = append(t.Rows, []string{
			string(kind), pct(static.Summary.DropRate), pct(dyn.Summary.DropRate), inc,
		})
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"Paper: dynamic paths raise PARD's drop rate by 0.05x/0.21x/0.10x across the three traces.",
	}}, nil
}
