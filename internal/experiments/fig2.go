package experiments

import (
	"fmt"
	"time"

	"pard/internal/policy"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig2a",
		Title: "Minimum normalized goodput across time window sizes (lv-tweet)",
		Run:   fig2a,
	})
	register(Experiment{
		ID:    "fig2b",
		Title: "Drop rate at the minimum-goodput window (lv-tweet)",
		Run:   fig2b,
	})
	register(Experiment{
		ID:    "fig2c",
		Title: "Percent of dropped requests at each module under the reactive policy",
		Run:   fig2c,
	})
	register(Experiment{
		ID:    "fig2d",
		Title: "Transient drop rate of the reactive dropping policy (lv-tweet, Clipper++)",
		Run:   fig2d,
	})
}

// fig2Windows scales the paper's window sizes down for short traces.
func fig2Windows(h *Harness, paper []time.Duration) []time.Duration {
	if h.cfg.Scale == Full {
		return paper
	}
	out := make([]time.Duration, len(paper))
	for i, w := range paper {
		out[i] = w / 4
		if out[i] < 2*time.Second {
			out[i] = 2 * time.Second
		}
	}
	return out
}

// lvTweetComparison sweeps the four headline policies on lv-tweet (the
// windows in Figs. 2a/2b are applied post-hoc to the same four runs).
func lvTweetComparison(h *Harness) ([]*simgpu.Result, error) {
	specs := make([]Spec, 0, len(policy.Comparison()))
	for _, pol := range policy.Comparison() {
		specs = append(specs, Spec{App: "lv", Kind: trace.Tweet, Policy: pol})
	}
	return h.Sweep(specs)
}

func fig2a(h *Harness) (*Output, error) {
	windows := fig2Windows(h, []time.Duration{22 * time.Second, 24 * time.Second, 26 * time.Second})
	t := Table{
		ID:      "fig2a",
		Title:   "min normalized goodput vs window size, lv-tweet",
		Columns: append([]string{"window"}, policy.Comparison()...),
	}
	results, err := lvTweetComparison(h)
	if err != nil {
		return nil, err
	}
	for _, w := range windows {
		row := []string{secs(w)}
		for _, res := range results {
			row = append(row, f3(res.Collector.MinNormalizedGoodput(w)))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Output{Tables: []Table{t}}, nil
}

func fig2b(h *Harness) (*Output, error) {
	windows := fig2Windows(h, []time.Duration{5 * time.Second, 25 * time.Second, 50 * time.Second})
	t := Table{
		ID:      "fig2b",
		Title:   "drop rate at minimum-goodput window vs window size, lv-tweet",
		Columns: append([]string{"window"}, policy.Comparison()...),
	}
	results, err := lvTweetComparison(h)
	if err != nil {
		return nil, err
	}
	for _, w := range windows {
		row := []string{secs(w)}
		for _, res := range results {
			row = append(row, pct(res.Collector.DropRateAtMinGoodput(w)))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Output{Tables: []Table{t}}, nil
}

func fig2c(h *Harness) (*Output, error) {
	workloads := []struct {
		app  string
		kind trace.Kind
	}{
		{"lv", trace.Tweet}, {"lv", trace.Wiki},
		{"tm", trace.Tweet}, {"tm", trace.Wiki},
		{"gm", trace.Tweet}, {"gm", trace.Wiki},
	}
	cols := []string{"module"}
	for _, w := range workloads {
		cols = append(cols, fmt.Sprintf("%s-%s", w.app, w.kind))
	}
	t := Table{ID: "fig2c", Title: "percent of drops at each module, reactive (Nexus) policy", Columns: cols}
	specs := make([]Spec, len(workloads))
	for i, w := range workloads {
		specs[i] = Spec{App: w.app, Kind: w.kind, Policy: "nexus"}
	}
	results, err := h.Sweep(specs)
	if err != nil {
		return nil, err
	}
	perWorkload := make([][]float64, len(workloads))
	maxModules := 0
	for i, res := range results {
		perWorkload[i] = res.Summary.PerModuleDropPct
		if len(perWorkload[i]) > maxModules {
			maxModules = len(perWorkload[i])
		}
	}
	for m := 0; m < maxModules; m++ {
		row := []string{fmt.Sprintf("M%d", m+1)}
		for _, p := range perWorkload {
			if m < len(p) {
				row = append(row, f1(p[m]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return &Output{Tables: []Table{t}, Notes: []string{
		"Paper shape: 57.1%-97.2% of reactive drops land in the latter half of the pipeline.",
	}}, nil
}

func fig2d(h *Harness) (*Output, error) {
	res, err := h.Run("lv", trace.Tweet, "clipper++", RunOpts{})
	if err != nil {
		return nil, err
	}
	bucket := 10 * time.Second
	if h.cfg.Scale != Full {
		bucket = 5 * time.Second
	}
	ts, vs := res.Collector.DropRateSeries(bucket)
	t := Table{ID: "fig2d", Title: "transient drop rate over time, Clipper++ on lv-tweet",
		Columns: []string{"time", "drop rate"}}
	for i := range ts {
		t.Rows = append(t.Rows, []string{secs(ts[i]), pct(vs[i])})
	}
	return &Output{Tables: []Table{t}}, nil
}
