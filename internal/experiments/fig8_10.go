package experiments

import (
	"fmt"
	"time"

	"pard/internal/policy"
	"pard/internal/trace"
)

// the 12 workloads of Figs. 8-10: 4 apps × 3 traces.
var apps12 = []string{"lv", "tm", "gm", "da"}
var traces12 = []trace.Kind{trace.Wiki, trace.Tweet, trace.Azure}

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Average drop rate and invalid rate across 12 workloads",
		Run:   fig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Maximum average drop rate across time window sizes, 12 workloads",
		Run:   fig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Normalized real-time goodput timelines across 12 workloads",
		Run:   fig10,
	})
}

// grid12 builds the 12-workload × comparison-policy grid shared by
// Figs. 8-10 (submitted once; the sweep cache dedupes across figures).
func grid12() []Spec {
	pols := policy.Comparison()
	specs := make([]Spec, 0, len(traces12)*len(apps12)*len(pols))
	for _, kind := range traces12 {
		for _, app := range apps12 {
			for _, pol := range pols {
				specs = append(specs, Spec{App: app, Kind: kind, Policy: pol})
			}
		}
	}
	return specs
}

func fig8(h *Harness) (*Output, error) {
	drop := Table{
		ID:      "fig8a",
		Title:   "average drop rate",
		Columns: append([]string{"workload"}, policy.Comparison()...),
	}
	invalid := Table{
		ID:      "fig8b",
		Title:   "average invalid rate (wasted GPU time fraction)",
		Columns: append([]string{"workload"}, policy.Comparison()...),
	}
	results, err := h.Sweep(grid12())
	if err != nil {
		return nil, err
	}
	i := 0
	for _, kind := range traces12 {
		for _, app := range apps12 {
			dRow := []string{fmt.Sprintf("%s-%s", app, kind)}
			iRow := []string{fmt.Sprintf("%s-%s", app, kind)}
			for range policy.Comparison() {
				res := results[i]
				i++
				dRow = append(dRow, pct(res.Summary.DropRate))
				iRow = append(iRow, pct(res.Summary.InvalidRate))
			}
			drop.Rows = append(drop.Rows, dRow)
			invalid.Rows = append(invalid.Rows, iRow)
		}
	}
	return &Output{
		Tables: []Table{drop, invalid},
		Notes: []string{
			"Paper: PARD drops 0.12%-3.6% on average; 1.6-16.7x less than Nexus/Clipper++, with 1.5-61.9x less wasted compute.",
		},
	}, nil
}

func fig9(h *Harness) (*Output, error) {
	windows := fig2Windows(h, []time.Duration{22 * time.Second, 24 * time.Second, 26 * time.Second, 28 * time.Second})
	results, err := h.Sweep(grid12())
	if err != nil {
		return nil, err
	}
	var tables []Table
	i := 0
	for _, kind := range traces12 {
		for _, app := range apps12 {
			t := Table{
				ID:      fmt.Sprintf("fig9-%s-%s", app, kind),
				Title:   fmt.Sprintf("max drop rate vs window size, %s-%s", app, kind),
				Columns: append([]string{"window"}, policy.Comparison()...),
			}
			perPol := results[i : i+len(policy.Comparison())]
			i += len(policy.Comparison())
			for _, w := range windows {
				row := []string{secs(w)}
				for _, res := range perPol {
					row = append(row, pct(res.Collector.MaxDropRate(w)))
				}
				t.Rows = append(t.Rows, row)
			}
			tables = append(tables, t)
		}
	}
	return &Output{Tables: tables, Notes: []string{
		"Paper: reactive baselines hit transient drop rates up to 90-96%; PARD cuts them by 41-98% across timescales.",
	}}, nil
}

func fig10(h *Harness) (*Output, error) {
	bucket := 20 * time.Second
	if h.cfg.Scale != Full {
		bucket = 10 * time.Second
	}
	var tables []Table

	// Left panel: the traces themselves. One per-second count scratch is
	// recycled across the kinds (st.PerSecond aliases it, so it is only read
	// within the iteration).
	var secScratch []float64
	for _, kind := range traces12 {
		tr := h.Trace(kind)
		st := tr.AnalyzeInto(secScratch)
		secScratch = st.PerSecond
		t := Table{
			ID:      fmt.Sprintf("fig10-trace-%s", kind),
			Title:   fmt.Sprintf("request rate over time, %s trace (CV %.2f, burst CV %.2f)", kind, st.CV, st.BurstCV),
			Columns: []string{"time", "req/s"},
		}
		step := int(bucket.Seconds())
		for i := 0; i+step <= len(st.PerSecond); i += step {
			var sum float64
			for j := i; j < i+step; j++ {
				sum += st.PerSecond[j]
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%ds", i), f1(sum / float64(step))})
		}
		tables = append(tables, t)
	}

	// Right panels: normalized goodput timelines.
	results, err := h.Sweep(grid12())
	if err != nil {
		return nil, err
	}
	i := 0
	for _, kind := range traces12 {
		for _, app := range apps12 {
			t := Table{
				ID:      fmt.Sprintf("fig10-%s-%s", app, kind),
				Title:   fmt.Sprintf("normalized goodput over time, %s-%s", app, kind),
				Columns: append([]string{"time"}, policy.Comparison()...),
			}
			series := make([][]float64, 0, len(policy.Comparison()))
			var ts []time.Duration
			for range policy.Comparison() {
				res := results[i]
				i++
				t2, vs := res.Collector.GoodputSeries(bucket)
				ts = t2
				series = append(series, vs)
			}
			for i := range ts {
				row := []string{secs(ts[i])}
				for _, vs := range series {
					if i < len(vs) {
						row = append(row, f3(vs[i]))
					} else {
						row = append(row, "-")
					}
				}
				t.Rows = append(t.Rows, row)
			}
			tables = append(tables, t)
		}
	}
	return &Output{Tables: tables, Notes: []string{
		"Paper: PARD holds the highest goodput through the burst windows; Naive is worst everywhere (16%-176% goodput gap).",
	}}, nil
}
