package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30*time.Millisecond, "c", func(*Engine) { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, "a", func(*Engine) { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, "b", func(*Engine) { got = append(got, 2) })
	end := e.Run(0)
	if end != 30*time.Millisecond {
		t.Fatalf("end time = %v, want 30ms", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, "tie", func(*Engine) { got = append(got, i) })
	}
	e.Run(0)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending schedule order", got)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := New(1)
	e.After(10*time.Millisecond, "outer", func(en *Engine) {
		if en.Now() != 10*time.Millisecond {
			t.Errorf("Now = %v, want 10ms", en.Now())
		}
		en.After(5*time.Millisecond, "inner", func(en2 *Engine) {
			if en2.Now() != 15*time.Millisecond {
				t.Errorf("Now = %v, want 15ms", en2.Now())
			}
		})
	})
	e.Run(0)
	if e.Fired() != 2 {
		t.Fatalf("fired = %d, want 2", e.Fired())
	}
}

func TestScheduleInPastClampsToNow(t *testing.T) {
	e := New(1)
	var at time.Duration = -1
	e.Schedule(20*time.Millisecond, "first", func(en *Engine) {
		en.Schedule(5*time.Millisecond, "past", func(en2 *Engine) { at = en2.Now() })
	})
	e.Run(0)
	if at != 20*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamped to 20ms", at)
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.Schedule(10*time.Millisecond, "x", func(*Engine) { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New(1)
	var got []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.Schedule(time.Duration(i)*time.Millisecond, "n", func(*Engine) { got = append(got, i) }))
	}
	for i := 0; i < 20; i += 2 {
		e.Cancel(evs[i])
	}
	e.Run(0)
	if len(got) != 10 {
		t.Fatalf("fired %d events, want 10", len(got))
	}
	for _, v := range got {
		if v%2 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestHorizonStopsEarly(t *testing.T) {
	e := New(1)
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, "n", func(*Engine) { fired++ })
	}
	end := e.Run(5 * time.Second)
	if end != 5*time.Second {
		t.Fatalf("end = %v, want 5s", end)
	}
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
}

func TestHorizonAdvancesIdleClock(t *testing.T) {
	e := New(1)
	end := e.Run(3 * time.Second)
	if end != 3*time.Second {
		t.Fatalf("end = %v, want horizon 3s", end)
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, "n", func(en *Engine) {
			fired++
			if fired == 3 {
				en.Stop()
			}
		})
	}
	e.Run(0)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3 after Stop", fired)
	}
}

func TestStep(t *testing.T) {
	e := New(1)
	count := 0
	e.Schedule(time.Millisecond, "a", func(*Engine) { count++ })
	e.Schedule(2*time.Millisecond, "b", func(*Engine) { count++ })
	if !e.Step() || count != 1 {
		t.Fatalf("after first step count = %d", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("after second step count = %d", count)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestTicker(t *testing.T) {
	e := New(1)
	var ticks []time.Duration
	e.Ticker(time.Second, "tick", func(en *Engine) bool {
		ticks = append(ticks, en.Now())
		return len(ticks) < 4
	})
	e.Run(0)
	if len(ticks) != 4 {
		t.Fatalf("ticks = %d, want 4", len(ticks))
	}
	for i, at := range ticks {
		want := time.Duration(i+1) * time.Second
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerPanicsOnNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Ticker(0, "bad", func(*Engine) bool { return false })
}

func TestSchedulePanicsOnNilFn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Schedule(0, "bad", nil)
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := New(seed)
		var fires []time.Duration
		var spawn func(en *Engine)
		n := 0
		spawn = func(en *Engine) {
			fires = append(fires, en.Now())
			n++
			if n < 200 {
				d := time.Duration(en.Rand().Intn(1000)) * time.Microsecond
				en.After(d, "spawn", spawn)
			}
		}
		e.After(0, "seed", spawn)
		e.Run(0)
		return fires
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always fire in nondecreasing timestamp order, regardless
// of schedule order.
func TestPropertyFiringOrderSorted(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := New(7)
		var fired []time.Duration
		for _, o := range offsets {
			at := time.Duration(o) * time.Microsecond
			e.Schedule(at, "p", func(en *Engine) { fired = append(fired, en.Now()) })
		}
		e.Run(0)
		if len(fired) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with random cancellations, exactly the non-cancelled events fire.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		e := New(3)
		rng := rand.New(rand.NewSource(seed))
		firedSet := map[int]bool{}
		var evs []*Event
		for i := 0; i < int(n); i++ {
			i := i
			at := time.Duration(rng.Intn(100)) * time.Millisecond
			evs = append(evs, e.Schedule(at, "p", func(*Engine) { firedSet[i] = true }))
		}
		cancelled := map[int]bool{}
		for i := range evs {
			if rng.Intn(2) == 0 {
				e.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		e.Run(0)
		for i := range evs {
			if cancelled[i] == firedSet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWallClockMonotonic(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New(1)
		n := 0
		var next func(*Engine)
		next = func(en *Engine) {
			n++
			if n < 1000 {
				en.After(time.Microsecond, "b", next)
			}
		}
		e.After(0, "b", next)
		e.Run(0)
	}
}
