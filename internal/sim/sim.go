// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is a classic event-heap design: callers schedule callbacks at
// virtual timestamps, and Run dispatches them in timestamp order, advancing
// a virtual clock. Ties are broken by schedule order so runs with the same
// seed are bit-for-bit reproducible.
//
// All durations and timestamps are time.Duration offsets from the start of
// the simulation (t = 0). Using integer nanoseconds avoids the cross-platform
// floating-point drift that would break determinism tests.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. Fire is invoked with the engine so the
// callback can schedule follow-up events.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func(*Engine)
	name string
	// index in the heap, or -1 when cancelled/popped.
	index int
}

// At returns the virtual timestamp this event fires at.
func (e *Event) At() time.Duration { return e.at }

// Name returns the optional debug name attached at schedule time.
func (e *Event) Name() string { return e.name }

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.fn == nil }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator instance. It is not safe for
// concurrent use; the simulation is single-threaded by design.
type Engine struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	fired   uint64
	stopped bool
	horizon time.Duration
}

// New returns an engine whose random streams derive from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule registers fn to run at absolute virtual time at. Events scheduled
// in the past (before Now) fire immediately at the current time, preserving
// order. The returned Event may be passed to Cancel.
func (e *Engine) Schedule(at time.Duration, name string, fn func(*Engine)) *Event {
	if fn == nil {
		panic("sim: Schedule called with nil callback")
	}
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, name: name}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d time.Duration, name string, fn func(*Engine)) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, name, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.fn == nil || ev.index < 0 {
		if ev != nil {
			ev.fn = nil
		}
		return
	}
	heap.Remove(&e.events, ev.index)
	ev.fn = nil
	ev.index = -1
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in timestamp order until the queue drains, the
// horizon (if positive) is reached, or Stop is called. It returns the final
// virtual time.
func (e *Engine) Run(horizon time.Duration) time.Duration {
	e.horizon = horizon
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*Event)
		if ev.fn == nil {
			continue
		}
		if horizon > 0 && ev.at > horizon {
			e.now = horizon
			return e.now
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn(e)
	}
	if horizon > 0 && e.now < horizon {
		e.now = horizon
	}
	return e.now
}

// Step dispatches exactly one event, returning false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.fn == nil {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn(e)
		return true
	}
	return false
}

// Pending returns the number of events still queued (including cancelled
// placeholders not yet drained).
func (e *Engine) Pending() int { return len(e.events) }

// Ticker repeatedly schedules fn every period until the predicate returns
// false or the engine stops. The first tick fires at Now()+period.
func (e *Engine) Ticker(period time.Duration, name string, fn func(*Engine) bool) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Ticker period must be positive, got %v", period))
	}
	var tick func(*Engine)
	tick = func(en *Engine) {
		if !fn(en) {
			return
		}
		en.After(period, name, tick)
	}
	e.After(period, name, tick)
}

// Clock abstracts virtual vs wall time so scheduler logic can run under the
// simulator and the live server unchanged.
type Clock interface {
	// Now returns the elapsed time since the start of the run.
	Now() time.Duration
}

// WallClock implements Clock over the real monotonic clock.
type WallClock struct{ start time.Time }

// NewWallClock returns a Clock anchored at the current instant.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns time elapsed since the clock was created.
func (w *WallClock) Now() time.Duration { return time.Since(w.start) }
