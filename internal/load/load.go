// Package load is a wall-clock HTTP load generator for the live server: it
// replays internal/trace arrival processes (or runs closed-loop workers with
// think time) against POST /infer, classifies every reply with the server's
// own outcome taxonomy, and reports goodput, drop/late rates and HDR-style
// latency quantiles. Because it records the offsets it actually sent at, the
// same load can be replayed through the discrete-event simulator for a
// matched-load sim-vs-live comparison (CompareSim).
package load

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pard/internal/pipeline"
	"pard/internal/profile"
	"pard/internal/server"
	"pard/internal/simgpu"
	"pard/internal/trace"
)

// Generation modes.
const (
	// ModeOpen replays a trace's arrival schedule regardless of how fast the
	// server answers (arrivals don't wait for completions — the paper's
	// workload model).
	ModeOpen = "open"
	// ModeClosed runs Conns workers that each wait for the previous reply
	// plus a think time before sending the next request.
	ModeClosed = "closed"
)

// ThinkTime is the closed-loop pause between a reply and the next request:
// uniform in [Min, Max] when Max > Min, else exactly Min.
type ThinkTime struct {
	Min time.Duration
	Max time.Duration
}

func (t ThinkTime) sample(rng *rand.Rand) time.Duration {
	if t.Max > t.Min {
		return t.Min + time.Duration(rng.Int63n(int64(t.Max-t.Min)+1))
	}
	return t.Min
}

// Config describes one load-generation run.
type Config struct {
	// Target is the server base URL (e.g. "http://127.0.0.1:8080").
	Target string
	// Mode is ModeOpen (default when Trace is set) or ModeClosed.
	Mode string
	// Trace supplies the open-loop arrival schedule.
	Trace *trace.Trace
	// Conns is the closed-loop worker count (default 4).
	Conns int
	// Requests caps the closed-loop total request count (0 = no cap).
	Requests int
	// Duration caps the closed-loop wall-clock run time (0 = no cap; one of
	// Requests/Duration must be set).
	Duration time.Duration
	// Think is the closed-loop think time.
	Think ThinkTime
	// Timeout bounds each HTTP request (default 30 s).
	Timeout time.Duration
	// MaxInFlight sheds open-loop arrivals when this many requests are
	// outstanding (0 = unlimited).
	MaxInFlight int
	// Seed drives the think-time RNG streams (one per worker).
	Seed int64
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Stream, when set, receives one JSON line per request as it completes.
	Stream io.Writer
}

func (c Config) withDefaults() (Config, error) {
	if c.Target == "" {
		return c, fmt.Errorf("load: config needs a target URL")
	}
	if c.Mode == "" {
		if c.Trace != nil {
			c.Mode = ModeOpen
		} else {
			c.Mode = ModeClosed
		}
	}
	switch c.Mode {
	case ModeOpen:
		if c.Trace == nil || c.Trace.Len() == 0 {
			return c, fmt.Errorf("load: open-loop mode needs a non-empty trace")
		}
	case ModeClosed:
		if c.Requests <= 0 && c.Duration <= 0 {
			return c, fmt.Errorf("load: closed-loop mode needs Requests or Duration")
		}
		if c.Conns <= 0 {
			c.Conns = 4
		}
	default:
		return c, fmt.Errorf("load: unknown mode %q (want %q or %q)", c.Mode, ModeOpen, ModeClosed)
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Think.Min < 0 || c.Think.Max < c.Think.Min && c.Think.Max != 0 {
		return c, fmt.Errorf("load: think time [%v, %v] is not a range", c.Think.Min, c.Think.Max)
	}
	return c, nil
}

// Quantiles are client-observed latency quantiles in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// SimComparison is the matched-load simulator replay of a live run: the same
// arrival offsets the generator actually sent, run through the
// discrete-event core with pinned workers and no jitter.
type SimComparison struct {
	Goodput float64 `json:"goodput"`
	Good    int     `json:"good"`
	Late    int     `json:"late"`
	Dropped int     `json:"dropped"`
	Total   int     `json:"total"`
	// GoodputDeltaPct is 100·(live−sim)/sim — how far the wall-clock runtime
	// lands from its discrete-event twin under identical load.
	GoodputDeltaPct float64 `json:"goodput_delta_pct"`
}

// Report is the aggregate outcome of one run.
type Report struct {
	Mode       string  `json:"mode"`
	Target     string  `json:"target"`
	ElapsedSec float64 `json:"elapsed_sec"`

	// Requests counts attempted sends; Answered those with a well-formed
	// server reply. Good/Late/Dropped split Answered by server outcome.
	Requests uint64 `json:"requests"`
	Answered uint64 `json:"answered"`
	Good     uint64 `json:"good"`
	Late     uint64 `json:"late"`
	Dropped  uint64 `json:"dropped"`
	// Rejected counts 429 replies from the server's admission gate: refused
	// at the door, not answered, tracked apart from generic bad statuses.
	Rejected uint64 `json:"rejected"`
	// Shed counts open-loop arrivals not sent because MaxInFlight was
	// reached; LateDispatch those sent more than 2 ms behind schedule (the
	// generator itself falling behind, not the server).
	Shed         uint64 `json:"shed"`
	LateDispatch uint64 `json:"late_dispatch"`
	Timeouts     uint64 `json:"timeouts"`
	Errors       uint64 `json:"errors"`
	BadStatus    uint64 `json:"bad_status"`

	Goodput     float64 `json:"goodput"`      // good replies per second
	OfferedRate float64 `json:"offered_rate"` // attempted sends per second
	// SLOAttainment is Good/Answered: the server deems a reply "good" only
	// when it beat the pipeline SLO.
	SLOAttainment float64 `json:"slo_attainment"`
	// RejectRate is Rejected/Requests: the fraction of attempted sends the
	// admission gate turned away.
	RejectRate float64 `json:"reject_rate"`

	// StreamErrors counts JSONL stream write failures (StreamError carries
	// the first one); pre-fix these were silently swallowed.
	StreamErrors uint64 `json:"stream_errors,omitempty"`
	StreamError  string `json:"stream_error,omitempty"`

	Latency Quantiles `json:"latency_ms"`

	Sim *SimComparison `json:"sim,omitempty"`

	sendOffsets []time.Duration
}

// Offsets returns the actual send offsets (sorted), the trace a CompareSim
// replay runs.
func (r *Report) Offsets() []time.Duration { return r.sendOffsets }

// streamRecord is one per-request line written to Config.Stream.
type streamRecord struct {
	OffsetMS  float64 `json:"offset_ms"`
	LatencyMS float64 `json:"latency_ms"`
	Outcome   string  `json:"outcome"`
	Error     string  `json:"error,omitempty"`
}

// lateDispatchSlack is how far behind schedule an open-loop send may run
// before it counts as a late dispatch.
const lateDispatchSlack = 2 * time.Millisecond

type run struct {
	cfg    Config
	client *http.Client
	start  time.Time

	requests, answered        atomic.Uint64
	good, late, dropped       atomic.Uint64
	rejected                  atomic.Uint64
	shed, lateDispatch        atomic.Uint64
	timeouts, errs, badStatus atomic.Uint64
	inFlight                  atomic.Int64

	hist Hist

	mu      sync.Mutex // guards sendOffsets and the stream encoder state
	offsets []time.Duration
	// enc is the one JSONL encoder for the whole run (built once in Run, not
	// per record); streamErr/streamErrs surface write failures instead of
	// swallowing them.
	enc        *json.Encoder
	streamErr  error
	streamErrs uint64
}

// Run executes one load-generation run and blocks until every request has
// resolved (or failed).
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &run{cfg: cfg, client: cfg.Client}
	if r.client == nil {
		r.client = &http.Client{Timeout: cfg.Timeout}
	}
	if cfg.Stream != nil {
		r.enc = json.NewEncoder(cfg.Stream)
	}
	r.start = time.Now()
	switch cfg.Mode {
	case ModeOpen:
		r.runOpen()
	default:
		r.runClosed()
	}
	return r.report(time.Since(r.start)), nil
}

// runOpen replays the trace schedule: each arrival is dispatched at its
// offset whether or not earlier requests have finished. When MaxInFlight is
// hit the arrival is shed (counted, not sent) — the open-loop analogue of a
// full accept queue.
func (r *run) runOpen() {
	var wg sync.WaitGroup
	for _, at := range r.cfg.Trace.Arrivals {
		if sleep := at - time.Since(r.start); sleep > 0 {
			time.Sleep(sleep)
		}
		if time.Since(r.start)-at > lateDispatchSlack {
			r.lateDispatch.Add(1)
		}
		if r.cfg.MaxInFlight > 0 && r.inFlight.Load() >= int64(r.cfg.MaxInFlight) {
			r.shed.Add(1)
			continue
		}
		r.inFlight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer r.inFlight.Add(-1)
			r.doOne()
		}()
	}
	wg.Wait()
}

// runClosed runs Conns synchronous workers, each pausing for a think time
// between requests (pgcheetah-style). The run ends when the request cap or
// the duration cap is reached, whichever comes first.
func (r *run) runClosed() {
	ctx := context.Background()
	if r.cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Duration)
		defer cancel()
	}
	var issued atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(w)*7919))
			for {
				if r.cfg.Requests > 0 && issued.Add(1) > int64(r.cfg.Requests) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				r.doOne()
				if think := r.cfg.Think.sample(rng); think > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(think):
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// doOne sends one POST /infer, classifies the reply and records latency.
func (r *run) doOne() {
	offset := time.Since(r.start)
	r.mu.Lock()
	r.offsets = append(r.offsets, offset)
	r.mu.Unlock()
	r.requests.Add(1)

	t0 := time.Now()
	resp, err := r.client.Post(r.cfg.Target+"/infer", "application/json", nil)
	lat := time.Since(t0)
	if err != nil {
		var ne net.Error
		if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
			r.timeouts.Add(1)
			r.stream(offset, lat, "timeout", err)
		} else {
			r.errs.Add(1)
			r.stream(offset, lat, "error", err)
		}
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusTooManyRequests {
		// The server's admission gate turned the request away at the door:
		// a deliberate, well-formed refusal — not a generic bad status.
		r.rejected.Add(1)
		r.stream(offset, lat, string(server.OutcomeRejected), nil)
		return
	}
	if resp.StatusCode != http.StatusOK {
		r.badStatus.Add(1)
		r.stream(offset, lat, fmt.Sprintf("http_%d", resp.StatusCode), nil)
		return
	}
	var sr server.Response
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		r.errs.Add(1)
		r.stream(offset, lat, "error", err)
		return
	}
	switch sr.Outcome {
	case server.OutcomeGood:
		r.good.Add(1)
	case server.OutcomeLate:
		r.late.Add(1)
	case server.OutcomeDropped:
		r.dropped.Add(1)
	default:
		// A 200 reply with an empty or unknown outcome is a protocol error,
		// not an answer. (Pre-fix it counted as both answered and dropped,
		// skewing SLO attainment.)
		r.errs.Add(1)
		r.stream(offset, lat, "error", fmt.Errorf("load: 200 reply with unknown outcome %q", sr.Outcome))
		return
	}
	r.answered.Add(1)
	r.hist.Record(lat)
	r.stream(offset, lat, string(sr.Outcome), nil)
}

// stream writes one JSONL record per completed request when configured.
func (r *run) stream(offset, lat time.Duration, outcome string, err error) {
	if r.cfg.Stream == nil {
		return
	}
	rec := streamRecord{
		OffsetMS:  ms(offset),
		LatencyMS: ms(lat),
		Outcome:   outcome,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if werr := r.enc.Encode(rec); werr != nil {
		r.streamErrs++
		if r.streamErr == nil {
			r.streamErr = werr
		}
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func (r *run) report(elapsed time.Duration) *Report {
	rep := &Report{
		Mode:         r.cfg.Mode,
		Target:       r.cfg.Target,
		ElapsedSec:   elapsed.Seconds(),
		Requests:     r.requests.Load(),
		Answered:     r.answered.Load(),
		Good:         r.good.Load(),
		Late:         r.late.Load(),
		Dropped:      r.dropped.Load(),
		Rejected:     r.rejected.Load(),
		Shed:         r.shed.Load(),
		LateDispatch: r.lateDispatch.Load(),
		Timeouts:     r.timeouts.Load(),
		Errors:       r.errs.Load(),
		BadStatus:    r.badStatus.Load(),
		Latency: Quantiles{
			P50: ms(r.hist.Quantile(0.50)),
			P90: ms(r.hist.Quantile(0.90)),
			P99: ms(r.hist.Quantile(0.99)),
			Max: ms(r.hist.Max()),
		},
	}
	if elapsed > 0 {
		rep.Goodput = float64(rep.Good) / elapsed.Seconds()
		rep.OfferedRate = float64(rep.Requests) / elapsed.Seconds()
	}
	if rep.Answered > 0 {
		rep.SLOAttainment = float64(rep.Good) / float64(rep.Answered)
	}
	if rep.Requests > 0 {
		rep.RejectRate = float64(rep.Rejected) / float64(rep.Requests)
	}
	r.mu.Lock()
	rep.sendOffsets = append([]time.Duration(nil), r.offsets...)
	rep.StreamErrors = r.streamErrs
	if r.streamErr != nil {
		rep.StreamError = r.streamErr.Error()
	}
	r.mu.Unlock()
	sort.Slice(rep.sendOffsets, func(i, j int) bool { return rep.sendOffsets[i] < rep.sendOffsets[j] })
	return rep
}

// SimSpec describes the simulator twin of the live deployment a report was
// measured against: same pipeline, policy, worker counts and sync period.
type SimSpec struct {
	Spec *pipeline.Spec
	// Lib is the profile library (nil = default), which must match the live
	// server's for the twin to execute the same latency curves.
	Lib        *profile.Library
	PolicyName string
	// Workers is the per-module worker count (matching the live server's
	// fixed deployment; scaling stays off in the twin).
	Workers []int
	// SyncPeriod should match the live server's (default 250 ms, the live
	// default — not the simulator's paper-default 1 s).
	SyncPeriod time.Duration
	BatchFrac  float64
	Seed       int64
}

// CompareSim replays the report's recorded send offsets through the
// discrete-event simulator under a matched deployment — pinned workers, no
// execution jitter, negligible net delay (the live server runs in-process
// hops) — and attaches the resulting goodput comparison to the report.
func (r *Report) CompareSim(s SimSpec) (*SimComparison, error) {
	if len(r.sendOffsets) == 0 {
		return nil, fmt.Errorf("load: report has no recorded send offsets to replay")
	}
	if s.SyncPeriod <= 0 {
		s.SyncPeriod = 250 * time.Millisecond
	}
	dur := r.sendOffsets[len(r.sendOffsets)-1] + time.Second
	tr := &trace.Trace{
		Name:     "live-replay",
		Arrivals: append([]time.Duration(nil), r.sendOffsets...),
		Duration: dur,
	}
	res, err := simgpu.Run(simgpu.Config{
		Spec:         s.Spec,
		Lib:          s.Lib,
		PolicyName:   s.PolicyName,
		Trace:        tr,
		Seed:         s.Seed,
		SyncPeriod:   s.SyncPeriod,
		BatchFrac:    s.BatchFrac,
		FixedWorkers: s.Workers,
		JitterPct:    -1, // live batches take exactly the profiled duration
		NetDelay:     -1, // live hops are in-process: explicitly zero, not the 1 ms default
	})
	if err != nil {
		return nil, err
	}
	sum := res.Summary
	cmp := &SimComparison{
		Goodput: sum.Goodput,
		Good:    sum.Good,
		Late:    sum.Late,
		Dropped: sum.Dropped,
		Total:   sum.Total,
	}
	if sum.Goodput > 0 {
		cmp.GoodputDeltaPct = 100 * (r.Goodput - sum.Goodput) / sum.Goodput
	}
	r.Sim = cmp
	return cmp, nil
}

// WriteJSON writes the report as one indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the report as a human-readable summary table.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "pard-load: %s %s, %.1fs\n", r.Mode, r.Target, r.ElapsedSec)
	fmt.Fprintf(w, "  requests   %8d   (%.1f/s offered)\n", r.Requests, r.OfferedRate)
	fmt.Fprintf(w, "  answered   %8d   good %d  late %d  dropped %d\n", r.Answered, r.Good, r.Late, r.Dropped)
	if r.Rejected > 0 {
		fmt.Fprintf(w, "  rejected   %8d   (admission control, %.1f%% of requests)\n", r.Rejected, 100*r.RejectRate)
	}
	if r.Shed > 0 || r.LateDispatch > 0 {
		fmt.Fprintf(w, "  generator  shed %d  late-dispatch %d\n", r.Shed, r.LateDispatch)
	}
	if r.Timeouts > 0 || r.Errors > 0 || r.BadStatus > 0 {
		fmt.Fprintf(w, "  failures   timeouts %d  errors %d  bad-status %d\n", r.Timeouts, r.Errors, r.BadStatus)
	}
	if r.StreamErrors > 0 {
		fmt.Fprintf(w, "  stream     %d write failures (first: %s)\n", r.StreamErrors, r.StreamError)
	}
	fmt.Fprintf(w, "  goodput    %8.1f/s   SLO attainment %.1f%%\n", r.Goodput, 100*r.SLOAttainment)
	fmt.Fprintf(w, "  latency    p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms\n",
		r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.Max)
	if r.Sim != nil {
		fmt.Fprintf(w, "  sim twin   goodput %.1f/s  (live %+.1f%%)  good %d  late %d  dropped %d\n",
			r.Sim.Goodput, r.Sim.GoodputDeltaPct, r.Sim.Good, r.Sim.Late, r.Sim.Dropped)
	}
}
