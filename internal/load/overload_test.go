package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/profile"
	"pard/internal/server"
	"pard/internal/trace"
)

// TestRejectedClassification pins the 429 path in doOne: admission-gate
// rejections count as rejected — not bad_status, not answered — and reach
// the JSONL stream as "rejected".
func TestRejectedClassification(t *testing.T) {
	var n atomic.Int64
	ts := fakeInfer(t, func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.Response{Outcome: server.OutcomeRejected})
			return
		}
		replyOutcome(w, server.OutcomeGood)
	})
	var buf bytes.Buffer
	rep, err := Run(Config{Target: ts.URL, Mode: ModeClosed, Conns: 1, Requests: 10, Stream: &buf, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 5 || rep.Good != 5 {
		t.Fatalf("rejected %d good %d, want 5/5", rep.Rejected, rep.Good)
	}
	if rep.BadStatus != 0 {
		t.Fatalf("429s leaked into bad_status: %d", rep.BadStatus)
	}
	if rep.Answered != 5 {
		t.Fatalf("answered %d counts rejections, want 5", rep.Answered)
	}
	if rep.RejectRate != 0.5 {
		t.Fatalf("reject rate %v, want 0.5", rep.RejectRate)
	}
	streamed := 0
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec streamRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", ln, err)
		}
		if rec.Outcome == "rejected" {
			streamed++
		}
	}
	if streamed != 5 {
		t.Fatalf("streamed %d rejected records, want 5", streamed)
	}

	var tbl strings.Builder
	rep.WriteTable(&tbl)
	if !strings.Contains(tbl.String(), "rejected") {
		t.Fatalf("table missing the rejected line:\n%s", tbl.String())
	}
}

// TestUnknownOutcomeProtocolError pins the classification fix: a 200 reply
// whose outcome is empty or unknown is a protocol error — pre-fix it counted
// as both answered and dropped, skewing SLO attainment.
func TestUnknownOutcomeProtocolError(t *testing.T) {
	var n atomic.Int64
	ts := fakeInfer(t, func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 3 {
		case 1:
			replyOutcome(w, server.OutcomeGood)
		case 2:
			fmt.Fprintln(w, `{"id":1,"outcome":"","latency_ms":1}`)
		default:
			fmt.Fprintln(w, `{"id":2,"outcome":"mystery","latency_ms":1}`)
		}
	})
	rep, err := Run(Config{Target: ts.URL, Mode: ModeClosed, Conns: 1, Requests: 9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 6 {
		t.Fatalf("errors %d, want 6 (empty + unknown outcomes)", rep.Errors)
	}
	if rep.Answered != 3 || rep.Good != 3 {
		t.Fatalf("answered %d good %d, want 3/3", rep.Answered, rep.Good)
	}
	if rep.Dropped != 0 {
		t.Fatalf("protocol errors leaked into dropped: %d", rep.Dropped)
	}
	if rep.SLOAttainment != 1 {
		t.Fatalf("attainment %v, want 1 (good over genuinely answered)", rep.SLOAttainment)
	}
}

// failAfter is an io.Writer that starts failing after n successful writes.
type failAfter struct {
	n     int
	wrote int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.wrote >= f.n {
		return 0, errors.New("disk full")
	}
	f.wrote++
	return len(p), nil
}

// TestStreamWriteErrors pins the stream-encoder fix: write failures are
// counted and the first one surfaces in the report instead of vanishing.
func TestStreamWriteErrors(t *testing.T) {
	ts := fakeInfer(t, func(w http.ResponseWriter, r *http.Request) {
		replyOutcome(w, server.OutcomeGood)
	})
	rep, err := Run(Config{Target: ts.URL, Mode: ModeClosed, Conns: 1, Requests: 10,
		Stream: &failAfter{n: 3}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StreamErrors != 7 {
		t.Fatalf("stream errors %d, want 7", rep.StreamErrors)
	}
	if !strings.Contains(rep.StreamError, "disk full") {
		t.Fatalf("first stream error %q not surfaced", rep.StreamError)
	}
	var tbl strings.Builder
	rep.WriteTable(&tbl)
	if !strings.Contains(tbl.String(), "disk full") {
		t.Fatalf("table missing the stream-failure line:\n%s", tbl.String())
	}
}

// slowLib profiles a deliberately slow model so a handful of workers
// saturate at ~100 req/s and the overload experiment needs only modest
// request counts.
func slowLib(t *testing.T) *profile.Library {
	t.Helper()
	lib := profile.NewLibrary()
	if err := lib.Add(profile.Model{
		Name:     "slow",
		Alpha:    20 * time.Millisecond,
		Beta:     5 * time.Millisecond,
		MaxBatch: 4,
	}); err != nil {
		t.Fatal(err)
	}
	return lib
}

// overloadRun drives one live server at ~2.5× capacity and returns the
// report: 3 slow modules, one worker each (≈100 req/s pipeline capacity)
// against a 250 req/s fixed schedule. The naive policy never drops, so
// without admission control the queues absorb the whole overload.
func overloadRun(t *testing.T, adm server.AdmissionConfig) *Report {
	t.Helper()
	spec := pipeline.Uniform("overload", 3, "slow", 300*time.Millisecond)
	s, err := server.New(server.Config{
		Spec:       spec,
		Lib:        slowLib(t),
		PolicyName: "naive",
		Workers:    []int{1, 1, 1},
		SyncPeriod: 50 * time.Millisecond,
		Seed:       1,
		Admission:  adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := Run(Config{Target: ts.URL, Trace: trace.Fixed(250, time.Second), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestOverloadAdmissionExperiment is the PR's headline experiment: at ~2.5×
// capacity, estimator-driven admission control must strictly improve on
// queue-everything. With the gate off the naive policy buries the overload
// in its queues (requests go late or stall); with the gate on the doomed
// share is turned away at the door with 429s and the admitted share keeps
// meeting the SLO — goodput(on) ≥ goodput(off) with rejections flowing.
func TestOverloadAdmissionExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("overload experiment runs seconds of wall-clock traffic")
	}
	off := overloadRun(t, server.AdmissionConfig{})
	on := overloadRun(t, server.AdmissionConfig{Enabled: true, MaxInFlight: 16})

	if off.Rejected != 0 {
		t.Fatalf("gate off rejected %d requests", off.Rejected)
	}
	if on.Rejected == 0 {
		t.Fatal("gate on rejected nothing at 2.5x capacity")
	}
	if on.Good == 0 || on.Goodput <= 0 {
		t.Fatalf("gate on produced no goodput: %+v", on)
	}
	if on.Goodput < off.Goodput {
		t.Fatalf("admission control lost goodput: on %.1f/s < off %.1f/s (on: good=%d rejected=%d; off: good=%d late=%d bad=%d)",
			on.Goodput, off.Goodput, on.Good, on.Rejected, off.Good, off.Late, off.BadStatus)
	}
	t.Logf("overload 2.5x: goodput off=%.1f/s on=%.1f/s, on-side rejected %d/%d (%.0f%%)",
		off.Goodput, on.Goodput, on.Rejected, on.Requests, 100*on.RejectRate)
}
