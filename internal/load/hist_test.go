package load

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatalf("empty hist: count %d max %v", h.Count(), h.Max())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

// TestHistQuantileAccuracy records a uniform 1..10000 µs spread and checks
// the estimated quantiles stay within the histogram's ~3% bucket error (plus
// slack for the half-bucket midpoint convention).
func TestHistQuantileAccuracy(t *testing.T) {
	var h Hist
	for us := 1; us <= 10000; us++ {
		h.Record(time.Duration(us) * time.Microsecond)
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 10*time.Millisecond {
		t.Fatalf("max = %v, want exactly 10ms", h.Max())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 5000 * time.Microsecond},
		{0.90, 9000 * time.Microsecond},
		{0.99, 9900 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		rel := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if rel > 0.05 {
			t.Errorf("q%.2f = %v, want ≈%v (rel err %.3f)", tc.q, got, tc.want, rel)
		}
	}
	if q := h.Quantile(1); q != h.Max() {
		t.Fatalf("q1 = %v, want max %v", q, h.Max())
	}
}

// TestHistIndexBounds is the property behind the layout: every value inside
// the representable range lands in a slot whose reconstructed lower bound is
// ≤ the value and within 1/32 of it (slot width 2^b over the bucket's
// minimum value 2^(b+5)).
func TestHistIndexBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		v := uint64(rng.Int63n(1 << 37)) // top bucket covers values < 64<<31 = 2^37
		idx := histIndex(v)
		if idx < 0 || idx >= histBuckets*histSubs {
			t.Fatalf("v=%d: index %d out of range", v, idx)
		}
		lo := histValue(idx)
		if lo > v {
			t.Fatalf("v=%d: slot lower bound %d exceeds value", v, lo)
		}
		if v >= histSubs && float64(v-lo)/float64(v) > 1.0/32+1e-9 {
			t.Fatalf("v=%d: slot lower bound %d off by more than 1/32", v, lo)
		}
	}
	// Saturation: values beyond the top bucket clamp to the last slot.
	if idx := histIndex(math.MaxUint64); idx != histBuckets*histSubs-1 {
		t.Fatalf("MaxUint64 landed in slot %d", idx)
	}
	var h Hist
	h.Record(-time.Second) // negative clamps to zero
	if h.Quantile(0.5) != 0 {
		t.Fatal("negative record did not clamp to zero")
	}
}

// TestHistConcurrent hammers Record from many goroutines (run under -race)
// and checks nothing is lost.
func TestHistConcurrent(t *testing.T) {
	var h Hist
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Max() >= time.Second || h.Max() <= 0 {
		t.Fatalf("max = %v outside (0, 1s)", h.Max())
	}
}
