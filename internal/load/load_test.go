package load

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/profile"
	"pard/internal/server"
	"pard/internal/trace"
)

// fakeInfer builds an httptest server whose /infer replies with the given
// handler — the generator's mechanics are tested without a real pipeline.
func fakeInfer(t *testing.T, h http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", h)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func replyOutcome(w http.ResponseWriter, out server.Outcome) {
	json.NewEncoder(w).Encode(server.Response{Outcome: out, LatencyMS: 1})
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no target":           {},
		"open without trace":  {Target: "http://x", Mode: ModeOpen},
		"closed without caps": {Target: "http://x", Mode: ModeClosed},
		"unknown mode":        {Target: "http://x", Mode: "burst"},
		"bad think range":     {Target: "http://x", Mode: ModeClosed, Requests: 1, Think: ThinkTime{Min: -time.Second}},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestClosedLoopCounts(t *testing.T) {
	ts := fakeInfer(t, func(w http.ResponseWriter, r *http.Request) {
		replyOutcome(w, server.OutcomeGood)
	})
	rep, err := Run(Config{
		Target:   ts.URL,
		Mode:     ModeClosed,
		Conns:    4,
		Requests: 40,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 40 || rep.Answered != 40 || rep.Good != 40 {
		t.Fatalf("requests %d answered %d good %d, want 40 each", rep.Requests, rep.Answered, rep.Good)
	}
	if rep.Goodput <= 0 || rep.SLOAttainment != 1 {
		t.Fatalf("goodput %v attainment %v", rep.Goodput, rep.SLOAttainment)
	}
	offs := rep.Offsets()
	if len(offs) != 40 {
		t.Fatalf("recorded %d send offsets", len(offs))
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			t.Fatal("offsets not sorted")
		}
	}
	if rep.Latency.Max <= 0 || rep.Latency.P99 > rep.Latency.Max+0.001 {
		t.Fatalf("latency quantiles inconsistent: %+v", rep.Latency)
	}
}

func TestClosedLoopDurationCap(t *testing.T) {
	ts := fakeInfer(t, func(w http.ResponseWriter, r *http.Request) {
		replyOutcome(w, server.OutcomeGood)
	})
	rep, err := Run(Config{
		Target:   ts.URL,
		Mode:     ModeClosed,
		Conns:    2,
		Duration: 100 * time.Millisecond,
		Think:    ThinkTime{Min: 5 * time.Millisecond, Max: 10 * time.Millisecond},
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("duration-capped run sent nothing")
	}
	// 2 conns × ≥5ms think over 100ms: well under 100 requests.
	if rep.Requests > 100 {
		t.Fatalf("think time ignored: %d requests in 100ms", rep.Requests)
	}
}

func TestOpenLoopReplay(t *testing.T) {
	ts := fakeInfer(t, func(w http.ResponseWriter, r *http.Request) {
		replyOutcome(w, server.OutcomeGood)
	})
	tr := trace.Fixed(200, 250*time.Millisecond)       // 50 arrivals over 250 ms
	rep, err := Run(Config{Target: ts.URL, Trace: tr}) // mode defaults to open
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeOpen {
		t.Fatalf("mode = %q", rep.Mode)
	}
	if rep.Requests != 50 || rep.Shed != 0 {
		t.Fatalf("requests %d shed %d, want 50/0", rep.Requests, rep.Shed)
	}
	if rep.Good != 50 {
		t.Fatalf("good %d, want 50", rep.Good)
	}
}

func TestOpenLoopShedsAtCap(t *testing.T) {
	ts := fakeInfer(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(80 * time.Millisecond) // slow server: in-flight piles up
		replyOutcome(w, server.OutcomeGood)
	})
	tr := trace.Fixed(1000, 20*time.Millisecond) // 20 arrivals in 20 ms
	rep, err := Run(Config{Target: ts.URL, Trace: tr, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatal("no arrivals shed despite MaxInFlight=2 and a slow server")
	}
	if rep.Requests+rep.Shed != 20 {
		t.Fatalf("requests %d + shed %d != 20 arrivals", rep.Requests, rep.Shed)
	}
}

func TestOutcomeClassification(t *testing.T) {
	var n atomic.Int64
	ts := fakeInfer(t, func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 4 {
		case 1:
			replyOutcome(w, server.OutcomeGood)
		case 2:
			replyOutcome(w, server.OutcomeLate)
		case 3:
			replyOutcome(w, server.OutcomeDropped)
		default:
			http.Error(w, "stalled", http.StatusGatewayTimeout)
		}
	})
	rep, err := Run(Config{Target: ts.URL, Mode: ModeClosed, Conns: 1, Requests: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Good != 2 || rep.Late != 2 || rep.Dropped != 2 || rep.BadStatus != 2 {
		t.Fatalf("good %d late %d dropped %d badstatus %d, want 2 each",
			rep.Good, rep.Late, rep.Dropped, rep.BadStatus)
	}
	if rep.Answered != 6 {
		t.Fatalf("answered %d, want 6", rep.Answered)
	}
	if got := rep.SLOAttainment; got < 0.32 || got > 0.34 {
		t.Fatalf("attainment %v, want 2/6", got)
	}
}

func TestErrorsAndTimeouts(t *testing.T) {
	ts := fakeInfer(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
		replyOutcome(w, server.OutcomeGood)
	})
	rep, err := Run(Config{
		Target:   ts.URL,
		Mode:     ModeClosed,
		Conns:    1,
		Requests: 2,
		Timeout:  20 * time.Millisecond,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeouts != 2 {
		t.Fatalf("timeouts %d, want 2 (errors %d)", rep.Timeouts, rep.Errors)
	}
	// Unreachable target: transport errors, not timeouts.
	rep, err = Run(Config{Target: "http://127.0.0.1:1", Mode: ModeClosed, Conns: 1, Requests: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 2 {
		t.Fatalf("errors %d, want 2 (timeouts %d)", rep.Errors, rep.Timeouts)
	}
}

func TestStreamRecords(t *testing.T) {
	ts := fakeInfer(t, func(w http.ResponseWriter, r *http.Request) {
		replyOutcome(w, server.OutcomeGood)
	})
	var buf bytes.Buffer
	if _, err := Run(Config{Target: ts.URL, Mode: ModeClosed, Conns: 2, Requests: 10, Stream: &buf, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("streamed %d lines, want 10", len(lines))
	}
	for _, ln := range lines {
		var rec streamRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", ln, err)
		}
		if rec.Outcome != "good" {
			t.Fatalf("stream outcome %q", rec.Outcome)
		}
	}
}

func TestThinkTimeSample(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tt := ThinkTime{Min: 10 * time.Millisecond, Max: 20 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		v := tt.sample(rng)
		if v < tt.Min || v > tt.Max {
			t.Fatalf("sample %v outside [%v, %v]", v, tt.Min, tt.Max)
		}
	}
	if v := (ThinkTime{Min: 7 * time.Millisecond}).sample(rng); v != 7*time.Millisecond {
		t.Fatalf("fixed think sampled %v", v)
	}
}

// fastLib mirrors the server package's test library: a model quick enough
// that live runs take milliseconds.
func fastLib(t *testing.T) *profile.Library {
	t.Helper()
	lib := profile.NewLibrary()
	if err := lib.Add(profile.Model{
		Name:     "fast",
		Alpha:    200 * time.Microsecond,
		Beta:     100 * time.Microsecond,
		MaxBatch: 8,
	}); err != nil {
		t.Fatal(err)
	}
	return lib
}

// TestLiveVsSim is the end-to-end round trip: drive a real live server
// open-loop, then replay the recorded send offsets through the simulator
// twin and check both sides produced comparable goodput under matched load.
func TestLiveVsSim(t *testing.T) {
	spec := pipeline.Uniform("livetwin", 3, "fast", 150*time.Millisecond)
	lib := fastLib(t)
	workers := []int{2, 2, 2}
	s, err := server.New(server.Config{
		Spec:       spec,
		Lib:        lib,
		PolicyName: "pard",
		Workers:    workers,
		SyncPeriod: 50 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tr := trace.Fixed(100, time.Second)
	rep, err := Run(Config{Target: ts.URL, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Good == 0 || rep.Goodput <= 0 {
		t.Fatalf("live run produced no goodput: %+v", rep)
	}
	if rep.Answered != rep.Good+rep.Late+rep.Dropped {
		t.Fatalf("outcome split %d+%d+%d != answered %d", rep.Good, rep.Late, rep.Dropped, rep.Answered)
	}

	cmp, err := rep.CompareSim(SimSpec{
		Spec:       spec,
		Lib:        lib,
		PolicyName: "pard",
		Workers:    workers,
		SyncPeriod: 50 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Goodput <= 0 {
		t.Fatalf("sim twin produced no goodput: %+v", cmp)
	}
	if cmp.Total != int(rep.Requests) {
		t.Fatalf("sim replayed %d arrivals, live sent %d", cmp.Total, rep.Requests)
	}
	if rep.Sim != cmp {
		t.Fatal("comparison not attached to the report")
	}

	// The report must round-trip as a single clean JSON document with the
	// comparison embedded.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Sim == nil || back.Sim.Goodput != cmp.Goodput {
		t.Fatalf("JSON round trip lost the sim comparison: %+v", back.Sim)
	}

	var tbl strings.Builder
	rep.WriteTable(&tbl)
	for _, want := range []string{"goodput", "latency", "sim twin"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
}

func TestCompareSimNeedsOffsets(t *testing.T) {
	rep := &Report{}
	if _, err := rep.CompareSim(SimSpec{Spec: pipeline.TM()}); err == nil {
		t.Fatal("empty report accepted")
	}
}

func TestCompareSimPropagatesErrors(t *testing.T) {
	rep := &Report{sendOffsets: []time.Duration{0, time.Millisecond}}
	if _, err := rep.CompareSim(SimSpec{Spec: nil}); err == nil {
		t.Fatal("nil spec accepted")
	}
}

// Example-style smoke for the table writer with failure lines present.
func TestWriteTableFailureLines(t *testing.T) {
	rep := &Report{Mode: ModeOpen, Target: "http://x", Shed: 1, Timeouts: 2}
	var b strings.Builder
	rep.WriteTable(&b)
	out := b.String()
	if !strings.Contains(out, "shed 1") || !strings.Contains(out, "timeouts 2") {
		t.Fatalf("table missing generator/failure lines:\n%s", out)
	}
}
