package load

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a lock-free HDR-style latency histogram: values (in microseconds)
// land in power-of-two buckets split into 64 linear sub-buckets, giving a
// bounded relative error of ~3% per recorded value across nine decades
// (1 µs to ~1 h). All methods are safe for concurrent use — closed-loop
// workers and open-loop request goroutines record into one shared
// histogram without coordination.
type Hist struct {
	counts [histBuckets * histSubs]atomic.Uint64
	total  atomic.Uint64
	max    atomic.Int64
}

const (
	histSubBits = 6
	histSubs    = 1 << histSubBits // 64 linear sub-buckets per power of two
	histBuckets = 32
	histUnit    = time.Microsecond
)

// histIndex maps a value in histUnits to its slot. Bucket 0 is linear
// (values < histSubs); bucket b >= 1 covers [histSubs<<(b-1), histSubs<<b)
// with sub-index v>>b in [histSubs/2, histSubs) — the classic HDR layout
// (the lower half of each non-zero bucket is unreachable; the array is
// 16 KiB, so the waste buys branch-free indexing).
func histIndex(v uint64) int {
	if v < histSubs {
		return int(v)
	}
	b := bits.Len64(v) - histSubBits
	if b >= histBuckets {
		return histBuckets*histSubs - 1
	}
	return b*histSubs + int(v>>uint(b))
}

// histValue reconstructs the lower bound of slot idx, in histUnits.
func histValue(idx int) uint64 {
	b := idx >> histSubBits
	sub := uint64(idx & (histSubs - 1))
	if b == 0 {
		return sub
	}
	return sub << uint(b)
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v := uint64(d / histUnit)
	h.counts[histIndex(v)].Add(1)
	h.total.Add(1)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Max returns the largest recorded value exactly.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an estimate of the q-quantile (q in [0,1]) with the
// histogram's bucket resolution; q >= 1 returns the exact max. Concurrent
// recording skews the estimate by at most the in-flight updates.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	target := uint64(q * float64(n))
	if target >= n {
		target = n - 1
	}
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > target {
			// Midpoint of the slot's value range, clamped to the true max.
			b := i >> histSubBits
			width := uint64(1)
			if b > 0 {
				width = 1 << uint(b)
			}
			mid := time.Duration(histValue(i)+width/2) * histUnit
			if max := h.Max(); mid > max {
				mid = max
			}
			return mid
		}
	}
	return h.Max()
}
