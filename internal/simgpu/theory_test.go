package simgpu

import (
	"math"
	"testing"
	"time"

	"pard/internal/metrics"
	"pard/internal/pipeline"
	"pard/internal/profile"
	"pard/internal/trace"
)

// singleServerCfg builds a 1-module, 1-worker, batch-size-1 deployment with
// deterministic service time d — an M/D/1 queue whose closed-form behavior
// validates the simulator's batch lifecycle end to end.
func singleServerCfg(t *testing.T, rate float64, d time.Duration, dur time.Duration) Config {
	t.Helper()
	lib := profile.NewLibrary()
	if err := lib.Add(profile.Model{
		Name:     "unit",
		Alpha:    d,
		Beta:     time.Nanosecond, // affine form requires beta > 0
		MaxBatch: 1,
	}); err != nil {
		t.Fatal(err)
	}
	spec := pipeline.Uniform("md1", 1, "unit", time.Hour) // SLO never binds
	return Config{
		Spec:         spec,
		Lib:          lib,
		PolicyName:   "naive",
		Trace:        trace.MustGenerate(trace.Config{Kind: trace.Steady, Duration: dur, PeakRate: rate, Seed: 21}),
		Seed:         21,
		FixedWorkers: []int{1},
		JitterPct:    -1, // deterministic service
		NetDelay:     time.Nanosecond,
	}
}

// TestMD1MeanWait validates the simulator against Pollaczek–Khinchine:
// for M/D/1, E[Wq] = ρ·d / (2(1−ρ)).
func TestMD1MeanWait(t *testing.T) {
	d := 10 * time.Millisecond
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		rate := rho / d.Seconds()
		res, err := Run(singleServerCfg(t, rate, d, 120*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		var sumSojourn float64
		n := 0
		for _, rec := range res.Collector.Records() {
			if rec.Outcome == metrics.Good {
				sumSojourn += (rec.Done - rec.Send).Seconds()
				n++
			}
		}
		if n == 0 {
			t.Fatalf("rho=%v: no completions", rho)
		}
		meanWq := sumSojourn/float64(n) - d.Seconds()
		want := rho * d.Seconds() / (2 * (1 - rho))
		// 15% relative + small absolute tolerance for finite-run noise.
		if math.Abs(meanWq-want) > want*0.15+0.0005 {
			t.Fatalf("rho=%v: mean Wq = %.4fs, M/D/1 predicts %.4fs", rho, meanWq, want)
		}
	}
}

// TestUtilizationLaw validates GPU-time accounting: busy fraction = λ·d.
func TestUtilizationLaw(t *testing.T) {
	d := 10 * time.Millisecond
	rho := 0.5
	res, err := Run(singleServerCfg(t, rho/d.Seconds(), d, 60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	busy := res.Summary.GPUTotal.Seconds() / res.Collector.End().Seconds()
	if math.Abs(busy-rho) > 0.05 {
		t.Fatalf("utilization %.3f, want ≈%.2f", busy, rho)
	}
}

// TestThroughputCappedAtService validates that completions cannot exceed the
// deterministic service capacity 1/d.
func TestThroughputCappedAtService(t *testing.T) {
	d := 10 * time.Millisecond
	res, err := Run(singleServerCfg(t, 3/d.Seconds(), d, 30*time.Second)) // 3× overload
	if err != nil {
		t.Fatal(err)
	}
	completed := res.Summary.Good + res.Summary.Late
	capacity := res.Collector.End().Seconds() / d.Seconds()
	if float64(completed) > capacity*1.01 {
		t.Fatalf("completed %d exceeds capacity %.0f", completed, capacity)
	}
	// And the server should be near-saturated, not idle.
	if float64(completed) < capacity*0.9 {
		t.Fatalf("completed %d far below capacity %.0f under overload", completed, capacity)
	}
}

// TestBatchWaitUniformAtSaturation validates Fig. 3b's premise: when the
// GPU stays busy but the queue does not explode (load just below the batch
// capacity), arrivals join the forming batch throughout the previous
// execution, so batch wait is ~uniform on [0, d]. We check the mean (d/2)
// and that the spread covers most of the support. (Under gross overload the
// deep queue fills batches instantly and W → d; TestOverload* covers that
// regime.)
func TestBatchWaitUniformAtSaturation(t *testing.T) {
	lib := profile.NewLibrary()
	if err := lib.Add(profile.Model{
		Name:     "unit",
		Alpha:    8 * time.Millisecond,
		Beta:     4 * time.Millisecond,
		MaxBatch: 8,
	}); err != nil {
		t.Fatal(err)
	}
	spec := pipeline.Uniform("sat", 1, "unit", time.Hour)
	res, err := Run(Config{
		Spec:       spec,
		Lib:        lib,
		PolicyName: "naive",
		// Capacity at batch 8 is 8/40ms = 200 req/s; offer 92% of it.
		Trace:        trace.MustGenerate(trace.Config{Kind: trace.Steady, Duration: 60 * time.Second, PeakRate: 185, Seed: 23}),
		Seed:         23,
		FixedWorkers: []int{1},
		JitterPct:    -1,
		Probes:       ProbeConfig{Decomposition: true, SampleEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := res.WaitSamples[0]
	if len(samples) < 1000 {
		t.Fatalf("only %d wait samples", len(samples))
	}
	d := res.ProfiledDurs[0].Seconds()
	var mean, max float64
	for _, w := range samples {
		mean += w
		if w > max {
			max = w
		}
	}
	mean /= float64(len(samples))
	if math.Abs(mean-d/2) > 0.15*d {
		t.Fatalf("mean batch wait %.4fs, uniform predicts %.4fs", mean, d/2)
	}
	if max < 0.9*d {
		t.Fatalf("max batch wait %.4fs never approaches d=%.4fs", max, d)
	}
}
