package simgpu

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/sched"
	"pard/internal/trace"
)

// encodeResult produces the byte-identity witness the lane-group harness
// compares: the full Result, gob-encoded (the same witness the sharded
// differential harness uses).
func encodeResult(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		t.Fatalf("encoding result: %v", err)
	}
	return buf.Bytes()
}

// TestLaneGroupsBitIdentical is the in-process half of determinism invariant
// #5: splitting the lane engine into N lockstep lane-group replicas changes
// nothing about the result — not one byte.
func TestLaneGroupsBitIdentical(t *testing.T) {
	tr := trace.MustGenerate(trace.Config{Kind: trace.Tweet, Duration: 6 * time.Second, PeakRate: 120, Seed: 7})
	base := Config{
		Spec:       pipeline.LV(),
		PolicyName: "pard",
		Trace:      tr,
		Seed:       42,
		SyncPeriod: 200 * time.Millisecond,
		Probes:     ProbeConfig{QueueDelay: true, LoadFactor: true, Decomposition: true},
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeResult(t, ref)
	for _, groups := range []int{2, 3, 4} {
		cfg := base
		cfg.Groups = groups
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("groups=%d: %v", groups, err)
		}
		if got := encodeResult(t, res); !bytes.Equal(want, got) {
			t.Fatalf("groups=%d: result diverged from single-group run (%d vs %d encoded bytes)", groups, len(got), len(want))
		}
	}
}

// TestLaneGroupsFailuresAndScaling covers the control-lane exchanges: an
// injected failure (owner-only crash, drops learned via control flush) and
// the scaling engine (demand all-gather) under a 2-group split.
func TestLaneGroupsFailuresAndScaling(t *testing.T) {
	tr := steadyTrace(150, 6*time.Second, 3)
	base := Config{
		Spec:       pipeline.LV(),
		PolicyName: "pard",
		Trace:      tr,
		Seed:       11,
		SyncPeriod: 200 * time.Millisecond,
		Failures: []Failure{
			{At: 2 * time.Second, Module: 1, Count: 1},
			{At: 4 * time.Second, Module: 0, Count: 2},
		},
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeResult(t, ref)
	for _, groups := range []int{2, 3} {
		cfg := base
		cfg.Groups = groups
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("groups=%d: %v", groups, err)
		}
		if got := encodeResult(t, res); !bytes.Equal(want, got) {
			t.Fatalf("groups=%d: result diverged from single-group run", groups)
		}
	}
}

// TestLaneGroupsDAG exercises cross-group mailbox traffic on a DAG app:
// fan-out and merge hops land on lanes owned by different groups under the
// round-robin placement.
func TestLaneGroupsDAG(t *testing.T) {
	tr := trace.MustGenerate(trace.Config{Kind: trace.Tweet, Duration: 6 * time.Second, PeakRate: 100, Seed: 9})
	base := Config{
		Spec:       pipeline.DA(),
		PolicyName: "pard",
		Trace:      tr,
		Seed:       5,
		SyncPeriod: 200 * time.Millisecond,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeResult(t, ref)
	cfg := base
	cfg.Groups = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeResult(t, res); !bytes.Equal(want, got) {
		t.Fatal("groups=2: DAG result diverged from single-group run")
	}
}

// TestLaneGroupsClampAndValidation pins the config surface: Groups beyond
// the module count clamps (a group per module is the finest split), negative
// counts and classic-engine combinations are rejected.
func TestLaneGroupsClampAndValidation(t *testing.T) {
	tr := steadyTrace(50, 2*time.Second, 1)
	cfg := Config{Spec: pipeline.LV(), Trace: tr, Groups: 99}
	out, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if out.Groups != pipeline.LV().N() {
		t.Fatalf("Groups=99 clamped to %d, want module count %d", out.Groups, pipeline.LV().N())
	}

	bad := []Config{
		{Spec: pipeline.LV(), Trace: tr, Groups: -1},
		{Spec: pipeline.LV(), Trace: tr, Engine: EngineClassic, Groups: 2},
		{Spec: pipeline.LV(), Trace: tr, Remote: &RemoteTopology{Groups: 2, Group: 0}}, // nil transport
		{Spec: pipeline.LV(), Trace: tr, Groups: 2, Remote: &RemoteTopology{Groups: 2, Group: 0, Transport: sched.NewMemTransports(2)[0]}},
	}
	for i, c := range bad {
		if _, err := c.withDefaults(); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

// TestLaneGroupAbortPropagates proves a failing group poisons the fabric:
// peers abort with the originating error instead of hanging at the next
// rendezvous.
func TestLaneGroupAbortPropagates(t *testing.T) {
	trs := sched.NewMemTransports(2)
	tr := steadyTrace(100, 4*time.Second, 2)
	cfg := Config{
		Spec:       pipeline.LV(),
		PolicyName: "pard",
		Trace:      tr,
		Seed:       1,
		SyncPeriod: 200 * time.Millisecond,
		Remote:     &RemoteTopology{Groups: 2, Group: 0, Transport: trs[0]},
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := Run(cfg)
		errCh <- err
	}()
	// The peer never joins; poison the fabric as a disconnect would.
	trs[1].Abort(errTestDisconnect)

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("group 0 returned a result despite the aborted fabric")
		}
		if !strings.Contains(err.Error(), "injected disconnect") {
			t.Fatalf("abort reason lost: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("group 0 hung instead of aborting")
	}
}

var errTestDisconnect = errTest("injected disconnect")

type errTest string

func (e errTest) Error() string { return string(e) }
