package simgpu

import (
	"testing"
	"time"

	"pard/internal/pipeline"
)

func TestFailureValidation(t *testing.T) {
	tr := steadyTrace(50, 5*time.Second, 1)
	bad := []Failure{
		{At: -time.Second, Module: 0, Count: 1},
		{At: 0, Module: 9, Count: 1},
		{At: 0, Module: 0, Count: 0},
	}
	for i, f := range bad {
		cfg := Config{Spec: pipeline.LV(), PolicyName: "pard", Trace: tr, Failures: []Failure{f}}
		if _, err := Run(cfg); err == nil {
			t.Fatalf("bad failure %d accepted", i)
		}
	}
}

func TestFailureDropsInFlightWork(t *testing.T) {
	tr := steadyTrace(300, 30*time.Second, 5)
	noFail := runLV(t, "pard", tr, nil)
	failed := runLV(t, "pard", tr, func(c *Config) {
		// Kill 3 of module 2's workers mid-run.
		c.Failures = []Failure{{At: 10 * time.Second, Module: 2, Count: 3}}
	})
	// Conservation still holds.
	s := failed.Summary
	if s.Good+s.Late+s.Dropped != s.Total {
		t.Fatalf("conservation broken after failure: %+v", s)
	}
	// The failure costs goodput relative to the clean run.
	if failed.Summary.Good >= noFail.Summary.Good {
		t.Fatalf("failure had no effect: %d vs %d good", failed.Summary.Good, noFail.Summary.Good)
	}
	// Some drops are attributed to the failed module.
	if failed.Summary.PerModuleDropPct[2] <= 0 {
		t.Fatalf("no drops at the failed module: %v", failed.Summary.PerModuleDropPct)
	}
}

func TestFailureRecoveryViaScaling(t *testing.T) {
	// With scaling enabled, replacements cold-start after a failure; the
	// second half of the run recovers.
	tr := steadyTrace(300, 60*time.Second, 7)
	res := runLV(t, "pard", tr, func(c *Config) {
		c.Failures = []Failure{{At: 20 * time.Second, Module: 0, Count: 2}}
	})
	// Goodput in the last 20s should be healthy again.
	tail := 0
	tailGood := 0
	for _, rec := range res.Collector.Records() {
		if rec.Send >= 40*time.Second {
			tail++
			if rec.Outcome == 0 { // metrics.Good
				tailGood++
			}
		}
	}
	if tail == 0 {
		t.Fatal("no tail requests")
	}
	if frac := float64(tailGood) / float64(tail); frac < 0.8 {
		t.Fatalf("no recovery after failure: tail goodput %.2f", frac)
	}
}

func TestFailureWithoutScalingDegradesMore(t *testing.T) {
	tr := steadyTrace(400, 40*time.Second, 9)
	fail := []Failure{{At: 10 * time.Second, Module: 0, Count: 2}}
	fixed := runLV(t, "pard", tr, func(c *Config) {
		c.FixedWorkers = []int{4, 4, 4, 4, 4}
		c.Failures = fail
	})
	scaled := runLV(t, "pard", tr, func(c *Config) {
		c.Failures = fail
	})
	if fixed.Summary.Good >= scaled.Summary.Good {
		t.Fatalf("fixed cluster should suffer more from failure: fixed %d vs scaled %d good",
			fixed.Summary.Good, scaled.Summary.Good)
	}
}

func TestTotalGPUBudgetCapsScaling(t *testing.T) {
	tr := steadyTrace(800, 30*time.Second, 11)
	capped := runLV(t, "pard", tr, func(c *Config) {
		sc := DefaultScaling()
		sc.TotalGPUs = 10 // 5 modules × min 1 leaves little slack
		c.Scaling = sc
	})
	total := 0
	for _, w := range capped.PeakWorkers {
		total += w
	}
	if total > 10+5 { // proportional grant floors at MinWorkers per module
		t.Fatalf("cluster budget exceeded: peak workers %v", capped.PeakWorkers)
	}
	uncapped := runLV(t, "pard", tr, nil)
	utotal := 0
	for _, w := range uncapped.PeakWorkers {
		utotal += w
	}
	if utotal <= total {
		t.Fatalf("budget had no effect: capped %d vs uncapped %d", total, utotal)
	}
	// The capped cluster serves less.
	if capped.Summary.Good >= uncapped.Summary.Good {
		t.Fatalf("capped cluster should serve less: %d vs %d",
			capped.Summary.Good, uncapped.Summary.Good)
	}
}

func TestFailureDeterminism(t *testing.T) {
	tr := steadyTrace(300, 20*time.Second, 13)
	mut := func(c *Config) {
		c.Failures = []Failure{{At: 5 * time.Second, Module: 1, Count: 2}}
	}
	a := runLV(t, "pard", tr, mut)
	b := runLV(t, "pard", tr, mut)
	if a.Summary.Good != b.Summary.Good || a.Summary.Dropped != b.Summary.Dropped {
		t.Fatalf("failure runs diverged: %+v vs %+v", a.Summary, b.Summary)
	}
}

func TestCrashMoreThanActiveWorkers(t *testing.T) {
	tr := steadyTrace(100, 10*time.Second, 15)
	res := runLV(t, "pard", tr, func(c *Config) {
		c.FixedWorkers = []int{1, 1, 1, 1, 1}
		c.Failures = []Failure{{At: 2 * time.Second, Module: 0, Count: 99}}
	})
	// All of module 0's capacity died and never returns (scaling disabled):
	// every request arriving after the crash is eventually dropped, and the
	// run still terminates cleanly.
	s := res.Summary
	if s.Good+s.Late+s.Dropped != s.Total {
		t.Fatalf("conservation broken: %+v", s)
	}
	if s.Dropped == 0 {
		t.Fatal("no drops after total module failure")
	}
}
