package simgpu

import (
	"fmt"
	"strings"
	"sync"

	"pard/internal/pipeline"
	"testing"
	"time"
)

// withCapturedWarnings redirects Warnf to a buffer and resets the
// once-per-process latch so each test observes a fresh deprecation state.
func withCapturedWarnings(t *testing.T) *[]string {
	t.Helper()
	var mu sync.Mutex
	var captured []string
	prev := Warnf
	prevWarned := classicWarned.Load()
	Warnf = func(format string, args ...any) {
		mu.Lock()
		captured = append(captured, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	classicWarned.Store(false)
	t.Cleanup(func() {
		Warnf = prev
		classicWarned.Store(prevWarned)
	})
	return &captured
}

func TestClassicEngineWarnsOnce(t *testing.T) {
	captured := withCapturedWarnings(t)
	tr := steadyTrace(50, 2*time.Second, 1)

	// Selecting the classic engine repeatedly warns exactly once per process.
	for i := 0; i < 3; i++ {
		cfg := Config{Spec: pipeline.LV(), PolicyName: "pard", Trace: tr, Seed: 1, Engine: EngineClassic}
		if _, err := cfg.withDefaults(); err != nil {
			t.Fatal(err)
		}
	}
	if len(*captured) != 1 {
		t.Fatalf("classic engine selected 3 times warned %d times, want 1: %q", len(*captured), *captured)
	}
	msg := (*captured)[0]
	// "next PR" pins the upgraded announcement: the warning names WHEN
	// removal lands, not just that it someday will.
	for _, want := range []string{"classic", "deprecated", "removed", "next PR"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("warning %q does not mention %q", msg, want)
		}
	}
}

func TestLaneEngineNeverWarns(t *testing.T) {
	captured := withCapturedWarnings(t)
	tr := steadyTrace(50, 2*time.Second, 1)

	for _, engine := range []string{"", EngineLane} {
		cfg := Config{Spec: pipeline.LV(), PolicyName: "pard", Trace: tr, Seed: 1, Engine: engine}
		if _, err := cfg.withDefaults(); err != nil {
			t.Fatal(err)
		}
	}
	if len(*captured) != 0 {
		t.Fatalf("lane engine selection warned: %q", *captured)
	}
}
