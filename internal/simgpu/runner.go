package simgpu

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"pard/internal/core"
	"pard/internal/metrics"
	"pard/internal/sched"
	"pard/internal/sim"
)

// Result is everything one simulation run produces.
type Result struct {
	// Collector holds the per-request outcomes and derived metrics.
	Collector *metrics.Collector
	// Summary is Collector.Summary(), precomputed.
	Summary metrics.Summary
	// PolicyName echoes the configured policy.
	PolicyName string
	// Workload is "<app>-<trace>".
	Workload string

	// TargetBatches and ProfiledDurs are the offline-profiling outputs used.
	TargetBatches []int
	ProfiledDurs  []time.Duration
	// PeakWorkers is the maximum concurrently active workers per module.
	PeakWorkers []int

	// Probe outputs (nil unless the corresponding probe was enabled).
	QueueDelay       []*metrics.Series // per module, ms
	LoadFactor       *metrics.Series   // module LoadModule's μ
	ModeSeries       *metrics.Series   // 0=LBF, 1=HBF
	Consumed         []*metrics.Series // per module consumed budget, ms
	Remaining        []*metrics.Series // per module remaining budget at arrival, ms
	WaitSamples      [][]float64       // per module batch-wait samples, seconds
	SumQ, SumW, SumD []float64         // per completed request, seconds

	// PrioritySwitches counts HBF↔LBF transitions (Fig. 13).
	PrioritySwitches int
	// SimEvents is the number of engine events dispatched.
	SimEvents uint64
}

// Runner executes one configuration: the shared scheduling core
// (internal/sched) instantiated on a virtual clock — the per-module lane
// engine by default, or the deprecated classic global event heap when
// cfg.Engine is EngineClassic — plus trace injection and result
// collection.
type Runner struct {
	cfg Config
	eng *sim.Engine            // classic engine (nil on the lane engine)
	shx *sched.ShardedExecutor // lane engine (nil when classic)
	cl  *sched.Cluster

	requests    []*sched.Request
	slab        []sched.Request // backing store; wire request IDs index it
	outstanding int

	sumQ, sumW, sumD []float64
	sampleCounter    int

	// Lane-group placement (zero/nil outside a multi-group topology). Each
	// group runner holds a complete cluster replica and executes only its
	// owned lanes; reports carries the peers' owner-only per-module state
	// (probes, peak workers) after the end-of-run Finish exchange.
	topo    sched.Topology
	tr      sched.Transport
	reports map[int]*sched.ModuleReport
	fired   uint64 // global event count from the Finish exchange
}

// New validates the configuration and assembles the cluster.
func New(cfg Config) (*Runner, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	// Provision workers: fixed counts, or sized for the early trace rate and
	// left to the scaling engine.
	workers := full.FixedWorkers
	if workers == nil {
		batches, _, err := sched.TargetBatches(full.Spec, full.Lib, full.BatchFrac)
		if err != nil {
			return nil, err
		}
		warmup := full.Trace.Slice(0, 10*time.Second)
		rate := warmup.MeanRate()
		if rate <= 0 {
			rate = full.Trace.MeanRate()
		}
		workers, err = sched.ProvisionWorkers(full.Spec, full.Lib, batches, rate,
			full.Scaling.Headroom, full.Scaling.MinWorkers, full.Scaling.MaxWorkers)
		if err != nil {
			return nil, err
		}
		sched.ApplyGPUBudget(workers, full.Scaling.TotalGPUs, full.Scaling.MinWorkers)
	}

	r := &Runner{cfg: full}
	var exec sched.Executor
	switch {
	case full.Engine == EngineClassic:
		r.eng = sim.New(full.Seed)
		exec = sched.NewSimExecutor(r.eng)
	case full.Remote != nil:
		// One lane group of a multi-group topology: the full cluster is
		// built as a replica, but only owned lanes (module k with
		// k % Groups == Group) execute; everything else arrives through the
		// transport's lockstep exchanges.
		rt := full.Remote
		r.topo = sched.Topology{Groups: rt.Groups, Group: rt.Group}
		r.tr = rt.Transport
		shx, err := sched.NewShardedExecutorTopo(full.Spec.N(), full.Shards, full.NetDelay, r.topo, r.tr)
		if err != nil {
			return nil, err
		}
		r.shx = shx
		exec = shx
	default:
		// Lane engine: one event lane per module, up to Shards workers,
		// conservative lookahead = the per-hop network delay.
		r.shx = sched.NewShardedExecutor(full.Spec.N(), full.Shards, full.NetDelay)
		exec = r.shx
	}
	cl, err := sched.New(sched.Config{
		Spec:             full.Spec,
		Lib:              full.Lib,
		PolicyName:       full.PolicyName,
		Seed:             full.Seed,
		BatchFrac:        full.BatchFrac,
		Workers:          workers,
		QueueWindow:      full.QueueWindow,
		WaitReservoir:    full.WaitReservoir,
		NetDelay:         full.NetDelay,
		JitterPct:        full.JitterPct,
		Scaling:          full.Scaling,
		Probes:           full.Probes,
		Lambda:           full.Lambda,
		EstimatorSamples: full.EstimatorSamples,
		PriorityWindow:   full.PriorityWindow,
		OnDone:           r.onDone,
		OnDrop:           r.onDrop,
		Resolve:          r.resolveRequest,
	}, exec)
	if err != nil {
		return nil, err
	}
	r.cl = cl
	return r, nil
}

// onDone observes a request completing the sink module.
func (r *Runner) onDone(req *sched.Request, now time.Duration) {
	r.outstanding--
	if r.cfg.Probes.Decomposition {
		r.sampleCounter++
		if r.sampleCounter%r.cfg.Probes.SampleEvery == 0 {
			r.sumQ = append(r.sumQ, req.SumQ.Seconds())
			r.sumW = append(r.sumW, req.SumW.Seconds())
			r.sumD = append(r.sumD, req.SumD.Seconds())
		}
	}
}

// onDrop observes a request dropped at a module.
func (r *Runner) onDrop(req *sched.Request, k int, now time.Duration) {
	r.outstanding--
}

// resolveRequest maps a wire request ID back onto this process's slab — the
// Resolve hook multi-group topologies use to rehydrate requests that crossed
// the lane-group boundary by ID.
func (r *Runner) resolveRequest(id uint64) *sched.Request {
	if id < uint64(len(r.slab)) {
		return &r.slab[id]
	}
	return nil
}

// inject schedules all trace arrivals as client sends into the source
// module. Requests live in one slab — a single allocation instead of one
// per arrival — and r.requests points into it (pointer identity per request
// is preserved for the run's lifetime, which the core relies on). In a
// multi-group topology every replica injects the full trace: request i is
// &slab[i] on every group, so wire IDs resolve to the same logical request
// everywhere.
func (r *Runner) inject() {
	slo := r.cfg.Spec.SLO
	r.slab = make([]sched.Request, r.cfg.Trace.Len())
	slab := r.slab
	r.requests = make([]*sched.Request, 0, len(slab))
	for i, at := range r.cfg.Trace.Arrivals {
		req := &slab[i]
		req.ID = uint64(i)
		req.Send = at
		req.Deadline = at + slo
		req.DropModule = -1
		r.requests = append(r.requests, req)
		r.outstanding++
		r.cl.Inject(req, at)
	}
}

// drained reports whether the run can stop ticking.
func (r *Runner) drained(now time.Duration) bool {
	return r.outstanding <= 0 && now >= r.cfg.Trace.Duration
}

// Run executes the simulation to completion and returns the results.
func (r *Runner) Run() (*Result, error) {
	if r.requests != nil {
		return nil, fmt.Errorf("simgpu: runner already ran")
	}
	r.inject()

	if r.shx != nil {
		r.runSharded()
		if err := r.shx.Err(); err != nil {
			return nil, err
		}
		if r.tr != nil {
			if err := r.finishExchange(); err != nil {
				r.tr.Abort(err)
				return nil, err
			}
		}
	} else {
		r.runClassic()
	}
	return r.buildResult(), nil
}

// finishExchange all-gathers the end-of-run per-module reports so this
// replica can assemble the full result: probes and peak workers live only on
// the owning group, and the global event count is the replicated control-lane
// count plus every group's owned-lane count.
func (r *Runner) finishExchange() error {
	n := r.cl.N()
	msg := sched.FinishMsg{Group: int32(r.topo.Group), LaneFired: r.shx.FiredLanes()}
	for k := 0; k < n; k++ {
		if !r.topo.Owns(k) {
			continue
		}
		p := r.cl.Probes(k)
		msg.Reports = append(msg.Reports, sched.ModuleReport{
			Mod:         int32(k),
			Peak:        r.cl.PeakWorkers(k),
			QueueDelay:  p.QueueDelay,
			Load:        p.Load,
			Mode:        p.Mode,
			Budget:      p.Budget,
			Remain:      p.Remain,
			WaitSamples: p.WaitSamples,
		})
	}
	all, err := r.tr.Finish(msg)
	if err != nil {
		return err
	}
	r.reports = make(map[int]*sched.ModuleReport, n)
	r.fired = r.shx.FiredControl()
	for i := range all {
		r.fired += all[i].LaneFired
		for j := range all[i].Reports {
			rep := &all[i].Reports[j]
			r.reports[int(rep.Mod)] = rep
		}
	}
	if len(r.reports) != n {
		return fmt.Errorf("simgpu: finish exchange covered %d of %d modules", len(r.reports), n)
	}
	return nil
}

// peakWorkers returns module k's peak worker count, consulting the owner's
// report in a multi-group topology.
func (r *Runner) peakWorkers(k int) int {
	if r.reports != nil {
		return r.reports[k].Peak
	}
	return r.cl.PeakWorkers(k)
}

// moduleProbes returns module k's probe outputs, consulting the owner's
// report in a multi-group topology (probe series fill only on the owner).
func (r *Runner) moduleProbes(k int) sched.ModuleProbes {
	if r.reports != nil {
		rep := r.reports[k]
		return sched.ModuleProbes{
			QueueDelay:  rep.QueueDelay,
			Load:        rep.Load,
			Mode:        rep.Mode,
			Budget:      rep.Budget,
			Remain:      rep.Remain,
			WaitSamples: rep.WaitSamples,
		}
	}
	return r.cl.Probes(k)
}

// runClassic drives the single global event heap.
func (r *Runner) runClassic() {
	// State synchronization tick (§4.1 steps ①-③).
	r.eng.Ticker(r.cfg.SyncPeriod, "sync", func(e *sim.Engine) bool {
		now := e.Now()
		r.cl.SyncTick(now)
		return !r.drained(now)
	})

	// Scaling engine tick. With a TotalGPUs budget, per-module demand is
	// granted proportionally when the cluster is oversubscribed.
	if r.cfg.Scaling.Enabled {
		r.eng.Ticker(r.cfg.Scaling.Period, "scale", func(e *sim.Engine) bool {
			now := e.Now()
			r.cl.ScaleTick(now)
			return !r.drained(now)
		})
	}

	// Injected machine failures (§2).
	for _, f := range r.cfg.Failures {
		f := f
		r.eng.Schedule(f.At, "failure", func(e *sim.Engine) {
			r.cl.Crash(f.Module, e.Now(), f.Count)
		})
	}

	r.eng.Run(0)
}

// runSharded drives the per-module lane engine. Sync, scaling and failure
// events run on the executor's serial control lane (every module lane
// parked), exactly the cross-module context they need.
func (r *Runner) runSharded() {
	// The ControlFlush calls are multi-group no-ops made explicit: a tick's
	// drops/completions are owner-local until exchanged, and the drained
	// predicate right after must read the committed counts — on every
	// replica — or the groups could disagree on when the run ends.
	r.shx.Ticker(r.cfg.SyncPeriod, "sync", func(now time.Duration) bool {
		r.cl.SyncTick(now)
		r.cl.ControlFlush()
		return !r.drained(now)
	})
	if r.cfg.Scaling.Enabled {
		r.shx.Ticker(r.cfg.Scaling.Period, "scale", func(now time.Duration) bool {
			r.cl.ScaleTick(now)
			r.cl.ControlFlush()
			return !r.drained(now)
		})
	}
	for _, f := range r.cfg.Failures {
		f := f
		r.shx.Schedule(f.At, "failure", func(now time.Duration) {
			r.cl.Crash(f.Module, now, f.Count)
		})
	}
	r.shx.Run()
}

func (r *Runner) buildResult() *Result {
	col := metrics.NewCollector(r.cfg.Spec.SLO, r.cfg.Spec.N())
	col.Grow(len(r.requests))
	for _, req := range r.requests {
		rec := metrics.Record{
			Send:       req.Send,
			GPUTime:    req.GPU,
			DropModule: -1,
		}
		switch {
		case req.Finished:
			rec.Done = req.DoneAt
			if req.DoneAt-req.Send <= r.cfg.Spec.SLO {
				rec.Outcome = metrics.Good
			} else {
				rec.Outcome = metrics.Late
			}
		case req.Dropped:
			rec.Done = req.DropAt
			rec.Outcome = metrics.DroppedOutcome
			rec.DropModule = req.DropModule
		default:
			// Stranded in-flight at drain (should not happen; count against
			// the policy rather than hiding it).
			rec.Done = req.Send
			rec.Outcome = metrics.DroppedOutcome
		}
		col.Add(rec)
	}

	fired := uint64(0)
	switch {
	case r.reports != nil:
		fired = r.fired // control events once + every group's owned lanes
	case r.shx != nil:
		fired = r.shx.Fired()
	case r.eng != nil:
		fired = r.eng.Fired()
	}
	res := &Result{
		Collector:  col,
		Summary:    col.Summary(),
		PolicyName: r.cfg.PolicyName,
		Workload:   r.cfg.Spec.App + "-" + r.cfg.Trace.Name,
		SimEvents:  fired,
		SumQ:       r.sumQ,
		SumW:       r.sumW,
		SumD:       r.sumD,
	}
	n := r.cl.N()
	res.TargetBatches = make([]int, n)
	res.ProfiledDurs = make([]time.Duration, n)
	res.PeakWorkers = make([]int, n)
	for k := 0; k < n; k++ {
		res.TargetBatches[k] = r.cl.TargetBatch(k)
		res.ProfiledDurs[k] = r.cl.ProfiledDur(k)
		res.PeakWorkers[k] = r.peakWorkers(k)
	}
	if r.cfg.Probes.QueueDelay {
		for k := 0; k < n; k++ {
			res.QueueDelay = append(res.QueueDelay, r.moduleProbes(k).QueueDelay)
		}
	}
	if r.cfg.Probes.LoadFactor {
		// Report the source module's controller (the module workload bursts
		// hit first; Fig. 13 plots a single representative module).
		src := r.moduleProbes(r.cfg.Spec.Source())
		res.LoadFactor = src.Load
		res.ModeSeries = src.Mode
		if pr, ok := r.cl.Policy().(interface {
			Priority(int) *core.PriorityController
		}); ok {
			total := 0
			for k := 0; k < n; k++ {
				if pc := pr.Priority(k); pc != nil {
					total += pc.Switches()
				}
			}
			res.PrioritySwitches = total
		}
	}
	if r.cfg.Probes.Budget {
		for k := 0; k < n; k++ {
			p := r.moduleProbes(k)
			res.Consumed = append(res.Consumed, p.Budget)
			res.Remaining = append(res.Remaining, p.Remain)
		}
	}
	if r.cfg.Probes.Decomposition {
		for k := 0; k < n; k++ {
			res.WaitSamples = append(res.WaitSamples, r.moduleProbes(k).WaitSamples)
		}
	}
	return res
}

// Run is the one-call entry point: build a runner from cfg and execute it.
// Config.Groups > 1 fans the run out over in-process lane-group replicas.
func Run(cfg Config) (*Result, error) {
	if cfg.Remote == nil {
		full, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		if full.Groups > 1 {
			return runGroups(cfg, full.Groups)
		}
	}
	r, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// runGroups executes one run as `groups` in-process lane-group replicas over
// a memTransport fabric, then verifies determinism invariant #5: every
// replica must assemble the bit-identical result. Divergence is an error,
// never a silent pick-one.
//
// Each goroutine gets the RAW config: withDefaults is not idempotent (the
// NetDelay <= 0 sentinels), so normalization must happen exactly once per
// replica — identically — rather than once here and again inside.
func runGroups(cfg Config, groups int) (*Result, error) {
	trs := sched.NewMemTransports(groups)
	results := make([]*Result, groups)
	errs := make([]error, groups)
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gcfg := cfg
			gcfg.Groups = 0
			gcfg.Remote = &RemoteTopology{Groups: groups, Group: g, Transport: trs[g]}
			res, err := Run(gcfg)
			if err != nil {
				// Poison the fabric so peer groups abort instead of hanging
				// at their next exchange.
				trs[g].Abort(err)
				errs[g] = err
				return
			}
			results[g] = res
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("simgpu: lane group %d/%d: %w", g, groups, err)
		}
	}
	var ref []byte
	for g, res := range results {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(res); err != nil {
			return nil, fmt.Errorf("simgpu: encoding lane group %d result: %w", g, err)
		}
		if g == 0 {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			return nil, fmt.Errorf("simgpu: lane-group divergence: group %d result differs from group 0 (%d vs %d encoded bytes); determinism invariant #5 violated", g, buf.Len(), len(ref))
		}
	}
	return results[0], nil
}
