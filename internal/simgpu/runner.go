package simgpu

import (
	"fmt"
	"math/rand"
	"time"

	"pard/internal/core"
	"pard/internal/metrics"
	"pard/internal/pipeline"
	"pard/internal/policy"
	"pard/internal/sim"
)

// Result is everything one simulation run produces.
type Result struct {
	// Collector holds the per-request outcomes and derived metrics.
	Collector *metrics.Collector
	// Summary is Collector.Summary(), precomputed.
	Summary metrics.Summary
	// PolicyName echoes the configured policy.
	PolicyName string
	// Workload is "<app>-<trace>".
	Workload string

	// TargetBatches and ProfiledDurs are the offline-profiling outputs used.
	TargetBatches []int
	ProfiledDurs  []time.Duration
	// PeakWorkers is the maximum concurrently active workers per module.
	PeakWorkers []int

	// Probe outputs (nil unless the corresponding probe was enabled).
	QueueDelay       []*metrics.Series // per module, ms
	LoadFactor       *metrics.Series   // module LoadModule's μ
	ModeSeries       *metrics.Series   // 0=LBF, 1=HBF
	Consumed         []*metrics.Series // per module consumed budget, ms
	Remaining        []*metrics.Series // per module remaining budget at arrival, ms
	WaitSamples      [][]float64       // per module batch-wait samples, seconds
	SumQ, SumW, SumD []float64         // per completed request, seconds

	// PrioritySwitches counts HBF↔LBF transitions (Fig. 13).
	PrioritySwitches int
	// SimEvents is the number of engine events dispatched.
	SimEvents uint64
}

// Runner executes one configuration.
type Runner struct {
	cfg Config
	eng *sim.Engine
	pol policy.Policy

	modules []*module
	board   *core.Board

	// Independent deterministic random streams.
	execRng *rand.Rand // execution jitter
	statRng *rand.Rand // reservoirs
	pathRng *rand.Rand // exclusive DAG branch choice
	jitter  float64

	requests    []*Request
	outstanding int
	traceDone   bool

	sumQ, sumW, sumD []float64
	sampleCounter    int
}

// New validates the configuration and assembles the cluster.
func New(cfg Config) (*Runner, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	batches, durs, err := TargetBatches(full.Spec, full.Lib, full.BatchFrac)
	if err != nil {
		return nil, err
	}

	r := &Runner{
		cfg:     full,
		eng:     sim.New(full.Seed),
		board:   core.NewBoard(full.Spec.N()),
		execRng: rand.New(rand.NewSource(full.Seed + 1)),
		statRng: rand.New(rand.NewSource(full.Seed + 2)),
		pathRng: rand.New(rand.NewSource(full.Seed + 3)),
		jitter:  full.JitterPct,
	}

	// Build the policy.
	estCfg := core.DefaultEstimatorConfig()
	if full.Lambda > 0 {
		estCfg.Lambda = full.Lambda
	}
	if full.EstimatorSamples > 0 {
		estCfg.Samples = full.EstimatorSamples
	}
	priCfg := core.DefaultPriorityConfig()
	if full.PriorityWindow > 0 {
		priCfg.Window = full.PriorityWindow
	}
	pol, err := policy.New(full.PolicyName, policy.Setup{
		Spec:   full.Spec,
		Durs:   durs,
		Rng:    rand.New(rand.NewSource(full.Seed + 4)),
		EstCfg: &estCfg,
		PriCfg: &priCfg,
	})
	if err != nil {
		return nil, err
	}
	r.pol = pol

	// Provision workers: fixed counts, or sized for the early trace rate and
	// left to the scaling engine.
	workers := full.FixedWorkers
	if workers == nil {
		warmup := full.Trace.Slice(0, 10*time.Second)
		rate := warmup.MeanRate()
		if rate <= 0 {
			rate = full.Trace.MeanRate()
		}
		workers, err = ProvisionWorkers(full.Spec, full.Lib, batches, rate,
			full.Scaling.Headroom, full.Scaling.MinWorkers, full.Scaling.MaxWorkers)
		if err != nil {
			return nil, err
		}
		ApplyGPUBudget(workers, full.Scaling.TotalGPUs, full.Scaling.MinWorkers)
	}

	for k := 0; k < full.Spec.N(); k++ {
		model, err := full.Lib.Get(full.Spec.Modules[k].Name)
		if err != nil {
			return nil, err
		}
		m := newModule(r, k, full.Spec.Modules[k], model, batches[k], durs[k], workers[k])
		r.modules = append(r.modules, m)
	}
	return r, nil
}

// scheduleBatchEnd registers the batch-completion event.
func (r *Runner) scheduleBatchEnd(w *worker, at time.Duration) {
	r.eng.Schedule(at, "batch-end", func(e *sim.Engine) { w.batchEnd(e.Now()) })
}

// scheduleWarmup wakes a cold-started worker.
func (r *Runner) scheduleWarmup(w *worker, at time.Duration) {
	r.eng.Schedule(at, "warmup", func(e *sim.Engine) { w.pump(e.Now()) })
}

// drop marks a request dropped at module k.
func (r *Runner) drop(req *Request, k int, now time.Duration) {
	if req.Dropped || req.Finished {
		return
	}
	req.Dropped = true
	req.DropModule = k
	req.DropAt = now
	r.modules[k].drops++
	r.outstanding--
}

// forward routes a request leaving module k: split to successors, merge at
// fan-in, or complete at the sink.
func (r *Runner) forward(req *Request, k int, now time.Duration) {
	mod := r.cfg.Spec.Modules[k]
	if len(mod.Subs) == 0 {
		r.complete(req, now)
		return
	}
	subs := mod.Subs
	if mod.Exclusive {
		subs = []int{mod.Subs[r.pickBranch(mod)]}
		req.ExpectedMerge = 1
	} else if len(subs) > 1 {
		req.ExpectedMerge = len(subs)
	}
	arrive := now + r.cfg.NetDelay
	for _, sub := range subs {
		target := r.modules[sub]
		r.eng.Schedule(arrive, "hop", func(e *sim.Engine) { target.receive(req, e.Now()) })
	}
}

// pickBranch selects one successor index for an exclusive fan-out.
func (r *Runner) pickBranch(mod pipeline.Module) int {
	if len(mod.BranchProb) == 0 {
		return r.pathRng.Intn(len(mod.Subs))
	}
	x := r.pathRng.Float64()
	acc := 0.0
	for i, p := range mod.BranchProb {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(mod.Subs) - 1
}

// complete finalizes a request that finished the sink module.
func (r *Runner) complete(req *Request, now time.Duration) {
	if req.Dropped || req.Finished {
		return
	}
	req.Finished = true
	req.DoneAt = now
	r.outstanding--
	if r.cfg.Probes.Decomposition {
		r.sampleCounter++
		if r.sampleCounter%r.cfg.Probes.SampleEvery == 0 {
			r.sumQ = append(r.sumQ, req.SumQ.Seconds())
			r.sumW = append(r.sumW, req.SumW.Seconds())
			r.sumD = append(r.sumD, req.SumD.Seconds())
		}
	}
}

// inject schedules all trace arrivals as client sends into the source
// module.
func (r *Runner) inject() {
	src := r.modules[r.cfg.Spec.Source()]
	slo := r.cfg.Spec.SLO
	net := r.cfg.NetDelay
	r.requests = make([]*Request, 0, r.cfg.Trace.Len())
	for i, at := range r.cfg.Trace.Arrivals {
		req := &Request{
			ID:         uint64(i),
			Send:       at,
			Deadline:   at + slo,
			DropModule: -1,
		}
		r.requests = append(r.requests, req)
		r.outstanding++
		r.eng.Schedule(at+net, "arrive", func(e *sim.Engine) { src.receive(req, e.Now()) })
	}
}

// drained reports whether the run can stop ticking.
func (r *Runner) drained(now time.Duration) bool {
	return r.outstanding <= 0 && now >= r.cfg.Trace.Duration
}

// Run executes the simulation to completion and returns the results.
func (r *Runner) Run() (*Result, error) {
	if r.requests != nil {
		return nil, fmt.Errorf("simgpu: runner already ran")
	}
	r.inject()

	// State synchronization tick (§4.1 steps ①-③).
	r.eng.Ticker(r.cfg.SyncPeriod, "sync", func(e *sim.Engine) bool {
		now := e.Now()
		for _, m := range r.modules {
			m.publish(now, r.board)
		}
		r.pol.OnSync(now, r.board)
		for _, m := range r.modules {
			m.probePriority(now, r.board)
		}
		return !r.drained(now)
	})

	// Scaling engine tick. With a TotalGPUs budget, per-module demand is
	// granted proportionally when the cluster is oversubscribed.
	if r.cfg.Scaling.Enabled {
		r.eng.Ticker(r.cfg.Scaling.Period, "scale", func(e *sim.Engine) bool {
			now := e.Now()
			desired := make([]int, len(r.modules))
			for k, m := range r.modules {
				desired[k] = m.desiredWorkers(now)
			}
			ApplyGPUBudget(desired, r.cfg.Scaling.TotalGPUs, r.cfg.Scaling.MinWorkers)
			for k, m := range r.modules {
				m.applyScale(now, desired[k])
			}
			return !r.drained(now)
		})
	}

	// Injected machine failures (§2).
	for _, f := range r.cfg.Failures {
		f := f
		r.eng.Schedule(f.At, "failure", func(e *sim.Engine) {
			r.modules[f.Module].crash(e.Now(), f.Count)
		})
	}

	r.eng.Run(0)

	return r.buildResult(), nil
}

func (r *Runner) buildResult() *Result {
	col := metrics.NewCollector(r.cfg.Spec.SLO, r.cfg.Spec.N())
	for _, req := range r.requests {
		rec := metrics.Record{
			Send:       req.Send,
			GPUTime:    req.GPU,
			DropModule: -1,
		}
		switch {
		case req.Finished:
			rec.Done = req.DoneAt
			if req.DoneAt-req.Send <= r.cfg.Spec.SLO {
				rec.Outcome = metrics.Good
			} else {
				rec.Outcome = metrics.Late
			}
		case req.Dropped:
			rec.Done = req.DropAt
			rec.Outcome = metrics.DroppedOutcome
			rec.DropModule = req.DropModule
		default:
			// Stranded in-flight at drain (should not happen; count against
			// the policy rather than hiding it).
			rec.Done = req.Send
			rec.Outcome = metrics.DroppedOutcome
		}
		col.Add(rec)
	}

	res := &Result{
		Collector:  col,
		Summary:    col.Summary(),
		PolicyName: r.cfg.PolicyName,
		Workload:   r.cfg.Spec.App + "-" + r.cfg.Trace.Name,
		SimEvents:  r.eng.Fired(),
		SumQ:       r.sumQ,
		SumW:       r.sumW,
		SumD:       r.sumD,
	}
	res.TargetBatches = make([]int, len(r.modules))
	res.ProfiledDurs = make([]time.Duration, len(r.modules))
	res.PeakWorkers = make([]int, len(r.modules))
	for k, m := range r.modules {
		res.TargetBatches[k] = m.targetBatch
		res.ProfiledDurs[k] = m.targetDur
		res.PeakWorkers[k] = m.peakWorkers
	}
	if r.cfg.Probes.QueueDelay {
		for _, m := range r.modules {
			res.QueueDelay = append(res.QueueDelay, m.queueDelayProbe)
		}
	}
	if r.cfg.Probes.LoadFactor {
		// Report the source module's controller (the module workload bursts
		// hit first; Fig. 13 plots a single representative module).
		src := r.modules[r.cfg.Spec.Source()]
		res.LoadFactor = src.loadProbe
		res.ModeSeries = src.modeProbe
		if pr, ok := r.pol.(interface {
			Priority(int) *core.PriorityController
		}); ok {
			total := 0
			for k := range r.modules {
				if pc := pr.Priority(k); pc != nil {
					total += pc.Switches()
				}
			}
			res.PrioritySwitches = total
		}
	}
	if r.cfg.Probes.Budget {
		for _, m := range r.modules {
			res.Consumed = append(res.Consumed, m.budgetProbe)
			res.Remaining = append(res.Remaining, m.remainProbe)
		}
	}
	if r.cfg.Probes.Decomposition {
		for _, m := range r.modules {
			res.WaitSamples = append(res.WaitSamples, append([]float64(nil), m.waitProbe.Values()...))
		}
	}
	return res
}

// Run is the one-call entry point: build a runner from cfg and execute it.
func Run(cfg Config) (*Result, error) {
	r, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}
