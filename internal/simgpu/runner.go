package simgpu

import (
	"fmt"
	"time"

	"pard/internal/core"
	"pard/internal/metrics"
	"pard/internal/sched"
	"pard/internal/sim"
)

// Result is everything one simulation run produces.
type Result struct {
	// Collector holds the per-request outcomes and derived metrics.
	Collector *metrics.Collector
	// Summary is Collector.Summary(), precomputed.
	Summary metrics.Summary
	// PolicyName echoes the configured policy.
	PolicyName string
	// Workload is "<app>-<trace>".
	Workload string

	// TargetBatches and ProfiledDurs are the offline-profiling outputs used.
	TargetBatches []int
	ProfiledDurs  []time.Duration
	// PeakWorkers is the maximum concurrently active workers per module.
	PeakWorkers []int

	// Probe outputs (nil unless the corresponding probe was enabled).
	QueueDelay       []*metrics.Series // per module, ms
	LoadFactor       *metrics.Series   // module LoadModule's μ
	ModeSeries       *metrics.Series   // 0=LBF, 1=HBF
	Consumed         []*metrics.Series // per module consumed budget, ms
	Remaining        []*metrics.Series // per module remaining budget at arrival, ms
	WaitSamples      [][]float64       // per module batch-wait samples, seconds
	SumQ, SumW, SumD []float64         // per completed request, seconds

	// PrioritySwitches counts HBF↔LBF transitions (Fig. 13).
	PrioritySwitches int
	// SimEvents is the number of engine events dispatched.
	SimEvents uint64
}

// Runner executes one configuration: the shared scheduling core
// (internal/sched) instantiated on a virtual clock — the per-module lane
// engine by default, or the deprecated classic global event heap when
// cfg.Engine is EngineClassic — plus trace injection and result
// collection.
type Runner struct {
	cfg Config
	eng *sim.Engine            // classic engine (nil on the lane engine)
	shx *sched.ShardedExecutor // lane engine (nil when classic)
	cl  *sched.Cluster

	requests    []*sched.Request
	outstanding int

	sumQ, sumW, sumD []float64
	sampleCounter    int
}

// New validates the configuration and assembles the cluster.
func New(cfg Config) (*Runner, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	// Provision workers: fixed counts, or sized for the early trace rate and
	// left to the scaling engine.
	workers := full.FixedWorkers
	if workers == nil {
		batches, _, err := sched.TargetBatches(full.Spec, full.Lib, full.BatchFrac)
		if err != nil {
			return nil, err
		}
		warmup := full.Trace.Slice(0, 10*time.Second)
		rate := warmup.MeanRate()
		if rate <= 0 {
			rate = full.Trace.MeanRate()
		}
		workers, err = sched.ProvisionWorkers(full.Spec, full.Lib, batches, rate,
			full.Scaling.Headroom, full.Scaling.MinWorkers, full.Scaling.MaxWorkers)
		if err != nil {
			return nil, err
		}
		sched.ApplyGPUBudget(workers, full.Scaling.TotalGPUs, full.Scaling.MinWorkers)
	}

	r := &Runner{cfg: full}
	var exec sched.Executor
	if full.Engine == EngineClassic {
		r.eng = sim.New(full.Seed)
		exec = sched.NewSimExecutor(r.eng)
	} else {
		// Lane engine: one event lane per module, up to Shards workers,
		// conservative lookahead = the per-hop network delay.
		r.shx = sched.NewShardedExecutor(full.Spec.N(), full.Shards, full.NetDelay)
		exec = r.shx
	}
	cl, err := sched.New(sched.Config{
		Spec:             full.Spec,
		Lib:              full.Lib,
		PolicyName:       full.PolicyName,
		Seed:             full.Seed,
		BatchFrac:        full.BatchFrac,
		Workers:          workers,
		QueueWindow:      full.QueueWindow,
		WaitReservoir:    full.WaitReservoir,
		NetDelay:         full.NetDelay,
		JitterPct:        full.JitterPct,
		Scaling:          full.Scaling,
		Probes:           full.Probes,
		Lambda:           full.Lambda,
		EstimatorSamples: full.EstimatorSamples,
		PriorityWindow:   full.PriorityWindow,
		OnDone:           r.onDone,
		OnDrop:           r.onDrop,
	}, exec)
	if err != nil {
		return nil, err
	}
	r.cl = cl
	return r, nil
}

// onDone observes a request completing the sink module.
func (r *Runner) onDone(req *sched.Request, now time.Duration) {
	r.outstanding--
	if r.cfg.Probes.Decomposition {
		r.sampleCounter++
		if r.sampleCounter%r.cfg.Probes.SampleEvery == 0 {
			r.sumQ = append(r.sumQ, req.SumQ.Seconds())
			r.sumW = append(r.sumW, req.SumW.Seconds())
			r.sumD = append(r.sumD, req.SumD.Seconds())
		}
	}
}

// onDrop observes a request dropped at a module.
func (r *Runner) onDrop(req *sched.Request, k int, now time.Duration) {
	r.outstanding--
}

// inject schedules all trace arrivals as client sends into the source
// module. Requests live in one slab — a single allocation instead of one
// per arrival — and r.requests points into it (pointer identity per request
// is preserved for the run's lifetime, which the core relies on).
func (r *Runner) inject() {
	slo := r.cfg.Spec.SLO
	slab := make([]sched.Request, r.cfg.Trace.Len())
	r.requests = make([]*sched.Request, 0, len(slab))
	for i, at := range r.cfg.Trace.Arrivals {
		req := &slab[i]
		req.ID = uint64(i)
		req.Send = at
		req.Deadline = at + slo
		req.DropModule = -1
		r.requests = append(r.requests, req)
		r.outstanding++
		r.cl.Inject(req, at)
	}
}

// drained reports whether the run can stop ticking.
func (r *Runner) drained(now time.Duration) bool {
	return r.outstanding <= 0 && now >= r.cfg.Trace.Duration
}

// Run executes the simulation to completion and returns the results.
func (r *Runner) Run() (*Result, error) {
	if r.requests != nil {
		return nil, fmt.Errorf("simgpu: runner already ran")
	}
	r.inject()

	if r.shx != nil {
		r.runSharded()
	} else {
		r.runClassic()
	}
	return r.buildResult(), nil
}

// runClassic drives the single global event heap.
func (r *Runner) runClassic() {
	// State synchronization tick (§4.1 steps ①-③).
	r.eng.Ticker(r.cfg.SyncPeriod, "sync", func(e *sim.Engine) bool {
		now := e.Now()
		r.cl.SyncTick(now)
		return !r.drained(now)
	})

	// Scaling engine tick. With a TotalGPUs budget, per-module demand is
	// granted proportionally when the cluster is oversubscribed.
	if r.cfg.Scaling.Enabled {
		r.eng.Ticker(r.cfg.Scaling.Period, "scale", func(e *sim.Engine) bool {
			now := e.Now()
			r.cl.ScaleTick(now)
			return !r.drained(now)
		})
	}

	// Injected machine failures (§2).
	for _, f := range r.cfg.Failures {
		f := f
		r.eng.Schedule(f.At, "failure", func(e *sim.Engine) {
			r.cl.Crash(f.Module, e.Now(), f.Count)
		})
	}

	r.eng.Run(0)
}

// runSharded drives the per-module lane engine. Sync, scaling and failure
// events run on the executor's serial control lane (every module lane
// parked), exactly the cross-module context they need.
func (r *Runner) runSharded() {
	r.shx.Ticker(r.cfg.SyncPeriod, "sync", func(now time.Duration) bool {
		r.cl.SyncTick(now)
		return !r.drained(now)
	})
	if r.cfg.Scaling.Enabled {
		r.shx.Ticker(r.cfg.Scaling.Period, "scale", func(now time.Duration) bool {
			r.cl.ScaleTick(now)
			return !r.drained(now)
		})
	}
	for _, f := range r.cfg.Failures {
		f := f
		r.shx.Schedule(f.At, "failure", func(now time.Duration) {
			r.cl.Crash(f.Module, now, f.Count)
		})
	}
	r.shx.Run()
}

func (r *Runner) buildResult() *Result {
	col := metrics.NewCollector(r.cfg.Spec.SLO, r.cfg.Spec.N())
	col.Grow(len(r.requests))
	for _, req := range r.requests {
		rec := metrics.Record{
			Send:       req.Send,
			GPUTime:    req.GPU,
			DropModule: -1,
		}
		switch {
		case req.Finished:
			rec.Done = req.DoneAt
			if req.DoneAt-req.Send <= r.cfg.Spec.SLO {
				rec.Outcome = metrics.Good
			} else {
				rec.Outcome = metrics.Late
			}
		case req.Dropped:
			rec.Done = req.DropAt
			rec.Outcome = metrics.DroppedOutcome
			rec.DropModule = req.DropModule
		default:
			// Stranded in-flight at drain (should not happen; count against
			// the policy rather than hiding it).
			rec.Done = req.Send
			rec.Outcome = metrics.DroppedOutcome
		}
		col.Add(rec)
	}

	fired := uint64(0)
	if r.shx != nil {
		fired = r.shx.Fired()
	} else if r.eng != nil {
		fired = r.eng.Fired()
	}
	res := &Result{
		Collector:  col,
		Summary:    col.Summary(),
		PolicyName: r.cfg.PolicyName,
		Workload:   r.cfg.Spec.App + "-" + r.cfg.Trace.Name,
		SimEvents:  fired,
		SumQ:       r.sumQ,
		SumW:       r.sumW,
		SumD:       r.sumD,
	}
	n := r.cl.N()
	res.TargetBatches = make([]int, n)
	res.ProfiledDurs = make([]time.Duration, n)
	res.PeakWorkers = make([]int, n)
	for k := 0; k < n; k++ {
		res.TargetBatches[k] = r.cl.TargetBatch(k)
		res.ProfiledDurs[k] = r.cl.ProfiledDur(k)
		res.PeakWorkers[k] = r.cl.PeakWorkers(k)
	}
	if r.cfg.Probes.QueueDelay {
		for k := 0; k < n; k++ {
			res.QueueDelay = append(res.QueueDelay, r.cl.Probes(k).QueueDelay)
		}
	}
	if r.cfg.Probes.LoadFactor {
		// Report the source module's controller (the module workload bursts
		// hit first; Fig. 13 plots a single representative module).
		src := r.cl.Probes(r.cfg.Spec.Source())
		res.LoadFactor = src.Load
		res.ModeSeries = src.Mode
		if pr, ok := r.cl.Policy().(interface {
			Priority(int) *core.PriorityController
		}); ok {
			total := 0
			for k := 0; k < n; k++ {
				if pc := pr.Priority(k); pc != nil {
					total += pc.Switches()
				}
			}
			res.PrioritySwitches = total
		}
	}
	if r.cfg.Probes.Budget {
		for k := 0; k < n; k++ {
			p := r.cl.Probes(k)
			res.Consumed = append(res.Consumed, p.Budget)
			res.Remaining = append(res.Remaining, p.Remain)
		}
	}
	if r.cfg.Probes.Decomposition {
		for k := 0; k < n; k++ {
			res.WaitSamples = append(res.WaitSamples, r.cl.Probes(k).WaitSamples)
		}
	}
	return res
}

// Run is the one-call entry point: build a runner from cfg and execute it.
func Run(cfg Config) (*Result, error) {
	r, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}
