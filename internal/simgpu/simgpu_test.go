package simgpu

import (
	"math"
	"testing"
	"time"

	"pard/internal/pipeline"
	"pard/internal/profile"
	"pard/internal/trace"
)

func steadyTrace(rate float64, dur time.Duration, seed int64) *trace.Trace {
	return trace.MustGenerate(trace.Config{Kind: trace.Steady, Duration: dur, PeakRate: rate, Seed: seed})
}

func runLV(t *testing.T, pol string, tr *trace.Trace, mutate func(*Config)) *Result {
	t.Helper()
	cfg := Config{
		Spec:       pipeline.LV(),
		PolicyName: pol,
		Trace:      tr,
		Seed:       42,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	tr := steadyTrace(50, 5*time.Second, 1)
	bad := []Config{
		{},
		{Spec: pipeline.LV()},
		{Spec: pipeline.LV(), Trace: tr, PolicyName: "bogus"},
		{Spec: pipeline.LV(), Trace: tr, FixedWorkers: []int{1, 2}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

// TestNetDelaySentinel pins the zero-vs-default disambiguation: an unset
// NetDelay selects the 1 ms default, while a negative value requests an
// explicitly zero per-hop delay (mirroring the JitterPct sentinel). Pre-fix
// a negative value was rejected, so callers wanting in-process hops had to
// smuggle in time.Nanosecond.
func TestNetDelaySentinel(t *testing.T) {
	tr := steadyTrace(50, 5*time.Second, 1)
	base := Config{Spec: pipeline.LV(), Trace: tr}

	cfg := base
	out, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if out.NetDelay != time.Millisecond {
		t.Fatalf("unset NetDelay defaulted to %v, want 1ms", out.NetDelay)
	}

	cfg = base
	cfg.NetDelay = -1
	out, err = cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if out.NetDelay != 0 {
		t.Fatalf("NetDelay -1 resolved to %v, want explicit 0", out.NetDelay)
	}

	cfg = base
	cfg.NetDelay = 3 * time.Millisecond
	out, err = cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if out.NetDelay != 3*time.Millisecond {
		t.Fatalf("explicit NetDelay resolved to %v, want 3ms", out.NetDelay)
	}
}

// TestNetDelayZeroMatchesNanosecond pins the CompareSim migration: replaying
// the same trace with the explicit-zero sentinel must classify requests
// identically to the old time.Nanosecond workaround (a 1 ns hop never spans
// a scheduling decision boundary).
func TestNetDelayZeroMatchesNanosecond(t *testing.T) {
	tr := steadyTrace(80, 5*time.Second, 7)
	runWith := func(nd time.Duration) *Result {
		return runLV(t, "pard", tr, func(c *Config) {
			c.NetDelay = nd
			c.JitterPct = -1
			c.FixedWorkers = []int{2, 2, 2, 2, 2}
		})
	}
	a, b := runWith(-1), runWith(time.Nanosecond)
	if a.Summary.Good != b.Summary.Good ||
		a.Summary.Late != b.Summary.Late ||
		a.Summary.Dropped != b.Summary.Dropped ||
		a.Summary.Total != b.Summary.Total {
		t.Fatalf("explicit-zero run (good=%d late=%d dropped=%d total=%d) differs from 1ns run (good=%d late=%d dropped=%d total=%d)",
			a.Summary.Good, a.Summary.Late, a.Summary.Dropped, a.Summary.Total,
			b.Summary.Good, b.Summary.Late, b.Summary.Dropped, b.Summary.Total)
	}
}

func TestTargetBatches(t *testing.T) {
	spec := pipeline.LV()
	lib := profile.DefaultLibrary()
	batches, durs, err := TargetBatches(spec, lib, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != spec.N() || len(durs) != spec.N() {
		t.Fatalf("lengths: %d %d", len(batches), len(durs))
	}
	var sum time.Duration
	for k, b := range batches {
		if b < 1 {
			t.Fatalf("module %d batch %d", k, b)
		}
		m, _ := lib.Get(spec.Modules[k].Name)
		if durs[k] != m.Duration(b) {
			t.Fatalf("module %d dur mismatch", k)
		}
		sum += durs[k]
	}
	// One pass of pure execution must fit comfortably inside the SLO.
	if sum > spec.SLO/2 {
		t.Fatalf("Σd = %v too large for SLO %v", sum, spec.SLO)
	}
	if _, _, err := TargetBatches(spec, lib, 0); err == nil {
		t.Fatal("frac=0 accepted")
	}
}

func TestProvisionWorkers(t *testing.T) {
	spec := pipeline.LV()
	lib := profile.DefaultLibrary()
	batches, _, _ := TargetBatches(spec, lib, 0.25)
	ws, err := ProvisionWorkers(spec, lib, batches, 1000, 1.2, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range ws {
		m, _ := lib.Get(spec.Modules[k].Name)
		cap := float64(w) * m.Throughput(batches[k])
		if w < 16 && cap < 1000 {
			t.Fatalf("module %d underprovisioned: %d workers, capacity %v", k, w, cap)
		}
	}
}

func TestLightLoadNoDrops(t *testing.T) {
	tr := steadyTrace(100, 30*time.Second, 7)
	for _, pol := range []string{"pard", "nexus", "clipper++", "naive", "pard-fcfs"} {
		res := runLV(t, pol, tr, nil)
		if res.Summary.Total != tr.Len() {
			t.Fatalf("%s: %d records for %d arrivals", pol, res.Summary.Total, tr.Len())
		}
		if res.Summary.DropRate > 0.01 {
			t.Fatalf("%s: drop rate %v under light load", pol, res.Summary.DropRate)
		}
		if res.Summary.Good < int(0.99*float64(tr.Len())) {
			t.Fatalf("%s: only %d/%d good", pol, res.Summary.Good, tr.Len())
		}
	}
}

func TestConservation(t *testing.T) {
	tr := steadyTrace(600, 20*time.Second, 3)
	for _, pol := range []string{"pard", "nexus", "naive"} {
		res := runLV(t, pol, tr, func(c *Config) {
			c.FixedWorkers = []int{1, 1, 1, 1, 1}
		})
		s := res.Summary
		if s.Good+s.Late+s.Dropped != s.Total {
			t.Fatalf("%s: %d+%d+%d != %d", pol, s.Good, s.Late, s.Dropped, s.Total)
		}
		if s.Total != tr.Len() {
			t.Fatalf("%s: lost requests: %d vs %d", pol, s.Total, tr.Len())
		}
	}
}

func TestOverloadDropsProportionally(t *testing.T) {
	// Fixed single workers; offered ≈ 2× the bottleneck capacity. A sane
	// policy sheds roughly the excess and keeps goodput near capacity.
	tr := steadyTrace(700, 30*time.Second, 5)
	res := runLV(t, "pard", tr, func(c *Config) {
		c.FixedWorkers = []int{1, 1, 1, 1, 1}
	})
	s := res.Summary
	// One worker per module sustains ≈130 req/s; offered 700 req/s, so a
	// sane policy drops roughly the excess (≈0.8) without collapsing.
	if s.DropRate < 0.5 || s.DropRate > 0.95 {
		t.Fatalf("drop rate %v outside plausible overload band", s.DropRate)
	}
	// Goodput should track capacity (≈130/700 ≈ 19% of offered), not collapse.
	if s.Good < tr.Len()/10 {
		t.Fatalf("goodput collapsed: %d/%d good", s.Good, s.Total)
	}
}

func TestNaiveOverloadCollapses(t *testing.T) {
	tr := steadyTrace(700, 30*time.Second, 5)
	naive := runLV(t, "naive", tr, func(c *Config) { c.FixedWorkers = []int{1, 1, 1, 1, 1} })
	pard := runLV(t, "pard", tr, func(c *Config) { c.FixedWorkers = []int{1, 1, 1, 1, 1} })
	// Without dropping, queueing makes nearly everything late.
	if naive.Summary.Good >= pard.Summary.Good {
		t.Fatalf("naive good %d >= pard good %d under overload",
			naive.Summary.Good, pard.Summary.Good)
	}
	if naive.Summary.InvalidRate <= pard.Summary.InvalidRate {
		t.Fatalf("naive invalid %v <= pard invalid %v",
			naive.Summary.InvalidRate, pard.Summary.InvalidRate)
	}
}

func TestDeterminism(t *testing.T) {
	tr := steadyTrace(400, 15*time.Second, 9)
	a := runLV(t, "pard", tr, nil)
	b := runLV(t, "pard", tr, nil)
	if a.Summary.Good != b.Summary.Good || a.Summary.Dropped != b.Summary.Dropped ||
		a.Summary.Late != b.Summary.Late || a.Summary.GPUTotal != b.Summary.GPUTotal ||
		a.SimEvents != b.SimEvents {
		t.Fatalf("runs diverged: %+v vs %+v", a.Summary, b.Summary)
	}
}

func TestPARDDropsEarlierThanNexus(t *testing.T) {
	// Under the bursty workload with autoscaling (the paper's setting), the
	// reactive policy concentrates drops in the latter half of the pipeline
	// (Fig. 2c) while PARD shifts them toward the first modules (Fig. 11b),
	// and PARD drops less and wastes less GPU time overall.
	tr := trace.MustGenerate(trace.Config{Kind: trace.Tweet, Duration: 400 * time.Second, Seed: 11})
	nexus := runLV(t, "nexus", tr, nil)
	pard := runLV(t, "pard", tr, nil)

	lateHalf := func(r *Result) float64 {
		p := r.Summary.PerModuleDropPct
		return p[3] + p[4]
	}
	if lateHalf(nexus) <= lateHalf(pard) {
		t.Fatalf("nexus should drop later than pard: nexus %v vs pard %v",
			nexus.Summary.PerModuleDropPct, pard.Summary.PerModuleDropPct)
	}
	if pard.Summary.DropRate >= nexus.Summary.DropRate {
		t.Fatalf("pard drop %v >= nexus drop %v",
			pard.Summary.DropRate, nexus.Summary.DropRate)
	}
	// And PARD wastes less GPU time on doomed requests.
	if pard.Summary.InvalidRate >= nexus.Summary.InvalidRate {
		t.Fatalf("pard invalid %v >= nexus invalid %v",
			pard.Summary.InvalidRate, nexus.Summary.InvalidRate)
	}
}

func TestDAGPipelineRuns(t *testing.T) {
	tr := steadyTrace(100, 20*time.Second, 13)
	cfg := Config{Spec: pipeline.DA(), PolicyName: "pard", Trace: tr, Seed: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Total != tr.Len() {
		t.Fatalf("lost requests in DAG: %d vs %d", s.Total, tr.Len())
	}
	if s.Good+s.Late+s.Dropped != s.Total {
		t.Fatalf("DAG conservation broken: %+v", s)
	}
	if s.DropRate > 0.05 {
		t.Fatalf("DAG drop rate %v under light load", s.DropRate)
	}
}

func TestDAGDynamicPathRuns(t *testing.T) {
	tr := steadyTrace(100, 20*time.Second, 17)
	cfg := Config{Spec: pipeline.DADynamic(0.5), PolicyName: "pard", Trace: tr, Seed: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Total != tr.Len() {
		t.Fatalf("lost requests: %d vs %d", res.Summary.Total, tr.Len())
	}
	if res.Summary.Good+res.Summary.Late+res.Summary.Dropped != res.Summary.Total {
		t.Fatal("conservation broken on dynamic DAG")
	}
}

func TestScalingReactsToBurst(t *testing.T) {
	tr := trace.MustGenerate(trace.Config{Kind: trace.Step, Duration: 60 * time.Second, PeakRate: 600, Seed: 19})
	cfg := Config{Spec: pipeline.LV(), PolicyName: "pard", Trace: tr, Seed: 1}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := r.cl.ActiveWorkers(0)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakWorkers[0] <= initial {
		t.Fatalf("scaling did not add workers: initial %d, peak %d", initial, res.PeakWorkers[0])
	}
}

func TestColdStartDelaysServing(t *testing.T) {
	// A step trace with scaling: during the cold-start window after the
	// step, drops/lateness occur; a system with instant scaling would not
	// show them. We simply verify the step run has a worse minimum window
	// than the steady run at the same final rate.
	step := trace.MustGenerate(trace.Config{Kind: trace.Step, Duration: 60 * time.Second, PeakRate: 800, Seed: 23})
	steady := steadyTrace(400, 60*time.Second, 23)
	resStep := runLV(t, "pard", step, nil)
	resSteady := runLV(t, "pard", steady, nil)
	if resStep.Collector.MinNormalizedGoodput(5*time.Second) > resSteady.Collector.MinNormalizedGoodput(5*time.Second) {
		t.Fatalf("step trace should stress the scaler harder: step %v vs steady %v",
			resStep.Collector.MinNormalizedGoodput(5*time.Second),
			resSteady.Collector.MinNormalizedGoodput(5*time.Second))
	}
}

func TestProbesPopulate(t *testing.T) {
	tr := steadyTrace(300, 15*time.Second, 29)
	res := runLV(t, "pard", tr, func(c *Config) {
		c.Probes = ProbeConfig{QueueDelay: true, LoadFactor: true, Budget: true, Decomposition: true, SampleEvery: 1}
	})
	if len(res.QueueDelay) != 5 || res.QueueDelay[0].Len() == 0 {
		t.Fatal("queue delay probe empty")
	}
	if res.LoadFactor == nil || res.LoadFactor.Len() == 0 {
		t.Fatal("load factor probe empty")
	}
	if res.ModeSeries == nil || res.ModeSeries.Len() != res.LoadFactor.Len() {
		t.Fatal("mode probe mismatched")
	}
	if len(res.Consumed) != 5 || res.Consumed[0].Len() == 0 {
		t.Fatal("consumed budget probe empty")
	}
	if len(res.Remaining) != 5 || res.Remaining[0].Len() == 0 {
		t.Fatal("remaining budget probe empty")
	}
	if len(res.WaitSamples) != 5 || len(res.WaitSamples[0]) == 0 {
		t.Fatal("wait samples empty")
	}
	if len(res.SumQ) == 0 || len(res.SumQ) != len(res.SumW) || len(res.SumW) != len(res.SumD) {
		t.Fatal("decomposition samples missing")
	}
}

func TestBatchWaitWithinExecutionBounds(t *testing.T) {
	tr := steadyTrace(400, 15*time.Second, 31)
	res := runLV(t, "pard", tr, func(c *Config) {
		c.Probes = ProbeConfig{Decomposition: true, SampleEvery: 1}
		c.JitterPct = -1 // disable jitter so d is exact
	})
	for k, samples := range res.WaitSamples {
		maxD := res.ProfiledDurs[k].Seconds() * 1.05
		for _, w := range samples {
			if w < 0 || w > maxD+1e-9 {
				t.Fatalf("module %d batch wait %v outside [0, %v]", k, w, maxD)
			}
		}
	}
}

func TestHBFvsLBFDiffer(t *testing.T) {
	tr := steadyTrace(700, 25*time.Second, 37)
	fixed := func(c *Config) { c.FixedWorkers = []int{1, 1, 1, 1, 1} }
	hbf := runLV(t, "pard-hbf", tr, fixed)
	lbf := runLV(t, "pard-lbf", tr, fixed)
	if hbf.Summary.Good == lbf.Summary.Good && hbf.Summary.Dropped == lbf.Summary.Dropped {
		t.Fatal("HBF and LBF produced identical outcomes under overload; priority has no effect")
	}
}

func TestGPUAccounting(t *testing.T) {
	tr := steadyTrace(200, 10*time.Second, 41)
	res := runLV(t, "pard", tr, nil)
	s := res.Summary
	if s.GPUTotal <= 0 {
		t.Fatal("no GPU time recorded")
	}
	// 5 modules; per-request GPU time is bounded by Σ d(1) (worst: solo
	// batches) and must be positive for completed requests.
	perReq := s.GPUTotal / time.Duration(s.Total)
	if perReq <= 0 || perReq > 200*time.Millisecond {
		t.Fatalf("per-request GPU time %v implausible", perReq)
	}
	if s.GPUWasted > s.GPUTotal {
		t.Fatal("wasted exceeds total")
	}
}

func TestRunnerCannotRunTwice(t *testing.T) {
	tr := steadyTrace(50, 5*time.Second, 43)
	r, err := New(Config{Spec: pipeline.LV(), PolicyName: "pard", Trace: tr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestStressGoodputSaturates(t *testing.T) {
	// As offered load rises past fixed capacity, goodput should level off
	// rather than collapse (Fig. 14a shape for PARD).
	var prevGood float64
	for i, rate := range []float64{200, 500, 900} {
		tr := steadyTrace(rate, 20*time.Second, 47)
		res := runLV(t, "pard", tr, func(c *Config) { c.FixedWorkers = []int{2, 2, 2, 2, 2} })
		good := float64(res.Summary.Good) / res.Collector.End().Seconds()
		if i > 0 && good < prevGood*0.7 {
			t.Fatalf("goodput collapsed at rate %v: %v after %v", rate, good, prevGood)
		}
		prevGood = good
	}
	_ = math.Inf
}

func BenchmarkSimLVSteady(b *testing.B) {
	tr := steadyTrace(300, 10*time.Second, 1)
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{Spec: pipeline.LV(), PolicyName: "pard", Trace: tr, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}
