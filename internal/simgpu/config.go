package simgpu

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"pard/internal/pipeline"
	"pard/internal/profile"
	"pard/internal/sched"
	"pard/internal/trace"
)

// The cluster mechanics (scaling engine, probes, failures, offline batch
// profiling) live in the shared scheduling core; these aliases keep the
// simulator's configuration surface stable.
type (
	// ScalingConfig controls the per-module resource scaling engine.
	ScalingConfig = sched.ScalingConfig
	// ProbeConfig enables optional high-volume recordings.
	ProbeConfig = sched.ProbeConfig
	// Failure describes one injected machine failure.
	Failure = sched.Failure
	// Request is one client request traversing the pipeline.
	Request = sched.Request
)

// DefaultScaling returns the scaling configuration used by the experiments.
func DefaultScaling() ScalingConfig { return sched.DefaultScaling() }

// TargetBatches picks each module's target batch size; see
// sched.TargetBatches.
func TargetBatches(spec *pipeline.Spec, lib *profile.Library, frac float64) ([]int, []time.Duration, error) {
	return sched.TargetBatches(spec, lib, frac)
}

// ApplyGPUBudget scales per-module worker demands down proportionally when
// their sum exceeds the cluster budget; see sched.ApplyGPUBudget.
func ApplyGPUBudget(desired []int, budget, min int) {
	sched.ApplyGPUBudget(desired, budget, min)
}

// ProvisionWorkers computes per-module worker counts able to sustain the
// given request rate; see sched.ProvisionWorkers.
func ProvisionWorkers(spec *pipeline.Spec, lib *profile.Library, batches []int, rate, headroom float64, min, max int) ([]int, error) {
	return sched.ProvisionWorkers(spec, lib, batches, rate, headroom, min, max)
}

// Config fully describes one simulation run.
type Config struct {
	Spec *pipeline.Spec
	Lib  *profile.Library
	// PolicyName selects the drop policy (see policy.Names()).
	PolicyName string
	Trace      *trace.Trace
	Seed       int64

	// BatchFrac sets the SLO share available for one pass of pure execution
	// when choosing target batch sizes: the per-module execution budget is
	// SLO·BatchFrac·d₁(k)/Σd₁. Default 0.5 (the paper-like regime where one execution pass consumes half the SLO).
	BatchFrac float64
	// SyncPeriod is the state-synchronization interval (default 1 s, §5.4).
	SyncPeriod time.Duration
	// QueueWindow is the sliding window for recent queueing delay
	// (default 5 s, §4.2 footnote 4).
	QueueWindow time.Duration
	// WaitReservoir is the per-module batch-wait sample reservoir size.
	WaitReservoir int
	// NetDelay is the per-hop transfer delay between modules. Zero selects
	// the 1 ms default; a negative value requests an explicit zero delay
	// (in-process hops, e.g. the live server's simulator twin) — mirroring
	// the JitterPct sentinel.
	NetDelay time.Duration
	// JitterPct overrides per-model execution jitter when >= 0.
	JitterPct float64
	// Scaling configures the resource scaling engine.
	Scaling ScalingConfig
	// FixedWorkers, when non-nil, pins per-module worker counts and
	// disables scaling (stress tests).
	FixedWorkers []int
	// Probes selects optional recordings.
	Probes ProbeConfig
	// Failures injects worker failures (§2: "unpredictable events such as
	// workload bursts or machine failure").
	Failures []Failure
	// Lambda overrides the PARD estimator quantile when > 0 (Fig. 14c).
	Lambda float64
	// EstimatorSamples overrides the Monte-Carlo sample count when > 0.
	EstimatorSamples int
	// PriorityWindow overrides the priority smoothing window when > 0
	// (Fig. 14d).
	PriorityWindow time.Duration
	// Engine selects the execution engine. "" or EngineLane (the default)
	// runs the lane engine: per-module event lanes advanced by up to Shards
	// concurrent workers under a low-watermark barrier, with cross-module
	// events exchanged through deterministic ordered mailboxes.
	// EngineClassic keeps the deprecated single global event heap for one
	// deprecation cycle; it will be removed. The two engines'
	// equal-timestamp tie-breaking differs, so their results are not
	// interchangeable: sharded results are compared against Shards == 1
	// (the differential harness), never against the classic heap.
	Engine string
	// Shards is the lane engine's worker count. 0 (the default) and 1 both
	// run the lanes sequentially; N > 1 drains them with N concurrent
	// workers. Results are identical for every shard count (Shards <= 1 is
	// the sequential baseline of the differential harness). Must be 0 with
	// Engine == EngineClassic: the classic heap has no lanes to shard.
	Shards int
	// Groups splits the lane engine's per-module lanes into N lane groups,
	// each running a full cluster replica in lockstep over an in-process
	// transport (module k belongs to group k % Groups). Results are
	// bit-identical for every group count — determinism invariant #5 — and
	// 0 and 1 both mean the ungrouped fast path. Lane engine only. The
	// cross-host form of the same topology is configured via Remote.
	Groups int
	// Remote, when non-nil, runs THIS process as one lane group of a
	// cross-host simulation over the given transport (set by the
	// internal/dist glue — cmd/pard-sim -hosts / -join-sim — not by
	// users). Mutually exclusive with Groups.
	Remote *RemoteTopology
}

// RemoteTopology places this process in a cross-host lane-group topology.
type RemoteTopology struct {
	// Groups is the total lane-group (process) count; Group is this
	// process's index in [0, Groups).
	Groups, Group int
	// Transport carries the lockstep exchanges, typically internal/dist's
	// framed gob transport over TCP.
	Transport sched.Transport
}

// Engine names accepted by Config.Engine.
const (
	// EngineLane is the default: per-module event lanes with deterministic
	// ordered mailboxes (see Config.Shards for the worker count).
	EngineLane = "lane"
	// EngineClassic is the deprecated single global event heap, kept for
	// one deprecation cycle to reproduce pre-flip numbers.
	EngineClassic = "classic"
)

// Warnf emits deprecation warnings; a package variable so tests (and hosts
// with their own logging) can capture it. It must be safe to call
// concurrently.
var Warnf = func(format string, args ...any) { log.Printf(format, args...) }

// classicWarned collapses the classic-engine deprecation warning to one
// emission per process: a sweep instantiates hundreds of runners, and the
// warning is about the selection, not each run. (An atomic rather than a
// sync.Once so tests can reset it.)
var classicWarned atomic.Bool

// warnClassicDeprecated announces the classic engine's scheduled removal the
// first time a run selects it. The deprecation cycle granted at the
// lane-engine default flip is now over: removal lands in the next PR.
func warnClassicDeprecated() {
	if classicWarned.CompareAndSwap(false, true) {
		Warnf("simgpu: engine %q is deprecated and will be removed in the next PR; "+
			"the lane engine (the default) is bit-stable across shard counts and lane-group "+
			"topologies and faster — drop -engine/Engine overrides to migrate now", EngineClassic)
	}
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Spec == nil {
		return out, fmt.Errorf("simgpu: config needs a pipeline spec")
	}
	if err := out.Spec.Validate(); err != nil {
		return out, err
	}
	if out.Lib == nil {
		out.Lib = profile.DefaultLibrary()
	}
	if out.PolicyName == "" {
		out.PolicyName = "pard"
	}
	if out.Trace == nil || out.Trace.Len() == 0 {
		return out, fmt.Errorf("simgpu: config needs a non-empty trace")
	}
	if out.BatchFrac <= 0 {
		out.BatchFrac = 0.5
	}
	if out.SyncPeriod <= 0 {
		out.SyncPeriod = time.Second
	}
	if out.QueueWindow <= 0 {
		out.QueueWindow = 5 * time.Second
	}
	if out.WaitReservoir <= 0 {
		out.WaitReservoir = 512
	}
	if out.NetDelay == 0 {
		out.NetDelay = time.Millisecond
	}
	if out.NetDelay < 0 {
		out.NetDelay = 0 // explicit zero delay, mirroring JitterPct < 0
	}
	if out.JitterPct == 0 {
		out.JitterPct = 0.05
	}
	if out.JitterPct < 0 {
		out.JitterPct = 0
	}
	if out.Scaling == (ScalingConfig{}) {
		out.Scaling = DefaultScaling()
	}
	if out.Probes.SampleEvery <= 0 {
		out.Probes.SampleEvery = 1
	}
	for i, f := range out.Failures {
		if f.Module < 0 || f.Module >= out.Spec.N() {
			return out, fmt.Errorf("simgpu: failure %d: module %d out of range", i, f.Module)
		}
		if f.At < 0 || f.Count < 1 {
			return out, fmt.Errorf("simgpu: failure %d: need At >= 0 and Count >= 1", i)
		}
	}
	if out.Shards < 0 {
		return out, fmt.Errorf("simgpu: negative shard count %d", out.Shards)
	}
	if out.Groups < 0 {
		return out, fmt.Errorf("simgpu: negative lane-group count %d", out.Groups)
	}
	if out.Remote != nil {
		if out.Groups > 1 {
			return out, fmt.Errorf("simgpu: Groups and Remote are mutually exclusive")
		}
		if out.Remote.Groups < 2 || out.Remote.Group < 0 || out.Remote.Group >= out.Remote.Groups {
			return out, fmt.Errorf("simgpu: remote lane group %d/%d out of range", out.Remote.Group, out.Remote.Groups)
		}
		if out.Remote.Transport == nil {
			return out, fmt.Errorf("simgpu: remote topology needs a transport")
		}
	}
	// A group per module is the finest useful split; clamping keeps the
	// owner mapping (k % Groups) total. Normalized identically on every
	// host, so shipping the raw config cross-host is safe.
	if out.Groups > out.Spec.N() {
		out.Groups = out.Spec.N()
	}
	switch out.Engine {
	case "", EngineLane:
		out.Engine = EngineLane
		if out.Shards == 0 {
			out.Shards = 1 // lane engine, sequential
		}
	case EngineClassic:
		if out.Shards != 0 {
			return out, fmt.Errorf("simgpu: engine %q has no lanes to shard (got Shards=%d); drop Shards or use the lane engine", EngineClassic, out.Shards)
		}
		if out.Groups > 1 || out.Remote != nil {
			return out, fmt.Errorf("simgpu: engine %q has no lanes to group; lane-group topologies need the lane engine", EngineClassic)
		}
		warnClassicDeprecated()
	default:
		return out, fmt.Errorf("simgpu: unknown engine %q (want %q or %q)", out.Engine, EngineLane, EngineClassic)
	}
	if out.FixedWorkers != nil {
		if len(out.FixedWorkers) != out.Spec.N() {
			return out, fmt.Errorf("simgpu: %d fixed worker counts for %d modules",
				len(out.FixedWorkers), out.Spec.N())
		}
		out.Scaling.Enabled = false
	}
	return out, nil
}
