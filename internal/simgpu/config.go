package simgpu

import (
	"fmt"
	"math"
	"time"

	"pard/internal/pipeline"
	"pard/internal/profile"
	"pard/internal/trace"
)

// ScalingConfig controls the per-module resource scaling engine.
type ScalingConfig struct {
	// Enabled turns autoscaling on. When off, worker counts stay at their
	// initial provisioning (the Fig. 14a stress-test setup).
	Enabled bool
	// Period is how often desired worker counts are re-evaluated.
	Period time.Duration
	// ColdStart is the model cold-start delay before a new worker serves
	// (§2: "resources cannot scale up instantly due to model cold starts").
	ColdStart time.Duration
	// Headroom multiplies the measured rate when computing desired workers.
	Headroom float64
	// MaxWorkers caps workers per module (cluster capacity).
	MaxWorkers int
	// MinWorkers floors workers per module.
	MinWorkers int
	// TotalGPUs, when positive, bounds the sum of workers across all
	// modules (the paper's 64-GPU cluster constraint). When the aggregate
	// demand exceeds it, capacity is granted proportionally to demand.
	TotalGPUs int
}

// DefaultScaling returns the scaling configuration used by the experiments.
func DefaultScaling() ScalingConfig {
	return ScalingConfig{
		Enabled:    true,
		Period:     3 * time.Second,
		ColdStart:  10 * time.Second,
		Headroom:   1.2,
		MaxWorkers: 4,
		MinWorkers: 1,
	}
}

// ProbeConfig enables optional high-volume recordings.
type ProbeConfig struct {
	// QueueDelay records each module's average queueing delay per sync tick
	// (Fig. 12c).
	QueueDelay bool
	// LoadFactor records module 0's load factor μ and priority mode per sync
	// tick (Fig. 13).
	LoadFactor bool
	// Budget records per-module consumed latency budget of completed
	// requests over time (Fig. 12a) and remaining budgets at module arrival
	// (Fig. 12d).
	Budget bool
	// Decomposition records per-request ΣQ/ΣW/ΣD samples (Fig. 12b) and
	// per-module batch-wait samples (Fig. 6).
	Decomposition bool
	// SampleEvery subsamples per-request probes (1 = every request).
	SampleEvery int
}

// Config fully describes one simulation run.
type Config struct {
	Spec *pipeline.Spec
	Lib  *profile.Library
	// PolicyName selects the drop policy (see policy.Names()).
	PolicyName string
	Trace      *trace.Trace
	Seed       int64

	// BatchFrac sets the SLO share available for one pass of pure execution
	// when choosing target batch sizes: the per-module execution budget is
	// SLO·BatchFrac·d₁(k)/Σd₁. Default 0.5 (the paper-like regime where one execution pass consumes half the SLO).
	BatchFrac float64
	// SyncPeriod is the state-synchronization interval (default 1 s, §5.4).
	SyncPeriod time.Duration
	// QueueWindow is the sliding window for recent queueing delay
	// (default 5 s, §4.2 footnote 4).
	QueueWindow time.Duration
	// WaitReservoir is the per-module batch-wait sample reservoir size.
	WaitReservoir int
	// NetDelay is the per-hop transfer delay between modules.
	NetDelay time.Duration
	// JitterPct overrides per-model execution jitter when >= 0.
	JitterPct float64
	// Scaling configures the resource scaling engine.
	Scaling ScalingConfig
	// FixedWorkers, when non-nil, pins per-module worker counts and
	// disables scaling (stress tests).
	FixedWorkers []int
	// Probes selects optional recordings.
	Probes ProbeConfig
	// Failures injects worker failures (§2: "unpredictable events such as
	// workload bursts or machine failure").
	Failures []Failure
	// Lambda overrides the PARD estimator quantile when > 0 (Fig. 14c).
	Lambda float64
	// EstimatorSamples overrides the Monte-Carlo sample count when > 0.
	EstimatorSamples int
	// PriorityWindow overrides the priority smoothing window when > 0
	// (Fig. 14d).
	PriorityWindow time.Duration
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Spec == nil {
		return out, fmt.Errorf("simgpu: config needs a pipeline spec")
	}
	if err := out.Spec.Validate(); err != nil {
		return out, err
	}
	if out.Lib == nil {
		out.Lib = profile.DefaultLibrary()
	}
	if out.PolicyName == "" {
		out.PolicyName = "pard"
	}
	if out.Trace == nil || out.Trace.Len() == 0 {
		return out, fmt.Errorf("simgpu: config needs a non-empty trace")
	}
	if out.BatchFrac <= 0 {
		out.BatchFrac = 0.5
	}
	if out.SyncPeriod <= 0 {
		out.SyncPeriod = time.Second
	}
	if out.QueueWindow <= 0 {
		out.QueueWindow = 5 * time.Second
	}
	if out.WaitReservoir <= 0 {
		out.WaitReservoir = 512
	}
	if out.NetDelay < 0 {
		return out, fmt.Errorf("simgpu: negative net delay %v", out.NetDelay)
	}
	if out.NetDelay == 0 {
		out.NetDelay = time.Millisecond
	}
	if out.JitterPct == 0 {
		out.JitterPct = 0.05
	}
	if out.JitterPct < 0 {
		out.JitterPct = 0
	}
	if out.Scaling == (ScalingConfig{}) {
		out.Scaling = DefaultScaling()
	}
	if out.Probes.SampleEvery <= 0 {
		out.Probes.SampleEvery = 1
	}
	for i, f := range out.Failures {
		if f.Module < 0 || f.Module >= out.Spec.N() {
			return out, fmt.Errorf("simgpu: failure %d: module %d out of range", i, f.Module)
		}
		if f.At < 0 || f.Count < 1 {
			return out, fmt.Errorf("simgpu: failure %d: need At >= 0 and Count >= 1", i)
		}
	}
	if out.FixedWorkers != nil {
		if len(out.FixedWorkers) != out.Spec.N() {
			return out, fmt.Errorf("simgpu: %d fixed worker counts for %d modules",
				len(out.FixedWorkers), out.Spec.N())
		}
		out.Scaling.Enabled = false
	}
	return out, nil
}

// Failure describes one injected machine failure: at time At, Count workers
// of module Module crash. Requests queued or executing on a crashed worker
// at that moment are lost (recorded as drops at that module); replacement
// capacity arrives only through the scaling engine's cold-start path.
type Failure struct {
	At     time.Duration
	Module int
	Count  int
}

// TargetBatches picks each module's target batch size: the largest batch
// whose profiled duration fits the module's share of the execution budget
// SLO·frac, distributed proportionally to single-request durations. It
// returns the batch sizes and their profiled durations.
func TargetBatches(spec *pipeline.Spec, lib *profile.Library, frac float64) ([]int, []time.Duration, error) {
	if frac <= 0 || frac > 1 {
		return nil, nil, fmt.Errorf("simgpu: batch fraction %v outside (0,1]", frac)
	}
	n := spec.N()
	models := make([]profile.Model, n)
	var d1Sum time.Duration
	for k := 0; k < n; k++ {
		m, err := lib.Get(spec.Modules[k].Name)
		if err != nil {
			return nil, nil, err
		}
		models[k] = m
		d1Sum += m.Duration(1)
	}
	batches := make([]int, n)
	durs := make([]time.Duration, n)
	budget := time.Duration(float64(spec.SLO) * frac)
	for k := 0; k < n; k++ {
		share := time.Duration(float64(budget) * float64(models[k].Duration(1)) / float64(d1Sum))
		b := models[k].BestBatch(share)
		if b < 1 {
			b = 1
		}
		batches[k] = b
		durs[k] = models[k].Duration(b)
	}
	return batches, durs, nil
}

// ApplyGPUBudget scales per-module worker demands down proportionally when
// their sum exceeds the cluster budget, flooring each module at min. A
// budget <= 0 means unlimited.
func ApplyGPUBudget(desired []int, budget, min int) {
	if budget <= 0 {
		return
	}
	total := 0
	for _, d := range desired {
		total += d
	}
	if total <= budget {
		return
	}
	for k := range desired {
		grant := desired[k] * budget / total
		if grant < min {
			grant = min
		}
		desired[k] = grant
	}
}

// ProvisionWorkers computes per-module worker counts able to sustain the
// given request rate with the target batch sizes, clamped to [min, max].
func ProvisionWorkers(spec *pipeline.Spec, lib *profile.Library, batches []int, rate, headroom float64, min, max int) ([]int, error) {
	n := spec.N()
	out := make([]int, n)
	for k := 0; k < n; k++ {
		m, err := lib.Get(spec.Modules[k].Name)
		if err != nil {
			return nil, err
		}
		tp := m.Throughput(batches[k])
		w := int(math.Ceil(rate * headroom / tp))
		if w < min {
			w = min
		}
		if w > max {
			w = max
		}
		out[k] = w
	}
	return out, nil
}
