package metrics

import (
	"testing"
	"time"
)

// These tests pin the finalization hot path: deriving windowed metrics and
// latency quantiles from a populated collector reuses the collector's
// scratch buffers, so repeated per-width sweeps (Figs. 2, 8-10) allocate
// nothing — or, for LatencyQuantiles, only the caller-owned result slice.

func populatedCollector(n int) *Collector {
	c := NewCollector(100*time.Millisecond, 3)
	c.Grow(n)
	for i := 0; i < n; i++ {
		send := time.Duration(i) * 10 * time.Millisecond
		r := Record{Send: send, Done: send + 50*time.Millisecond, GPUTime: time.Millisecond}
		switch i % 5 {
		case 3:
			r.Outcome = Late
			r.Done = send + 200*time.Millisecond
		case 4:
			r.Outcome = DroppedOutcome
			r.DropModule = i % 3
		}
		c.Add(r)
	}
	return c
}

// TestAllocsWindowMetrics: the window-derived scalar metrics reuse the
// collector's window scratch after the first call.
func TestAllocsWindowMetrics(t *testing.T) {
	c := populatedCollector(2000)
	width := time.Second
	// Warm the scratch.
	c.MinNormalizedGoodput(width)

	avg := testing.AllocsPerRun(100, func() {
		c.MinNormalizedGoodput(width)
		c.DropRateAtMinGoodput(width)
		c.MaxDropRate(width)
	})
	if avg != 0 {
		t.Fatalf("window metric derivation allocates %.1f per round, want 0", avg)
	}
}

// TestAllocsLatencyQuantiles: after warm-up, the only allocation is the
// returned result slice — the latency scratch is reused and sorting is
// in-place.
func TestAllocsLatencyQuantiles(t *testing.T) {
	c := populatedCollector(2000)
	qs := []float64{0.5, 0.9, 0.99}
	c.LatencyQuantiles(qs...)

	avg := testing.AllocsPerRun(100, func() {
		c.LatencyQuantiles(qs...)
	})
	if avg > 1 {
		t.Fatalf("LatencyQuantiles allocates %.1f per call, want <= 1 (the result slice)", avg)
	}
}
