package metrics

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func mkCollector() *Collector { return NewCollector(500*time.Millisecond, 5) }

func TestNewCollectorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCollector(0, 5) },
		func() { NewCollector(time.Second, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSummaryCounts(t *testing.T) {
	c := mkCollector()
	c.Add(Record{Send: 0, Done: 100 * time.Millisecond, Outcome: Good, DropModule: -1, GPUTime: 10 * time.Millisecond})
	c.Add(Record{Send: 0, Done: 900 * time.Millisecond, Outcome: Late, DropModule: -1, GPUTime: 30 * time.Millisecond})
	c.Add(Record{Send: time.Second, Done: time.Second + 50*time.Millisecond, Outcome: DroppedOutcome, DropModule: 2, GPUTime: 20 * time.Millisecond})
	s := c.Summary()
	if s.Total != 3 || s.Good != 1 || s.Late != 1 || s.Dropped != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.DropRate-2.0/3) > 1e-12 {
		t.Fatalf("drop rate = %v", s.DropRate)
	}
	// Invalid: (30+20)/(10+30+20).
	if math.Abs(s.InvalidRate-50.0/60) > 1e-12 {
		t.Fatalf("invalid rate = %v", s.InvalidRate)
	}
	if s.PerModuleDropPct[2] != 100 {
		t.Fatalf("per-module drops = %v", s.PerModuleDropPct)
	}
}

func TestSummaryEmpty(t *testing.T) {
	c := mkCollector()
	s := c.Summary()
	if s.Total != 0 || s.DropRate != 0 || s.InvalidRate != 0 || s.Goodput != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if len(s.PerModuleDropPct) != 5 {
		t.Fatalf("per-module slice = %v", s.PerModuleDropPct)
	}
}

func TestGoodputPerSecond(t *testing.T) {
	c := mkCollector()
	// 10 good requests completing over 2 seconds → goodput 5/s.
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 200 * time.Millisecond
		c.Add(Record{Send: at, Done: at + 100*time.Millisecond, Outcome: Good, DropModule: -1})
	}
	s := c.Summary()
	want := 10 / c.End().Seconds()
	if math.Abs(s.Goodput-want) > 1e-9 {
		t.Fatalf("goodput = %v, want %v", s.Goodput, want)
	}
}

func TestWindows(t *testing.T) {
	c := mkCollector()
	// Window 0: 2 good. Window 1: 1 good 1 bad. Window 2: 2 bad.
	add := func(sendSec float64, o Outcome) {
		at := time.Duration(sendSec * float64(time.Second))
		c.Add(Record{Send: at, Done: at, Outcome: o, DropModule: 0})
	}
	add(0.1, Good)
	add(0.2, Good)
	add(1.1, Good)
	add(1.2, DroppedOutcome)
	add(2.1, Late)
	add(2.2, DroppedOutcome)
	ws := c.Windows(time.Second)
	if len(ws) != 3 {
		t.Fatalf("windows = %d", len(ws))
	}
	if g := ws[0].NormalizedGoodput(); g != 1 {
		t.Fatalf("w0 goodput = %v", g)
	}
	if g := ws[1].NormalizedGoodput(); g != 0.5 {
		t.Fatalf("w1 goodput = %v", g)
	}
	if r := ws[2].DropRate(); r != 1 {
		t.Fatalf("w2 drop rate = %v", r)
	}
	if got := c.MinNormalizedGoodput(time.Second); got != 0 {
		t.Fatalf("min goodput = %v", got)
	}
	if got := c.MaxDropRate(time.Second); got != 1 {
		t.Fatalf("max drop rate = %v", got)
	}
	if got := c.DropRateAtMinGoodput(time.Second); got != 1 {
		t.Fatalf("drop at min goodput = %v", got)
	}
}

func TestWindowsEmptyAndPanics(t *testing.T) {
	c := mkCollector()
	if ws := c.Windows(time.Second); ws != nil {
		t.Fatalf("empty collector windows = %v", ws)
	}
	if g := c.MinNormalizedGoodput(time.Second); g != 1 {
		t.Fatalf("empty min goodput = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero width")
		}
	}()
	c.Add(Record{Outcome: Good, DropModule: -1})
	c.Windows(0)
}

func TestEmptyWindowConventions(t *testing.T) {
	w := WindowPoint{}
	if w.NormalizedGoodput() != 1 {
		t.Fatal("empty window goodput should be 1")
	}
	if w.DropRate() != 0 {
		t.Fatal("empty window drop rate should be 0")
	}
}

func TestSeriesGaps(t *testing.T) {
	// Min goodput must skip windows with no arrivals rather than treating
	// them as zero.
	c := mkCollector()
	c.Add(Record{Send: 0, Done: 0, Outcome: Good, DropModule: -1})
	c.Add(Record{Send: 5 * time.Second, Done: 5 * time.Second, Outcome: Good, DropModule: -1})
	if g := c.MinNormalizedGoodput(time.Second); g != 1 {
		t.Fatalf("min goodput with gaps = %v", g)
	}
}

func TestGoodputAndDropSeries(t *testing.T) {
	c := mkCollector()
	c.Add(Record{Send: 100 * time.Millisecond, Done: 200 * time.Millisecond, Outcome: Good, DropModule: -1})
	c.Add(Record{Send: 1100 * time.Millisecond, Done: 1100 * time.Millisecond, Outcome: DroppedOutcome, DropModule: 1})
	ts, gs := c.GoodputSeries(time.Second)
	if len(ts) != 2 || gs[0] != 1 || gs[1] != 0 {
		t.Fatalf("goodput series = %v %v", ts, gs)
	}
	_, ds := c.DropRateSeries(time.Second)
	if ds[0] != 0 || ds[1] != 1 {
		t.Fatalf("drop series = %v", ds)
	}
}

func TestPerModuleDropPctSums(t *testing.T) {
	c := mkCollector()
	for m := 0; m < 5; m++ {
		for i := 0; i <= m; i++ {
			c.Add(Record{Outcome: DroppedOutcome, DropModule: m})
		}
	}
	s := c.Summary()
	var sum float64
	for _, p := range s.PerModuleDropPct {
		sum += p
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("per-module percentages sum to %v", sum)
	}
	if s.PerModuleDropPct[4] <= s.PerModuleDropPct[0] {
		t.Fatalf("expected more drops at module 4: %v", s.PerModuleDropPct)
	}
}

func TestSeriesBucketed(t *testing.T) {
	var s Series
	s.Add(100*time.Millisecond, 10)
	s.Add(200*time.Millisecond, 20)
	s.Add(2500*time.Millisecond, 40)
	ts, vs := s.Bucketed(time.Second)
	if len(ts) != 3 {
		t.Fatalf("buckets = %d", len(ts))
	}
	if vs[0] != 15 {
		t.Fatalf("bucket 0 = %v", vs[0])
	}
	if vs[1] != 15 { // empty bucket holds previous value
		t.Fatalf("bucket 1 = %v", vs[1])
	}
	if vs[2] != 40 {
		t.Fatalf("bucket 2 = %v", vs[2])
	}
}

func TestSeriesOutOfOrderClamped(t *testing.T) {
	var s Series
	s.Add(time.Second, 1)
	s.Add(500*time.Millisecond, 2)
	if s.T[1] != time.Second {
		t.Fatalf("timestamps = %v", s.T)
	}
}

func TestSeriesQuantile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i)*time.Millisecond, float64(i))
	}
	if q := s.Quantile(0.5); q != 50 {
		t.Fatalf("median = %v", q)
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	var empty Series
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestLatencyQuantiles(t *testing.T) {
	c := mkCollector()
	for i := 1; i <= 100; i++ {
		c.Add(Record{
			Send:       0,
			Done:       time.Duration(i) * time.Millisecond,
			Outcome:    Good,
			DropModule: -1,
		})
	}
	// Drops must be excluded.
	c.Add(Record{Send: 0, Done: 10 * time.Second, Outcome: DroppedOutcome, DropModule: 1})
	qs := c.LatencyQuantiles(0.5, 0.99, 0, 1)
	if qs[0] != 50*time.Millisecond {
		t.Fatalf("p50 = %v", qs[0])
	}
	if qs[1] != 99*time.Millisecond {
		t.Fatalf("p99 = %v", qs[1])
	}
	if qs[2] != time.Millisecond || qs[3] != 100*time.Millisecond {
		t.Fatalf("extremes = %v %v", qs[2], qs[3])
	}
}

func TestLatencyQuantilesEmpty(t *testing.T) {
	c := mkCollector()
	if qs := c.LatencyQuantiles(0.5); qs != nil {
		t.Fatalf("empty quantiles = %v", qs)
	}
	c.Add(Record{Outcome: DroppedOutcome, DropModule: 0})
	if qs := c.LatencyQuantiles(0.5); qs != nil {
		t.Fatalf("drop-only quantiles = %v", qs)
	}
}

func TestOutcomeString(t *testing.T) {
	if Good.String() != "good" || Late.String() != "late" || DroppedOutcome.String() != "dropped" {
		t.Fatal("outcome strings wrong")
	}
	if Outcome(9).String() == "" {
		t.Fatal("unknown outcome empty")
	}
}

// Property: conservation — windows partition all records, so the sum of
// Arrived equals the record count and Good+Bad == Arrived per window.
func TestPropertyWindowConservation(t *testing.T) {
	f := func(sends []uint16, outcomes []uint8) bool {
		c := mkCollector()
		n := len(sends)
		if len(outcomes) < n {
			n = len(outcomes)
		}
		for i := 0; i < n; i++ {
			o := Outcome(outcomes[i] % 3)
			at := time.Duration(sends[i]) * time.Millisecond
			c.Add(Record{Send: at, Done: at, Outcome: o, DropModule: 0})
		}
		if n == 0 {
			return true
		}
		total := 0
		for _, w := range c.Windows(7 * time.Millisecond) {
			if w.Good+w.Bad != w.Arrived {
				return false
			}
			total += w.Arrived
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: drop rate and invalid rate are always within [0,1].
func TestPropertyRatesBounded(t *testing.T) {
	f := func(outcomes []uint8, gpu []uint16) bool {
		c := mkCollector()
		n := len(outcomes)
		if len(gpu) < n {
			n = len(gpu)
		}
		for i := 0; i < n; i++ {
			c.Add(Record{
				Outcome:    Outcome(outcomes[i] % 3),
				DropModule: i % 5,
				GPUTime:    time.Duration(gpu[i]) * time.Microsecond,
			})
		}
		s := c.Summary()
		return s.DropRate >= 0 && s.DropRate <= 1 && s.InvalidRate >= 0 && s.InvalidRate <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorGobRoundTrip proves the collector survives the sweep disk
// cache's gob serialization: records, aggregates and derived metrics all
// match after decode.
func TestCollectorGobRoundTrip(t *testing.T) {
	c := NewCollector(100*time.Millisecond, 3)
	c.Add(Record{Send: 0, Done: 50 * time.Millisecond, Outcome: Good, DropModule: -1, GPUTime: 5 * time.Millisecond})
	c.Add(Record{Send: 10 * time.Millisecond, Done: 200 * time.Millisecond, Outcome: Late, DropModule: -1, GPUTime: 7 * time.Millisecond})
	c.Add(Record{Send: 20 * time.Millisecond, Done: 30 * time.Millisecond, Outcome: DroppedOutcome, DropModule: 1, GPUTime: time.Millisecond})

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		t.Fatal(err)
	}
	var got Collector
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records(), c.Records()) {
		t.Fatal("records differ after round trip")
	}
	if !reflect.DeepEqual(got.Summary(), c.Summary()) {
		t.Fatalf("summaries differ:\nwant %+v\ngot  %+v", c.Summary(), got.Summary())
	}
	if got.End() != c.End() || got.Len() != c.Len() {
		t.Fatal("end/len differ after round trip")
	}
}
