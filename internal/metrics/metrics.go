// Package metrics implements the paper's evaluation metrics (§5.1):
//
//   - Goodput: requests completed within the latency SLO per unit time.
//   - Drop rate: dropped requests / total requests, where a request that
//     finished inference but violated the SLO also counts as dropped.
//   - Invalid rate: GPU time consumed by dropped requests / total GPU time.
//
// The Collector stores one record per request and derives windowed series
// post-hoc, which is what Figs. 2, 8, 9 and 10 plot: minimum normalized
// goodput across window sizes, maximum average drop rate across window
// sizes, and transient (per-bucket) rates over time.
package metrics

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"slices"
	"time"

	"pard/internal/stats"
)

// Outcome classifies how a request's lifecycle ended.
type Outcome int

// Request outcomes.
const (
	// Good: completed the whole pipeline within the SLO.
	Good Outcome = iota
	// Late: completed the pipeline but missed the SLO (counts as dropped).
	Late
	// DroppedOutcome: explicitly dropped by the policy at some module.
	DroppedOutcome
	// Rejected: refused at the door by admission control, before entering
	// the pipeline. Counts as bad (the client got no answer) but is kept
	// distinct from policy drops: a rejection consumed no GPU time and no
	// queue slot, and the client was told to retry.
	Rejected
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Good:
		return "good"
	case Late:
		return "late"
	case DroppedOutcome:
		return "dropped"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Record is the per-request outcome stored by the Collector.
type Record struct {
	Send    time.Duration // client send time t_s
	Done    time.Duration // completion or drop time
	Outcome Outcome
	// DropModule is the module that dropped the request, or -1.
	DropModule int
	// GPUTime is the total GPU time charged to this request across all
	// modules it executed in (d(b)/b per batch membership).
	GPUTime time.Duration
}

// Bad reports whether the record counts as dropped for drop-rate purposes.
func (r Record) Bad() bool { return r.Outcome != Good }

// Collector accumulates request records for one run. It reuses internal
// scratch buffers across derived-metric calls (windows, latency quantiles),
// so a Collector is NOT safe for concurrent use; the sweep engine only ever
// finalizes a collector from a single goroutine.
type Collector struct {
	SLO      time.Duration
	NModules int

	records []Record
	// aggregates maintained incrementally
	good, late, dropped, rejected int
	gpuTotal, gpuWasted           time.Duration
	perModuleDrops                []int
	end                           time.Duration

	// finalization scratch, reused across calls (never serialized; the gob
	// format is pinned by collectorWire)
	winScratch []WindowPoint
	latScratch []float64
}

// NewCollector returns a collector for a pipeline with n modules.
func NewCollector(slo time.Duration, n int) *Collector {
	if slo <= 0 {
		panic(fmt.Sprintf("metrics: SLO must be positive, got %v", slo))
	}
	if n < 1 {
		panic(fmt.Sprintf("metrics: module count must be >=1, got %d", n))
	}
	return &Collector{SLO: slo, NModules: n, perModuleDrops: make([]int, n)}
}

// Grow pre-sizes the record buffer for at least n additional records,
// turning the append growth chain in a large run into one allocation.
func (c *Collector) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(c.records) - len(c.records); free < n {
		grown := make([]Record, len(c.records), len(c.records)+n)
		copy(grown, c.records)
		c.records = grown
	}
}

// Add records one finished request.
func (c *Collector) Add(r Record) {
	switch r.Outcome {
	case Good:
		c.good++
	case Late:
		c.late++
	case DroppedOutcome:
		c.dropped++
		if r.DropModule >= 0 && r.DropModule < c.NModules {
			c.perModuleDrops[r.DropModule]++
		}
	case Rejected:
		c.rejected++
	}
	c.gpuTotal += r.GPUTime
	if r.Bad() {
		c.gpuWasted += r.GPUTime
	}
	if r.Done > c.end {
		c.end = r.Done
	}
	if r.Send > c.end {
		c.end = r.Send
	}
	c.records = append(c.records, r)
}

// collectorWire is the Collector's serialized form: the raw records plus
// the constructor inputs; aggregates are rebuilt on decode.
type collectorWire struct {
	SLO      time.Duration
	NModules int
	Records  []Record
}

// GobEncode serializes the collector (sweep's on-disk run cache persists
// whole simulation results).
func (c *Collector) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(collectorWire{
		SLO: c.SLO, NModules: c.NModules, Records: c.records,
	})
	return buf.Bytes(), err
}

// GobDecode rebuilds the collector by replaying the serialized records, so
// the incremental aggregates are always consistent with them.
func (c *Collector) GobDecode(data []byte) error {
	var w collectorWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*c = *NewCollector(w.SLO, w.NModules)
	c.Grow(len(w.Records))
	for _, r := range w.Records {
		c.Add(r)
	}
	return nil
}

// Len returns the number of recorded requests.
func (c *Collector) Len() int { return len(c.records) }

// Records returns the raw records (callers must not mutate).
func (c *Collector) Records() []Record { return c.records }

// End returns the latest timestamp observed.
func (c *Collector) End() time.Duration { return c.end }

// Summary is the run-level aggregate.
type Summary struct {
	Total       int
	Good        int
	Late        int
	Dropped     int     // policy drops only (excludes late and rejected)
	Rejected    int     // refused by admission control, never entered the pipeline
	DropRate    float64 // (dropped + late) / total; rejections tracked separately
	InvalidRate float64 // wasted GPU time / total GPU time
	Goodput     float64 // good per second over the run span
	OfferedRate float64 // total per second over the run span
	// PerModuleDropPct[k] is the percentage of all policy drops that
	// happened at module k (Fig. 2c / Fig. 11b).
	PerModuleDropPct []float64
	GPUTotal         time.Duration
	GPUWasted        time.Duration
}

// Summary computes the aggregate metrics.
func (c *Collector) Summary() Summary {
	s := Summary{
		Total:     len(c.records),
		Good:      c.good,
		Late:      c.late,
		Dropped:   c.dropped,
		Rejected:  c.rejected,
		GPUTotal:  c.gpuTotal,
		GPUWasted: c.gpuWasted,
	}
	if s.Total > 0 {
		s.DropRate = float64(c.dropped+c.late) / float64(s.Total)
	}
	if c.gpuTotal > 0 {
		s.InvalidRate = float64(c.gpuWasted) / float64(c.gpuTotal)
	}
	if c.end > 0 {
		s.Goodput = float64(c.good) / c.end.Seconds()
		s.OfferedRate = float64(s.Total) / c.end.Seconds()
	}
	if c.dropped > 0 {
		s.PerModuleDropPct = make([]float64, c.NModules)
		for k, n := range c.perModuleDrops {
			s.PerModuleDropPct[k] = 100 * float64(n) / float64(c.dropped)
		}
	} else {
		s.PerModuleDropPct = make([]float64, c.NModules)
	}
	return s
}

// WindowPoint aggregates requests *sent* within [Start, Start+Width).
type WindowPoint struct {
	Start   time.Duration
	Arrived int
	Good    int
	Bad     int // dropped + late
}

// NormalizedGoodput returns Good/Arrived, or 1 for an empty window (an idle
// system is not failing anyone).
func (w WindowPoint) NormalizedGoodput() float64 {
	if w.Arrived == 0 {
		return 1
	}
	return float64(w.Good) / float64(w.Arrived)
}

// DropRate returns Bad/Arrived, or 0 for an empty window.
func (w WindowPoint) DropRate() float64 {
	if w.Arrived == 0 {
		return 0
	}
	return float64(w.Bad) / float64(w.Arrived)
}

// Windows buckets requests by send time into consecutive windows of the
// given width covering [0, End]. The returned slice is freshly allocated and
// owned by the caller; internal metric derivations use windowsInto instead.
func (c *Collector) Windows(width time.Duration) []WindowPoint {
	return c.windowsInto(nil, width)
}

// windows returns the bucketing for width via the collector's reusable
// scratch. The result aliases c.winScratch and is valid until the next
// windows/Windows call on this collector.
func (c *Collector) windows(width time.Duration) []WindowPoint {
	c.winScratch = c.windowsInto(c.winScratch, width)
	return c.winScratch
}

// windowsInto is Windows writing into a caller-supplied buffer (grown only
// when capacity is short), so the repeated per-width sweeps behind Figs. 2
// and 8-10 don't materialize a fresh []WindowPoint per width.
func (c *Collector) windowsInto(buf []WindowPoint, width time.Duration) []WindowPoint {
	if width <= 0 {
		panic(fmt.Sprintf("metrics: window width must be positive, got %v", width))
	}
	if len(c.records) == 0 {
		return nil
	}
	n := int(c.end/width) + 1
	var out []WindowPoint
	if cap(buf) >= n {
		out = buf[:n]
	} else {
		out = make([]WindowPoint, n)
	}
	for i := range out {
		out[i] = WindowPoint{Start: time.Duration(i) * width}
	}
	for _, r := range c.records {
		i := int(r.Send / width)
		if i >= n {
			i = n - 1
		}
		out[i].Arrived++
		if r.Outcome == Good {
			out[i].Good++
		} else {
			out[i].Bad++
		}
	}
	return out
}

// MinNormalizedGoodput returns the minimum over windows of the normalized
// goodput, skipping empty windows (Fig. 2a).
func (c *Collector) MinNormalizedGoodput(width time.Duration) float64 {
	min := math.Inf(1)
	for _, w := range c.windows(width) {
		if w.Arrived == 0 {
			continue
		}
		if g := w.NormalizedGoodput(); g < min {
			min = g
		}
	}
	if math.IsInf(min, 1) {
		return 1
	}
	return min
}

// DropRateAtMinGoodput returns the drop rate of the window achieving the
// minimum normalized goodput (Fig. 2b pairs drop rates with Fig. 2a's
// windows).
func (c *Collector) DropRateAtMinGoodput(width time.Duration) float64 {
	min, rate := math.Inf(1), 0.0
	for _, w := range c.windows(width) {
		if w.Arrived == 0 {
			continue
		}
		if g := w.NormalizedGoodput(); g < min {
			min, rate = g, w.DropRate()
		}
	}
	return rate
}

// MaxDropRate returns the maximum per-window drop rate (Fig. 9).
func (c *Collector) MaxDropRate(width time.Duration) float64 {
	max := 0.0
	for _, w := range c.windows(width) {
		if r := w.DropRate(); r > max {
			max = r
		}
	}
	return max
}

// GoodputSeries returns (start, normalized goodput) pairs for plotting the
// Fig. 10 timelines.
func (c *Collector) GoodputSeries(width time.Duration) ([]time.Duration, []float64) {
	ws := c.windows(width)
	ts := make([]time.Duration, len(ws))
	vs := make([]float64, len(ws))
	for i, w := range ws {
		ts[i] = w.Start
		vs[i] = w.NormalizedGoodput()
	}
	return ts, vs
}

// DropRateSeries returns (start, drop rate) pairs (Fig. 2d transient drop
// rate).
func (c *Collector) DropRateSeries(width time.Duration) ([]time.Duration, []float64) {
	ws := c.windows(width)
	ts := make([]time.Duration, len(ws))
	vs := make([]float64, len(ws))
	for i, w := range ws {
		ts[i] = w.Start
		vs[i] = w.DropRate()
	}
	return ts, vs
}

// LatencyQuantiles returns end-to-end latency quantiles (each q in [0,1])
// over completed requests (Good and Late outcomes; drops have no meaningful
// completion latency). Returns nil when nothing completed. Latencies
// accumulate into a reusable scratch, sorted once per call with the
// reflection-free slices.Sort; every quantile reads the one sorted scratch.
func (c *Collector) LatencyQuantiles(qs ...float64) []time.Duration {
	lats := c.latScratch[:0]
	for _, r := range c.records {
		if r.Outcome == DroppedOutcome {
			continue
		}
		lats = append(lats, (r.Done - r.Send).Seconds())
	}
	c.latScratch = lats
	if len(lats) == 0 {
		return nil
	}
	slices.Sort(lats)
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = time.Duration(stats.QuantileSorted(lats, q) * float64(time.Second))
	}
	return out
}

// Series is a generic timestamped scalar stream used by simulator probes
// (queueing delay per module, load factor, consumed budget, ...).
type Series struct {
	Name string
	T    []time.Duration
	V    []float64
}

// Add appends one sample; timestamps must be nondecreasing.
func (s *Series) Add(at time.Duration, v float64) {
	if n := len(s.T); n > 0 && at < s.T[n-1] {
		at = s.T[n-1]
	}
	s.T = append(s.T, at)
	s.V = append(s.V, v)
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.T) }

// Bucketed averages the series into consecutive buckets of the given width,
// returning bucket starts and means. Empty buckets carry the previous mean
// (step-hold), matching how the paper plots sparse runtime signals.
func (s *Series) Bucketed(width time.Duration) ([]time.Duration, []float64) {
	if width <= 0 || len(s.T) == 0 {
		return nil, nil
	}
	end := s.T[len(s.T)-1]
	n := int(end/width) + 1
	sums := make([]float64, n)
	counts := make([]int, n)
	for i, at := range s.T {
		b := int(at / width)
		if b >= n {
			b = n - 1
		}
		sums[b] += s.V[i]
		counts[b]++
	}
	ts := make([]time.Duration, n)
	vs := make([]float64, n)
	prev := 0.0
	for i := 0; i < n; i++ {
		ts[i] = time.Duration(i) * width
		if counts[i] > 0 {
			prev = sums[i] / float64(counts[i])
		}
		vs[i] = prev
	}
	return ts, vs
}

// Quantile returns the q-quantile of the series values. The series is
// read-only: values are copied before sorting.
func (s *Series) Quantile(q float64) float64 {
	if len(s.V) == 0 {
		return 0
	}
	cp := append([]float64(nil), s.V...)
	slices.Sort(cp)
	return stats.QuantileSorted(cp, q)
}
