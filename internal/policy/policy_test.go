package policy

import (
	"math/rand"
	"testing"
	"time"

	"pard/internal/core"
	"pard/internal/pipeline"
)

func lvSetup() Setup {
	spec := pipeline.LV()
	durs := make([]time.Duration, spec.N())
	for i := range durs {
		durs[i] = 30 * time.Millisecond
	}
	return Setup{Spec: spec, Durs: durs, Rng: rand.New(rand.NewSource(1))}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("registry has %d policies, want 16: %v", len(names), names)
	}
	for _, name := range names {
		p, err := New(name, lvSetup())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %s reports name %s", name, p.Name())
		}
	}
	if _, err := New("bogus", lvSetup()); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestComparisonAndAblationsRegistered(t *testing.T) {
	for _, name := range append(Comparison(), Ablations()...) {
		if _, err := New(name, lvSetup()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestSetupValidation(t *testing.T) {
	s := lvSetup()
	s.Spec = nil
	if _, err := NewPARD(s); err == nil {
		t.Fatal("nil spec accepted")
	}
	s = lvSetup()
	s.Durs = s.Durs[:2]
	if _, err := NewPARD(s); err == nil {
		t.Fatal("short durs accepted")
	}
	s = lvSetup()
	s.Rng = nil
	if _, err := NewPARD(s); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestQueueKinds(t *testing.T) {
	want := map[string]QueueKind{
		"naive": KindFIFO, "clipper++": KindFIFO, "nexus": KindFIFO, "pard-fcfs": KindFIFO,
		"pard": KindDEPQ, "pard-back": KindDEPQ, "pard-sf": KindDEPQ, "pard-oc": KindDEPQ,
		"pard-split": KindDEPQ, "pard-wcl": KindDEPQ, "pard-lower": KindDEPQ,
		"pard-upper": KindDEPQ, "pard-instant": KindDEPQ, "pard-hbf": KindDEPQ, "pard-lbf": KindDEPQ,
	}
	for name, kind := range want {
		p, err := New(name, lvSetup())
		if err != nil {
			t.Fatal(err)
		}
		if p.Queue() != kind {
			t.Fatalf("%s queue = %d, want %d", name, p.Queue(), kind)
		}
	}
}

func ctxAt(module int, sent, now, te time.Duration) DecideCtx {
	return DecideCtx{
		Req:           RequestInfo{Send: sent, Deadline: sent + 500*time.Millisecond, ArriveModule: now},
		Module:        module,
		Now:           now,
		ExpectedStart: te,
		ExecDur:       30 * time.Millisecond,
		SLO:           500 * time.Millisecond,
	}
}

func TestNaiveNeverDrops(t *testing.T) {
	p, _ := New("naive", lvSetup())
	// Even a hopeless request is kept.
	if !p.Decide(ctxAt(4, 0, 10*time.Second, 10*time.Second)) {
		t.Fatal("naive dropped")
	}
	if !p.Admit(0, 0, RequestInfo{}) {
		t.Fatal("naive rejected admission")
	}
}

func TestNexusDropsOnCurrentModuleOnly(t *testing.T) {
	p, _ := New("nexus", lvSetup())
	// Finishes current module at 400ms < 500ms SLO → keep, even though 4
	// more modules follow (the reactive drop-too-late flaw).
	if !p.Decide(ctxAt(0, 0, 350*time.Millisecond, 370*time.Millisecond)) {
		t.Fatal("nexus dropped a request that fits the current module")
	}
	// 480ms + 30ms exec > 500ms → drop.
	if p.Decide(ctxAt(0, 0, 470*time.Millisecond, 480*time.Millisecond)) {
		t.Fatal("nexus kept a request missing the SLO in the current module")
	}
}

func TestClipperDropsOnCumulativeBudget(t *testing.T) {
	p, _ := New("clipper++", lvSetup())
	// Equal durations → cumulative budget at module 0 is 100ms.
	if p.Decide(ctxAt(0, 0, 150*time.Millisecond, 150*time.Millisecond)) {
		t.Fatal("clipper++ kept a request over its module-0 budget")
	}
	if !p.Decide(ctxAt(0, 0, 50*time.Millisecond, 90*time.Millisecond)) {
		t.Fatal("clipper++ dropped a request within budget")
	}
	// At the last module the full SLO is available.
	if !p.Decide(ctxAt(4, 0, 450*time.Millisecond, 460*time.Millisecond)) {
		t.Fatal("clipper++ dropped within end-to-end budget at sink")
	}
}

func syncedPARD(t *testing.T, name string) Policy {
	t.Helper()
	p, err := New(name, lvSetup())
	if err != nil {
		t.Fatal(err)
	}
	spec := pipeline.LV()
	board := core.NewBoard(spec.N())
	for k := 0; k < spec.N(); k++ {
		board.Publish(k, core.ModuleState{
			QueueDelay:  5 * time.Millisecond,
			ProfiledDur: 30 * time.Millisecond,
			BatchWait:   []float64{0.010, 0.020, 0.030},
			InputRate:   100,
			Throughput:  200,
		})
	}
	p.OnSync(time.Second, board)
	return p
}

func TestPARDDropsProactively(t *testing.T) {
	p := syncedPARD(t, "pard")
	// At module 0 with 4 downstream modules (4×(5+30)=140ms + wait quantile),
	// a request whose batch starts at 400ms cannot finish by 500ms even
	// though the current module alone would fit — Nexus would keep it.
	ctx := ctxAt(0, 0, 390*time.Millisecond, 400*time.Millisecond)
	if p.Decide(ctx) {
		t.Fatal("pard kept a request with insufficient downstream budget")
	}
	nexus, _ := New("nexus", lvSetup())
	if !nexus.Decide(ctx) {
		t.Fatal("nexus should keep this request (reactive)")
	}
	// A fresh request passes.
	if !p.Decide(ctxAt(0, 0, 10*time.Millisecond, 20*time.Millisecond)) {
		t.Fatal("pard dropped a healthy request")
	}
	// At the sink PARD behaves like Nexus (no downstream).
	if !p.Decide(ctxAt(4, 0, 400*time.Millisecond, 450*time.Millisecond)) {
		t.Fatal("pard dropped at sink despite fitting")
	}
}

func TestPARDOrderingLowerPARDUpper(t *testing.T) {
	lower := syncedPARD(t, "pard-lower")
	mid := syncedPARD(t, "pard")
	upper := syncedPARD(t, "pard-upper")
	// Find a te where the three disagree: upper drops earliest, lower last.
	var dropAtLower, dropAtMid, dropAtUpper time.Duration
	for te := 100 * time.Millisecond; te <= 500*time.Millisecond; te += time.Millisecond {
		ctx := ctxAt(0, 0, te, te)
		if dropAtUpper == 0 && !upper.Decide(ctx) {
			dropAtUpper = te
		}
		if dropAtMid == 0 && !mid.Decide(ctx) {
			dropAtMid = te
		}
		if dropAtLower == 0 && !lower.Decide(ctx) {
			dropAtLower = te
		}
	}
	if !(dropAtUpper < dropAtMid && dropAtMid < dropAtLower) {
		t.Fatalf("drop thresholds not ordered: upper=%v mid=%v lower=%v",
			dropAtUpper, dropAtMid, dropAtLower)
	}
}

func TestPARDBackMatchesNexusCondition(t *testing.T) {
	back := syncedPARD(t, "pard-back")
	nexus, _ := New("nexus", lvSetup())
	for te := 100 * time.Millisecond; te <= 600*time.Millisecond; te += 10 * time.Millisecond {
		ctx := ctxAt(0, 0, te, te)
		if back.Decide(ctx) != nexus.Decide(ctx) {
			t.Fatalf("pard-back and nexus disagree at te=%v", te)
		}
	}
}

func TestAdaptivePopEnd(t *testing.T) {
	p, _ := New("pard", lvSetup())
	board := core.NewBoard(5)
	// Module 0 overloaded (μ=2), module 1 steady (μ=0.5).
	board.Publish(0, core.ModuleState{InputRate: 200, Throughput: 100})
	board.Publish(1, core.ModuleState{InputRate: 50, Throughput: 100})
	for k := 2; k < 5; k++ {
		board.Publish(k, core.ModuleState{InputRate: 50, Throughput: 100})
	}
	p.OnSync(time.Second, board)
	if p.PopEnd(0) != MaxEnd {
		t.Fatal("overloaded module should use HBF (max end)")
	}
	if p.PopEnd(1) != MinEnd {
		t.Fatal("steady module should use LBF (min end)")
	}
}

func TestFixedPriorityPolicies(t *testing.T) {
	hbf := syncedPARD(t, "pard-hbf")
	lbf := syncedPARD(t, "pard-lbf")
	for k := 0; k < 5; k++ {
		if hbf.PopEnd(k) != MaxEnd {
			t.Fatal("pard-hbf should always pop max")
		}
		if lbf.PopEnd(k) != MinEnd {
			t.Fatal("pard-lbf should always pop min")
		}
	}
}

func TestPARDOCAdmission(t *testing.T) {
	s := lvSetup()
	p, err := NewPARDOC(s)
	if err != nil {
		t.Fatal(err)
	}
	board := core.NewBoard(5)
	// Module 3 heavily queued → modules 0-3 shed, module 4 does not.
	for k := 0; k < 5; k++ {
		st := core.ModuleState{QueueDelay: time.Millisecond, InputRate: 10, Throughput: 100}
		if k == 3 {
			st.QueueDelay = 100 * time.Millisecond
		}
		board.Publish(k, st)
	}
	p.OnSync(time.Second, board)
	countAdmitted := func(module int) int {
		n := 0
		for i := 0; i < 1000; i++ {
			if p.Admit(module, 0, RequestInfo{}) {
				n++
			}
		}
		return n
	}
	a0 := countAdmitted(0)
	if a0 > 700 || a0 < 500 { // admit rate (1-α) = 0.6
		t.Fatalf("module 0 admitted %d/1000, want ≈600", a0)
	}
	if a4 := countAdmitted(4); a4 != 1000 {
		t.Fatalf("module 4 admitted %d/1000, want all (no downstream overload)", a4)
	}
	// Overload clears → no shedding anywhere.
	for k := 0; k < 5; k++ {
		board.Publish(k, core.ModuleState{QueueDelay: time.Millisecond})
	}
	p.OnSync(2*time.Second, board)
	if got := countAdmitted(0); got != 1000 {
		t.Fatalf("module 0 admitted %d/1000 after overload cleared", got)
	}
}

func TestPARDWCLReallocates(t *testing.T) {
	p, err := NewPARDWCL(lvSetup())
	if err != nil {
		t.Fatal(err)
	}
	u := p.(*unified)
	initial := append([]time.Duration(nil), u.cumBudgets...)
	board := core.NewBoard(5)
	// Module 2 has huge worst-case latency → its budget share grows.
	for k := 0; k < 5; k++ {
		wcl := 20 * time.Millisecond
		if k == 2 {
			wcl = 200 * time.Millisecond
		}
		board.Publish(k, core.ModuleState{WCL: wcl})
	}
	p.OnSync(time.Second, board)
	if u.cumBudgets[2]-u.cumBudgets[1] <= initial[2]-initial[1] {
		t.Fatalf("WCL did not grow module 2's budget: %v vs %v", u.cumBudgets, initial)
	}
	// Budgets still sum to the SLO.
	if got := u.cumBudgets[4]; got < 499*time.Millisecond || got > 501*time.Millisecond {
		t.Fatalf("budgets sum to %v, want ≈500ms", got)
	}
	// No WCL data yet → keep previous budgets.
	p2, _ := NewPARDWCL(lvSetup())
	u2 := p2.(*unified)
	before := append([]time.Duration(nil), u2.cumBudgets...)
	p2.OnSync(time.Second, core.NewBoard(5))
	for i := range before {
		if u2.cumBudgets[i] != before[i] {
			t.Fatal("budgets changed without WCL data")
		}
	}
}

func TestPARDSplitStricterThanPARD(t *testing.T) {
	split := syncedPARD(t, "pard-split")
	// A request that over-consumed budget early: at module 0, te=150ms with
	// cumulative budget 100ms → split drops.
	ctx := ctxAt(0, 0, 140*time.Millisecond, 150*time.Millisecond)
	if split.Decide(ctx) {
		t.Fatal("pard-split kept a request over module budget")
	}
}

func TestPolicyDeterminism(t *testing.T) {
	run := func() []bool {
		s := lvSetup()
		p, _ := New("pard-oc", s)
		board := core.NewBoard(5)
		for k := 0; k < 5; k++ {
			board.Publish(k, core.ModuleState{QueueDelay: 50 * time.Millisecond})
		}
		p.OnSync(time.Second, board)
		var out []bool
		for i := 0; i < 100; i++ {
			out = append(out, p.Admit(0, 0, RequestInfo{}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("oc admission not deterministic under fixed seed")
		}
	}
}

func BenchmarkPARDDecide(b *testing.B) {
	s := lvSetup()
	p, _ := New("pard", s)
	board := core.NewBoard(5)
	for k := 0; k < 5; k++ {
		board.Publish(k, core.ModuleState{
			QueueDelay: 5 * time.Millisecond, ProfiledDur: 30 * time.Millisecond,
			BatchWait: []float64{0.01, 0.02}, InputRate: 100, Throughput: 200,
		})
	}
	p.OnSync(time.Second, board)
	ctx := ctxAt(0, 0, 100*time.Millisecond, 110*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Decide(ctx)
	}
}
