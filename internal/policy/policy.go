// Package policy implements every request-dropping policy evaluated in the
// paper: the baselines (Naive, Clipper++, Nexus), PARD itself, and the
// Table 1 ablation variants. A policy plugs into the serving runtime
// (internal/simgpu or internal/server) through the Policy interface: it
// chooses the queue discipline, which DEPQ end to serve from, whether to
// admit a request at enqueue (DAGOR-style overload control), and — the core
// decision — whether to keep or drop each request at the moment it is placed
// into a batch (t_b in Fig. 5).
package policy

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"pard/internal/core"
	"pard/internal/pipeline"
)

// QueueKind selects the per-worker queue discipline.
type QueueKind int

// Queue kinds.
const (
	// KindFIFO serves strictly in arrival order (reactive baselines).
	KindFIFO QueueKind = iota
	// KindDEPQ reorders by remaining latency budget via a min-max heap.
	KindDEPQ
)

// End selects which end of a DEPQ the worker pops during batch assembly.
type End int

// DEPQ ends.
const (
	// MinEnd pops the earliest deadline (Low Budget First).
	MinEnd End = iota
	// MaxEnd pops the latest deadline (High Budget First).
	MaxEnd
)

// RequestInfo is the per-request state visible to dropping decisions.
type RequestInfo struct {
	// Send is the client send time t_s.
	Send time.Duration
	// Deadline is Send + SLO.
	Deadline time.Duration
	// ArriveModule is t_r: when the request reached the current module.
	ArriveModule time.Duration
}

// DecideCtx carries the bi-directional runtime information available when a
// request is popped for batch assembly at module Module.
type DecideCtx struct {
	Req    RequestInfo
	Module int
	// Now is the decision time t_b.
	Now time.Duration
	// ExpectedStart is t_e: when the forming batch is expected to begin
	// executing (end of the batch currently on the GPU, or Now if idle).
	ExpectedStart time.Duration
	// ExecDur is d_k at the module's current target batch size.
	ExecDur time.Duration
	// SLO is the pipeline's end-to-end latency objective.
	SLO time.Duration
}

// Policy is a request dropping policy.
type Policy interface {
	// Name returns the policy's identifier (e.g. "pard", "nexus").
	Name() string
	// Queue returns the queue discipline workers should use.
	Queue() QueueKind
	// PopEnd returns the DEPQ end to serve from at the module right now.
	PopEnd(module int) End
	// Admit is consulted when a request is enqueued at a module; returning
	// false drops it immediately (admission control; only PARD-oc uses it).
	Admit(module int, now time.Duration, r RequestInfo) bool
	// Decide is consulted when a request is popped into a forming batch;
	// returning false drops it.
	Decide(ctx DecideCtx) bool
	// OnSync runs once per state-synchronization tick, after every module
	// published fresh ModuleState to the board.
	OnSync(now time.Duration, board *core.Board)
}

// Setup carries everything policy constructors need.
type Setup struct {
	Spec *pipeline.Spec
	// Durs holds each module's profiled execution duration at its target
	// batch size (for fixed SLO splitting).
	Durs []time.Duration
	Rng  *rand.Rand
	// EstCfg configures PARD-family latency estimation; zero value gets
	// core.DefaultEstimatorConfig.
	EstCfg *core.EstimatorConfig
	// PriCfg configures the adaptive priority controller; zero value gets
	// core.DefaultPriorityConfig.
	PriCfg *core.PriorityConfig
	// OCThreshold and OCAlpha parameterize PARD-oc (defaults: 20 ms, 0.4;
	// §5.3 footnote 8).
	OCThreshold time.Duration
	OCAlpha     float64
}

func (s Setup) estCfg() core.EstimatorConfig {
	if s.EstCfg != nil {
		return *s.EstCfg
	}
	return core.DefaultEstimatorConfig()
}

func (s Setup) priCfg() core.PriorityConfig {
	if s.PriCfg != nil {
		return *s.PriCfg
	}
	return core.DefaultPriorityConfig()
}

func (s Setup) validate() error {
	if s.Spec == nil {
		return fmt.Errorf("policy: setup needs a pipeline spec")
	}
	if len(s.Durs) != s.Spec.N() {
		return fmt.Errorf("policy: %d profiled durations for %d modules", len(s.Durs), s.Spec.N())
	}
	if s.Rng == nil {
		return fmt.Errorf("policy: setup needs a random source")
	}
	return nil
}

// decideKind enumerates the keep/drop conditions the unified implementation
// supports.
type decideKind int

const (
	decideNaive    decideKind = iota // always keep
	decideClipper                    // drop if already over cumulative split budget before inference
	decideCurrent                    // drop if current module would finish past the SLO (Nexus)
	decideEndToEnd                   // drop if estimated end-to-end latency exceeds the SLO (PARD)
	decideSplitCum                   // drop if finish-of-module exceeds cumulative fixed split budget
	decideWCLCum                     // like decideSplitCum with dynamically reallocated budgets
)

// unified implements Policy for every system; the constructors below select
// the configuration matching each paper baseline.
type unified struct {
	name   string
	queue  QueueKind
	decide decideKind

	spec *pipeline.Spec
	est  *core.Estimator // nil unless decideEndToEnd
	pcs  []*core.PriorityController

	// split budgets (clipper/split); recomputed each sync for WCL
	budgets    []time.Duration
	cumBudgets []time.Duration
	durs       []time.Duration
	slo        time.Duration

	// PARD-oc state
	ocEnabled   bool
	ocThreshold time.Duration
	ocAlpha     float64
	ocShed      []bool // per module: shed arrivals due to pipeline overload
	rng         *rand.Rand
}

func (p *unified) Name() string     { return p.name }
func (p *unified) Queue() QueueKind { return p.queue }

func (p *unified) PopEnd(module int) End {
	if p.pcs == nil {
		return MinEnd
	}
	if p.pcs[module].Mode() == core.HBF {
		return MaxEnd
	}
	return MinEnd
}

func (p *unified) Admit(module int, now time.Duration, r RequestInfo) bool {
	if !p.ocEnabled || !p.ocShed[module] {
		return true
	}
	// DAGOR overload control: admit at rate (1-α) while shedding.
	return p.rng.Float64() >= p.ocAlpha
}

func (p *unified) Decide(ctx DecideCtx) bool {
	switch p.decide {
	case decideNaive:
		return true
	case decideClipper:
		// Clipper++ drops a request that has already exceeded its share of
		// the split SLO before inference. The check is two-part, mirroring
		// the splitting design's inflexibility (§5.3 "splitting restricts
		// latency budget flexibility"): the module-local latency must fit
		// the module budget, and the accumulated latency must fit the
		// cumulative budget — unused upstream slack is NOT inherited.
		if ctx.Now-ctx.Req.ArriveModule > p.budgets[ctx.Module] {
			return false
		}
		return ctx.Now-ctx.Req.Send <= p.cumBudgets[ctx.Module]
	case decideCurrent:
		// Nexus: accumulated latency plus current module's inference must
		// fit in the end-to-end SLO; downstream modules are ignored.
		return ctx.ExpectedStart+ctx.ExecDur-ctx.Req.Send <= p.slo
	case decideEndToEnd:
		l := p.est.EstimateEndToEnd(ctx.Req.Send, ctx.ExpectedStart, ctx.ExecDur, ctx.Module)
		return l <= p.slo
	case decideSplitCum, decideWCLCum:
		// PARD-precision decisions (t_e known) against split budgets, with
		// the same module-local inflexibility as Clipper++.
		if ctx.ExpectedStart+ctx.ExecDur-ctx.Req.ArriveModule > p.budgets[ctx.Module] {
			return false
		}
		return ctx.ExpectedStart+ctx.ExecDur-ctx.Req.Send <= p.cumBudgets[ctx.Module]
	default:
		panic(fmt.Sprintf("policy %s: unknown decide kind %d", p.name, p.decide))
	}
}

func (p *unified) OnSync(now time.Duration, board *core.Board) {
	if p.est != nil {
		p.est.Refresh(board)
	}
	if p.pcs != nil {
		for k, pc := range p.pcs {
			s := board.Get(k)
			pc.Update(now, s.InputRate, s.Throughput)
		}
	}
	if p.decide == decideWCLCum {
		p.reallocWCL(board)
	}
	if p.ocEnabled {
		p.refreshShed(board)
	}
}

// reallocWCL recomputes per-module budgets proportionally to each module's
// recent worst-case latency (PARD-WCL). WCL inputs are clamped to
// [1.2·d_k, SLO/2] so a single congested module cannot starve the others of
// budget entirely (without the clamp the realloc death-spirals: a starved
// module drops everything, its WCL collapses, and its budget shrinks
// further).
func (p *unified) reallocWCL(board *core.Board) {
	n := p.spec.N()
	wcl := make([]time.Duration, n)
	any := false
	for k := 0; k < n; k++ {
		wcl[k] = board.Get(k).WCL
		if wcl[k] > 0 {
			any = true
		}
	}
	if !any {
		return // keep the initial profile-proportional split until data exists
	}
	for k := range wcl {
		lo := p.durs[k] + p.durs[k]/5
		if wcl[k] < lo {
			wcl[k] = lo
		}
		if wcl[k] > p.slo/2 {
			wcl[k] = p.slo / 2
		}
	}
	p.budgets = core.SplitBudgets(p.slo, wcl)
	p.cumBudgets = core.CumulativeBudgets(p.budgets)
}

// refreshShed recomputes admission shedding: DAGOR propagates overload
// upstream to the *entry point*, which sheds incoming requests at rate
// (1−α). Shedding only at the pipeline source (rather than at every hop)
// avoids compounding the admission probability across modules.
func (p *unified) refreshShed(board *core.Board) {
	n := p.spec.N()
	overloaded := false
	for k := 0; k < n; k++ {
		if board.Get(k).QueueDelay > p.ocThreshold {
			overloaded = true
			break
		}
	}
	for k := range p.ocShed {
		p.ocShed[k] = false
	}
	p.ocShed[p.spec.Source()] = overloaded
}

// Priority returns module k's priority controller, or nil (exposed for the
// Fig. 13 load-factor probe).
func (p *unified) Priority(k int) *core.PriorityController {
	if p.pcs == nil {
		return nil
	}
	return p.pcs[k]
}

// Estimator returns the shared latency estimator, or nil.
func (p *unified) Estimator() *core.Estimator { return p.est }

func newPriorityControllers(s Setup, cfg core.PriorityConfig) []*core.PriorityController {
	pcs := make([]*core.PriorityController, s.Spec.N())
	for k := range pcs {
		pcs[k] = core.NewPriorityController(cfg)
	}
	return pcs
}

func base(name string, s Setup) *unified {
	return &unified{
		name: name,
		spec: s.Spec,
		slo:  s.Spec.SLO,
		durs: append([]time.Duration(nil), s.Durs...),
		rng:  s.Rng,
	}
}

// NewNaive returns the no-dropping baseline.
func NewNaive(s Setup) (Policy, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p := base("naive", s)
	p.queue = KindFIFO
	p.decide = decideNaive
	return p, nil
}

// NewClipper returns Clipper++: the end-to-end SLO is split into fixed
// per-module budgets proportional to profiled durations, and a request is
// dropped when it has already exceeded its cumulative budget before
// inference (§5.1 Baseline).
func NewClipper(s Setup) (Policy, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p := base("clipper++", s)
	p.queue = KindFIFO
	p.decide = decideClipper
	p.budgets = core.SplitBudgets(s.Spec.SLO, s.Durs)
	p.cumBudgets = core.CumulativeBudgets(p.budgets)
	return p, nil
}

// NewNexus returns the Nexus baseline: reactive dropping in arrival order of
// requests that cannot finish the current module within the end-to-end SLO.
func NewNexus(s Setup) (Policy, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p := base("nexus", s)
	p.queue = KindFIFO
	p.decide = decideCurrent
	return p, nil
}

// NewPARD returns the full system: proactive end-to-end estimation with
// bi-directional runtime information plus adaptive DEPQ priority with
// delayed transition.
func NewPARD(s Setup) (Policy, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p := base("pard", s)
	p.queue = KindDEPQ
	p.decide = decideEndToEnd
	p.est = core.NewEstimator(s.Spec, s.estCfg(), s.Rng)
	p.pcs = newPriorityControllers(s, s.priCfg())
	return p, nil
}

// variant builds a PARD ablation sharing the DEPQ + adaptive priority but
// with a modified estimator configuration.
func variant(name string, s Setup, est core.EstimatorConfig) (Policy, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p := base(name, s)
	p.queue = KindDEPQ
	p.decide = decideEndToEnd
	p.est = core.NewEstimator(s.Spec, est, s.Rng)
	p.pcs = newPriorityControllers(s, s.priCfg())
	return p, nil
}

// NewPARDBack considers preceding and current modules only (Lsub = 0):
// Clockwork/Nexus/Scrooge-style estimation with PARD's priority mechanism.
func NewPARDBack(s Setup) (Policy, error) {
	cfg := s.estCfg()
	cfg.IncludeQueue, cfg.IncludeDur, cfg.Wait = false, false, core.WaitZero
	return variant("pard-back", s, cfg)
}

// NewPARDSF accounts for downstream execution durations but ignores
// downstream queueing and batch wait (DREAM-style).
func NewPARDSF(s Setup) (Policy, error) {
	cfg := s.estCfg()
	cfg.IncludeQueue, cfg.IncludeDur, cfg.Wait = false, true, core.WaitZero
	return variant("pard-sf", s, cfg)
}

// NewPARDLower assumes downstream batch wait is zero (ΣW = 0).
func NewPARDLower(s Setup) (Policy, error) {
	cfg := s.estCfg()
	cfg.IncludeQueue, cfg.IncludeDur, cfg.Wait = true, true, core.WaitZero
	return variant("pard-lower", s, cfg)
}

// NewPARDUpper assumes downstream batch wait is maximal (ΣW = Σd_i).
func NewPARDUpper(s Setup) (Policy, error) {
	cfg := s.estCfg()
	cfg.IncludeQueue, cfg.IncludeDur, cfg.Wait = true, true, core.WaitUpper
	return variant("pard-upper", s, cfg)
}

// NewPARDSplit keeps PARD's decision precision but compares against fixed
// per-module SLO splits instead of the end-to-end objective.
func NewPARDSplit(s Setup) (Policy, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p := base("pard-split", s)
	p.queue = KindDEPQ
	p.decide = decideSplitCum
	p.budgets = core.SplitBudgets(s.Spec.SLO, s.Durs)
	p.cumBudgets = core.CumulativeBudgets(p.budgets)
	p.pcs = newPriorityControllers(s, s.priCfg())
	return p, nil
}

// NewPARDWCL splits the latency budget dynamically in proportion to each
// module's recent worst-case latency.
func NewPARDWCL(s Setup) (Policy, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p := base("pard-wcl", s)
	p.queue = KindDEPQ
	p.decide = decideWCLCum
	p.budgets = core.SplitBudgets(s.Spec.SLO, s.Durs)
	p.cumBudgets = core.CumulativeBudgets(p.budgets)
	p.pcs = newPriorityControllers(s, s.priCfg())
	return p, nil
}

// NewPARDOC adopts DAGOR's queue-delay-based overload control: a module
// whose average queueing delay exceeds OCThreshold causes upstream modules
// to shed arrivals at rate (1−α); per-request decisions consider only the
// current module.
func NewPARDOC(s Setup) (Policy, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p := base("pard-oc", s)
	p.queue = KindDEPQ
	p.decide = decideCurrent
	p.pcs = newPriorityControllers(s, s.priCfg())
	p.ocEnabled = true
	p.ocThreshold = s.OCThreshold
	if p.ocThreshold <= 0 {
		p.ocThreshold = 50 * time.Millisecond
	}
	p.ocAlpha = s.OCAlpha
	if p.ocAlpha <= 0 {
		p.ocAlpha = 0.4
	}
	p.ocShed = make([]bool, s.Spec.N())
	return p, nil
}

// NewPARDAnalytic replaces the Monte-Carlo batch-wait quantile with the
// closed-form Irwin-Hall/CLT quantile (an extension beyond the paper: same
// λ semantics, no sampling cost, but blind to non-uniform wait shapes).
func NewPARDAnalytic(s Setup) (Policy, error) {
	cfg := s.estCfg()
	cfg.IncludeQueue, cfg.IncludeDur, cfg.Wait = true, true, core.WaitAnalytic
	return variant("pard-analytic", s, cfg)
}

// NewPARDFCFS keeps PARD's estimation but serves in arrival order.
func NewPARDFCFS(s Setup) (Policy, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p := base("pard-fcfs", s)
	p.queue = KindFIFO
	p.decide = decideEndToEnd
	p.est = core.NewEstimator(s.Spec, s.estCfg(), s.Rng)
	return p, nil
}

// NewPARDHBF pins the priority to High Budget First.
func NewPARDHBF(s Setup) (Policy, error) {
	cfg := core.FixedMode(core.HBF)
	s.PriCfg = &cfg
	return variant("pard-hbf", s, s.estCfg())
}

// NewPARDLBF pins the priority to Low Budget First (SHEPHERD-style).
func NewPARDLBF(s Setup) (Policy, error) {
	cfg := core.FixedMode(core.LBF)
	s.PriCfg = &cfg
	return variant("pard-lbf", s, s.estCfg())
}

// NewPARDInstant switches HBF/LBF instantly at μ = 1 (no hysteresis).
func NewPARDInstant(s Setup) (Policy, error) {
	cfg := s.priCfg()
	cfg.Instant = true
	s.PriCfg = &cfg
	return variant("pard-instant", s, s.estCfg())
}

// Factory builds a policy by name.
type Factory func(Setup) (Policy, error)

var registry = map[string]Factory{
	"naive":         NewNaive,
	"clipper++":     NewClipper,
	"nexus":         NewNexus,
	"pard":          NewPARD,
	"pard-back":     NewPARDBack,
	"pard-sf":       NewPARDSF,
	"pard-oc":       NewPARDOC,
	"pard-split":    NewPARDSplit,
	"pard-wcl":      NewPARDWCL,
	"pard-lower":    NewPARDLower,
	"pard-upper":    NewPARDUpper,
	"pard-instant":  NewPARDInstant,
	"pard-hbf":      NewPARDHBF,
	"pard-lbf":      NewPARDLBF,
	"pard-fcfs":     NewPARDFCFS,
	"pard-analytic": NewPARDAnalytic,
}

// New builds the named policy.
func New(name string, s Setup) (Policy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, Names())
	}
	return f(s)
}

// Names lists registered policies in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Comparison lists the four systems of the headline comparison (Figs. 8-10).
func Comparison() []string { return []string{"pard", "nexus", "clipper++", "naive"} }

// Ablations lists the Table 1 variants plus PARD itself (Fig. 11 order).
func Ablations() []string {
	return []string{
		"pard", "pard-back", "pard-sf", "pard-oc", "pard-split", "pard-wcl",
		"pard-upper", "pard-lower", "pard-instant", "pard-hbf", "pard-lbf", "pard-fcfs",
	}
}
