// Package profile models offline DNN profiling (§5.1): per-model execution
// duration and throughput as a function of batch size. PARD, like Nexus and
// Clockwork, treats models as opaque latency curves obtained by profiling;
// the curves here follow the affine d(b) = α + β·b form that GPU batch
// execution exhibits, with an optional multiplicative jitter applied by the
// simulator at execution time.
package profile

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"time"
)

// Model is one DNN model's offline profile.
type Model struct {
	// Name identifies the model in the application library.
	Name string `json:"name"`
	// Alpha is the fixed per-batch overhead (kernel launch, pre/post).
	Alpha time.Duration `json:"alpha_ns"`
	// Beta is the marginal cost per batched request.
	Beta time.Duration `json:"beta_ns"`
	// MaxBatch caps the feasible batch size (GPU memory bound).
	MaxBatch int `json:"max_batch"`
	// JitterPct is the ± percentage of multiplicative execution-time noise
	// the simulator applies (0 disables; profiling reports the mean).
	JitterPct float64 `json:"jitter_pct,omitempty"`
}

// Validate reports configuration errors.
func (m Model) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("profile: model name empty")
	case m.Alpha < 0:
		return fmt.Errorf("profile: model %s: negative alpha %v", m.Name, m.Alpha)
	case m.Beta <= 0:
		return fmt.Errorf("profile: model %s: beta must be positive, got %v", m.Name, m.Beta)
	case m.MaxBatch < 1:
		return fmt.Errorf("profile: model %s: max batch %d < 1", m.Name, m.MaxBatch)
	case m.JitterPct < 0 || m.JitterPct > 0.5:
		return fmt.Errorf("profile: model %s: jitter %v outside [0, 0.5]", m.Name, m.JitterPct)
	}
	return nil
}

// Duration returns the profiled execution duration at batch size b, clamped
// to [1, MaxBatch].
func (m Model) Duration(b int) time.Duration {
	if b < 1 {
		b = 1
	}
	if b > m.MaxBatch {
		b = m.MaxBatch
	}
	return m.Alpha + time.Duration(b)*m.Beta
}

// Throughput returns requests/second sustained at batch size b.
func (m Model) Throughput(b int) float64 {
	d := m.Duration(b)
	if d <= 0 {
		return 0
	}
	if b > m.MaxBatch {
		b = m.MaxBatch
	}
	if b < 1 {
		b = 1
	}
	return float64(b) / d.Seconds()
}

// MaxThroughput returns the highest throughput over feasible batch sizes and
// the batch size achieving it (always MaxBatch for affine profiles, but
// computed generically).
func (m Model) MaxThroughput() (float64, int) {
	best, bestB := 0.0, 1
	for b := 1; b <= m.MaxBatch; b++ {
		if tp := m.Throughput(b); tp > best {
			best, bestB = tp, b
		}
	}
	return best, bestB
}

// BestBatch returns the largest batch size whose execution duration fits
// within budget, or 0 when even batch size 1 does not fit. Serving systems
// use it to pick the per-module target batch size from an SLO share.
func (m Model) BestBatch(budget time.Duration) int {
	if m.Duration(1) > budget {
		return 0
	}
	// Invert the affine curve, then clamp; avoids a linear scan.
	b := int(math.Floor(float64(budget-m.Alpha) / float64(m.Beta)))
	if b > m.MaxBatch {
		b = m.MaxBatch
	}
	for b > 1 && m.Duration(b) > budget {
		b--
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Library is a named collection of model profiles, as produced by an offline
// profiling pass.
type Library struct {
	Models map[string]Model `json:"models"`
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{Models: map[string]Model{}} }

// Fingerprint returns a stable, order-independent hash of the library's
// contents (model names and curve parameters). Two processes whose
// libraries fingerprint equally simulate identical latency curves — the
// check distributed sweeps use to refuse a peer whose profiles would
// silently produce divergent results.
func (l *Library) Fingerprint() uint64 {
	names := make([]string, 0, len(l.Models))
	for name := range l.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, name := range names {
		m := l.Models[name]
		fmt.Fprintf(h, "%s|%d|%d|%d|%v\x00", name, m.Alpha, m.Beta, m.MaxBatch, m.JitterPct)
	}
	return h.Sum64()
}

// Add validates and registers a model, rejecting duplicates.
func (l *Library) Add(m Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if _, ok := l.Models[m.Name]; ok {
		return fmt.Errorf("profile: duplicate model %q", m.Name)
	}
	l.Models[m.Name] = m
	return nil
}

// Get returns the named model.
func (l *Library) Get(name string) (Model, error) {
	m, ok := l.Models[name]
	if !ok {
		return Model{}, fmt.Errorf("profile: unknown model %q", name)
	}
	return m, nil
}

// Save writes the library as JSON.
func (l *Library) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

// Load parses a library from JSON and validates every model.
func Load(r io.Reader) (*Library, error) {
	var l Library
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if l.Models == nil {
		l.Models = map[string]Model{}
	}
	for name, m := range l.Models {
		if m.Name == "" {
			m.Name = name
			l.Models[name] = m
		}
		if m.Name != name {
			return nil, fmt.Errorf("profile: key %q names model %q", name, m.Name)
		}
		if err := m.Validate(); err != nil {
			return nil, err
		}
	}
	return &l, nil
}

// Scaled returns a copy of the library with every model's α and β
// multiplied by factor (e.g. 0.05 for a 20× faster demo deployment).
func (l *Library) Scaled(factor float64) (*Library, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("profile: scale factor must be positive, got %v", factor)
	}
	out := NewLibrary()
	for _, m := range l.Models {
		s := m
		s.Alpha = time.Duration(float64(m.Alpha) * factor)
		s.Beta = time.Duration(float64(m.Beta) * factor)
		if s.Beta < time.Microsecond {
			s.Beta = time.Microsecond
		}
		if err := out.Add(s); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DefaultLibrary returns the model profiles used by the paper's four
// applications (§5.1). Absolute numbers are calibrated for 2080Ti-class
// throughput so each pipeline can meet its SLO at moderate batch sizes.
func DefaultLibrary() *Library {
	l := NewLibrary()
	// Per-worker throughput is calibrated to tens of req/s at the target
	// batch size so the paper's 100-600 req/s traces need multi-worker pools
	// per module (the 64-GPU-cluster regime) and workload bursts genuinely
	// exceed capacity until the scaling engine catches up.
	models := []Model{
		// tm: traffic monitoring (3 modules, SLO 400 ms)
		{Name: "objdet", Alpha: 18 * time.Millisecond, Beta: 6 * time.Millisecond, MaxBatch: 16},
		{Name: "facerec", Alpha: 14 * time.Millisecond, Beta: 5 * time.Millisecond, MaxBatch: 16},
		{Name: "textrec", Alpha: 15 * time.Millisecond, Beta: 5500 * time.Microsecond, MaxBatch: 16},
		// lv: live video analysis (5 modules, SLO 500 ms)
		{Name: "persondet", Alpha: 16 * time.Millisecond, Beta: 5500 * time.Microsecond, MaxBatch: 16},
		{Name: "exprrec", Alpha: 12 * time.Millisecond, Beta: 4500 * time.Microsecond, MaxBatch: 16},
		{Name: "eyetrack", Alpha: 11 * time.Millisecond, Beta: 4 * time.Millisecond, MaxBatch: 16},
		{Name: "poserec", Alpha: 14 * time.Millisecond, Beta: 5 * time.Millisecond, MaxBatch: 16},
		// gm: game analysis (5 modules, SLO 600 ms)
		{Name: "gameobj", Alpha: 19 * time.Millisecond, Beta: 6500 * time.Microsecond, MaxBatch: 16},
		{Name: "killdet", Alpha: 13 * time.Millisecond, Beta: 4500 * time.Microsecond, MaxBatch: 16},
		{Name: "alivecount", Alpha: 11 * time.Millisecond, Beta: 4 * time.Millisecond, MaxBatch: 16},
		{Name: "healthval", Alpha: 11 * time.Millisecond, Beta: 4 * time.Millisecond, MaxBatch: 16},
		{Name: "iconrec", Alpha: 12 * time.Millisecond, Beta: 4500 * time.Microsecond, MaxBatch: 16},
	}
	for _, m := range models {
		if err := l.Add(m); err != nil {
			panic(err) // static table; unreachable
		}
	}
	return l
}
