package profile

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func validModel() Model {
	return Model{Name: "m", Alpha: 10 * time.Millisecond, Beta: 2 * time.Millisecond, MaxBatch: 16}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		mutate func(*Model)
		ok     bool
	}{
		{func(m *Model) {}, true},
		{func(m *Model) { m.Name = "" }, false},
		{func(m *Model) { m.Alpha = -1 }, false},
		{func(m *Model) { m.Beta = 0 }, false},
		{func(m *Model) { m.MaxBatch = 0 }, false},
		{func(m *Model) { m.JitterPct = 0.9 }, false},
		{func(m *Model) { m.JitterPct = 0.1 }, true},
	}
	for i, c := range cases {
		m := validModel()
		c.mutate(&m)
		if err := m.Validate(); (err == nil) != c.ok {
			t.Fatalf("case %d: err = %v, ok = %v", i, err, c.ok)
		}
	}
}

func TestDuration(t *testing.T) {
	m := validModel()
	if got := m.Duration(1); got != 12*time.Millisecond {
		t.Fatalf("d(1) = %v", got)
	}
	if got := m.Duration(8); got != 26*time.Millisecond {
		t.Fatalf("d(8) = %v", got)
	}
	if got := m.Duration(0); got != m.Duration(1) {
		t.Fatal("b<1 not clamped")
	}
	if got := m.Duration(100); got != m.Duration(16) {
		t.Fatal("b>MaxBatch not clamped")
	}
}

func TestThroughputIncreasesWithBatch(t *testing.T) {
	m := validModel()
	prev := 0.0
	for b := 1; b <= m.MaxBatch; b++ {
		tp := m.Throughput(b)
		if tp <= prev {
			t.Fatalf("throughput not increasing at b=%d: %v <= %v", b, tp, prev)
		}
		prev = tp
	}
	best, bestB := m.MaxThroughput()
	if bestB != m.MaxBatch || best != m.Throughput(m.MaxBatch) {
		t.Fatalf("MaxThroughput = %v@%d", best, bestB)
	}
}

func TestBestBatch(t *testing.T) {
	m := validModel() // d(b) = 10 + 2b ms
	cases := []struct {
		budget time.Duration
		want   int
	}{
		{11 * time.Millisecond, 0}, // even b=1 (12ms) doesn't fit
		{12 * time.Millisecond, 1}, // exactly b=1
		{20 * time.Millisecond, 5}, // 10+2*5=20
		{21 * time.Millisecond, 5}, // b=5 fits, b=6 is 22ms
		{1 * time.Second, 16},      // capped at MaxBatch
		{41999 * time.Microsecond, 15},
	}
	for _, c := range cases {
		if got := m.BestBatch(c.budget); got != c.want {
			t.Fatalf("BestBatch(%v) = %d, want %d", c.budget, got, c.want)
		}
	}
}

// Property: BestBatch result always fits within budget and is maximal.
func TestPropertyBestBatchMaximal(t *testing.T) {
	f := func(alphaMs, betaMs uint8, budgetMs uint16) bool {
		m := Model{
			Name:     "p",
			Alpha:    time.Duration(alphaMs) * time.Millisecond,
			Beta:     time.Duration(betaMs%50+1) * time.Millisecond,
			MaxBatch: 32,
		}
		budget := time.Duration(budgetMs) * time.Millisecond
		b := m.BestBatch(budget)
		if b == 0 {
			return m.Duration(1) > budget
		}
		if m.Duration(b) > budget {
			return false
		}
		if b < m.MaxBatch && m.Duration(b+1) <= budget {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLibraryAddGet(t *testing.T) {
	l := NewLibrary()
	if err := l.Add(validModel()); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(validModel()); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := l.Get("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Get("nope"); err == nil {
		t.Fatal("unknown model found")
	}
	bad := validModel()
	bad.Beta = 0
	if err := l.Add(bad); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestLibrarySaveLoadRoundTrip(t *testing.T) {
	l := DefaultLibrary()
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Models) != len(l.Models) {
		t.Fatalf("round trip lost models: %d vs %d", len(back.Models), len(l.Models))
	}
	for name, m := range l.Models {
		if back.Models[name] != m {
			t.Fatalf("model %s changed: %+v vs %+v", name, back.Models[name], m)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"models":{"a":{"name":"b","alpha_ns":1,"beta_ns":1,"max_batch":1}}}`)); err == nil {
		t.Fatal("key/name mismatch accepted")
	}
	// Name filled from key when omitted.
	l, err := Load(strings.NewReader(`{"models":{"a":{"alpha_ns":1000,"beta_ns":1000,"max_batch":4}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := l.Get("a"); m.Name != "a" {
		t.Fatalf("name not defaulted: %+v", m)
	}
	// Empty object gets a usable empty map.
	l2, err := Load(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if l2.Models == nil {
		t.Fatal("nil models map")
	}
}

func TestDefaultLibraryCoversPaperModels(t *testing.T) {
	l := DefaultLibrary()
	required := []string{
		"objdet", "facerec", "textrec", // tm
		"persondet", "exprrec", "eyetrack", "poserec", // lv (+facerec)
		"gameobj", "killdet", "alivecount", "healthval", "iconrec", // gm
	}
	for _, name := range required {
		m, err := l.Get(name)
		if err != nil {
			t.Fatalf("missing %s", name)
		}
		// Every model must sustain tens of req/s at max batch so the paper's
		// request rates are servable by a multi-worker pool per module.
		if tp, _ := m.MaxThroughput(); tp < 60 {
			t.Fatalf("%s max throughput %v too low for paper workloads", name, tp)
		}
	}
}

func BenchmarkBestBatch(b *testing.B) {
	m := validModel()
	for i := 0; i < b.N; i++ {
		m.BestBatch(time.Duration(i%100) * time.Millisecond)
	}
}
