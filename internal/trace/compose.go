package trace

import (
	"fmt"
	"sort"
	"time"
)

// Merge combines several traces into one (e.g. multiple client populations
// hitting the same pipeline). Durations extend to the longest input.
func Merge(name string, traces ...*Trace) *Trace {
	total := 0
	var dur time.Duration
	for _, tr := range traces {
		total += len(tr.Arrivals)
		if tr.Duration > dur {
			dur = tr.Duration
		}
	}
	out := make([]time.Duration, 0, total)
	for _, tr := range traces {
		out = append(out, tr.Arrivals...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return &Trace{Name: name, Arrivals: out, Duration: dur}
}

// ScaleRate returns a copy with arrivals thinned (factor < 1) or replicated
// with small offsets (factor > 1) so the mean rate scales by factor while
// preserving the temporal shape. The stretch is deterministic.
func (tr *Trace) ScaleRate(factor float64) (*Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("trace: rate factor must be positive, got %v", factor)
	}
	var out []time.Duration
	whole := int(factor)
	frac := factor - float64(whole)
	// Deterministic fractional selection: keep arrival i's extra copy when
	// the accumulated fraction crosses an integer (error diffusion).
	acc := 0.0
	for i, a := range tr.Arrivals {
		for c := 0; c < whole; c++ {
			// Spread replicas by a small deterministic jitter so they do not
			// collide on identical timestamps.
			out = append(out, a+time.Duration(c)*37*time.Microsecond)
		}
		acc += frac
		if acc >= 1 {
			acc--
			out = append(out, a+time.Duration(i%7+1)*53*time.Microsecond)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return &Trace{Name: tr.Name, Arrivals: out, Duration: tr.Duration}, nil
}

// Offset returns a copy with every arrival shifted by delta (clamped at 0);
// the duration grows by delta when positive.
func (tr *Trace) Offset(delta time.Duration) *Trace {
	out := make([]time.Duration, 0, len(tr.Arrivals))
	for _, a := range tr.Arrivals {
		a += delta
		if a < 0 {
			continue
		}
		out = append(out, a)
	}
	dur := tr.Duration
	if delta > 0 {
		dur += delta
	}
	return &Trace{Name: tr.Name, Arrivals: out, Duration: dur}
}

// Stretch returns a copy with time dilated by factor (> 1 slows the trace
// down, reducing the rate; < 1 compresses it).
func (tr *Trace) Stretch(factor float64) (*Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("trace: stretch factor must be positive, got %v", factor)
	}
	out := make([]time.Duration, len(tr.Arrivals))
	for i, a := range tr.Arrivals {
		out[i] = time.Duration(float64(a) * factor)
	}
	return &Trace{
		Name:     tr.Name,
		Arrivals: out,
		Duration: time.Duration(float64(tr.Duration) * factor),
	}, nil
}
