package trace

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// These tests pin Analyze/burstCV edge cases and the ThinningInto/AnalyzeInto
// buffer-reuse contracts added alongside the allocation-lean sweep path.

func TestAnalyzeSubSecondDuration(t *testing.T) {
	tr := &Trace{
		Name:     "sub",
		Arrivals: []time.Duration{100 * time.Millisecond, 400 * time.Millisecond},
		Duration: 500 * time.Millisecond,
	}
	st := tr.Analyze()
	if st.Seconds != 1 {
		t.Fatalf("sub-second trace binned into %d seconds, want 1 (ceil)", st.Seconds)
	}
	if len(st.PerSecond) != 1 || st.PerSecond[0] != 2 {
		t.Fatalf("per-second = %v, want [2]", st.PerSecond)
	}
	if st.MeanRate != 2 || st.PeakRate != 2 {
		t.Fatalf("mean %v peak %v, want 2 2", st.MeanRate, st.PeakRate)
	}
	// A single bin has zero variance, so both CV measures are zero.
	if st.CV != 0 || st.BurstCV != 0 {
		t.Fatalf("single-bin CV=%v BurstCV=%v, want 0 0", st.CV, st.BurstCV)
	}
}

func TestBurstCVWidthExceedsLength(t *testing.T) {
	counts := []float64{1, 5, 2, 8, 4}
	// With width larger than the series, every centered window spans the whole
	// series, so the detrend subtracts the global mean and burstCV degenerates
	// to the plain CV.
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	var ss float64
	for _, c := range counts {
		ss += (c - mean) * (c - mean)
	}
	wantCV := math.Sqrt(ss/float64(len(counts))) / mean
	if got := burstCV(counts, 30); math.Abs(got-wantCV) > 1e-12 {
		t.Fatalf("burstCV(width>len) = %v, want plain CV %v", got, wantCV)
	}
	if got := burstCV(nil, 30); got != 0 {
		t.Fatalf("burstCV(nil) = %v, want 0", got)
	}
	if got := burstCV([]float64{0, 0, 0}, 30); got != 0 {
		t.Fatalf("burstCV(zero mean) = %v, want 0", got)
	}
}

func TestThinningIntoMatchesThinning(t *testing.T) {
	rate := func(t time.Duration) float64 { return 40 + 20*math.Sin(t.Seconds()) }
	a := rand.New(rand.NewSource(17))
	b := rand.New(rand.NewSource(17))
	want := Thinning(rate, 60, 30*time.Second, a)
	buf := make([]time.Duration, 3, 4096)
	got := ThinningInto(buf, rate, 60, 30*time.Second, b)
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d (RNG draw order must match)", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	if len(got) > 0 && len(got) <= cap(buf) && &got[0] != &buf[:1][0] {
		t.Fatal("ThinningInto did not reuse the provided buffer")
	}
	// Degenerate inputs return nil exactly like Thinning.
	if got := ThinningInto(buf, rate, 0, time.Second, b); got != nil {
		t.Fatal("maxRate=0 should yield nil")
	}
	if got := ThinningInto(buf, rate, 1, 0, b); got != nil {
		t.Fatal("duration=0 should yield nil")
	}
}

func TestAnalyzeIntoReusesScratch(t *testing.T) {
	tr := MustGenerate(Config{Kind: Steady, Duration: 20 * time.Second, PeakRate: 50, Seed: 4})
	want := tr.Analyze()
	buf := make([]float64, 5, 64)
	buf[0] = 1e9 // stale garbage must be zeroed, not accumulated
	st := tr.AnalyzeInto(buf)
	if st.Seconds != want.Seconds || st.MeanRate != want.MeanRate ||
		st.PeakRate != want.PeakRate || st.CV != want.CV || st.BurstCV != want.BurstCV {
		t.Fatalf("AnalyzeInto %+v != Analyze %+v", st, want)
	}
	for i := range st.PerSecond {
		if st.PerSecond[i] != want.PerSecond[i] {
			t.Fatalf("per-second bin %d differs: %v vs %v", i, st.PerSecond[i], want.PerSecond[i])
		}
	}
	if &st.PerSecond[0] != &buf[:1][0] {
		t.Fatal("AnalyzeInto did not reuse the provided scratch")
	}
	// Short capacity falls back to a fresh allocation, never a slice panic.
	st2 := tr.AnalyzeInto(make([]float64, 0, 2))
	if st2.Seconds != want.Seconds || st2.PerSecond[0] != want.PerSecond[0] {
		t.Fatalf("short-capacity AnalyzeInto diverged: %+v", st2)
	}
}
