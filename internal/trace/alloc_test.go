package trace

import (
	"math/rand"
	"testing"
	"time"
)

// These tests pin the trace-generation hot path: regenerating and analyzing
// traces in a loop with reused buffers allocates nothing in steady state.

// TestAllocsThinningInto: thinning into a pre-sized buffer is allocation-free.
func TestAllocsThinningInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rate := func(time.Duration) float64 { return 50 }
	dur := 10 * time.Second
	buf := make([]time.Duration, 0, 2*expectedArrivals(60, dur))

	avg := testing.AllocsPerRun(50, func() {
		buf = ThinningInto(buf, rate, 60, dur, rng)
	})
	if avg != 0 {
		t.Fatalf("ThinningInto allocates %.1f per trace, want 0", avg)
	}
}

// TestAllocsAnalyzeInto: analyzing a trace through a reused per-second
// scratch is allocation-free.
func TestAllocsAnalyzeInto(t *testing.T) {
	tr := MustGenerate(Config{Kind: Tweet, Duration: 60 * time.Second, Seed: 6})
	buf := make([]float64, 0, 64)
	st := tr.AnalyzeInto(buf)
	buf = st.PerSecond

	avg := testing.AllocsPerRun(50, func() {
		st := tr.AnalyzeInto(buf)
		buf = st.PerSecond
	})
	if avg != 0 {
		t.Fatalf("AnalyzeInto allocates %.1f per analysis, want 0", avg)
	}
}
