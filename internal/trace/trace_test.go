package trace

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		tr, err := Generate(Config{Kind: k, Duration: 100 * time.Second, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if tr.Len() == 0 {
			t.Fatalf("%s: empty trace", k)
		}
		if !sort.SliceIsSorted(tr.Arrivals, func(i, j int) bool { return tr.Arrivals[i] < tr.Arrivals[j] }) {
			t.Fatalf("%s: arrivals not sorted", k)
		}
		for _, a := range tr.Arrivals {
			if a < 0 || a >= tr.Duration {
				t.Fatalf("%s: arrival %v outside [0, %v)", k, a, tr.Duration)
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Kind: Wiki, Duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Generate(Config{Kind: Kind("nope"), Duration: time.Second}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(Config{Kind: Tweet, Duration: 200 * time.Second, Seed: 7})
	b := MustGenerate(Config{Kind: Tweet, Duration: 200 * time.Second, Seed: 7})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
	c := MustGenerate(Config{Kind: Tweet, Duration: 200 * time.Second, Seed: 8})
	if c.Len() == a.Len() {
		same := true
		for i := range a.Arrivals {
			if a.Arrivals[i] != c.Arrivals[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestSteadyRateMatchesTarget(t *testing.T) {
	tr := MustGenerate(Config{Kind: Steady, Duration: 200 * time.Second, PeakRate: 100, Seed: 3})
	got := tr.MeanRate()
	if math.Abs(got-100) > 5 {
		t.Fatalf("steady mean rate = %v, want ≈100", got)
	}
}

func TestStepDoubles(t *testing.T) {
	tr := MustGenerate(Config{Kind: Step, Duration: 400 * time.Second, PeakRate: 200, Seed: 3})
	first := tr.Slice(0, 200*time.Second)
	second := tr.Slice(200*time.Second, 400*time.Second)
	r1, r2 := first.MeanRate(), second.MeanRate()
	if r2 < 1.7*r1 || r2 > 2.3*r1 {
		t.Fatalf("step ratio = %v (r1=%v r2=%v), want ≈2", r2/r1, r1, r2)
	}
}

func TestTweetBurstDoublesRate(t *testing.T) {
	dur := 1400 * time.Second
	tr := MustGenerate(Config{Kind: Tweet, Duration: dur, Seed: 11})
	// Burst is centered at 0.6 × 1400 s = 840 s (paper: rate doubles around
	// t = 850 s, Fig. 2d / §3.2).
	pre := tr.Slice(700*time.Second, 800*time.Second).MeanRate()
	burst := tr.Slice(840*time.Second, 880*time.Second).MeanRate()
	if burst < 1.5*pre {
		t.Fatalf("burst rate %v not ≥1.5× pre-burst %v", burst, pre)
	}
}

func TestWikiSmootherThanAzure(t *testing.T) {
	wiki := MustGenerate(Config{Kind: Wiki, Duration: 1000 * time.Second, Seed: 5}).Analyze()
	azure := MustGenerate(Config{Kind: Azure, Duration: 1000 * time.Second, Seed: 5}).Analyze()
	tweet := MustGenerate(Config{Kind: Tweet, Duration: 1400 * time.Second, Seed: 5}).Analyze()
	// Relative burstiness ordering from §5.4: wiki < tweet < azure, measured
	// on the detrended burst CV so wiki's deliberate ramp doesn't count as
	// burstiness.
	if !(wiki.BurstCV < tweet.BurstCV) {
		t.Fatalf("BurstCV ordering violated: wiki %v !< tweet %v", wiki.BurstCV, tweet.BurstCV)
	}
	if !(tweet.BurstCV < azure.BurstCV) {
		t.Fatalf("BurstCV ordering violated: tweet %v !< azure %v", tweet.BurstCV, azure.BurstCV)
	}
}

func TestWikiRampsUp(t *testing.T) {
	tr := MustGenerate(Config{Kind: Wiki, Duration: 1000 * time.Second, Seed: 9})
	early := tr.Slice(0, 100*time.Second).MeanRate()
	late := tr.Slice(900*time.Second, 1000*time.Second).MeanRate()
	if late < 2*early {
		t.Fatalf("wiki should ramp: early %v, late %v", early, late)
	}
}

func TestThinningMatchesIntegral(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rate := func(t time.Duration) float64 { return 50 + 50*t.Seconds()/100 }
	arr := Thinning(rate, 100, 100*time.Second, rng)
	// Integral of rate over [0,100] = 50*100 + 50*100/2 = 7500.
	if n := float64(len(arr)); math.Abs(n-7500) > 300 {
		t.Fatalf("thinning count %v, want ≈7500", n)
	}
}

func TestThinningEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := Thinning(func(time.Duration) float64 { return 1 }, 0, time.Second, rng); got != nil {
		t.Fatal("maxRate=0 should yield nil")
	}
	if got := Thinning(func(time.Duration) float64 { return 1 }, 1, 0, rng); got != nil {
		t.Fatal("duration=0 should yield nil")
	}
	got := Thinning(func(time.Duration) float64 { return 0 }, 10, 10*time.Second, rng)
	if len(got) != 0 {
		t.Fatalf("zero rate produced %d arrivals", len(got))
	}
}

func TestAnalyzeCounts(t *testing.T) {
	tr := &Trace{
		Name:     "x",
		Arrivals: []time.Duration{0, 500 * time.Millisecond, 1500 * time.Millisecond},
		Duration: 2 * time.Second,
	}
	st := tr.Analyze()
	if st.Seconds != 2 {
		t.Fatalf("seconds = %d", st.Seconds)
	}
	if st.PerSecond[0] != 2 || st.PerSecond[1] != 1 {
		t.Fatalf("per-second = %v", st.PerSecond)
	}
	if st.MeanRate != 1.5 || st.PeakRate != 2 {
		t.Fatalf("mean %v peak %v", st.MeanRate, st.PeakRate)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	tr := &Trace{Name: "e"}
	if st := tr.Analyze(); st.Seconds != 0 || st.CV != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestSliceReanchors(t *testing.T) {
	tr := &Trace{
		Arrivals: []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second},
		Duration: 5 * time.Second,
	}
	s := tr.Slice(2*time.Second, 4*time.Second)
	if s.Len() != 2 {
		t.Fatalf("slice len = %d, want 2", s.Len())
	}
	if s.Arrivals[0] != 0 || s.Arrivals[1] != time.Second {
		t.Fatalf("slice not re-anchored: %v", s.Arrivals)
	}
	if s.Duration != 2*time.Second {
		t.Fatalf("slice duration = %v", s.Duration)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := MustGenerate(Config{Kind: Steady, Duration: 10 * time.Second, PeakRate: 50, Seed: 2})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("steady", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip len %d vs %d", back.Len(), tr.Len())
	}
	for i := range back.Arrivals {
		if d := back.Arrivals[i] - tr.Arrivals[i]; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("arrival %d drifted by %v", i, d)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("abc\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCSV("x", strings.NewReader("-1\n")); err == nil {
		t.Fatal("negative arrival accepted")
	}
	tr, err := ReadCSV("x", strings.NewReader("# comment\n\n2.0\n1.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.Arrivals[0] != time.Second {
		t.Fatalf("unsorted input not sorted: %v", tr.Arrivals)
	}
}

// Property: thinning never produces arrivals outside [0, duration) and the
// sequence is sorted.
func TestPropertyThinningBounds(t *testing.T) {
	f := func(seed int64, durSec uint8, rate uint8) bool {
		if durSec == 0 || rate == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		d := time.Duration(durSec) * time.Second
		r := float64(rate)
		arr := Thinning(func(time.Duration) float64 { return r }, r, d, rng)
		prev := time.Duration(-1)
		for _, a := range arr {
			if a < 0 || a >= d || a < prev {
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: rate functions are nonnegative and bounded by the reported max.
func TestPropertyRateBounded(t *testing.T) {
	for _, k := range Kinds() {
		c := Config{Kind: k, Duration: 500 * time.Second}
		f, maxRate, err := c.Rate()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i <= 1000; i++ {
			at := time.Duration(i) * 500 * time.Millisecond
			r := f(at)
			if r < 0 || r > maxRate+1e-9 {
				t.Fatalf("%s: rate(%v) = %v outside [0, %v]", k, at, r, maxRate)
			}
		}
	}
}

func TestFixed(t *testing.T) {
	tr := Fixed(100, 2*time.Second)
	if tr.Len() != 200 {
		t.Fatalf("Fixed(100/s, 2s) has %d arrivals, want 200", tr.Len())
	}
	gap := 10 * time.Millisecond
	for i, a := range tr.Arrivals {
		if a != time.Duration(i)*gap {
			t.Fatalf("arrival %d at %v, want %v", i, a, time.Duration(i)*gap)
		}
	}
	if got := tr.MeanRate(); got != 100 {
		t.Fatalf("mean rate %v, want 100", got)
	}
	if st := tr.Analyze(); st.CV != 0 {
		t.Fatalf("fixed-rate CV = %v, want 0", st.CV)
	}
	if Fixed(0, time.Second) != nil || Fixed(100, 0) != nil {
		t.Fatal("degenerate Fixed configs must return nil")
	}
}

func BenchmarkGenerateTweet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustGenerate(Config{Kind: Tweet, Duration: 1400 * time.Second, Seed: int64(i)})
	}
}
