// Package trace generates and replays request-arrival workloads.
//
// The paper evaluates on three real traces — Wikipedia access (smooth,
// CV≈0.47), Twitter access (bursty, a 2× spike near t=850 s, CV≈1.0) and
// Azure Functions (highly spiky, CV≈1.3). Those traces are not
// redistributable, so this package synthesizes rate processes with the same
// published shapes (see DESIGN.md's substitution table) and turns them into
// arrival timestamps with a non-homogeneous Poisson process via Lewis-Shedler
// thinning. Real traces can still be replayed from CSV.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names a built-in synthetic workload shape.
type Kind string

// Built-in workload kinds.
const (
	Wiki   Kind = "wiki"   // smooth diurnal ramp, low burstiness
	Tweet  Kind = "tweet"  // moderate noise with a 2× burst around t≈850 s
	Azure  Kind = "azure"  // rapid spiky oscillation
	Steady Kind = "steady" // constant rate (sanity baselines, stress tests)
	Step   Kind = "step"   // constant rate that doubles halfway through
)

// Kinds lists the built-in shapes.
func Kinds() []Kind { return []Kind{Wiki, Tweet, Azure, Steady, Step} }

// RateFunc maps elapsed time to an instantaneous request rate in req/s.
type RateFunc func(t time.Duration) float64

// Trace is a concrete arrival sequence.
type Trace struct {
	Name     string
	Arrivals []time.Duration // sorted, offsets from t=0
	Duration time.Duration
}

// Len returns the number of arrivals.
func (tr *Trace) Len() int { return len(tr.Arrivals) }

// MeanRate returns the average request rate over the trace duration.
func (tr *Trace) MeanRate() float64 {
	if tr.Duration <= 0 {
		return 0
	}
	return float64(len(tr.Arrivals)) / tr.Duration.Seconds()
}

// Config parameterizes trace synthesis.
type Config struct {
	Kind     Kind
	Duration time.Duration
	// PeakRate scales the shape so its maximum nominal rate is PeakRate
	// req/s. Zero selects the paper's nominal peak for the kind.
	PeakRate float64
	Seed     int64
	// BurstAt positions the tweet/step burst as a fraction of Duration
	// (default: kind-specific, tweet ≈ 0.6).
	BurstAt float64
}

// nominalPeak mirrors the y-axis ranges of Fig. 10 (left).
func nominalPeak(k Kind) float64 {
	switch k {
	case Wiki:
		return 400
	case Tweet:
		return 600
	case Azure:
		return 600
	case Steady:
		return 300
	case Step:
		return 400
	default:
		return 300
	}
}

// Rate returns the shape's rate function. The returned function is
// deterministic in t (noise terms are fixed-frequency harmonics, not RNG
// driven) so that integrating it is reproducible; Poisson sampling supplies
// the stochasticity.
func (c Config) Rate() (RateFunc, float64, error) {
	dur := c.Duration
	if dur <= 0 {
		return nil, 0, fmt.Errorf("trace: duration must be positive, got %v", dur)
	}
	peak := c.PeakRate
	if peak <= 0 {
		peak = nominalPeak(c.Kind)
	}
	T := dur.Seconds()
	burstAt := c.BurstAt
	switch c.Kind {
	case Wiki:
		// Smooth ramp from ~25% to 100% of peak with gentle harmonics
		// (Fig. 10 wiki panel: ~100 → 400 req/s over ~1000 s).
		f := func(t time.Duration) float64 {
			x := t.Seconds() / T
			base := 0.25 + 0.75*x
			wobble := 0.06*math.Sin(2*math.Pi*6*x) + 0.04*math.Sin(2*math.Pi*13*x+1.3)
			r := peak * (base + wobble)
			return clampRate(r, peak)
		}
		return f, peak * 1.1, nil
	case Tweet:
		// Mid-level noisy load with a 2× burst around burstAt (default 0.6 of
		// the duration ≈ t=850 s for the 1400 s trace in Fig. 2d/10).
		if burstAt == 0 {
			burstAt = 0.6
		}
		f := func(t time.Duration) float64 {
			x := t.Seconds() / T
			base := 0.45 + 0.08*math.Sin(2*math.Pi*3*x) + 0.07*math.Sin(2*math.Pi*11*x+0.7) +
				0.05*math.Sin(2*math.Pi*23*x+2.1)
			// Main burst: sharp rise (seconds, faster than cold starts),
			// exponential-ish decay (§3.2: input doubles around t=850 s).
			base += burstPulse(x, burstAt, 0.003, 0.035, 0.55)
			// Two secondary bursts.
			base += burstPulse(x, burstAt*0.45, 0.004, 0.02, 0.25)
			base += burstPulse(x, math.Min(burstAt*1.4, 0.95), 0.004, 0.018, 0.2)
			return clampRate(peak*base, peak)
		}
		return f, peak * 1.1, nil
	case Azure:
		// High-frequency spiky oscillation in the upper band
		// (Fig. 10 azure panel: 400–600 req/s, CV≈1.3 burstiness).
		f := func(t time.Duration) float64 {
			x := t.Seconds() / T
			base := 0.72 + 0.08*math.Sin(2*math.Pi*5*x)
			// Dense spike train at incommensurate frequencies gives the
			// spiky profile.
			s := math.Sin(2*math.Pi*97*x) * math.Sin(2*math.Pi*41*x+0.9)
			if s > 0.45 {
				base += 0.55 * (s - 0.45) / 0.55
			}
			if s < -0.55 {
				base -= 0.6 * (-s - 0.55) / 0.45
			}
			return clampRate(peak*base, peak)
		}
		return f, peak * 1.25, nil
	case Steady:
		f := func(time.Duration) float64 { return peak }
		return f, peak, nil
	case Step:
		if burstAt == 0 {
			burstAt = 0.5
		}
		f := func(t time.Duration) float64 {
			if t.Seconds()/T >= burstAt {
				return peak
			}
			return peak / 2
		}
		return f, peak, nil
	default:
		return nil, 0, fmt.Errorf("trace: unknown kind %q", c.Kind)
	}
}

// burstPulse is a pulse at center (fractional time) with rise/decay widths
// and amplitude, used to compose bursty shapes.
func burstPulse(x, center, rise, decay, amp float64) float64 {
	d := x - center
	switch {
	case d < -rise || d > 6*decay:
		return 0
	case d < 0:
		return amp * (1 + d/rise)
	default:
		return amp * math.Exp(-d/decay)
	}
}

func clampRate(r, peak float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1.2*peak {
		return 1.2 * peak
	}
	return r
}

// Generate synthesizes a trace from the config.
func Generate(c Config) (*Trace, error) {
	f, maxRate, err := c.Rate()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	arrivals := Thinning(f, maxRate, c.Duration, rng)
	return &Trace{
		Name:     string(c.Kind),
		Arrivals: arrivals,
		Duration: c.Duration,
	}, nil
}

// MustGenerate is Generate for static configs; it panics on config errors.
func MustGenerate(c Config) *Trace {
	tr, err := Generate(c)
	if err != nil {
		panic(err)
	}
	return tr
}

// Fixed returns a deterministic constant-gap arrival sequence: exactly one
// arrival every 1/rate seconds over [0, duration). Contrast Steady, which
// is Poisson with constant intensity — Fixed has zero arrival-time variance
// and is the classic open-loop load-generator schedule (CV = 0 baselines,
// capacity probes). It returns nil when rate or duration is non-positive.
func Fixed(rate float64, duration time.Duration) *Trace {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	gap := time.Duration(float64(time.Second) / rate)
	if gap <= 0 {
		gap = time.Nanosecond
	}
	arrivals := make([]time.Duration, 0, expectedArrivals(rate, duration))
	for at := time.Duration(0); at < duration; at += gap {
		arrivals = append(arrivals, at)
	}
	return &Trace{Name: "fixed", Arrivals: arrivals, Duration: duration}
}

// Thinning samples a non-homogeneous Poisson process with intensity rate(t)
// bounded by maxRate over [0, duration) using Lewis-Shedler thinning. The
// arrival buffer is sized up front for the expected candidate count, so a
// long trace is one allocation rather than an append growth chain.
func Thinning(rate RateFunc, maxRate float64, duration time.Duration, rng *rand.Rand) []time.Duration {
	if maxRate <= 0 || duration <= 0 {
		return nil
	}
	return ThinningInto(make([]time.Duration, 0, expectedArrivals(maxRate, duration)),
		rate, maxRate, duration, rng)
}

// ThinningInto is Thinning appending into buf[:0], reusing its capacity —
// for callers regenerating traces in a loop. It returns nil (matching
// Thinning) when maxRate or duration is non-positive; the RNG draw sequence
// is identical to Thinning's, so generated traces are byte-for-byte the same
// for the same rng state.
func ThinningInto(buf []time.Duration, rate RateFunc, maxRate float64, duration time.Duration, rng *rand.Rand) []time.Duration {
	if maxRate <= 0 || duration <= 0 {
		return nil
	}
	out := buf[:0]
	t := 0.0
	end := duration.Seconds()
	for {
		t += rng.ExpFloat64() / maxRate
		if t >= end {
			return out
		}
		at := time.Duration(t * float64(time.Second))
		if rng.Float64()*maxRate <= rate(at) {
			out = append(out, at)
		}
	}
}

// expectedArrivals bounds the thinning candidate count (maxRate·duration,
// clamped to keep a pathological config from pre-reserving gigabytes).
func expectedArrivals(maxRate float64, duration time.Duration) int {
	n := maxRate * duration.Seconds()
	const limit = 16 << 20
	if n < 0 || n > limit {
		return limit
	}
	return int(n)
}

// Stats summarizes a trace: per-second arrival counts, their mean and CV.
type Stats struct {
	Seconds   int
	MeanRate  float64
	PeakRate  float64
	CV        float64 // coefficient of variation of per-second counts
	BurstCV   float64 // CV of residuals from a 30 s moving average (detrended)
	PerSecond []float64
}

// Analyze bins arrivals per second and computes summary statistics.
func (tr *Trace) Analyze() Stats {
	return tr.AnalyzeInto(nil)
}

// AnalyzeInto is Analyze using buf as the per-second count scratch (grown
// only when capacity is short) — for callers analyzing traces in a loop.
// Stats.PerSecond aliases the scratch, so it is only valid until the next
// AnalyzeInto call reusing the same buffer.
func (tr *Trace) AnalyzeInto(buf []float64) Stats {
	secs := int(math.Ceil(tr.Duration.Seconds()))
	if secs <= 0 {
		return Stats{}
	}
	var counts []float64
	if cap(buf) >= secs {
		counts = buf[:secs]
		for i := range counts {
			counts[i] = 0
		}
	} else {
		counts = make([]float64, secs)
	}
	for _, a := range tr.Arrivals {
		i := int(a.Seconds())
		if i >= secs {
			i = secs - 1
		}
		counts[i]++
	}
	var sum, peak float64
	for _, c := range counts {
		sum += c
		if c > peak {
			peak = c
		}
	}
	mean := sum / float64(secs)
	var ss float64
	for _, c := range counts {
		d := c - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(secs))
	cv := 0.0
	if mean > 0 {
		cv = std / mean
	}
	return Stats{
		Seconds:   secs,
		MeanRate:  mean,
		PeakRate:  peak,
		CV:        cv,
		BurstCV:   burstCV(counts, 30),
		PerSecond: counts,
	}
}

// burstCV detrends per-second counts with a centered moving average of the
// given width and returns std(residual)/mean: a trend-insensitive burstiness
// measure used to rank traces (wiki < tweet < azure, §5.4).
func burstCV(counts []float64, width int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(n)
	if mean == 0 {
		return 0
	}
	half := width / 2
	var ss float64
	for i := range counts {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		var local float64
		for j := lo; j <= hi; j++ {
			local += counts[j]
		}
		local /= float64(hi - lo + 1)
		d := counts[i] - local
		ss += d * d
	}
	return math.Sqrt(ss/float64(n)) / mean
}

// Slice returns the sub-trace covering [from, to), re-anchored at t=0.
func (tr *Trace) Slice(from, to time.Duration) *Trace {
	lo := sort.Search(len(tr.Arrivals), func(i int) bool { return tr.Arrivals[i] >= from })
	hi := sort.Search(len(tr.Arrivals), func(i int) bool { return tr.Arrivals[i] >= to })
	out := make([]time.Duration, 0, hi-lo)
	for _, a := range tr.Arrivals[lo:hi] {
		out = append(out, a-from)
	}
	return &Trace{Name: tr.Name, Arrivals: out, Duration: to - from}
}

// WriteCSV writes one arrival offset (in seconds, fractional) per line.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace=%s duration_s=%.3f\n", tr.Name, tr.Duration.Seconds()); err != nil {
		return err
	}
	for _, a := range tr.Arrivals {
		if _, err := fmt.Fprintf(bw, "%.6f\n", a.Seconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV (or any newline-separated list
// of arrival offsets in seconds; '#' lines are comments).
func ReadCSV(name string, r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var arrivals []time.Duration
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("trace: line %d: negative arrival %v", line, v)
		}
		arrivals = append(arrivals, time.Duration(v*float64(time.Second)))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	slices.Sort(arrivals)
	dur := time.Duration(0)
	if n := len(arrivals); n > 0 {
		dur = arrivals[n-1] + time.Second
	}
	return &Trace{Name: name, Arrivals: arrivals, Duration: dur}, nil
}
