package trace

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func mkSteady(rate float64, dur time.Duration, seed int64) *Trace {
	return MustGenerate(Config{Kind: Steady, Duration: dur, PeakRate: rate, Seed: seed})
}

func TestMerge(t *testing.T) {
	a := mkSteady(50, 10*time.Second, 1)
	b := mkSteady(100, 20*time.Second, 2)
	m := Merge("both", a, b)
	if m.Len() != a.Len()+b.Len() {
		t.Fatalf("merge len %d != %d + %d", m.Len(), a.Len(), b.Len())
	}
	if m.Duration != 20*time.Second {
		t.Fatalf("merge duration %v", m.Duration)
	}
	if !sort.SliceIsSorted(m.Arrivals, func(i, j int) bool { return m.Arrivals[i] < m.Arrivals[j] }) {
		t.Fatal("merge not sorted")
	}
	// First half of the merged trace carries both populations.
	firstHalf := m.Slice(0, 10*time.Second)
	if r := firstHalf.MeanRate(); math.Abs(r-150) > 15 {
		t.Fatalf("merged rate %v, want ≈150", r)
	}
}

func TestScaleRateUp(t *testing.T) {
	tr := mkSteady(100, 20*time.Second, 3)
	up, err := tr.ScaleRate(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(up.Len()), 2.5*float64(tr.Len()); math.Abs(got-want) > want*0.01 {
		t.Fatalf("scaled count %v, want ≈%v", got, want)
	}
	if !sort.SliceIsSorted(up.Arrivals, func(i, j int) bool { return up.Arrivals[i] < up.Arrivals[j] }) {
		t.Fatal("scaled trace not sorted")
	}
}

func TestScaleRateDownViaStretchComposition(t *testing.T) {
	tr := mkSteady(100, 20*time.Second, 4)
	if _, err := tr.ScaleRate(0); err == nil {
		t.Fatal("factor 0 accepted")
	}
	half, err := tr.ScaleRate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(half.Len()), 0.5*float64(tr.Len()); math.Abs(got-want) > want*0.05 {
		t.Fatalf("halved count %v, want ≈%v", got, want)
	}
}

func TestOffset(t *testing.T) {
	tr := &Trace{
		Arrivals: []time.Duration{time.Second, 2 * time.Second},
		Duration: 3 * time.Second,
	}
	fwd := tr.Offset(time.Second)
	if fwd.Arrivals[0] != 2*time.Second || fwd.Duration != 4*time.Second {
		t.Fatalf("forward offset: %v %v", fwd.Arrivals, fwd.Duration)
	}
	back := tr.Offset(-1500 * time.Millisecond)
	if back.Len() != 1 || back.Arrivals[0] != 500*time.Millisecond {
		t.Fatalf("backward offset should clip: %v", back.Arrivals)
	}
}

func TestStretch(t *testing.T) {
	tr := mkSteady(100, 10*time.Second, 5)
	slow, err := tr.Stretch(2)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Duration != 20*time.Second {
		t.Fatalf("stretched duration %v", slow.Duration)
	}
	if got := slow.MeanRate(); math.Abs(got-tr.MeanRate()/2) > 5 {
		t.Fatalf("stretched rate %v, want ≈%v", got, tr.MeanRate()/2)
	}
	if _, err := tr.Stretch(-1); err == nil {
		t.Fatal("negative stretch accepted")
	}
}

// Property: ScaleRate preserves ordering and approximately scales the count
// for arbitrary factors in (0, 4].
func TestPropertyScaleRateCount(t *testing.T) {
	tr := mkSteady(80, 10*time.Second, 6)
	f := func(raw uint8) bool {
		factor := float64(raw%40)/10 + 0.1 // 0.1 .. 4.0
		out, err := tr.ScaleRate(factor)
		if err != nil {
			return false
		}
		if !sort.SliceIsSorted(out.Arrivals, func(i, j int) bool { return out.Arrivals[i] < out.Arrivals[j] }) {
			return false
		}
		want := factor * float64(tr.Len())
		return math.Abs(float64(out.Len())-want) <= want*0.05+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
