// Package plot renders time series as ASCII line charts for terminal
// output. cmd/pard-bench uses it to visualize the figure-style artifacts
// (goodput timelines, load-factor traces, latency CDFs) without any
// graphics dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is an ASCII line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 16)
	series []Series
	// YMin/YMax fix the y range when both are set (YMax > YMin).
	YMin, YMax float64
}

// markers assigns a rune per series, cycling when exhausted.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a series; x and y must have equal length.
func (c *Chart) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
	}
	c.series = append(c.series, s)
	return nil
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 16
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return fmt.Sprintf("%s\n(no data)\n", c.Title)
	}
	if c.YMax > c.YMin {
		ymin, ymax = c.YMin, c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	for si, s := range c.series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(w-1))
			y := s.Y[i]
			if y < ymin {
				y = ymin
			}
			if y > ymax {
				y = ymax
			}
			row := h - 1 - int((y-ymin)/(ymax-ymin)*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = m
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLabelW := 10
	for r := 0; r < h; r++ {
		yVal := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		label := ""
		if r == 0 || r == h-1 || r == h/2 {
			label = trimFloat(yVal)
		}
		fmt.Fprintf(&b, "%*s |%s\n", yLabelW, label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yLabelW, "", strings.Repeat("-", w))
	lo, hi := trimFloat(xmin), trimFloat(xmax)
	pad := w - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%*s  %s%s%s", yLabelW, "", lo, strings.Repeat(" ", pad), hi)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", c.XLabel)
	}
	b.WriteByte('\n')
	if len(c.series) > 1 || c.series[0].Name != "" {
		fmt.Fprintf(&b, "%*s  ", yLabelW, "")
		for si, s := range c.series {
			if si > 0 {
				b.WriteString("   ")
			}
			fmt.Fprintf(&b, "%c %s", markers[si%len(markers)], s.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Sparkline renders values as a compact one-line bar chart.
func Sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	for _, v := range vs {
		i := int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		b.WriteRune(blocks[i])
	}
	return b.String()
}
