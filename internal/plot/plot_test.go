package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestChartRendersAllSeries(t *testing.T) {
	c := Chart{Title: "demo", XLabel: "t"}
	if err := c.Add(Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Series{Name: "b", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}}); err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	for _, want := range []string{"demo", "*", "o", "a", "b", "(t)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestChartMismatchedLengths(t *testing.T) {
	c := Chart{}
	if err := c.Add(Series{X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	_ = c.Add(Series{})
	if out := c.Render(); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart rendered: %s", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := Chart{}
	_ = c.Add(Series{Name: "flat", X: []float64{0, 1}, Y: []float64{5, 5}})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series not drawn:\n%s", out)
	}
}

func TestChartFixedYRangeClamps(t *testing.T) {
	c := Chart{YMin: 0, YMax: 1, Height: 5, Width: 10}
	_ = c.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{-5, 5}})
	out := c.Render()
	if !strings.Contains(out, "1.000") || !strings.Contains(out, "0.000") {
		t.Fatalf("fixed range labels missing:\n%s", out)
	}
}

func TestChartSkipsNaN(t *testing.T) {
	c := Chart{}
	_ = c.Add(Series{Name: "n", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 3}})
	out := c.Render()
	if strings.Contains(out, "NaN") {
		t.Fatalf("NaN leaked into render:\n%s", out)
	}
}

// Property: rendering never panics and every line of the plot area has the
// same width, for arbitrary finite inputs.
func TestPropertyRenderStable(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		fx, fy := make([]float64, 0, n), make([]float64, 0, n)
		for i := 0; i < n; i++ {
			if math.IsInf(xs[i], 0) || math.IsInf(ys[i], 0) {
				continue
			}
			fx = append(fx, xs[i])
			fy = append(fy, ys[i])
		}
		c := Chart{Width: 40, Height: 8}
		if err := c.Add(Series{Name: "p", X: fx, Y: fy}); err != nil {
			return false
		}
		out := c.Render()
		return len(out) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparkline(t *testing.T) {
	if s := Sparkline(nil); s != "" {
		t.Fatalf("empty sparkline = %q", s)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if got := len([]rune(s)); got != 8 {
		t.Fatalf("sparkline runes = %d", got)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("sparkline scale wrong: %s", s)
	}
	// Constant series should not divide by zero.
	if s := Sparkline([]float64{3, 3, 3}); len([]rune(s)) != 3 {
		t.Fatalf("constant sparkline = %q", s)
	}
}
