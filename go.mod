module pard

go 1.24.0
