package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateSummary(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-kind", "steady", "-duration", "30s", "-rate", "100"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mean rate") {
		t.Fatalf("summary missing mean rate:\n%s", out.String())
	}
}

func TestWriteAndInspectRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	var out, errb bytes.Buffer
	err := run([]string{"-kind", "steady", "-duration", "30s", "-rate", "100",
		"-out", path}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	out.Reset()
	if err := run([]string{"-inspect", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "arrivals") {
		t.Fatalf("inspect output missing arrivals:\n%s", out.String())
	}
}

func TestUnknownKindRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-kind", "bogus"}, &out, &errb); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
