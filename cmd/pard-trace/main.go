// Command pard-trace generates and inspects workload traces.
//
// Usage:
//
//	pard-trace -kind tweet -duration 1400s -out tweet.csv
//	pard-trace -inspect tweet.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pard"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pard-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pard-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "tweet", "trace shape: wiki, tweet, azure, steady, step")
	duration := fs.Duration("duration", 1400*time.Second, "trace duration")
	rate := fs.Float64("rate", 0, "peak rate (req/s; 0 = paper nominal)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "write CSV to this file (default stdout summary only)")
	inspect := fs.String("inspect", "", "analyze an existing trace CSV instead of generating")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	var tr *pard.Trace
	var err error
	if *inspect != "" {
		f, err2 := os.Open(*inspect)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		tr, err = pard.ReadTraceCSV(*inspect, f)
	} else {
		tr, err = pard.NewTrace(pard.TraceConfig{
			Kind:     pard.TraceKind(*kind),
			Duration: *duration,
			PeakRate: *rate,
			Seed:     *seed,
		})
	}
	if err != nil {
		return err
	}

	st := tr.Analyze()
	fmt.Fprintf(stdout, "trace %s: %d arrivals over %v\n", tr.Name, tr.Len(), tr.Duration)
	fmt.Fprintf(stdout, "  mean rate  %.1f req/s\n", st.MeanRate)
	fmt.Fprintf(stdout, "  peak rate  %.1f req/s\n", st.PeakRate)
	fmt.Fprintf(stdout, "  CV         %.3f\n", st.CV)
	fmt.Fprintf(stdout, "  burst CV   %.3f (detrended)\n", st.BurstCV)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	return nil
}
