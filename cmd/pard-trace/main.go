// Command pard-trace generates and inspects workload traces.
//
// Usage:
//
//	pard-trace -kind tweet -duration 1400s -out tweet.csv
//	pard-trace -inspect tweet.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pard"
)

func main() {
	kind := flag.String("kind", "tweet", "trace shape: wiki, tweet, azure, steady, step")
	duration := flag.Duration("duration", 1400*time.Second, "trace duration")
	rate := flag.Float64("rate", 0, "peak rate (req/s; 0 = paper nominal)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "write CSV to this file (default stdout summary only)")
	inspect := flag.String("inspect", "", "analyze an existing trace CSV instead of generating")
	flag.Parse()

	var tr *pard.Trace
	var err error
	if *inspect != "" {
		f, err2 := os.Open(*inspect)
		if err2 != nil {
			fatal(err2)
		}
		defer f.Close()
		tr, err = pard.ReadTraceCSV(*inspect, f)
	} else {
		tr, err = pard.NewTrace(pard.TraceConfig{
			Kind:     pard.TraceKind(*kind),
			Duration: *duration,
			PeakRate: *rate,
			Seed:     *seed,
		})
	}
	if err != nil {
		fatal(err)
	}

	st := tr.Analyze()
	fmt.Printf("trace %s: %d arrivals over %v\n", tr.Name, tr.Len(), tr.Duration)
	fmt.Printf("  mean rate  %.1f req/s\n", st.MeanRate)
	fmt.Printf("  peak rate  %.1f req/s\n", st.PeakRate)
	fmt.Printf("  CV         %.3f\n", st.CV)
	fmt.Printf("  burst CV   %.3f (detrended)\n", st.BurstCV)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pard-trace:", err)
	os.Exit(1)
}
