package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pard"
)

func TestBuildTrace(t *testing.T) {
	tr, err := buildTrace("fixed", 50, time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50 {
		t.Fatalf("fixed 50/s × 1s: %d arrivals", tr.Len())
	}
	if _, err := buildTrace("fixed", 0, time.Second, 1); err == nil {
		t.Fatal("degenerate fixed trace accepted")
	}
	tr, err = buildTrace("steady", 50, 2*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("steady trace empty")
	}
	if _, err := buildTrace("bogus", 50, time.Second, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestLoadAgainstLiveServer is the end-to-end smoke the CI step mirrors: a
// real live server, a short open-loop run, the sim twin, and the recorded
// trace written back out as CSV.
func TestLoadAgainstLiveServer(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	spec := pard.Apps()["tm"]
	ws := make([]int, spec.N())
	for i := range ws {
		ws[i] = 2
	}
	srv, err := pard.NewServer(pard.ServerConfig{
		Spec:       spec,
		PolicyName: "pard",
		Workers:    ws,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr, err := buildTrace("fixed", 40, time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pard.RunLoad(pard.LoadConfig{Target: ts.URL, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goodput <= 0 {
		t.Fatalf("no goodput against the live server: %+v", rep)
	}

	if _, err := rep.CompareSim(pard.LoadSimSpec{
		Spec:       spec,
		PolicyName: "pard",
		Workers:    ws,
		SyncPeriod: 250 * time.Millisecond,
		Seed:       1,
	}); err != nil {
		t.Fatal(err)
	}
	if rep.Sim == nil || rep.Sim.Goodput <= 0 {
		t.Fatalf("sim twin produced no goodput: %+v", rep.Sim)
	}

	// The JSON report is what the CI smoke asserts on: goodput fields of
	// both sides present and positive in one document.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Goodput float64 `json:"goodput"`
		Sim     *struct {
			Goodput float64 `json:"goodput"`
		} `json:"sim"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Goodput <= 0 || doc.Sim == nil || doc.Sim.Goodput <= 0 {
		t.Fatalf("JSON report missing goodput fields: %s", buf.String())
	}

	csvPath := filepath.Join(t.TempDir(), "sent.csv")
	if err := writeTraceCSV(csvPath, rep); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := pard.ReadTraceCSV("sent", f)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != len(rep.Offsets()) {
		t.Fatalf("CSV round trip: %d arrivals, sent %d", back.Len(), len(rep.Offsets()))
	}
}

func TestWriteTraceCSVEmptyReport(t *testing.T) {
	if err := writeTraceCSV(filepath.Join(t.TempDir(), "x.csv"), &pard.LoadReport{}); err == nil {
		t.Fatal("empty report accepted")
	}
}
