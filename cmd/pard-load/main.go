// Command pard-load drives production-shaped traffic at a running
// pard-server and reports goodput, outcome rates and latency quantiles. It
// replays the same arrival processes the simulator uses (open loop) or runs
// closed-loop workers with think time, and can replay the offsets it
// actually sent through the discrete-event simulator for a matched-load
// sim-vs-live comparison.
//
// Usage:
//
//	pard-server -app tm &
//	pard-load -target http://127.0.0.1:8080 -kind fixed -rate 100 -duration 10s
//	pard-load -mode closed -conns 8 -requests 1000 -think-min 5ms -think-max 20ms
//	pard-load -kind tweet -duration 30s -compare-sim -app tm -workers 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pard"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "server base URL")
		mode     = flag.String("mode", "open", "open (trace replay) or closed (workers with think time)")
		kind     = flag.String("kind", "fixed", "open-loop arrival process: fixed, steady, step, wiki, tweet, azure")
		rate     = flag.Float64("rate", 100, "request rate for fixed/steady/step arrivals (req/s)")
		duration = flag.Duration("duration", 10*time.Second, "trace length (open) or run cap (closed)")
		seed     = flag.Int64("seed", 1, "random seed (trace generation and think times)")

		conns    = flag.Int("conns", 4, "closed-loop worker connections")
		requests = flag.Int("requests", 0, "closed-loop total request cap (0 = duration-bounded)")
		thinkMin = flag.Duration("think-min", 0, "closed-loop minimum think time")
		thinkMax = flag.Duration("think-max", 0, "closed-loop maximum think time (uniform in [min,max])")

		timeout     = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		maxInFlight = flag.Int("max-inflight", 0, "open-loop shed cap on outstanding requests (0 = unlimited)")

		jsonOut  = flag.Bool("json", false, "emit the report as JSON instead of a table")
		stream   = flag.String("stream", "", "stream per-request JSONL to this file ('-' = stdout)")
		traceCSV = flag.String("trace-csv", "", "write the recorded send offsets as a trace CSV")

		compareSim = flag.Bool("compare-sim", false, "replay the recorded offsets through the simulator twin")
		app        = flag.String("app", "tm", "pipeline the target serves (for -compare-sim)")
		policy     = flag.String("policy", "pard", "drop policy the target runs (for -compare-sim)")
		workers    = flag.Int("workers", 2, "workers per module the target runs (for -compare-sim)")
		sync       = flag.Duration("sync", 250*time.Millisecond, "target's state-sync period (for -compare-sim)")
	)
	flag.Parse()

	cfg := pard.LoadConfig{
		Target:      strings.TrimRight(*target, "/"),
		Mode:        *mode,
		Conns:       *conns,
		Requests:    *requests,
		Think:       pard.LoadThinkTime{Min: *thinkMin, Max: *thinkMax},
		Timeout:     *timeout,
		MaxInFlight: *maxInFlight,
		Seed:        *seed,
	}
	if *mode == pard.LoadModeOpen {
		tr, err := buildTrace(*kind, *rate, *duration, *seed)
		if err != nil {
			fatal(err)
		}
		cfg.Trace = tr
	} else {
		cfg.Duration = *duration
		if *requests > 0 {
			cfg.Duration = 0 // an explicit request cap bounds the run instead
		}
	}
	if *stream != "" {
		w, closeFn, err := openStream(*stream)
		if err != nil {
			fatal(err)
		}
		defer closeFn()
		cfg.Stream = w
	}

	rep, err := pard.RunLoad(cfg)
	if err != nil {
		fatal(err)
	}

	if *compareSim {
		spec, ok := pard.Apps()[*app]
		if !ok {
			fatal(fmt.Errorf("unknown app %q for -compare-sim", *app))
		}
		ws := make([]int, spec.N())
		for i := range ws {
			ws[i] = *workers
		}
		if _, err := rep.CompareSim(pard.LoadSimSpec{
			Spec:       spec,
			PolicyName: *policy,
			Workers:    ws,
			SyncPeriod: *sync,
			Seed:       *seed,
		}); err != nil {
			fatal(err)
		}
	}

	if *traceCSV != "" {
		if err := writeTraceCSV(*traceCSV, rep); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		rep.WriteTable(os.Stdout)
	}
}

// buildTrace resolves the open-loop arrival process: the deterministic
// fixed-gap generator or any of the synthetic workload shapes.
func buildTrace(kind string, rate float64, duration time.Duration, seed int64) (*pard.Trace, error) {
	if kind == "fixed" {
		tr := pard.FixedTrace(rate, duration)
		if tr == nil {
			return nil, fmt.Errorf("fixed trace needs positive -rate and -duration (got %v, %v)", rate, duration)
		}
		return tr, nil
	}
	return pard.NewTrace(pard.TraceConfig{
		Kind:     pard.TraceKind(kind),
		Duration: duration,
		PeakRate: rate,
		Seed:     seed,
	})
}

// openStream resolves the per-request JSONL destination.
func openStream(path string) (*os.File, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// writeTraceCSV saves the offsets the generator actually sent at, replayable
// with -kind and pard-sim's CSV trace input.
func writeTraceCSV(path string, rep *pard.LoadReport) error {
	offs := rep.Offsets()
	if len(offs) == 0 {
		return fmt.Errorf("no send offsets recorded")
	}
	tr := &pard.Trace{
		Name:     "pard-load",
		Arrivals: offs,
		Duration: offs[len(offs)-1] + time.Second,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteCSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pard-load:", err)
	os.Exit(1)
}
