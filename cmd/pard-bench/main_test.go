package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pard"
	"pard/internal/dist"
)

func TestListExperiments(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig8", "fig13", "dag-dynamic"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("-list output missing %s:\n%s", id, out.String())
		}
	}
}

func TestBadFlagsRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-scale", "bogus"}, &out, &errb); err == nil {
		t.Fatal("bogus scale accepted")
	}
	if err := run([]string{"-only", "nope"}, &out, &errb); err == nil {
		t.Fatal("unknown -only accepted")
	}
}

// TestSmokeRun regenerates one cheap artifact end-to-end in parallel mode,
// writing CSVs, and checks the rendered output.
func TestSmokeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	dir := t.TempDir()
	var out, errb bytes.Buffer
	err := run([]string{"-scale", "smoke", "-only", "fig13", "-parallel", "2",
		"-progress", "-out", dir}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig13-switches") {
		t.Fatalf("output missing fig13-switches table:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ran 1 experiments") {
		t.Fatalf("output missing run summary:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "[1/") {
		t.Fatalf("-progress produced no progress lines:\n%s", errb.String())
	}
	csv, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(csv) == 0 {
		t.Fatalf("no CSVs written to -out (err=%v)", err)
	}
}

// TestCacheDirRoundTrip runs the same artifact twice against one cache
// directory: the warm invocation must report disk hits and produce
// byte-identical CSV artifacts without recomputing any simulation.
func TestCacheDirRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	cache := t.TempDir()
	outs := [2]string{t.TempDir(), t.TempDir()}
	errbs := [2]bytes.Buffer{}
	for i := 0; i < 2; i++ {
		var out bytes.Buffer
		err := run([]string{"-scale", "smoke", "-only", "fig13", "-parallel", "2",
			"-out", outs[i], "-cache-dir", cache}, &out, &errbs[i])
		if err != nil {
			t.Fatalf("invocation %d: %v", i, err)
		}
	}
	if !strings.Contains(errbs[0].String(), "0 disk hits") {
		t.Fatalf("cold run claimed disk hits:\n%s", errbs[0].String())
	}
	warm := errbs[1].String()
	if !strings.Contains(warm, "disk hits") || strings.Contains(warm, "0 disk hits") {
		t.Fatalf("warm run reported no disk hits:\n%s", warm)
	}
	csvs, err := filepath.Glob(filepath.Join(outs[0], "*.csv"))
	if err != nil || len(csvs) == 0 {
		t.Fatalf("no CSVs from cold run (err=%v)", err)
	}
	for _, path := range csvs {
		cold, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		hot, err := os.ReadFile(filepath.Join(outs[1], filepath.Base(path)))
		if err != nil {
			t.Fatalf("warm run missing %s: %v", filepath.Base(path), err)
		}
		if !bytes.Equal(cold, hot) {
			t.Fatalf("%s differs between cold and warm runs", filepath.Base(path))
		}
	}
}

// syncBuffer guards concurrent writes: in distributed mode the coordinator
// logs from its connection goroutines while run() writes from the main one.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDistributedRunMatchesLocal is the CLI face of the distributed
// differential harness: pard-bench -workers against two real pard-worker
// TCP listeners must produce stdout byte-identical to the plain in-process
// run of the same artifact, and must actually dispatch units remotely.
func TestDistributedRunMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		addrs = append(addrs, l.Addr().String())
		go dist.Serve(l, dist.WorkerConfig{Workers: 2})
	}

	var local, distributed bytes.Buffer
	var errb syncBuffer
	if err := run([]string{"-scale", "smoke", "-only", "fig13"}, &local, &errb); err != nil {
		t.Fatal(err)
	}
	errb = syncBuffer{}
	err := run([]string{"-scale", "smoke", "-only", "fig13",
		"-workers", strings.Join(addrs, ",")}, &distributed, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb.String(), "distributing sweeps across 2 worker(s)") {
		t.Fatalf("distributed mode not engaged:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "units dispatched") {
		t.Fatalf("no cluster accounting reported:\n%s", errb.String())
	}
	// Strip the wall-clock timing lines; everything else must match the
	// local run byte for byte.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "=== ") || strings.HasPrefix(line, "ran ") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(local.String()) != strip(distributed.String()) {
		t.Fatalf("distributed artifacts differ from local:\n--- local\n%s\n--- distributed\n%s",
			local.String(), distributed.String())
	}
}

func TestUnreachableWorkerRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-scale", "smoke", "-only", "fig13",
		"-workers", "127.0.0.1:1"}, &out, &errb); err == nil {
		t.Fatal("unreachable worker accepted")
	}
}

func TestChartFromTable(t *testing.T) {
	tab := pard.ExperimentTable{
		Title:   "t",
		Columns: []string{"time", "v"},
		Rows: [][]string{
			{"0s", "1.0"}, {"10s", "2.0"}, {"20s", "3.0"}, {"30s", "4.0"},
		},
	}
	if _, ok := chartFromTable(tab); !ok {
		t.Fatal("numeric time series not charted")
	}
	tab.Rows[0][0] = "not-a-number"
	if _, ok := chartFromTable(tab); ok {
		t.Fatal("non-numeric first column charted")
	}
}
