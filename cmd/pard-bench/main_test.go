package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pard"
)

func TestListExperiments(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig8", "fig13", "dag-dynamic"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("-list output missing %s:\n%s", id, out.String())
		}
	}
}

func TestBadFlagsRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-scale", "bogus"}, &out, &errb); err == nil {
		t.Fatal("bogus scale accepted")
	}
	if err := run([]string{"-only", "nope"}, &out, &errb); err == nil {
		t.Fatal("unknown -only accepted")
	}
}

// TestSmokeRun regenerates one cheap artifact end-to-end in parallel mode,
// writing CSVs, and checks the rendered output.
func TestSmokeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	dir := t.TempDir()
	var out, errb bytes.Buffer
	err := run([]string{"-scale", "smoke", "-only", "fig13", "-parallel", "2",
		"-progress", "-out", dir}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig13-switches") {
		t.Fatalf("output missing fig13-switches table:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ran 1 experiments") {
		t.Fatalf("output missing run summary:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "[1/") {
		t.Fatalf("-progress produced no progress lines:\n%s", errb.String())
	}
	csv, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(csv) == 0 {
		t.Fatalf("no CSVs written to -out (err=%v)", err)
	}
}

func TestChartFromTable(t *testing.T) {
	tab := pard.ExperimentTable{
		Title:   "t",
		Columns: []string{"time", "v"},
		Rows: [][]string{
			{"0s", "1.0"}, {"10s", "2.0"}, {"20s", "3.0"}, {"30s", "4.0"},
		},
	}
	if _, ok := chartFromTable(tab); !ok {
		t.Fatal("numeric time series not charted")
	}
	tab.Rows[0][0] = "not-a-number"
	if _, ok := chartFromTable(tab); ok {
		t.Fatal("non-numeric first column charted")
	}
}
