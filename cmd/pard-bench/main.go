// Command pard-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pard-bench                          # run everything at quick scale
//	pard-bench -scale full              # paper-length traces
//	pard-bench -only fig8,fig11         # a subset
//	pard-bench -out results             # also write text + CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pard"
	"pard/internal/plot"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: smoke, quick, full")
	only := flag.String("only", "", "comma-separated experiment IDs (default all)")
	out := flag.String("out", "", "directory for text + CSV outputs (optional)")
	plots := flag.Bool("plot", false, "render ASCII charts for time-series tables")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range pard.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := pard.ExperimentConfig{Scale: pard.ScaleQuick, Seed: *seed}
	switch *scale {
	case "smoke":
		cfg.Scale = pard.ScaleSmoke
	case "quick":
		cfg.Scale = pard.ScaleQuick
	case "full":
		cfg.Scale = pard.ScaleFull
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	harness := pard.NewExperimentHarness(cfg)
	start := time.Now()
	ran := 0
	for _, e := range pard.Experiments() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		t0 := time.Now()
		output, err := e.Run(harness)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		ran++
		fmt.Printf("=== %s — %s (%.1fs)\n\n", e.ID, e.Title, time.Since(t0).Seconds())
		for _, tab := range output.Tables {
			fmt.Println(tab.Render())
			if *plots {
				if chart, ok := chartFromTable(tab); ok {
					fmt.Println(chart)
				}
			}
			if *out != "" {
				path := filepath.Join(*out, tab.ID+".csv")
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
		for _, note := range output.Notes {
			fmt.Printf("note: %s\n", note)
		}
		fmt.Println()
	}
	if ran == 0 {
		fatal(fmt.Errorf("no experiments matched -only=%q", *only))
	}
	fmt.Printf("ran %d experiments in %.1fs (scale=%s seed=%d)\n",
		ran, time.Since(start).Seconds(), *scale, *seed)
}

// chartFromTable renders an ASCII chart when the table looks like a time
// series: a numeric-ish first column ("120s", "0.5") and numeric data
// columns ("0.97", "42.0%").
func chartFromTable(tab pard.ExperimentTable) (string, bool) {
	if len(tab.Rows) < 4 || len(tab.Columns) < 2 {
		return "", false
	}
	parse := func(s string) (float64, bool) {
		s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSpace(s), "%"), "s")
		s = strings.TrimSuffix(s, "ms")
		v, err := strconv.ParseFloat(s, 64)
		return v, err == nil
	}
	xs := make([]float64, 0, len(tab.Rows))
	for _, row := range tab.Rows {
		x, ok := parse(row[0])
		if !ok {
			return "", false
		}
		xs = append(xs, x)
	}
	c := plot.Chart{Title: tab.Title, XLabel: tab.Columns[0], Width: 76, Height: 14}
	added := 0
	for col := 1; col < len(tab.Columns); col++ {
		var cx, cy []float64
		for i, row := range tab.Rows {
			if col >= len(row) {
				continue
			}
			if y, ok := parse(row[col]); ok {
				cx = append(cx, xs[i])
				cy = append(cy, y)
			}
		}
		if len(cy) < 4 {
			continue
		}
		if err := c.Add(plot.Series{Name: tab.Columns[col], X: cx, Y: cy}); err == nil {
			added++
		}
	}
	if added == 0 {
		return "", false
	}
	return c.Render(), true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pard-bench:", err)
	os.Exit(1)
}
