// Command pard-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pard-bench                          # run everything at quick scale
//	pard-bench -scale full              # paper-length traces
//	pard-bench -only fig8,fig11         # a subset
//	pard-bench -out results             # also write text + CSV files
//	pard-bench -parallel 8              # fan simulations out over 8 workers
//	pard-bench -workers h1:7070,h2:7070 # distribute runs to pard-worker processes
//	pard-bench -listen :7071            # let pard-worker -join register instead
//
// Parallelism never changes the artifacts: at a fixed seed the outputs are
// byte-identical for any -parallel value, any -workers cluster shape, and
// any mix of the two (see internal/sweep and internal/dist).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"maps"
	"net"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"time"

	"pard"
	"pard/internal/dist"
	"pard/internal/plot"
	"pard/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pard-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pard-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.String("scale", "quick", "experiment scale: smoke, quick, full")
	only := fs.String("only", "", "comma-separated experiment IDs (default all)")
	out := fs.String("out", "", "directory for text + CSV outputs (optional)")
	plots := fs.Bool("plot", false, "render ASCII charts for time-series tables")
	seed := fs.Int64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "concurrent simulation runs (0 = all CPU cores, 1 = sequential)")
	engine := fs.String("engine", "lane", "execution engine: lane (the default per-module lane engine) or classic (the deprecated pre-flip global event heap, kept one deprecation cycle to reproduce old numbers)")
	shards := fs.Int("shards", 0, "per-module event-lane workers within each simulation (0 or 1 = the default lane engine run sequentially, N = N concurrent workers; must be 0 with -engine classic)")
	cacheDir := fs.String("cache-dir", "", "persist finished runs here so repeated invocations reuse them")
	workers := fs.String("workers", "", "comma-separated pard-worker addresses to distribute runs to (e.g. h1:7070,h2:7070)")
	listen := fs.String("listen", "", "listen address where pard-worker -join processes register (e.g. :7071)")
	minWorkers := fs.Int("min-workers", 1, "with -listen: wait for this many workers before starting")
	speculateAfter := fs.Duration("speculate-after", 0, "re-dispatch a straggling unit to an idle worker after this long (0 = adapt to observed unit latency, negative = never)")
	progress := fs.Bool("progress", false, "print per-run progress to stderr")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *list {
		for _, e := range pard.Experiments() {
			fmt.Fprintf(stdout, "%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := pard.ExperimentConfig{Scale: pard.ScaleQuick, Seed: *seed, Parallel: *parallel, CacheDir: *cacheDir, Engine: *engine, Shards: *shards}
	if *cacheDir != "" {
		// Cache maintenance (e.g. a corrupt entry quarantined instead of
		// failing the run) is rare and worth an operator's attention.
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	switch *scale {
	case "smoke":
		cfg.Scale = pard.ScaleSmoke
	case "quick":
		cfg.Scale = pard.ScaleQuick
	case "full":
		cfg.Scale = pard.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if *progress {
		cfg.OnProgress = func(p sweep.Progress) {
			status := fmt.Sprintf("%.1fs", p.Elapsed.Seconds())
			if p.Err != nil {
				status = "error: " + p.Err.Error()
			}
			fmt.Fprintf(stderr, "[%d/%d] %s (%s)\n", p.Done, p.Total, p.Key, status)
		}
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	harness := pard.NewExperimentHarness(cfg)
	if err := harness.Engine().DiskError(); err != nil {
		return err
	}

	// Distributed mode: grid sweeps fan out to remote pard-worker processes
	// instead of the in-process pool. Falls back to the pool automatically
	// when neither flag is given. Outputs are byte-identical either way.
	var coord *dist.Coordinator
	if *workers != "" || *listen != "" {
		coord = dist.NewCoordinator(dist.CoordinatorConfig{
			Engine:         harness.Engine(),
			WaitForWorkers: *listen != "",
			SpeculateAfter: *speculateAfter,
			// Cluster lifecycle events (joins, losses, requeues, empty-
			// cluster waits, speculative re-dispatches) are rare and
			// operationally important, so they log unconditionally —
			// unlike per-run -progress output.
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stderr, format+"\n", args...)
			},
			// Remote executions bypass the engine's OnProgress (cache
			// installs are not local work), so -progress gets its per-run
			// lines from the coordinator instead.
			OnUnitDone: func(u dist.UnitDone) {
				if !*progress {
					return
				}
				status := fmt.Sprintf("worker %d, %.1fs", u.Worker, u.Elapsed.Seconds())
				if u.CacheHit {
					status = fmt.Sprintf("worker %d, warm cache", u.Worker)
				}
				if u.Err != "" {
					status = "error: " + u.Err
				}
				fmt.Fprintf(stderr, "[%d/%d] %s (%s)\n", u.Done, u.Total, u.Key, status)
			},
		})
		defer coord.Close()
		if *workers != "" {
			for _, addr := range strings.Split(*workers, ",") {
				addr = strings.TrimSpace(addr)
				if addr == "" {
					continue
				}
				// Bounded dial: one firewalled host should fail fast, not
				// hang the whole invocation on the OS connect timeout.
				conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
				if err != nil {
					return fmt.Errorf("worker %s: %w", addr, err)
				}
				if err := coord.AddConn(conn); err != nil {
					return fmt.Errorf("worker %s: %w", addr, err)
				}
			}
		}
		if *listen != "" {
			l, err := net.Listen("tcp", *listen)
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "pard-bench: waiting for %d worker(s) on %s (pard-worker -join <addr>)\n",
				*minWorkers, l.Addr())
			go func() {
				// A dead listener means no worker can ever join; close the
				// coordinator so WaitWorkers (and any sweep) aborts loudly
				// instead of hanging silently.
				if err := coord.Listen(l); err != nil {
					fmt.Fprintf(stderr, "pard-bench: listener failed: %v\n", err)
					coord.Close()
				}
			}()
			if err := coord.WaitWorkers(context.Background(), *minWorkers); err != nil {
				return err
			}
		}
		if coord.Workers() == 0 {
			return errors.New("distributed mode requested but no workers connected")
		}
		fmt.Fprintf(stderr, "pard-bench: distributing sweeps across %d worker(s)\n", coord.Workers())
		harness.Distribute(coord)
	}

	start := time.Now()
	ran := 0
	for _, e := range pard.Experiments() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		t0 := time.Now()
		output, err := e.Run(harness)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		ran++
		fmt.Fprintf(stdout, "=== %s — %s (%.1fs)\n\n", e.ID, e.Title, time.Since(t0).Seconds())
		for _, tab := range output.Tables {
			fmt.Fprintln(stdout, tab.Render())
			if *plots {
				if chart, ok := chartFromTable(tab); ok {
					fmt.Fprintln(stdout, chart)
				}
			}
			if *out != "" {
				path := filepath.Join(*out, tab.ID+".csv")
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
		for _, note := range output.Notes {
			fmt.Fprintf(stdout, "note: %s\n", note)
		}
		fmt.Fprintln(stdout)
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched -only=%q", *only)
	}
	if *cacheDir != "" {
		// Cache accounting goes to stderr so artifact output on stdout stays
		// byte-identical between cold and warm invocations.
		hits, misses := harness.Engine().DiskStats()
		fmt.Fprintf(stderr, "cache: %d disk hits, %d misses (%s)\n", hits, misses, *cacheDir)
	}
	if coord != nil {
		// Cluster accounting likewise stays off stdout.
		st := coord.Stats()
		fmt.Fprintf(stderr, "cluster: %d units dispatched (%d speculative), %d completed, %d requeued, %d cache hits (%d local, %d on workers), %d workers (%d lost)\n",
			st.Dispatched, st.Speculated, st.Completed, st.Requeued,
			st.LocalHits+st.RemoteHits, st.LocalHits, st.RemoteHits, coord.Workers(), st.WorkersLost)
		for _, id := range slices.Sorted(maps.Keys(st.PerWorker)) {
			ws := st.PerWorker[id]
			fmt.Fprintf(stderr, "cluster: worker %d: %d completed (%d warm-cache hits, %d speculative assignments)\n",
				id, ws.Completed, ws.CacheHits, ws.Speculative)
		}
	}
	fmt.Fprintf(stdout, "ran %d experiments in %.1fs (scale=%s seed=%d parallel=%d)\n",
		ran, time.Since(start).Seconds(), *scale, *seed, *parallel)
	return nil
}

// chartFromTable renders an ASCII chart when the table looks like a time
// series: a numeric-ish first column ("120s", "0.5") and numeric data
// columns ("0.97", "42.0%").
func chartFromTable(tab pard.ExperimentTable) (string, bool) {
	if len(tab.Rows) < 4 || len(tab.Columns) < 2 {
		return "", false
	}
	parse := func(s string) (float64, bool) {
		s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSpace(s), "%"), "s")
		s = strings.TrimSuffix(s, "ms")
		v, err := strconv.ParseFloat(s, 64)
		return v, err == nil
	}
	xs := make([]float64, 0, len(tab.Rows))
	for _, row := range tab.Rows {
		x, ok := parse(row[0])
		if !ok {
			return "", false
		}
		xs = append(xs, x)
	}
	c := plot.Chart{Title: tab.Title, XLabel: tab.Columns[0], Width: 76, Height: 14}
	added := 0
	for col := 1; col < len(tab.Columns); col++ {
		var cx, cy []float64
		for i, row := range tab.Rows {
			if col >= len(row) {
				continue
			}
			if y, ok := parse(row[col]); ok {
				cx = append(cx, xs[i])
				cy = append(cy, y)
			}
		}
		if len(cy) < 4 {
			continue
		}
		if err := c.Add(plot.Series{Name: tab.Columns[col], X: cx, Y: cy}); err == nil {
			added++
		}
	}
	if added == 0 {
		return "", false
	}
	return c.Render(), true
}
