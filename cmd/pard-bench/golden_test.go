package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"pard"
)

// -update regenerates the golden files:
//
//	go test ./cmd/pard-bench -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against the named golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (%d bytes, want %d).\n"+
			"The on-disk cache / reported-table format changed; if intentional, "+
			"bump sweep's diskFormat as needed and regenerate with -update.",
			name, len(got), len(want))
	}
}

// TestDiskCacheGolden pins the byte format of the sweep disk cache (PR 2):
// one tiny deterministic run through a cache directory, then every persisted
// gob entry — the run Result with its metrics Collector, and the generated
// trace — concatenated in filename order. Any drift in the gob layout, the
// cache key grammar, the scope string, or the simulation itself shows up as
// a byte diff here instead of as silently mismatching caches in the field.
func TestDiskCacheGolden(t *testing.T) {
	cache := t.TempDir()
	eng := pard.NewSweepEngine(pard.SweepConfig{
		Workers:       1,
		BaseSeed:      1,
		TraceDuration: 5 * time.Second,
		CacheDir:      cache,
	})
	if err := eng.DiskError(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(pard.SweepSpec{App: "tm", Kind: pard.Steady, Policy: "pard"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Total == 0 {
		t.Fatal("golden run produced no requests")
	}
	entries, err := filepath.Glob(filepath.Join(cache, "*.gob"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir holds no entries (err=%v)", err)
	}
	sort.Strings(entries)
	var blob bytes.Buffer
	for _, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&blob, "== %s %d\n", filepath.Base(path), len(data))
		blob.Write(data)
		blob.WriteByte('\n')
	}
	checkGolden(t, "diskcache.gob.golden", blob.Bytes())
}

// TestReportedTableGolden pins pard-bench's rendered artifact output: the
// fig13 tables at smoke scale, extracted from a real invocation (wall-clock
// timing lines excluded), plus the CSV artifacts byte-for-byte.
func TestReportedTableGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if err := run([]string{"-scale", "smoke", "-only", "fig13", "-out", dir}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	// Keep only the rendered tables: drop the header/footer lines that embed
	// wall-clock timings.
	var tables []string
	keep := false
	for _, line := range strings.Split(out.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "# "):
			keep = true
		case line == "":
			keep = false
		}
		if keep {
			tables = append(tables, line)
		}
	}
	checkGolden(t, "fig13.tables.golden", []byte(strings.Join(tables, "\n")+"\n"))

	csvs, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(csvs) == 0 {
		t.Fatalf("no CSV artifacts written (err=%v)", err)
	}
	sort.Strings(csvs)
	var blob bytes.Buffer
	for _, path := range csvs {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&blob, "== %s\n", filepath.Base(path))
		blob.Write(data)
	}
	checkGolden(t, "fig13.csv.golden", blob.Bytes())
}
