// Command pard-benchtrend turns `go test -bench -benchmem` output into the
// repo's benchmark trajectory artifacts (BENCH_<n>.json) and gates CI on
// them. It reads benchmark output on stdin and, per flags:
//
//	-write FILE    write the parsed results as a trajectory entry
//	-compare FILE  fail (exit 1) if any benchmark present in FILE regressed
//	               beyond the tolerances below
//
// Both flags may be given together (compare against the previous entry,
// then write the new one). Tolerances are deliberately loose — CI runs with
// -benchtime=1x on shared runners, so ns/op is noisy — while allocs/op and
// B/op are nearly deterministic and pinned tightly: the trajectory exists to
// catch "someone reintroduced per-event allocation", not 10% wall-clock
// wiggle. -compare also reports metrics that land far under their floor, so
// a stale floor is visible and the trajectory ratchets downward over time.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Tolerances for -compare: current value must stay below floor*factor.
const (
	nsTolerance     = 4.0 // wall clock: shared-runner noise dominates at -benchtime=1x
	allocsTolerance = 1.5 // allocation counts: near-deterministic, pinned tight
	bytesTolerance  = 1.5 // bytes/op: tracks allocation volume, similarly stable
)

// improveAt is the fraction of the floor below which -compare calls out an
// improvement, signalling that the floor is stale and a tighter BENCH_<n>.json
// should be committed.
const improveAt = 0.5

// Result is one benchmark's parsed metrics.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Trend is one trajectory entry (one BENCH_<n>.json file).
type Trend struct {
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkShardedDASharded    5   798253572 ns/op   213960552 B/op   673467 allocs/op
//
// Extra custom metrics (events/s, gomaxprocs) are ignored.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parse extracts benchmark results from `go test -bench -benchmem` output.
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := Result{Name: strings.TrimPrefix(m[1], "Benchmark")}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchtrend: bad value %q on line %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if res.NsPerOp == 0 {
			return nil, fmt.Errorf("benchtrend: no ns/op on line %q", sc.Text())
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// compare checks cur against the floor entry; every violation is returned
// (not just the first) so one CI run reports the full damage. The second
// return lists improvements — metrics that came in far enough under their
// floor (see improveAt) that the trajectory should ratchet: commit a new
// BENCH_<n>.json so the tightened numbers become the gate.
func compare(floor Trend, cur []Result) (bad, improved []string) {
	byName := make(map[string]Result, len(cur))
	for _, r := range cur {
		byName[r.Name] = r
	}
	for _, f := range floor.Benchmarks {
		c, ok := byName[f.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: present in floor but not in current run", f.Name))
			continue
		}
		check := func(metric string, cv, fv, tol float64) {
			if fv <= 0 {
				return
			}
			switch {
			case cv > fv*tol:
				bad = append(bad, fmt.Sprintf("%s: %.0f %s exceeds floor %.0f x%.1f",
					f.Name, cv, metric, fv, tol))
			case cv > 0 && cv < fv*improveAt:
				improved = append(improved, fmt.Sprintf("%s: %.0f %s is %.1fx under floor %.0f — ratchet the trajectory",
					f.Name, cv, metric, fv/cv, fv))
			}
		}
		check("ns/op", c.NsPerOp, f.NsPerOp, nsTolerance)
		check("allocs/op", c.AllocsPerOp, f.AllocsPerOp, allocsTolerance)
		check("B/op", c.BytesPerOp, f.BytesPerOp, bytesTolerance)
	}
	return bad, improved
}

func main() {
	write := flag.String("write", "", "write parsed results to this trajectory file")
	compareTo := flag.String("compare", "", "fail if results regress beyond this trajectory file")
	note := flag.String("note", "", "annotation stored in the written entry")
	flag.Parse()
	if *write == "" && *compareTo == "" {
		fmt.Fprintln(os.Stderr, "benchtrend: need -write and/or -compare")
		os.Exit(2)
	}

	cur, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchtrend: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *compareTo != "" {
		data, err := os.ReadFile(*compareTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var floor Trend
		if err := json.Unmarshal(data, &floor); err != nil {
			fmt.Fprintf(os.Stderr, "benchtrend: %s: %v\n", *compareTo, err)
			os.Exit(2)
		}
		bad, improved := compare(floor, cur)
		for _, s := range improved {
			fmt.Println("IMPROVEMENT " + s)
		}
		if len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintln(os.Stderr, "REGRESSION "+b)
			}
			os.Exit(1)
		}
		fmt.Printf("benchtrend: %d benchmarks within tolerance of %s\n", len(floor.Benchmarks), *compareTo)
	}

	if *write != "" {
		data, err := json.MarshalIndent(Trend{Note: *note, Benchmarks: cur}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("benchtrend: wrote %d benchmarks to %s\n", len(cur), *write)
	}
}
