package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pard
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShardedDAClassic    	       1	 850118736 ns/op	    705214 events/s	         1.000 gomaxprocs	239101128 B/op	 2471766 allocs/op
BenchmarkShardedDASequential-8 	       5	 811013137 ns/op	213956880 B/op	  673436 allocs/op
PASS
ok  	pard	2.480s
`

func TestParse(t *testing.T) {
	rs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(rs), rs)
	}
	c := rs[0]
	if c.Name != "ShardedDAClassic" || c.NsPerOp != 850118736 ||
		c.BytesPerOp != 239101128 || c.AllocsPerOp != 2471766 {
		t.Fatalf("classic parsed wrong: %+v", c)
	}
	// The -8 GOMAXPROCS suffix is stripped; custom metrics are ignored.
	if rs[1].Name != "ShardedDASequential" || rs[1].AllocsPerOp != 673436 {
		t.Fatalf("sequential parsed wrong: %+v", rs[1])
	}
}

func TestCompare(t *testing.T) {
	floor := Trend{Benchmarks: []Result{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 1000},
		{Name: "B", NsPerOp: 100},
	}}
	ok := []Result{
		{Name: "A", NsPerOp: 100 * nsTolerance, AllocsPerOp: 1000 * allocsTolerance},
		{Name: "B", NsPerOp: 50},
		{Name: "C", NsPerOp: 9e9}, // new benchmark: no floor yet, never a failure
	}
	if bad := compare(floor, ok); len(bad) != 0 {
		t.Fatalf("at-tolerance run flagged: %v", bad)
	}
	regressed := []Result{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 1000*allocsTolerance + 1},
		// B missing entirely.
	}
	bad := compare(floor, regressed)
	if len(bad) != 2 {
		t.Fatalf("want 2 violations (allocs regression + missing B), got: %v", bad)
	}
}
