package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pard
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShardedDAClassic    	       1	 850118736 ns/op	    705214 events/s	         1.000 gomaxprocs	239101128 B/op	 2471766 allocs/op
BenchmarkShardedDASequential-8 	       5	 811013137 ns/op	213956880 B/op	  673436 allocs/op
PASS
ok  	pard	2.480s
`

func TestParse(t *testing.T) {
	rs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(rs), rs)
	}
	c := rs[0]
	if c.Name != "ShardedDAClassic" || c.NsPerOp != 850118736 ||
		c.BytesPerOp != 239101128 || c.AllocsPerOp != 2471766 {
		t.Fatalf("classic parsed wrong: %+v", c)
	}
	// The -8 GOMAXPROCS suffix is stripped; custom metrics are ignored.
	if rs[1].Name != "ShardedDASequential" || rs[1].AllocsPerOp != 673436 {
		t.Fatalf("sequential parsed wrong: %+v", rs[1])
	}
}

func TestCompare(t *testing.T) {
	floor := Trend{Benchmarks: []Result{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 1000},
		{Name: "B", NsPerOp: 100},
	}}
	ok := []Result{
		{Name: "A", NsPerOp: 100 * nsTolerance, AllocsPerOp: 1000 * allocsTolerance},
		{Name: "B", NsPerOp: 51},  // just above the improvement threshold
		{Name: "C", NsPerOp: 9e9}, // new benchmark: no floor yet, never a failure
	}
	if bad, improved := compare(floor, ok); len(bad) != 0 || len(improved) != 0 {
		t.Fatalf("at-tolerance run flagged: bad=%v improved=%v", bad, improved)
	}
	regressed := []Result{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 1000*allocsTolerance + 1},
		// B missing entirely.
	}
	bad, _ := compare(floor, regressed)
	if len(bad) != 2 {
		t.Fatalf("want 2 violations (allocs regression + missing B), got: %v", bad)
	}
}

func TestCompareGatesBytes(t *testing.T) {
	floor := Trend{Benchmarks: []Result{
		{Name: "A", NsPerOp: 100, BytesPerOp: 1 << 20},
	}}
	ok := []Result{{Name: "A", NsPerOp: 100, BytesPerOp: (1 << 20) * bytesTolerance}}
	if bad, _ := compare(floor, ok); len(bad) != 0 {
		t.Fatalf("at-tolerance bytes flagged: %v", bad)
	}
	regressed := []Result{{Name: "A", NsPerOp: 100, BytesPerOp: (1<<20)*bytesTolerance + 1}}
	bad, _ := compare(floor, regressed)
	if len(bad) != 1 || !strings.Contains(bad[0], "B/op") {
		t.Fatalf("want 1 B/op violation, got: %v", bad)
	}
	// A floor without B/op never gates bytes.
	noBytes := Trend{Benchmarks: []Result{{Name: "A", NsPerOp: 100}}}
	if bad, _ := compare(noBytes, regressed); len(bad) != 0 {
		t.Fatalf("byteless floor flagged bytes: %v", bad)
	}
}

func TestCompareReportsImprovements(t *testing.T) {
	floor := Trend{Benchmarks: []Result{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 1000, BytesPerOp: 1000},
	}}
	// Allocations collapsed 10x; ns and bytes hold steady.
	cur := []Result{{Name: "A", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1000}}
	bad, improved := compare(floor, cur)
	if len(bad) != 0 {
		t.Fatalf("improved run flagged as regression: %v", bad)
	}
	if len(improved) != 1 || !strings.Contains(improved[0], "allocs/op") {
		t.Fatalf("want 1 allocs/op improvement, got: %v", improved)
	}
	// Exactly at the threshold is not yet an improvement.
	at := []Result{{Name: "A", NsPerOp: 1000, AllocsPerOp: 1000 * improveAt, BytesPerOp: 1000}}
	if _, improved := compare(floor, at); len(improved) != 0 {
		t.Fatalf("at-threshold run reported improvement: %v", improved)
	}
}
