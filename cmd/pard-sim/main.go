// Command pard-sim runs one workload × policy simulation and prints the
// resulting metrics.
//
// Usage:
//
//	pard-sim -app lv -trace tweet -policy pard -duration 300s
//	pard-sim -app da -trace azure -policy nexus -seed 7 -compare
//	pard-sim -compare -parallel 4    # fan the comparison out over 4 workers
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pard"
	"pard/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pard-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pard-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "lv", "application pipeline: tm, lv, gm, da")
	traceKind := fs.String("trace", "tweet", "workload trace: wiki, tweet, azure, steady, step")
	policyName := fs.String("policy", "pard", "drop policy (see -list)")
	duration := fs.Duration("duration", 300*time.Second, "trace duration")
	rate := fs.Float64("rate", 0, "peak rate override (req/s; 0 = paper nominal)")
	seed := fs.Int64("seed", 1, "random seed")
	compare := fs.Bool("compare", false, "run the four headline systems instead of one policy")
	parallel := fs.Int("parallel", 0, "concurrent simulation runs (0 = all CPU cores, 1 = sequential)")
	engine := fs.String("engine", "lane", "execution engine: lane (the default per-module lane engine) or classic (the deprecated pre-flip global event heap, kept one deprecation cycle to reproduce old numbers)")
	shards := fs.Int("shards", 0, "per-module event-lane workers within each simulation (0 or 1 = the default lane engine run sequentially, N = N concurrent workers; must be 0 with -engine classic)")
	list := fs.Bool("list", false, "list policies and exit")
	window := fs.Duration("window", 24*time.Second, "goodput window size")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *list {
		for _, p := range pard.Policies() {
			fmt.Fprintln(stdout, p)
		}
		return nil
	}

	spec, err := specFor(*app)
	if err != nil {
		return err
	}
	tr, err := pard.NewTrace(pard.TraceConfig{
		Kind:     pard.TraceKind(*traceKind),
		Duration: *duration,
		PeakRate: *rate,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "workload %s-%s: %d requests, mean %.1f req/s, SLO %v\n",
		*app, *traceKind, tr.Len(), tr.MeanRate(), spec.SLO)

	policies := []string{*policyName}
	if *compare {
		policies = pard.ComparisonPolicies()
	}

	// Fan the policy runs out over a bounded worker pool. Every policy
	// deliberately keeps the user's seed (the comparison fixes the workload
	// and jitter streams), so the output is identical at any -parallel.
	eng := sweep.New(sweep.Config{Workers: *parallel, BaseSeed: *seed})
	jobs := make([]sweep.Job[*pard.SimResult], len(policies))
	for i, pol := range policies {
		pol := pol
		jobs[i] = sweep.Job[*pard.SimResult]{
			Key: "sim|" + pol,
			Run: func(int64) (*pard.SimResult, error) {
				return pard.Simulate(pard.SimConfig{
					Spec:       spec,
					PolicyName: pol,
					Trace:      tr,
					Seed:       *seed,
					Engine:     *engine,
					Shards:     *shards,
				})
			},
		}
	}
	results, err := sweep.All(eng, jobs)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%-14s %9s %9s %9s %9s %12s %10s %8s %8s\n",
		"policy", "goodput", "drop", "invalid", "late", "minGoodput", "maxDrop", "p50", "p99")
	for i, pol := range policies {
		res := results[i]
		s := res.Summary
		p50, p99 := time.Duration(0), time.Duration(0)
		if qs := res.Collector.LatencyQuantiles(0.5, 0.99); qs != nil {
			p50, p99 = qs[0], qs[1]
		}
		fmt.Fprintf(stdout, "%-14s %8.1f/s %8.2f%% %8.2f%% %9d %12.3f %9.2f%% %7dms %6dms\n",
			pol, s.Goodput, 100*s.DropRate, 100*s.InvalidRate, s.Late,
			res.Collector.MinNormalizedGoodput(*window),
			100*res.Collector.MaxDropRate(*window),
			p50.Milliseconds(), p99.Milliseconds())
	}
	return nil
}

func specFor(app string) (*pard.Pipeline, error) {
	switch app {
	case "tm":
		return pard.TM(), nil
	case "lv":
		return pard.LV(), nil
	case "gm":
		return pard.GM(), nil
	case "da":
		return pard.DA(), nil
	case "da-dyn":
		return pard.DADynamic(0.5), nil
	default:
		return nil, fmt.Errorf("unknown app %q (tm, lv, gm, da, da-dyn)", app)
	}
}
