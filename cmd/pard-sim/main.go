// Command pard-sim runs one workload × policy simulation and prints the
// resulting metrics.
//
// Usage:
//
//	pard-sim -app lv -trace tweet -policy pard -duration 300s
//	pard-sim -app da -trace azure -policy nexus -seed 7 -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pard"
)

func main() {
	app := flag.String("app", "lv", "application pipeline: tm, lv, gm, da")
	traceKind := flag.String("trace", "tweet", "workload trace: wiki, tweet, azure, steady, step")
	policyName := flag.String("policy", "pard", "drop policy (see -list)")
	duration := flag.Duration("duration", 300*time.Second, "trace duration")
	rate := flag.Float64("rate", 0, "peak rate override (req/s; 0 = paper nominal)")
	seed := flag.Int64("seed", 1, "random seed")
	compare := flag.Bool("compare", false, "run the four headline systems instead of one policy")
	list := flag.Bool("list", false, "list policies and exit")
	window := flag.Duration("window", 24*time.Second, "goodput window size")
	flag.Parse()

	if *list {
		for _, p := range pard.Policies() {
			fmt.Println(p)
		}
		return
	}

	spec, err := specFor(*app)
	if err != nil {
		fatal(err)
	}
	tr, err := pard.NewTrace(pard.TraceConfig{
		Kind:     pard.TraceKind(*traceKind),
		Duration: *duration,
		PeakRate: *rate,
		Seed:     *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s-%s: %d requests, mean %.1f req/s, SLO %v\n",
		*app, *traceKind, tr.Len(), tr.MeanRate(), spec.SLO)

	policies := []string{*policyName}
	if *compare {
		policies = pard.ComparisonPolicies()
	}
	fmt.Printf("%-14s %9s %9s %9s %9s %12s %10s %8s %8s\n",
		"policy", "goodput", "drop", "invalid", "late", "minGoodput", "maxDrop", "p50", "p99")
	for _, pol := range policies {
		res, err := pard.Simulate(pard.SimConfig{
			Spec:       spec,
			PolicyName: pol,
			Trace:      tr,
			Seed:       *seed,
		})
		if err != nil {
			fatal(err)
		}
		s := res.Summary
		p50, p99 := time.Duration(0), time.Duration(0)
		if qs := res.Collector.LatencyQuantiles(0.5, 0.99); qs != nil {
			p50, p99 = qs[0], qs[1]
		}
		fmt.Printf("%-14s %8.1f/s %8.2f%% %8.2f%% %9d %12.3f %9.2f%% %7dms %6dms\n",
			pol, s.Goodput, 100*s.DropRate, 100*s.InvalidRate, s.Late,
			res.Collector.MinNormalizedGoodput(*window),
			100*res.Collector.MaxDropRate(*window),
			p50.Milliseconds(), p99.Milliseconds())
	}
}

func specFor(app string) (*pard.Pipeline, error) {
	switch app {
	case "tm":
		return pard.TM(), nil
	case "lv":
		return pard.LV(), nil
	case "gm":
		return pard.GM(), nil
	case "da":
		return pard.DA(), nil
	case "da-dyn":
		return pard.DADynamic(0.5), nil
	default:
		return nil, fmt.Errorf("unknown app %q (tm, lv, gm, da, da-dyn)", app)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pard-sim:", err)
	os.Exit(1)
}
