// Command pard-sim runs one workload × policy simulation and prints the
// resulting metrics.
//
// Usage:
//
//	pard-sim -app lv -trace tweet -policy pard -duration 300s
//	pard-sim -app da -trace azure -policy nexus -seed 7 -compare
//	pard-sim -compare -parallel 4    # fan the comparison out over 4 workers
//
// Distributed simulation (determinism invariant #5 — every topology below
// produces bit-identical results):
//
//	pard-sim -groups 4                      # 4 in-process lane-group replicas
//	pard-sim -hosts hostB:7071,hostC:7071   # hub + 2 remote lane groups
//	pard-sim -join-sim :7071                # serve one lane group: wait here
//	                                        # for a -hosts hub to dial in
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"pard"
	"pard/internal/dist"
	"pard/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pard-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pard-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "lv", "application pipeline: tm, lv, gm, da")
	traceKind := fs.String("trace", "tweet", "workload trace: wiki, tweet, azure, steady, step")
	policyName := fs.String("policy", "pard", "drop policy (see -list)")
	duration := fs.Duration("duration", 300*time.Second, "trace duration")
	rate := fs.Float64("rate", 0, "peak rate override (req/s; 0 = paper nominal)")
	seed := fs.Int64("seed", 1, "random seed")
	compare := fs.Bool("compare", false, "run the four headline systems instead of one policy")
	parallel := fs.Int("parallel", 0, "concurrent simulation runs (0 = all CPU cores, 1 = sequential)")
	engine := fs.String("engine", "lane", "execution engine: lane (the default per-module lane engine) or classic (the deprecated pre-flip global event heap, kept one deprecation cycle to reproduce old numbers)")
	shards := fs.Int("shards", 0, "per-module event-lane workers within each simulation (0 or 1 = the default lane engine run sequentially, N = N concurrent workers; must be 0 with -engine classic)")
	groups := fs.Int("groups", 0, "in-process lane-group replicas per simulation (0 or 1 = ungrouped; results are bit-identical at every count — determinism invariant #5)")
	hosts := fs.String("hosts", "", "comma-separated addresses of waiting lane-group peers (pard-sim -join-sim or pard-worker -sim); this process becomes the hub (lane group 0) and the run spans len(hosts)+1 processes")
	joinSim := fs.String("join-sim", "", "join one distributed simulation as a lane group: listen on this address, serve the hub that dials in, print this replica's result, exit")
	list := fs.Bool("list", false, "list policies and exit")
	window := fs.Duration("window", 24*time.Second, "goodput window size")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *list {
		for _, p := range pard.Policies() {
			fmt.Fprintln(stdout, p)
		}
		return nil
	}

	if *joinSim != "" {
		if *hosts != "" {
			return errors.New("-join-sim (spoke) and -hosts (hub) are mutually exclusive")
		}
		return serveSimSpoke(*joinSim, *window, stdout, stderr)
	}

	spec, err := specFor(*app)
	if err != nil {
		return err
	}
	tr, err := pard.NewTrace(pard.TraceConfig{
		Kind:     pard.TraceKind(*traceKind),
		Duration: *duration,
		PeakRate: *rate,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "workload %s-%s: %d requests, mean %.1f req/s, SLO %v\n",
		*app, *traceKind, tr.Len(), tr.MeanRate(), spec.SLO)

	if *hosts != "" {
		if *compare {
			return errors.New("-compare runs several policies; -hosts runs one simulation distributed")
		}
		if *groups > 1 {
			return errors.New("-groups (in-process lane groups) and -hosts (cross-host lane groups) are mutually exclusive")
		}
		res, err := runSimHub(strings.Split(*hosts, ","), pard.SimConfig{
			Spec:       spec,
			PolicyName: *policyName,
			Trace:      tr,
			Seed:       *seed,
			Engine:     *engine,
			Shards:     *shards,
		}, stderr)
		if err != nil {
			return err
		}
		printHeader(stdout)
		printRow(stdout, *policyName, res, *window)
		return nil
	}

	policies := []string{*policyName}
	if *compare {
		policies = pard.ComparisonPolicies()
	}

	// Fan the policy runs out over a bounded worker pool. Every policy
	// deliberately keeps the user's seed (the comparison fixes the workload
	// and jitter streams), so the output is identical at any -parallel.
	eng := sweep.New(sweep.Config{Workers: *parallel, BaseSeed: *seed})
	jobs := make([]sweep.Job[*pard.SimResult], len(policies))
	for i, pol := range policies {
		pol := pol
		jobs[i] = sweep.Job[*pard.SimResult]{
			Key: "sim|" + pol,
			Run: func(int64) (*pard.SimResult, error) {
				return pard.Simulate(pard.SimConfig{
					Spec:       spec,
					PolicyName: pol,
					Trace:      tr,
					Seed:       *seed,
					Engine:     *engine,
					Shards:     *shards,
					Groups:     *groups,
				})
			},
		}
	}
	results, err := sweep.All(eng, jobs)
	if err != nil {
		return err
	}

	printHeader(stdout)
	for i, pol := range policies {
		printRow(stdout, pol, results[i], *window)
	}
	return nil
}

func printHeader(w io.Writer) {
	fmt.Fprintf(w, "%-14s %9s %9s %9s %9s %12s %10s %8s %8s\n",
		"policy", "goodput", "drop", "invalid", "late", "minGoodput", "maxDrop", "p50", "p99")
}

func printRow(w io.Writer, pol string, res *pard.SimResult, window time.Duration) {
	s := res.Summary
	p50, p99 := time.Duration(0), time.Duration(0)
	if qs := res.Collector.LatencyQuantiles(0.5, 0.99); qs != nil {
		p50, p99 = qs[0], qs[1]
	}
	fmt.Fprintf(w, "%-14s %8.1f/s %8.2f%% %8.2f%% %9d %12.3f %9.2f%% %7dms %6dms\n",
		pol, s.Goodput, 100*s.DropRate, 100*s.InvalidRate, s.Late,
		res.Collector.MinNormalizedGoodput(window),
		100*res.Collector.MaxDropRate(window),
		p50.Milliseconds(), p99.Milliseconds())
}

// runSimHub dials each waiting lane-group peer and runs one simulation
// replicated across all of them, this process serving as lane group 0.
func runSimHub(addrs []string, cfg pard.SimConfig, stderr io.Writer) (*pard.SimResult, error) {
	conns := make([]net.Conn, 0, len(addrs))
	closeAll := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			closeAll()
			return nil, errors.New("-hosts contains an empty address")
		}
		conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("dialing lane-group peer %s: %w", addr, err)
		}
		conns = append(conns, conn)
	}
	fmt.Fprintf(stderr, "pard-sim: distributing over %d lane groups (this host is the hub)\n", len(conns)+1)
	return dist.RunSimDistributed(cfg, conns, dist.SimOptions{
		Logf: func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) },
	})
}

// serveSimSpoke waits at addr for a hub, serves its lane group, and prints
// this replica's (bit-identical) result.
func serveSimSpoke(addr string, window time.Duration, stdout, stderr io.Writer) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Fprintf(stderr, "pard-sim: waiting for a simulation hub on %s\n", l.Addr())
	conn, err := l.Accept()
	if err != nil {
		return err
	}
	res, err := dist.ServeSim(conn, dist.SimOptions{
		Logf: func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	printHeader(stdout)
	printRow(stdout, "(replica)", res, window)
	return nil
}

func specFor(app string) (*pard.Pipeline, error) {
	switch app {
	case "tm":
		return pard.TM(), nil
	case "lv":
		return pard.LV(), nil
	case "gm":
		return pard.GM(), nil
	case "da":
		return pard.DA(), nil
	case "da-dyn":
		return pard.DADynamic(0.5), nil
	default:
		return nil, fmt.Errorf("unknown app %q (tm, lv, gm, da, da-dyn)", app)
	}
}
