package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecFor(t *testing.T) {
	for _, app := range []string{"tm", "lv", "gm", "da", "da-dyn"} {
		if _, err := specFor(app); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
	}
	if _, err := specFor("bogus"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestListPolicies(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pard") || !strings.Contains(out.String(), "nexus") {
		t.Fatalf("-list output missing policies:\n%s", out.String())
	}
}

// TestCompareParallelDeterministic runs the four-system comparison twice —
// sequentially and with a worker pool — and requires identical reports.
func TestCompareParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	args := []string{"-app", "tm", "-trace", "steady", "-duration", "30s",
		"-seed", "5", "-compare"}
	var seq, par, errb bytes.Buffer
	if err := run(append(args, "-parallel", "1"), &seq, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-parallel", "4"), &par, &errb); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("parallel compare diverged:\n--- sequential\n%s--- parallel\n%s", seq.String(), par.String())
	}
	for _, pol := range []string{"pard", "nexus", "clipper++", "naive"} {
		if !strings.Contains(seq.String(), pol) {
			t.Fatalf("comparison missing %s:\n%s", pol, seq.String())
		}
	}
}
