package main

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpecFor(t *testing.T) {
	for _, app := range []string{"tm", "lv", "gm", "da", "da-dyn"} {
		if _, err := specFor(app); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
	}
	if _, err := specFor("bogus"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestListPolicies(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pard") || !strings.Contains(out.String(), "nexus") {
		t.Fatalf("-list output missing policies:\n%s", out.String())
	}
}

// TestCompareParallelDeterministic runs the four-system comparison twice —
// sequentially and with a worker pool — and requires identical reports.
func TestCompareParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	args := []string{"-app", "tm", "-trace", "steady", "-duration", "30s",
		"-seed", "5", "-compare"}
	var seq, par, errb bytes.Buffer
	if err := run(append(args, "-parallel", "1"), &seq, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-parallel", "4"), &par, &errb); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("parallel compare diverged:\n--- sequential\n%s--- parallel\n%s", seq.String(), par.String())
	}
	for _, pol := range []string{"pard", "nexus", "clipper++", "naive"} {
		if !strings.Contains(seq.String(), pol) {
			t.Fatalf("comparison missing %s:\n%s", pol, seq.String())
		}
	}
}

// lockedBuffer lets the test read stderr while run() writes it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// awaitAddr polls an in-flight command's stderr for its resolved listen
// address.
func awaitAddr(t *testing.T, b *lockedBuffer) string {
	t.Helper()
	addrRE := regexp.MustCompile(`on (\S+:\d+)`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(b.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("command never reported its address:\n%s", b.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFlagExclusions pins the topology flag surface: spoke-vs-hub and
// in-process-vs-cross-host combinations are refused with clear errors.
func TestFlagExclusions(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-join-sim", ":0", "-hosts", "x:1"}, &out, &errb); err == nil {
		t.Fatal("-join-sim with -hosts accepted")
	}
	if err := run([]string{"-hosts", "x:1", "-groups", "2"}, &out, &errb); err == nil {
		t.Fatal("-hosts with -groups accepted")
	}
	if err := run([]string{"-hosts", "x:1", "-compare"}, &out, &errb); err == nil {
		t.Fatal("-hosts with -compare accepted")
	}
}

// TestDistributedCLI is the command-level slice of determinism invariant
// #5: the same simulation run flat, with in-process lane groups, and
// distributed across a pard-sim hub plus a -join-sim spoke over loopback
// TCP must print the identical report.
func TestDistributedCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	base := []string{"-app", "lv", "-trace", "tweet", "-duration", "20s", "-seed", "9"}

	var flat, grouped bytes.Buffer
	var errb bytes.Buffer
	if err := run(base, &flat, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-groups", "3"), &grouped, &errb); err != nil {
		t.Fatal(err)
	}
	if flat.String() != grouped.String() {
		t.Fatalf("-groups diverged:\n--- flat\n%s--- groups\n%s", flat.String(), grouped.String())
	}

	var spokeOut bytes.Buffer
	spokeErr := &lockedBuffer{}
	spokeDone := make(chan error, 1)
	go func() { spokeDone <- run([]string{"-join-sim", "127.0.0.1:0"}, &spokeOut, spokeErr) }()
	addr := awaitAddr(t, spokeErr)

	var hubOut bytes.Buffer
	if err := run(append(base, "-hosts", addr), &hubOut, &errb); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-spokeDone:
		if err != nil {
			t.Fatalf("spoke exited with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("spoke never exited after the session completed")
	}
	if hubOut.String() != flat.String() {
		t.Fatalf("-hosts diverged from the flat run:\n--- flat\n%s--- hosts\n%s", flat.String(), hubOut.String())
	}
	// The spoke's replica report carries the same numbers (only the policy
	// label differs: it prints "(replica)").
	wantTail := strings.SplitN(flat.String(), "\n", 3)[2]
	flatRow := strings.Fields(strings.SplitN(wantTail, "\n", 2)[0])[1:]
	spokeLines := strings.Split(strings.TrimSpace(spokeOut.String()), "\n")
	spokeRow := strings.Fields(spokeLines[len(spokeLines)-1])[1:]
	if strings.Join(flatRow, " ") != strings.Join(spokeRow, " ") {
		t.Fatalf("spoke replica report diverged:\n flat:  %v\n spoke: %v", flatRow, spokeRow)
	}
}
