// Command pard-worker runs sweep work units on behalf of a remote
// coordinator (pard-bench -workers/-listen).
//
// Usage:
//
//	pard-worker -listen :7070            # wait for a coordinator to dial in
//	pard-worker -join coord-host:7070    # dial a listening coordinator
//	pard-worker -listen :7070 -parallel 8 -cache-dir /shared/pard-cache
//
// The worker is stateless: base seed and trace duration arrive in the
// coordinator's handshake, every unit's seed derives from its cache key,
// and results stream back as gob frames — so a grid computed here is
// byte-identical to the same grid computed anywhere else. Engine identity
// rides in each unit's cache key (the mandatory |eng= marker) and RunOpts,
// so a mixed classic/lane grid executes correctly on any worker; peers
// from before the lane-engine default flip speak dist.ProtoVersion 1 and
// are refused at the handshake rather than allowed to silently simulate
// the same keys on the old engine. A -cache-dir on
// shared storage turns finished units into a cluster-wide artifact store:
// units already present (from an earlier run, another worker, or a
// pre-seeded volume) are served without re-execution and reported to the
// coordinator as cache hits, and a corrupt entry is quarantined and
// recomputed rather than failing the unit.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"pard/internal/dist"
	"pard/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pard-worker:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pard-worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "", "listen address for coordinator connections (e.g. :7070)")
	join := fs.String("join", "", "coordinator address to dial (host:port)")
	parallel := fs.Int("parallel", 0, "concurrent unit executions (0 = all CPU cores); advertised as capacity")
	cacheDir := fs.String("cache-dir", "", "persist finished units here (share it across the cluster for a common artifact store)")
	once := fs.Bool("once", false, "with -listen: serve a single coordinator connection, then exit")
	quiet := fs.Bool("quiet", false, "suppress per-unit logging")
	sim := fs.Bool("sim", false, "serve distributed-simulation sessions (one lane group per connection, see pard-sim -hosts) instead of sweep units; requires -listen")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if (*listen == "") == (*join == "") {
		return errors.New("exactly one of -listen or -join is required")
	}
	if *sim {
		if *join != "" {
			return errors.New("-sim sessions are dialed by the hub: use -listen")
		}
		if *cacheDir != "" {
			return errors.New("-cache-dir does not apply to -sim (simulation replicas are never cached mid-run)")
		}
	}
	if *cacheDir != "" {
		// Preflight: a bad cache dir should fail here with a clear message,
		// not surface to every coordinator as an opaque dropped handshake.
		if err := sweep.New(sweep.Config{CacheDir: *cacheDir}).DiskError(); err != nil {
			return err
		}
	}
	cfg := dist.WorkerConfig{Workers: *parallel, CacheDir: *cacheDir}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	if *join != "" {
		fmt.Fprintf(stderr, "pard-worker: joining coordinator at %s\n", *join)
		return dist.Join(*join, cfg)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer l.Close()
	// The resolved address matters when -listen binds port 0 (tests, ad-hoc
	// clusters): print it where orchestration can read it.
	fmt.Fprintf(stderr, "pard-worker: listening on %s\n", l.Addr())
	if *sim {
		return serveSim(l, *once, cfg.Logf, stderr)
	}
	if *once {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		return dist.ServeConn(conn, cfg)
	}
	return dist.Serve(l, cfg)
}

// serveSim accepts simulation hubs and runs one lane group per connection.
// The replica's result is discarded here — it is bit-identical to the
// hub's, which is the one presented to the user.
func serveSim(l net.Listener, once bool, logf func(string, ...any), stderr io.Writer) error {
	opts := dist.SimOptions{Logf: logf}
	if once {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		_, err = dist.ServeSim(conn, opts)
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			if _, err := dist.ServeSim(conn, opts); err != nil {
				fmt.Fprintf(stderr, "pard-worker: sim session ended: %v\n", err)
			}
		}()
	}
}
