package main

import (
	"bytes"
	"context"
	"net"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"pard/internal/dist"
	"pard/internal/sweep"
	"pard/internal/trace"
)

func TestFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Fatal("no-mode invocation accepted")
	}
	if err := run([]string{"-listen", ":0", "-join", "x:1"}, &out, &errb); err == nil {
		t.Fatal("both modes accepted")
	}
	if err := run([]string{"-join", "127.0.0.1:1"}, &out, &errb); err == nil {
		t.Fatal("join to a dead coordinator succeeded")
	}
	// A bad cache dir fails at startup with a clear error, not as a
	// dropped handshake against every coordinator.
	if err := run([]string{"-listen", "127.0.0.1:0", "-cache-dir", "/dev/null/not-a-dir"}, &out, &errb); err == nil {
		t.Fatal("unusable -cache-dir accepted")
	}
}

// lockedBuffer lets the test read stderr while run() writes it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeOneCoordinator boots the binary's -listen -once path on an
// ephemeral port, connects a real coordinator, and runs a grid through it.
func TestServeOneCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	var out bytes.Buffer
	errb := &lockedBuffer{}
	done := make(chan error, 1)
	go func() { done <- run([]string{"-listen", "127.0.0.1:0", "-once", "-parallel", "2"}, &out, errb) }()

	// The worker prints its resolved listen address; poll for it.
	addrRE := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRE.FindStringSubmatch(errb.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never reported its address:\n%s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	eng := sweep.New(sweep.Config{Workers: 2, BaseSeed: 5, TraceDuration: 10 * time.Second})
	c := dist.NewCoordinator(dist.CoordinatorConfig{Engine: eng})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConn(conn); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Sweep(context.Background(), []sweep.Spec{
		{App: "tm", Kind: trace.Steady, Policy: "pard"},
		{App: "tm", Kind: trace.Steady, Policy: "nexus"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Summary.Total == 0 {
		t.Fatalf("distributed runs returned %v", rs)
	}
	c.Close() // hang up: -once worker exits cleanly
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after the coordinator hung up")
	}
	if !strings.Contains(errb.String(), "running unit") {
		t.Fatalf("worker logged no unit executions:\n%s", errb.String())
	}
}
