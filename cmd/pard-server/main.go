// Command pard-server hosts a pipeline — chain or DAG — behind HTTP with
// live PARD scheduling. Model execution is simulated by letting batch
// timers elapse for the profiled durations; everything else (queues,
// batching, dropping, priority, state sync) is the real scheduler, the same
// shared core the simulator runs.
//
// Usage:
//
//	pard-server -app lv -policy pard -addr :8080
//	pard-server -app da            # the fan-out/merge DAG pipeline
//	curl -X POST localhost:8080/infer
//	curl localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"

	"pard"
)

func main() {
	app := flag.String("app", "tm", "pipeline: tm, lv, gm, or the DAG da")
	policyName := flag.String("policy", "pard", "drop policy")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "workers per module")
	seed := flag.Int64("seed", 1, "random seed")
	admission := flag.Bool("admission", false, "enable estimator-driven admission control (429 + Retry-After at predicted SLO misses)")
	admInFlight := flag.Int("admission-inflight", 0, "admission gate in-flight bound (0 = unbounded; needs -admission)")
	admSLOFactor := flag.Float64("admission-slo-factor", 1.0, "admission threshold as a fraction of the SLO (needs -admission)")
	flag.Parse()

	srv, spec, err := newServer(*app, *policyName, *workers, *seed, pard.AdmissionConfig{
		Enabled:     *admission,
		MaxInFlight: *admInFlight,
		SLOFactor:   *admSLOFactor,
	})
	if err != nil {
		fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	gate := "off"
	if *admission {
		gate = "on"
	}
	fmt.Printf("pard-server: serving %s (%d modules, SLO %v) with policy %s on %s (admission %s)\n",
		*app, spec.N(), spec.SLO, *policyName, *addr, gate)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

// newServer builds (but does not start) the live server for an app name.
func newServer(app, policyName string, workers int, seed int64, adm pard.AdmissionConfig) (*pard.Server, *pard.Pipeline, error) {
	spec, ok := pard.Apps()[app]
	if !ok {
		return nil, nil, fmt.Errorf("unknown app %q (have %s)", app, strings.Join(appNames(), ", "))
	}

	ws := make([]int, spec.N())
	for i := range ws {
		ws[i] = workers
	}
	srv, err := pard.NewServer(pard.ServerConfig{
		Spec:       spec,
		PolicyName: policyName,
		Workers:    ws,
		Seed:       seed,
		Admission:  adm,
	})
	if err != nil {
		return nil, nil, err
	}
	return srv, spec, nil
}

// appNames lists the hostable pipelines in sorted order.
func appNames() []string {
	var names []string
	for name := range pard.Apps() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pard-server:", err)
	os.Exit(1)
}
