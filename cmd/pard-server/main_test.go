package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"pard"
)

func TestUnknownAppRejected(t *testing.T) {
	if _, _, err := newServer("bogus", "pard", 2, 1, pard.AdmissionConfig{}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// TestServeDAGApp pushes one request through the da fan-out/merge pipeline
// on the live runtime.
func TestServeDAGApp(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	srv, spec, err := newServer("da", "pard", 2, 1, pard.AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.IsChain() {
		t.Fatal("da spec is a chain; want a DAG")
	}
	srv.Start()
	defer srv.Stop()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/infer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /infer status %d", resp.StatusCode)
	}
}

// TestServeOneRequest starts the live server, pushes one request through
// the HTTP data plane and reads the stats endpoint.
func TestServeOneRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	srv, spec, err := newServer("tm", "pard", 2, 1, pard.AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.N() != 3 {
		t.Fatalf("tm has %d modules, want 3", spec.N())
	}
	srv.Start()
	defer srv.Stop()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/infer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /infer status %d", resp.StatusCode)
	}
	stats, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	if stats.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats status %d", stats.StatusCode)
	}
}
